(* twq — command-line driver for the paper-reproduction experiments.

   Usage:
     twq list                 # show available experiments
     twq run tab4 fig5        # regenerate specific tables/figures
     twq run --fast all       # quick pass over everything *)

open Cmdliner
module Registry = Twq_experiments.Registry

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-6s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments and print their tables." in
  let fast =
    Arg.(value & flag & info [ "fast" ] ~doc:"Use reduced problem sizes.")
  in
  let names =
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT")
  in
  let run fast names =
    let selected =
      if List.mem "all" names then Registry.all
      else
        List.map
          (fun n ->
            match Registry.find n with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; try `twq list`\n" n;
                exit 2)
          names
    in
    List.iter
      (fun e ->
        Printf.printf "==== %s — %s ====\n%!" e.Registry.name e.Registry.description;
        print_string (e.Registry.run ~fast ());
        print_newline ())
      selected
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ fast $ names)

let trace_cmd =
  let doc =
    "Simulate one Conv2D layer and dump its execution trace (Chrome \
     trace-event JSON, loadable in chrome://tracing or Perfetto)."
  in
  let kind =
    Arg.(value & opt string "f4" & info [ "kernel" ] ~doc:"im2col, f2 or f4.")
  in
  let batch = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"Batch size.") in
  let cin = Arg.(value & opt int 256 & info [ "cin" ] ~doc:"Input channels.") in
  let cout = Arg.(value & opt int 256 & info [ "cout" ] ~doc:"Output channels.") in
  let hw = Arg.(value & opt int 32 & info [ "hw" ] ~doc:"Output H = W.") in
  let out =
    Arg.(value & opt string "trace.json" & info [ "o" ] ~doc:"Output path.")
  in
  let run kind batch cin cout hw out =
    let module Sim = Twq_sim in
    let module T = Twq_winograd.Transform in
    let k =
      match String.lowercase_ascii kind with
      | "im2col" -> Sim.Operator.Im2col
      | "f2" -> Sim.Operator.Winograd T.F2
      | "f4" -> Sim.Operator.Winograd T.F4
      | s ->
          Printf.eprintf "unknown kernel %S (im2col | f2 | f4)\n" s;
          exit 2
    in
    let layer =
      { Twq_nn.Zoo.name = "trace"; cin; cout; out_h = hw; out_w = hw; k = 3;
        stride = 1; repeat = 1 }
    in
    let r = Sim.Operator.run Sim.Arch.default k layer ~batch in
    Sim.Trace.save_chrome_json r out;
    Printf.printf "%s: %.0f cycles; trace with %d resources written to %s\n"
      (Sim.Operator.kind_name k) r.Sim.Operator.cycles
      (List.length r.Sim.Operator.trace)
      out;
    print_string (Sim.Trace.to_text ~max_events:20 r)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ kind $ batch $ cin $ cout $ hw $ out)

let layers_cmd =
  let doc =
    "Per-layer simulation of a zoo network: chosen kernel, cycles, energy."
  in
  let network =
    Arg.(value & pos 0 string "resnet34" & info [] ~docv:"NETWORK")
  in
  let batch = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"Batch size.") in
  let resolution =
    Arg.(value & opt (some int) None & info [ "res" ] ~doc:"Input resolution.")
  in
  let run network batch resolution =
    let module Sim = Twq_sim in
    let module Zoo = Twq_nn.Zoo in
    match List.assoc_opt network Zoo.all with
    | None ->
        Printf.eprintf "unknown network %S; options: %s\n" network
          (String.concat ", " (List.map fst Zoo.all));
        exit 2
    | Some build ->
        let net = build ?resolution () in
        let r =
          Sim.Network_runner.run Sim.Arch.default
            (Sim.Network_runner.P_winograd Twq_winograd.Transform.F4)
            net ~batch
        in
        Printf.printf
          "%s @%d batch %d — %.1f imgs/s, %.2f mJ/inference under the F4 policy\n\n"
          net.Zoo.net_name net.Zoo.resolution batch
          r.Sim.Network_runner.throughput_imgs_per_s
          (r.Sim.Network_runner.energy_pj /. 1e9 /. float_of_int batch);
        Printf.printf "%-16s %-22s %-12s %12s %10s\n" "layer" "shape" "kernel"
          "cycles" "uJ";
        List.iter
          (fun c ->
            let l = c.Sim.Network_runner.layer in
            Printf.printf "%-16s %-22s %-12s %12.0f %10.1f\n" l.Zoo.name
              (Printf.sprintf "%dx%d %d->%d k%d s%d (x%d)" l.Zoo.out_h
                 l.Zoo.out_w l.Zoo.cin l.Zoo.cout l.Zoo.k l.Zoo.stride
                 l.Zoo.repeat)
              (Sim.Operator.kind_name c.Sim.Network_runner.chosen)
              c.Sim.Network_runner.result.Sim.Operator.cycles
              (c.Sim.Network_runner.result.Sim.Operator.energy.Sim.Operator.e_total
              /. 1e6))
          r.Sim.Network_runner.layers
  in
  Cmd.v (Cmd.info "layers" ~doc) Term.(const run $ network $ batch $ resolution)

let train_cmd =
  let doc =
    "Train a small QAT model on the synthetic dataset, with optional \
     crash-safe checkpointing.  History lines print losses/accuracies in \
     hexadecimal float notation so that an interrupted-and-resumed run can \
     be diffed bit-exactly against an uninterrupted one."
  in
  let epochs = Arg.(value & opt int 4 & info [ "epochs" ] ~doc:"Epochs.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let mode =
    Arg.(value & opt string "int8" & info [ "mode" ] ~doc:"fp32, int8 or wa.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:"Snapshot training state to $(docv) (atomically, rotated).")
  in
  let every =
    Arg.(
      value & opt int 4
      & info [ "every" ]
          ~doc:"Snapshot every N batches (besides epoch ends); 0 disables \
                the mid-epoch cadence.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Resume from the newest valid snapshot at --checkpoint.")
  in
  let data_parallel =
    Arg.(
      value & flag
      & info [ "data-parallel" ]
          ~doc:"Split batches across the domain pool (TWQ_NUM_DOMAINS).")
  in
  let run epochs seed mode checkpoint every resume data_parallel =
    let module Synth = Twq_dataset.Synth_images in
    let module Qat = Twq_nn.Qat_model in
    let module Trainer = Twq_nn.Trainer in
    let conv_mode =
      match String.lowercase_ascii mode with
      | "fp32" -> Qat.Fp32
      | "int8" -> Qat.Int8_spatial
      | "wa" ->
          Qat.Wa
            {
              variant = Twq_winograd.Transform.F4;
              wino_bits = 8;
              tapwise = true;
              pow2 = false;
              learned = true;
            }
      | s ->
          Printf.eprintf "unknown mode %S (fp32 | int8 | wa)\n" s;
          exit 2
    in
    if resume && checkpoint = None then begin
      Printf.eprintf "--resume requires --checkpoint PATH\n";
      exit 2
    end;
    let spec =
      { Synth.default_spec with n_train = 96; n_valid = 32; n_test = 32 }
    in
    let dataset = Synth.generate ~spec ~seed:11 () in
    let model =
      Qat.create { (Qat.default_config conv_mode) with arch = Qat.Vgg_mini [ 4; 8 ] } ~seed
    in
    let options =
      {
        Trainer.default_options with
        epochs;
        seed;
        data_parallel;
        checkpoint =
          Option.map
            (fun p -> { Trainer.ckpt_path = p; ckpt_every = every })
            checkpoint;
      }
    in
    let history =
      if resume then Trainer.train_resume model dataset options
      else Trainer.train model dataset options
    in
    Array.iteri
      (fun e loss ->
        Printf.printf "epoch %d loss %h acc %h\n" e loss
          history.Trainer.valid_acc.(e))
      history.Trainer.train_loss;
    Printf.printf "test %h\n" (Trainer.evaluate model dataset.Synth.test)
  in
  Cmd.v (Cmd.info "train" ~doc)
    Term.(
      const run $ epochs $ seed $ mode $ checkpoint $ every $ resume
      $ data_parallel)

let () =
  let doc = "Tap-wise quantized Winograd F4 — paper reproduction driver" in
  let info = Cmd.info "twq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; run_cmd; trace_cmd; layers_cmd; train_cmd ]))
