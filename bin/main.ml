(* twq — command-line driver for the paper-reproduction experiments.

   Usage:
     twq list                 # show available experiments
     twq run tab4 fig5        # regenerate specific tables/figures
     twq run --fast all       # quick pass over everything *)

open Cmdliner
module Registry = Twq_experiments.Registry

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-6s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments and print their tables." in
  let fast =
    Arg.(value & flag & info [ "fast" ] ~doc:"Use reduced problem sizes.")
  in
  let names =
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT")
  in
  let run fast names =
    let selected =
      if List.mem "all" names then Registry.all
      else
        List.map
          (fun n ->
            match Registry.find n with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; try `twq list`\n" n;
                exit 2)
          names
    in
    List.iter
      (fun e ->
        Printf.printf "==== %s — %s ====\n%!" e.Registry.name e.Registry.description;
        print_string (e.Registry.run ~fast ());
        print_newline ())
      selected
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ fast $ names)

let trace_cmd =
  let doc =
    "Simulate one Conv2D layer and dump its execution trace (Chrome \
     trace-event JSON, loadable in chrome://tracing or Perfetto)."
  in
  let kind =
    Arg.(value & opt string "f4" & info [ "kernel" ] ~doc:"im2col, f2 or f4.")
  in
  let batch = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"Batch size.") in
  let cin = Arg.(value & opt int 256 & info [ "cin" ] ~doc:"Input channels.") in
  let cout = Arg.(value & opt int 256 & info [ "cout" ] ~doc:"Output channels.") in
  let hw = Arg.(value & opt int 32 & info [ "hw" ] ~doc:"Output H = W.") in
  let out =
    Arg.(value & opt string "trace.json" & info [ "o" ] ~doc:"Output path.")
  in
  let run kind batch cin cout hw out =
    let module Sim = Twq_sim in
    let module T = Twq_winograd.Transform in
    let k =
      match String.lowercase_ascii kind with
      | "im2col" -> Sim.Operator.Im2col
      | "f2" -> Sim.Operator.Winograd T.F2
      | "f4" -> Sim.Operator.Winograd T.F4
      | s ->
          Printf.eprintf "unknown kernel %S (im2col | f2 | f4)\n" s;
          exit 2
    in
    let layer =
      { Twq_nn.Zoo.name = "trace"; cin; cout; out_h = hw; out_w = hw; k = 3;
        stride = 1; repeat = 1 }
    in
    let r = Sim.Operator.run Sim.Arch.default k layer ~batch in
    Sim.Trace.save_chrome_json r out;
    Printf.printf "%s: %.0f cycles; trace with %d resources written to %s\n"
      (Sim.Operator.kind_name k) r.Sim.Operator.cycles
      (List.length r.Sim.Operator.trace)
      out;
    print_string (Sim.Trace.to_text ~max_events:20 r)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ kind $ batch $ cin $ cout $ hw $ out)

let layers_cmd =
  let doc =
    "Per-layer simulation of a zoo network: chosen kernel, cycles, energy."
  in
  let network =
    Arg.(value & pos 0 string "resnet34" & info [] ~docv:"NETWORK")
  in
  let batch = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"Batch size.") in
  let resolution =
    Arg.(value & opt (some int) None & info [ "res" ] ~doc:"Input resolution.")
  in
  let run network batch resolution =
    let module Sim = Twq_sim in
    let module Zoo = Twq_nn.Zoo in
    match List.assoc_opt network Zoo.all with
    | None ->
        Printf.eprintf "unknown network %S; options: %s\n" network
          (String.concat ", " (List.map fst Zoo.all));
        exit 2
    | Some build ->
        let net = build ?resolution () in
        let r =
          Sim.Network_runner.run Sim.Arch.default
            (Sim.Network_runner.P_winograd Twq_winograd.Transform.F4)
            net ~batch
        in
        Printf.printf
          "%s @%d batch %d — %.1f imgs/s, %.2f mJ/inference under the F4 policy\n\n"
          net.Zoo.net_name net.Zoo.resolution batch
          r.Sim.Network_runner.throughput_imgs_per_s
          (r.Sim.Network_runner.energy_pj /. 1e9 /. float_of_int batch);
        Printf.printf "%-16s %-22s %-12s %12s %10s\n" "layer" "shape" "kernel"
          "cycles" "uJ";
        List.iter
          (fun c ->
            let l = c.Sim.Network_runner.layer in
            Printf.printf "%-16s %-22s %-12s %12.0f %10.1f\n" l.Zoo.name
              (Printf.sprintf "%dx%d %d->%d k%d s%d (x%d)" l.Zoo.out_h
                 l.Zoo.out_w l.Zoo.cin l.Zoo.cout l.Zoo.k l.Zoo.stride
                 l.Zoo.repeat)
              (Sim.Operator.kind_name c.Sim.Network_runner.chosen)
              c.Sim.Network_runner.result.Sim.Operator.cycles
              (c.Sim.Network_runner.result.Sim.Operator.energy.Sim.Operator.e_total
              /. 1e6))
          r.Sim.Network_runner.layers
  in
  Cmd.v (Cmd.info "layers" ~doc) Term.(const run $ network $ batch $ resolution)

let train_cmd =
  let doc =
    "Train a small QAT model on the synthetic dataset, with optional \
     crash-safe checkpointing.  History lines print losses/accuracies in \
     hexadecimal float notation so that an interrupted-and-resumed run can \
     be diffed bit-exactly against an uninterrupted one."
  in
  let epochs = Arg.(value & opt int 4 & info [ "epochs" ] ~doc:"Epochs.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let mode =
    Arg.(value & opt string "int8" & info [ "mode" ] ~doc:"fp32, int8 or wa.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:"Snapshot training state to $(docv) (atomically, rotated).")
  in
  let every =
    Arg.(
      value & opt int 4
      & info [ "every" ]
          ~doc:"Snapshot every N batches (besides epoch ends); 0 disables \
                the mid-epoch cadence.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Resume from the newest valid snapshot at --checkpoint.")
  in
  let data_parallel =
    Arg.(
      value & flag
      & info [ "data-parallel" ]
          ~doc:"Split batches across the domain pool (TWQ_NUM_DOMAINS).")
  in
  let run epochs seed mode checkpoint every resume data_parallel =
    let module Synth = Twq_dataset.Synth_images in
    let module Qat = Twq_nn.Qat_model in
    let module Trainer = Twq_nn.Trainer in
    let conv_mode =
      match String.lowercase_ascii mode with
      | "fp32" -> Qat.Fp32
      | "int8" -> Qat.Int8_spatial
      | "wa" ->
          Qat.Wa
            {
              variant = Twq_winograd.Transform.F4;
              wino_bits = 8;
              tapwise = true;
              pow2 = false;
              learned = true;
            }
      | s ->
          Printf.eprintf "unknown mode %S (fp32 | int8 | wa)\n" s;
          exit 2
    in
    if resume && checkpoint = None then begin
      Printf.eprintf "--resume requires --checkpoint PATH\n";
      exit 2
    end;
    let spec =
      { Synth.default_spec with n_train = 96; n_valid = 32; n_test = 32 }
    in
    let dataset = Synth.generate ~spec ~seed:11 () in
    let model =
      Qat.create { (Qat.default_config conv_mode) with arch = Qat.Vgg_mini [ 4; 8 ] } ~seed
    in
    let options =
      {
        Trainer.default_options with
        epochs;
        seed;
        data_parallel;
        checkpoint =
          Option.map
            (fun p -> { Trainer.ckpt_path = p; ckpt_every = every })
            checkpoint;
      }
    in
    let history =
      if resume then Trainer.train_resume model dataset options
      else Trainer.train model dataset options
    in
    Array.iteri
      (fun e loss ->
        Printf.printf "epoch %d loss %h acc %h\n" e loss
          history.Trainer.valid_acc.(e))
      history.Trainer.train_loss;
    Printf.printf "test %h\n" (Trainer.evaluate model dataset.Synth.test)
  in
  Cmd.v (Cmd.info "train" ~doc)
    Term.(
      const run $ epochs $ seed $ mode $ checkpoint $ every $ resume
      $ data_parallel)

(* ----------------------------------------------------------- serving *)

module Serve = Twq_serve
module STensor = Twq_tensor.Tensor

let registry_dir_arg =
  Arg.(
    value & opt string "zoo"
    & info [ "dir" ] ~docv:"DIR" ~doc:"Model registry directory.")

let or_die ~what = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s: %s\n" what (Serve.Registry.error_to_string e);
      exit 1

let open_registry dir =
  let reg = or_die ~what:"registry" (Serve.Registry.open_dir dir) in
  List.iter
    (fun f -> Printf.eprintf "registry: removed orphan tmp %s\n" f)
    (Serve.Registry.orphans_removed reg);
  List.iter
    (fun (f, e) ->
      Printf.eprintf "registry: skipped %s (%s)\n" f
        (Serve.Registry.error_to_string e))
    (Serve.Registry.skipped reg);
  reg

(* Daemon foreground loop: SIGTERM/SIGINT (or [until] turning true, e.g.
   a remote Drain) requests a graceful stop.  The handler only flips a
   flag — the main thread does the actual teardown, because stopping
   joins threads and signal-handler context is the wrong place for
   that. *)
let wait_for_stop ?(until = fun () -> false) () =
  let stop = ref false in
  let h = Sys.Signal_handle (fun _ -> stop := true) in
  (try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint h with Invalid_argument _ | Sys_error _ -> ());
  while not (!stop || until ()) do
    Thread.delay 0.2
  done

let build_graph_model ~arch ~res ~width_div ~classes ~seed =
  let module Rng = Twq_util.Rng in
  let rng = Rng.create seed in
  let g =
    match String.lowercase_ascii arch with
    | "resnet20" -> Twq_nn.Gmodels.resnet20 ~rng ~classes ~width_div ()
    | "vgg" -> Twq_nn.Gmodels.vgg_nagadomi ~rng ~classes ~width_div ()
    | s ->
        Printf.eprintf "unknown arch %S (resnet20 | vgg)\n" s;
        exit 2
  in
  let g = Twq_nn.Passes.fold_bn g in
  let cal = STensor.rand_gaussian rng [| 2; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
  Twq_nn.Int_graph.quantize g ~calibration:cal ()

let publish_cmd =
  let doc =
    "Build a small quantized model (integer graph over the tap-wise \
     Winograd kernels) and publish it into a registry directory as a \
     CRC-framed, atomically-written artifact — or, with --fleet, stage it \
     on every listed shard daemon and atomically flip the fleet's active \
     version (rolling back on partial failure)."
  in
  let name_arg =
    Arg.(value & opt string "tiny" & info [ "name" ] ~doc:"Model name.")
  in
  let version =
    Arg.(value & opt int 1 & info [ "model-version" ] ~doc:"Model version.")
  in
  let arch =
    Arg.(value & opt string "resnet20" & info [ "arch" ] ~doc:"resnet20 or vgg.")
  in
  let res =
    Arg.(value & opt int 8 & info [ "res" ] ~doc:"Input resolution (H = W).")
  in
  let width_div =
    Arg.(value & opt int 2 & info [ "width-div" ] ~doc:"Channel width divisor.")
  in
  let classes = Arg.(value & opt int 10 & info [ "classes" ] ~doc:"Classes.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Weight RNG seed.") in
  let fleet =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "fleet" ] ~docv:"SOCK,..."
          ~doc:
            "Comma-separated shard daemon sockets: stage the artifact on \
             every shard, then flip all their active versions (two-phase; \
             rolls back on partial failure).  Exits non-zero if the fleet \
             did not commit.")
  in
  let run dir name version arch res width_div classes seed fleet =
    let ig = build_graph_model ~arch ~res ~width_div ~classes ~seed in
    let model = Serve.Model.Graph ig in
    let input_dims = [| 3; res; res |] in
    match fleet with
    | None ->
        let reg = open_registry dir in
        let entry =
          or_die ~what:"publish"
            (Serve.Registry.publish reg ~name ~version ~input_dims model)
        in
        Printf.printf
          "published %s v%d to %s: %s %dx%dx%d, %d winograd / %d spatial \
           layers, crc %08x\n"
          entry.Serve.Registry.name entry.Serve.Registry.version dir
          (Serve.Model.kind model) 3 res res
          (Twq_nn.Int_graph.winograd_layer_count ig)
          (Twq_nn.Int_graph.spatial_layer_count ig)
          entry.Serve.Registry.crc
    | Some endpoints ->
        let outcome =
          or_die ~what:"fleet publish"
            (Serve.Registry.publish_fleet ~endpoints ~name ~version
               ~input_dims model)
        in
        List.iter
          (fun r ->
            Printf.printf "  %-30s staged=%b active=%b rolled_back=%b  %s\n"
              r.Serve.Registry.endpoint r.Serve.Registry.prepared
              r.Serve.Registry.activated r.Serve.Registry.rolled_back
              r.Serve.Registry.detail)
          outcome.Serve.Registry.reports;
        if outcome.Serve.Registry.committed then
          Printf.printf "fleet publish committed: %s v%d on %d shard(s)\n"
            name version
            (List.length outcome.Serve.Registry.reports)
        else begin
          Printf.eprintf "fleet publish did NOT commit (rolled back)\n";
          exit 1
        end
  in
  Cmd.v (Cmd.info "publish" ~doc)
    Term.(
      const run $ registry_dir_arg $ name_arg $ version $ arch $ res $ width_div
      $ classes $ seed $ fleet)

let prune_cmd =
  let doc =
    "Magnitude-prune a quantized model's Winograd-domain weights to a \
     target density (Pruning.prune_quantized per tap-wise layer) and \
     publish the pruned artifact — into a registry directory, or with \
     --fleet onto every listed shard daemon.  The source model is an \
     existing registry artifact (--from) or a freshly built one (same \
     flags as publish).  Re-packing the pruned graph takes the per-tap \
     sparse/dense execution decision against TWQ_SPARSE_THRESHOLD, so \
     anything serving the artifact runs the compressed-panel GEMMs on \
     the taps that earned them."
  in
  let name_arg =
    Arg.(value & opt string "tiny-pruned" & info [ "name" ] ~doc:"Published model name.")
  in
  let version =
    Arg.(value & opt int 1 & info [ "model-version" ] ~doc:"Published model version.")
  in
  let arch =
    Arg.(value & opt string "resnet20" & info [ "arch" ] ~doc:"resnet20 or vgg.")
  in
  let res =
    Arg.(value & opt int 8 & info [ "res" ] ~doc:"Input resolution (H = W).")
  in
  let width_div =
    Arg.(value & opt int 2 & info [ "width-div" ] ~doc:"Channel width divisor.")
  in
  let classes = Arg.(value & opt int 10 & info [ "classes" ] ~doc:"Classes.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Weight RNG seed.") in
  let density =
    Arg.(
      value & opt float 0.3
      & info [ "density" ] ~docv:"D"
          ~doc:"Nonzero fraction to keep in the Winograd domain, in (0, 1].")
  in
  let from =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"NAME"
          ~doc:"Prune an existing registry artifact instead of building one.")
  in
  let from_version =
    Arg.(
      value
      & opt (some int) None
      & info [ "from-version" ] ~doc:"Source artifact version (default: latest).")
  in
  let fleet =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "fleet" ] ~docv:"SOCK,..."
          ~doc:
            "Comma-separated shard daemon sockets: stage the pruned \
             artifact on every shard, then flip all their active versions \
             (two-phase; rolls back on partial failure).")
  in
  let check =
    Arg.(
      value & opt int 0
      & info [ "check" ] ~docv:"N"
          ~doc:
            "After publishing, serve the pruned artifact from a \
             throwaway daemon and assert N random wire inferences are \
             bit-identical to dense in-process execution of the same \
             pruned weights (exit 1 on any mismatch).")
  in
  let run dir name version arch res width_div classes seed density from
      from_version fleet check =
    let ig, input_dims =
      match from with
      | Some src -> (
          let reg = open_registry dir in
          let entry =
            or_die ~what:"lookup"
              (Serve.Registry.lookup ?version:from_version reg src)
          in
          match entry.Serve.Registry.model with
          | Serve.Model.Graph ig -> (ig, entry.Serve.Registry.input_dims)
          | Serve.Model.Net _ ->
              Printf.eprintf
                "prune: %s is a float net artifact; only integer graphs \
                 carry Winograd-domain weights\n"
                src;
              exit 2)
      | None ->
          ( build_graph_model ~arch ~res ~width_div ~classes ~seed,
            [| 3; res; res |] )
    in
    let before = Twq_nn.Int_graph.winograd_density ig in
    let pruned =
      try Twq_nn.Int_graph.prune ig ~density
      with Invalid_argument m ->
        Printf.eprintf "prune: %s\n" m;
        exit 2
    in
    let after = Twq_nn.Int_graph.winograd_density pruned in
    let sparse, total = Twq_nn.Int_graph.wino_sparsity pruned in
    let model = Serve.Model.Graph pruned in
    (match fleet with
    | None ->
        let reg = open_registry dir in
        let entry =
          or_die ~what:"publish"
            (Serve.Registry.publish reg ~name ~version ~input_dims model)
        in
        Printf.printf "published %s v%d to %s, crc %08x\n"
          entry.Serve.Registry.name entry.Serve.Registry.version dir
          entry.Serve.Registry.crc
    | Some endpoints ->
        let outcome =
          or_die ~what:"fleet publish"
            (Serve.Registry.publish_fleet ~endpoints ~name ~version
               ~input_dims model)
        in
        List.iter
          (fun r ->
            Printf.printf "  %-30s staged=%b active=%b rolled_back=%b  %s\n"
              r.Serve.Registry.endpoint r.Serve.Registry.prepared
              r.Serve.Registry.activated r.Serve.Registry.rolled_back
              r.Serve.Registry.detail)
          outcome.Serve.Registry.reports;
        if not outcome.Serve.Registry.committed then begin
          Printf.eprintf "fleet publish did NOT commit (rolled back)\n";
          exit 1
        end);
    Printf.printf
      "winograd density %.3f -> %.3f (requested %.2f), sparse taps %d/%d \
       at threshold %.2f\n"
      before after density sparse total
      (Twq_winograd.Microkernel.sparse_threshold ());
    if check > 0 then begin
      (* Dense oracle: the same deterministic prune re-packed with the
         compressed-panel driver disabled. *)
      let t0 = Twq_winograd.Microkernel.sparse_threshold () in
      Twq_winograd.Microkernel.set_sparse_threshold 0.0;
      let dense = Serve.Model.Graph (Twq_nn.Int_graph.prune ig ~density) in
      Twq_winograd.Microkernel.set_sparse_threshold t0;
      let tmp = Filename.temp_file "twq_prune_check" "" in
      Sys.remove tmp;
      Unix.mkdir tmp 0o700;
      let sock = Filename.temp_file "twq_prune_check" ".sock" in
      Sys.remove sock;
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists sock then Sys.remove sock;
          if Sys.file_exists tmp then begin
            Array.iter
              (fun f -> Sys.remove (Filename.concat tmp f))
              (Sys.readdir tmp);
            Unix.rmdir tmp
          end)
        (fun () ->
          let creg = or_die ~what:"check registry" (Serve.Registry.open_dir tmp) in
          ignore
            (or_die ~what:"check publish"
               (Serve.Registry.publish creg ~name ~version ~input_dims model));
          match Serve.Server.listen ~registry:creg ~path:sock () with
          | Error e ->
              Printf.eprintf "check: listen: %s\n" e;
              exit 1
          | Ok d ->
              Fun.protect
                ~finally:(fun () -> Serve.Server.stop_daemon d)
                (fun () ->
                  let c =
                    match Serve.Shard_client.connect sock with
                    | Ok c -> c
                    | Error e ->
                        Printf.eprintf "check: connect: %s\n"
                          (Serve.Shard_client.error_to_string e);
                        exit 1
                  in
                  Fun.protect
                    ~finally:(fun () -> Serve.Shard_client.close c)
                    (fun () ->
                      let rng = Twq_util.Rng.create 99 in
                      let nchw = Array.append [| 1 |] input_dims in
                      for i = 1 to check do
                        let x =
                          STensor.rand_gaussian rng input_dims ~mu:0.0
                            ~sigma:1.0
                        in
                        let x1 = STensor.zeros nchw in
                        Array.blit x.STensor.data 0 x1.STensor.data 0
                          (Array.length x.STensor.data);
                        let y = Serve.Model.run_batch dense x1 in
                        let classes = STensor.dim y 1 in
                        let expect = Array.sub y.STensor.data 0 classes in
                        match Serve.Shard_client.infer c x with
                        | Ok { outcome = Serve.Wire.Logits { data; _ }; _ } ->
                            if data <> expect then begin
                              Printf.eprintf
                                "check: inference %d/%d differs from dense \
                                 execution\n"
                                i check;
                              exit 1
                            end
                        | Ok _ ->
                            Printf.eprintf
                              "check: inference %d/%d got a non-logits reply\n"
                              i check;
                            exit 1
                        | Error e ->
                            Printf.eprintf "check: infer: %s\n"
                              (Serve.Shard_client.error_to_string e);
                            exit 1
                      done;
                      Printf.printf
                        "check ok: %d served inferences bit-identical to \
                         dense execution\n"
                        check)))
    end
  in
  Cmd.v (Cmd.info "prune" ~doc)
    Term.(
      const run $ registry_dir_arg $ name_arg $ version $ arch $ res
      $ width_div $ classes $ seed $ density $ from $ from_version $ fleet
      $ check)

let server_flags =
  let max_batch =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~doc:"Batch size cap.")
  in
  let max_delay_ms =
    Arg.(
      value & opt float 2.0
      & info [ "max-delay-ms" ] ~doc:"Batch window in milliseconds.")
  in
  let capacity =
    Arg.(value & opt int 64 & info [ "capacity" ] ~doc:"Request queue bound.")
  in
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~doc:"Compute worker domains.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~doc:"Per-request deadline in milliseconds.")
  in
  Term.(
    const (fun max_batch max_delay_ms capacity workers timeout_ms ->
        {
          Serve.Server.max_batch;
          max_delay = max_delay_ms /. 1e3;
          capacity;
          workers;
          default_deadline = Option.map (fun t -> t /. 1e3) timeout_ms;
        })
    $ max_batch $ max_delay_ms $ capacity $ workers $ timeout_ms)

let start_from_registry dir model_name version config =
  let reg = open_registry dir in
  let entry =
    or_die ~what:"lookup" (Serve.Registry.lookup ?version reg model_name)
  in
  let resolve () =
    match Serve.Registry.lookup ?version reg model_name with
    | Ok e -> e.Serve.Registry.model
    | Error _ -> entry.Serve.Registry.model
  in
  Printf.printf "serving %s v%d (input %dx%dx%d, max_batch %d, delay %.1f ms, \
                 capacity %d, %d worker%s)\n%!"
    entry.Serve.Registry.name entry.Serve.Registry.version
    entry.Serve.Registry.input_dims.(0) entry.Serve.Registry.input_dims.(1)
    entry.Serve.Registry.input_dims.(2) config.Serve.Server.max_batch
    (1e3 *. config.Serve.Server.max_delay) config.Serve.Server.capacity
    config.Serve.Server.workers
    (if config.Serve.Server.workers = 1 then "" else "s");
  let server =
    Serve.Server.start ~config ~model:resolve
      ~input_dims:entry.Serve.Registry.input_dims ()
  in
  (server, entry)

let make_input_fn entry seed =
  let module Rng = Twq_util.Rng in
  let dims = entry.Serve.Registry.input_dims in
  fun i ->
    let rng = Rng.create (seed + (31 * i)) in
    STensor.rand_gaussian rng [| dims.(0); dims.(1); dims.(2) |] ~mu:0.0
      ~sigma:1.0

let write_or_print ~label path contents =
  match path with
  | Some f ->
      let oc = open_out f in
      output_string oc contents;
      close_out oc;
      Printf.printf "%s written to %s\n" label f
  | None -> print_string contents

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write the metrics JSON here.")

let serve_cmd =
  let doc =
    "Run the inference server.  Default (socket-free): generate an \
     open-loop request stream in-process and print per-outcome counts \
     plus the server metrics JSON.  With --listen SOCK: run as a shard \
     daemon speaking the length-prefixed CRC-framed wire protocol on a \
     Unix-domain socket until SIGTERM/SIGINT or a remote Drain."
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"SOCK"
          ~doc:
            "Serve the registry over a Unix-domain socket at $(docv) \
             (daemon mode; ignores --requests/--rate/--seed).")
  in
  let model_name =
    Arg.(value & opt string "tiny" & info [ "model" ] ~doc:"Model name.")
  in
  let version =
    Arg.(
      value
      & opt (some int) None
      & info [ "model-version" ] ~doc:"Pin a version (default: newest).")
  in
  let requests =
    Arg.(value & opt int 256 & info [ "requests" ] ~doc:"Stream length.")
  in
  let rate =
    Arg.(
      value & opt float 200.0
      & info [ "rate" ] ~doc:"Arrival rate, requests/second.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Input RNG seed.") in
  let run dir model_name version config requests rate seed metrics_out listen =
    ignore (Serve.Fault.install_from_env ());
    match listen with
    | Some path -> (
        let reg = open_registry dir in
        match Serve.Server.listen ~config ~registry:reg ~path () with
        | Error e ->
            Printf.eprintf "listen: %s\n" e;
            exit 1
        | Ok d ->
            Printf.printf "shard daemon listening on %s (registry %s)\n%!" path
              dir;
            wait_for_stop ~until:(fun () -> Serve.Server.daemon_draining d) ();
            Serve.Server.stop_daemon d;
            write_or_print ~label:"stats" metrics_out
              (Serve.Server.daemon_stats_json d))
    | None ->
    let server, entry = start_from_registry dir model_name version config in
    let make_input = make_input_fn entry seed in
    let t0 = Unix.gettimeofday () in
    let tickets =
      Array.init requests (fun i ->
          (if rate > 0.0 then
             let slot = t0 +. (float_of_int i /. rate) in
             let wait = slot -. Unix.gettimeofday () in
             if wait > 0.0 then Unix.sleepf wait);
          Serve.Server.submit server (make_input i))
    in
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun ticket ->
        let label = Serve.Server.outcome_label (Serve.Server.await ticket) in
        Hashtbl.replace counts label
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts label)))
      tickets;
    let wall = Unix.gettimeofday () -. t0 in
    Serve.Server.shutdown server;
    Printf.printf "%d requests in %.3f s (offered %.1f req/s):\n" requests wall
      rate;
    List.iter
      (fun (label, n) -> Printf.printf "  %-18s %d\n" label n)
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []));
    write_or_print ~label:"metrics" metrics_out
      (Serve.Metrics.to_json (Serve.Server.metrics server))
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ registry_dir_arg $ model_name $ version $ server_flags
      $ requests $ rate $ seed $ metrics_out_arg $ listen)

let route_cmd =
  let doc =
    "Run the consistent-hash router daemon: hash each request's routing \
     key onto a ring over --shards, proxy to the owning shard, fail over \
     to the next ring node when a shard dies or sheds (idempotent \
     requests only), and heartbeat every shard for health."
  in
  let listen =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"SOCK" ~doc:"Router's own socket path.")
  in
  let shards =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "shards" ] ~docv:"SOCK,..." ~doc:"Shard daemon socket paths.")
  in
  let vnodes =
    Arg.(value & opt int 64 & info [ "vnodes" ] ~doc:"Ring points per shard.")
  in
  let heartbeat_ms =
    Arg.(
      value & opt float 250.0
      & info [ "heartbeat-ms" ] ~doc:"Health ping interval, milliseconds.")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:"Write the router stats JSON here on exit.")
  in
  let connect_timeout_ms =
    Arg.(
      value & opt float 2000.0
      & info [ "connect-timeout-ms" ]
          ~doc:"Per-exchange shard socket timeout, milliseconds.")
  in
  let breaker_failures =
    Arg.(
      value & opt int 5
      & info [ "breaker-failures" ]
          ~doc:"Consecutive transport failures that trip a shard's breaker.")
  in
  let breaker_cooldown_ms =
    Arg.(
      value & opt float 1000.0
      & info [ "breaker-cooldown-ms" ]
          ~doc:"Milliseconds a breaker stays open before a half-open probe.")
  in
  let retry_attempts =
    Arg.(
      value & opt int 3
      & info [ "retry-attempts" ]
          ~doc:
            "Per-request attempt budget, including the first attempt (1 \
             disables retrying).")
  in
  let hedge =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "Race a second shard when the first attempt is slower than the \
             observed p99 attempt latency.")
  in
  let hedge_floor_ms =
    Arg.(
      value & opt float 10.0
      & info [ "hedge-floor-ms" ] ~doc:"Minimum hedge delay, milliseconds.")
  in
  let seed =
    Arg.(
      value & opt int 0 & info [ "seed" ] ~doc:"Retry-jitter RNG seed.")
  in
  let run listen shards vnodes heartbeat_ms stats_out connect_timeout_ms
      breaker_failures breaker_cooldown_ms retry_attempts hedge hedge_floor_ms
      seed =
    ignore (Serve.Fault.install_from_env ());
    let config =
      {
        Serve.Router.default_config with
        vnodes;
        heartbeat_interval = heartbeat_ms /. 1e3;
        connect_timeout = connect_timeout_ms /. 1e3;
        retry =
          (if retry_attempts <= 1 then Serve.Retry.no_retry
           else { Serve.Retry.default with attempts = retry_attempts });
        breaker_failures;
        breaker_cooldown = breaker_cooldown_ms /. 1e3;
        hedge;
        hedge_floor = hedge_floor_ms /. 1e3;
        seed;
      }
    in
    match Serve.Router.start ~config ~shards ~path:listen () with
    | Error e ->
        Printf.eprintf "route: %s\n" e;
        exit 1
    | Ok r ->
        Printf.printf "router listening on %s over %d shard(s)\n%!" listen
          (List.length shards);
        wait_for_stop ();
        Serve.Router.stop r;
        write_or_print ~label:"stats" stats_out (Serve.Router.stats_json r)
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run $ listen $ shards $ vnodes $ heartbeat_ms $ stats_out
      $ connect_timeout_ms $ breaker_failures $ breaker_cooldown_ms
      $ retry_attempts $ hedge $ hedge_floor_ms $ seed)

let stats_cmd =
  let doc = "Fetch the stats JSON from a running shard daemon or router." in
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCK" ~doc:"Endpoint socket path.")
  in
  let run connect =
    match Serve.Shard_client.connect connect with
    | Error e ->
        Printf.eprintf "stats: %s\n" (Serve.Shard_client.error_to_string e);
        exit 1
    | Ok c -> (
        match Serve.Shard_client.stats c with
        | Ok json ->
            Serve.Shard_client.close c;
            print_string json
        | Error e ->
            Serve.Shard_client.close c;
            Printf.eprintf "stats: %s\n" (Serve.Shard_client.error_to_string e);
            exit 1)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ connect)

let loadgen_cmd =
  let doc =
    "Load generator.  Default: closed loop against the in-process server \
     (--concurrency clients each keep one request outstanding).  With \
     --connect SOCK: open-loop Poisson arrivals over the wire against a \
     shard daemon or router, measuring latency from each request's \
     scheduled arrival (coordinated-omission corrected) and reporting \
     SLO attainment against --slo-ms."
  in
  let model_name =
    Arg.(value & opt string "tiny" & info [ "model" ] ~doc:"Model name.")
  in
  let version =
    Arg.(
      value
      & opt (some int) None
      & info [ "model-version" ] ~doc:"Pin a version (default: newest).")
  in
  let requests =
    Arg.(value & opt int 256 & info [ "requests" ] ~doc:"Total requests.")
  in
  let concurrency =
    Arg.(value & opt int 8 & info [ "concurrency" ] ~doc:"Client domains.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~doc:"Pace requests/second (0 = unpaced closed loop).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Input RNG seed.") in
  let summary_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-out" ] ~docv:"FILE" ~doc:"Write the summary JSON here.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCK"
          ~doc:"Wire endpoint (shard or router): open-loop Poisson mode.")
  in
  let slo_ms =
    Arg.(
      value & opt float 50.0
      & info [ "slo-ms" ] ~doc:"Latency budget for SLO attainment (wire mode).")
  in
  let res =
    Arg.(
      value & opt int 8
      & info [ "res" ] ~doc:"Input resolution H = W (wire mode).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:
            "Per-request relative deadline carried on the wire, \
             milliseconds (wire mode).")
  in
  let retry_attempts =
    Arg.(
      value & opt int 1
      & info [ "retry-attempts" ]
          ~doc:
            "Client-side attempt budget per request, including the first \
             attempt; 1 disables retrying (wire mode).")
  in
  let run dir model_name version config requests concurrency rate seed
      metrics_out summary_out connect slo_ms res deadline_ms retry_attempts =
    ignore (Serve.Fault.install_from_env ());
    match connect with
    | Some endpoint ->
        let rate = if rate > 0.0 then rate else 100.0 in
        let make_input i =
          let module Rng = Twq_util.Rng in
          let rng = Rng.create (seed + (31 * i)) in
          STensor.rand_gaussian rng [| 3; res; res |] ~mu:0.0 ~sigma:1.0
        in
        let retry =
          if retry_attempts <= 1 then Serve.Retry.no_retry
          else { Serve.Retry.default with attempts = retry_attempts }
        in
        let s =
          Serve.Loadgen.run_poisson
            ~connect:(fun () -> Serve.Shard_client.connect endpoint)
            ~make_input ~requests ~rate ~slo:(slo_ms /. 1e3)
            ~connections:concurrency ~seed ~retry
            ?deadline:(Option.map (fun b -> b /. 1e3) deadline_ms) ()
        in
        print_endline (Serve.Loadgen.slo_to_text s);
        (match summary_out with
        | Some f ->
            let oc = open_out f in
            output_string oc (Serve.Loadgen.slo_to_json s);
            close_out oc;
            Printf.printf "summary written to %s\n" f
        | None -> ())
    | None ->
    let server, entry = start_from_registry dir model_name version config in
    let summary =
      Serve.Loadgen.run ~server ~make_input:(make_input_fn entry seed)
        ~requests ~concurrency ~rate ()
    in
    Serve.Server.shutdown server;
    print_endline (Serve.Loadgen.summary_to_text summary);
    (match summary_out with
    | Some f ->
        let oc = open_out f in
        output_string oc (Serve.Loadgen.summary_to_json summary);
        close_out oc;
        Printf.printf "summary written to %s\n" f
    | None -> ());
    write_or_print ~label:"metrics" metrics_out
      (Serve.Metrics.to_json (Serve.Server.metrics server))
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ registry_dir_arg $ model_name $ version $ server_flags
      $ requests $ concurrency $ rate $ seed $ metrics_out_arg $ summary_out
      $ connect $ slo_ms $ res $ deadline_ms $ retry_attempts)

let rns_cmd =
  let doc =
    "Plan (and optionally self-check) the residue-number-system integer \
     Winograd backend: validate a modulus basis against the worst-case \
     dynamic range of F(m,r) and report the range proof."
  in
  let m_arg =
    Arg.(value & opt int 6 & info [ "m" ] ~docv:"M" ~doc:"Output tile size.")
  in
  let r_arg =
    Arg.(value & opt int 3 & info [ "r" ] ~docv:"R" ~doc:"Kernel size (odd).")
  in
  let cin_arg =
    Arg.(value & opt int 64 & info [ "cin" ] ~doc:"Input channels to prove for.")
  in
  let xmax_arg =
    Arg.(value & opt int 128 & info [ "xmax" ] ~doc:"Max |input| value.")
  in
  let wmax_arg =
    Arg.(value & opt int 128 & info [ "wmax" ] ~doc:"Max |weight| value.")
  in
  let basis_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "basis" ] ~docv:"P1,P2,.."
          ~doc:"Comma-separated coprime moduli (default: suggest one).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run one random convolution through the planned backend and \
             verify it bit-exact against the direct integer convolution.")
  in
  let run m r cin xmax wmax basis check =
    let module Rns = Twq_winograd.Rns in
    let module Itensor = Twq_tensor.Itensor in
    let fail e =
      Printf.eprintf "rejected: %s\n" (Rns.error_to_string e);
      exit 1
    in
    let basis =
      match basis with
      | Some b -> b
      | None -> (
          match Rns.suggest_basis ~m ~r ~cin ~xmax ~wmax () with
          | Ok b ->
              Printf.printf "suggested basis: [%s]\n"
                (String.concat "; " (List.map string_of_int b));
              b
          | Error e -> fail e)
    in
    match Rns.plan ~m ~r ~basis ~cin ~xmax ~wmax () with
    | Error e -> fail e
    | Ok plan ->
        print_endline (Rns.describe plan);
        if check then begin
          let rng = Twq_util.Rng.create 20260808 in
          let ci = min cin 8 and co = 8 and hw = 3 * m in
          let rand_it shape lim =
            Itensor.init shape (fun _ ->
                Twq_util.Rng.int rng ((2 * lim) + 1) - lim)
          in
          let x = rand_it [| 1; ci; hw; hw |] xmax in
          let w = rand_it [| co; ci; r; r |] wmax in
          let got = Rns.conv2d plan ~pad:(r / 2) ~x ~w () in
          let want =
            let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
            let pad = r / 2 in
            Itensor.init
              [| 1; co; h + (2 * pad) - r + 1; wd + (2 * pad) - r + 1 |]
              (fun idx ->
                let acc = ref 0 in
                for c = 0 to ci - 1 do
                  for ki = 0 to r - 1 do
                    for kj = 0 to r - 1 do
                      let hi = idx.(2) + ki - pad and wi = idx.(3) + kj - pad in
                      if hi >= 0 && hi < h && wi >= 0 && wi < wd then
                        acc :=
                          !acc
                          + Itensor.get4 x 0 c hi wi
                            * Itensor.get4 w idx.(1) c ki kj
                    done
                  done
                done;
                !acc)
          in
          if Itensor.equal got want then
            Printf.printf
              "self-check: OK — bit-exact vs direct integer conv \
               (%dx%d image, %d->%d channels)\n"
              hw hw ci co
          else begin
            Printf.eprintf "self-check: MISMATCH\n";
            exit 1
          end
        end
  in
  Cmd.v (Cmd.info "rns" ~doc)
    Term.(
      const run $ m_arg $ r_arg $ cin_arg $ xmax_arg $ wmax_arg $ basis_arg
      $ check_arg)

let () =
  let doc = "Tap-wise quantized Winograd F4 — paper reproduction driver" in
  let info = Cmd.info "twq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; trace_cmd; layers_cmd; train_cmd; publish_cmd;
            prune_cmd; serve_cmd; loadgen_cmd; route_cmd; stats_cmd; rns_cmd;
          ]))
