(* Tests for the graph IR, the compiler passes (BN folding, shape
   inference, operator selection) and the integer-graph quantizer with
   residual connections. *)

open Twq_nn
module Tensor = Twq_tensor.Tensor
module Shape = Twq_tensor.Shape
module Ops = Twq_tensor.Ops
module Rng = Twq_util.Rng
module Transform = Twq_winograd.Transform
module Sim = Twq_sim

let tensor_loose = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:1e-6)

let rng () = Rng.create 2027

(* ------------------------------------------------------------------ ir *)

let tiny_graph () =
  let rng = rng () in
  let g = Graph.create () in
  let x = Graph.input g in
  let c =
    Graph.add g
      (Graph.Conv
         { w = Tensor.rand_gaussian rng [| 4; 3; 3; 3 |] ~mu:0.0 ~sigma:0.3;
           bias = None; stride = 1; pad = 1 })
      [ x ]
  in
  let r = Graph.add g Graph.Relu [ c ] in
  let gap = Graph.add g Graph.Global_avg_pool [ r ] in
  let fc =
    Graph.add g
      (Graph.Linear
         { w = Tensor.rand_gaussian rng [| 2; 4 |] ~mu:0.0 ~sigma:0.5;
           bias = Some (Tensor.zeros [| 2 |]) })
      [ gap ]
  in
  Graph.set_output g fc;
  g

let test_graph_run_shapes () =
  let g = tiny_graph () in
  let x = Tensor.rand_gaussian (rng ()) [| 2; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  let y = Graph.run g x in
  Alcotest.(check (array int)) "logits" [| 2; 2 |] y.Tensor.shape;
  Alcotest.(check int) "conv count" 1 (Graph.conv_count g)

let test_graph_infer_shapes_match_run () =
  let g = Gmodels.resnet20 ~rng:(rng ()) ~width_div:4 () in
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let shapes = Graph.infer_shapes g ~input:x.Tensor.shape in
  let values = Graph.run_all g x in
  List.iter
    (fun ((id : Graph.id), s) ->
      Alcotest.(check (array int))
        "inferred = actual" s
        values.((id :> int)).Tensor.shape)
    shapes

let test_graph_arity_checks () =
  let g = Graph.create () in
  let x = Graph.input g in
  Alcotest.check_raises "add needs 2" (Invalid_argument "Graph.add: arity mismatch")
    (fun () -> ignore (Graph.add g Graph.Add [ x ]));
  Alcotest.check_raises "second input rejected"
    (Invalid_argument "Graph.input: input already defined") (fun () ->
      ignore (Graph.input g))

let test_graph_residual_add () =
  let g = Graph.create () in
  let x = Graph.input g in
  let r = Graph.add g Graph.Relu [ x ] in
  let s = Graph.add g Graph.Add [ r; x ] in
  Graph.set_output g s;
  let t = Tensor.of_array [| 1; 1; 1; 2 |] [| -1.0; 2.0 |] in
  Alcotest.check tensor_loose "relu(x)+x"
    (Tensor.of_array [| 1; 1; 1; 2 |] [| -1.0; 4.0 |])
    (Graph.run g t)

(* -------------------------------------------------------------- models *)

let test_models_run () =
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let r = Gmodels.resnet20 ~rng:(rng ()) ~classes:10 ~width_div:4 () in
  Alcotest.(check (array int)) "resnet20 logits" [| 1; 10 |] (Graph.run r x).Tensor.shape;
  Alcotest.(check int) "resnet20 convs" 21 (Graph.conv_count r);
  let v = Gmodels.vgg_nagadomi ~rng:(rng ()) ~classes:10 ~width_div:8 () in
  Alcotest.(check (array int)) "vgg logits" [| 1; 10 |] (Graph.run v x).Tensor.shape;
  Alcotest.(check int) "vgg convs" 8 (Graph.conv_count v)

let test_unet_mini_runs_and_quantizes () =
  let g = Gmodels.unet_mini ~rng:(rng ()) ~classes:2 () in
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  Alcotest.(check (array int)) "logits" [| 1; 2 |] (Graph.run g x).Tensor.shape;
  let folded = Passes.fold_bn g in
  Alcotest.(check int) "bn folded" 0 (Passes.bn_count folded);
  let iq = Int_graph.quantize folded ~calibration:x () in
  (* All 10 convs are 3x3 stride-1 → all Winograd. *)
  Alcotest.(check int) "all wino" 10 (Int_graph.winograd_layer_count iq);
  let noise = Int_graph.noise_vs_float iq folded x in
  Alcotest.(check bool) (Printf.sprintf "noise %.3f < 0.5" noise) true (noise < 0.5)

let test_concat_shape_checks () =
  let g = Graph.create () in
  let x = Graph.input g in
  let p = Graph.add g (Graph.Max_pool { k = 2; stride = 2 }) [ x ] in
  let c = Graph.add g Graph.Concat [ x; p ] in
  Graph.set_output g c;
  Alcotest.(check bool) "mismatched concat rejected" true
    (try
       ignore (Graph.infer_shapes g ~input:[| 1; 2; 8; 8 |]);
       false
     with Invalid_argument _ -> true)

let test_yolo_mini_runs_and_quantizes () =
  let g = Gmodels.yolo_mini ~rng:(rng ()) ~classes:10 () in
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  Alcotest.(check (array int)) "logits" [| 1; 10 |] (Graph.run g x).Tensor.shape;
  let folded = Passes.fold_bn g in
  let iq = Int_graph.quantize folded ~calibration:x () in
  (* 3x3s1 convs -> Winograd; 1x1 bottlenecks and stride-2 convs spatial. *)
  Alcotest.(check bool) "has wino layers" true (Int_graph.winograd_layer_count iq >= 4);
  Alcotest.(check bool) "has spatial layers" true (Int_graph.spatial_layer_count iq >= 4);
  let noise = Int_graph.noise_vs_float iq folded x in
  Alcotest.(check bool) (Printf.sprintf "noise %.3f < 0.6" noise) true (noise < 0.6);
  (* Serialization covers the leaky op. *)
  let reloaded = Int_graph.of_string (Int_graph.to_string iq) in
  Alcotest.(check bool) "leaky round-trip" true
    (Tensor.approx_equal ~tol:0.0 (Int_graph.run iq x) (Int_graph.run reloaded x))

let test_leaky_relu_semantics () =
  let g = Graph.create () in
  let x = Graph.input g in
  let l = Graph.add g (Graph.Leaky_relu 3) [ x ] in
  Graph.set_output g l;
  let t = Tensor.of_array [| 1; 1; 1; 2 |] [| -8.0; 4.0 |] in
  Alcotest.check tensor_loose "slope 1/8"
    (Tensor.of_array [| 1; 1; 1; 2 |] [| -1.0; 4.0 |])
    (Graph.run g t)

(* ------------------------------------------------------------- passes *)

let test_fold_bn_exact () =
  List.iter
    (fun g ->
      let x = Tensor.rand_gaussian (rng ()) [| 2; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
      let y = Graph.run g x in
      let folded = Passes.fold_bn g in
      Alcotest.(check int) "no bn left" 0 (Passes.bn_count folded);
      Alcotest.(check bool) "same conv count" true
        (Graph.conv_count folded = Graph.conv_count g);
      Alcotest.check tensor_loose "numerically identical" y (Graph.run folded x))
    [
      Gmodels.resnet20 ~rng:(rng ()) ~width_div:4 ();
      Gmodels.vgg_nagadomi ~rng:(rng ()) ~width_div:8 ();
    ]

(* ----------------------------------------------------------- int graph *)

let test_int_graph_resnet () =
  let g = Passes.fold_bn (Gmodels.resnet20 ~rng:(rng ()) ~width_div:4 ()) in
  let x = Tensor.rand_gaussian (rng ()) [| 2; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let iq = Int_graph.quantize g ~calibration:x () in
  (* 17 three-by-three stride-1 convs map to Winograd; 2 stride-2 convs and
     2 1x1 projections stay spatial. *)
  Alcotest.(check int) "wino layers" 17 (Int_graph.winograd_layer_count iq);
  Alcotest.(check int) "spatial layers" 4 (Int_graph.spatial_layer_count iq);
  let noise = Int_graph.noise_vs_float iq g x in
  Alcotest.(check bool) (Printf.sprintf "noise %.3f < 0.5" noise) true (noise < 0.5);
  Alcotest.(check (array int)) "logit shape" [| 2; 10 |]
    (Int_graph.run iq x).Tensor.shape

let test_int_graph_rejects_bn () =
  let g = Gmodels.resnet20 ~rng:(rng ()) ~width_div:4 () in
  let x = Tensor.zeros [| 1; 3; 16; 16 |] in
  Alcotest.check_raises "bn rejected"
    (Invalid_argument "Int_graph.quantize: run Passes.fold_bn first") (fun () ->
      ignore (Int_graph.quantize g ~calibration:x ()))

let test_int_graph_deterministic () =
  let g = Passes.fold_bn (Gmodels.vgg_nagadomi ~rng:(rng ()) ~width_div:8 ()) in
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let iq = Int_graph.quantize g ~calibration:x () in
  Alcotest.check tensor_loose "repeatable" (Int_graph.run iq x) (Int_graph.run iq x)

let test_int_graph_wino_bits_help () =
  let g = Passes.fold_bn (Gmodels.vgg_nagadomi ~rng:(rng ()) ~width_div:8 ()) in
  let x = Tensor.rand_gaussian (rng ()) [| 2; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let n8 = Int_graph.noise_vs_float (Int_graph.quantize g ~calibration:x ()) g x in
  let n12 =
    Int_graph.noise_vs_float (Int_graph.quantize g ~calibration:x ~wino_bits:12 ()) g x
  in
  Alcotest.(check bool) (Printf.sprintf "12 bits (%.3f) <= 8 bits (%.3f)" n12 n8) true
    (n12 <= n8)

let test_int_graph_learned_scales_deploy () =
  (* Deploy of a WA-trained model uses its scale grids (smoke check via the
     sequential Deploy path, which shares Tapwise.calibrate's override). *)
  let d =
    Twq_dataset.Synth_images.generate
      ~spec:{ Twq_dataset.Synth_images.default_spec with
              Twq_dataset.Synth_images.n_train = 64; n_valid = 16; n_test = 32 }
      ~seed:91 ()
  in
  let mode =
    Qat_model.Wa
      { Qat_model.variant = Transform.F4; wino_bits = 8; tapwise = true;
        pow2 = true; learned = true }
  in
  let model = Qat_model.create (Qat_model.default_config mode) ~seed:5 in
  let _ =
    Trainer.train model d { Trainer.default_options with Trainer.epochs = 2 }
  in
  (* Learned grids exist for every conv. *)
  List.iter
    (fun g -> Alcotest.(check bool) "grid present" true (g <> None))
    (Qat_model.learned_scale_grids model);
  let cal, _ =
    Twq_dataset.Synth_images.batch d d.Twq_dataset.Synth_images.train
      (Array.init 8 Fun.id)
  in
  let net = Deploy.export model ~calibration:cal () in
  let acc = Deploy.accuracy net d.Twq_dataset.Synth_images.test in
  Alcotest.(check bool) (Printf.sprintf "acc %.2f sane" acc) true
    (acc >= 0.0 && acc <= 1.0)

let test_int_graph_serialization_roundtrip () =
  let g = Passes.fold_bn (Gmodels.resnet20 ~rng:(rng ()) ~width_div:4 ()) in
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let iq = Int_graph.quantize g ~calibration:x () in
  let reloaded = Int_graph.of_string (Int_graph.to_string iq) in
  Alcotest.(check bool) "bit-identical logits" true
    (Tensor.approx_equal ~tol:0.0 (Int_graph.run iq x) (Int_graph.run reloaded x));
  Alcotest.(check int) "wino count survives" (Int_graph.winograd_layer_count iq)
    (Int_graph.winograd_layer_count reloaded);
  let path = Filename.temp_file "twq" ".igraph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Int_graph.save iq path;
      let from_file = Int_graph.load path in
      Alcotest.(check bool) "file round-trip" true
        (Tensor.approx_equal ~tol:0.0 (Int_graph.run iq x) (Int_graph.run from_file x)))

let test_int_graph_unet_serialization () =
  (* Covers the Concat / Upsample / Max_pool encodings. *)
  let g = Passes.fold_bn (Gmodels.unet_mini ~rng:(rng ()) ()) in
  let x = Tensor.rand_gaussian (rng ()) [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
  let iq = Int_graph.quantize g ~calibration:x () in
  let reloaded = Int_graph.of_string (Int_graph.to_string iq) in
  Alcotest.(check bool) "unet round-trip" true
    (Tensor.approx_equal ~tol:0.0 (Int_graph.run iq x) (Int_graph.run reloaded x))

let test_qat_to_graph_bridge () =
  let d =
    Twq_dataset.Synth_images.generate
      ~spec:{ Twq_dataset.Synth_images.default_spec with
              Twq_dataset.Synth_images.n_train = 64; n_valid = 16; n_test = 32 }
      ~seed:93 ()
  in
  let model = Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:6 in
  let _ =
    Trainer.train model d
      { Trainer.default_options with Trainer.epochs = 1 }
  in
  let cal, _ =
    Twq_dataset.Synth_images.batch d d.Twq_dataset.Synth_images.train
      (Array.init 16 Fun.id)
  in
  let g = Qat_model.to_graph model ~calibration:cal in
  (* Same calibration batch -> identical BN statistics -> identical logits. *)
  let from_model = Trainer.logits model cal in
  let from_graph = Graph.run g cal in
  Alcotest.(check bool) "model == graph on the calibration batch" true
    (Tensor.approx_equal ~tol:1e-4 from_model from_graph);
  (* And the whole compiler pipeline applies to the trained model. *)
  let iq = Int_graph.quantize (Passes.fold_bn g) ~calibration:cal () in
  Alcotest.(check int) "4 wino layers" 4 (Int_graph.winograd_layer_count iq)

(* ----------------------------------------------------- operator select *)

let test_graph_compiler_selection () =
  let g = Passes.fold_bn (Gmodels.resnet20 ~rng:(rng ()) ()) in
  let choices =
    Sim.Graph_compiler.select Sim.Arch.default g ~input:[| 1; 3; 32; 32 |] ()
  in
  Alcotest.(check int) "one choice per conv" (Graph.conv_count g)
    (List.length choices);
  (* 1x1 projections cannot be Winograd. *)
  List.iter
    (fun c ->
      if c.Sim.Graph_compiler.spec.Zoo.k = 1 then
        Alcotest.(check bool) "1x1 on im2col" true
          (c.Sim.Graph_compiler.kind = Sim.Operator.Im2col);
      (* Chosen kernel never loses to im2col. *)
      Alcotest.(check bool) "never slower" true
        (c.Sim.Graph_compiler.cycles <= c.Sim.Graph_compiler.im2col_cycles +. 1e-9))
    choices;
  let su = Sim.Graph_compiler.speedup_vs_im2col choices in
  Alcotest.(check bool) (Printf.sprintf "net speedup %.2f >= 1" su) true (su >= 1.0)

(* --------------------------------------------------------------- fuzz *)

let random_graph seed =
  (* Random sequential CNN with occasional residual blocks; always valid. *)
  let rng = Rng.create seed in
  let g = Graph.create () in
  let x = Graph.input g in
  let chans = ref 3 in
  let node = ref x in
  let n_blocks = 1 + Rng.int rng 3 in
  for _ = 1 to n_blocks do
    let cout = 2 + Rng.int rng 6 in
    let c =
      Graph.add g
        (Graph.Conv { w = Tensor.rand_gaussian rng [| cout; !chans; 3; 3 |] ~mu:0.0 ~sigma:0.3;
                      bias = None; stride = 1; pad = 1 })
        [ !node ]
    in
    let b =
      Graph.add g
        (Graph.Bn
           { gamma = Tensor.rand_uniform rng [| cout |] ~lo:0.8 ~hi:1.2;
             beta = Tensor.rand_uniform rng [| cout |] ~lo:(-0.1) ~hi:0.1;
             mean = Tensor.rand_uniform rng [| cout |] ~lo:(-0.05) ~hi:0.05;
             var = Tensor.rand_uniform rng [| cout |] ~lo:0.9 ~hi:1.1 })
        [ c ]
    in
    let r = Graph.add g Graph.Relu [ b ] in
    chans := cout;
    node :=
      (* Sometimes add a same-shape residual conv block. *)
      if Rng.bool rng then begin
        let c2 =
          Graph.add g
            (Graph.Conv { w = Tensor.rand_gaussian rng [| cout; cout; 3; 3 |] ~mu:0.0 ~sigma:0.3;
                          bias = None; stride = 1; pad = 1 })
            [ r ]
        in
        Graph.add g Graph.Add [ c2; r ]
      end
      else r
  done;
  let gap = Graph.add g Graph.Global_avg_pool [ !node ] in
  let fc =
    Graph.add g
      (Graph.Linear
         { w = Tensor.rand_gaussian rng [| 3; !chans |] ~mu:0.0 ~sigma:0.5;
           bias = Some (Tensor.zeros [| 3 |]) })
      [ gap ]
  in
  Graph.set_output g fc;
  g

let prop_random_graph_pipeline =
  QCheck.Test.make ~name:"random graphs: fold-bn exact, int path runs" ~count:15
    (QCheck.int_range 0 100000) (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 1) in
      let x = Tensor.rand_gaussian rng [| 1; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
      let y = Graph.run g x in
      let folded = Passes.fold_bn g in
      let fold_exact = Tensor.approx_equal ~tol:1e-6 y (Graph.run folded x) in
      let iq = Int_graph.quantize folded ~calibration:x () in
      let y_int = Int_graph.run iq x in
      fold_exact
      && Twq_tensor.Shape.equal y.Tensor.shape y_int.Tensor.shape
      && Array.for_all Float.is_finite y_int.Tensor.data)

let () =
  Alcotest.run "twq_graph"
    [
      ( "ir",
        [
          Alcotest.test_case "run + shapes" `Quick test_graph_run_shapes;
          Alcotest.test_case "shape inference" `Quick test_graph_infer_shapes_match_run;
          Alcotest.test_case "arity checks" `Quick test_graph_arity_checks;
          Alcotest.test_case "residual add" `Quick test_graph_residual_add;
        ] );
      ( "models",
        [
          Alcotest.test_case "run" `Quick test_models_run;
          Alcotest.test_case "unet-mini concat/upsample" `Quick test_unet_mini_runs_and_quantizes;
          Alcotest.test_case "concat shape check" `Quick test_concat_shape_checks;
          Alcotest.test_case "yolo-mini leaky/residual" `Quick test_yolo_mini_runs_and_quantizes;
          Alcotest.test_case "leaky relu semantics" `Quick test_leaky_relu_semantics;
        ] );
      ("passes", [ Alcotest.test_case "fold bn exact" `Quick test_fold_bn_exact ]);
      ( "int graph",
        [
          Alcotest.test_case "resnet20" `Quick test_int_graph_resnet;
          Alcotest.test_case "rejects bn" `Quick test_int_graph_rejects_bn;
          Alcotest.test_case "deterministic" `Quick test_int_graph_deterministic;
          Alcotest.test_case "wino bits help" `Quick test_int_graph_wino_bits_help;
        ] );
      ( "qat bridge",
        [ Alcotest.test_case "to_graph equivalence" `Slow test_qat_to_graph_bridge ] );
      ( "serialization",
        [
          Alcotest.test_case "resnet round-trip" `Quick test_int_graph_serialization_roundtrip;
          Alcotest.test_case "unet round-trip" `Quick test_int_graph_unet_serialization;
        ] );
      ( "deploy-learned",
        [ Alcotest.test_case "learned scales survive" `Slow test_int_graph_learned_scales_deploy ] );
      ( "compiler",
        [ Alcotest.test_case "operator selection" `Quick test_graph_compiler_selection ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 20260705 |])
            prop_random_graph_pipeline ] );
    ]
