(* Integration tests for the experiment harnesses: every cheap experiment
   must run and its output must exhibit the paper's qualitative claims.
   (The QAT-training experiments tab2/tab3 are exercised at unit level in
   test_nn and at full scale by bin/main.exe; here we only check their
   registration.) *)

open Twq_experiments

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

(* -------------------------------------------------------------- registry *)

let test_registry_complete () =
  let names = List.map (fun e -> e.Registry.name) Registry.all in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " registered") true (List.mem expected names))
    [ "fig1"; "tab1"; "tab2"; "tab3"; "fig4"; "tab4"; "tab5"; "fig5"; "tab6";
      "tab7"; "fig6"; "ext-tiles"; "ext-stride"; "ext-sparse"; "ext-ablation";
      "ext-points"; "ext-graph"; "ext-validate"; "ext-zoo"; "ext-engines" ];
  (* Names unique. *)
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  Alcotest.(check bool) "finds tab4" true (Registry.find "tab4" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None)

(* ------------------------------------------------------------------ fig1 *)

let test_fig1_shows_tap_spread () =
  let out = Exp_fig1.run ~fast:true () in
  Alcotest.(check bool) "has table" true (contains out "dynamic range");
  (* The paper's point: the spread between taps is large (multiple bits). *)
  Alcotest.(check bool) "mentions spread" true (contains out "bits of spread")

(* ------------------------------------------------------------------ fig4 *)

let test_fig4_tap_wise_wins () =
  let s = Exp_fig4.analyse ~fast:true () in
  Alcotest.(check bool)
    (Printf.sprintf "tap %.2f < layer %.2f (winograd)" s.Exp_fig4.wino_tap
       s.Exp_fig4.wino_layer)
    true
    (s.Exp_fig4.wino_tap < s.Exp_fig4.wino_layer);
  Alcotest.(check bool) "channel barely helps in winograd domain" true
    (s.Exp_fig4.wino_layer -. s.Exp_fig4.wino_channel
    < s.Exp_fig4.wino_layer -. s.Exp_fig4.wino_tap);
  Alcotest.(check bool) "spatial channel-wise helps" true
    (s.Exp_fig4.spatial_channel <= s.Exp_fig4.spatial_layer);
  Alcotest.(check bool) "chan+tap at least close to tap" true
    (s.Exp_fig4.wino_channel_tap <= s.Exp_fig4.wino_tap +. 0.3)

(* ------------------------------------------------------------------ tab4 *)

let test_tab4_grid_trends () =
  let grid = Exp_tab4.grid ~fast:true () in
  (* fast grid: batches [1;8], resolutions [16;32], pairs [(64,64);(256,256)] *)
  let get batch hw pair =
    let _, per_res = List.find (fun (b, _) -> b = batch) grid in
    let _, cells = List.find (fun (r, _) -> r = hw) per_res in
    List.assoc pair cells
  in
  Alcotest.(check bool) "res trend" true (get 1 32 (256, 256) > get 1 16 (256, 256));
  Alcotest.(check bool) "batch trend" true (get 8 32 (256, 256) > get 1 32 (256, 256));
  Alcotest.(check bool) "band" true
    (List.for_all
       (fun (_, per_res) ->
         List.for_all
           (fun (_, cells) -> List.for_all (fun (_, su) -> su > 0.3 && su < 4.5) cells)
           per_res)
       grid)

(* ------------------------------------------------------------------ tab7 *)

let test_tab7_fast_rows () =
  let rows = Exp_tab7.evaluate ~fast:true () in
  Alcotest.(check int) "two rows in fast mode" 2 (List.length rows);
  List.iter
    (fun r ->
      let th run = run.Twq_sim.Network_runner.throughput_imgs_per_s in
      Alcotest.(check bool) "F4 >= F2" true (th r.Exp_tab7.f4 >= th r.Exp_tab7.f2 -. 1e-9);
      Alcotest.(check bool) "F2 >= im2col" true (th r.Exp_tab7.f2 >= th r.Exp_tab7.im2col -. 1e-9);
      (* The DDR5 study never hurts F4. *)
      Alcotest.(check bool) "ddr5 gain sane" true
        (r.Exp_tab7.f4_ddr5_gain >= 0.95 *. (th r.Exp_tab7.f4 /. th r.Exp_tab7.im2col) -. 0.2))
    rows

(* ----------------------------------------------------- cheap text output *)

let test_text_experiments_run () =
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.fail (name ^ " missing")
      | Some e ->
          let out = e.Registry.run ~fast:true () in
          Alcotest.(check bool) (name ^ " non-empty") true (String.length out > 100))
    [ "tab1"; "tab5"; "fig5"; "tab6"; "fig6"; "ext-stride"; "ext-points";
      "ext-validate"; "ext-ablation"; "ext-zoo"; "ext-engines" ]

let test_tab5_reports_paper_anchors () =
  let out = Exp_tab5.run ~fast:true () in
  Alcotest.(check bool) "6.1%" true (contains out "6.1%");
  Alcotest.(check bool) "17.04" true (contains out "17.04")

let test_tab6_nvdla_loses_at_iso_bw () =
  let out = Exp_tab6.run ~fast:true () in
  (* The signature result: wino on NVDLA can be slower than direct. *)
  Alcotest.(check bool) "0.7x-ish cell present" true (contains out "0.7")

let test_ext_validate_within_envelope () =
  let out = Exp_ext_validate.run ~fast:true () in
  (* Compute-bound rooflines within single-digit percent. *)
  Alcotest.(check bool) "reports small diffs" true
    (contains out "+2." || contains out "+1." || contains out "+3." || contains out "+0.")

let test_ext_stride_claims_1_8 () =
  let out = Exp_ext_stride.run ~fast:true () in
  Alcotest.(check bool) "1.78x present" true (contains out "1.78x")

let test_ext_sparse_quant_adds_little () =
  let rows = Exp_ext_sparse.curve ~fast:true () in
  (* At every pruned density, int8+prune ≈ prune-only (quantization adds
     little on top). *)
  List.iter
    (fun (d, _, noise, noise_ref) ->
      if d < 0.99 then
        Alcotest.(check bool)
          (Printf.sprintf "d=%.2f: %.3f vs %.3f" d noise noise_ref)
          true
          (Float.abs (noise -. noise_ref) < 0.2 +. (0.1 *. noise_ref)))
    rows

let test_ext_zoo_predicts_tab7 () =
  let out = Exp_ext_zoo.run () in
  (* UNet nearly all 3x3; ResNet-50 about half. *)
  Alcotest.(check bool) "unet 96%" true (contains out "96%");
  Alcotest.(check bool) "resnet50 48%" true (contains out "48%")

let test_fig6_energy_halved () =
  let out = Exp_fig6.run ~fast:true () in
  Alcotest.(check bool) "total line present" true
    (contains out "total F4 energy")

let () =
  Alcotest.run "twq_experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "fig1 tap spread" `Quick test_fig1_shows_tap_spread;
          Alcotest.test_case "fig4 tap-wise wins" `Quick test_fig4_tap_wise_wins;
          Alcotest.test_case "tab4 trends" `Quick test_tab4_grid_trends;
          Alcotest.test_case "tab7 rows" `Quick test_tab7_fast_rows;
        ] );
      ( "text output",
        [
          Alcotest.test_case "cheap experiments run" `Quick test_text_experiments_run;
          Alcotest.test_case "tab5 anchors" `Quick test_tab5_reports_paper_anchors;
          Alcotest.test_case "tab6 iso-bw" `Quick test_tab6_nvdla_loses_at_iso_bw;
          Alcotest.test_case "fig6 energy" `Quick test_fig6_energy_halved;
          Alcotest.test_case "ext-validate envelope" `Quick test_ext_validate_within_envelope;
          Alcotest.test_case "ext-stride 1.8x" `Quick test_ext_stride_claims_1_8;
          Alcotest.test_case "ext-sparse composition" `Quick test_ext_sparse_quant_adds_little;
          Alcotest.test_case "ext-zoo fractions" `Quick test_ext_zoo_predicts_tab7;
        ] );
    ]
