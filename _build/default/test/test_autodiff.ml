(* Tests for the autodiff substrate: finite-difference gradient checks for
   every differentiable op, STE behaviour of the quantization nodes, the
   fused Winograd-aware conv backward, scale-parameter learning, optimizer
   mechanics. *)

open Twq_tensor
open Twq_autodiff
module Rng = Twq_util.Rng
module Transform = Twq_winograd.Transform

(* Numeric gradient of [loss(x)] w.r.t. a chosen leaf by central
   differences; [forward] must rebuild the whole graph from the mutated
   leaf data. *)
let numeric_grad ~eps leaf forward =
  let n = Tensor.numel leaf in
  Array.init n (fun i ->
      let saved = leaf.Tensor.data.(i) in
      leaf.Tensor.data.(i) <- saved +. eps;
      let up = forward () in
      leaf.Tensor.data.(i) <- saved -. eps;
      let down = forward () in
      leaf.Tensor.data.(i) <- saved;
      (up -. down) /. (2.0 *. eps))

let check_grad ?(eps = 1e-4) ?(tol = 1e-3) name leaf_tensor build =
  (* [build] : unit -> Var leaf * scalar loss Var, using [leaf_tensor]. *)
  let leaf, loss = build () in
  Var.backward loss;
  let analytic = Var.grad leaf in
  let numeric =
    numeric_grad ~eps leaf_tensor (fun () ->
        let _, l = build () in
        (Var.value l).Tensor.data.(0))
  in
  Array.iteri
    (fun i g_num ->
      let g_ana = analytic.Tensor.data.(i) in
      let denom = Float.max 1.0 (Float.abs g_num) in
      Alcotest.(check bool)
        (Printf.sprintf "%s grad[%d]: ana=%.5f num=%.5f" name i g_ana g_num)
        true
        (Float.abs (g_ana -. g_num) /. denom < tol))
    numeric

let scalar_loss v = Fn.mean_all (Fn.mul v v)
(* mean(v²) — smooth, exercises upstream gradients of varying sign. *)

let test_grad_add_mul () =
  let rng = Rng.create 1 in
  let a = Tensor.rand_uniform rng [| 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.rand_uniform rng [| 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  check_grad "add" a (fun () ->
      let va = Var.of_tensor a and vb = Var.of_tensor b in
      (va, scalar_loss (Fn.add va vb)));
  check_grad "mul" a (fun () ->
      let va = Var.of_tensor a and vb = Var.of_tensor b in
      (va, scalar_loss (Fn.mul va vb)));
  check_grad "sub-rhs" b (fun () ->
      let va = Var.of_tensor a and vb = Var.of_tensor b in
      (vb, scalar_loss (Fn.sub va vb)))

let test_grad_matmul () =
  let rng = Rng.create 2 in
  let a = Tensor.rand_uniform rng [| 2; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.rand_uniform rng [| 3; 2 |] ~lo:(-1.0) ~hi:1.0 in
  check_grad "matmul lhs" a (fun () ->
      let va = Var.of_tensor a and vb = Var.of_tensor b in
      (va, scalar_loss (Fn.matmul va vb)));
  check_grad "matmul rhs" b (fun () ->
      let va = Var.of_tensor a and vb = Var.of_tensor b in
      (vb, scalar_loss (Fn.matmul va vb)))

let test_grad_conv2d () =
  let rng = Rng.create 3 in
  let x = Tensor.rand_uniform rng [| 1; 2; 5; 5 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 2; 2; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.rand_uniform rng [| 2 |] ~lo:(-1.0) ~hi:1.0 in
  let build leaf () =
    let vx = Var.of_tensor x and vw = Var.of_tensor w and vb = Var.of_tensor b in
    let y = Fn.conv2d ~stride:1 ~pad:1 ~x:vx ~w:vw ~b:(Some vb) () in
    let leaf_var = match leaf with `X -> vx | `W -> vw | `B -> vb in
    (leaf_var, scalar_loss y)
  in
  check_grad "conv x" x (build `X);
  check_grad "conv w" w (build `W);
  check_grad "conv b" b (build `B)

let test_grad_conv2d_stride2 () =
  let rng = Rng.create 4 in
  let x = Tensor.rand_uniform rng [| 1; 1; 6; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 2; 1; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  check_grad "conv s2 x" x (fun () ->
      let vx = Var.of_tensor x and vw = Var.of_tensor w in
      (vx, scalar_loss (Fn.conv2d ~stride:2 ~pad:1 ~x:vx ~w:vw ~b:None ())));
  check_grad "conv s2 w" w (fun () ->
      let vx = Var.of_tensor x and vw = Var.of_tensor w in
      (vw, scalar_loss (Fn.conv2d ~stride:2 ~pad:1 ~x:vx ~w:vw ~b:None ())))

let test_grad_relu_pool () =
  let rng = Rng.create 5 in
  (* Keep values away from the ReLU kink / pooling ties for finite diffs. *)
  let x =
    Tensor.map
      (fun v -> if Float.abs v < 0.05 then v +. 0.2 else v)
      (Tensor.rand_uniform rng [| 1; 2; 4; 4 |] ~lo:(-1.0) ~hi:1.0)
  in
  check_grad "relu" x (fun () ->
      let vx = Var.of_tensor x in
      (vx, scalar_loss (Fn.relu vx)));
  check_grad "avg pool" x (fun () ->
      let vx = Var.of_tensor x in
      (vx, scalar_loss (Fn.avg_pool2d ~k:2 ~stride:2 vx)));
  check_grad "max pool" x (fun () ->
      let vx = Var.of_tensor x in
      (vx, scalar_loss (Fn.max_pool2d ~k:2 ~stride:2 vx)));
  check_grad "gap" x (fun () ->
      let vx = Var.of_tensor x in
      (vx, scalar_loss (Fn.global_avg_pool vx)))

let test_grad_linear () =
  let rng = Rng.create 6 in
  let x = Tensor.rand_uniform rng [| 2; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 4; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.rand_uniform rng [| 4 |] ~lo:(-1.0) ~hi:1.0 in
  let build leaf () =
    let vx = Var.of_tensor x and vw = Var.of_tensor w and vb = Var.of_tensor b in
    let y = Fn.linear ~x:vx ~w:vw ~b:(Some vb) in
    let leaf_var = match leaf with `X -> vx | `W -> vw | `B -> vb in
    (leaf_var, scalar_loss y)
  in
  check_grad "linear x" x (build `X);
  check_grad "linear w" w (build `W);
  check_grad "linear b" b (build `B)

let test_grad_batch_norm () =
  let rng = Rng.create 7 in
  let x = Tensor.rand_uniform rng [| 2; 2; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let gamma = Tensor.of_array [| 2 |] [| 1.2; 0.8 |] in
  let beta = Tensor.of_array [| 2 |] [| 0.1; -0.2 |] in
  (* Frozen-stats BN: gradients w.r.t. gamma/beta are exact; w.r.t. x they
     deliberately ignore the dependence of the statistics on x. *)
  check_grad "bn gamma" gamma (fun () ->
      let vx = Var.of_tensor x and vg = Var.of_tensor gamma and vb = Var.of_tensor beta in
      (vg, scalar_loss (Fn.batch_norm_frozen ~x:vx ~gamma:vg ~beta:vb ~eps:1e-5)));
  check_grad "bn beta" beta (fun () ->
      let vx = Var.of_tensor x and vg = Var.of_tensor gamma and vb = Var.of_tensor beta in
      (vb, scalar_loss (Fn.batch_norm_frozen ~x:vx ~gamma:vg ~beta:vb ~eps:1e-5)))

let test_grad_cross_entropy () =
  let rng = Rng.create 8 in
  let logits = Tensor.rand_uniform rng [| 3; 4 |] ~lo:(-1.0) ~hi:1.0 in
  let labels = [| 0; 2; 3 |] in
  check_grad "ce" logits (fun () ->
      let v = Var.of_tensor logits in
      (v, Fn.softmax_cross_entropy ~logits:v ~labels))

let test_grad_kl () =
  let rng = Rng.create 9 in
  let student = Tensor.rand_uniform rng [| 2; 4 |] ~lo:(-1.0) ~hi:1.0 in
  let teacher = Tensor.rand_uniform rng [| 2; 4 |] ~lo:(-1.0) ~hi:1.0 in
  check_grad "kl" student (fun () ->
      let v = Var.of_tensor student in
      (v, Fn.kl_distillation ~student:v ~teacher ~temperature:2.0))

let test_kl_zero_when_equal () =
  let t = Tensor.of_array [| 1; 3 |] [| 0.3; -0.1; 0.9 |] in
  let v = Var.of_tensor (Tensor.copy t) in
  let loss = Fn.kl_distillation ~student:v ~teacher:t ~temperature:3.0 in
  Alcotest.(check (float 1e-9)) "KL(p||p)=0" 0.0 (Var.value loss).Tensor.data.(0)

let test_backward_accumulates_through_fanout () =
  (* y = x + x: dy/dx = 2. *)
  let x = Tensor.of_array [| 2 |] [| 1.0; -1.0 |] in
  let vx = Var.of_tensor x in
  let loss = Fn.mean_all (Fn.add vx vx) in
  Var.backward loss;
  Alcotest.(check (float 1e-9)) "fanout grad" 1.0 (Var.grad vx).Tensor.data.(0)

(* ------------------------------------------------------------- STE nodes *)

let test_fake_quant_ste_passthrough () =
  let x = Tensor.of_array [| 3 |] [| 0.4; -0.3; 0.9 |] in
  let vx = Var.of_tensor x in
  let q = Quant_ops.fake_quant_ste ~bits:8 ~scale:0.01 vx in
  let loss = Fn.mean_all q in
  Var.backward loss;
  (* In-range values: gradient flows through untouched. *)
  Array.iter
    (fun g -> Alcotest.(check (float 1e-9)) "ste grad" (1.0 /. 3.0) g)
    (Var.grad vx).Tensor.data

let test_fake_quant_ste_clipped () =
  (* 10.0 / scale 0.01 = 1000 >> 127: gradient is cut. *)
  let x = Tensor.of_array [| 2 |] [| 10.0; 0.1 |] in
  let vx = Var.of_tensor x in
  let q = Quant_ops.fake_quant_ste ~bits:8 ~scale:0.01 vx in
  let loss = Fn.mean_all q in
  Var.backward loss;
  Alcotest.(check (float 1e-9)) "clipped" 0.0 (Var.grad vx).Tensor.data.(0);
  Alcotest.(check (float 1e-9)) "passes" 0.5 (Var.grad vx).Tensor.data.(1)

(* ------------------------------------------------------------ scale param *)

let test_scale_param_pow2_value () =
  let p = Scale_param.create ~pow2:true ~init:0.3 () in
  (* log2 0.3 ≈ -1.74; ceil = -1 → scale 0.5. *)
  Alcotest.(check (float 1e-9)) "pow2 snap" 0.5 (Scale_param.value p);
  let q = Scale_param.create ~pow2:false ~init:0.3 () in
  Alcotest.(check (float 1e-9)) "float keeps" 0.3 (Scale_param.value q)

let test_scale_param_adam_direction () =
  let p = Scale_param.create ~pow2:false ~init:1.0 () in
  Scale_param.accumulate_grad p 1.0;
  Scale_param.adam_step ~lr:0.1 p;
  Alcotest.(check bool) "positive grad lowers theta" true (Scale_param.log2_t p < 0.0);
  let q = Scale_param.create ~pow2:false ~init:1.0 () in
  Scale_param.accumulate_grad q (-1.0);
  Scale_param.adam_step ~lr:0.1 q;
  Alcotest.(check bool) "negative grad raises theta" true (Scale_param.log2_t q > 0.0)

let test_scale_param_static_noop () =
  let p = Scale_param.create ~learnable:false ~pow2:true ~init:1.0 () in
  Scale_param.accumulate_grad p 5.0;
  Scale_param.adam_step p;
  Alcotest.(check (float 1e-12)) "static unchanged" 0.0 (Scale_param.log2_t p)

(* --------------------------------------------------------------- wa_conv *)

let test_wa_conv_matches_fp_winograd_at_high_bits () =
  (* With 20 Winograd-domain bits the quantization is far below FP32 noise
     level, so the fused layer must agree with the plain convolution and its
     analytic gradients must match conv2d's. *)
  let rng = Rng.create 10 in
  let x = Tensor.rand_uniform rng [| 1; 2; 8; 8 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 2; 2; 3; 3 |] ~lo:(-0.5) ~hi:0.5 in
  let wa =
    Wa_conv.create ~variant:Transform.F4 ~wino_bits:20 ~pow2:false
      ~tapwise:true ~mode:Wa_conv.Static ~pad:1 ()
  in
  let vx = Var.of_tensor x and vw = Var.of_tensor w in
  let y = Wa_conv.forward wa ~x:vx ~w:vw in
  let y_ref = Ops.conv2d ~stride:1 ~pad:1 ~x ~w () in
  Alcotest.(check bool)
    "forward close to conv" true
    (Tensor.approx_equal ~tol:1e-3 (Var.value y) y_ref);
  (* Gradient comparison against the reference conv node. *)
  let loss = scalar_loss y in
  Var.backward loss;
  let gx_wa = Tensor.copy (Var.grad vx) and gw_wa = Tensor.copy (Var.grad vw) in
  let vx2 = Var.of_tensor x and vw2 = Var.of_tensor w in
  let y2 = Fn.conv2d ~stride:1 ~pad:1 ~x:vx2 ~w:vw2 ~b:None () in
  Var.backward (scalar_loss y2);
  Alcotest.(check bool)
    "dx matches conv" true
    (Tensor.approx_equal ~tol:5e-3 gx_wa (Var.grad vx2));
  Alcotest.(check bool)
    "dw matches conv" true
    (Tensor.approx_equal ~tol:5e-3 gw_wa (Var.grad vw2))

let test_wa_conv_f2_matches_too () =
  let rng = Rng.create 11 in
  let x = Tensor.rand_uniform rng [| 1; 2; 6; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 2; 2; 3; 3 |] ~lo:(-0.5) ~hi:0.5 in
  let wa =
    Wa_conv.create ~variant:Transform.F2 ~wino_bits:20 ~pow2:false
      ~tapwise:true ~mode:Wa_conv.Static ~pad:1 ()
  in
  let vx = Var.of_tensor x and vw = Var.of_tensor w in
  let y = Wa_conv.forward wa ~x:vx ~w:vw in
  Alcotest.(check bool)
    "F2 forward" true
    (Tensor.approx_equal ~tol:1e-3 (Var.value y) (Ops.conv2d ~stride:1 ~pad:1 ~x ~w ()))

let test_wa_conv_int8_reasonable () =
  let rng = Rng.create 12 in
  let x = Tensor.rand_gaussian rng [| 1; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 3; 3; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let wa =
    Wa_conv.create ~variant:Transform.F4 ~wino_bits:8 ~pow2:true
      ~tapwise:true ~mode:Wa_conv.Static ~pad:1 ()
  in
  let y = Wa_conv.forward wa ~x:(Var.of_tensor x) ~w:(Var.of_tensor w) in
  let y_ref = Ops.conv2d ~stride:1 ~pad:1 ~x ~w () in
  let noise =
    sqrt (Tensor.sumsq (Tensor.sub (Var.value y) y_ref) /. Tensor.sumsq y_ref)
  in
  Alcotest.(check bool) (Printf.sprintf "int8 noise %.4f < 0.15" noise) true (noise < 0.15)

let test_wa_conv_learned_scales_get_grads () =
  let rng = Rng.create 13 in
  let x = Tensor.rand_gaussian rng [| 1; 2; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 2; 2; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let wa =
    Wa_conv.create ~variant:Transform.F4 ~wino_bits:8 ~pow2:true
      ~tapwise:true ~mode:Wa_conv.Learned ~pad:1 ()
  in
  let y = Wa_conv.forward wa ~x:(Var.of_tensor x) ~w:(Var.of_tensor w) in
  Var.backward (scalar_loss y);
  let grads = List.map Scale_param.grad (Wa_conv.scales wa) in
  Alcotest.(check bool)
    "some scale gradient non-zero" true
    (List.exists (fun g -> Float.abs g > 1e-12) grads)

let test_wa_conv_static_has_no_learnables () =
  let wa =
    Wa_conv.create ~variant:Transform.F4 ~wino_bits:8 ~pow2:true
      ~tapwise:true ~mode:Wa_conv.Static ~pad:1 ()
  in
  Alcotest.(check bool)
    "all static" true
    (List.for_all (fun s -> not (Scale_param.learnable s)) (Wa_conv.scales wa))

let test_wa_conv_single_scale_ties () =
  let rng = Rng.create 14 in
  let x = Tensor.rand_gaussian rng [| 1; 2; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 2; 2; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let wa =
    Wa_conv.create ~variant:Transform.F4 ~wino_bits:8 ~pow2:false
      ~tapwise:false ~mode:Wa_conv.Static ~pad:1 ()
  in
  ignore (Wa_conv.forward wa ~x:(Var.of_tensor x) ~w:(Var.of_tensor w));
  let grid = Wa_conv.weight_scale_grid wa in
  let s00 = grid.(0).(0) in
  Array.iter
    (Array.iter (fun s -> Alcotest.(check (float 1e-12)) "tied" s00 s))
    grid

(* --------------------------------------------------------------- optim *)

let test_sgd_step () =
  let p = Var.of_tensor (Tensor.of_array [| 2 |] [| 1.0; 2.0 |]) in
  Var.accumulate p (Tensor.of_array [| 2 |] [| 0.5; -0.5 |]);
  let opt = Optim.sgd ~lr:0.1 [ p ] in
  Optim.sgd_step opt;
  Alcotest.(check (float 1e-9)) "p0" 0.95 (Var.value p).Tensor.data.(0);
  Alcotest.(check (float 1e-9)) "p1" 2.05 (Var.value p).Tensor.data.(1);
  (* Grad is reset. *)
  Alcotest.(check (float 1e-9)) "grad cleared" 0.0 (Var.grad p).Tensor.data.(0)

let test_sgd_momentum () =
  let p = Var.of_tensor (Tensor.of_array [| 1 |] [| 0.0 |]) in
  let opt = Optim.sgd ~momentum:0.9 ~lr:1.0 [ p ] in
  Var.accumulate p (Tensor.of_array [| 1 |] [| 1.0 |]);
  Optim.sgd_step opt;
  Var.accumulate p (Tensor.of_array [| 1 |] [| 1.0 |]);
  Optim.sgd_step opt;
  (* v1 = 1, v2 = 1.9: total displacement 2.9. *)
  Alcotest.(check (float 1e-9)) "momentum" (-2.9) (Var.value p).Tensor.data.(0)

let test_clip_grad_norm () =
  let p = Var.of_tensor (Tensor.of_array [| 2 |] [| 0.0; 0.0 |]) in
  Var.accumulate p (Tensor.of_array [| 2 |] [| 3.0; 4.0 |]);
  Optim.clip_grad_norm [ p ] ~max_norm:1.0;
  Alcotest.(check (float 1e-9)) "norm is 1" 1.0 (Optim.grad_norm [ p ])

let () =
  Alcotest.run "twq_autodiff"
    [
      ( "gradcheck",
        [
          Alcotest.test_case "add/mul/sub" `Quick test_grad_add_mul;
          Alcotest.test_case "matmul" `Quick test_grad_matmul;
          Alcotest.test_case "conv2d" `Quick test_grad_conv2d;
          Alcotest.test_case "conv2d stride 2" `Quick test_grad_conv2d_stride2;
          Alcotest.test_case "relu/pool" `Quick test_grad_relu_pool;
          Alcotest.test_case "linear" `Quick test_grad_linear;
          Alcotest.test_case "batch norm" `Quick test_grad_batch_norm;
          Alcotest.test_case "cross entropy" `Quick test_grad_cross_entropy;
          Alcotest.test_case "kl distillation" `Quick test_grad_kl;
          Alcotest.test_case "kl zero" `Quick test_kl_zero_when_equal;
          Alcotest.test_case "fanout" `Quick test_backward_accumulates_through_fanout;
        ] );
      ( "ste",
        [
          Alcotest.test_case "passthrough" `Quick test_fake_quant_ste_passthrough;
          Alcotest.test_case "clipped" `Quick test_fake_quant_ste_clipped;
        ] );
      ( "scale param",
        [
          Alcotest.test_case "pow2 value" `Quick test_scale_param_pow2_value;
          Alcotest.test_case "adam direction" `Quick test_scale_param_adam_direction;
          Alcotest.test_case "static noop" `Quick test_scale_param_static_noop;
        ] );
      ( "wa_conv",
        [
          Alcotest.test_case "matches FP winograd @16 bits" `Quick
            test_wa_conv_matches_fp_winograd_at_high_bits;
          Alcotest.test_case "F2 matches" `Quick test_wa_conv_f2_matches_too;
          Alcotest.test_case "int8 noise reasonable" `Quick test_wa_conv_int8_reasonable;
          Alcotest.test_case "learned scales get grads" `Quick
            test_wa_conv_learned_scales_get_grads;
          Alcotest.test_case "static scales not learnable" `Quick
            test_wa_conv_static_has_no_learnables;
          Alcotest.test_case "single-scale ties" `Quick test_wa_conv_single_scale_ties;
        ] );
      ( "optim",
        [
          Alcotest.test_case "sgd step" `Quick test_sgd_step;
          Alcotest.test_case "sgd momentum" `Quick test_sgd_momentum;
          Alcotest.test_case "clip grad norm" `Quick test_clip_grad_norm;
        ] );
    ]
