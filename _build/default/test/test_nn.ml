(* Tests for the dataset, the QAT models, the trainer, and the model-zoo
   layer inventories. *)

open Twq_nn
module Synth = Twq_dataset.Synth_images
module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Transform = Twq_winograd.Transform

(* ---------------------------------------------------------------- dataset *)

let small_spec =
  { Synth.default_spec with Synth.n_train = 64; n_valid = 32; n_test = 32 }

let test_dataset_shapes () =
  let d = Synth.generate ~spec:small_spec ~seed:1 () in
  Alcotest.(check int) "train size" 64 (Array.length d.Synth.train);
  Alcotest.(check int) "valid size" 32 (Array.length d.Synth.valid);
  Alcotest.(check int) "test size" 32 (Array.length d.Synth.test);
  let s = d.Synth.train.(0) in
  Alcotest.(check (array int)) "image shape" [| 3; 12; 12 |] s.Synth.image.Tensor.shape;
  Alcotest.(check bool) "label in range" true (s.Synth.label >= 0 && s.Synth.label < 4)

let test_dataset_deterministic () =
  let a = Synth.generate ~spec:small_spec ~seed:5 () in
  let b = Synth.generate ~spec:small_spec ~seed:5 () in
  Alcotest.(check bool)
    "same data" true
    (Tensor.approx_equal a.Synth.train.(0).Synth.image b.Synth.train.(0).Synth.image);
  let c = Synth.generate ~spec:small_spec ~seed:6 () in
  Alcotest.(check bool)
    "different seed differs" false
    (Tensor.approx_equal a.Synth.train.(0).Synth.image c.Synth.train.(0).Synth.image)

let test_dataset_label_balance () =
  let d = Synth.generate ~spec:small_spec ~seed:2 () in
  let counts = Array.make 4 0 in
  Array.iter (fun s -> counts.(s.Synth.label) <- counts.(s.Synth.label) + 1) d.Synth.train;
  Array.iter (fun c -> Alcotest.(check int) "balanced" 16 c) counts

let test_batches () =
  let d = Synth.generate ~spec:small_spec ~seed:3 () in
  let rng = Rng.create 1 in
  let batches = Synth.shuffled_batches ~rng ~batch_size:16 d.Synth.train in
  Alcotest.(check int) "n batches" 4 (List.length batches);
  let x, labels = List.hd batches in
  Alcotest.(check (array int)) "batch shape" [| 16; 3; 12; 12 |] x.Tensor.shape;
  Alcotest.(check int) "labels" 16 (Array.length labels)

(* ----------------------------------------------------------------- model *)

let test_model_forward_shapes () =
  let cfg = Qat_model.default_config Qat_model.Fp32 in
  let model = Qat_model.create cfg ~seed:1 in
  let x = Tensor.zeros [| 2; 3; 12; 12 |] in
  let logits = Trainer.logits model x in
  Alcotest.(check (array int)) "logits shape" [| 2; 4 |] logits.Tensor.shape

let test_model_param_count_positive () =
  let model = Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:1 in
  Alcotest.(check bool) "has params" true (Qat_model.num_parameters model > 1000)

let test_model_resnet_arch () =
  let cfg =
    { (Qat_model.default_config Qat_model.Fp32) with
      Qat_model.arch = Qat_model.Resnet_mini { width = 8; blocks = 2 } }
  in
  let model = Qat_model.create cfg ~seed:1 in
  let logits = Trainer.logits model (Tensor.zeros [| 1; 3; 12; 12 |]) in
  Alcotest.(check (array int)) "resnet logits" [| 1; 4 |] logits.Tensor.shape

let test_scale_params_only_for_learned () =
  let wa learned =
    Qat_model.Wa
      { Qat_model.variant = Transform.F4; wino_bits = 8; tapwise = true;
        pow2 = true; learned }
  in
  let m_static = Qat_model.create (Qat_model.default_config (wa false)) ~seed:1 in
  let m_learned = Qat_model.create (Qat_model.default_config (wa true)) ~seed:1 in
  Alcotest.(check int) "static has none" 0 (List.length (Qat_model.scale_params m_static));
  Alcotest.(check bool)
    "learned has some" true
    (List.length (Qat_model.scale_params m_learned) > 0)

let quick_opts = { Trainer.default_options with Trainer.epochs = 3; batch_size = 16 }

let accuracy_of mode =
  let d = Synth.generate ~spec:small_spec ~seed:11 () in
  let model = Qat_model.create (Qat_model.default_config mode) ~seed:2 in
  let h = Trainer.train model d quick_opts in
  Alcotest.(check bool)
    "loss finite" true
    (Array.for_all Float.is_finite h.Trainer.train_loss);
  Trainer.evaluate model d.Synth.test

let test_topk_at_least_top1 () =
  let d = Synth.generate ~spec:small_spec ~seed:13 () in
  let model = Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:2 in
  let _ = Trainer.train model d { quick_opts with Trainer.epochs = 1 } in
  let top1 = Trainer.evaluate model d.Synth.test in
  let top3 = Trainer.evaluate_topk ~k:3 model d.Synth.test in
  Alcotest.(check bool) (Printf.sprintf "top3 %.2f >= top1 %.2f" top3 top1) true
    (top3 >= top1);
  let top_all = Trainer.evaluate_topk ~k:4 model d.Synth.test in
  Alcotest.(check (float 1e-9)) "top-#classes is 1" 1.0 top_all

let test_train_fp32_learns () =
  let acc = accuracy_of Qat_model.Fp32 in
  Alcotest.(check bool) (Printf.sprintf "fp32 acc %.2f > 0.5" acc) true (acc > 0.5)

let test_train_int8_learns () =
  let acc = accuracy_of Qat_model.Int8_spatial in
  Alcotest.(check bool) (Printf.sprintf "int8 acc %.2f > 0.5" acc) true (acc > 0.5)

let test_train_wa_f4_tapwise_learns () =
  let acc =
    accuracy_of
      (Qat_model.Wa
         { Qat_model.variant = Transform.F4; wino_bits = 8; tapwise = true;
           pow2 = true; learned = false })
  in
  Alcotest.(check bool) (Printf.sprintf "wa acc %.2f > 0.5" acc) true (acc > 0.5)

let test_train_wa_learned_scales_runs () =
  let acc =
    accuracy_of
      (Qat_model.Wa
         { Qat_model.variant = Transform.F4; wino_bits = 8; tapwise = true;
           pow2 = true; learned = true })
  in
  Alcotest.(check bool) (Printf.sprintf "learned acc %.2f > 0.4" acc) true (acc > 0.4)

let test_train_with_kd_runs () =
  let d = Synth.generate ~spec:small_spec ~seed:12 () in
  let teacher = Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:3 in
  let _ = Trainer.train teacher d quick_opts in
  let student_cfg =
    Qat_model.default_config
      (Qat_model.Wa
         { Qat_model.variant = Transform.F4; wino_bits = 8; tapwise = true;
           pow2 = true; learned = false })
  in
  let student = Qat_model.create student_cfg ~seed:4 in
  let opts =
    { quick_opts with
      Trainer.kd = Some { Trainer.teacher; temperature = 4.0; alpha = 0.5 } }
  in
  let h = Trainer.train student d opts in
  Alcotest.(check bool)
    "kd loss finite" true
    (Array.for_all Float.is_finite h.Trainer.train_loss);
  let acc = Trainer.evaluate student d.Synth.test in
  Alcotest.(check bool) (Printf.sprintf "kd acc %.2f > 0.4" acc) true (acc > 0.4)

(* ---------------------------------------------------------------- deploy *)

let test_deploy_int8_close_to_fake_quant () =
  let d = Synth.generate ~spec:small_spec ~seed:77 () in
  let mode =
    Qat_model.Wa
      { Qat_model.variant = Transform.F4; wino_bits = 8; tapwise = true;
        pow2 = true; learned = false }
  in
  let model = Qat_model.create (Qat_model.default_config mode) ~seed:8 in
  let _ = Trainer.train model d quick_opts in
  let fq = Trainer.evaluate model d.Synth.test in
  let cal, _ = Synth.batch d d.Synth.train (Array.init 16 Fun.id) in
  let net = Deploy.export model ~calibration:cal () in
  let int_acc = Deploy.accuracy net d.Synth.test in
  Alcotest.(check int) "4 conv layers" 4 (List.length (Deploy.layers net));
  Alcotest.(check bool)
    (Printf.sprintf "int8 %.2f within 0.15 of fake-quant %.2f" int_acc fq)
    true
    (Float.abs (int_acc -. fq) <= 0.15)

let test_deploy_scales_chain () =
  let d = Synth.generate ~spec:small_spec ~seed:78 () in
  let model = Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:9 in
  let _ = Trainer.train model d { quick_opts with Trainer.epochs = 1 } in
  let cal, _ = Synth.batch d d.Synth.train (Array.init 8 Fun.id) in
  let net = Deploy.export model ~calibration:cal () in
  (* Consecutive conv layers must agree on the inter-layer scale. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check (float 1e-12))
          "s_y(n) = s_x(n+1)" a.Twq_quant.Tapwise.s_y b.Twq_quant.Tapwise.s_x;
        check rest
    | _ -> ()
  in
  check (Deploy.layers net)

let test_deploy_rejects_resnet () =
  let cfg =
    { (Qat_model.default_config Qat_model.Fp32) with
      Qat_model.arch = Qat_model.Resnet_mini { width = 8; blocks = 1 } }
  in
  let model = Qat_model.create cfg ~seed:1 in
  Alcotest.check_raises "resnet rejected"
    (Invalid_argument "Deploy.export: only Vgg_mini architectures are exportable")
    (fun () -> ignore (Deploy.export model ~calibration:(Tensor.zeros [| 1; 3; 12; 12 |]) ()))

let test_deploy_save_load_roundtrip () =
  let d = Synth.generate ~spec:small_spec ~seed:79 () in
  let model = Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:10 in
  let _ = Trainer.train model d { quick_opts with Trainer.epochs = 1 } in
  let cal, _ = Synth.batch d d.Synth.train (Array.init 8 Fun.id) in
  let net = Deploy.export model ~calibration:cal () in
  let reloaded = Deploy.of_string (Deploy.to_string net) in
  (* Bit-identical logits after round-trip. *)
  let x, _ = Synth.batch d d.Synth.test (Array.init 4 Fun.id) in
  Alcotest.(check bool) "same logits" true
    (Tensor.approx_equal ~tol:0.0 (Deploy.forward net x) (Deploy.forward reloaded x));
  let path = Filename.temp_file "twq" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Deploy.save net path;
      let from_file = Deploy.load path in
      Alcotest.(check bool) "file round-trip" true
        (Tensor.approx_equal ~tol:0.0 (Deploy.forward net x) (Deploy.forward from_file x)))

(* ------------------------------------------------------------------- zoo *)

let test_zoo_nonempty_and_sane () =
  List.iter
    (fun (name, build) ->
      let n = build ?resolution:None () in
      Alcotest.(check bool) (name ^ " has layers") true (List.length n.Zoo.layers > 0);
      List.iter
        (fun l ->
          Alcotest.(check bool) (name ^ " dims positive") true
            (l.Zoo.cin > 0 && l.Zoo.cout > 0 && l.Zoo.out_h > 0 && l.Zoo.out_w > 0
            && l.Zoo.repeat > 0))
        n.Zoo.layers)
    Zoo.all

let test_zoo_macs_resnet50_about_4g () =
  (* Torchvision ResNet-50 @224 is ≈ 4.1 GMACs. *)
  let n = Zoo.resnet50 () in
  let g = Zoo.total_macs ~batch:1 n /. 1e9 in
  Alcotest.(check bool) (Printf.sprintf "resnet50 %.2f GMACs in [3.5;4.5]" g) true
    (g > 3.5 && g < 4.5)

let test_zoo_macs_resnet34_about_3_6g () =
  let n = Zoo.resnet34 () in
  let g = Zoo.total_macs ~batch:1 n /. 1e9 in
  Alcotest.(check bool) (Printf.sprintf "resnet34 %.2f GMACs in [3.0;4.2]" g) true
    (g > 3.0 && g < 4.2)

let test_zoo_winograd_fraction_ordering () =
  (* The paper: UNet/YOLO/SSD are 3×3-dominated; ResNet-50 is 1×1-heavy. *)
  let frac net = Zoo.winograd_macs_fraction ~batch:1 net in
  let unet = frac (Zoo.unet ()) in
  let r50 = frac (Zoo.resnet50 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "unet %.2f > resnet50 %.2f" unet r50)
    true (unet > r50);
  Alcotest.(check bool) "unet mostly 3x3" true (unet > 0.9);
  Alcotest.(check bool) "resnet50 below 60%" true (r50 < 0.6)

let test_zoo_resolution_scales () =
  let a = Zoo.yolov3 ~resolution:256 () in
  let b = Zoo.yolov3 ~resolution:416 () in
  Alcotest.(check bool)
    "macs grow with resolution" true
    (Zoo.total_macs ~batch:1 b > Zoo.total_macs ~batch:1 a)

let test_zoo_eligibility () =
  Alcotest.(check bool) "3x3 s1" true
    (Zoo.winograd_eligible
       { Zoo.name = "x"; cin = 1; cout = 1; out_h = 8; out_w = 8; k = 3; stride = 1; repeat = 1 });
  Alcotest.(check bool) "1x1 not" false
    (Zoo.winograd_eligible
       { Zoo.name = "x"; cin = 1; cout = 1; out_h = 8; out_w = 8; k = 1; stride = 1; repeat = 1 });
  Alcotest.(check bool) "3x3 s2 not" false
    (Zoo.winograd_eligible
       { Zoo.name = "x"; cin = 1; cout = 1; out_h = 8; out_w = 8; k = 3; stride = 2; repeat = 1 })

let () =
  Alcotest.run "twq_nn"
    [
      ( "dataset",
        [
          Alcotest.test_case "shapes" `Quick test_dataset_shapes;
          Alcotest.test_case "deterministic" `Quick test_dataset_deterministic;
          Alcotest.test_case "label balance" `Quick test_dataset_label_balance;
          Alcotest.test_case "batches" `Quick test_batches;
        ] );
      ( "model",
        [
          Alcotest.test_case "forward shapes" `Quick test_model_forward_shapes;
          Alcotest.test_case "param count" `Quick test_model_param_count_positive;
          Alcotest.test_case "resnet arch" `Quick test_model_resnet_arch;
          Alcotest.test_case "scale params" `Quick test_scale_params_only_for_learned;
        ] );
      ( "training",
        [
          Alcotest.test_case "topk" `Slow test_topk_at_least_top1;
          Alcotest.test_case "fp32 learns" `Slow test_train_fp32_learns;
          Alcotest.test_case "int8 learns" `Slow test_train_int8_learns;
          Alcotest.test_case "wa-f4 learns" `Slow test_train_wa_f4_tapwise_learns;
          Alcotest.test_case "learned scales run" `Slow test_train_wa_learned_scales_runs;
          Alcotest.test_case "kd runs" `Slow test_train_with_kd_runs;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "int8 close to fake-quant" `Slow test_deploy_int8_close_to_fake_quant;
          Alcotest.test_case "scales chain" `Slow test_deploy_scales_chain;
          Alcotest.test_case "rejects resnet" `Quick test_deploy_rejects_resnet;
          Alcotest.test_case "save/load roundtrip" `Slow test_deploy_save_load_roundtrip;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "sane" `Quick test_zoo_nonempty_and_sane;
          Alcotest.test_case "resnet50 macs" `Quick test_zoo_macs_resnet50_about_4g;
          Alcotest.test_case "resnet34 macs" `Quick test_zoo_macs_resnet34_about_3_6g;
          Alcotest.test_case "winograd fraction" `Quick test_zoo_winograd_fraction_ordering;
          Alcotest.test_case "resolution scaling" `Quick test_zoo_resolution_scales;
          Alcotest.test_case "eligibility" `Quick test_zoo_eligibility;
        ] );
    ]
