test/test_nn.ml: Alcotest Array Deploy Filename Float Fun List Printf Qat_model Sys Trainer Twq_dataset Twq_nn Twq_quant Twq_tensor Twq_util Twq_winograd Zoo
