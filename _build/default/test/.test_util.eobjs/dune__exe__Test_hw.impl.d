test/test_hw.ml: Alcotest Area_power Array Dfg Engine Float List Printf Twq_hw Twq_util Twq_winograd
