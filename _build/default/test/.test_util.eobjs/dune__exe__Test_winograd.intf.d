test/test_winograd.mli:
