test/test_sim.ml: Alcotest Arch Cosim Float List Network_runner Operator Printf String Trace Twq_hw Twq_nn Twq_nvdla Twq_sim Twq_winograd
