test/test_autodiff.ml: Alcotest Array Float Fn List Ops Optim Printf Quant_ops Scale_param Tensor Twq_autodiff Twq_tensor Twq_util Twq_winograd Var Wa_conv
