test/test_util.ml: Alcotest Array Float Fmt Format Fun Interval List QCheck QCheck_alcotest Random Rat Rmat Rng Stats String Twq_util
