test/test_winograd.ml: Alcotest Array Conv Conv1d Float Gconv Itensor List Ops Pinv Printf QCheck QCheck_alcotest Random Rat Rmat Rng Strided Tensor Transform Twq_tensor Twq_util Twq_winograd
