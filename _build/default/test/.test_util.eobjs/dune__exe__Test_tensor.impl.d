test/test_tensor.ml: Alcotest Array Float Itensor Ops QCheck QCheck_alcotest Random Shape Tensor Twq_tensor Twq_util
