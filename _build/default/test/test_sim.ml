(* Tests for the accelerator simulator and the NVDLA comparator: operator
   model sanity, the paper's macro-trends (Table IV), full-network policies
   (Table VII), traffic relations (Fig. 6), and Table VI behaviour. *)

open Twq_sim
module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Nvdla = Twq_nvdla.Nvdla

let layer ?(k = 3) ?(stride = 1) cin cout hw =
  { Zoo.name = "t"; cin; cout; out_h = hw; out_w = hw; k; stride; repeat = 1 }

let arch = Arch.default

let su ?(batch = 1) l =
  let i = Operator.run arch Operator.Im2col l ~batch in
  let w = Operator.run arch (Operator.Winograd Transform.F4) l ~batch in
  Operator.speedup ~baseline:i w

(* --------------------------------------------------------------- operator *)

let test_supports () =
  Alcotest.(check bool) "3x3 s1" true (Operator.supports (Operator.Winograd Transform.F4) (layer 64 64 32));
  Alcotest.(check bool) "1x1" false (Operator.supports (Operator.Winograd Transform.F4) (layer ~k:1 64 64 32));
  Alcotest.(check bool) "stride 2" false (Operator.supports (Operator.Winograd Transform.F4) (layer ~stride:2 64 64 32));
  Alcotest.check_raises "raises" (Invalid_argument "Operator.run: winograd-F4 cannot run t")
    (fun () -> ignore (Operator.run arch (Operator.Winograd Transform.F4) (layer ~k:1 64 64 32) ~batch:1))

let test_deterministic () =
  let a = Operator.run arch (Operator.Winograd Transform.F4) (layer 128 128 32) ~batch:2 in
  let b = Operator.run arch (Operator.Winograd Transform.F4) (layer 128 128 32) ~batch:2 in
  Alcotest.(check (float 0.0)) "same cycles" a.Operator.cycles b.Operator.cycles

let test_cycles_positive_and_macs () =
  let l = layer 64 128 32 in
  let r = Operator.run arch Operator.Im2col l ~batch:2 in
  Alcotest.(check bool) "cycles > 0" true (r.Operator.cycles > 0.0);
  Alcotest.(check (float 1.0)) "macs" (2.0 *. 32.0 *. 32.0 *. 64.0 *. 128.0 *. 9.0) r.Operator.macs

let test_repeat_scales () =
  let l1 = layer 64 64 32 in
  let l2 = { l1 with Zoo.repeat = 3 } in
  let r1 = Operator.run arch Operator.Im2col l1 ~batch:1 in
  let r2 = Operator.run arch Operator.Im2col l2 ~batch:1 in
  Alcotest.(check (float 1e-6)) "3x cycles" (3.0 *. r1.Operator.cycles) r2.Operator.cycles;
  Alcotest.(check (float 1e-3)) "3x energy"
    (3.0 *. r1.Operator.energy.Operator.e_total) r2.Operator.energy.Operator.e_total

let test_im2col_high_utilization_when_compute_bound () =
  (* Large compute-heavy layer: the Cube should be nearly always busy. *)
  let r = Operator.run arch Operator.Im2col (layer 256 256 64) ~batch:4 in
  Alcotest.(check bool)
    (Printf.sprintf "util %.2f" (r.Operator.cube_busy /. r.Operator.cycles))
    true
    (r.Operator.cube_busy /. r.Operator.cycles > 0.85)

let test_winograd_cube_cycles_quartered () =
  (* The F4 kernel reduces Cube busy cycles by ≈4× (Sec. V-B2). *)
  let l = layer 256 256 64 in
  let i = Operator.run arch Operator.Im2col l ~batch:4 in
  let w = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:4 in
  let ratio = i.Operator.cube_busy /. w.Operator.cube_busy in
  Alcotest.(check bool) (Printf.sprintf "cube ratio %.2f" ratio) true
    (ratio > 3.2 && ratio <= 4.2)

(* -------------------------------------------------- Table IV macro-trends *)

let test_trend_larger_resolution_higher_speedup () =
  let s16 = su (layer 256 256 16) in
  let s32 = su (layer 256 256 32) in
  let s128 = su (layer 256 256 128) in
  Alcotest.(check bool) (Printf.sprintf "16:%.2f < 32:%.2f" s16 s32) true (s16 < s32);
  Alcotest.(check bool) (Printf.sprintf "32:%.2f < 128:%.2f" s32 s128) true (s32 < s128)

let test_trend_larger_batch_higher_speedup () =
  let b1 = su ~batch:1 (layer 256 256 32) in
  let b8 = su ~batch:8 (layer 256 256 32) in
  Alcotest.(check bool) (Printf.sprintf "B1 %.2f < B8 %.2f" b1 b8) true (b1 < b8)

let test_trend_more_cin_higher_speedup () =
  let c128 = su ~batch:8 (layer 128 256 32) in
  let c256 = su ~batch:8 (layer 256 256 32) in
  Alcotest.(check bool) (Printf.sprintf "cin128 %.2f < cin256 %.2f" c128 c256) true
    (c128 < c256)

let test_speedup_band () =
  (* Paper Table IV spans 0.99–3.42; allow a modest halo around it. *)
  let cells =
    [ su (layer 64 64 16); su (layer 256 512 32); su ~batch:8 (layer 256 256 128);
      su ~batch:8 (layer 256 512 32) ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "SU %.2f in [0.4; 4.0]" s) true
        (s > 0.4 && s < 4.0))
    cells;
  (* The compute-friendly corner must clearly beat 2.5×. *)
  Alcotest.(check bool) "peak > 2.5" true (su ~batch:8 (layer 256 256 128) > 2.5)

let test_f4_beats_f2_on_compute_heavy () =
  let l = layer 256 256 64 in
  let f2 = Operator.run arch (Operator.Winograd Transform.F2) l ~batch:8 in
  let f4 = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
  Alcotest.(check bool) "F4 faster" true (f4.Operator.cycles < f2.Operator.cycles)

let test_bandwidth_scaling_helps_f4_more () =
  (* Sec. V-B5: with 1.5× bandwidth F4 keeps scaling while F2 plateaus. *)
  let l = layer 256 256 64 in
  let fast = Arch.scale_bandwidth arch 1.5 in
  let gain variant =
    let slow_r = Operator.run arch (Operator.Winograd variant) l ~batch:8 in
    let fast_r = Operator.run fast (Operator.Winograd variant) l ~batch:8 in
    slow_r.Operator.cycles /. fast_r.Operator.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "F4 gain %.3f >= F2 gain %.3f" (gain Transform.F4) (gain Transform.F2))
    true
    (gain Transform.F4 >= gain Transform.F2 -. 0.01)

let test_broadcast_off_hurts () =
  let l = layer 256 512 32 in
  let on = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
  let off =
    Operator.run { arch with Arch.broadcast = false }
      (Operator.Winograd Transform.F4) l ~batch:8
  in
  Alcotest.(check bool) "broadcast saves cycles" true
    (off.Operator.cycles > on.Operator.cycles);
  (* Without the BU both cores fetch their own iFM copy. *)
  Alcotest.(check bool) "2x ifm traffic" true
    (off.Operator.traffic.Operator.gm_rd_ifm
    > 1.9 *. on.Operator.traffic.Operator.gm_rd_ifm)

let test_buffering_depth_helps () =
  let l = layer 256 512 32 in
  let run depth =
    (Operator.run { arch with Arch.buffer_depth = depth }
       (Operator.Winograd Transform.F4) l ~batch:8).Operator.cycles
  in
  Alcotest.(check bool) "depth 3 <= depth 1" true (run 3 <= run 1)

(* ------------------------------------------------------- Fig. 6 relations *)

let test_traffic_relations () =
  let l = layer 256 256 32 in
  let i = Operator.run arch Operator.Im2col l ~batch:8 in
  let w = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
  let ti = i.Operator.traffic and tw = w.Operator.traffic in
  (* Same GM weight reads (on-the-fly transformation). *)
  Alcotest.(check (float 1.0)) "same gm wt" ti.Operator.gm_rd_wt tw.Operator.gm_rd_wt;
  (* L1 iFM reads and L0A writes shrink: 2.25 vs 9 expansion. *)
  Alcotest.(check bool) "l1 ifm rd shrink" true
    (tw.Operator.l1_rd_ifm < ti.Operator.l1_rd_ifm /. 3.0);
  Alcotest.(check bool) "l0a wr shrink" true (tw.Operator.l0a_wr < ti.Operator.l0a_wr);
  (* L0A reads follow Cube activity: about 4× fewer. *)
  Alcotest.(check bool) "l0a rd shrink" true
    (tw.Operator.l0a_rd < ti.Operator.l0a_rd /. 3.0);
  (* Winograd reads weights from L1, im2col from L0B. *)
  Alcotest.(check bool) "wino reads wt from L1" true (tw.Operator.l1_rd_wt > 0.0);
  Alcotest.(check (float 0.0)) "im2col L1 wt" 0.0 ti.Operator.l1_rd_wt;
  (* FixPipe reads more from L0C (Winograd-domain oFMs). *)
  Alcotest.(check bool) "portB grows" true
    (tw.Operator.l0c_rd_fixpipe > ti.Operator.l0c_rd_fixpipe)

let test_energy_winograd_wins_on_compute_heavy () =
  (* Sec. V-B5: F4 lowers total energy >2× on Winograd layers (Cube
     dominates); allow a wide band. *)
  let l = layer 256 256 64 in
  let i = Operator.run arch Operator.Im2col l ~batch:8 in
  let w = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
  let r = i.Operator.energy.Operator.e_total /. w.Operator.energy.Operator.e_total in
  Alcotest.(check bool) (Printf.sprintf "energy ratio %.2f" r) true (r > 1.5 && r < 4.0)

let test_energy_components_positive () =
  let w = Operator.run arch (Operator.Winograd Transform.F4) (layer 64 64 32) ~batch:1 in
  let e = w.Operator.energy in
  List.iter
    (fun (n, v) -> Alcotest.(check bool) (n ^ " positive") true (v > 0.0))
    [ ("cube", e.Operator.e_cube); ("engines", e.Operator.e_engines);
      ("vector", e.Operator.e_vector); ("sram", e.Operator.e_sram);
      ("dram", e.Operator.e_dram) ];
  Alcotest.(check (float 1.0)) "total"
    (e.Operator.e_cube +. e.Operator.e_engines +. e.Operator.e_vector
    +. e.Operator.e_sram +. e.Operator.e_dram)
    e.Operator.e_total

(* ------------------------------------------------------- network (Tab VII) *)

let test_network_policies () =
  let net = Zoo.resnet34 () in
  let i = Network_runner.run arch Network_runner.P_im2col net ~batch:1 in
  let f4 = Network_runner.run arch (Network_runner.P_winograd Transform.F4) net ~batch:1 in
  Alcotest.(check bool) "F4 >= im2col" true
    (f4.Network_runner.throughput_imgs_per_s >= i.Network_runner.throughput_imgs_per_s);
  (* The fallback guarantees the policy never loses. *)
  List.iter
    (fun c ->
      if not (Zoo.winograd_eligible c.Network_runner.layer) then
        Alcotest.(check bool) "ineligible uses im2col" true
          (c.Network_runner.chosen = Operator.Im2col))
    f4.Network_runner.layers

let test_network_unet_gains_more_than_resnet50 () =
  (* 3×3-dominated networks benefit more (Table VII). *)
  let gain net =
    let n = net () in
    let i = Network_runner.run arch Network_runner.P_im2col n ~batch:1 in
    let f4 = Network_runner.run arch (Network_runner.P_winograd Transform.F4) n ~batch:1 in
    f4.Network_runner.throughput_imgs_per_s /. i.Network_runner.throughput_imgs_per_s
  in
  let g_unet = gain (fun () -> Zoo.unet ()) in
  let g_r50 = gain (fun () -> Zoo.resnet50 ()) in
  Alcotest.(check bool) (Printf.sprintf "unet %.2f > r50 %.2f" g_unet g_r50) true
    (g_unet > g_r50);
  Alcotest.(check bool) "unet gain >1.4" true (g_unet > 1.4);
  Alcotest.(check bool) "r50 gain small" true (g_r50 < 1.3)

let test_network_batch_helps_resnet34 () =
  let net = Zoo.resnet34 () in
  let gain batch =
    let i = Network_runner.run arch Network_runner.P_im2col net ~batch in
    let f4 = Network_runner.run arch (Network_runner.P_winograd Transform.F4) net ~batch in
    f4.Network_runner.throughput_imgs_per_s /. i.Network_runner.throughput_imgs_per_s
  in
  Alcotest.(check bool) "B16 > B1" true (gain 16 > gain 1)

let test_network_energy_efficiency_band () =
  (* Table VII energy-efficiency gains land between 1.0 and 2.5×. *)
  List.iter
    (fun net ->
      let n = net () in
      let i = Network_runner.run arch Network_runner.P_im2col n ~batch:1 in
      let f4 = Network_runner.run arch (Network_runner.P_winograd Transform.F4) n ~batch:1 in
      let g = f4.Network_runner.inferences_per_joule /. i.Network_runner.inferences_per_joule in
      Alcotest.(check bool) (Printf.sprintf "%s eff %.2f" n.Zoo.net_name g) true
        (g >= 1.0 && g < 2.6))
    [ (fun () -> Zoo.resnet34 ()); (fun () -> Zoo.unet ()); (fun () -> Zoo.ssd_vgg16 ()) ]

let test_winograd_layer_speedup_positive () =
  let s = Network_runner.winograd_layer_speedup arch Transform.F4 (Zoo.unet ()) ~batch:1 in
  Alcotest.(check bool) (Printf.sprintf "layer SU %.2f" s) true (s > 1.2 && s < 4.0)

let test_jitter_robustness () =
  (* Different DRAM-jitter seeds perturb cycles by well under 1%. *)
  let l = layer 128 128 32 in
  let base = (Operator.run arch (Operator.Winograd Transform.F4) l ~batch:2).Operator.cycles in
  List.iter
    (fun seed ->
      let r =
        Operator.run { arch with Arch.seed } (Operator.Winograd Transform.F4) l ~batch:2
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d within 1%%" seed)
        true
        (Float.abs ((r.Operator.cycles /. base) -. 1.0) < 0.01))
    [ 2; 3; 4 ]

(* --------------------------------------------------------------- cosim *)

let test_cosim_all_kernels_correct () =
  List.iter
    (fun kind ->
      let r = Cosim.verify kind (layer 64 64 32) ~batch:1 () in
      Alcotest.(check bool)
        (Printf.sprintf "%s rms %.4f < 0.2" (Operator.kind_name kind) r.Cosim.rms_noise)
        true (r.Cosim.rms_noise < 0.2);
      Alcotest.(check bool) "bitwise reproducible" true r.Cosim.bitwise_ok;
      Alcotest.(check bool) "checked values" true (r.Cosim.checked_values > 0))
    [ Operator.Im2col; Operator.Winograd Transform.F2; Operator.Winograd Transform.F4 ]

let test_cosim_strided_im2col () =
  let r = Cosim.verify Operator.Im2col (layer ~stride:2 64 64 16) ~batch:1 () in
  Alcotest.(check bool) "strided rms" true (r.Cosim.rms_noise < 0.2)

let test_cosim_rejects_unsupported () =
  Alcotest.(check bool) "1x1 wino rejected" true
    (try
       ignore (Cosim.verify (Operator.Winograd Transform.F4) (layer ~k:1 64 64 16) ());
       false
     with Invalid_argument _ -> true)

(* --------------------------------------------------------------- trace *)

let test_trace_events_consistent () =
  let r = Operator.run arch (Operator.Winograd Transform.F4) (layer 64 64 16) ~batch:1 in
  (* Every recorded event fits within the simulated makespan and events on
     one resource never overlap. *)
  List.iter
    (fun (_, events) ->
      let last_finish = ref 0.0 in
      List.iter
        (fun (s, f, _) ->
          Alcotest.(check bool) "start <= finish" true (s <= f);
          Alcotest.(check bool) "no overlap" true (s >= !last_finish -. 1e-6);
          Alcotest.(check bool) "within makespan" true (f <= r.Operator.cycles +. 1e-6);
          last_finish := f)
        events)
    r.Operator.trace;
  (* Busy cycles equal the sum of event durations. *)
  List.iter
    (fun (name, events) ->
      let total = List.fold_left (fun a (s, f, _) -> a +. (f -. s)) 0.0 events in
      match List.assoc_opt name r.Operator.busy with
      | Some busy -> Alcotest.(check (float 1e-3)) (name ^ " busy") busy total
      | None -> ())
    r.Operator.trace

let test_trace_chrome_json_well_formed () =
  let r = Operator.run arch Operator.Im2col (layer 32 32 16) ~batch:1 in
  let json = Trace.to_chrome_json r in
  Alcotest.(check bool) "starts with traceEvents" true
    (String.length json > 20 && String.sub json 0 16 = "{\"traceEvents\":[");
  Alcotest.(check bool) "balanced braces" true
    (let opens = ref 0 and closes = ref 0 in
     String.iter (fun c -> if c = '{' then incr opens else if c = '}' then incr closes) json;
     !opens = !closes)

let test_trace_text () =
  let r = Operator.run arch Operator.Im2col (layer 32 32 16) ~batch:1 in
  let text = Trace.to_text ~max_events:5 r in
  Alcotest.(check bool) "has header" true (String.length text > 0)

(* ------------------------------------------------------------ NVDLA (VI) *)

let nv_layer cin cout = layer cin cout 32

let test_nvdla_infinite_bw_near_theoretical () =
  let cfg = Nvdla.default ~bandwidth_words_per_s:128e9 in
  let d = Nvdla.run cfg Nvdla.Direct (nv_layer 128 128) ~batch:8 in
  let w = Nvdla.run cfg Nvdla.Winograd_f2 (nv_layer 128 128) ~batch:8 in
  let su = d.Nvdla.time_s /. w.Nvdla.time_s in
  Alcotest.(check bool) (Printf.sprintf "SU %.2f near 2.25" su) true (su > 1.9 && su <= 2.3)

let test_nvdla_limited_bw_can_lose () =
  (* Paper: at iso-bandwidth the (256,512) layer runs *slower* with
     Winograd than direct (0.72×). *)
  let cfg = Nvdla.default ~bandwidth_words_per_s:42.7e9 in
  let d = Nvdla.run cfg Nvdla.Direct (nv_layer 256 512) ~batch:8 in
  let w = Nvdla.run cfg Nvdla.Winograd_f2 (nv_layer 256 512) ~batch:8 in
  Alcotest.(check bool)
    (Printf.sprintf "SU %.2f < 1" (d.Nvdla.time_s /. w.Nvdla.time_s))
    true
    (d.Nvdla.time_s /. w.Nvdla.time_s < 1.0)

let test_nvdla_weight_refetch_triggered_by_cb () =
  let cfg = Nvdla.default ~bandwidth_words_per_s:42.7e9 in
  let small = Nvdla.run cfg Nvdla.Winograd_f2 (nv_layer 128 128) ~batch:8 in
  let big = Nvdla.run cfg Nvdla.Winograd_f2 (nv_layer 256 512) ~batch:8 in
  Alcotest.(check (float 1e-9)) "no refetch" 1.0 small.Nvdla.weight_refetch;
  Alcotest.(check bool) "refetch > 1" true (big.Nvdla.weight_refetch > 1.0)

let test_ours_beats_nvdla_iso_bandwidth () =
  (* Table VI bottom line: 1.5–3.3× faster at iso peak/bandwidth. *)
  let cfg = Nvdla.default ~bandwidth_words_per_s:42.7e9 in
  List.iter
    (fun (cin, cout) ->
      let l = nv_layer cin cout in
      let nv = Nvdla.best cfg l ~batch:8 in
      let ours = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
      let ours_s = ours.Operator.cycles /. Twq_hw.Area_power.clock_hz in
      let ratio = nv.Nvdla.time_s /. ours_s in
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d) %.2fx faster" cin cout ratio)
        true
        (ratio > 1.2 && ratio < 4.0))
    [ (128, 128); (128, 256); (256, 512) ]

let test_nvdla_best_picks_direct_when_wino_loses () =
  let cfg = Nvdla.default ~bandwidth_words_per_s:42.7e9 in
  let b = Nvdla.best cfg (nv_layer 256 512) ~batch:8 in
  Alcotest.(check bool) "direct chosen" true (b.Nvdla.kernel = Nvdla.Direct)

let () =
  Alcotest.run "twq_sim"
    [
      ( "operator",
        [
          Alcotest.test_case "supports" `Quick test_supports;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "cycles/macs" `Quick test_cycles_positive_and_macs;
          Alcotest.test_case "repeat scales" `Quick test_repeat_scales;
          Alcotest.test_case "im2col utilization" `Quick test_im2col_high_utilization_when_compute_bound;
          Alcotest.test_case "cube cycles quartered" `Quick test_winograd_cube_cycles_quartered;
        ] );
      ( "table4 trends",
        [
          Alcotest.test_case "resolution" `Quick test_trend_larger_resolution_higher_speedup;
          Alcotest.test_case "batch" `Quick test_trend_larger_batch_higher_speedup;
          Alcotest.test_case "input channels" `Quick test_trend_more_cin_higher_speedup;
          Alcotest.test_case "speedup band" `Quick test_speedup_band;
          Alcotest.test_case "F4 beats F2" `Quick test_f4_beats_f2_on_compute_heavy;
          Alcotest.test_case "bandwidth scaling" `Quick test_bandwidth_scaling_helps_f4_more;
          Alcotest.test_case "broadcast ablation" `Quick test_broadcast_off_hurts;
          Alcotest.test_case "buffering ablation" `Quick test_buffering_depth_helps;
          Alcotest.test_case "jitter robustness" `Quick test_jitter_robustness;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "traffic relations" `Quick test_traffic_relations;
          Alcotest.test_case "energy winograd wins" `Quick test_energy_winograd_wins_on_compute_heavy;
          Alcotest.test_case "energy components" `Quick test_energy_components_positive;
        ] );
      ( "network",
        [
          Alcotest.test_case "policies" `Quick test_network_policies;
          Alcotest.test_case "unet vs resnet50" `Quick test_network_unet_gains_more_than_resnet50;
          Alcotest.test_case "batch helps" `Quick test_network_batch_helps_resnet34;
          Alcotest.test_case "energy band" `Quick test_network_energy_efficiency_band;
          Alcotest.test_case "layer speedup" `Quick test_winograd_layer_speedup_positive;
        ] );
      ( "cosim",
        [
          Alcotest.test_case "all kernels correct" `Quick test_cosim_all_kernels_correct;
          Alcotest.test_case "strided im2col" `Quick test_cosim_strided_im2col;
          Alcotest.test_case "rejects unsupported" `Quick test_cosim_rejects_unsupported;
        ] );
      ( "trace",
        [
          Alcotest.test_case "events consistent" `Quick test_trace_events_consistent;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json_well_formed;
          Alcotest.test_case "text" `Quick test_trace_text;
        ] );
      ( "nvdla",
        [
          Alcotest.test_case "infinite bw" `Quick test_nvdla_infinite_bw_near_theoretical;
          Alcotest.test_case "limited bw loses" `Quick test_nvdla_limited_bw_can_lose;
          Alcotest.test_case "cb refetch" `Quick test_nvdla_weight_refetch_triggered_by_cb;
          Alcotest.test_case "ours beats nvdla" `Quick test_ours_beats_nvdla_iso_bandwidth;
          Alcotest.test_case "best kernel" `Quick test_nvdla_best_picks_direct_when_wino_loses;
        ] );
    ]
