(* Tests for the hardware-model substrate: CSD/shift-add DFGs, CSE
   soundness, engine cycle/bandwidth formulas (Table I), and the anchored
   area/power model (Table V). *)

open Twq_hw
module Rmat = Twq_util.Rmat
module Rat = Twq_util.Rat
module Transform = Twq_winograd.Transform
module Rng = Twq_util.Rng

let matvec m x =
  Array.init (Rmat.rows m) (fun i ->
      let acc = ref 0.0 in
      for j = 0 to Rmat.cols m - 1 do
        acc := !acc +. (Rat.to_float m.(i).(j) *. x.(j))
      done;
      !acc)

let close a b = Float.abs (a -. b) < 1e-6

(* -------------------------------------------------------------------- dfg *)

let test_dfg_eval_exact_bt () =
  List.iter
    (fun variant ->
      let m = Transform.bt_rat variant in
      let dfg = Dfg.of_matrix m in
      let rng = Rng.create 1 in
      for _ = 1 to 20 do
        let x = Array.init (Rmat.cols m) (fun _ -> Rng.float rng 4.0 -. 2.0) in
        let y = Dfg.eval dfg x and y_ref = matvec m x in
        Array.iteri
          (fun i v -> Alcotest.(check bool) "bt eval" true (close v y_ref.(i)))
          y
      done)
    Transform.all_variants

let test_dfg_eval_g_fixed_point () =
  (* G has non-dyadic (1/3) factors: eval must match to 2^-frac_bits. *)
  let m = Transform.g_rat Transform.F4 in
  let dfg = Dfg.of_matrix ~frac_bits:12 m in
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    let x = Array.init 3 (fun _ -> Rng.float rng 2.0 -. 1.0) in
    let y = Dfg.eval dfg x and y_ref = matvec m x in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool)
          (Printf.sprintf "g eval %g vs %g" v y_ref.(i))
          true
          (Float.abs (v -. y_ref.(i)) < 4.0 /. 4096.0))
      y
  done

let test_cse_preserves_semantics () =
  List.iter
    (fun variant ->
      List.iter
        (fun m ->
          let plain = Dfg.of_matrix m in
          let cse = Dfg.apply_cse plain in
          let rng = Rng.create 3 in
          for _ = 1 to 30 do
            let x = Array.init (Rmat.cols m) (fun _ -> Rng.float rng 4.0 -. 2.0) in
            let a = Dfg.eval plain x and b = Dfg.eval cse x in
            Array.iteri
              (fun i v -> Alcotest.(check bool) "cse semantics" true (close v b.(i)))
              a
          done)
        [ Transform.bt_rat variant; Transform.at_rat variant ])
    Transform.all_variants

let test_cse_reduces_ops () =
  (* The F4 matrices have many shared sub-expressions; CSE must pay off. *)
  let m = Transform.bt_rat Transform.F4 in
  let plain = Dfg.of_matrix m in
  let cse = Dfg.apply_cse plain in
  Alcotest.(check bool)
    (Printf.sprintf "adders %d < %d" (Dfg.adder_count cse) (Dfg.adder_count plain))
    true
    (Dfg.adder_count cse < Dfg.adder_count plain)

let test_csd_constant_decomposition () =
  (* 5·x = (x<<2) + x : exactly two digits, as in the paper's example. *)
  let m = Rmat.make 1 1 (fun _ _ -> Rat.of_int 5) in
  let dfg = Dfg.of_matrix m in
  Alcotest.(check int) "5 has 2 csd digits" 2 (List.length dfg.Dfg.outputs.(0));
  (* 7 = 8 - 1 in CSD: two digits rather than three. *)
  let m7 = Rmat.make 1 1 (fun _ _ -> Rat.of_int 7) in
  let dfg7 = Dfg.of_matrix m7 in
  Alcotest.(check int) "7 has 2 csd digits" 2 (List.length dfg7.Dfg.outputs.(0));
  let x = [| 3.0 |] in
  Alcotest.(check bool) "5*3" true (close (Dfg.eval dfg x).(0) 15.0);
  Alcotest.(check bool) "7*3" true (close (Dfg.eval dfg7 x).(0) 21.0)

let test_dfg_max_bits_matches_transform_analysis () =
  (* One 1-D pass of Bᵀ on int8 inputs: worst-case growth must be within
     the 2-D bound (2 extra bits for F2 per pass would be 1-ish). *)
  let dfg = Dfg.apply_cse (Dfg.of_matrix (Transform.bt_rat Transform.F2)) in
  let bits = Dfg.max_bits dfg ~input_bits:8 in
  Alcotest.(check bool) (Printf.sprintf "F2 pass bits %d" bits) true (bits >= 9 && bits <= 10);
  let dfg4 = Dfg.apply_cse (Dfg.of_matrix (Transform.bt_rat Transform.F4)) in
  let bits4 = Dfg.max_bits dfg4 ~input_bits:8 in
  Alcotest.(check bool) (Printf.sprintf "F4 pass bits %d" bits4) true (bits4 >= 11 && bits4 <= 13)

let test_dfg_depth_positive () =
  let dfg = Dfg.apply_cse (Dfg.of_matrix (Transform.bt_rat Transform.F4)) in
  Alcotest.(check bool) "depth >= 1" true (Dfg.depth dfg >= 1)

let test_schedule_cycles_bounds () =
  let dfg = Dfg.apply_cse (Dfg.of_matrix (Transform.bt_rat Transform.F4)) in
  let c1 = Dfg.schedule_cycles dfg ~adders:1 in
  let c4 = Dfg.schedule_cycles dfg ~adders:4 in
  let c_inf = Dfg.schedule_cycles dfg ~adders:10000 in
  (* 1 adder serialises every micro-add; more adders only help. *)
  Alcotest.(check bool) (Printf.sprintf "c1 %d >= c4 %d" c1 c4) true (c1 >= c4);
  Alcotest.(check bool) (Printf.sprintf "c4 >= c_inf %d" c_inf) true (c4 >= c_inf);
  (* Unlimited adders converge to the critical path. *)
  Alcotest.(check bool)
    (Printf.sprintf "c_inf %d <= depth %d + slack" c_inf (Dfg.depth dfg))
    true
    (c_inf <= Dfg.depth dfg + 2);
  (* 1 adder pays one cycle per micro-add. *)
  Alcotest.(check bool) "c1 reasonable" true (c1 >= Dfg.adder_count dfg)

let test_schedule_invalid () =
  let dfg = Dfg.of_matrix (Transform.bt_rat Transform.F2) in
  Alcotest.check_raises "zero adders"
    (Invalid_argument "Dfg.schedule_cycles: adders must be positive") (fun () ->
      ignore (Dfg.schedule_cycles dfg ~adders:0))

(* ----------------------------------------------------------------- engine *)

let in_cfg kind =
  { Engine.kind; variant = Transform.F4; transform = Engine.Input; pc = 32; ps = 2; pt = 1 }

let test_engine_table1_cycles () =
  (* Table I: slow = h_T + w_T, fast = h_T. *)
  Alcotest.(check int) "input slow" 12 (Engine.cycles_per_xform (in_cfg Engine.Row_by_row_slow));
  Alcotest.(check int) "input fast" 6 (Engine.cycles_per_xform (in_cfg Engine.Row_by_row_fast));
  let out_cfg kind =
    { Engine.kind; variant = Transform.F4; transform = Engine.Output; pc = 16; ps = 1; pt = 1 }
  in
  (* Paper Sec. IV-B2: output transform takes 10 (slow) or 6 (fast). *)
  Alcotest.(check int) "output slow" 10 (Engine.cycles_per_xform (out_cfg Engine.Row_by_row_slow));
  Alcotest.(check int) "output fast" 6 (Engine.cycles_per_xform (out_cfg Engine.Row_by_row_fast))

let test_engine_table1_bandwidth () =
  let slow = in_cfg Engine.Row_by_row_slow in
  let fast = in_cfg Engine.Row_by_row_fast in
  Alcotest.(check int) "rd slow" (32 * 2 * 6) (Engine.read_bw slow);
  Alcotest.(check int) "wr slow" (32 * 2 * 6) (Engine.write_bw slow);
  Alcotest.(check int) "wr fast" (32 * 2 * 36) (Engine.write_bw fast);
  let tap = { Engine.kind = Engine.Tap_by_tap; variant = Transform.F4;
              transform = Engine.Weight; pc = 4; ps = 1; pt = 4 } in
  Alcotest.(check int) "tap rd" 4 (Engine.read_bw tap);
  Alcotest.(check int) "tap wr" 4 (Engine.write_bw tap)

let test_engine_tap_by_tap_pt_scaling () =
  let mk pt = { Engine.kind = Engine.Tap_by_tap; variant = Transform.F4;
                transform = Engine.Weight; pc = 1; ps = 1; pt } in
  let c1 = Engine.cycles_per_xform (mk 1) in
  let c4 = Engine.cycles_per_xform (mk 4) in
  Alcotest.(check bool)
    (Printf.sprintf "pt=4 (%d) ~4x faster than pt=1 (%d)" c4 c1)
    true
    (c4 <= (c1 / 4) + 1 && c4 >= c1 / 8)

let test_engine_fast_more_adders_than_slow () =
  let slow = Engine.resources (in_cfg Engine.Row_by_row_slow) in
  let fast = Engine.resources (in_cfg Engine.Row_by_row_fast) in
  Alcotest.(check bool) "fast needs more adders" true
    (fast.Engine.adders > slow.Engine.adders)

let test_engine_throughput_matches_paper_rate () =
  (* 64 parallel transforms every 6 cycles: 64·36/6 = 384 taps/cycle. *)
  let cfg = in_cfg Engine.Row_by_row_fast in
  let rate = Engine.throughput_bytes_per_cycle cfg ~element_bytes:1 in
  Alcotest.(check (float 1e-9)) "bytes/cycle" 384.0 rate

(* ------------------------------------------------------------- area/power *)

let test_anchor_points_match_table5 () =
  Alcotest.(check (float 1e-9)) "in area" 0.23 (Area_power.engine_area_mm2 Area_power.input_engine);
  Alcotest.(check (float 1e-9)) "wt area" 0.32 (Area_power.engine_area_mm2 Area_power.weight_engine);
  Alcotest.(check (float 1e-9)) "out area" 0.10 (Area_power.engine_area_mm2 Area_power.output_engine);
  Alcotest.(check (float 1e-9)) "in power" 145.0 (Area_power.engine_power_mw Area_power.input_engine)

let test_engine_overhead_small () =
  (* Paper: all Winograd engines together are 6.1% of the core area. *)
  let total =
    Area_power.engine_area_mm2 Area_power.input_engine
    +. Area_power.engine_area_mm2 Area_power.weight_engine
    +. Area_power.engine_area_mm2 Area_power.output_engine
  in
  let frac = total /. Area_power.core_area_mm2 in
  Alcotest.(check bool) (Printf.sprintf "engines %.1f%%" (frac *. 100.0)) true
    (frac > 0.05 && frac < 0.07)

let test_area_scales_with_parallelism () =
  let half = { Area_power.input_engine with Engine.pc = 16 } in
  let a_half = Area_power.engine_area_mm2 half in
  Alcotest.(check bool)
    (Printf.sprintf "half engine %.3f < 0.23" a_half)
    true
    (a_half < 0.23 && a_half > 0.23 /. 3.0)

let test_cube_tops_per_watt () =
  (* Table V: 5.39 TOp/s/W im2col, 17.04 with the F4 kernel. *)
  let im2col = Area_power.cube_tops_per_watt ~winograd:false in
  let wino = Area_power.cube_tops_per_watt ~winograd:true in
  Alcotest.(check bool) (Printf.sprintf "im2col %.2f" im2col) true
    (Float.abs (im2col -. 5.39) < 0.2);
  Alcotest.(check bool) (Printf.sprintf "wino %.2f" wino) true
    (Float.abs (wino -. 17.04) < 0.5)

let test_winograd_power_overhead_17pct () =
  (* Paper: the Winograd extension adds ≈17% power to the Cube Unit. *)
  let engines =
    Area_power.engine_power_mw Area_power.input_engine
    +. Area_power.engine_power_mw Area_power.output_engine
  in
  let frac = engines /. Area_power.cube_power_mw_im2col in
  Alcotest.(check bool) (Printf.sprintf "overhead %.1f%%" (frac *. 100.0)) true
    (frac > 0.12 && frac < 0.22)

let test_memory_costs_sane () =
  Alcotest.(check (float 1e-9)) "l0a rd" 0.22 (Area_power.rd_pj_per_byte Area_power.L0A);
  Alcotest.(check bool) "wino portB costlier" true
    (Area_power.rd_pj_per_byte Area_power.L0C_portB_winograd
    > Area_power.rd_pj_per_byte Area_power.L0C_portB_im2col);
  Alcotest.(check bool) "L1 ~3x L0B" true
    (let r = Area_power.rd_pj_per_byte Area_power.L1 /. Area_power.rd_pj_per_byte Area_power.L0B in
     r > 2.5 && r < 3.5);
  Alcotest.(check bool) "GM dominates" true
    (Area_power.rd_pj_per_byte Area_power.GM > 10.0 *. Area_power.rd_pj_per_byte Area_power.L1)

let () =
  Alcotest.run "twq_hw"
    [
      ( "dfg",
        [
          Alcotest.test_case "eval exact (Bt)" `Quick test_dfg_eval_exact_bt;
          Alcotest.test_case "eval fixed-point (G)" `Quick test_dfg_eval_g_fixed_point;
          Alcotest.test_case "cse preserves semantics" `Quick test_cse_preserves_semantics;
          Alcotest.test_case "cse reduces ops" `Quick test_cse_reduces_ops;
          Alcotest.test_case "csd decomposition" `Quick test_csd_constant_decomposition;
          Alcotest.test_case "max bits" `Quick test_dfg_max_bits_matches_transform_analysis;
          Alcotest.test_case "depth" `Quick test_dfg_depth_positive;
          Alcotest.test_case "list scheduling" `Quick test_schedule_cycles_bounds;
          Alcotest.test_case "scheduling invalid" `Quick test_schedule_invalid;
        ] );
      ( "engine",
        [
          Alcotest.test_case "Table I cycles" `Quick test_engine_table1_cycles;
          Alcotest.test_case "Table I bandwidth" `Quick test_engine_table1_bandwidth;
          Alcotest.test_case "tap-by-tap Pt scaling" `Quick test_engine_tap_by_tap_pt_scaling;
          Alcotest.test_case "fast vs slow adders" `Quick test_engine_fast_more_adders_than_slow;
          Alcotest.test_case "production rate" `Quick test_engine_throughput_matches_paper_rate;
        ] );
      ( "area/power",
        [
          Alcotest.test_case "anchors" `Quick test_anchor_points_match_table5;
          Alcotest.test_case "6.1% overhead" `Quick test_engine_overhead_small;
          Alcotest.test_case "area scaling" `Quick test_area_scales_with_parallelism;
          Alcotest.test_case "cube TOp/s/W" `Quick test_cube_tops_per_watt;
          Alcotest.test_case "17% power overhead" `Quick test_winograd_power_overhead_17pct;
          Alcotest.test_case "memory costs" `Quick test_memory_costs_sane;
        ] );
    ]
