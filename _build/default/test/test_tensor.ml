(* Tests for the tensor substrate: shapes, float/int tensors, and the
   reference NN primitives (conv2d vs im2col cross-check, pooling, bn,
   softmax, etc.). *)

open Twq_tensor
module Rng = Twq_util.Rng

let tensor = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:1e-9)
let tensor_loose = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:1e-6)
let itensor = Alcotest.testable Itensor.pp Itensor.equal

(* ---------------------------------------------------------------- Shape *)

let test_shape_numel_strides () =
  Alcotest.(check int) "numel" 24 (Shape.numel [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check int)
    "offset" 17
    (Shape.offset ~strides:(Shape.strides [| 2; 3; 4 |]) [| 1; 1; 1 |])

let test_shape_conv_out () =
  Alcotest.(check (pair int int))
    "same 3x3" (8, 8)
    (Shape.conv2d_out ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~pad:1);
  Alcotest.(check (pair int int))
    "valid 3x3" (6, 6)
    (Shape.conv2d_out ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:1 ~pad:0);
  Alcotest.(check (pair int int))
    "stride 2" (4, 4)
    (Shape.conv2d_out ~h:8 ~w:8 ~kh:3 ~kw:3 ~stride:2 ~pad:1)

let test_shape_validate () =
  Alcotest.check_raises "zero dim" (Invalid_argument "Shape.validate: non-positive dim")
    (fun () -> Shape.validate [| 2; 0 |])

(* --------------------------------------------------------------- Tensor *)

let test_tensor_create_get_set () =
  let t = Tensor.zeros [| 2; 3 |] in
  Tensor.set t [| 1; 2 |] 5.0;
  Alcotest.(check (float 0.0)) "get" 5.0 (Tensor.get t [| 1; 2 |]);
  Alcotest.(check (float 0.0)) "get2" 5.0 (Tensor.get2 t 1 2);
  Alcotest.(check (float 0.0)) "other zero" 0.0 (Tensor.get2 t 0 0)

let test_tensor_init_indices () =
  let t = Tensor.init [| 2; 3 |] (fun i -> float_of_int ((10 * i.(0)) + i.(1))) in
  Alcotest.(check (float 0.0)) "0,0" 0.0 (Tensor.get2 t 0 0);
  Alcotest.(check (float 0.0)) "1,2" 12.0 (Tensor.get2 t 1 2)

let test_tensor_reshape_shares () =
  let t = Tensor.zeros [| 2; 3 |] in
  let r = Tensor.reshape t [| 3; 2 |] in
  Tensor.set2 r 0 0 9.0;
  Alcotest.(check (float 0.0)) "shared" 9.0 (Tensor.get2 t 0 0);
  Alcotest.check_raises "bad reshape"
    (Invalid_argument "Tensor.reshape: element count mismatch") (fun () ->
      ignore (Tensor.reshape t [| 4; 2 |]))

let test_tensor_arith () =
  let a = Tensor.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.of_array [| 3 |] [| 4.0; 5.0; 6.0 |] in
  Alcotest.check tensor "add" (Tensor.of_array [| 3 |] [| 5.0; 7.0; 9.0 |]) (Tensor.add a b);
  Alcotest.check tensor "sub" (Tensor.of_array [| 3 |] [| -3.0; -3.0; -3.0 |]) (Tensor.sub a b);
  Alcotest.check tensor "mul" (Tensor.of_array [| 3 |] [| 4.0; 10.0; 18.0 |]) (Tensor.mul a b);
  Alcotest.check tensor "scale" (Tensor.of_array [| 3 |] [| 2.0; 4.0; 6.0 |]) (Tensor.scale 2.0 a);
  Alcotest.(check (float 1e-12)) "sum" 6.0 (Tensor.sum a);
  Alcotest.(check (float 1e-12)) "dot" 32.0 (Tensor.dot a b);
  Alcotest.(check (float 1e-12)) "sumsq" 14.0 (Tensor.sumsq a);
  Alcotest.(check (float 1e-12)) "max_abs" 3.0 (Tensor.max_abs a)

let test_tensor_of_array_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Tensor.of_array: length mismatch")
    (fun () -> ignore (Tensor.of_array [| 2 |] [| 1.0 |]))

(* -------------------------------------------------------------- Itensor *)

let test_itensor_basic () =
  let t = Itensor.zeros [| 2; 2 |] in
  Itensor.set2 t 0 1 42;
  Alcotest.(check int) "get" 42 (Itensor.get2 t 0 1);
  let m = Itensor.map (fun v -> v * 2) t in
  Alcotest.(check int) "map" 84 (Itensor.get2 m 0 1)

let test_itensor_clamp () =
  Alcotest.(check int) "hi" 127 (Itensor.clamp_int ~bits:8 300);
  Alcotest.(check int) "lo" (-128) (Itensor.clamp_int ~bits:8 (-300));
  Alcotest.(check int) "mid" 5 (Itensor.clamp_int ~bits:8 5);
  Alcotest.(check int) "4-bit hi" 7 (Itensor.clamp_int ~bits:4 100)

let test_itensor_round_shift () =
  Alcotest.(check int) "5>>1" 3 (Itensor.round_shift 5 1);
  Alcotest.(check int) "4>>1" 2 (Itensor.round_shift 4 1);
  Alcotest.(check int) "-5>>1" (-3) (Itensor.round_shift (-5) 1);
  Alcotest.(check int) "-4>>1" (-2) (Itensor.round_shift (-4) 1);
  Alcotest.(check int) "shift 0" 17 (Itensor.round_shift 17 0);
  Alcotest.(check int) "100>>3" 13 (Itensor.round_shift 100 3)

let prop_round_shift_matches_float =
  (* round_shift v k = round(v / 2^k) with ties away from zero. *)
  QCheck.Test.make ~name:"round_shift matches float rounding" ~count:1000
    QCheck.(pair (int_range (-100000) 100000) (int_range 0 10))
    (fun (v, k) ->
      let expected = int_of_float (Float.round (float_of_int v /. float_of_int (1 lsl k))) in
      Itensor.round_shift v k = expected)

let test_itensor_matmul () =
  let a = Itensor.of_array [| 2; 2 |] [| 1; 2; 3; 4 |] in
  let b = Itensor.of_array [| 2; 2 |] [| 5; 6; 7; 8 |] in
  Alcotest.check itensor "matmul"
    (Itensor.of_array [| 2; 2 |] [| 19; 22; 43; 50 |])
    (Itensor.matmul a b)

(* ------------------------------------------------------------------ Ops *)

let test_matmul_known () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  Alcotest.check tensor "matmul"
    (Tensor.of_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    (Ops.matmul a b)

let test_matmul_identity () =
  let rng = Rng.create 5 in
  let a = Tensor.rand_uniform rng [| 4; 4 |] ~lo:(-1.0) ~hi:1.0 in
  let id = Tensor.init [| 4; 4 |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
  Alcotest.check tensor "A*I" a (Ops.matmul a id)

let test_transpose () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Alcotest.check tensor "transpose"
    (Tensor.of_array [| 3; 2 |] [| 1.; 4.; 2.; 5.; 3.; 6. |])
    (Ops.transpose a)

let test_conv2d_known () =
  (* 1x1x3x3 input, 1x1x2x2 kernel of ones: valid conv sums 2x2 windows. *)
  let x = Tensor.of_array [| 1; 1; 3; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  let w = Tensor.ones [| 1; 1; 2; 2 |] in
  Alcotest.check tensor "2x2 sum"
    (Tensor.of_array [| 1; 1; 2; 2 |] [| 12.; 16.; 24.; 28. |])
    (Ops.conv2d ~x ~w ())

let test_conv2d_identity_kernel () =
  let rng = Rng.create 6 in
  let x = Tensor.rand_uniform rng [| 1; 1; 5; 5 |] ~lo:(-1.0) ~hi:1.0 in
  (* 3x3 kernel with centre 1: pad-1 conv is the identity. *)
  let w = Tensor.zeros [| 1; 1; 3; 3 |] in
  Tensor.set4 w 0 0 1 1 1.0;
  Alcotest.check tensor "identity" x (Ops.conv2d ~pad:1 ~x ~w ())

let test_conv2d_bias () =
  let x = Tensor.ones [| 1; 1; 3; 3 |] in
  let w = Tensor.ones [| 2; 1; 3; 3 |] in
  let b = Tensor.of_array [| 2 |] [| 10.0; 20.0 |] in
  let y = Ops.conv2d ~pad:1 ~x ~w ~b () in
  (* Centre pixel sees all 9 ones. *)
  Alcotest.(check (float 1e-9)) "chan0" 19.0 (Tensor.get4 y 0 0 1 1);
  Alcotest.(check (float 1e-9)) "chan1" 29.0 (Tensor.get4 y 0 1 1 1)

let random_conv_case seed (n, cin, cout, h, w, stride, pad) =
  let rng = Rng.create seed in
  let x = Tensor.rand_uniform rng [| n; cin; h; w |] ~lo:(-1.0) ~hi:1.0 in
  let wt = Tensor.rand_uniform rng [| cout; cin; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.rand_uniform rng [| cout |] ~lo:(-1.0) ~hi:1.0 in
  let direct = Ops.conv2d ~stride ~pad ~x ~w:wt ~b () in
  let lowered = Ops.conv2d_im2col ~stride ~pad ~x ~w:wt ~b () in
  Alcotest.check tensor_loose "im2col == direct" direct lowered

let test_conv2d_im2col_cross_check () =
  random_conv_case 1 (1, 3, 4, 8, 8, 1, 1);
  random_conv_case 2 (2, 2, 3, 7, 9, 1, 0);
  random_conv_case 3 (1, 4, 2, 10, 10, 2, 1);
  random_conv_case 4 (3, 1, 1, 5, 5, 1, 1)

let prop_conv_linear_in_weights =
  (* conv(x, w1+w2) = conv(x,w1) + conv(x,w2) *)
  QCheck.Test.make ~name:"conv linear in weights" ~count:25
    (QCheck.int_range 0 10000) (fun seed ->
      let rng = Rng.create seed in
      let x = Tensor.rand_uniform rng [| 1; 2; 6; 6 |] ~lo:(-1.0) ~hi:1.0 in
      let w1 = Tensor.rand_uniform rng [| 2; 2; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let w2 = Tensor.rand_uniform rng [| 2; 2; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let lhs = Ops.conv2d ~pad:1 ~x ~w:(Tensor.add w1 w2) () in
      let rhs = Tensor.add (Ops.conv2d ~pad:1 ~x ~w:w1 ()) (Ops.conv2d ~pad:1 ~x ~w:w2 ()) in
      Tensor.approx_equal ~tol:1e-9 lhs rhs)

let test_relu () =
  let x = Tensor.of_array [| 4 |] [| -1.0; 0.0; 2.0; -3.0 |] in
  Alcotest.check tensor "relu"
    (Tensor.of_array [| 4 |] [| 0.0; 0.0; 2.0; 0.0 |])
    (Ops.relu x);
  Alcotest.check tensor "leaky"
    (Tensor.of_array [| 4 |] [| -0.1; 0.0; 2.0; -0.3 |])
    (Ops.leaky_relu 0.1 x)

let test_max_pool () =
  let x = Tensor.of_array [| 1; 1; 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  Alcotest.check tensor "maxpool"
    (Tensor.of_array [| 1; 1; 1; 1 |] [| 4.0 |])
    (Ops.max_pool2d ~k:2 ~stride:2 x);
  Alcotest.check tensor "avgpool"
    (Tensor.of_array [| 1; 1; 1; 1 |] [| 2.5 |])
    (Ops.avg_pool2d ~k:2 ~stride:2 x)

let test_global_avg_pool () =
  let x = Tensor.of_array [| 1; 2; 2; 2 |] [| 1.; 2.; 3.; 4.; 10.; 20.; 30.; 40. |] in
  Alcotest.check tensor "gap"
    (Tensor.of_array [| 1; 2 |] [| 2.5; 25.0 |])
    (Ops.global_avg_pool x)

let test_upsample () =
  let x = Tensor.of_array [| 1; 1; 1; 2 |] [| 1.0; 2.0 |] in
  Alcotest.check tensor "nearest x2"
    (Tensor.of_array [| 1; 1; 2; 4 |] [| 1.; 1.; 2.; 2.; 1.; 1.; 2.; 2. |])
    (Ops.upsample_nearest 2 x)

let test_batch_norm () =
  let x = Tensor.of_array [| 1; 1; 1; 2 |] [| 4.0; 8.0 |] in
  let gamma = Tensor.of_array [| 1 |] [| 2.0 |] in
  let beta = Tensor.of_array [| 1 |] [| 1.0 |] in
  let mean = Tensor.of_array [| 1 |] [| 6.0 |] in
  let var = Tensor.of_array [| 1 |] [| 4.0 |] in
  let y = Ops.batch_norm ~x ~gamma ~beta ~mean ~var ~eps:0.0 in
  Alcotest.check tensor "bn"
    (Tensor.of_array [| 1; 1; 1; 2 |] [| -1.0; 3.0 |])
    y

let test_linear () =
  let x = Tensor.of_array [| 1; 2 |] [| 1.0; 2.0 |] in
  let w = Tensor.of_array [| 3; 2 |] [| 1.; 0.; 0.; 1.; 1.; 1. |] in
  let b = Tensor.of_array [| 3 |] [| 0.5; 0.5; 0.5 |] in
  Alcotest.check tensor "linear"
    (Tensor.of_array [| 1; 3 |] [| 1.5; 2.5; 3.5 |])
    (Ops.linear ~x ~w ~b ())

let test_softmax () =
  let x = Tensor.of_array [| 1; 3 |] [| 1.0; 1.0; 1.0 |] in
  let y = Ops.softmax x in
  Alcotest.(check (float 1e-9)) "uniform" (1.0 /. 3.0) (Tensor.get2 y 0 0);
  (* softmax rows sum to 1 even with large logits (stability). *)
  let x2 = Tensor.of_array [| 1; 3 |] [| 1000.0; 1001.0; 999.0 |] in
  let y2 = Ops.softmax x2 in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Tensor.sum y2)

let test_log_softmax_consistent () =
  let x = Tensor.of_array [| 2; 3 |] [| 0.1; 0.5; -0.2; 2.0; 0.0; 1.0 |] in
  let s = Ops.softmax x and ls = Ops.log_softmax x in
  Alcotest.check tensor_loose "log softmax = log(softmax)" (Tensor.map log s) ls

let test_concat_channels () =
  let a = Tensor.ones [| 1; 1; 2; 2 |] in
  let b = Tensor.scale 2.0 (Tensor.ones [| 1; 2; 2; 2 |]) in
  let c = Ops.concat_channels a b in
  Alcotest.(check int) "channels" 3 (Tensor.dim c 1);
  Alcotest.(check (float 0.0)) "from a" 1.0 (Tensor.get4 c 0 0 0 0);
  Alcotest.(check (float 0.0)) "from b" 2.0 (Tensor.get4 c 0 2 1 1)

let test_argmax_topk () =
  let t = Tensor.of_array [| 1; 4 |] [| 0.1; 0.9; 0.4; 0.2 |] in
  Alcotest.(check int) "argmax" 1 (Ops.argmax_row t 0);
  Alcotest.(check (list int)) "top2" [ 1; 2 ] (Ops.top_k_row t 0 2)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]) in
  Alcotest.run "twq_tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "numel/strides" `Quick test_shape_numel_strides;
          Alcotest.test_case "conv out" `Quick test_shape_conv_out;
          Alcotest.test_case "validate" `Quick test_shape_validate;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "create/get/set" `Quick test_tensor_create_get_set;
          Alcotest.test_case "init indices" `Quick test_tensor_init_indices;
          Alcotest.test_case "reshape shares" `Quick test_tensor_reshape_shares;
          Alcotest.test_case "arith" `Quick test_tensor_arith;
          Alcotest.test_case "of_array mismatch" `Quick test_tensor_of_array_mismatch;
        ] );
      ( "itensor",
        [
          Alcotest.test_case "basic" `Quick test_itensor_basic;
          Alcotest.test_case "clamp" `Quick test_itensor_clamp;
          Alcotest.test_case "round shift" `Quick test_itensor_round_shift;
          Alcotest.test_case "matmul" `Quick test_itensor_matmul;
          qt prop_round_shift_matches_float;
        ] );
      ( "ops",
        [
          Alcotest.test_case "matmul known" `Quick test_matmul_known;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "conv2d known" `Quick test_conv2d_known;
          Alcotest.test_case "conv2d identity kernel" `Quick test_conv2d_identity_kernel;
          Alcotest.test_case "conv2d bias" `Quick test_conv2d_bias;
          Alcotest.test_case "im2col cross-check" `Quick test_conv2d_im2col_cross_check;
          qt prop_conv_linear_in_weights;
          Alcotest.test_case "relu" `Quick test_relu;
          Alcotest.test_case "pooling" `Quick test_max_pool;
          Alcotest.test_case "global avg pool" `Quick test_global_avg_pool;
          Alcotest.test_case "upsample" `Quick test_upsample;
          Alcotest.test_case "batch norm" `Quick test_batch_norm;
          Alcotest.test_case "linear" `Quick test_linear;
          Alcotest.test_case "softmax" `Quick test_softmax;
          Alcotest.test_case "log softmax" `Quick test_log_softmax_consistent;
          Alcotest.test_case "concat channels" `Quick test_concat_channels;
          Alcotest.test_case "argmax/topk" `Quick test_argmax_topk;
        ] );
    ]
