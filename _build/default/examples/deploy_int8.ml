(* End-to-end deployment: QAT training → integer-only inference.

   Trains a Winograd-aware tap-wise quantized CNN, folds its batch norms,
   exports it to a chain of integer Tapwise layers (int8 activations, all
   Winograd-domain rescaling by shifts) and compares the integer network's
   accuracy to the fake-quant training-time model — the complete flow a
   user of the paper's accelerator would run.  Finally, prunes the deployed
   Winograd-domain weights to show the compression hook.

   Run with: dune exec examples/deploy_int8.exe *)

open Twq
module Synth = Dataset.Synth_images
module Qat = Nn.Qat_model
module Trainer = Nn.Trainer
module Deploy = Nn.Deploy

let () =
  let spec =
    { Synth.default_spec with Synth.classes = 8; noise = 0.8; n_train = 256;
      n_valid = 48; n_test = 128 }
  in
  let data = Synth.generate ~spec ~seed:515 () in
  print_endline "== QAT -> integer-only deployment ==\n";
  Printf.printf "training Winograd-aware tap-wise int8 model (F4)...\n%!";
  let mode =
    Qat.Wa { Qat.variant = Winograd.Transform.F4; wino_bits = 8; tapwise = true;
             pow2 = true; learned = false }
  in
  let model = Qat.create { (Qat.default_config mode) with Qat.classes = 8 } ~seed:2 in
  let _ = Trainer.train model data { Trainer.default_options with Trainer.epochs = 5 } in
  let fq_acc = Trainer.evaluate model data.Synth.test in
  Printf.printf "  fake-quant (training graph) test accuracy: %.1f%%\n\n" (100.0 *. fq_acc);

  Printf.printf "folding batch norms and exporting to integer layers...\n%!";
  let calibration, _ = Synth.batch data data.Synth.train (Array.init 32 Fun.id) in
  let net = Deploy.export model ~calibration () in
  let int_acc = Deploy.accuracy net data.Synth.test in
  Printf.printf "  integer-only network: %d Tapwise conv layers\n"
    (List.length (Deploy.layers net));
  Printf.printf "  integer-only test accuracy: %.1f%% (gap %.1f%%)\n\n"
    (100.0 *. int_acc)
    (100.0 *. (fq_acc -. int_acc));

  (* The chained scales mean every inter-layer tensor is a plain int8 map. *)
  List.iteri
    (fun i l ->
      Printf.printf "  layer %d: s_x = %.5f, s_y = %.5f, %d winograd weights\n" i
        l.Quant.Tapwise.s_x l.Quant.Tapwise.s_y
        (Itensor.numel l.Quant.Tapwise.wq))
    (Deploy.layers net);

  print_endline "\npruning the deployed Winograd-domain weights (density 60%):";
  let pruned_layers =
    List.map (fun l -> Pruning.prune_layer l ~density:0.6) (Deploy.layers net)
  in
  List.iteri
    (fun i l ->
      Printf.printf "  layer %d: %.0f%% of winograd MACs remain\n" i
        (100.0 *. Pruning.effective_macs_fraction l))
    pruned_layers;
  print_endline "\nDone."
