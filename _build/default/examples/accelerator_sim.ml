(* Simulating a full CNN on the Winograd-enhanced accelerator.

   Runs ResNet-34 and UNet through the dual-core DSA model under the three
   operator policies (im2col, Winograd F2, Winograd F4), prints per-layer
   kernel choices for the most interesting layers and the end-to-end
   throughput/energy comparison.

   Run with: dune exec examples/accelerator_sim.exe *)

open Twq
module Zoo = Nn.Zoo
module NR = Sim.Network_runner
module Op = Sim.Operator

let show_network name net batch =
  let arch = Sim.Arch.default in
  Printf.printf "== %s (batch %d, %dx%d input) ==\n" name batch
    net.Zoo.resolution net.Zoo.resolution;
  let im2col = NR.run arch NR.P_im2col net ~batch in
  let f2 = NR.run arch (NR.P_winograd Winograd.Transform.F2) net ~batch in
  let f4 = NR.run arch (NR.P_winograd Winograd.Transform.F4) net ~batch in
  Printf.printf "  im2col: %7.1f imgs/s\n" im2col.NR.throughput_imgs_per_s;
  Printf.printf "  F2:     %7.1f imgs/s (%.2fx)\n" f2.NR.throughput_imgs_per_s
    (f2.NR.throughput_imgs_per_s /. im2col.NR.throughput_imgs_per_s);
  Printf.printf "  F4:     %7.1f imgs/s (%.2fx), energy efficiency %.2fx\n"
    f4.NR.throughput_imgs_per_s
    (f4.NR.throughput_imgs_per_s /. im2col.NR.throughput_imgs_per_s)
    (f4.NR.inferences_per_joule /. im2col.NR.inferences_per_joule);
  (* Per-layer choices: how the compiler maps layers to kernels. *)
  let wino = ref 0 and direct = ref 0 in
  List.iter
    (fun c ->
      match c.NR.chosen with
      | Op.Winograd _ -> incr wino
      | Op.Im2col -> incr direct)
    f4.NR.layers;
  Printf.printf "  F4 policy: %d layers on Winograd, %d on im2col\n" !wino !direct;
  print_endline "  slowest five layers under the F4 policy:";
  let by_cycles =
    List.sort
      (fun a b -> Float.compare b.NR.result.Op.cycles a.NR.result.Op.cycles)
      f4.NR.layers
  in
  List.iteri
    (fun i c ->
      if i < 5 then
        Printf.printf "    %-14s %4dx%-4d %4d->%-4d k%d s%d  %-11s %10.0f cycles\n"
          c.NR.layer.Zoo.name c.NR.layer.Zoo.out_h c.NR.layer.Zoo.out_w
          c.NR.layer.Zoo.cin c.NR.layer.Zoo.cout c.NR.layer.Zoo.k
          c.NR.layer.Zoo.stride
          (Op.kind_name c.NR.chosen)
          c.NR.result.Op.cycles)
    by_cycles;
  print_newline ()

let () =
  show_network "ResNet-34" (Zoo.resnet34 ()) 1;
  show_network "ResNet-34" (Zoo.resnet34 ()) 16;
  show_network "UNet" (Zoo.unet ()) 1;
  show_network "YOLOv3" (Zoo.yolov3 ~resolution:416 ()) 1
