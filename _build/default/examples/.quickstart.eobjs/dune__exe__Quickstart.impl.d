examples/quickstart.ml: Itensor Ops Printf Quant Rng Shape Tensor Twq Winograd
