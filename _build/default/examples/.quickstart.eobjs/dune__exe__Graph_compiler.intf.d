examples/graph_compiler.mli:
