examples/train_tapwise.ml: Array Dataset Nn Printf String Twq Winograd
