examples/accelerator_sim.mli:
