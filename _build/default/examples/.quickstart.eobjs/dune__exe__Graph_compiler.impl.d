examples/graph_compiler.ml: List Nn Printf Rng Sim Table Tensor Twq
