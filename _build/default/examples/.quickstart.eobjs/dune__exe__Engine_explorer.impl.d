examples/engine_explorer.ml: Hw List Printf Table Twq Winograd
