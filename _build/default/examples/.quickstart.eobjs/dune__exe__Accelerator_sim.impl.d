examples/accelerator_sim.ml: Float List Nn Printf Sim Twq Winograd
