examples/train_tapwise.mli:
