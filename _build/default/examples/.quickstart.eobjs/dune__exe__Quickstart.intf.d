examples/quickstart.mli:
