examples/engine_explorer.mli:
