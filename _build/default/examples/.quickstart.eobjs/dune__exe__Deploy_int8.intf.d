examples/deploy_int8.mli:
