examples/deploy_int8.ml: Array Dataset Fun Itensor List Nn Printf Pruning Quant Twq Winograd
