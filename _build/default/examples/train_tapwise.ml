(* Winograd-aware quantization-aware training with tap-wise pow2 scales.

   Trains the same small CNN four ways on the SynthImages dataset:
   FP32 baseline, F4 with a single Winograd-domain scale (the failing
   baseline), F4 with statically calibrated tap-wise pow2 scales (the
   paper's method), and the log2-gradient + knowledge-distillation
   variant, then prints the accuracy comparison.

   Run with: dune exec examples/train_tapwise.exe *)

open Twq
module Synth = Dataset.Synth_images
module Qat = Nn.Qat_model
module Trainer = Nn.Trainer

let () =
  let spec =
    { Synth.default_spec with Synth.classes = 8; noise = 0.8; n_train = 256;
      n_valid = 64; n_test = 128 }
  in
  let data = Synth.generate ~spec ~seed:99 () in
  let opts = { Trainer.default_options with Trainer.epochs = 5 } in
  let train ?kd mode =
    let cfg = { (Qat.default_config mode) with Qat.classes = spec.Synth.classes } in
    let model = Qat.create cfg ~seed:3 in
    let opts =
      match kd with
      | None -> opts
      | Some teacher ->
          { opts with Trainer.kd = Some { Trainer.teacher; temperature = 4.0; alpha = 0.5 } }
    in
    let history = Trainer.train model data opts in
    (model, history)
  in
  print_endline "== Winograd-aware tap-wise QAT on SynthImages ==\n";
  Printf.printf "training FP32 teacher...\n%!";
  let teacher, h_fp32 = train Qat.Fp32 in
  let acc_fp32 = Trainer.evaluate teacher data.Synth.test in
  Printf.printf "  valid acc per epoch: %s\n  test acc: %.1f%%\n\n"
    (String.concat " "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") h_fp32.Trainer.valid_acc)))
    (100.0 *. acc_fp32);

  Printf.printf "training F4 single-scale int8 (the baseline that breaks)...\n%!";
  let single, _ =
    train
      (Qat.Wa { Qat.variant = Winograd.Transform.F4; wino_bits = 8;
                tapwise = false; pow2 = true; learned = false })
  in
  let acc_single = Trainer.evaluate single data.Synth.test in
  Printf.printf "  test acc: %.1f%% (drop %.1f%%)\n\n" (100.0 *. acc_single)
    (100.0 *. (acc_fp32 -. acc_single));

  Printf.printf "training F4 tap-wise pow2 (static calibration)...\n%!";
  let ours, _ =
    train
      (Qat.Wa { Qat.variant = Winograd.Transform.F4; wino_bits = 8;
                tapwise = true; pow2 = true; learned = false })
  in
  let acc_ours = Trainer.evaluate ours data.Synth.test in
  Printf.printf "  test acc: %.1f%% (drop %.1f%%)\n\n" (100.0 *. acc_ours)
    (100.0 *. (acc_fp32 -. acc_ours));

  Printf.printf "training F4 tap-wise + log2-gradient scales + KD...\n%!";
  let learned, _ =
    train ~kd:teacher
      (Qat.Wa { Qat.variant = Winograd.Transform.F4; wino_bits = 8;
                tapwise = true; pow2 = true; learned = true })
  in
  let acc_learned = Trainer.evaluate learned data.Synth.test in
  Printf.printf "  test acc: %.1f%%\n\n" (100.0 *. acc_learned);

  Printf.printf
    "summary: FP32 %.1f%% | F4 single-scale %.1f%% | F4 tap-wise %.1f%% | \
     F4 tap-wise log2+KD %.1f%%\n"
    (100.0 *. acc_fp32) (100.0 *. acc_single) (100.0 *. acc_ours)
    (100.0 *. acc_learned)
