(* Design-space exploration of the Winograd transformation engines.

   Sweeps the micro-architectural knobs of Sec. IV-B1 — engine style
   (row-by-row slow/fast, tap-by-tap) and PE replication — and prints the
   area/throughput/bandwidth trade-off table a DSA designer would use to
   pick the configurations the paper settles on.

   Run with: dune exec examples/engine_explorer.exe *)

open Twq
module Engine = Hw.Engine
module AP = Hw.Area_power

let explore transform label =
  Printf.printf "== %s transformation engine design space (F4) ==\n" label;
  let tbl =
    Table.create
      [ "style"; "Pc"; "Ps"; "Pt"; "xf/cyc"; "B/cyc out"; "RD B/cyc"; "area mm^2";
        "mW"; "mm^2 per (xf/cyc)"; "1-pass sched (1/4/inf adders)" ]
  in
  let pass_dfg =
    Engine.dfg_pass
      { Engine.kind = Engine.Tap_by_tap; variant = Winograd.Transform.F4;
        transform; pc = 1; ps = 1; pt = 1 }
  in
  let sched =
    Printf.sprintf "%d / %d / %d"
      (Hw.Dfg.schedule_cycles pass_dfg ~adders:1)
      (Hw.Dfg.schedule_cycles pass_dfg ~adders:4)
      (Hw.Dfg.schedule_cycles pass_dfg ~adders:1024)
  in
  let candidates =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun pc ->
            List.map
              (fun pt ->
                { Engine.kind; variant = Winograd.Transform.F4; transform;
                  pc; ps = 1; pt })
              (if kind = Engine.Tap_by_tap then [ 4; 8; 16 ] else [ 1 ]))
          [ 8; 16; 32; 64 ])
      [ Engine.Row_by_row_slow; Engine.Row_by_row_fast; Engine.Tap_by_tap ]
  in
  List.iter
    (fun cfg ->
      let style =
        match cfg.Engine.kind with
        | Engine.Row_by_row_slow -> "row slow"
        | Engine.Row_by_row_fast -> "row fast"
        | Engine.Tap_by_tap -> "tap-by-tap"
      in
      let rate = Engine.throughput_xforms_per_cycle cfg in
      let area = AP.engine_area_mm2 cfg in
      Table.add_row tbl
        [
          style;
          string_of_int cfg.Engine.pc;
          string_of_int cfg.Engine.ps;
          string_of_int cfg.Engine.pt;
          Printf.sprintf "%.2f" rate;
          Printf.sprintf "%.0f" (Engine.throughput_bytes_per_cycle cfg ~element_bytes:1);
          string_of_int (Engine.read_bw cfg);
          Printf.sprintf "%.3f" area;
          Printf.sprintf "%.0f" (AP.engine_power_mw cfg);
          Printf.sprintf "%.3f" (area /. rate);
          sched;
        ])
    candidates;
  Table.print tbl;
  print_newline ()

let () =
  explore Engine.Input "input (B^T x B)";
  explore Engine.Weight "weight (G f G^T)";
  explore Engine.Output "output (A^T Y A)";
  print_endline
    "The paper's design points: input = row-by-row fast 32x2 (feeds the Cube\n\
     at 1/4 of its consumption rate, amortised by 4x output-channel reuse),\n\
     weight = tap-by-tap 64-wide (matches the external DRAM bandwidth),\n\
     output = row-by-row fast 16x1 (matches the L0C read bandwidth)."
