(* Quickstart: integer-only tap-wise quantized Winograd F4 convolution.

   Builds a random 3x3 conv layer, calibrates the tap-wise quantizer from a
   sample activation, runs the int8 pipeline, and compares it against the
   FP32 direct convolution and a single-scale Winograd baseline.

   Run with: dune exec examples/quickstart.exe *)

open Twq

let () =
  let rng = Rng.create 7 in
  (* A "trained-looking" layer: Gaussian weights, unit-variance input. *)
  let x = Tensor.rand_gaussian rng [| 1; 16; 32; 32 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 16; 16; 3; 3 |] ~mu:0.0 ~sigma:0.25 in

  print_endline "== Tap-wise quantized Winograd F(4x4, 3x3) quickstart ==\n";

  (* 1. FP32 references: direct conv and FP32 Winograd agree. *)
  let y_direct = Ops.conv2d ~stride:1 ~pad:1 ~x ~w () in
  let y_wino = Winograd.Conv.conv2d ~variant:Winograd.Transform.F4 ~pad:1 ~x ~w () in
  Printf.printf "FP32 winograd vs direct, max |diff| = %.2e\n"
    (Tensor.max_abs (Tensor.sub y_direct y_wino));

  (* 2. Calibrate the integer tap-wise layer (hardware path: pow2 scales). *)
  let config = Quant.Tapwise.default_config Winograd.Transform.F4 in
  let layer = Quant.Tapwise.calibrate ~config ~w ~sample_inputs:[ x ] ~pad:1 () in
  let noise = Quant.Tapwise.quantization_noise layer x ~w in
  Printf.printf "int8 tap-wise Winograd rms noise vs FP32: %.4f\n" noise;

  (* 3. The same layer with one scale per transformation (the baseline the
     paper shows breaking down for F4). *)
  let single =
    Quant.Tapwise.calibrate
      ~config:{ config with Quant.Tapwise.granularity = Quant.Tapwise.Single_scale }
      ~w ~sample_inputs:[ x ] ~pad:1 ()
  in
  Printf.printf "int8 single-scale Winograd rms noise: %.4f  (tap-wise wins)\n"
    (Quant.Tapwise.quantization_noise single x ~w);

  (* 4. The learned per-tap shifts the hardware applies. *)
  print_endline "\nper-tap right-shifts of the integer input transform (s_b / s_x):";
  let t = Winograd.Transform.t Winograd.Transform.F4 in
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      Printf.printf "%3d" (Quant.Tapwise.input_shift layer i j)
    done;
    print_newline ()
  done;

  (* 5. End-to-end int8: quantize input, integer forward, dequantize. *)
  let x_int = Quant.Quantizer.quantize_tensor ~bits:8 ~scale:layer.Quant.Tapwise.s_x x in
  let y_int = Quant.Tapwise.forward_int layer x_int in
  Printf.printf
    "\nint8 output tensor: %s, values in [%d, %d]\n"
    (Shape.to_string y_int.Itensor.shape)
    (-Itensor.max_abs y_int) (Itensor.max_abs y_int);
  print_endline "\nDone. See `dune exec bin/main.exe -- list` for the paper experiments."
