(* The full compiler flow on a residual network.

   Builds an executable ResNet-20 graph (residual connections, stride-2
   downsampling, 1x1 projections), folds its batch norms, lets the
   simulator pick the best kernel per convolution (im2col / Winograd F2 /
   F4 — the per-layer selection the paper describes in Sec. V-B5), and
   quantizes the whole graph to integers, residual adds included.

   Run with: dune exec examples/graph_compiler.exe *)

open Twq
module Graph = Nn.Graph
module GC = Sim.Graph_compiler

let () =
  let rng = Rng.create 2026 in
  print_endline "== Graph compiler: ResNet-20 ==\n";
  let g = Nn.Gmodels.resnet20 ~rng ~classes:10 () in
  Printf.printf "built graph: %d convolutions, %d batch norms\n"
    (Graph.conv_count g) (Nn.Passes.bn_count g);

  let folded = Nn.Passes.fold_bn g in
  let x = Tensor.rand_gaussian rng [| 1; 3; 32; 32 |] ~mu:0.0 ~sigma:1.0 in
  Printf.printf "after BN folding: %d batch norms, max |diff| = %.2e\n\n"
    (Nn.Passes.bn_count folded)
    (Tensor.max_abs (Tensor.sub (Graph.run g x) (Graph.run folded x)));

  print_endline "per-layer kernel selection (CIFAR input 32x32, batch 1):";
  let choices = GC.select Sim.Arch.default folded ~input:[| 1; 3; 32; 32 |] () in
  let tbl =
    Table.create [ "layer"; "shape"; "k"; "s"; "kernel"; "cycles"; "vs im2col" ]
  in
  List.iter
    (fun c ->
      let spec = c.GC.spec in
      Table.add_row tbl
        [
          spec.Nn.Zoo.name;
          Printf.sprintf "%dx%d %d->%d" spec.Nn.Zoo.out_h spec.Nn.Zoo.out_w
            spec.Nn.Zoo.cin spec.Nn.Zoo.cout;
          string_of_int spec.Nn.Zoo.k;
          string_of_int spec.Nn.Zoo.stride;
          Sim.Operator.kind_name c.GC.kind;
          Printf.sprintf "%.0f" c.GC.cycles;
          Table.cell_speedup (c.GC.im2col_cycles /. c.GC.cycles);
        ])
    choices;
  Table.print tbl;
  Printf.printf "\nnetwork conv speed-up vs all-im2col: %.2fx\n\n"
    (GC.speedup_vs_im2col choices);

  print_endline "quantizing the graph to integers (tap-wise F4, pow2 scales):";
  let iq = Nn.Int_graph.quantize folded ~calibration:x () in
  Printf.printf "  %d Winograd layers, %d spatial int8 layers\n"
    (Nn.Int_graph.winograd_layer_count iq)
    (Nn.Int_graph.spatial_layer_count iq);
  Printf.printf "  integer-vs-float logits relative RMS: %.4f\n"
    (Nn.Int_graph.noise_vs_float iq folded x);
  print_endline "\nDone."
