(* Benchmark harness: regenerates every table and figure of the paper and
   then times the computational kernel behind each one with Bechamel.

   - The regeneration pass prints the actual tables (simulator-backed
     experiments at full size; the QAT-training experiments in `fast` mode
     so the whole run stays within minutes — use `bin/main.exe run tab2
     tab3` for the paper-scale training sweep).
   - The Bechamel pass registers one Test.make per table/figure whose
     workload is that experiment's core kernel at a reduced size, plus
     micro-benchmarks of the central library kernels. *)

open Bechamel
open Toolkit
module T = Twq.Winograd.Transform
module Tensor = Twq.Tensor
module Ops = Twq.Ops
module Zoo = Twq.Nn.Zoo
module Op = Twq.Sim.Operator
module Arch = Twq.Sim.Arch
module NR = Twq.Sim.Network_runner
module Registry = Twq_experiments.Registry

(* ------------------------------------------------------- table printing *)

let training_experiments = [ "tab2"; "tab3" ]

let print_all_tables () =
  List.iter
    (fun e ->
      let fast = List.mem e.Registry.name training_experiments in
      Printf.printf "==== %s — %s%s ====\n%!" e.Registry.name
        e.Registry.description
        (if fast then " [fast mode]" else "");
      print_string (e.Registry.run ~fast ());
      print_newline ())
    Registry.all

(* ----------------------------------------------------- bechamel kernels *)

let rng = Twq.Rng.create 2024
let x_small = Tensor.rand_gaussian rng [| 1; 8; 16; 16 |] ~mu:0.0 ~sigma:1.0
let w_small = Tensor.rand_gaussian rng [| 8; 8; 3; 3 |] ~mu:0.0 ~sigma:0.3

let tapwise_layer =
  Twq.Quant.Tapwise.calibrate
    ~config:(Twq.Quant.Tapwise.default_config T.F4)
    ~w:w_small ~sample_inputs:[ x_small ] ~pad:1 ()

let x_int =
  Twq.Quant.Quantizer.quantize_tensor ~bits:8
    ~scale:tapwise_layer.Twq.Quant.Tapwise.s_x x_small

let synthetic_layer =
  { Zoo.name = "bench"; cin = 128; cout = 128; out_h = 32; out_w = 32; k = 3;
    stride = 1; repeat = 1 }

let weight_ensemble =
  Twq_experiments.Exp_common.resnet_like_weight_ensemble ~seed:77 ~layers:2

let qat_step =
  (* One training step of the tap-wise WA model — the Table II/III kernel. *)
  let data = Twq_experiments.Exp_common.dataset ~fast:true in
  let model =
    Twq.Nn.Qat_model.create
      { (Twq.Nn.Qat_model.default_config
           (Twq.Nn.Qat_model.Wa
              { Twq.Nn.Qat_model.variant = T.F4; wino_bits = 8; tapwise = true;
                pow2 = true; learned = true }))
        with Twq.Nn.Qat_model.classes = data.Twq.Dataset.Synth_images.classes }
      ~seed:5
  in
  let batch, labels =
    Twq.Dataset.Synth_images.batch data data.Twq.Dataset.Synth_images.train
      (Array.init 8 Fun.id)
  in
  fun () ->
    let logits = Twq.Nn.Qat_model.forward model batch in
    let loss = Twq.Autodiff.Fn.softmax_cross_entropy ~logits ~labels in
    Twq.Autodiff.Var.backward loss;
    Twq.Autodiff.Optim.zero_grads (Twq.Nn.Qat_model.params model)

let tests =
  [
    Test.make ~name:"fig1-weight-transform-sweep"
      (Staged.stage (fun () ->
           List.iter
             (fun w ->
               let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
               for co = 0 to cout - 1 do
                 for ci = 0 to cin - 1 do
                   let f =
                     Tensor.init [| 3; 3 |] (fun i ->
                         Tensor.get4 w co ci i.(0) i.(1))
                   in
                   ignore (T.weight_tile T.F4 f)
                 done
               done)
             weight_ensemble));
    Test.make ~name:"tab1-dfg-cse"
      (Staged.stage (fun () ->
           ignore (Twq.Hw.Dfg.apply_cse (Twq.Hw.Dfg.of_matrix (T.bt_rat T.F4)))));
    Test.make ~name:"tab2-qat-train-step" (Staged.stage qat_step);
    Test.make ~name:"tab3-qat-eval-forward"
      (Staged.stage (fun () -> ignore (Twq.Quant.Tapwise.forward tapwise_layer x_small)));
    Test.make ~name:"fig4-tap-error-analysis"
      (Staged.stage (fun () ->
           ignore
             (Twq.Quant.Error_analysis.winograd_error ~bits:8 ~variant:T.F4
                ~strategy:Twq.Quant.Error_analysis.W_tap
                (List.hd weight_ensemble))));
    Test.make ~name:"tab4-operator-sim"
      (Staged.stage (fun () ->
           ignore (Op.run Arch.default Op.Im2col synthetic_layer ~batch:1);
           ignore (Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1)));
    Test.make ~name:"tab5-area-power-model"
      (Staged.stage (fun () ->
           ignore (Twq.Hw.Area_power.engine_area_mm2 Twq.Hw.Area_power.input_engine);
           ignore (Twq.Hw.Area_power.cube_tops_per_watt ~winograd:true)));
    Test.make ~name:"fig5-breakdown-sim"
      (Staged.stage (fun () ->
           let r = Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1 in
           ignore r.Op.busy));
    Test.make ~name:"tab6-nvdla-model"
      (Staged.stage (fun () ->
           let cfg = Twq.Nvdla.default ~bandwidth_words_per_s:42.7e9 in
           ignore (Twq.Nvdla.best cfg synthetic_layer ~batch:8)));
    Test.make ~name:"tab7-network-sim-resnet34"
      (Staged.stage (fun () ->
           ignore (NR.run Arch.default (NR.P_winograd T.F4) (Zoo.resnet34 ()) ~batch:1)));
    Test.make ~name:"fig6-energy-accounting"
      (Staged.stage (fun () ->
           let r = Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1 in
           ignore r.Op.energy));
    Test.make ~name:"kernel-winograd-f4-conv-fp32"
      (Staged.stage (fun () ->
           ignore
             (Twq.Winograd.Conv.conv2d ~variant:T.F4 ~pad:1 ~x:x_small ~w:w_small ())));
    Test.make ~name:"kernel-tapwise-int8-forward"
      (Staged.stage (fun () ->
           ignore (Twq.Quant.Tapwise.forward_int tapwise_layer x_int)));
    Test.make ~name:"kernel-im2col-conv-fp32"
      (Staged.stage (fun () ->
           ignore (Ops.conv2d_im2col ~stride:1 ~pad:1 ~x:x_small ~w:w_small ())));
    Test.make ~name:"ext-graph-quantize-resnet20"
      (Staged.stage
         (let g =
            Twq.Nn.Passes.fold_bn
              (Twq.Nn.Gmodels.resnet20 ~rng:(Twq.Rng.create 12) ~width_div:4 ())
          in
          let cal = Tensor.rand_gaussian rng [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
          fun () -> ignore (Twq.Nn.Int_graph.quantize g ~calibration:cal ())));
    Test.make ~name:"ext-trace-export"
      (Staged.stage (fun () ->
           let r = Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1 in
           ignore (Twq.Sim.Trace.to_chrome_json r)));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"twq" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Printf.printf "%-40s %18s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 60 '-');
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %18.0f\n" name est
          | _ -> Printf.printf "%-40s %18s\n" name "n/a")
        (List.sort compare rows))
    merged

let () =
  print_all_tables ();
  print_endline "==== Bechamel micro-benchmarks (one per table/figure) ====";
  benchmark ()
