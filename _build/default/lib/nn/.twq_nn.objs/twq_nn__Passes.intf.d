lib/nn/passes.mli: Graph
