lib/nn/zoo.ml: List Printf Stdlib
