lib/nn/qat_model.mli: Graph Twq_autodiff Twq_tensor Twq_winograd
