lib/nn/trainer.mli: Qat_model Twq_dataset Twq_tensor
