lib/nn/trainer.ml: Array Float Fn List Optim Qat_model Scale_param Stdlib Twq_autodiff Twq_dataset Twq_tensor Twq_util Var
