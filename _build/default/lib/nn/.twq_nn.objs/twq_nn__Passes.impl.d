lib/nn/passes.ml: Array Graph Hashtbl List Option Twq_tensor
