lib/nn/gmodels.ml: Graph List Stdlib Twq_tensor Twq_util
