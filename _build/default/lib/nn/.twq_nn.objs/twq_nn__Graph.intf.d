lib/nn/graph.mli: Twq_tensor
