lib/nn/int_graph.mli: Graph Twq_tensor Twq_winograd
