lib/nn/int_graph.ml: Array Buffer Float Fun Graph List Option Printf Scanf Stdlib Twq_quant Twq_tensor Twq_winograd
