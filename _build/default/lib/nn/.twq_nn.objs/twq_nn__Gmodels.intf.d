lib/nn/gmodels.mli: Graph Twq_util
