lib/nn/deploy.mli: Qat_model Twq_dataset Twq_quant Twq_tensor Twq_winograd
