lib/nn/qat_model.ml: Array Float Fn Graph List Option Quant_ops Scale_param Twq_autodiff Twq_quant Twq_tensor Twq_util Twq_winograd Var Wa_conv
