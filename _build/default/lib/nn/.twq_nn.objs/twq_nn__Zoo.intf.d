lib/nn/zoo.mli:
