lib/nn/deploy.ml: Array Buffer Float Fun List Option Printf Qat_model Scanf Stdlib Twq_dataset Twq_quant Twq_tensor Twq_winograd
