lib/nn/graph.ml: Array Float List Twq_tensor
