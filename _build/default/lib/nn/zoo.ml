type conv_spec = {
  name : string;
  cin : int;
  cout : int;
  out_h : int;
  out_w : int;
  k : int;
  stride : int;
  repeat : int;
}

type network = { net_name : string; resolution : int; layers : conv_spec list }

let winograd_eligible l = l.k = 3 && l.stride = 1

let macs ~batch l =
  float_of_int batch *. float_of_int l.repeat *. float_of_int l.out_h
  *. float_of_int l.out_w *. float_of_int l.cin *. float_of_int l.cout
  *. float_of_int (l.k * l.k)

let total_macs ~batch n =
  List.fold_left (fun a l -> a +. macs ~batch l) 0.0 n.layers

let winograd_macs_fraction ~batch n =
  let wino =
    List.fold_left
      (fun a l -> if winograd_eligible l then a +. macs ~batch l else a)
      0.0 n.layers
  in
  wino /. total_macs ~batch n

let conv ?(repeat = 1) ?(stride = 1) name cin cout k hw =
  { name; cin; cout; out_h = hw; out_w = hw; k; stride; repeat }

let conv_hw ?(repeat = 1) ?(stride = 1) name cin cout k h w =
  { name; cin; cout; out_h = h; out_w = w; k; stride; repeat }

(* ----------------------------------------------------------- CIFAR nets *)

let resnet20 ?(resolution = 32) () =
  let r = resolution in
  let stage name cin c hw first_stride n =
    conv ~stride:first_stride (name ^ ".0a") cin c 3 hw
    :: conv (name ^ ".0b") c c 3 hw
    :: List.concat
         (List.init (n - 1) (fun i ->
              [
                conv (Printf.sprintf "%s.%da" name (i + 1)) c c 3 hw;
                conv (Printf.sprintf "%s.%db" name (i + 1)) c c 3 hw;
              ]))
  in
  {
    net_name = "ResNet-20";
    resolution;
    layers =
      (conv "stem" 3 16 3 r :: stage "s1" 16 16 r 1 3)
      @ stage "s2" 16 32 (r / 2) 2 3
      @ stage "s3" 32 64 (r / 4) 2 3;
  }

let vgg_nagadomi ?(resolution = 32) () =
  let r = resolution in
  {
    net_name = "VGG-nagadomi";
    resolution;
    layers =
      [
        conv "c1a" 3 64 3 r;
        conv "c1b" 64 64 3 r;
        conv "c2a" 64 128 3 (r / 2);
        conv "c2b" 128 128 3 (r / 2);
        conv "c3a" 128 256 3 (r / 4);
        conv "c3b" 256 256 3 (r / 4);
        conv "c3c" 256 256 3 (r / 4);
        conv "c3d" 256 256 3 (r / 4);
      ];
  }

(* -------------------------------------------------------- ImageNet nets *)

let resnet_basic_stage name cin c hw blocks ~downsample =
  let first =
    if downsample then
      [
        conv ~stride:2 (name ^ ".0a") cin c 3 hw;
        conv (name ^ ".0b") c c 3 hw;
        conv ~stride:2 (name ^ ".0ds") cin c 1 hw;
      ]
    else
      [ conv (name ^ ".0a") cin c 3 hw; conv (name ^ ".0b") c c 3 hw ]
  in
  first
  @ List.concat
      (List.init (blocks - 1) (fun i ->
           [
             conv (Printf.sprintf "%s.%da" name (i + 1)) c c 3 hw;
             conv (Printf.sprintf "%s.%db" name (i + 1)) c c 3 hw;
           ]))

let resnet34 ?(resolution = 224) () =
  let r = resolution in
  let r2 = r / 2 and r4 = r / 4 and r8 = r / 8 and r16 = r / 16 and r32 = r / 32 in
  {
    net_name = "ResNet-34";
    resolution;
    layers =
      (conv ~stride:2 "conv1" 3 64 7 r2
      :: resnet_basic_stage "l1" 64 64 r4 3 ~downsample:false)
      @ resnet_basic_stage "l2" 64 128 r8 4 ~downsample:true
      @ resnet_basic_stage "l3" 128 256 r16 6 ~downsample:true
      @ resnet_basic_stage "l4" 256 512 r32 3 ~downsample:true;
  }

let resnet_bottleneck_stage name cin c hw blocks ~first_stride =
  let out = 4 * c in
  let block i in_ch stride =
    [
      conv ~stride (Printf.sprintf "%s.%d.1" name i) in_ch c 1 hw;
      conv (Printf.sprintf "%s.%d.2" name i) c c 3 hw;
      conv (Printf.sprintf "%s.%d.3" name i) c out 1 hw;
    ]
  in
  let first =
    block 0 cin first_stride
    @ [ conv ~stride:first_stride (name ^ ".0.ds") cin out 1 hw ]
  in
  first @ List.concat (List.init (blocks - 1) (fun i -> block (i + 1) out 1))

let resnet50 ?(resolution = 224) () =
  let r = resolution in
  let r2 = r / 2 and r4 = r / 4 and r8 = r / 8 and r16 = r / 16 and r32 = r / 32 in
  {
    net_name = "ResNet-50";
    resolution;
    layers =
      (conv ~stride:2 "conv1" 3 64 7 r2
      :: resnet_bottleneck_stage "l1" 64 64 r4 3 ~first_stride:1)
      @ resnet_bottleneck_stage "l2" 256 128 r8 4 ~first_stride:2
      @ resnet_bottleneck_stage "l3" 512 256 r16 6 ~first_stride:2
      @ resnet_bottleneck_stage "l4" 1024 512 r32 3 ~first_stride:2;
  }

let ssd_vgg16 ?(resolution = 300) () =
  let r = resolution in
  let r2 = r / 2 and r4 = r / 4 in
  let r8 = (r4 + 1) / 2 in         (* 38 for SSD-300 (ceil pooling) *)
  let r16 = r8 / 2 in              (* 19 *)
  let r32 = (r16 + 1) / 2 in       (* 10 *)
  let r64 = r32 / 2 in             (* 5 *)
  let heads hw cin boxes =
    [
      conv_hw "head.cls" cin (boxes * 21) 3 hw hw;
      conv_hw "head.box" cin (boxes * 4) 3 hw hw;
    ]
  in
  {
    net_name = "SSD-VGG-16";
    resolution;
    layers =
      [
        conv "c1a" 3 64 3 r;
        conv "c1b" 64 64 3 r;
        conv "c2a" 64 128 3 r2;
        conv "c2b" 128 128 3 r2;
        conv "c3a" 128 256 3 r4;
        conv ~repeat:2 "c3bc" 256 256 3 r4;
        conv "c4a" 256 512 3 r8;
        conv ~repeat:2 "c4bc" 512 512 3 r8;
        conv ~repeat:3 "c5" 512 512 3 r16;
        conv "fc6" 512 1024 3 r16;
        conv "fc7" 1024 1024 1 r16;
        conv "c8.1" 1024 256 1 r16;
        conv ~stride:2 "c8.2" 256 512 3 r32;
        conv "c9.1" 512 128 1 r32;
        conv ~stride:2 "c9.2" 128 256 3 r64;
        conv "c10.1" 256 128 1 r64;
        conv "c10.2" 128 256 3 (Stdlib.max 1 (r64 - 2));
        conv "c11.1" 256 128 1 (Stdlib.max 1 (r64 - 2));
        conv "c11.2" 128 256 3 (Stdlib.max 1 (r64 - 4));
      ]
      @ heads r8 512 4 @ heads r16 1024 6 @ heads r32 512 6
      @ heads r64 256 6
      @ heads (Stdlib.max 1 (r64 - 2)) 256 4
      @ heads (Stdlib.max 1 (r64 - 4)) 256 4;
  }

let yolov3 ?(resolution = 416) () =
  let r = resolution in
  let r2 = r / 2 and r4 = r / 4 and r8 = r / 8 and r16 = r / 16 and r32 = r / 32 in
  let residual name c hw n =
    List.concat
      (List.init n (fun i ->
           [
             conv (Printf.sprintf "%s.%d.1x1" name i) c (c / 2) 1 hw;
             conv (Printf.sprintf "%s.%d.3x3" name i) (c / 2) c 3 hw;
           ]))
  in
  let head name cin mid hw =
    [
      conv (name ^ ".1") cin mid 1 hw;
      conv (name ^ ".2") mid (2 * mid) 3 hw;
      conv (name ^ ".3") (2 * mid) mid 1 hw;
      conv (name ^ ".4") mid (2 * mid) 3 hw;
      conv (name ^ ".5") (2 * mid) mid 1 hw;
      conv (name ^ ".6") mid (2 * mid) 3 hw;
      conv (name ^ ".out") (2 * mid) 255 1 hw;
    ]
  in
  {
    net_name = "YOLOv3";
    resolution;
    layers =
      [ conv "stem" 3 32 3 r; conv ~stride:2 "d1" 32 64 3 r2 ]
      @ residual "r1" 64 r2 1
      @ [ conv ~stride:2 "d2" 64 128 3 r4 ]
      @ residual "r2" 128 r4 2
      @ [ conv ~stride:2 "d3" 128 256 3 r8 ]
      @ residual "r3" 256 r8 8
      @ [ conv ~stride:2 "d4" 256 512 3 r16 ]
      @ residual "r4" 512 r16 8
      @ [ conv ~stride:2 "d5" 512 1024 3 r32 ]
      @ residual "r5" 1024 r32 4
      @ head "h32" 1024 512 r32
      @ [ conv "up16.lat" 512 256 1 r32 ]
      @ head "h16" (256 + 512) 256 r16
      @ [ conv "up8.lat" 256 128 1 r16 ]
      @ head "h8" (128 + 256) 128 r8;
  }

let unet ?(resolution = 572) () =
  let r = resolution in
  (* Classic valid-padded U-Net: every 3×3 conv shrinks the map by 2. *)
  let enc name cin c hw = [ conv (name ^ "a") cin c 3 (hw - 2); conv (name ^ "b") c c 3 (hw - 4) ] in
  let e1 = r in
  let e2 = (r - 4) / 2 in
  let e3 = (e2 - 4) / 2 in
  let e4 = (e3 - 4) / 2 in
  let e5 = (e4 - 4) / 2 in
  let d4 = (e5 - 4) * 2 in
  let d3 = (d4 - 4) * 2 in
  let d2 = (d3 - 4) * 2 in
  let d1 = (d2 - 4) * 2 in
  {
    net_name = "UNet";
    resolution;
    layers =
      enc "e1" 3 64 e1 @ enc "e2" 64 128 e2 @ enc "e3" 128 256 e3
      @ enc "e4" 256 512 e4 @ enc "e5" 512 1024 e5
      @ [ conv "u4.up" 1024 512 1 d4 ]
      @ enc "d4" 1024 512 d4
      @ [ conv "u3.up" 512 256 1 d3 ]
      @ enc "d3" 512 256 d3
      @ [ conv "u2.up" 256 128 1 d2 ]
      @ enc "d2" 256 128 d2
      @ [ conv "u1.up" 128 64 1 d1 ]
      @ enc "d1" 128 64 d1
      @ [ conv "out" 64 2 1 (d1 - 4) ];
  }

let retinanet_r50 ?(resolution = 800) () =
  let r = resolution in
  let p3 = r / 8 and p4 = r / 16 and p5 = r / 32 in
  let p6 = p5 / 2 in
  let p7 = p6 / 2 in
  let backbone = (resnet50 ~resolution ()).layers in
  let fpn =
    [
      conv "fpn.lat5" 2048 256 1 p5;
      conv "fpn.lat4" 1024 256 1 p4;
      conv "fpn.lat3" 512 256 1 p3;
      conv "fpn.smooth5" 256 256 3 p5;
      conv "fpn.smooth4" 256 256 3 p4;
      conv "fpn.smooth3" 256 256 3 p3;
      conv ~stride:2 "fpn.p6" 2048 256 3 p6;
      conv ~stride:2 "fpn.p7" 256 256 3 p7;
    ]
  in
  let head hw =
    [
      conv ~repeat:8 (Printf.sprintf "head%d.tower" hw) 256 256 3 hw;
      conv (Printf.sprintf "head%d.cls" hw) 256 (9 * 80) 3 hw;
      conv (Printf.sprintf "head%d.box" hw) 256 (9 * 4) 3 hw;
    ]
  in
  {
    net_name = "RetinaNet-R-50";
    resolution;
    layers = backbone @ fpn @ head p3 @ head p4 @ head p5 @ head p6 @ head p7;
  }

let all =
  [
    ("resnet20", resnet20);
    ("vgg-nagadomi", vgg_nagadomi);
    ("resnet34", resnet34);
    ("resnet50", resnet50);
    ("ssd-vgg16", ssd_vgg16);
    ("yolov3", yolov3);
    ("unet", unet);
    ("retinanet-r50", retinanet_r50);
  ]
