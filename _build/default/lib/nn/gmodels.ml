module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng

let he_conv rng cin cout k =
  let sigma = sqrt (2.0 /. float_of_int (cin * k * k)) in
  Tensor.rand_gaussian rng [| cout; cin; k; k |] ~mu:0.0 ~sigma

(* Inference-mode BN with near-identity running statistics and mildly
   varied gains — enough structure to make folding and quantization
   non-trivial. *)
let bn_node rng c =
  Graph.Bn
    {
      gamma = Tensor.rand_uniform rng [| c |] ~lo:0.8 ~hi:1.2;
      beta = Tensor.rand_uniform rng [| c |] ~lo:(-0.1) ~hi:0.1;
      mean = Tensor.rand_uniform rng [| c |] ~lo:(-0.05) ~hi:0.05;
      var = Tensor.rand_uniform rng [| c |] ~lo:0.9 ~hi:1.1;
    }

let conv_bn_relu g rng x cin cout ~stride =
  let c = Graph.add g (Graph.Conv { w = he_conv rng cin cout 3; bias = None; stride; pad = 1 }) [ x ] in
  let b = Graph.add g (bn_node rng cout) [ c ] in
  Graph.add g Graph.Relu [ b ]

let resnet20 ~rng ?(classes = 10) ?(in_channels = 3) ?(width_div = 1) () =
  let g = Graph.create () in
  let x = Graph.input g in
  let w0 = Stdlib.max 1 (16 / width_div) in
  let stem = conv_bn_relu g rng x in_channels w0 ~stride:1 in
  let basic_block x cin cout ~stride =
    let c1 =
      Graph.add g
        (Graph.Conv { w = he_conv rng cin cout 3; bias = None; stride; pad = 1 })
        [ x ]
    in
    let b1 = Graph.add g (bn_node rng cout) [ c1 ] in
    let r1 = Graph.add g Graph.Relu [ b1 ] in
    let c2 =
      Graph.add g
        (Graph.Conv { w = he_conv rng cout cout 3; bias = None; stride = 1; pad = 1 })
        [ r1 ]
    in
    let b2 = Graph.add g (bn_node rng cout) [ c2 ] in
    let skip =
      if stride = 1 && cin = cout then x
      else begin
        (* 1×1 projection shortcut. *)
        let p =
          Graph.add g
            (Graph.Conv { w = he_conv rng cin cout 1; bias = None; stride; pad = 0 })
            [ x ]
        in
        Graph.add g (bn_node rng cout) [ p ]
      end
    in
    let s = Graph.add g Graph.Add [ b2; skip ] in
    Graph.add g Graph.Relu [ s ]
  in
  let stage x cin cout ~first_stride n =
    let x = ref (basic_block x cin cout ~stride:first_stride) in
    for _ = 2 to n do
      x := basic_block !x cout cout ~stride:1
    done;
    !x
  in
  let s1 = stage stem w0 w0 ~first_stride:1 3 in
  let s2 = stage s1 w0 (2 * w0) ~first_stride:2 3 in
  let s3 = stage s2 (2 * w0) (4 * w0) ~first_stride:2 3 in
  let gap = Graph.add g Graph.Global_avg_pool [ s3 ] in
  let fc =
    Graph.add g
      (Graph.Linear
         {
           w =
             Tensor.rand_gaussian rng [| classes; 4 * w0 |] ~mu:0.0
               ~sigma:(sqrt (2.0 /. float_of_int (4 * w0)));
           bias = Some (Tensor.zeros [| classes |]);
         })
      [ gap ]
  in
  Graph.set_output g fc;
  g

let vgg_nagadomi ~rng ?(classes = 10) ?(in_channels = 3) ?(width_div = 1) () =
  let g = Graph.create () in
  let x = Graph.input g in
  let ( / ) a b = Stdlib.max 1 (a / b) in
  let stage x cin couts =
    let x = ref x and cin = ref cin in
    List.iter
      (fun c ->
        x := conv_bn_relu g rng !x !cin c ~stride:1;
        cin := c)
      couts;
    (Graph.add g (Graph.Max_pool { k = 2; stride = 2 }) [ !x ], !cin)
  in
  let p1, c1 = stage x in_channels [ 64 / width_div; 64 / width_div ] in
  let p2, c2 = stage p1 c1 [ 128 / width_div; 128 / width_div ] in
  let p3, c3 =
    stage p2 c2
      [ 256 / width_div; 256 / width_div; 256 / width_div; 256 / width_div ]
  in
  ignore c3;
  let gap = Graph.add g Graph.Global_avg_pool [ p3 ] in
  let fc =
    Graph.add g
      (Graph.Linear
         {
           w =
             Tensor.rand_gaussian rng [| classes; 256 / width_div |] ~mu:0.0
               ~sigma:(sqrt (2.0 /. float_of_int (256 / width_div)));
           bias = Some (Tensor.zeros [| classes |]);
         })
      [ gap ]
  in
  Graph.set_output g fc;
  g

let unet_mini ~rng ?(classes = 2) ?(in_channels = 3) ?(width_div = 4) () =
  (* A same-padded miniature U-Net: two encoder levels, bottleneck, two
     decoder levels with upsample + channel-concat skips, 1x1 head mapped
     through GAP for a classification-style output (keeps the quantizer's
     head convention). *)
  let g = Graph.create () in
  let ( / ) a b = Stdlib.max 1 (a / b) in
  let c0 = 16 / width_div and c1 = 32 / width_div and c2 = 64 / width_div in
  let x = Graph.input g in
  let e1 = conv_bn_relu g rng x in_channels c0 ~stride:1 in
  let e1b = conv_bn_relu g rng e1 c0 c0 ~stride:1 in
  let p1 = Graph.add g (Graph.Max_pool { k = 2; stride = 2 }) [ e1b ] in
  let e2 = conv_bn_relu g rng p1 c0 c1 ~stride:1 in
  let e2b = conv_bn_relu g rng e2 c1 c1 ~stride:1 in
  let p2 = Graph.add g (Graph.Max_pool { k = 2; stride = 2 }) [ e2b ] in
  let b1 = conv_bn_relu g rng p2 c1 c2 ~stride:1 in
  let b2 = conv_bn_relu g rng b1 c2 c2 ~stride:1 in
  let u2 = Graph.add g (Graph.Upsample 2) [ b2 ] in
  let cat2 = Graph.add g Graph.Concat [ u2; e2b ] in
  let d2 = conv_bn_relu g rng cat2 (c2 + c1) c1 ~stride:1 in
  let d2b = conv_bn_relu g rng d2 c1 c1 ~stride:1 in
  let u1 = Graph.add g (Graph.Upsample 2) [ d2b ] in
  let cat1 = Graph.add g Graph.Concat [ u1; e1b ] in
  let d1 = conv_bn_relu g rng cat1 (c1 + c0) c0 ~stride:1 in
  let d1b = conv_bn_relu g rng d1 c0 c0 ~stride:1 in
  let gap = Graph.add g Graph.Global_avg_pool [ d1b ] in
  let fc =
    Graph.add g
      (Graph.Linear
         {
           w =
             Tensor.rand_gaussian rng [| classes; c0 |] ~mu:0.0
               ~sigma:(sqrt (2.0 /. float_of_int c0));
           bias = Some (Tensor.zeros [| classes |]);
         })
      [ gap ]
  in
  Graph.set_output g fc;
  g

let conv_bn_leaky g rng x cin cout ~stride =
  let c =
    Graph.add g
      (Graph.Conv { w = he_conv rng cin cout 3; bias = None; stride; pad = 1 })
      [ x ]
  in
  let b = Graph.add g (bn_node rng cout) [ c ] in
  (* Slope 1/8: the closest pow2 to Darknet's 0.1. *)
  Graph.add g (Graph.Leaky_relu 3) [ b ]

let yolo_mini ~rng ?(classes = 10) ?(in_channels = 3) ?(width_div = 4) () =
  (* Darknet-53-style miniature: leaky-ReLU conv stacks, stride-2
     downsampling convs, 1x1/3x3 residual bottlenecks. *)
  let g = Graph.create () in
  let ( / ) a b = Stdlib.max 1 (a / b) in
  let c0 = 32 / width_div in
  let x = Graph.input g in
  let stem = conv_bn_leaky g rng x in_channels c0 ~stride:1 in
  let residual x c =
    (* 1x1 squeeze, 3x3 expand, add. *)
    let s =
      Graph.add g
        (Graph.Conv { w = he_conv rng c (Stdlib.max 1 (c / 2)) 1; bias = None;
                      stride = 1; pad = 0 })
        [ x ]
    in
    let sb = Graph.add g (bn_node rng (Stdlib.max 1 (c / 2))) [ s ] in
    let sl = Graph.add g (Graph.Leaky_relu 3) [ sb ] in
    let e = conv_bn_leaky g rng sl (Stdlib.max 1 (c / 2)) c ~stride:1 in
    Graph.add g Graph.Add [ e; x ]
  in
  let down x cin cout = conv_bn_leaky g rng x cin cout ~stride:2 in
  let b1 = residual stem c0 in
  let d1 = down b1 c0 (2 * c0) in
  let b2 = residual d1 (2 * c0) in
  let b2b = residual b2 (2 * c0) in
  let d2 = down b2b (2 * c0) (4 * c0) in
  let b3 = residual d2 (4 * c0) in
  let gap = Graph.add g Graph.Global_avg_pool [ b3 ] in
  let fc =
    Graph.add g
      (Graph.Linear
         {
           w =
             Tensor.rand_gaussian rng [| classes; 4 * c0 |] ~mu:0.0
               ~sigma:(sqrt (2.0 /. float_of_int (4 * c0)));
           bias = Some (Tensor.zeros [| classes |]);
         })
      [ gap ]
  in
  Graph.set_output g fc;
  g
