(** Convolution-layer inventories of the paper's evaluation networks.

    The accelerator simulator consumes these shape lists to produce the
    full-network results of Table VII / Fig. 6.  Only convolutions matter
    for the operator-level model (they dominate >95% of the compute in all
    seven networks); pooling/activation costs ride along in the Vector Unit
    which is never the bottleneck in the modelled dataflow. *)

type conv_spec = {
  name : string;
  cin : int;
  cout : int;
  out_h : int;   (** output feature-map height *)
  out_w : int;
  k : int;       (** square kernel size *)
  stride : int;
  repeat : int;  (** how many times this exact layer occurs *)
}

type network = {
  net_name : string;
  resolution : int;
  layers : conv_spec list;
}

val winograd_eligible : conv_spec -> bool
(** 3×3, stride 1 — the layers the paper maps to the Winograd operator. *)

val macs : batch:int -> conv_spec -> float
(** Multiply–accumulates of one layer instance ([repeat] included). *)

val total_macs : batch:int -> network -> float
val winograd_macs_fraction : batch:int -> network -> float

val resnet20 : ?resolution:int -> unit -> network
(** CIFAR-style ResNet-20 (the Table-III benchmark). *)

val vgg_nagadomi : ?resolution:int -> unit -> network

val resnet34 : ?resolution:int -> unit -> network
val resnet50 : ?resolution:int -> unit -> network
val ssd_vgg16 : ?resolution:int -> unit -> network
val yolov3 : ?resolution:int -> unit -> network
val unet : ?resolution:int -> unit -> network
val retinanet_r50 : ?resolution:int -> unit -> network

val all : (string * (?resolution:int -> unit -> network)) list
