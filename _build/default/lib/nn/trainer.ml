module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Rng = Twq_util.Rng
module Synth = Twq_dataset.Synth_images
open Twq_autodiff

type kd = { teacher : Qat_model.t; temperature : float; alpha : float }

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  momentum : float;
  weight_decay : float;
  scale_lr : float;
  kd : kd option;
  grad_clip : float;
  seed : int;
}

let default_options =
  {
    epochs = 8;
    batch_size = 16;
    lr = 0.05;
    momentum = 0.9;
    weight_decay = 1e-4;
    scale_lr = 0.002;
    kd = None;
    grad_clip = 5.0;
    seed = 7;
  }

type history = { train_loss : float array; valid_acc : float array }

let logits model x =
  let node = Qat_model.forward model x in
  Var.value node

let evaluate_topk ~k model split =
  Qat_model.set_frozen model true;
  let n = Array.length split in
  let batch = 32 in
  let correct = ref 0 in
  let i = ref 0 in
  while !i < n do
    let size = Stdlib.min batch (n - !i) in
    let channels = Tensor.dim split.(0).Synth.image 0 in
    let sz = Tensor.dim split.(0).Synth.image 1 in
    let xb = Tensor.zeros [| size; channels; sz; sz |] in
    for bi = 0 to size - 1 do
      let s = split.(!i + bi) in
      for c = 0 to channels - 1 do
        for a = 0 to sz - 1 do
          for b = 0 to sz - 1 do
            Tensor.set4 xb bi c a b (Tensor.get s.Synth.image [| c; a; b |])
          done
        done
      done
    done;
    let out = logits model xb in
    for bi = 0 to size - 1 do
      if List.mem split.(!i + bi).Synth.label (Ops.top_k_row out bi k) then
        incr correct
    done;
    i := !i + size
  done;
  Qat_model.set_frozen model false;
  float_of_int !correct /. float_of_int n

let evaluate model split =
  Qat_model.set_frozen model true;
  let n = Array.length split in
  let batch = 32 in
  let correct = ref 0 in
  let i = ref 0 in
  while !i < n do
    let size = Stdlib.min batch (n - !i) in
    let indices = Array.init size (fun k -> !i + k) in
    let x, labels =
      (* Re-stack directly from the split. *)
      let channels = Tensor.dim split.(0).Synth.image 0 in
      let sz = Tensor.dim split.(0).Synth.image 1 in
      let xb = Tensor.zeros [| size; channels; sz; sz |] in
      let lb = Array.make size 0 in
      Array.iteri
        (fun bi si ->
          let s = split.(si) in
          lb.(bi) <- s.Synth.label;
          for c = 0 to channels - 1 do
            for a = 0 to sz - 1 do
              for b = 0 to sz - 1 do
                Tensor.set4 xb bi c a b (Tensor.get s.Synth.image [| c; a; b |])
              done
            done
          done)
        indices;
      (xb, lb)
    in
    let out = logits model x in
    Array.iteri
      (fun bi label -> if Ops.argmax_row out bi = label then incr correct)
      labels;
    i := !i + size
  done;
  Qat_model.set_frozen model false;
  float_of_int !correct /. float_of_int n

let train model dataset options =
  let rng = Rng.create options.seed in
  let params = Qat_model.params model in
  let opt =
    Optim.sgd ~momentum:options.momentum ~weight_decay:options.weight_decay
      ~lr:options.lr params
  in
  let scale_params = Qat_model.scale_params model in
  let train_loss = Array.make options.epochs 0.0 in
  let valid_acc = Array.make options.epochs 0.0 in
  (match options.kd with
  | Some kd -> Qat_model.set_frozen kd.teacher true
  | None -> ());
  for epoch = 0 to options.epochs - 1 do
    (* Simple step decay, as a stand-in for the paper's LR scheduler. *)
    let lr = options.lr *. Float.pow 0.5 (float_of_int (epoch / 3)) in
    Optim.set_lr opt lr;
    let batches =
      Synth.shuffled_batches ~rng ~batch_size:options.batch_size dataset.Synth.train
    in
    let total = ref 0.0 and count = ref 0 in
    List.iter
      (fun (x, labels) ->
        let out = Qat_model.forward model x in
        let ce = Fn.softmax_cross_entropy ~logits:out ~labels in
        let loss =
          match options.kd with
          | None -> ce
          | Some kd ->
              let teacher_logits = logits kd.teacher x in
              let kl =
                Fn.kl_distillation ~student:out ~teacher:teacher_logits
                  ~temperature:kd.temperature
              in
              Fn.add (Fn.scale (1.0 -. kd.alpha) ce) (Fn.scale kd.alpha kl)
        in
        Var.backward loss;
        Optim.clip_grad_norm params ~max_norm:options.grad_clip;
        Optim.sgd_step opt;
        List.iter (Scale_param.adam_step ~lr:options.scale_lr) scale_params;
        total := !total +. (Var.value loss).Tensor.data.(0);
        incr count)
      batches;
    train_loss.(epoch) <- (if !count = 0 then 0.0 else !total /. float_of_int !count);
    valid_acc.(epoch) <- evaluate model dataset.Synth.valid
  done;
  { train_loss; valid_acc }
