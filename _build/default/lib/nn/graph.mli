(** Dataflow-graph IR for CNN inference.

    A small SSA-style graph: each node applies one operation to previously
    defined values.  This is the representation the compiler passes work
    on ({!Passes}): batch-norm folding, shape inference, per-layer operator
    selection (im2col vs Winograd — "the compiler can select the best
    computational kernel for each layer", Sec. V-B5) and int8 quantization
    including residual connections. *)

type id = private int

type op =
  | Input
  | Conv of {
      w : Twq_tensor.Tensor.t;          (** [cout; cin; k; k] *)
      bias : Twq_tensor.Tensor.t option;
      stride : int;
      pad : int;
    }
  | Bn of {
      gamma : Twq_tensor.Tensor.t;
      beta : Twq_tensor.Tensor.t;
      mean : Twq_tensor.Tensor.t;
      var : Twq_tensor.Tensor.t;
    }  (** inference-mode batch norm with stored statistics *)
  | Relu
  | Leaky_relu of int
      (** negative slope [2^-k] — hardware-shift friendly (YOLO-style) *)
  | Max_pool of { k : int; stride : int }
  | Avg_pool of { k : int; stride : int }
  | Global_avg_pool  (** NCHW → [n; c] *)
  | Linear of { w : Twq_tensor.Tensor.t; bias : Twq_tensor.Tensor.t option }
  | Add            (** two inputs (residual connection) *)
  | Concat         (** channel concatenation (skip connections à la U-Net) *)
  | Upsample of int

type node = { op : op; inputs : id list }

type t

val create : unit -> t
val input : t -> id
(** The (single) graph input; callable once. *)

val add : t -> op -> id list -> id
(** Append a node. @raise Invalid_argument on arity mismatch or undefined
    inputs. *)

val set_output : t -> id -> unit
val output : t -> id
val nodes : t -> (id * node) list
(** In topological (definition) order. *)

val node : t -> id -> node

val run : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Interpret the graph on an NCHW batch. *)

val run_all : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t array
(** Interpret and return every node's value (indexable by [id :> int];
    used by the quantization pass for calibration). *)

val infer_shapes : t -> input:Twq_tensor.Shape.t -> (id * Twq_tensor.Shape.t) list
(** Static shape of every node's result for a given input shape. *)

val conv_count : t -> int
