(** Executable graph models (randomly initialised, real shapes).

    These build runnable {!Graph.t} instances of the papers' CIFAR-scale
    evaluation networks — including the residual connections that the
    sequential {!Qat_model} cannot express — for exercising the compiler
    passes ({!Passes}) end-to-end.  An optional [width] divisor shrinks the
    channel counts so the tests stay fast. *)

val resnet20 :
  rng:Twq_util.Rng.t ->
  ?classes:int ->
  ?in_channels:int ->
  ?width_div:int ->
  unit ->
  Graph.t
(** CIFAR ResNet-20: stem + 3 stages × 3 basic blocks (residual adds,
    stride-2 downsampling with 1×1 projections) + GAP + FC. *)

val vgg_nagadomi :
  rng:Twq_util.Rng.t ->
  ?classes:int ->
  ?in_channels:int ->
  ?width_div:int ->
  unit ->
  Graph.t
(** The lightweight VGG used by the paper's Table III (conv/BN/ReLU
    stacks with max pooling). *)

val unet_mini :
  rng:Twq_util.Rng.t ->
  ?classes:int ->
  ?in_channels:int ->
  ?width_div:int ->
  unit ->
  Graph.t
(** Miniature same-padded U-Net with upsample + channel-concat skip
    connections — exercises the quantizer's [Concat] scale alignment. *)

val yolo_mini :
  rng:Twq_util.Rng.t ->
  ?classes:int ->
  ?in_channels:int ->
  ?width_div:int ->
  unit ->
  Graph.t
(** Darknet-53-style miniature (leaky-ReLU stacks, stride-2 downsampling,
    1×1/3×3 residual bottlenecks) — the YOLOv3 building block. *)
