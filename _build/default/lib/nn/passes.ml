module Tensor = Twq_tensor.Tensor

let bn_count g =
  List.fold_left
    (fun acc (_, n) -> match n.Graph.op with Graph.Bn _ -> acc + 1 | _ -> acc)
    0 (Graph.nodes g)

(* y = γ(conv(x) + b − μ)/σ + β  ⇒  w' = w·γ/σ, b' = (b − μ)·γ/σ + β. *)
let fold_conv_bn ~w ~bias ~gamma ~beta ~mean ~var =
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  let kh = Tensor.dim w 2 and kw = Tensor.dim w 3 in
  let w' = Tensor.copy w in
  let b' = Tensor.zeros [| cout |] in
  for co = 0 to cout - 1 do
    let scale =
      gamma.Tensor.data.(co) /. sqrt (var.Tensor.data.(co) +. 1e-5)
    in
    for ci = 0 to cin - 1 do
      for i = 0 to kh - 1 do
        for j = 0 to kw - 1 do
          Tensor.set4 w' co ci i j (Tensor.get4 w co ci i j *. scale)
        done
      done
    done;
    let b0 = match bias with Some b -> b.Tensor.data.(co) | None -> 0.0 in
    b'.Tensor.data.(co) <-
      ((b0 -. mean.Tensor.data.(co)) *. scale) +. beta.Tensor.data.(co)
  done;
  (w', b')

let fold_bn g =
  let nodes = Graph.nodes g in
  (* Use counts, to only fold convs consumed exclusively by their BN. *)
  let uses = Hashtbl.create 64 in
  List.iter
    (fun (_, n) ->
      List.iter
        (fun i ->
          Hashtbl.replace uses i (1 + Option.value ~default:0 (Hashtbl.find_opt uses i)))
        n.Graph.inputs)
    nodes;
  let out = Graph.output g in
  let single_use i =
    Hashtbl.find_opt uses i = Some 1 && i <> out
  in
  (* BN nodes to fold: bn_id -> conv_id. *)
  let foldable = Hashtbl.create 16 in
  List.iter
    (fun (id, n) ->
      match n.Graph.op with
      | Graph.Bn _ -> (
          match n.Graph.inputs with
          | [ src ] -> (
              match (Graph.node g src).Graph.op with
              | Graph.Conv _ when single_use src -> Hashtbl.replace foldable id src
              | _ -> ())
          | _ -> ())
      | _ -> ())
    nodes;
  let folded_convs = Hashtbl.create 16 in
  Hashtbl.iter (fun _ conv -> Hashtbl.replace folded_convs conv ()) foldable;
  (* Rebuild with remapped ids. *)
  let g' = Graph.create () in
  let remap = Hashtbl.create 64 in
  List.iter
    (fun (id, n) ->
      if Hashtbl.mem folded_convs id then () (* emitted with its BN *)
      else begin
        let new_id =
          match n.Graph.op with
          | Graph.Input -> Graph.input g'
          | Graph.Bn { gamma; beta; mean; var } when Hashtbl.mem foldable id ->
              let conv_id = Hashtbl.find foldable id in
              let conv = Graph.node g conv_id in
              let w, bias, stride, pad =
                match conv.Graph.op with
                | Graph.Conv { w; bias; stride; pad } -> (w, bias, stride, pad)
                | _ -> assert false
              in
              let w', b' = fold_conv_bn ~w ~bias ~gamma ~beta ~mean ~var in
              let conv_input = Hashtbl.find remap (List.hd conv.Graph.inputs) in
              Graph.add g'
                (Graph.Conv { w = w'; bias = Some b'; stride; pad })
                [ conv_input ]
          | op -> Graph.add g' op (List.map (Hashtbl.find remap) n.Graph.inputs)
        in
        Hashtbl.replace remap id new_id
      end)
    nodes;
  Graph.set_output g' (Hashtbl.find remap out);
  g'
