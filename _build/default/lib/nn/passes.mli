(** Graph rewriting passes. *)

val fold_bn : Graph.t -> Graph.t
(** Fold every batch-norm whose producer is a convolution used only by that
    batch-norm into the convolution's weights/bias.  Numerically exact (up
    to FP rounding); the standard pre-quantization step. *)

val bn_count : Graph.t -> int
