module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape

type id = int

type op =
  | Input
  | Conv of {
      w : Tensor.t;
      bias : Tensor.t option;
      stride : int;
      pad : int;
    }
  | Bn of {
      gamma : Tensor.t;
      beta : Tensor.t;
      mean : Tensor.t;
      var : Tensor.t;
    }
  | Relu
  | Leaky_relu of int  (* negative slope = 2^-k (hardware-shift friendly) *)
  | Max_pool of { k : int; stride : int }
  | Avg_pool of { k : int; stride : int }
  | Global_avg_pool
  | Linear of { w : Tensor.t; bias : Tensor.t option }
  | Add
  | Concat  (* channel concatenation of two NCHW tensors *)
  | Upsample of int

type node = { op : op; inputs : id list }

type t = {
  mutable node_list : node list;  (* reversed *)
  mutable n : int;
  mutable out : id option;
  mutable has_input : bool;
}

let create () = { node_list = []; n = 0; out = None; has_input = false }

let arity = function
  | Input -> 0
  | Add | Concat -> 2
  | Conv _ | Bn _ | Relu | Leaky_relu _ | Max_pool _ | Avg_pool _
  | Global_avg_pool | Linear _ | Upsample _ ->
      1

let add g op inputs =
  if List.length inputs <> arity op then
    invalid_arg "Graph.add: arity mismatch";
  List.iter
    (fun i -> if i < 0 || i >= g.n then invalid_arg "Graph.add: undefined input")
    inputs;
  g.node_list <- { op; inputs } :: g.node_list;
  g.n <- g.n + 1;
  g.n - 1

let input g =
  if g.has_input then invalid_arg "Graph.input: input already defined";
  g.has_input <- true;
  add g Input []

let set_output g id =
  if id < 0 || id >= g.n then invalid_arg "Graph.set_output: undefined node";
  g.out <- Some id

let output g =
  match g.out with
  | Some id -> id
  | None -> invalid_arg "Graph.output: no output set"

let nodes g = List.mapi (fun i n -> (i, n)) (List.rev g.node_list)

let node g id =
  match List.assoc_opt id (nodes g) with
  | Some n -> n
  | None -> invalid_arg "Graph.node: undefined node"

let conv_count g =
  List.fold_left
    (fun acc (_, n) -> match n.op with Conv _ -> acc + 1 | _ -> acc)
    0 (nodes g)

let apply op (args : Tensor.t list) =
  match (op, args) with
  | Input, _ -> invalid_arg "Graph.apply: input node has no computation"
  | Conv { w; bias; stride; pad }, [ x ] ->
      Ops.conv2d ~stride ~pad ~x ~w ?b:bias ()
  | Bn { gamma; beta; mean; var }, [ x ] ->
      Ops.batch_norm ~x ~gamma ~beta ~mean ~var ~eps:1e-5
  | Relu, [ x ] -> Ops.relu x
  | Leaky_relu k, [ x ] -> Ops.leaky_relu (Float.pow 2.0 (float_of_int (-k))) x
  | Max_pool { k; stride }, [ x ] -> Ops.max_pool2d ~k ~stride x
  | Avg_pool { k; stride }, [ x ] -> Ops.avg_pool2d ~k ~stride x
  | Global_avg_pool, [ x ] -> Ops.global_avg_pool x
  | Linear { w; bias }, [ x ] -> Ops.linear ~x ~w ?b:bias ()
  | Add, [ a; b ] -> Tensor.add a b
  | Concat, [ a; b ] -> Ops.concat_channels a b
  | Upsample f, [ x ] -> Ops.upsample_nearest f x
  | _ -> invalid_arg "Graph.apply: arity mismatch"

let run_all g x =
  let values = Array.make g.n None in
  List.iter
    (fun (i, { op; inputs }) ->
      let v =
        match op with
        | Input -> x
        | _ ->
            apply op
              (List.map
                 (fun j ->
                   match values.(j) with
                   | Some v -> v
                   | None -> invalid_arg "Graph.run: forward reference")
                 inputs)
      in
      values.(i) <- Some v)
    (nodes g);
  Array.map (function Some v -> v | None -> assert false) values

let run g x = (run_all g x).(output g)

let op_shape op (args : Shape.t list) =
  match (op, args) with
  | Conv { w; stride; pad; _ }, [ s ] ->
      let ho, wo =
        Shape.conv2d_out ~h:s.(2) ~w:s.(3) ~kh:(Tensor.dim w 2)
          ~kw:(Tensor.dim w 3) ~stride ~pad
      in
      [| s.(0); Tensor.dim w 0; ho; wo |]
  | (Bn _ | Relu | Leaky_relu _), [ s ] -> s
  | (Max_pool { k; stride } | Avg_pool { k; stride }), [ s ] ->
      let ho, wo = Shape.pool_out ~h:s.(2) ~w:s.(3) ~k ~stride in
      [| s.(0); s.(1); ho; wo |]
  | Global_avg_pool, [ s ] -> [| s.(0); s.(1) |]
  | Linear { w; _ }, [ s ] -> [| s.(0); Tensor.dim w 0 |]
  | Add, [ a; b ] ->
      if not (Shape.equal a b) then invalid_arg "Graph: Add shape mismatch";
      a
  | Concat, [ a; b ] ->
      if a.(0) <> b.(0) || a.(2) <> b.(2) || a.(3) <> b.(3) then
        invalid_arg "Graph: Concat shape mismatch";
      [| a.(0); a.(1) + b.(1); a.(2); a.(3) |]
  | Upsample f, [ s ] -> [| s.(0); s.(1); s.(2) * f; s.(3) * f |]
  | Input, _ | _ -> invalid_arg "Graph.op_shape: bad op/args"

let infer_shapes g ~input =
  let shapes = Array.make g.n None in
  List.map
    (fun (i, { op; inputs }) ->
      let s =
        match op with
        | Input -> input
        | _ ->
            op_shape op
              (List.map
                 (fun j -> match shapes.(j) with Some s -> s | None -> assert false)
                 inputs)
      in
      shapes.(i) <- Some s;
      (i, s))
    (nodes g)
