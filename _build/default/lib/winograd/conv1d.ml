module Rat = Twq_util.Rat

type t = {
  gen : Generator.t;
  bt : float array array;
  g : float array array;
  at : float array array;
}

let to_float m = Twq_util.Rmat.to_float m

let create ?points ~m ~r () =
  let points =
    match points with Some p -> p | None -> Generator.lavin_points (m + r - 2)
  in
  let gen = Generator.make ~points ~m ~r in
  {
    gen;
    bt = to_float gen.Generator.bt;
    g = to_float gen.Generator.g;
    at = to_float gen.Generator.at;
  }

let m t = t.gen.Generator.m
let r t = t.gen.Generator.r

let matvec m x =
  Array.init (Array.length m) (fun i ->
      let acc = ref 0.0 in
      Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) m.(i);
      !acc)

let conv_reference ~signal ~kernel =
  let n = Array.length signal and r = Array.length kernel in
  if n < r then invalid_arg "Conv1d.conv_reference: signal shorter than kernel";
  Array.init (n - r + 1) (fun i ->
      let acc = ref 0.0 in
      for k = 0 to r - 1 do
        acc := !acc +. (signal.(i + k) *. kernel.(k))
      done;
      !acc)

let conv t ~signal ~kernel =
  let m_sz = m t and r_sz = r t in
  if Array.length kernel <> r_sz then invalid_arg "Conv1d.conv: kernel length";
  let n = Array.length signal in
  if n < r_sz then invalid_arg "Conv1d.conv: signal shorter than kernel";
  let out_len = n - r_sz + 1 in
  let tile_in = m_sz + r_sz - 1 in
  let gk = matvec t.g kernel in
  let n_tiles = (out_len + m_sz - 1) / m_sz in
  let out = Array.make out_len 0.0 in
  for tile = 0 to n_tiles - 1 do
    let base = tile * m_sz in
    let d =
      Array.init tile_in (fun i ->
          let idx = base + i in
          if idx < n then signal.(idx) else 0.0)
    in
    let dt = matvec t.bt d in
    let prod = Array.map2 ( *. ) dt gk in
    let y = matvec t.at prod in
    for i = 0 to m_sz - 1 do
      if base + i < out_len then out.(base + i) <- y.(i)
    done
  done;
  out

let macs_reduction t =
  let m = float_of_int (m t) and r = float_of_int (r t) in
  m *. r /. (m +. r -. 1.0)
