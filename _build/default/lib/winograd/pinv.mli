(** Moore–Penrose pseudo-inverse back-transform from the Winograd domain.

    Used by the Fig. 4 quantization-error analysis: weights are quantized in
    the Winograd domain ([Quant(G f Gᵀ)]) and mapped back to the spatial
    domain with [G⁺ · Q · (G⁺)ᵀ], where [G⁺ = (GᵀG)⁻¹Gᵀ] is exact (computed
    on rationals).  Since [G] has full column rank, [G⁺G = I] and the
    back-transform of an *unquantized* tile recovers the original kernel
    exactly — a property the test-suite checks. *)

val g_pinv : Transform.variant -> Twq_tensor.Tensor.t
(** [G⁺ : 3×t] as floats. *)

val g_pinv_rat : Transform.variant -> Twq_util.Rmat.t

val weight_back_transform : Transform.variant -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** [G⁺ · q · (G⁺)ᵀ] of a [t×t] Winograd-domain tile; result is [3×3]. *)
