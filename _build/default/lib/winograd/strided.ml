module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops

(* Polyphase split: x_ee(i,j) = x(2i,2j), x_eo = x(2i,2j+1), etc. *)
let polyphase x ~row_parity ~col_parity =
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let ho = (h - row_parity + 1) / 2 and wo = (w - col_parity + 1) / 2 in
  Tensor.init [| n; c; ho; wo |] (fun idx ->
      Tensor.get4 x idx.(0) idx.(1) ((2 * idx.(2)) + row_parity) ((2 * idx.(3)) + col_parity))

(* Sub-kernel of the 3×3 filter with taps at (2a+rp, 2b+cp). *)
let subkernel w ~row_parity ~col_parity =
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  let kh = (3 - row_parity + 1) / 2 and kw = (3 - col_parity + 1) / 2 in
  Tensor.init [| cout; cin; kh; kw |] (fun idx ->
      Tensor.get4 w idx.(0) idx.(1) ((2 * idx.(2)) + row_parity) ((2 * idx.(3)) + col_parity))

let conv2d_stride2 ~x ~w =
  if Tensor.dim w 2 <> 3 || Tensor.dim w 3 <> 3 then
    invalid_arg "Strided.conv2d_stride2: 3x3 kernels required";
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  if h mod 2 <> 0 || wd mod 2 <> 0 then
    invalid_arg "Strided.conv2d_stride2: even input dims required";
  (* Output size of a valid stride-2 3x3 conv. *)
  let ho = ((h - 3) / 2) + 1 and wo = ((wd - 3) / 2) + 1 in
  let acc = ref None in
  List.iter
    (fun (rp, cp) ->
      let xp = polyphase x ~row_parity:rp ~col_parity:cp in
      let wp = subkernel w ~row_parity:rp ~col_parity:cp in
      let y = Ops.conv2d ~stride:1 ~pad:0 ~x:xp ~w:wp () in
      (* Each polyphase conv yields at least ho×wo outputs; crop. *)
      let y_crop =
        Tensor.init [| Tensor.dim y 0; Tensor.dim y 1; ho; wo |] (fun idx ->
            Tensor.get4 y idx.(0) idx.(1) idx.(2) idx.(3))
      in
      acc :=
        Some
          (match !acc with
          | None -> y_crop
          | Some a -> Tensor.add a y_crop))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  Option.get !acc

(* Per 4×4 output tile (m = 4):
   - direct: 16 outputs × 9 taps;
   - decomposed Winograd: F(4,2) needs m+r-1 = 5 points:
     2×2 kernel → 5² = 25 multiplications,
     2×1 / 1×2 kernels → one 1-D F(4,2) per row/col: 5 × 4 = 20 each,
     1×1 kernel → plain elementwise: 16. *)
let macs_direct_per_tile = 16 * 9
let macs_winograd_per_tile = 25 + 20 + 20 + 16
let macs_reduction = float_of_int macs_direct_per_tile /. float_of_int macs_winograd_per_tile
