(** Strided Winograd convolution by kernel decomposition.

    The paper excludes strided layers from its Winograd operator because
    "stride-2 F4 leads only to a 1.8× MACs reduction" (Sec. III, citing
    Yang et al. / Yepez et al.).  This module implements the decomposition
    behind that number: a stride-2 3×3 convolution splits into four
    stride-1 sub-convolutions on the even/odd polyphase components of the
    input — kernels 2×2, 2×1, 1×2 and 1×1 — each of which can use (1-D or
    2-D) Winograd with m=4.  We provide the functional decomposition (used
    to validate the claim end-to-end) and the operation-count analysis that
    reproduces the 1.8× figure. *)

val conv2d_stride2 : x:Twq_tensor.Tensor.t -> w:Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Stride-2 3×3 convolution (valid padding, even input dims required)
    computed via the polyphase decomposition; numerically equal to
    [Ops.conv2d ~stride:2 ~pad:0]. *)

val macs_direct_per_tile : int
(** Multiplications of the direct stride-2 3×3 algorithm per 4×4 output
    tile (16·9 = 144). *)

val macs_winograd_per_tile : int
(** Multiplications of the decomposed Winograd algorithm per 4×4 output
    tile: F(4,2) on the 2×2 part (25), two 1-D F(4,2) passes on the 2×1 and
    1×2 parts (2 × 20), and the 1×1 part (16) — 81 in total. *)

val macs_reduction : float
(** 144/81 ≈ 1.78 — the paper's "only 1.8×". *)
