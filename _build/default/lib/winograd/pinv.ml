open Twq_util
module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops

let g_pinv_rat variant = Rmat.pinv_left (Transform.g_rat variant)

let tensor_of_rmat m =
  Tensor.init [| Rmat.rows m; Rmat.cols m |] (fun idx ->
      Rat.to_float m.(idx.(0)).(idx.(1)))

let memo f =
  let tbl = Hashtbl.create 4 in
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some x -> x
    | None ->
        let x = f v in
        Hashtbl.add tbl v x;
        x

let g_pinv = memo (fun v -> tensor_of_rmat (g_pinv_rat v))
let g_pinv_t = memo (fun v -> Ops.transpose (g_pinv v))

let weight_back_transform variant q =
  Ops.matmul (Ops.matmul (g_pinv variant) q) (g_pinv_t variant)
