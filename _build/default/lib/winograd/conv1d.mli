(** 1-D Winograd convolution (time-series / audio kernels).

    The 2-D algorithm of the paper nests two 1-D transforms; this module
    exposes the 1-D case directly — [F(m, r)] over a full signal with
    overlapping tiles — using the exact Toom–Cook matrices from
    {!Generator}.  Useful on its own and as the reference for the 2-D
    nesting identity. *)

type t

val create : ?points:Twq_util.Rat.t list -> m:int -> r:int -> unit -> t
(** Precompute the transforms; [points] defaults to
    [Generator.lavin_points (m + r - 2)].
    @raise Invalid_argument as {!Generator.make}. *)

val m : t -> int
val r : t -> int

val conv : t -> signal:float array -> kernel:float array -> float array
(** Valid 1-D convolution (correlation): output length
    [length signal - r + 1].  Tiles of [m] outputs are processed per
    Winograd transform; the tail tile is zero-padded and cropped. *)

val conv_reference : signal:float array -> kernel:float array -> float array
(** Direct sliding-window correlation (ground truth). *)

val macs_reduction : t -> float
(** [m·r / (m + r - 1)] — the 1-D multiplication saving. *)
