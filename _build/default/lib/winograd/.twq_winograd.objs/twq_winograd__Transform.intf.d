lib/winograd/transform.mli: Twq_tensor Twq_util
