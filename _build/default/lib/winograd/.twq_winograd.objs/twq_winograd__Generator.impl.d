lib/winograd/generator.ml: Array Float List Printf Rat Rmat Twq_util
