lib/winograd/conv.ml: Array Transform Twq_tensor
