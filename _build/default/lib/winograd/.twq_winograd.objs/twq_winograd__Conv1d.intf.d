lib/winograd/conv1d.mli: Twq_util
