lib/winograd/strided.mli: Twq_tensor
