lib/winograd/gconv.ml: Array Generator Twq_tensor Twq_util
