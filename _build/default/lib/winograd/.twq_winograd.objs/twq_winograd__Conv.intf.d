lib/winograd/conv.mli: Transform Twq_tensor
