lib/winograd/pinv.ml: Array Hashtbl Rat Rmat Transform Twq_tensor Twq_util
