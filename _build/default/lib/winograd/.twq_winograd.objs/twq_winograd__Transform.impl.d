lib/winograd/transform.ml: Array Hashtbl Interval Rat Rmat Stdlib Twq_tensor Twq_util
