lib/winograd/conv1d.ml: Array Generator Twq_util
