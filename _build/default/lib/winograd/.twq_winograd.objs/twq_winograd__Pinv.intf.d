lib/winograd/pinv.mli: Transform Twq_tensor Twq_util
