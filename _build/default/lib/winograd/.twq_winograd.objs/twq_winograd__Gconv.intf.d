lib/winograd/gconv.mli: Twq_tensor Twq_util
