lib/winograd/strided.ml: Array List Option Twq_tensor
