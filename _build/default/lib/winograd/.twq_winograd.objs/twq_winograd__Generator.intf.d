lib/winograd/generator.mli: Twq_util
