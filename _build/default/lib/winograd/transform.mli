(** Winograd transformation matrices and single-tile transforms.

    Variants follow the paper: [F2] is F(2x2, 3x3) with root points
    {0, 1, -1}; [F4] is F(4x4, 3x3) with the Lavin root points
    {0, 1, -1, 2, -2} (the matrices printed in Sec. II of the paper).
    [F6] is the standard F(6x6, 3x3) with points {0, ±1, ±2, ±1/2} —
    implemented as the "larger tiles" extension whose numerical behaviour
    the paper's Sec. II discusses.
    All matrices are constructed exactly as rationals and exposed both in
    rational and float form.

    Conventions (Eq. 1 of the paper):
    - input transform:  [Bᵀ · x · B] with [x : t×t], [t = m+2];
    - weight transform: [G · f · Gᵀ] with [f : 3×3];
    - output transform: [Aᵀ · Y · A] with [Y : t×t], result [m×m]. *)

type variant = F2 | F4 | F6

val all_variants : variant list
val name : variant -> string

val m : variant -> int
(** Output tile size (2, 4 or 6). *)

val t : variant -> int
(** Transformed tile size [m + 2] (4 or 6). *)

val r : variant -> int
(** Kernel size (always 3). *)

val macs_reduction : variant -> float
(** Theoretical MACs reduction vs the standard algorithm:
    [m²·9 / (m+2)²] — 2.25 for F2, 4.0 for F4. *)

(** {2 Exact matrices} *)

val bt_rat : variant -> Twq_util.Rmat.t
(** [Bᵀ : t×t] *)

val g_rat : variant -> Twq_util.Rmat.t
(** [G : t×3] *)

val at_rat : variant -> Twq_util.Rmat.t
(** [Aᵀ : m×t] *)

val g_scale : variant -> int
(** Smallest positive integer [k] such that [k·G] is integral
    (2 for F2, 24 for F4, 90 for F6). *)

val bt_scale : variant -> int
(** Smallest positive integer making [Bᵀ] integral (1, 1, 4). *)

val at_scale : variant -> int
(** Smallest positive integer making [Aᵀ] integral (1, 1, 32). *)

val g_scaled_int : variant -> int array array
(** [g_scale · G] as integers. *)

(** {2 Float matrices (as 2-D tensors)} *)

val bt : variant -> Twq_tensor.Tensor.t
val g : variant -> Twq_tensor.Tensor.t
val at : variant -> Twq_tensor.Tensor.t

(** {2 Single-tile float transforms} *)

val input_tile : variant -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** [Bᵀ x B] of a [t×t] tile. *)

val weight_tile : variant -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** [G f Gᵀ] of a [3×3] kernel. *)

val output_tile : variant -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** [Aᵀ Y A] of a [t×t] Winograd-domain tile. *)

(** {2 Single-tile integer transforms (exact)} *)

val input_tile_int : variant -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** [(bt_scale·Bᵀ) x (bt_scale·B)] — exact integer input transform scaled
    by [bt_scale²] (the scale is 1 for F2/F4, whose [Bᵀ] is integral). *)

val weight_tile_int_scaled : variant -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** [(g_scale·G) f (g_scale·G)ᵀ] — exact integer weight transform scaled by
    [g_scale²]. *)

val output_tile_int : variant -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** [(at_scale·Aᵀ) Y (at_scale·A)] — exact integer output transform scaled
    by [at_scale²]. *)

(** {2 Bit-growth bounds (Challenge I / Sec. II)} *)

val extra_bits_input : variant -> int
(** Worst-case extra bits of [Bᵀ x B] over the input bitwidth. *)

val extra_bits_weight : variant -> int
(** Worst-case extra bits of the (unscaled, real-valued) [G f Gᵀ] over the
    weight bitwidth — i.e. bits needed for a bit-true representation. *)

val extra_bits_output : variant -> int
(** Worst-case extra bits of [Aᵀ Y A] over the Winograd-domain bitwidth. *)
