(** Toom–Cook / Winograd transformation-matrix synthesis from root points.

    The paper (Sec. I) derives its matrices from the polynomial Chinese
    remainder theorem over chosen root points; related work ([1], [3] in
    the paper) studies which points minimise numerical error.  This module
    implements the general construction exactly over rationals, for
    [F(m, r)] with [n = m + r - 1] interpolation nodes: [n - 1] finite
    points plus the point at infinity:

    - [Bᵀ] row [i] holds the coefficients of [Π_{k≠i} (x − a_k)]
      (the last row those of [M(x) = Π_k (x − a_k)]);
    - [G] row [i] is [(1, a_i, …, a_i^{r-1}) / N_i] with
      [N_i = Π_{k≠i} (a_k − a_i)] (last row = (0,…,0,1));
    - [Aᵀ] row [i] is [(a_0^i, …, a_{n-2}^i)] with the infinity column
      [δ_{i,m-1}].

    With the Lavin points {0, 1, −1, 2, −2} the output equals the paper's
    F(4,3) matrices exactly; other point sets give equivalent algorithms
    (the tests verify the convolution identity for arbitrary points). *)

type t = {
  points : Twq_util.Rat.t array;  (** the n−1 finite interpolation points *)
  m : int;                        (** output tile size *)
  r : int;                        (** kernel size *)
  bt : Twq_util.Rmat.t;           (** n×n *)
  g : Twq_util.Rmat.t;            (** n×r *)
  at : Twq_util.Rmat.t;           (** m×n *)
}

val make : points:Twq_util.Rat.t list -> m:int -> r:int -> t
(** @raise Invalid_argument if the point count is not [m + r - 2], the
    points are not pairwise distinct, or [r] is even (odd kernels cover
    every CNN case; the even-[r] construction needs a different
    infinity-node treatment). *)

val lavin_points : int -> Twq_util.Rat.t list
(** The conventional point progression 0, 1, −1, 2, −2, 1/2, −1/2, … —
    [lavin_points k] returns the first [k]. *)

val conv1d_reference : t -> float array -> float array -> float array
(** Direct valid 1-D convolution (correlation) of a length-[m+r-1] signal
    with a length-[r] kernel — the ground truth for the identity test. *)

val conv1d : t -> float array -> float array -> float array
(** [Aᵀ((G·g) ⊙ (Bᵀ·d))] — must equal {!conv1d_reference} for any valid
    point set. *)

val fp_error_probe : t -> seed:int -> trials:int -> float
(** Max |winograd − direct| over random 1-D inputs in [−1,1] — the
    numerical-quality metric used for point-selection comparisons. *)
