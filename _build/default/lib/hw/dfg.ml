module Rat = Twq_util.Rat
module Rmat = Twq_util.Rmat
module Interval = Twq_util.Interval

type term = { src : int; shift : int; negate : bool }

type t = {
  n_inputs : int;
  frac_bits : int;
  outputs : term list array;
  cse_nodes : (term * term) array;
}

(* Canonical signed-digit decomposition of an integer: minimal number of
   non-zero digits in {-1, 0, +1} base-2 representation. *)
let csd n =
  let digits = ref [] in
  let v = ref (abs n) in
  let sign = if n < 0 then -1 else 1 in
  let pos = ref 0 in
  while !v <> 0 do
    if !v land 1 = 1 then begin
      (* Look at the next bit to decide between +1 and -1 (carry). *)
      let mod4 = !v land 3 in
      if mod4 = 3 then begin
        digits := (!pos, -sign) :: !digits;
        v := !v + 1
      end
      else begin
        digits := (!pos, sign) :: !digits;
        v := !v - 1
      end
    end;
    v := !v asr 1;
    incr pos
  done;
  List.rev !digits

let rec ilog2 n = if n <= 1 then 0 else 1 + ilog2 (n / 2)

(* Shift-add digits of a rational coefficient: exact for dyadic
   denominators, [frac_bits]-bit fixed point otherwise. *)
let coeff_digits ~frac_bits c =
  let den = Rat.den c in
  if den land (den - 1) = 0 then
    let d = ilog2 den in
    List.map (fun (s, sg) -> (s - d, sg)) (csd (Rat.num c))
  else begin
    let v = int_of_float (Float.round (Rat.to_float c *. float_of_int (1 lsl frac_bits))) in
    List.map (fun (s, sg) -> (s - frac_bits, sg)) (csd v)
  end

let of_matrix ?(frac_bits = 8) (m : Rmat.t) =
  let rows = Rmat.rows m and cols = Rmat.cols m in
  let outputs =
    Array.init rows (fun i ->
        List.concat
          (List.init cols (fun j ->
               let c = m.(i).(j) in
               if Rat.is_zero c then []
               else
                 List.map
                   (fun (shift, sign) -> { src = j; shift; negate = sign < 0 })
                   (coeff_digits ~frac_bits c))))
  in
  { n_inputs = cols; frac_bits; outputs; cse_nodes = [||] }

(* A canonical key for an unordered pair of terms, normalised so that a
   shared shift and a global sign flip do not hide a match. *)
let pair_key t1 t2 =
  let a, b =
    if (t1.src, t1.shift, t1.negate) <= (t2.src, t2.shift, t2.negate) then (t1, t2)
    else (t2, t1)
  in
  let base = Stdlib.min a.shift b.shift in
  let a = { a with shift = a.shift - base } in
  let b = { b with shift = b.shift - base } in
  let flip = a.negate in
  let a = { a with negate = false } in
  let b = { b with negate = b.negate <> flip } in
  ((a, b), base, flip)

let apply_cse dfg =
  let outputs = Array.map Array.of_list dfg.outputs in
  let cse = ref (Array.to_list dfg.cse_nodes) in
  let n_cse = ref (Array.length dfg.cse_nodes) in
  let continue = ref true in
  while !continue do
    (* Count disjoint pair occurrences across all outputs. *)
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun terms ->
        let n = Array.length terms in
        let used = Array.make n false in
        for i = 0 to n - 1 do
          if not used.(i) then
            for j = i + 1 to n - 1 do
              if (not used.(i)) && not used.(j) then begin
                let key, _, _ = pair_key terms.(i) terms.(j) in
                let c = Option.value ~default:0 (Hashtbl.find_opt counts key) in
                Hashtbl.replace counts key (c + 1)
              end
            done
        done)
      outputs;
    let best =
      Hashtbl.fold
        (fun key c acc ->
          match acc with
          | Some (_, bc) when bc >= c -> acc
          | _ -> if c >= 2 then Some (key, c) else acc)
        counts None
    in
    match best with
    | None -> continue := false
    | Some ((ka, kb), _) ->
        let node_idx = dfg.n_inputs + !n_cse in
        cse := !cse @ [ (ka, kb) ];
        incr n_cse;
        (* Substitute disjoint occurrences in every output. *)
        Array.iteri
          (fun oi terms ->
            let n = Array.length terms in
            let used = Array.make n false in
            let extra = ref [] in
            for i = 0 to n - 1 do
              if not used.(i) then begin
                let found = ref false in
                for j = i + 1 to n - 1 do
                  if (not !found) && not used.(j) then begin
                    let (a, b), base, flip = pair_key terms.(i) terms.(j) in
                    if a = ka && b = kb then begin
                      used.(i) <- true;
                      used.(j) <- true;
                      found := true;
                      extra := { src = node_idx; shift = base; negate = flip } :: !extra
                    end
                  end
                done
              end
            done;
            let kept = ref [] in
            for i = n - 1 downto 0 do
              if not used.(i) then kept := terms.(i) :: !kept
            done;
            outputs.(oi) <- Array.of_list (!kept @ !extra))
          outputs
  done;
  {
    dfg with
    outputs = Array.map Array.to_list outputs;
    cse_nodes = Array.of_list !cse;
  }

let adder_count dfg =
  let out_adds =
    Array.fold_left
      (fun acc terms -> acc + Stdlib.max 0 (List.length terms - 1))
      0 dfg.outputs
  in
  out_adds + Array.length dfg.cse_nodes

let shifter_count dfg =
  let count_terms acc terms =
    List.fold_left (fun a t -> if t.shift <> 0 then a + 1 else a) acc terms
  in
  let from_outputs = Array.fold_left count_terms 0 dfg.outputs in
  Array.fold_left
    (fun acc (a, b) -> count_terms acc [ a; b ])
    from_outputs dfg.cse_nodes

let op_count dfg =
  Array.fold_left (fun acc terms -> acc + List.length terms) 0 dfg.outputs
  + (2 * Array.length dfg.cse_nodes)

let rec node_value dfg (x : float array) cache k =
  match cache.(k) with
  | Some v -> v
  | None ->
      let a, b = dfg.cse_nodes.(k - dfg.n_inputs) in
      let v = term_value dfg x cache a +. term_value dfg x cache b in
      cache.(k) <- Some v;
      v

and term_value dfg x cache t =
  let base =
    if t.src < dfg.n_inputs then x.(t.src) else node_value dfg x cache t.src
  in
  let scaled = base *. Float.pow 2.0 (float_of_int t.shift) in
  if t.negate then -.scaled else scaled

let eval dfg x =
  if Array.length x <> dfg.n_inputs then invalid_arg "Dfg.eval: input size mismatch";
  let cache = Array.make (dfg.n_inputs + Array.length dfg.cse_nodes) None in
  Array.map
    (fun terms -> List.fold_left (fun acc t -> acc +. term_value dfg x cache t) 0.0 terms)
    dfg.outputs

let rec node_depth dfg cache k =
  match cache.(k) with
  | Some d -> d
  | None ->
      let a, b = dfg.cse_nodes.(k - dfg.n_inputs) in
      let d = 1 + Stdlib.max (term_depth dfg cache a) (term_depth dfg cache b) in
      cache.(k) <- Some d;
      d

and term_depth dfg cache t =
  if t.src < dfg.n_inputs then 0 else node_depth dfg cache t.src

let depth dfg =
  let cache = Array.make (dfg.n_inputs + Array.length dfg.cse_nodes) None in
  let ceil_log2 n =
    let rec loop acc v = if v >= n then acc else loop (acc + 1) (v * 2) in
    loop 0 1
  in
  Array.fold_left
    (fun acc terms ->
      let base = List.fold_left (fun a t -> Stdlib.max a (term_depth dfg cache t)) 0 terms in
      Stdlib.max acc (base + ceil_log2 (Stdlib.max 1 (List.length terms))))
    0 dfg.outputs

let max_bits dfg ~input_bits =
  (* Track value intervals in units of 2^-frac_bits so right shifts stay
     integral. *)
  let scale t = t.shift + dfg.frac_bits in
  let input = Interval.of_signed_bits input_bits in
  let n_nodes = dfg.n_inputs + Array.length dfg.cse_nodes in
  let cache : Interval.t option array = Array.make n_nodes None in
  let rec node_iv k =
    match cache.(k) with
    | Some iv -> iv
    | None ->
        let a, b = dfg.cse_nodes.(k - dfg.n_inputs) in
        let iv = Interval.add (term_iv a) (term_iv b) in
        cache.(k) <- Some iv;
        iv
  and term_iv t =
    let base = if t.src < dfg.n_inputs then Interval.shift_left input dfg.frac_bits else node_iv t.src in
    (* base is in 2^-frac units; apply the term shift relative to that. *)
    let s = scale t - dfg.frac_bits in
    let shifted =
      if s >= 0 then Interval.shift_left base s else Interval.shift_right base (-s)
    in
    if t.negate then Interval.neg shifted else shifted
  in
  let worst = ref 0 in
  Array.iter
    (fun terms ->
      let iv =
        List.fold_left (fun acc t -> Interval.add acc (term_iv t)) (Interval.point 0) terms
      in
      worst := Stdlib.max !worst (Interval.signed_bits iv))
    dfg.outputs;
  for k = dfg.n_inputs to n_nodes - 1 do
    worst := Stdlib.max !worst (Interval.signed_bits (node_iv k))
  done;
  Stdlib.max 1 (!worst - dfg.frac_bits)

(* ------------------------------------------------------- list scheduling *)

(* Lower the DFG to two-input micro-adds: each CSE node is one add; each
   output with k terms becomes a balanced tree of k-1 adds.  Dependencies
   follow node references; shifts are hardwired (free). *)
type micro_op = { deps : int list (* indices of micro-ops *); level_hint : int }

let micro_ops dfg =
  let ops = ref [] in
  let n_ops = ref 0 in
  let push deps hint =
    ops := { deps; level_hint = hint } :: !ops;
    incr n_ops;
    !n_ops - 1
  in
  (* The micro-op computing each CSE node's value. *)
  let node_op = Array.make (Array.length dfg.cse_nodes) (-1) in
  let term_dep t =
    if t.src < dfg.n_inputs then [] else [ node_op.(t.src - dfg.n_inputs) ]
  in
  Array.iteri
    (fun k (a, b) ->
      (* CSE nodes reference only earlier nodes, so node_op is filled. *)
      node_op.(k) <- push (term_dep a @ term_dep b) 0)
    dfg.cse_nodes;
  (* Balanced reduction tree per output. *)
  Array.iter
    (fun terms ->
      let leaves = List.map (fun t -> (term_dep t, 0)) terms in
      let rec reduce = function
        | [] | [ _ ] -> ()
        | items ->
            let rec pair = function
              | (d1, h1) :: (d2, h2) :: rest ->
                  let id = push (d1 @ d2) (Stdlib.max h1 h2 + 1) in
                  ([ id ], Stdlib.max h1 h2 + 1) :: pair rest
              | [ x ] -> [ x ]
              | [] -> []
            in
            reduce (pair items)
      in
      reduce leaves)
    dfg.outputs;
  Array.of_list (List.rev !ops)

let schedule_cycles dfg ~adders =
  if adders <= 0 then invalid_arg "Dfg.schedule_cycles: adders must be positive";
  let ops = micro_ops dfg in
  let n = Array.length ops in
  if n = 0 then 0
  else begin
    let done_at = Array.make n max_int in
    let remaining = ref n in
    let cycle = ref 0 in
    while !remaining > 0 do
      incr cycle;
      (* Greedy: issue up to [adders] ready ops this cycle. *)
      let issued = ref 0 in
      let i = ref 0 in
      while !issued < adders && !i < n do
        if done_at.(!i) = max_int
           && List.for_all (fun d -> done_at.(d) < !cycle) ops.(!i).deps
        then begin
          done_at.(!i) <- !cycle;
          incr issued;
          decr remaining
        end;
        incr i
      done;
      if !issued = 0 && !remaining > 0 then
        (* Should be impossible on a DAG; guard against livelock. *)
        failwith "Dfg.schedule_cycles: deadlock"
    done;
    !cycle
  end
