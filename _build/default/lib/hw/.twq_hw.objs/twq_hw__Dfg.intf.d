lib/hw/dfg.mli: Twq_util
