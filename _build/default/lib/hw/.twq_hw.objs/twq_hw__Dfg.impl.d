lib/hw/dfg.ml: Array Float Hashtbl List Option Stdlib Twq_util
