lib/hw/engine.ml: Dfg Twq_util Twq_winograd
