lib/hw/area_power.mli: Engine
