lib/hw/engine.mli: Dfg Twq_util Twq_winograd
