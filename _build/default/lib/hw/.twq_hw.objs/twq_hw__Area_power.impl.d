lib/hw/area_power.ml: Engine Twq_winograd
