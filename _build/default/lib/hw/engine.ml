module Transform = Twq_winograd.Transform
module Rmat = Twq_util.Rmat

type transform = Input | Weight | Output

type kind = Row_by_row_slow | Row_by_row_fast | Tap_by_tap

type config = {
  kind : kind;
  variant : Transform.variant;
  transform : transform;
  pc : int;
  ps : int;
  pt : int;
}

(* T is the right-hand matrix of Tᵀ·s·T: B (t×t) for inputs, G viewed as
   (t×3)ᵀ for weights — the weight transform is G·f·Gᵀ, i.e. T = Gᵀ (3×t)
   transposed into our convention — and A (t×m) for outputs. *)
let t_matrix cfg =
  match cfg.transform with
  | Input -> Rmat.transpose (Transform.bt_rat cfg.variant)
  | Weight -> Rmat.transpose (Transform.g_rat cfg.variant)
  | Output -> Rmat.transpose (Transform.at_rat cfg.variant)

let h_t cfg = Rmat.rows (t_matrix cfg)
let w_t cfg = Rmat.cols (t_matrix cfg)

let dfg_pass cfg =
  (* One 1-D pass computes y = Tᵀ·x (w_T outputs from h_T inputs). *)
  Dfg.apply_cse (Dfg.of_matrix (Rmat.transpose (t_matrix cfg)))

let taps_per_xform cfg = w_t cfg * w_t cfg

let cycles_per_xform cfg =
  match cfg.kind with
  | Row_by_row_slow -> h_t cfg + w_t cfg
  | Row_by_row_fast -> h_t cfg
  | Tap_by_tap ->
      (* Both 1-D passes fully unrolled in time with CSE: pass 1 runs h_T
         1-D transforms, pass 2 runs w_T. *)
      let ops = Dfg.op_count (dfg_pass cfg) in
      let total = ops * (h_t cfg + w_t cfg) in
      (total + cfg.pt - 1) / cfg.pt

let parallel_xforms cfg =
  match cfg.kind with
  | Row_by_row_slow | Row_by_row_fast -> cfg.pc * cfg.ps
  | Tap_by_tap -> cfg.pc * cfg.ps

let throughput_xforms_per_cycle cfg =
  float_of_int (parallel_xforms cfg) /. float_of_int (cycles_per_xform cfg)

let throughput_bytes_per_cycle cfg ~element_bytes =
  throughput_xforms_per_cycle cfg
  *. float_of_int (taps_per_xform cfg * element_bytes)

let read_bw cfg =
  match cfg.kind with
  | Row_by_row_slow | Row_by_row_fast -> cfg.pc * cfg.ps * h_t cfg
  | Tap_by_tap -> cfg.pc * cfg.ps

let write_bw cfg =
  match cfg.kind with
  | Row_by_row_slow -> cfg.pc * cfg.ps * h_t cfg
  | Row_by_row_fast -> cfg.pc * cfg.ps * w_t cfg * w_t cfg
  | Tap_by_tap -> cfg.pc * cfg.ps

type resources = { adders : int; shifters : int; registers : int }

let resources cfg =
  let pass = dfg_pass cfg in
  let pes = cfg.pc * cfg.ps in
  match cfg.kind with
  | Row_by_row_slow ->
      (* One spatial 1-D datapath + h_T·w_T intermediate registers. *)
      {
        adders = pes * Dfg.adder_count pass;
        shifters = pes * Dfg.shifter_count pass;
        registers = pes * (h_t cfg * w_t cfg);
      }
  | Row_by_row_fast ->
      (* Extra w_T·w_T output-stationary accumulator lanes. *)
      {
        adders = pes * (Dfg.adder_count pass + (w_t cfg * w_t cfg));
        shifters = pes * Dfg.shifter_count pass;
        registers = pes * (w_t cfg * w_t cfg);
      }
  | Tap_by_tap ->
      (* One shifter + adder + accumulator per tap lane, plus the
         quantization stage (shifter + rounder ≈ adder) per lane. *)
      let lanes = pes * cfg.pt in
      { adders = lanes * 2; shifters = lanes * 2; registers = lanes * 2 }
