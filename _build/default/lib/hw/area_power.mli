(** Area / power / energy model of the AI core (Table V of the paper).

    The model is anchor-calibrated: the three default engine
    configurations (input 32×2 fast row-by-row, weight 64×8 tap-by-tap,
    output 16×1 fast row-by-row — the design points of Sec. IV-B2) are
    pinned to the paper's post-P&R area and power numbers, and any other
    configuration is scaled by its weighted resource count relative to its
    anchor.  Memory access energies come straight from Table V; DRAM and
    Vector-Unit constants are estimated (documented in DESIGN.md). *)

val clock_hz : float
(** 500 MHz. *)

(** {2 Default engine design points (Sec. IV-B2)} *)

val input_engine : Engine.config
val weight_engine : Engine.config
val output_engine : Engine.config

val engine_area_mm2 : Engine.config -> float
val engine_power_mw : Engine.config -> float

(** {2 Fixed blocks} *)

val cube_area_mm2 : float
val cube_power_mw_im2col : float
val cube_power_mw_winograd : float
val im2col_engine_area_mm2 : float
val im2col_engine_power_mw : float
val vector_power_mw : float
val core_area_mm2 : float
(** Whole AI core (so Table V percentages can be reproduced). *)

(** {2 Memory model} *)

type mem = L0A | L0B | L0C_portA | L0C_portB_im2col | L0C_portB_winograd | L1 | UB | GM

val mem_size_kb : mem -> int option
val mem_area_mm2 : mem -> float option
val rd_pj_per_byte : mem -> float
val wr_pj_per_byte : mem -> float

(** {2 Energy helpers} *)

val energy_pj_of_cycles : power_mw:float -> float -> float
(** [power × cycles / f] in pJ. *)

val cube_tops_per_watt : winograd:bool -> float
(** Peak TOp/s/W of the Cube Unit; the Winograd figure uses
    spatial-equivalent operations (4× the raw cube throughput), as in
    Table V. *)
