(** Flat data-flow graphs for the 1-D Winograd transformation passes.

    The hardware section of the paper (IV-B1) builds the transformation
    engines by unrolling [sw = Tᵀ·s·T] into a DFG, decomposing every
    constant multiplication into shifts and adds (no multipliers), applying
    common sub-expression elimination, and keeping the minimal bitwidth per
    intermediate.  This module implements that flow for a single 1-D pass
    ([y = M·x] with a constant matrix [M]); the 2-D transform is two such
    passes (see {!Engine}).

    Constant decomposition uses the canonical signed-digit (CSD) form of the
    fixed-point coefficient; non-dyadic rationals (the 1/3 factors inside
    [G]) are approximated with [frac_bits] fractional bits, exactly as a
    shift-add hardware implementation would. *)

type term = {
  src : int;    (** input index, or a CSE node index offset by [n_inputs] *)
  shift : int;  (** left shift if positive, right shift if negative *)
  negate : bool;
}

type t = {
  n_inputs : int;
  frac_bits : int;
  outputs : term list array;  (** each output is a sum of terms *)
  cse_nodes : (term * term) array;
      (** node [k] (referenced as [src = n_inputs + k]) is the sum of its
          two terms *)
}

val of_matrix : ?frac_bits:int -> Twq_util.Rmat.t -> t
(** Shift-add DFG of [y = M·x], one expression per row, no sharing yet. *)

val apply_cse : t -> t
(** Greedy common-pair extraction across outputs (classic multiplier-block
    CSE): repeatedly hoists the most frequent signed term pair into a shared
    node.  Never changes {!eval}'s result. *)

val adder_count : t -> int
(** Two-input adders needed for a fully spatial implementation. *)

val shifter_count : t -> int
(** Non-zero-shift term count (hardwired shifters are free area-wise but we
    track them for reporting). *)

val op_count : t -> int
(** Total primitive accumulate operations — the cycle count of a
    one-op-per-cycle (tap-by-tap) PE evaluating all outputs. *)

val depth : t -> int
(** Longest add chain (spatial latency in adder levels). *)

val eval : t -> float array -> float array
(** Reference evaluation; equals [M·x] exactly for dyadic matrices and to
    [2^-frac_bits] precision otherwise. *)

val schedule_cycles : t -> adders:int -> int
(** List-schedule the DFG onto [adders] two-input adders (the "scheduling
    and resource allocation ... exploring different area-throughput
    trade-offs" step of Sec. IV-B1): cycles to evaluate all outputs.
    [adders = 1] gives the fully time-unrolled (tap-by-tap-style) latency;
    large [adders] converges to the critical-path {!depth}. *)

val max_bits : t -> input_bits:int -> int
(** Worst-case signed bitwidth of any node given [input_bits] inputs
    (interval propagation, as used to size the datapath). *)
