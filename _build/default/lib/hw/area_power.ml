module Transform = Twq_winograd.Transform

let clock_hz = 500e6

let input_engine =
  { Engine.kind = Engine.Row_by_row_fast; variant = Transform.F4;
    transform = Engine.Input; pc = 32; ps = 2; pt = 1 }

let weight_engine =
  { Engine.kind = Engine.Tap_by_tap; variant = Transform.F4;
    transform = Engine.Weight; pc = 64; ps = 1; pt = 16 }

let output_engine =
  { Engine.kind = Engine.Row_by_row_fast; variant = Transform.F4;
    transform = Engine.Output; pc = 16; ps = 1; pt = 1 }

(* Post-place-and-route anchors from Table V: (area mm², power mW). *)
let anchor_of = function
  | Engine.Input -> (input_engine, 0.23, 145.0)
  | Engine.Weight -> (weight_engine, 0.32, 228.0)
  | Engine.Output -> (output_engine, 0.10, 114.0)

(* Weighted resource count: adders dominate, registers next, hardwired
   shifters are nearly free. *)
let resource_weight (r : Engine.resources) =
  float_of_int r.Engine.adders +. (0.5 *. float_of_int r.Engine.registers)
  +. (0.1 *. float_of_int r.Engine.shifters)

let scale_to_anchor cfg =
  let anchor_cfg, area, power = anchor_of cfg.Engine.transform in
  let ratio =
    resource_weight (Engine.resources cfg)
    /. resource_weight (Engine.resources anchor_cfg)
  in
  (area *. ratio, power *. ratio)

let engine_area_mm2 cfg = fst (scale_to_anchor cfg)
let engine_power_mw cfg = snd (scale_to_anchor cfg)

let cube_area_mm2 = 2.04
let cube_power_mw_im2col = 1521.0
let cube_power_mw_winograd = 1923.0
let im2col_engine_area_mm2 = 0.03
let im2col_engine_power_mw = 30.0

(* Not reported in Table V; estimated at roughly 1/5 of the Cube for a
   256-B SIMD datapath at the same node. *)
let vector_power_mw = 300.0

(* Cube is 19.2% of the core. *)
let core_area_mm2 = cube_area_mm2 /. 0.192

type mem = L0A | L0B | L0C_portA | L0C_portB_im2col | L0C_portB_winograd | L1 | UB | GM

let mem_size_kb = function
  | L0A | L0B -> Some 64
  | L0C_portA | L0C_portB_im2col | L0C_portB_winograd -> Some 288
  | L1 -> Some 1024
  | UB -> Some 256
  | GM -> None

let mem_area_mm2 = function
  | L0A | L0B -> Some 0.32
  | L0C_portA | L0C_portB_im2col | L0C_portB_winograd -> Some 0.61
  | L1 -> Some 1.24
  | UB -> Some 0.55
  | GM -> None

let rd_pj_per_byte = function
  | L0A -> 0.22
  | L0B -> 0.22
  | L0C_portA -> 0.23
  | L0C_portB_im2col -> 0.31
  | L0C_portB_winograd -> 0.69
  (* ~3× the L0B cost (Sec. V-B5), including bank-conflict logic. *)
  | L1 -> 0.66
  | UB -> 0.30
  (* LPDDR4x access energy, controller + IO included. *)
  | GM -> 20.0

let wr_pj_per_byte = function
  | L0A -> 0.24
  | L0B -> 0.24
  | L0C_portA -> 0.29
  | L0C_portB_im2col -> 0.31
  | L0C_portB_winograd -> 0.69
  | L1 -> 0.72
  | UB -> 0.32
  | GM -> 20.0

let energy_pj_of_cycles ~power_mw cycles =
  (* P[mW] × cycles / f[Hz] = mJ·cycles/Hz → pJ: ×1e9. *)
  power_mw *. cycles /. clock_hz *. 1e9

let cube_tops_per_watt ~winograd =
  (* The Cube performs 2·16·16·32 int8 ops per cycle. *)
  let ops_per_cycle = 2.0 *. 16.0 *. 16.0 *. 32.0 in
  let raw_tops = ops_per_cycle *. clock_hz /. 1e12 in
  if winograd then 4.0 *. raw_tops /. (cube_power_mw_winograd /. 1e3)
  else raw_tops /. (cube_power_mw_im2col /. 1e3)
