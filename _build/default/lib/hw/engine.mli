(** Winograd transformation-engine micro-architecture models (Sec. IV-B1,
    Table I of the paper).

    Three implementation styles:
    - {e row-by-row slow}: one spatial 1-D transform datapath per PE,
      reused for both passes — [h_T + w_T] cycles per transform;
    - {e row-by-row fast}: adds [w_T·w_T] output-stationary lanes —
      [h_T] cycles per transform;
    - {e tap-by-tap}: a single shift-add-accumulate ALU per tap lane,
      fully time-unrolled — cycle count is [T]-dependent (from the DFG,
      with CSE in time).

    [P_c], [P_s] (and [P_t] for tap-by-tap) replicate PEs along channels,
    spatial tiles and taps. *)

type transform = Input | Weight | Output

type kind = Row_by_row_slow | Row_by_row_fast | Tap_by_tap

type config = {
  kind : kind;
  variant : Twq_winograd.Transform.variant;
  transform : transform;
  pc : int;
  ps : int;
  pt : int;  (** only meaningful for tap-by-tap *)
}

val t_matrix : config -> Twq_util.Rmat.t
(** The [T] of [Tᵀ·s·T] for this transform ([B], [G] or [A]). *)

val h_t : config -> int
val w_t : config -> int

val dfg_pass : config -> Dfg.t
(** CSE-optimised DFG of one 1-D pass ([y = Tᵀ x]). *)

val cycles_per_xform : config -> int
(** Cycles to transform one tile in one PE (Table I row 1; for tap-by-tap
    this is the CSE-reduced op count of both passes divided by [P_t]). *)

val parallel_xforms : config -> int

val throughput_xforms_per_cycle : config -> float

val throughput_bytes_per_cycle : config -> element_bytes:int -> float
(** Output-side production rate: [taps-per-xform × rate × element size]. *)

val read_bw : config -> int
(** Bytes/cycle of input bandwidth required (Table I). *)

val write_bw : config -> int

type resources = { adders : int; shifters : int; registers : int }

val resources : config -> resources
(** Spatial resource count of the whole engine (all PEs). *)
