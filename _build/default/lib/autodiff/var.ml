module Tensor = Twq_tensor.Tensor

type t = {
  id : int;
  data : Tensor.t;
  grad : Tensor.t;
  parents : t list;
  backward : unit -> unit;
}

let counter = ref 0

let next_id () =
  incr counter;
  !counter

let of_tensor data =
  {
    id = next_id ();
    data;
    grad = Tensor.zeros data.Tensor.shape;
    parents = [];
    backward = (fun () -> ());
  }

let make ~data ~parents ~backward =
  let rec node =
    {
      id = next_id ();
      data;
      grad = Tensor.zeros data.Tensor.shape;
      parents;
      backward = (fun () -> backward node);
    }
  in
  node

let value v = v.data
let grad v = v.grad
let zero_grad v = Tensor.fill v.grad 0.0

let accumulate v g =
  if not (Twq_tensor.Shape.equal g.Tensor.shape v.grad.Tensor.shape) then
    invalid_arg "Var.accumulate: gradient shape mismatch";
  Array.iteri (fun i x -> v.grad.Tensor.data.(i) <- v.grad.Tensor.data.(i) +. x) g.Tensor.data

let backward root =
  (* Topological order via DFS, then reverse. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit v =
    if not (Hashtbl.mem visited v.id) then begin
      Hashtbl.add visited v.id ();
      List.iter visit v.parents;
      order := v :: !order
    end
  in
  visit root;
  Tensor.fill root.grad 1.0;
  List.iter (fun v -> v.backward ()) !order
