module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape

type v = Var.t

let const t =
  (* A leaf: gradients accumulate into it but nobody reads them. *)
  Var.of_tensor t

let add a b =
  Var.make ~data:(Tensor.add a.Var.data b.Var.data) ~parents:[ a; b ]
    ~backward:(fun node ->
      Var.accumulate a node.Var.grad;
      Var.accumulate b node.Var.grad)

let sub a b =
  Var.make ~data:(Tensor.sub a.Var.data b.Var.data) ~parents:[ a; b ]
    ~backward:(fun node ->
      Var.accumulate a node.Var.grad;
      Var.accumulate b (Tensor.neg node.Var.grad))

let mul a b =
  Var.make ~data:(Tensor.mul a.Var.data b.Var.data) ~parents:[ a; b ]
    ~backward:(fun node ->
      Var.accumulate a (Tensor.mul node.Var.grad b.Var.data);
      Var.accumulate b (Tensor.mul node.Var.grad a.Var.data))

let scale k a =
  Var.make ~data:(Tensor.scale k a.Var.data) ~parents:[ a ]
    ~backward:(fun node -> Var.accumulate a (Tensor.scale k node.Var.grad))

let neg a = scale (-1.0) a

let reshape a shape =
  let original = a.Var.data.Tensor.shape in
  Var.make ~data:(Tensor.reshape (Tensor.copy a.Var.data) shape) ~parents:[ a ]
    ~backward:(fun node ->
      Var.accumulate a (Tensor.reshape (Tensor.copy node.Var.grad) original))

let matmul a b =
  Var.make ~data:(Ops.matmul a.Var.data b.Var.data) ~parents:[ a; b ]
    ~backward:(fun node ->
      let g = node.Var.grad in
      Var.accumulate a (Ops.matmul g (Ops.transpose b.Var.data));
      Var.accumulate b (Ops.matmul (Ops.transpose a.Var.data) g))

let linear ~x ~w ~b =
  let y = matmul x (Var.make ~data:(Ops.transpose w.Var.data) ~parents:[ w ]
                      ~backward:(fun node ->
                        Var.accumulate w (Ops.transpose node.Var.grad))) in
  match b with
  | None -> y
  | Some b ->
      Var.make
        ~data:
          (let out = Tensor.copy y.Var.data in
           let n = Tensor.dim out 0 and f = Tensor.dim out 1 in
           for i = 0 to n - 1 do
             for j = 0 to f - 1 do
               Tensor.set2 out i j (Tensor.get2 out i j +. b.Var.data.Tensor.data.(j))
             done
           done;
           out)
        ~parents:[ y; b ]
        ~backward:(fun node ->
          Var.accumulate y node.Var.grad;
          let n = Tensor.dim node.Var.grad 0 and f = Tensor.dim node.Var.grad 1 in
          let gb = Tensor.zeros [| f |] in
          for i = 0 to n - 1 do
            for j = 0 to f - 1 do
              gb.Tensor.data.(j) <- gb.Tensor.data.(j) +. Tensor.get2 node.Var.grad i j
            done
          done;
          Var.accumulate b gb)

let conv2d ?(stride = 1) ?(pad = 0) ~x ~w ~b () =
  let data = Ops.conv2d ~stride ~pad ~x:x.Var.data ~w:w.Var.data
      ?b:(Option.map (fun b -> b.Var.data) b) () in
  let parents = match b with None -> [ x; w ] | Some b -> [ x; w; b ] in
  Var.make ~data ~parents ~backward:(fun node ->
      let dy = node.Var.grad in
      let xt = x.Var.data and wt = w.Var.data in
      let n = Tensor.dim xt 0 and cin = Tensor.dim xt 1 in
      let h = Tensor.dim xt 2 and wd = Tensor.dim xt 3 in
      let cout = Tensor.dim wt 0 in
      let kh = Tensor.dim wt 2 and kw = Tensor.dim wt 3 in
      let ho = Tensor.dim dy 2 and wo = Tensor.dim dy 3 in
      let xp = Ops.pad2d xt pad in
      let dxp = Tensor.zeros xp.Tensor.shape in
      let dw = Tensor.zeros wt.Tensor.shape in
      for ni = 0 to n - 1 do
        for co = 0 to cout - 1 do
          for oh = 0 to ho - 1 do
            for ow = 0 to wo - 1 do
              let g = Tensor.get4 dy ni co oh ow in
              if g <> 0.0 then
                for ci = 0 to cin - 1 do
                  for ki = 0 to kh - 1 do
                    for kj = 0 to kw - 1 do
                      let ih = (oh * stride) + ki and iw = (ow * stride) + kj in
                      Tensor.set4 dxp ni ci ih iw
                        (Tensor.get4 dxp ni ci ih iw +. (g *. Tensor.get4 wt co ci ki kj));
                      Tensor.set4 dw co ci ki kj
                        (Tensor.get4 dw co ci ki kj +. (g *. Tensor.get4 xp ni ci ih iw))
                    done
                  done
                done
            done
          done
        done
      done;
      (* Crop padding from dx. *)
      let dx = Tensor.zeros xt.Tensor.shape in
      for ni = 0 to n - 1 do
        for ci = 0 to cin - 1 do
          for hi = 0 to h - 1 do
            for wi = 0 to wd - 1 do
              Tensor.set4 dx ni ci hi wi (Tensor.get4 dxp ni ci (hi + pad) (wi + pad))
            done
          done
        done
      done;
      Var.accumulate x dx;
      Var.accumulate w dw;
      match b with
      | None -> ()
      | Some bias ->
          let gb = Tensor.zeros [| cout |] in
          for ni = 0 to n - 1 do
            for co = 0 to cout - 1 do
              for oh = 0 to ho - 1 do
                for ow = 0 to wo - 1 do
                  gb.Tensor.data.(co) <- gb.Tensor.data.(co) +. Tensor.get4 dy ni co oh ow
                done
              done
            done
          done;
          Var.accumulate bias gb)

let relu a =
  Var.make ~data:(Ops.relu a.Var.data) ~parents:[ a ]
    ~backward:(fun node ->
      let g =
        Tensor.map2
          (fun x gy -> if x > 0.0 then gy else 0.0)
          a.Var.data node.Var.grad
      in
      Var.accumulate a g)

let avg_pool2d ~k ~stride a =
  let data = Ops.avg_pool2d ~k ~stride a.Var.data in
  Var.make ~data ~parents:[ a ] ~backward:(fun node ->
      let dy = node.Var.grad in
      let dx = Tensor.zeros a.Var.data.Tensor.shape in
      let n = Tensor.dim dy 0 and c = Tensor.dim dy 1 in
      let ho = Tensor.dim dy 2 and wo = Tensor.dim dy 3 in
      let inv = 1.0 /. float_of_int (k * k) in
      for ni = 0 to n - 1 do
        for ci = 0 to c - 1 do
          for oh = 0 to ho - 1 do
            for ow = 0 to wo - 1 do
              let g = Tensor.get4 dy ni ci oh ow *. inv in
              for ki = 0 to k - 1 do
                for kj = 0 to k - 1 do
                  let ih = (oh * stride) + ki and iw = (ow * stride) + kj in
                  Tensor.set4 dx ni ci ih iw (Tensor.get4 dx ni ci ih iw +. g)
                done
              done
            done
          done
        done
      done;
      Var.accumulate a dx)

let max_pool2d ~k ~stride a =
  let data = Ops.max_pool2d ~k ~stride a.Var.data in
  Var.make ~data ~parents:[ a ] ~backward:(fun node ->
      let dy = node.Var.grad in
      let xd = a.Var.data in
      let dx = Tensor.zeros xd.Tensor.shape in
      let n = Tensor.dim dy 0 and c = Tensor.dim dy 1 in
      let ho = Tensor.dim dy 2 and wo = Tensor.dim dy 3 in
      for ni = 0 to n - 1 do
        for ci = 0 to c - 1 do
          for oh = 0 to ho - 1 do
            for ow = 0 to wo - 1 do
              (* Route the gradient to the (first) argmax of the window. *)
              let best_i = ref (oh * stride) and best_j = ref (ow * stride) in
              for ki = 0 to k - 1 do
                for kj = 0 to k - 1 do
                  let ih = (oh * stride) + ki and iw = (ow * stride) + kj in
                  if Tensor.get4 xd ni ci ih iw > Tensor.get4 xd ni ci !best_i !best_j
                  then begin
                    best_i := ih;
                    best_j := iw
                  end
                done
              done;
              Tensor.set4 dx ni ci !best_i !best_j
                (Tensor.get4 dx ni ci !best_i !best_j +. Tensor.get4 dy ni ci oh ow)
            done
          done
        done
      done;
      Var.accumulate a dx)

let global_avg_pool a =
  let data = Ops.global_avg_pool a.Var.data in
  Var.make ~data ~parents:[ a ] ~backward:(fun node ->
      let dy = node.Var.grad in
      let xd = a.Var.data in
      let h = Tensor.dim xd 2 and w = Tensor.dim xd 3 in
      let inv = 1.0 /. float_of_int (h * w) in
      let dx =
        Tensor.init xd.Tensor.shape (fun idx ->
            Tensor.get2 dy idx.(0) idx.(1) *. inv)
      in
      Var.accumulate a dx)

let add_channel_bias x b =
  let data =
    Tensor.init x.Var.data.Tensor.shape (fun idx ->
        Tensor.get x.Var.data idx +. b.Var.data.Tensor.data.(idx.(1)))
  in
  Var.make ~data ~parents:[ x; b ] ~backward:(fun node ->
      Var.accumulate x node.Var.grad;
      let c = Tensor.dim x.Var.data 1 in
      let gb = Tensor.zeros [| c |] in
      let dy = node.Var.grad in
      let n = Tensor.dim dy 0 and h = Tensor.dim dy 2 and w = Tensor.dim dy 3 in
      for ni = 0 to n - 1 do
        for ci = 0 to c - 1 do
          for hi = 0 to h - 1 do
            for wi = 0 to w - 1 do
              gb.Tensor.data.(ci) <- gb.Tensor.data.(ci) +. Tensor.get4 dy ni ci hi wi
            done
          done
        done
      done;
      Var.accumulate b gb)

let batch_norm_frozen ~x ~gamma ~beta ~eps =
  let xd = x.Var.data in
  let n = Tensor.dim xd 0 and c = Tensor.dim xd 1 in
  let h = Tensor.dim xd 2 and w = Tensor.dim xd 3 in
  let count = float_of_int (n * h * w) in
  (* Batch statistics, treated as constants in the backward pass. *)
  let mean = Array.make c 0.0 and var = Array.make c 0.0 in
  for ci = 0 to c - 1 do
    let s = ref 0.0 in
    for ni = 0 to n - 1 do
      for hi = 0 to h - 1 do
        for wi = 0 to w - 1 do
          s := !s +. Tensor.get4 xd ni ci hi wi
        done
      done
    done;
    mean.(ci) <- !s /. count;
    let sq = ref 0.0 in
    for ni = 0 to n - 1 do
      for hi = 0 to h - 1 do
        for wi = 0 to w - 1 do
          let d = Tensor.get4 xd ni ci hi wi -. mean.(ci) in
          sq := !sq +. (d *. d)
        done
      done
    done;
    var.(ci) <- !sq /. count
  done;
  let inv_std = Array.map (fun v -> 1.0 /. sqrt (v +. eps)) var in
  let data =
    Tensor.init xd.Tensor.shape (fun idx ->
        let ci = idx.(1) in
        ((Tensor.get xd idx -. mean.(ci)) *. inv_std.(ci)
         *. gamma.Var.data.Tensor.data.(ci))
        +. beta.Var.data.Tensor.data.(ci))
  in
  Var.make ~data ~parents:[ x; gamma; beta ] ~backward:(fun node ->
      let dy = node.Var.grad in
      let dx =
        Tensor.init xd.Tensor.shape (fun idx ->
            Tensor.get dy idx *. inv_std.(idx.(1)) *. gamma.Var.data.Tensor.data.(idx.(1)))
      in
      Var.accumulate x dx;
      let dgamma = Tensor.zeros [| c |] and dbeta = Tensor.zeros [| c |] in
      for ni = 0 to n - 1 do
        for ci = 0 to c - 1 do
          for hi = 0 to h - 1 do
            for wi = 0 to w - 1 do
              let g = Tensor.get4 dy ni ci hi wi in
              let xhat = (Tensor.get4 xd ni ci hi wi -. mean.(ci)) *. inv_std.(ci) in
              dgamma.Tensor.data.(ci) <- dgamma.Tensor.data.(ci) +. (g *. xhat);
              dbeta.Tensor.data.(ci) <- dbeta.Tensor.data.(ci) +. g
            done
          done
        done
      done;
      Var.accumulate gamma dgamma;
      Var.accumulate beta dbeta)

let softmax_cross_entropy ~logits ~labels =
  let p = Ops.softmax logits.Var.data in
  let n = Tensor.dim p 0 in
  if Array.length labels <> n then
    invalid_arg "Fn.softmax_cross_entropy: label count mismatch";
  let loss = ref 0.0 in
  let log_p = Ops.log_softmax logits.Var.data in
  for i = 0 to n - 1 do
    loss := !loss -. Tensor.get2 log_p i labels.(i)
  done;
  let data = Tensor.scalar (!loss /. float_of_int n) in
  Var.make ~data ~parents:[ logits ] ~backward:(fun node ->
      let g0 = node.Var.grad.Tensor.data.(0) /. float_of_int n in
      let dl =
        Tensor.init p.Tensor.shape (fun idx ->
            let indicator = if idx.(1) = labels.(idx.(0)) then 1.0 else 0.0 in
            g0 *. (Tensor.get2 p idx.(0) idx.(1) -. indicator))
      in
      Var.accumulate logits dl)

let kl_distillation ~student ~teacher ~temperature =
  let tt = temperature in
  let n = Tensor.dim teacher 0 in
  let p_teacher = Ops.softmax (Tensor.scale (1.0 /. tt) teacher) in
  let scaled_student = Tensor.scale (1.0 /. tt) student.Var.data in
  let log_q = Ops.log_softmax scaled_student in
  let q = Ops.softmax scaled_student in
  let classes = Tensor.dim teacher 1 in
  let loss = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to classes - 1 do
      let pt = Tensor.get2 p_teacher i j in
      if pt > 0.0 then
        loss := !loss +. (pt *. (log pt -. Tensor.get2 log_q i j))
    done
  done;
  (* T² keeps gradient magnitudes comparable to the hard loss. *)
  let data = Tensor.scalar (!loss *. tt *. tt /. float_of_int n) in
  Var.make ~data ~parents:[ student ] ~backward:(fun node ->
      let g0 = node.Var.grad.Tensor.data.(0) *. tt /. float_of_int n in
      let dl =
        Tensor.init student.Var.data.Tensor.shape (fun idx ->
            g0 *. (Tensor.get2 q idx.(0) idx.(1) -. Tensor.get2 p_teacher idx.(0) idx.(1)))
      in
      Var.accumulate student dl)

let mean_all a =
  let n = Tensor.numel a.Var.data in
  let data = Tensor.scalar (Tensor.sum a.Var.data /. float_of_int n) in
  Var.make ~data ~parents:[ a ] ~backward:(fun node ->
      let g = node.Var.grad.Tensor.data.(0) /. float_of_int n in
      Var.accumulate a (Tensor.create a.Var.data.Tensor.shape g))
