lib/autodiff/var.mli: Twq_tensor
