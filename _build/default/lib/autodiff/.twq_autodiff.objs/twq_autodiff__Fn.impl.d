lib/autodiff/fn.ml: Array Option Twq_tensor Var
