lib/autodiff/wa_conv.mli: Scale_param Twq_winograd Var
