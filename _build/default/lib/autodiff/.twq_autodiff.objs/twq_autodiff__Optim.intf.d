lib/autodiff/optim.mli: Var
