lib/autodiff/scale_param.mli:
