lib/autodiff/scale_param.ml: Float
