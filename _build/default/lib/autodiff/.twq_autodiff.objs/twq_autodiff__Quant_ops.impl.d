lib/autodiff/quant_ops.ml: Twq_quant Twq_tensor Var
