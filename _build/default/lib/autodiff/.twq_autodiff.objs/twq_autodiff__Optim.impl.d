lib/autodiff/optim.ml: Array Hashtbl List Twq_tensor Var
