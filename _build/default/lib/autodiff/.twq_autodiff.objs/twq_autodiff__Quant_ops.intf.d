lib/autodiff/quant_ops.mli: Twq_quant Var
