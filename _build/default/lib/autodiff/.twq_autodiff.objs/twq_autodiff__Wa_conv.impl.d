lib/autodiff/wa_conv.ml: Array Float Scale_param Twq_quant Twq_tensor Twq_winograd Var
