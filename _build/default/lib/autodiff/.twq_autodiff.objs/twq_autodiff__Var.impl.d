lib/autodiff/var.ml: Array Hashtbl List Twq_tensor
