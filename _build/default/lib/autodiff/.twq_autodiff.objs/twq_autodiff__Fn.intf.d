lib/autodiff/fn.mli: Twq_tensor Var
