(** Straight-through-estimator quantization nodes for QAT. *)

val fake_quant_ste : bits:int -> scale:float -> Var.t -> Var.t
(** Forward: [s·clamp(⌊x/s⌉)].  Backward: clipped straight-through — the
    gradient passes unchanged where [x/s] lies inside the representable
    range and is zeroed outside (the value is stuck at the clamp rail). *)

val quantize_act : observer:Twq_quant.Calibration.t -> bits:int -> pow2:bool -> Var.t -> Var.t
(** Spatial-domain activation fake-quantization with running-max
    calibration: observes [max|x|] (EMA) each forward and quantizes with the
    calibrated scale. *)
