(** Optimizers.

    Following the paper's training recipe: plain SGD (with optional momentum
    and weight decay) for the network parameters, Adam for the quantization
    scale parameters ({!Scale_param.adam_step}). *)

type sgd

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> Var.t list -> sgd
(** The parameter list is fixed at creation (momentum buffers attach to it). *)

val sgd_step : sgd -> unit
(** Apply one update from the accumulated gradients, then zero them. *)

val set_lr : sgd -> float -> unit

val zero_grads : Var.t list -> unit

val grad_norm : Var.t list -> float
(** Global L2 norm of all parameter gradients (diagnostics). *)

val clip_grad_norm : Var.t list -> max_norm:float -> unit
