type t = {
  mutable theta : float;  (* log2 t *)
  pow2 : bool;
  learnable : bool;
  mutable g : float;
  mutable m : float;
  mutable v : float;
  mutable steps : int;
}

let create ?(learnable = true) ~pow2 ~init () =
  if init <= 0.0 then invalid_arg "Scale_param.create: non-positive scale";
  { theta = Float.log2 init; pow2; learnable; g = 0.0; m = 0.0; v = 0.0; steps = 0 }

let value p =
  if p.pow2 then Float.pow 2.0 (Float.ceil p.theta) else Float.pow 2.0 p.theta

let set_from_calibration p s =
  if s <= 0.0 then invalid_arg "Scale_param.set_from_calibration: non-positive scale";
  p.theta <- Float.log2 s

let learnable p = p.learnable
let accumulate_grad p g = p.g <- p.g +. g
let zero_grad p = p.g <- 0.0
let grad p = p.g
let log2_t p = p.theta

let adam_step ?(lr = 0.01) ?(beta1 = 0.9) ?(beta2 = 0.99) ?(eps = 1e-8) p =
  if p.learnable then begin
    p.steps <- p.steps + 1;
    p.m <- (beta1 *. p.m) +. ((1.0 -. beta1) *. p.g);
    p.v <- (beta2 *. p.v) +. ((1.0 -. beta2) *. p.g *. p.g);
    let m_hat = p.m /. (1.0 -. Float.pow beta1 (float_of_int p.steps)) in
    let v_hat = p.v /. (1.0 -. Float.pow beta2 (float_of_int p.steps)) in
    p.theta <- p.theta -. (lr *. m_hat /. (sqrt v_hat +. eps));
    p.g <- 0.0
  end
