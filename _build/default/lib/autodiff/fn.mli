(** Differentiable tensor operations recorded on the {!Var} tape. *)

type v = Var.t

val const : Twq_tensor.Tensor.t -> v
(** Leaf whose gradient is discarded (no parameters behind it). *)

val add : v -> v -> v
val sub : v -> v -> v
val mul : v -> v -> v
val scale : float -> v -> v
val neg : v -> v
val reshape : v -> Twq_tensor.Shape.t -> v

val matmul : v -> v -> v
val linear : x:v -> w:v -> b:v option -> v
(** [x : n×k], [w : out×k]. *)

val conv2d : ?stride:int -> ?pad:int -> x:v -> w:v -> b:v option -> unit -> v
(** Direct convolution with exact gradients w.r.t. [x], [w] and [b]. *)

val relu : v -> v
val avg_pool2d : k:int -> stride:int -> v -> v
val max_pool2d : k:int -> stride:int -> v -> v
val global_avg_pool : v -> v

val add_channel_bias : v -> v -> v
(** [add_channel_bias x b] — NCHW plus per-channel bias [\[|c|\]]. *)

val batch_norm_frozen : x:v -> gamma:v -> beta:v -> eps:float -> v
(** Batch normalisation using the current batch statistics, with the
    statistics treated as constants in the backward pass (stop-gradient
    through mean/var).  Standard shortcut for small-scale QAT studies; the
    approximation is documented in DESIGN.md. *)

val softmax_cross_entropy : logits:v -> labels:int array -> v
(** Mean cross-entropy over the batch; [logits : n×classes]. *)

val kl_distillation : student:v -> teacher:Twq_tensor.Tensor.t -> temperature:float -> v
(** Tempered-softmax Kullback–Leibler distillation loss (Hinton et al.),
    scaled by [T²]; the teacher is a constant. *)

val mean_all : v -> v
(** Scalar mean of all elements. *)
