module Tensor = Twq_tensor.Tensor

type sgd = {
  mutable lr : float;
  momentum : float;
  weight_decay : float;
  params : Var.t list;
  velocity : (int, float array) Hashtbl.t;
}

let sgd ?(momentum = 0.0) ?(weight_decay = 0.0) ~lr params =
  let velocity = Hashtbl.create (List.length params) in
  List.iter
    (fun p ->
      Hashtbl.replace velocity p.Var.id
        (Array.make (Tensor.numel p.Var.data) 0.0))
    params;
  { lr; momentum; weight_decay; params; velocity }

let set_lr o lr = o.lr <- lr

let sgd_step o =
  List.iter
    (fun p ->
      let v = Hashtbl.find o.velocity p.Var.id in
      let data = p.Var.data.Tensor.data and grad = p.Var.grad.Tensor.data in
      for i = 0 to Array.length data - 1 do
        let g = grad.(i) +. (o.weight_decay *. data.(i)) in
        v.(i) <- (o.momentum *. v.(i)) +. g;
        data.(i) <- data.(i) -. (o.lr *. v.(i))
      done;
      Var.zero_grad p)
    o.params

let zero_grads params = List.iter Var.zero_grad params

let grad_norm params =
  let acc =
    List.fold_left (fun a p -> a +. Tensor.sumsq p.Var.grad) 0.0 params
  in
  sqrt acc

let clip_grad_norm params ~max_norm =
  let n = grad_norm params in
  if n > max_norm && n > 0.0 then begin
    let k = max_norm /. n in
    List.iter
      (fun p ->
        let g = p.Var.grad.Tensor.data in
        for i = 0 to Array.length g - 1 do
          g.(i) <- g.(i) *. k
        done)
      params
  end
