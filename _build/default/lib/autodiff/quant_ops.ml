module Tensor = Twq_tensor.Tensor
module Quantizer = Twq_quant.Quantizer
module Calibration = Twq_quant.Calibration

let fake_quant_ste ~bits ~scale x =
  let lo = float_of_int (Quantizer.qmin ~bits) in
  let hi = float_of_int (Quantizer.qmax ~bits) in
  let data = Quantizer.fake_quant_tensor ~bits ~scale x.Var.data in
  Var.make ~data ~parents:[ x ] ~backward:(fun node ->
      let g =
        Tensor.map2
          (fun v gy ->
            let r = v /. scale in
            (* TQT-style pass-through: include the rail value 2^(b-1),
               with a relative tolerance for scale round-trip error. *)
            if r >= (lo -. 0.5) *. 1.000000001 && r <= (hi +. 1.0) *. 1.000000001
            then gy
            else 0.0)
          x.Var.data node.Var.grad
      in
      Var.accumulate x g)

let quantize_act ~observer ~bits ~pow2 x =
  Calibration.observe_tensor observer x.Var.data;
  let scale = Quantizer.scale_for ~bits ~max_abs:(Calibration.value observer) in
  let scale = if pow2 then Quantizer.pow2_round_up scale else scale in
  fake_quant_ste ~bits ~scale x
