let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json (r : Operator.result) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iteri
    (fun tid (resource, events) ->
      List.iter
        (fun (start, finish, label) ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\
                \"dur\":%.3f,\"pid\":1,\"tid\":%d}"
               (json_escape (if label = "" then resource else label))
               (json_escape resource) start (finish -. start) tid))
        events;
      (* Thread name metadata. *)
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"%s\"}}"
           tid (json_escape resource)))
    r.Operator.trace;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_text ?(max_events = 200) (r : Operator.result) =
  let all =
    List.concat_map
      (fun (resource, events) ->
        List.map (fun (s, f, l) -> (s, f, resource, l)) events)
      r.Operator.trace
  in
  let sorted = List.sort (fun (a, _, _, _) (b, _, _, _) -> Float.compare a b) all in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-12s %-10s %s\n" "start" "finish" "resource" "task");
  List.iteri
    (fun i (s, f, resource, label) ->
      if i < max_events then
        Buffer.add_string buf
          (Printf.sprintf "%-12.0f %-12.0f %-10s %s\n" s f resource label))
    sorted;
  if List.length sorted > max_events then
    Buffer.add_string buf
      (Printf.sprintf "... (%d more events)\n" (List.length sorted - max_events));
  Buffer.contents buf

let save_chrome_json r path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json r))
