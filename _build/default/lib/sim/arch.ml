type t = {
  n_cores : int;
  cube_m : int;
  cube_n : int;
  cube_k : int;
  vector_bytes_per_cycle : int;
  dram_bw : float;
  dram_latency : float;
  dram_jitter_sigma : float;
  cout_block : int;
  spatial_block : int;
  block_overhead_cycles : float;
  ifm_reuse_outputs : int;
  broadcast : bool;
  buffer_depth : int;
  seed : int;
}

let default =
  {
    n_cores = 2;
    cube_m = 16;
    cube_n = 16;
    cube_k = 32;
    vector_bytes_per_cycle = 256;
    dram_bw = 81.2;
    dram_latency = 150.0;
    dram_jitter_sigma = 5.0;
    cout_block = 64;
    spatial_block = 32;
    block_overhead_cycles = 60.0;
    ifm_reuse_outputs = 64;
    broadcast = true;
    buffer_depth = 3;
    seed = 1;
  }

let macs_per_cycle a = a.cube_m * a.cube_n * a.cube_k

let scale_bandwidth a k = { a with dram_bw = a.dram_bw *. k }
