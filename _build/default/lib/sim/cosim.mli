(** Functional co-simulation: does the modelled datapath compute the right
    numbers?

    The paper's simulator "also models data movements and computation to
    check the correctness of the results" (Sec. V-B1).  This module pairs
    the timing model with the actual integer datapath: for a (small
    instance of a) layer it generates deterministic int8 inputs/weights,
    runs the kernel the operator models — the tap-wise Winograd pipeline
    for the Winograd kernels, the int8 spatial pipeline for im2col — and
    compares against the FP32 reference convolution. *)

type report = {
  kind : Operator.kind;
  rms_noise : float;      (** integer datapath vs FP32 reference *)
  bitwise_ok : bool;      (** integer path reproducible bit-for-bit *)
  checked_values : int;
}

val verify :
  Operator.kind ->
  Twq_nn.Zoo.conv_spec ->
  ?batch:int ->
  ?seed:int ->
  unit ->
  report
(** The spec's spatial/channel dims are clamped to a functional-simulation
    budget (≤ 16×16, ≤ 16 channels) — correctness does not depend on size.
    @raise Invalid_argument if the kind does not support the layer. *)
