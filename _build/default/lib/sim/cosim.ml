module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Zoo = Twq_nn.Zoo
module Tapwise = Twq_quant.Tapwise
module Qconv = Twq_quant.Qconv
module Rng = Twq_util.Rng

type report = {
  kind : Operator.kind;
  rms_noise : float;
  bitwise_ok : bool;
  checked_values : int;
}

let verify kind (spec : Zoo.conv_spec) ?(batch = 1) ?(seed = 7) () =
  if not (Operator.supports kind spec) then
    invalid_arg ("Cosim.verify: " ^ Operator.kind_name kind ^ " cannot run " ^ spec.Zoo.name);
  let cin = Stdlib.min 16 spec.Zoo.cin and cout = Stdlib.min 16 spec.Zoo.cout in
  let h = Stdlib.min 16 spec.Zoo.out_h and w = Stdlib.min 16 spec.Zoo.out_w in
  let rng = Rng.create seed in
  let pad = spec.Zoo.k / 2 in
  let in_h = ((h - 1) * spec.Zoo.stride) + spec.Zoo.k - (2 * pad) in
  let in_w = ((w - 1) * spec.Zoo.stride) + spec.Zoo.k - (2 * pad) in
  let x = Tensor.rand_gaussian rng [| batch; cin; in_h; in_w |] ~mu:0.0 ~sigma:1.0 in
  let wt =
    Tensor.rand_gaussian rng [| cout; cin; spec.Zoo.k; spec.Zoo.k |] ~mu:0.0 ~sigma:0.3
  in
  let reference = Ops.conv2d ~stride:spec.Zoo.stride ~pad ~x ~w:wt () in
  let run_once () =
    match kind with
    | Operator.Winograd variant ->
        let layer =
          Tapwise.calibrate
            ~config:(Tapwise.default_config variant)
            ~w:wt ~sample_inputs:[ x ] ~pad ()
        in
        let xi =
          Twq_quant.Quantizer.quantize_tensor ~bits:8 ~scale:layer.Tapwise.s_x x
        in
        let yi = Tapwise.forward_int layer xi in
        (Twq_quant.Quantizer.dequantize_tensor ~scale:layer.Tapwise.s_y yi, yi)
    | Operator.Im2col ->
        let layer =
          Qconv.calibrate ~w:wt ~sample_inputs:[ x ] ~stride:spec.Zoo.stride ~pad ()
        in
        let xi =
          Twq_quant.Quantizer.quantize_tensor ~bits:8 ~scale:layer.Qconv.s_x x
        in
        let yi = Qconv.forward_int layer xi in
        (Twq_quant.Quantizer.dequantize_tensor ~scale:layer.Qconv.s_y yi, yi)
  in
  let y1, yi1 = run_once () in
  let _, yi2 = run_once () in
  let err = Tensor.sub reference y1 in
  {
    kind;
    rms_noise = sqrt (Tensor.sumsq err /. Float.max 1e-30 (Tensor.sumsq reference));
    bitwise_ok = Itensor.equal yi1 yi2;
    checked_values = Tensor.numel reference;
  }
