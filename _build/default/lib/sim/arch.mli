(** Architectural parameters of the simulated accelerator system
    (Sec. IV-A / V-B1 of the paper). *)

type t = {
  n_cores : int;                    (** 2 AI cores *)
  cube_m : int;                     (** Cube output rows (16) *)
  cube_n : int;                     (** Cube output cols (16) *)
  cube_k : int;                     (** Cube reduction depth (32) *)
  vector_bytes_per_cycle : int;     (** 256-B Vector Unit *)
  dram_bw : float;                  (** bytes/cycle to GM (81.2 ≈ 0.8·51.2 GB/s) *)
  dram_latency : float;             (** mean request latency in core cycles *)
  dram_jitter_sigma : float;        (** Gaussian jitter σ *)
  cout_block : int;                 (** output channels computed at a time per core *)
  spatial_block : int;              (** output-tile block edge (pixels) *)
  block_overhead_cycles : float;    (** dispatch/sync cost per inner block *)
  ifm_reuse_outputs : int;          (** transformed-iFM reuse across couts (4×16) *)
  broadcast : bool;                 (** Broadcast Unit shares iFM reads between cores *)
  buffer_depth : int;               (** L1 input buffers (2 = plain double buffering) *)
  seed : int;
}

val default : t

val macs_per_cycle : t -> int
(** Cube MACs per cycle (16·16·32 = 8192). *)

val scale_bandwidth : t -> float -> t
(** Multiply the DRAM bandwidth (the paper's DDR5 = 1.5× study). *)
