module Transform = Twq_winograd.Transform
module Zoo = Twq_nn.Zoo
module Engine = Twq_hw.Engine
module Area_power = Twq_hw.Area_power
module Rng = Twq_util.Rng

type kind = Im2col | Winograd of Transform.variant

let kind_name = function
  | Im2col -> "im2col"
  | Winograd v -> "winograd-" ^ Transform.name v

let supports kind (l : Zoo.conv_spec) =
  match kind with
  | Im2col -> true
  | Winograd _ -> l.Zoo.k = 3 && l.Zoo.stride = 1

type traffic = {
  mutable gm_rd_ifm : float;
  mutable gm_rd_wt : float;
  mutable gm_wr_ofm : float;
  mutable l1_wr_ifm : float;
  mutable l1_rd_ifm : float;
  mutable l1_wr_wt : float;
  mutable l1_rd_wt : float;
  mutable l0a_wr : float;
  mutable l0a_rd : float;
  mutable l0b_wr : float;
  mutable l0b_rd : float;
  mutable l0c_wr : float;
  mutable l0c_rd_acc : float;
  mutable l0c_rd_fixpipe : float;
  mutable ub_bytes : float;
}

let zero_traffic () =
  {
    gm_rd_ifm = 0.0; gm_rd_wt = 0.0; gm_wr_ofm = 0.0;
    l1_wr_ifm = 0.0; l1_rd_ifm = 0.0; l1_wr_wt = 0.0; l1_rd_wt = 0.0;
    l0a_wr = 0.0; l0a_rd = 0.0; l0b_wr = 0.0; l0b_rd = 0.0;
    l0c_wr = 0.0; l0c_rd_acc = 0.0; l0c_rd_fixpipe = 0.0; ub_bytes = 0.0;
  }

type energy = {
  e_cube : float;
  e_engines : float;
  e_vector : float;
  e_sram : float;
  e_dram : float;
  e_total : float;
}

type result = {
  kind : kind;
  cycles : float;
  macs : float;
  cube_busy : float;
  busy : (string * float) list;
  trace : (string * (float * float * string) list) list;
      (* per-resource chronological (start, finish, label) events *)
  traffic : traffic;
  energy : energy;
}

let cdiv a b = (a + b - 1) / b

(* Transformation-engine design points per variant (the F4 ones are the
   paper's; F2 uses the same parallelism budget). *)
let input_engine variant =
  { Area_power.input_engine with Engine.variant }

let output_engine variant =
  { Area_power.output_engine with Engine.variant }

let weight_engine variant =
  { Area_power.weight_engine with Engine.variant }

let engine_cycles cfg ~xforms =
  let per = Engine.cycles_per_xform cfg in
  let par = Engine.parallel_xforms cfg in
  float_of_int (cdiv xforms par * per)

let run arch kind (l : Zoo.conv_spec) ~batch =
  if not (supports kind l) then
    invalid_arg ("Operator.run: " ^ kind_name kind ^ " cannot run " ^ l.Zoo.name);
  let rng = Rng.create (arch.Arch.seed + (l.Zoo.cin * 131) + l.Zoo.cout) in
  let out_h = l.Zoo.out_h and out_w = l.Zoo.out_w in
  let cin = l.Zoo.cin and cout = l.Zoo.cout in
  let k = l.Zoo.k and stride = l.Zoo.stride in
  let cout_core = cdiv cout arch.Arch.n_cores in
  let cout_blk_full = Stdlib.min arch.Arch.cout_block cout_core in
  let n_cout_blk = cdiv cout_core cout_blk_full in
  let bh_full = Stdlib.min arch.Arch.spatial_block out_h in
  let bw_full = Stdlib.min arch.Arch.spatial_block out_w in
  let n_bh = cdiv out_h bh_full and n_bw = cdiv out_w bw_full in
  (* Resources: shared DRAM channel; per-core units (we simulate core 0 and
     account the second core through shared-DRAM traffic). *)
  let dram = Des.resource "dram" in
  let mte1 = Des.resource "in-xform" in
  let wt_eng = Des.resource "wt-xform" in
  let cube = Des.resource "cube" in
  let fixpipe = Des.resource "out-xform" in
  let vector = Des.resource "vector" in
  let mte3 = Des.resource "write" in
  let traffic = zero_traffic () in
  let latency () =
    arch.Arch.dram_latency
    +. Float.abs (Rng.gaussian rng ~mu:0.0 ~sigma:arch.Arch.dram_jitter_sigma)
  in
  let n_cores_f = float_of_int arch.Arch.n_cores in
  (* --- weight phase for one cout block (all cores load in parallel over
     the shared channel; each core transforms its own weights). *)
  let weight_phase ~ready ~cb ~cout_blk =
    let bytes_core = float_of_int (cin * cout_blk * k * k) in
    let bytes_all = bytes_core *. n_cores_f in
    traffic.gm_rd_wt <- traffic.gm_rd_wt +. bytes_all;
    traffic.l0b_wr <- traffic.l0b_wr +. bytes_all;
    let t_dma =
      Des.exec ~label:(Printf.sprintf "wt-dma cb%d" cb) dram ~ready
        ~duration:(bytes_all /. arch.Arch.dram_bw)
    in
    match kind with
    | Im2col ->
        (* Weights go straight to L0B; reused from there. *)
        t_dma +. latency ()
    | Winograd variant ->
        traffic.l0b_rd <- traffic.l0b_rd +. bytes_all;
        let taps = Transform.t variant * Transform.t variant in
        traffic.l1_wr_wt <-
          traffic.l1_wr_wt +. float_of_int (cin * cout_blk * taps) *. n_cores_f;
        let xforms = cin * cout_blk in
        let dur = engine_cycles (weight_engine variant) ~xforms in
        (* L0B is double-buffered: the transformation starts as soon as the
           first weight chunk lands, overlapping the rest of the DMA. *)
        let dma_dur = bytes_all /. arch.Arch.dram_bw in
        let first_chunk = t_dma -. (0.875 *. dma_dur) +. latency () in
        Float.max (t_dma +. latency ())
          (Des.exec ~label:(Printf.sprintf "wt-xform cb%d" cb) wt_eng
             ~ready:first_chunk ~duration:dur)
  in
  (* --- cube cycles for one spatial block. *)
  let cube_cycles ~bh ~bw ~cout_blk =
    match kind with
    | Im2col ->
        let rows = bh * bw in
        float_of_int
          (cdiv rows arch.Arch.cube_m
          * cdiv (cin * k * k) arch.Arch.cube_k
          * cdiv cout_blk arch.Arch.cube_n)
    | Winograd variant ->
        let m = Transform.m variant in
        let taps = Transform.t variant * Transform.t variant in
        let tiles = cdiv bh m * cdiv bw m in
        float_of_int
          (taps * cdiv tiles arch.Arch.cube_m
          * cdiv cin arch.Arch.cube_k
          * cdiv cout_blk arch.Arch.cube_n)
  in
  let in_xform_cycles ~bh ~bw =
    match kind with
    | Im2col ->
        (* The im2col engine is sized to feed the Cube; it rides along. *)
        cube_cycles ~bh ~bw ~cout_blk:cout_blk_full *. 0.5
    | Winograd variant ->
        let m = Transform.m variant in
        let tiles = cdiv bh m * cdiv bw m in
        engine_cycles (input_engine variant) ~xforms:(tiles * cin)
  in
  let out_xform_cycles ~bh ~bw ~cout_blk =
    match kind with
    | Im2col ->
        (* FixPipe just moves/requantizes rows. *)
        float_of_int (bh * bw * cout_blk * 4) /. 256.0
    | Winograd variant ->
        let m = Transform.m variant in
        let tiles = cdiv bh m * cdiv bw m in
        engine_cycles (output_engine variant) ~xforms:(tiles * cout_blk)
  in
  (* --- main loop: weight-stationary over cout blocks; spatial blocks
     stream through a double-buffered pipeline. *)
  let finish = ref 0.0 in
  let pending_writes = Queue.create () in
  (* L1 input buffering: a load may start once the block [depth] iterations
     back has been consumed (double buffering + prefetch, Sec. IV-B2). *)
  let buffer_depth = Stdlib.max 1 arch.Arch.buffer_depth in
  let cube_done_hist = Queue.create () in
  let buffer_ready () =
    if Queue.length cube_done_hist < buffer_depth then 0.0
    else Queue.peek cube_done_hist
  in
  let push_cube_done t =
    Queue.push t cube_done_hist;
    if Queue.length cube_done_hist > buffer_depth then ignore (Queue.pop cube_done_hist)
  in
  let wt_ready = ref 0.0 in
  for cb = 0 to n_cout_blk - 1 do
    let cout_blk =
      if cb = n_cout_blk - 1 then cout_core - (cb * cout_blk_full)
      else cout_blk_full
    in
    wt_ready := weight_phase ~ready:!wt_ready ~cb ~cout_blk;
    for b = 0 to batch - 1 do
      ignore b;
      for bi = 0 to n_bh - 1 do
        let bh = if bi = n_bh - 1 then out_h - (bi * bh_full) else bh_full in
        for bj = 0 to n_bw - 1 do
          let bw = if bj = n_bw - 1 then out_w - (bj * bw_full) else bw_full in
          (* iFM load: the Broadcast Unit shares the stream between cores;
             without it each core fetches its own copy. *)
          let in_bytes =
            float_of_int (((bh * stride) + k - 1) * ((bw * stride) + k - 1) * cin)
            *. (if arch.Arch.broadcast then 1.0 else n_cores_f)
          in
          traffic.gm_rd_ifm <- traffic.gm_rd_ifm +. in_bytes;
          traffic.l1_wr_ifm <- traffic.l1_wr_ifm +. in_bytes;
          let blk_label = Printf.sprintf "cb%d b%d (%d,%d)" cb b bi bj in
          let t_in =
            Des.exec ~label:("ifm " ^ blk_label) dram ~ready:(buffer_ready ())
              ~duration:(in_bytes /. arch.Arch.dram_bw)
            +. latency ()
          in
          (* Drain one buffered write behind the read we just issued. *)
          (if not (Queue.is_empty pending_writes) then begin
             let ready, bytes = Queue.pop pending_writes in
             finish :=
               Float.max !finish
                 (Des.exec ~label:"ofm write" dram ~ready
                    ~duration:(bytes /. arch.Arch.dram_bw))
           end);
          (* Input transform overlaps the Cube at 16-tile granularity: the
             Cube is throttled by the slower of the two. *)
          let x_cycles = in_xform_cycles ~bh ~bw in
          let c_cycles = cube_cycles ~bh ~bw ~cout_blk in
          let t_xform =
            Des.exec ~label:("in-xform " ^ blk_label) mte1 ~ready:t_in
              ~duration:x_cycles
          in
          ignore t_xform;
          let cube_dur =
            Float.max c_cycles x_cycles +. arch.Arch.block_overhead_cycles
          in
          let t_cube =
            Des.exec ~label:("cube " ^ blk_label) cube
              ~ready:(Float.max t_in !wt_ready)
              ~duration:cube_dur
          in
          push_cube_done t_cube;
          let t_fix =
            Des.exec ~label:("out-xform " ^ blk_label) fixpipe ~ready:t_cube
              ~duration:(out_xform_cycles ~bh ~bw ~cout_blk)
          in
          let out_bytes_core = float_of_int (bh * bw * cout_blk) in
          let t_vec =
            Des.exec ~label:("requant " ^ blk_label) vector ~ready:t_fix
              ~duration:
                (out_bytes_core /. float_of_int arch.Arch.vector_bytes_per_cycle)
          in
          let out_bytes_all = out_bytes_core *. n_cores_f in
          traffic.gm_wr_ofm <- traffic.gm_wr_ofm +. out_bytes_all;
          let t_wr = Des.exec mte3 ~ready:t_vec ~duration:0.0 in
          (* Writes are decoupled from reads (Sec. IV-B2): buffer them and
             let the next read go first, so reads keep priority on the
             shared channel. *)
          Queue.push (t_wr, out_bytes_all) pending_writes;
          finish := Float.max !finish t_wr
        done
      done
    done
  done;
  (* Flush the remaining buffered writes. *)
  Queue.iter
    (fun (ready, bytes) ->
      finish :=
        Float.max !finish
          (Des.exec ~label:"ofm write" dram ~ready
             ~duration:(bytes /. arch.Arch.dram_bw)))
    pending_writes;
  (* --- traffic totals that do not depend on the event schedule. *)
  let out_positions = float_of_int (batch * out_h * out_w) in
  let expansion =
    match kind with
    | Im2col -> float_of_int (k * k)
    | Winograd variant ->
        let m = float_of_int (Transform.m variant) in
        let t = m +. 2.0 in
        t *. t /. (m *. m)
  in
  traffic.l1_rd_ifm <- out_positions *. float_of_int cin *. expansion /. float_of_int (stride * stride);
  traffic.l0a_wr <- traffic.l1_rd_ifm;
  let cube_total = Des.busy_cycles cube *. n_cores_f in
  let a_bytes_per_cycle = float_of_int (arch.Arch.cube_m * arch.Arch.cube_k) in
  let b_bytes_per_cycle = float_of_int (arch.Arch.cube_k * arch.Arch.cube_n) in
  traffic.l0a_rd <- cube_total *. a_bytes_per_cycle;
  (match kind with
  | Im2col -> traffic.l0b_rd <- cube_total *. b_bytes_per_cycle
  | Winograd _ -> traffic.l1_rd_wt <- cube_total *. b_bytes_per_cycle);
  let acc_bytes = cube_total *. float_of_int (arch.Arch.cube_m * arch.Arch.cube_n * 4) in
  let k_steps =
    match kind with
    | Im2col -> cdiv (cin * k * k) arch.Arch.cube_k
    | Winograd _ -> cdiv cin arch.Arch.cube_k
  in
  traffic.l0c_wr <- acc_bytes;
  traffic.l0c_rd_acc <-
    acc_bytes *. float_of_int (Stdlib.max 0 (k_steps - 1)) /. float_of_int k_steps;
  traffic.l0c_rd_fixpipe <-
    (match kind with
    | Im2col -> out_positions *. float_of_int cout *. 4.0
    | Winograd variant ->
        let m = float_of_int (Transform.m variant) in
        let t = m +. 2.0 in
        out_positions /. (m *. m) *. t *. t *. float_of_int cout *. 4.0);
  traffic.ub_bytes <- 2.0 *. out_positions *. float_of_int cout;
  (* --- energy. *)
  let engine_variant = match kind with Winograd v -> Some v | Im2col -> None in
  let e_cube =
    Area_power.energy_pj_of_cycles
      ~power_mw:
        (match kind with
        | Im2col -> Area_power.cube_power_mw_im2col
        | Winograd _ -> Area_power.cube_power_mw_winograd)
      cube_total
  in
  let e_engines =
    match engine_variant with
    | None ->
        Area_power.energy_pj_of_cycles ~power_mw:Area_power.im2col_engine_power_mw
          (Des.busy_cycles mte1 *. n_cores_f)
    | Some v ->
        Area_power.energy_pj_of_cycles
          ~power_mw:(Area_power.engine_power_mw (input_engine v))
          (Des.busy_cycles mte1 *. n_cores_f)
        +. Area_power.energy_pj_of_cycles
             ~power_mw:(Area_power.engine_power_mw (weight_engine v))
             (Des.busy_cycles wt_eng *. n_cores_f)
        +. Area_power.energy_pj_of_cycles
             ~power_mw:(Area_power.engine_power_mw (output_engine v))
             (Des.busy_cycles fixpipe *. n_cores_f)
  in
  let e_vector =
    Area_power.energy_pj_of_cycles ~power_mw:Area_power.vector_power_mw
      (Des.busy_cycles vector *. n_cores_f)
  in
  let rd m b = Area_power.rd_pj_per_byte m *. b in
  let wr m b = Area_power.wr_pj_per_byte m *. b in
  let portb =
    match kind with
    | Im2col -> Area_power.L0C_portB_im2col
    | Winograd _ -> Area_power.L0C_portB_winograd
  in
  let e_sram =
    wr Area_power.L1 traffic.l1_wr_ifm
    +. rd Area_power.L1 traffic.l1_rd_ifm
    +. wr Area_power.L1 traffic.l1_wr_wt
    +. rd Area_power.L1 traffic.l1_rd_wt
    +. wr Area_power.L0A traffic.l0a_wr
    +. rd Area_power.L0A traffic.l0a_rd
    +. wr Area_power.L0B traffic.l0b_wr
    +. rd Area_power.L0B traffic.l0b_rd
    +. wr Area_power.L0C_portA traffic.l0c_wr
    +. rd Area_power.L0C_portA traffic.l0c_rd_acc
    +. rd portb traffic.l0c_rd_fixpipe
    +. (rd Area_power.UB traffic.ub_bytes /. 2.0)
    +. (wr Area_power.UB traffic.ub_bytes /. 2.0)
  in
  let e_dram =
    rd Area_power.GM (traffic.gm_rd_ifm +. traffic.gm_rd_wt)
    +. wr Area_power.GM traffic.gm_wr_ofm
  in
  let e_total = e_cube +. e_engines +. e_vector +. e_sram +. e_dram in
  let macs =
    float_of_int batch *. float_of_int (out_h * out_w * cin * cout * k * k)
  in
  let rep = float_of_int l.Zoo.repeat in
  let scale_traffic t =
    t.gm_rd_ifm <- t.gm_rd_ifm *. rep;
    t.gm_rd_wt <- t.gm_rd_wt *. rep;
    t.gm_wr_ofm <- t.gm_wr_ofm *. rep;
    t.l1_wr_ifm <- t.l1_wr_ifm *. rep;
    t.l1_rd_ifm <- t.l1_rd_ifm *. rep;
    t.l1_wr_wt <- t.l1_wr_wt *. rep;
    t.l1_rd_wt <- t.l1_rd_wt *. rep;
    t.l0a_wr <- t.l0a_wr *. rep;
    t.l0a_rd <- t.l0a_rd *. rep;
    t.l0b_wr <- t.l0b_wr *. rep;
    t.l0b_rd <- t.l0b_rd *. rep;
    t.l0c_wr <- t.l0c_wr *. rep;
    t.l0c_rd_acc <- t.l0c_rd_acc *. rep;
    t.l0c_rd_fixpipe <- t.l0c_rd_fixpipe *. rep;
    t.ub_bytes <- t.ub_bytes *. rep
  in
  scale_traffic traffic;
  {
    kind;
    cycles = !finish *. rep;
    macs = macs *. rep;
    cube_busy = Des.busy_cycles cube *. rep;
    busy =
      List.map
        (fun r -> (Des.name r, Des.busy_cycles r *. rep))
        [ dram; mte1; wt_eng; cube; fixpipe; vector; mte3 ];
    trace =
      List.map
        (fun r -> (Des.name r, Des.events r))
        [ dram; mte1; wt_eng; cube; fixpipe; vector ];
    traffic;
    energy =
      {
        e_cube = e_cube *. rep;
        e_engines = e_engines *. rep;
        e_vector = e_vector *. rep;
        e_sram = e_sram *. rep;
        e_dram = e_dram *. rep;
        e_total = e_total *. rep;
      };
  }

let speedup ~baseline r = baseline.cycles /. r.cycles
