(** Minimal discrete-event resource-timeline engine.

    Each hardware unit (Cube, MTEs, transformation engines, the shared DRAM
    channel) is a {!resource} with a busy-until time; a task executes as
    soon as both its data dependencies ([ready]) and its resource are free.
    Double buffering and token synchronisation are expressed by the callers
    through the [ready] times they thread between tasks — exactly the
    decoupled access/execute behaviour of the modelled core. *)

type resource

val resource : string -> resource
val name : resource -> string

val exec : ?label:string -> resource -> ready:float -> duration:float -> float
(** Run a task: starts at [max ready busy_until], occupies the resource for
    [duration] cycles, returns the finish time.  Non-zero-duration tasks are
    recorded (with [label]) for {!events}. *)

val busy_cycles : resource -> float
(** Total cycles this resource spent executing (for breakdowns). *)

val events : resource -> (float * float * string) list
(** Chronological [(start, finish, label)] records of executed tasks — the
    raw material of the execution trace. *)

val reset : resource -> unit
