(** Full-network execution on the simulated accelerator (Table VII).

    A network runs under one of three operator policies; as in the paper,
    the compiler picks the best kernel per layer, so the Winograd policies
    fall back to im2col on any layer where Winograd would be slower or is
    unsupported (1×1, strided, large kernels). *)

type policy =
  | P_im2col
  | P_winograd of Twq_winograd.Transform.variant  (** best of {im2col, F_m} per layer *)

val policy_name : policy -> string

type layer_choice = {
  layer : Twq_nn.Zoo.conv_spec;
  chosen : Operator.kind;
  result : Operator.result;
}

type run = {
  network : Twq_nn.Zoo.network;
  batch : int;
  policy : policy;
  layers : layer_choice list;
  total_cycles : float;
  throughput_imgs_per_s : float;
  energy_pj : float;
  inferences_per_joule : float;
}

val run : Arch.t -> policy -> Twq_nn.Zoo.network -> batch:int -> run

val winograd_layer_speedup :
  Arch.t -> Twq_winograd.Transform.variant -> Twq_nn.Zoo.network -> batch:int -> float
(** Geometric-mean speed-up of the Winograd-eligible layers only (the
    paper's parenthesised per-layer numbers in Table VII). *)
