module Graph = Twq_nn.Graph
module Zoo = Twq_nn.Zoo
module Tensor = Twq_tensor.Tensor
module Transform = Twq_winograd.Transform

type choice = {
  node : Graph.id;
  spec : Zoo.conv_spec;
  kind : Operator.kind;
  cycles : float;
  im2col_cycles : float;
}

let select arch g ~input ?(candidates = [ Transform.F2; Transform.F4 ]) () =
  let shapes = Graph.infer_shapes g ~input in
  let batch = input.(0) in
  List.filter_map
    (fun (id, { Graph.op; inputs }) ->
      match op with
      | Graph.Conv { w; stride; _ } ->
          let in_shape = List.assoc (List.hd inputs) shapes in
          let out_shape = List.assoc id shapes in
          let spec =
            {
              Zoo.name = Printf.sprintf "conv#%d" (id :> int);
              cin = in_shape.(1);
              cout = out_shape.(1);
              out_h = out_shape.(2);
              out_w = out_shape.(3);
              k = Tensor.dim w 2;
              stride;
              repeat = 1;
            }
          in
          let im2col = Operator.run arch Operator.Im2col spec ~batch in
          let best =
            List.fold_left
              (fun (best_kind, best_cycles) v ->
                let kind = Operator.Winograd v in
                if Operator.supports kind spec then begin
                  let r = Operator.run arch kind spec ~batch in
                  if r.Operator.cycles < best_cycles then (kind, r.Operator.cycles)
                  else (best_kind, best_cycles)
                end
                else (best_kind, best_cycles))
              (Operator.Im2col, im2col.Operator.cycles)
              candidates
          in
          Some
            {
              node = id;
              spec;
              kind = fst best;
              cycles = snd best;
              im2col_cycles = im2col.Operator.cycles;
            }
      | _ -> None)
    (Graph.nodes g)

let total_cycles choices = List.fold_left (fun a c -> a +. c.cycles) 0.0 choices

let speedup_vs_im2col choices =
  List.fold_left (fun a c -> a +. c.im2col_cycles) 0.0 choices
  /. Float.max 1.0 (total_cycles choices)
