lib/sim/cosim.ml: Float Operator Stdlib Twq_nn Twq_quant Twq_tensor Twq_util
