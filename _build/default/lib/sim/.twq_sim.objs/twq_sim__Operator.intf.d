lib/sim/operator.mli: Arch Twq_nn Twq_winograd
