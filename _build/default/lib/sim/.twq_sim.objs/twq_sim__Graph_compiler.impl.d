lib/sim/graph_compiler.ml: Array Float List Operator Printf Twq_nn Twq_tensor Twq_winograd
