lib/sim/des.ml: Float List
