lib/sim/graph_compiler.mli: Arch Operator Twq_nn Twq_tensor Twq_winograd
