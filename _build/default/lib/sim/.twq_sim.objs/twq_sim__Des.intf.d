lib/sim/des.mli:
