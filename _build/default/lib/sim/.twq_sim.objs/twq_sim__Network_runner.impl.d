lib/sim/network_runner.ml: Array List Operator Twq_hw Twq_nn Twq_util Twq_winograd
