lib/sim/cosim.mli: Operator Twq_nn
