lib/sim/arch.mli:
