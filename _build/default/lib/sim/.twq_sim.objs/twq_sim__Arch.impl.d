lib/sim/arch.ml:
