lib/sim/operator.ml: Arch Des Float List Printf Queue Stdlib Twq_hw Twq_nn Twq_util Twq_winograd
