lib/sim/trace.ml: Buffer Float Fun List Operator Printf String
