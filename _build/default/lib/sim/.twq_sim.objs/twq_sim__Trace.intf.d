lib/sim/trace.mli: Operator
