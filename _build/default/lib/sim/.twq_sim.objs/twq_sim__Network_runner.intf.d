lib/sim/network_runner.mli: Arch Operator Twq_nn Twq_winograd
