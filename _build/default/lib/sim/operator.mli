(** Conv2D operator simulation on the dual-core DSA (Sec. IV-B2).

    Executes the double-buffered, weight-stationary dataflow of Listing 1 on
    a resource-timeline model: shared DRAM channel (with latency + Gaussian
    jitter), per-core MTE1 transformation engines, Cube Unit, FixPipe /
    output engine, Vector Unit and MTE3 write path.  Produces end-to-end
    cycles, per-resource busy breakdowns (Fig. 5), memory-traffic counts
    (Fig. 6) and the energy estimate used by Table VII. *)

type kind = Im2col | Winograd of Twq_winograd.Transform.variant

val kind_name : kind -> string

val supports : kind -> Twq_nn.Zoo.conv_spec -> bool
(** Winograd only handles 3×3 stride-1 layers. *)

type traffic = {
  mutable gm_rd_ifm : float;
  mutable gm_rd_wt : float;
  mutable gm_wr_ofm : float;
  mutable l1_wr_ifm : float;
  mutable l1_rd_ifm : float;
  mutable l1_wr_wt : float;
  mutable l1_rd_wt : float;
  mutable l0a_wr : float;
  mutable l0a_rd : float;
  mutable l0b_wr : float;
  mutable l0b_rd : float;
  mutable l0c_wr : float;
  mutable l0c_rd_acc : float;
  mutable l0c_rd_fixpipe : float;
  mutable ub_bytes : float;
}
(** All values in bytes, summed over the whole layer and both cores. *)

type energy = {
  e_cube : float;
  e_engines : float;
  e_vector : float;
  e_sram : float;
  e_dram : float;
  e_total : float;
}
(** picojoules. *)

type result = {
  kind : kind;
  cycles : float;             (** end-to-end cycles for the layer *)
  macs : float;               (** spatial-domain MACs *)
  cube_busy : float;
  busy : (string * float) list;  (** per-resource busy cycles *)
  trace : (string * (float * float * string) list) list;
      (** per-resource chronological [(start, finish, label)] task records
          — export with {!Trace.to_chrome_json} *)
  traffic : traffic;
  energy : energy;
}

val run : Arch.t -> kind -> Twq_nn.Zoo.conv_spec -> batch:int -> result
(** Simulate one layer.  [repeat] in the spec multiplies the result.
    @raise Invalid_argument if the kind does not support the layer. *)

val speedup : baseline:result -> result -> float
(** [baseline.cycles / r.cycles]. *)
