type resource = {
  name : string;
  mutable busy_until : float;
  mutable busy : float;
  mutable events : (float * float * string) list;  (* reversed *)
}

let resource name = { name; busy_until = 0.0; busy = 0.0; events = [] }
let name r = r.name

let exec ?(label = "") r ~ready ~duration =
  if duration < 0.0 then invalid_arg "Des.exec: negative duration";
  let start = Float.max ready r.busy_until in
  let finish = start +. duration in
  r.busy_until <- finish;
  r.busy <- r.busy +. duration;
  if duration > 0.0 then r.events <- (start, finish, label) :: r.events;
  finish

let busy_cycles r = r.busy

let events r = List.rev r.events

let reset r =
  r.busy_until <- 0.0;
  r.busy <- 0.0;
  r.events <- []
