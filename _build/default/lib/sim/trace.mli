(** Execution-trace export.

    Turns the per-resource task records of an {!Operator.result} into the
    Chrome trace-event JSON format (load in [chrome://tracing] or Perfetto)
    or a plain-text timeline — the inspection workflow an event-based
    simulator owes its users. *)

val to_chrome_json : Operator.result -> string
(** One Chrome trace with a "thread" per hardware resource; timestamps are
    cycles (encoded as microseconds). *)

val to_text : ?max_events:int -> Operator.result -> string
(** Human-readable timeline, chronological across resources. *)

val save_chrome_json : Operator.result -> string -> unit
