(** Operator selection for graph models — "the compiler can select the best
    computational kernel for each layer" (Sec. V-B5).

    For every convolution of a {!Twq_nn.Graph.t}, simulate the candidate
    operators (im2col, Winograd F2, Winograd F4) on the layer's inferred
    shape and pick the fastest. *)

type choice = {
  node : Twq_nn.Graph.id;
  spec : Twq_nn.Zoo.conv_spec;
  kind : Operator.kind;
  cycles : float;
  im2col_cycles : float;
}

val select :
  Arch.t ->
  Twq_nn.Graph.t ->
  input:Twq_tensor.Shape.t ->
  ?candidates:Twq_winograd.Transform.variant list ->
  unit ->
  choice list
(** One entry per conv node, in graph order.  [candidates] defaults to
    [\[F2; F4\]]. *)

val total_cycles : choice list -> float
val speedup_vs_im2col : choice list -> float
