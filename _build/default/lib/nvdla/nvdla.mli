(** Analytical performance model of an NVDLA-v1 multi-engine system
    (the Table VI comparator).

    Eight independent NVDLA engines (1 TOp/s each at 1 GHz, 512 kB
    convolution buffer per engine) running either the direct convolution or
    the Winograd F(2,3) kernel in FP16.  Key modelled behaviours, from the
    paper's Sec. V-B4:

    - Winograd weights are transformed {e offline}, inflating weight
      traffic by [4²/3² ≈ 1.78×];
    - when a layer's input feature map exceeds the convolution buffer it is
      processed in chunks and the (large, transformed) weights are
      re-fetched per chunk, which can make Winograd slower than direct
      convolution under a realistic bandwidth;
    - each engine works on its own batch slice and fetches its own weight
      copy. *)

type config = {
  n_engines : int;
  macs_per_s_per_engine : float;   (** 1e12 ("1 TOp/s", op = MAC) *)
  cb_bytes : int;                  (** convolution buffer per engine *)
  word_bytes : int;                (** 2 (FP16) *)
  bandwidth_words_per_s : float;
  wino_util : float;               (** Winograd datapath utilisation *)
  direct_util : float;
}

val default : bandwidth_words_per_s:float -> config
(** 8 engines, 1 TMAC/s each, 512 kB CB, FP16. *)

type kernel = Direct | Winograd_f2

type estimate = {
  kernel : kernel;
  compute_s : float;
  memory_s : float;
  time_s : float;           (** max of the two (roofline) *)
  weight_refetch : float;   (** weight re-read factor due to CB spills *)
  traffic_words : float;
}

val run : config -> kernel -> Twq_nn.Zoo.conv_spec -> batch:int -> estimate

val best : config -> Twq_nn.Zoo.conv_spec -> batch:int -> estimate
(** The better of the two kernels (NVDLA's compiler picks per layer). *)
