module Zoo = Twq_nn.Zoo

type config = {
  n_engines : int;
  macs_per_s_per_engine : float;
  cb_bytes : int;
  word_bytes : int;
  bandwidth_words_per_s : float;
  wino_util : float;
  direct_util : float;
}

let default ~bandwidth_words_per_s =
  {
    n_engines = 8;
    macs_per_s_per_engine = 1e12;
    cb_bytes = 512 * 1024;
    word_bytes = 2;
    bandwidth_words_per_s;
    wino_util = 0.9;
    direct_util = 0.95;
  }

type kernel = Direct | Winograd_f2

type estimate = {
  kernel : kernel;
  compute_s : float;
  memory_s : float;
  time_s : float;
  weight_refetch : float;
  traffic_words : float;
}

let run cfg kernel (l : Zoo.conv_spec) ~batch =
  if kernel = Winograd_f2 && not (Zoo.winograd_eligible l) then
    invalid_arg "Nvdla.run: Winograd F2 requires 3x3 stride-1 layers";
  let macs = Zoo.macs ~batch l in
  let peak = float_of_int cfg.n_engines *. cfg.macs_per_s_per_engine in
  let compute_s =
    match kernel with
    | Direct -> macs /. (peak *. cfg.direct_util)
    | Winograd_f2 -> macs /. 2.25 /. (peak *. cfg.wino_util)
  in
  let in_h = ((l.Zoo.out_h - 1) * l.Zoo.stride) + l.Zoo.k in
  let in_w = ((l.Zoo.out_w - 1) * l.Zoo.stride) + l.Zoo.k in
  let ifm_words_img = float_of_int (in_h * in_w * l.Zoo.cin) in
  let ifm_bytes_img = ifm_words_img *. float_of_int cfg.word_bytes in
  (* CB spill: chunked iFM forces full weight re-fetches per chunk. *)
  let weight_refetch =
    if ifm_bytes_img > float_of_int cfg.cb_bytes then
      2.0 *. Float.ceil (ifm_bytes_img /. float_of_int cfg.cb_bytes)
    else 1.0
  in
  let wt_words =
    let base = float_of_int (l.Zoo.cin * l.Zoo.cout * l.Zoo.k * l.Zoo.k) in
    match kernel with
    | Direct -> base
    | Winograd_f2 -> base *. 16.0 /. 9.0  (* offline-transformed weights *)
  in
  let ofm_words = float_of_int (batch * l.Zoo.out_h * l.Zoo.out_w * l.Zoo.cout) in
  let traffic_words =
    (wt_words *. float_of_int cfg.n_engines *. weight_refetch)
    +. (ifm_words_img *. float_of_int batch)
    +. ofm_words
  in
  let memory_s = traffic_words /. cfg.bandwidth_words_per_s in
  {
    kernel;
    compute_s;
    memory_s;
    time_s = Float.max compute_s memory_s;
    weight_refetch;
    traffic_words = traffic_words *. float_of_int l.Zoo.repeat;
  }

let best cfg l ~batch =
  let direct = run cfg Direct l ~batch in
  if Zoo.winograd_eligible l then begin
    let wino = run cfg Winograd_f2 l ~batch in
    if wino.time_s < direct.time_s then wino else direct
  end
  else direct
