lib/nvdla/nvdla.mli: Twq_nn
