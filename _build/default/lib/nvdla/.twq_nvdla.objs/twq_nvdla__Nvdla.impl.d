lib/nvdla/nvdla.ml: Float Twq_nn
