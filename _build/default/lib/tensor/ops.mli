(** Neural-network primitives on {!Tensor.t} (inference forward paths).

    Layout conventions: activations are NCHW [\[|n; c; h; w|\]]; convolution
    weights are [\[|c_out; c_in; kh; kw|\]]; matrices are [\[|rows; cols|\]]. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] for 2-D [a : m×k] and [b : k×n]. *)

val transpose : Tensor.t -> Tensor.t
(** 2-D transpose. *)

val pad2d : Tensor.t -> int -> Tensor.t
(** Zero-pad the two spatial dims of an NCHW tensor by [pad] on every side. *)

val conv2d : ?stride:int -> ?pad:int -> x:Tensor.t -> w:Tensor.t -> ?b:Tensor.t -> unit -> Tensor.t
(** Direct (reference) 2-D convolution. [b] has shape [\[|c_out|\]]. *)

val im2col : x:Tensor.t -> kh:int -> kw:int -> stride:int -> pad:int -> Tensor.t
(** Lower an NCHW tensor to the [\[| c_in*kh*kw; n*ho*wo |\]] patch matrix. *)

val conv2d_im2col : ?stride:int -> ?pad:int -> x:Tensor.t -> w:Tensor.t -> ?b:Tensor.t -> unit -> Tensor.t
(** Convolution as im2col + matmul; numerically equal to {!conv2d} (used to
    cross-check and as the accelerator's baseline operator semantics). *)

val relu : Tensor.t -> Tensor.t
val leaky_relu : float -> Tensor.t -> Tensor.t

val max_pool2d : k:int -> stride:int -> Tensor.t -> Tensor.t
val avg_pool2d : k:int -> stride:int -> Tensor.t -> Tensor.t
val global_avg_pool : Tensor.t -> Tensor.t
(** NCHW → [\[|n; c|\]]. *)

val upsample_nearest : int -> Tensor.t -> Tensor.t
(** Scale spatial dims by an integer factor. *)

val batch_norm : x:Tensor.t -> gamma:Tensor.t -> beta:Tensor.t -> mean:Tensor.t -> var:Tensor.t -> eps:float -> Tensor.t
(** Inference-mode batch normalisation; parameter shapes are [\[|c|\]]. *)

val linear : x:Tensor.t -> w:Tensor.t -> ?b:Tensor.t -> unit -> Tensor.t
(** [x : n×k], [w : out×k] (PyTorch convention), bias [\[|out|\]]. *)

val softmax : Tensor.t -> Tensor.t
(** Row-wise softmax of a 2-D tensor. *)

val log_softmax : Tensor.t -> Tensor.t

val concat_channels : Tensor.t -> Tensor.t -> Tensor.t
(** Concatenate two NCHW tensors along C. *)

val argmax_row : Tensor.t -> int -> int
(** Index of the max element of row [i] of a 2-D tensor. *)

val top_k_row : Tensor.t -> int -> int -> int list
(** [top_k_row t i k] — indices of the [k] largest elements of row [i]. *)
