(** Tensor shapes and layout arithmetic (row-major / NCHW convention). *)

type t = int array

val numel : t -> int
val strides : t -> int array
(** Row-major strides. *)

val equal : t -> t -> bool
val to_string : t -> string

val offset : strides:int array -> int array -> int
(** Flat offset of a multi-index. *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive dimensions. *)

val conv2d_out : h:int -> w:int -> kh:int -> kw:int -> stride:int -> pad:int -> int * int
(** Output spatial dims of a 2-D convolution. *)

val pool_out : h:int -> w:int -> k:int -> stride:int -> int * int
(** Output spatial dims of a (non-padded) pooling window. *)
