(** Dense float tensors, row-major, NCHW convention for 4-D data.

    The whole reproduction works on this single concrete representation:
    a flat [float array] plus a shape.  Indexing helpers are provided for
    2-D and 4-D accesses; anything performance-critical (convolutions,
    matmuls) lives in {!Ops} and indexes the flat array directly. *)

type t = { shape : Shape.t; data : float array }

val create : Shape.t -> float -> t
val zeros : Shape.t -> t
val ones : Shape.t -> t
val init : Shape.t -> (int array -> float) -> t
val of_array : Shape.t -> float array -> t
(** Shares (does not copy) the array. @raise Invalid_argument on length
    mismatch. *)

val scalar : float -> t
(** Shape [\[|1|\]]. *)

val copy : t -> t
val numel : t -> int
val rank : t -> int
val dim : t -> int -> int

val reshape : t -> Shape.t -> t
(** Shares data. @raise Invalid_argument if element counts differ. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val get2 : t -> int -> int -> float
val set2 : t -> int -> int -> float -> unit
val get4 : t -> int -> int -> int -> int -> float
val set4 : t -> int -> int -> int -> int -> float -> unit

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val iteri_flat : (int -> float -> unit) -> t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise (Hadamard) product. *)

val scale : float -> t -> t
val neg : t -> t

val sum : t -> float
val dot : t -> t -> float
val sumsq : t -> float
val max_abs : t -> float
val mean : t -> float

val fill : t -> float -> unit
val blit : src:t -> dst:t -> unit

val rand_gaussian : Twq_util.Rng.t -> Shape.t -> mu:float -> sigma:float -> t
val rand_uniform : Twq_util.Rng.t -> Shape.t -> lo:float -> hi:float -> t

val approx_equal : ?tol:float -> t -> t -> bool
(** Same shape and all elements within absolute [tol] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
