let check_rank name t r =
  if Tensor.rank t <> r then
    invalid_arg (Printf.sprintf "%s: expected rank-%d tensor" name r)

let matmul a b =
  check_rank "Ops.matmul" a 2;
  check_rank "Ops.matmul" b 2;
  let m = Tensor.dim a 0 and k = Tensor.dim a 1 in
  let k' = Tensor.dim b 0 and n = Tensor.dim b 1 in
  if k <> k' then invalid_arg "Ops.matmul: inner dims differ";
  let out = Tensor.zeros [| m; n |] in
  let ad = a.Tensor.data and bd = b.Tensor.data and od = out.Tensor.data in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = ad.((i * k) + p) in
      if aip <> 0.0 then begin
        let brow = p * n in
        let orow = i * n in
        for j = 0 to n - 1 do
          od.(orow + j) <- od.(orow + j) +. (aip *. bd.(brow + j))
        done
      end
    done
  done;
  out

let transpose a =
  check_rank "Ops.transpose" a 2;
  let m = Tensor.dim a 0 and n = Tensor.dim a 1 in
  Tensor.init [| n; m |] (fun idx -> Tensor.get2 a idx.(1) idx.(0))

let pad2d x pad =
  check_rank "Ops.pad2d" x 4;
  if pad = 0 then x
  else begin
    let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
    let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
    let out = Tensor.zeros [| n; c; h + (2 * pad); w + (2 * pad) |] in
    for ni = 0 to n - 1 do
      for ci = 0 to c - 1 do
        for hi = 0 to h - 1 do
          for wi = 0 to w - 1 do
            Tensor.set4 out ni ci (hi + pad) (wi + pad) (Tensor.get4 x ni ci hi wi)
          done
        done
      done
    done;
    out
  end

let add_bias out b =
  match b with
  | None -> ()
  | Some b ->
      let n = Tensor.dim out 0 and c = Tensor.dim out 1 in
      let h = Tensor.dim out 2 and w = Tensor.dim out 3 in
      for ni = 0 to n - 1 do
        for ci = 0 to c - 1 do
          let bv = b.Tensor.data.(ci) in
          for hi = 0 to h - 1 do
            for wi = 0 to w - 1 do
              Tensor.set4 out ni ci hi wi (Tensor.get4 out ni ci hi wi +. bv)
            done
          done
        done
      done

let conv2d ?(stride = 1) ?(pad = 0) ~x ~w ?b () =
  check_rank "Ops.conv2d" x 4;
  check_rank "Ops.conv2d" w 4;
  let n = Tensor.dim x 0 and cin = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  let cout = Tensor.dim w 0 and cin' = Tensor.dim w 1 in
  let kh = Tensor.dim w 2 and kw = Tensor.dim w 3 in
  if cin <> cin' then invalid_arg "Ops.conv2d: channel mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh ~kw ~stride ~pad in
  let xp = pad2d x pad in
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  for ni = 0 to n - 1 do
    for co = 0 to cout - 1 do
      for oh = 0 to ho - 1 do
        for ow = 0 to wo - 1 do
          let acc = ref 0.0 in
          for ci = 0 to cin - 1 do
            for ki = 0 to kh - 1 do
              for kj = 0 to kw - 1 do
                acc :=
                  !acc
                  +. Tensor.get4 xp ni ci ((oh * stride) + ki) ((ow * stride) + kj)
                     *. Tensor.get4 w co ci ki kj
              done
            done
          done;
          Tensor.set4 out ni co oh ow !acc
        done
      done
    done
  done;
  add_bias out b;
  out

let im2col ~x ~kh ~kw ~stride ~pad =
  check_rank "Ops.im2col" x 4;
  let n = Tensor.dim x 0 and cin = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let ho, wo = Shape.conv2d_out ~h ~w ~kh ~kw ~stride ~pad in
  let xp = pad2d x pad in
  let rows = cin * kh * kw in
  let cols = n * ho * wo in
  let out = Tensor.zeros [| rows; cols |] in
  for ci = 0 to cin - 1 do
    for ki = 0 to kh - 1 do
      for kj = 0 to kw - 1 do
        let r = (((ci * kh) + ki) * kw) + kj in
        for ni = 0 to n - 1 do
          for oh = 0 to ho - 1 do
            for ow = 0 to wo - 1 do
              let c = (((ni * ho) + oh) * wo) + ow in
              Tensor.set2 out r c
                (Tensor.get4 xp ni ci ((oh * stride) + ki) ((ow * stride) + kj))
            done
          done
        done
      done
    done
  done;
  out

let conv2d_im2col ?(stride = 1) ?(pad = 0) ~x ~w ?b () =
  check_rank "Ops.conv2d_im2col" x 4;
  check_rank "Ops.conv2d_im2col" w 4;
  let n = Tensor.dim x 0 in
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  let kh = Tensor.dim w 2 and kw = Tensor.dim w 3 in
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh ~kw ~stride ~pad in
  let patches = im2col ~x ~kh ~kw ~stride ~pad in
  let wmat = Tensor.reshape w [| cout; cin * kh * kw |] in
  let prod = matmul wmat patches in
  (* prod is [cout; n*ho*wo]; reorder to NCHW. *)
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  for co = 0 to cout - 1 do
    for ni = 0 to n - 1 do
      for oh = 0 to ho - 1 do
        for ow = 0 to wo - 1 do
          Tensor.set4 out ni co oh ow
            (Tensor.get2 prod co ((((ni * ho) + oh) * wo) + ow))
        done
      done
    done
  done;
  add_bias out b;
  out

let relu = Tensor.map (fun v -> if v > 0.0 then v else 0.0)

let leaky_relu alpha =
  Tensor.map (fun v -> if v > 0.0 then v else alpha *. v)

let pool2d ~reduce ~init_v ~finish ~k ~stride x =
  check_rank "Ops.pool2d" x 4;
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let ho, wo = Shape.pool_out ~h ~w ~k ~stride in
  let out = Tensor.zeros [| n; c; ho; wo |] in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      for oh = 0 to ho - 1 do
        for ow = 0 to wo - 1 do
          let acc = ref init_v in
          for ki = 0 to k - 1 do
            for kj = 0 to k - 1 do
              acc := reduce !acc (Tensor.get4 x ni ci ((oh * stride) + ki) ((ow * stride) + kj))
            done
          done;
          Tensor.set4 out ni ci oh ow (finish !acc)
        done
      done
    done
  done;
  out

let max_pool2d ~k ~stride x =
  pool2d ~reduce:Float.max ~init_v:Float.neg_infinity ~finish:Fun.id ~k ~stride x

let avg_pool2d ~k ~stride x =
  let inv = 1.0 /. float_of_int (k * k) in
  pool2d ~reduce:( +. ) ~init_v:0.0 ~finish:(fun v -> v *. inv) ~k ~stride x

let global_avg_pool x =
  check_rank "Ops.global_avg_pool" x 4;
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let inv = 1.0 /. float_of_int (h * w) in
  Tensor.init [| n; c |] (fun idx ->
      let acc = ref 0.0 in
      for hi = 0 to h - 1 do
        for wi = 0 to w - 1 do
          acc := !acc +. Tensor.get4 x idx.(0) idx.(1) hi wi
        done
      done;
      !acc *. inv)

let upsample_nearest factor x =
  check_rank "Ops.upsample_nearest" x 4;
  if factor <= 0 then invalid_arg "Ops.upsample_nearest: factor must be positive";
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  Tensor.init [| n; c; h * factor; w * factor |] (fun idx ->
      Tensor.get4 x idx.(0) idx.(1) (idx.(2) / factor) (idx.(3) / factor))

let batch_norm ~x ~gamma ~beta ~mean ~var ~eps =
  check_rank "Ops.batch_norm" x 4;
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let out = Tensor.zeros x.Tensor.shape in
  for ci = 0 to c - 1 do
    let g = gamma.Tensor.data.(ci) and b = beta.Tensor.data.(ci) in
    let m = mean.Tensor.data.(ci) and v = var.Tensor.data.(ci) in
    let scale = g /. sqrt (v +. eps) in
    for ni = 0 to n - 1 do
      for hi = 0 to h - 1 do
        for wi = 0 to w - 1 do
          Tensor.set4 out ni ci hi wi
            (((Tensor.get4 x ni ci hi wi -. m) *. scale) +. b)
        done
      done
    done
  done;
  out

let linear ~x ~w ?b () =
  check_rank "Ops.linear" x 2;
  check_rank "Ops.linear" w 2;
  let out = matmul x (transpose w) in
  (match b with
  | None -> ()
  | Some b ->
      let n = Tensor.dim out 0 and f = Tensor.dim out 1 in
      for i = 0 to n - 1 do
        for j = 0 to f - 1 do
          Tensor.set2 out i j (Tensor.get2 out i j +. b.Tensor.data.(j))
        done
      done);
  out

let softmax t =
  check_rank "Ops.softmax" t 2;
  let n = Tensor.dim t 0 and f = Tensor.dim t 1 in
  let out = Tensor.zeros t.Tensor.shape in
  for i = 0 to n - 1 do
    let m = ref Float.neg_infinity in
    for j = 0 to f - 1 do
      m := Float.max !m (Tensor.get2 t i j)
    done;
    let z = ref 0.0 in
    for j = 0 to f - 1 do
      let e = exp (Tensor.get2 t i j -. !m) in
      Tensor.set2 out i j e;
      z := !z +. e
    done;
    for j = 0 to f - 1 do
      Tensor.set2 out i j (Tensor.get2 out i j /. !z)
    done
  done;
  out

let log_softmax t =
  check_rank "Ops.log_softmax" t 2;
  let n = Tensor.dim t 0 and f = Tensor.dim t 1 in
  let out = Tensor.zeros t.Tensor.shape in
  for i = 0 to n - 1 do
    let m = ref Float.neg_infinity in
    for j = 0 to f - 1 do
      m := Float.max !m (Tensor.get2 t i j)
    done;
    let z = ref 0.0 in
    for j = 0 to f - 1 do
      z := !z +. exp (Tensor.get2 t i j -. !m)
    done;
    let log_z = !m +. log !z in
    for j = 0 to f - 1 do
      Tensor.set2 out i j (Tensor.get2 t i j -. log_z)
    done
  done;
  out

let concat_channels a b =
  check_rank "Ops.concat_channels" a 4;
  check_rank "Ops.concat_channels" b 4;
  let n = Tensor.dim a 0 and ca = Tensor.dim a 1 in
  let h = Tensor.dim a 2 and w = Tensor.dim a 3 in
  let cb = Tensor.dim b 1 in
  if Tensor.dim b 0 <> n || Tensor.dim b 2 <> h || Tensor.dim b 3 <> w then
    invalid_arg "Ops.concat_channels: incompatible shapes";
  Tensor.init [| n; ca + cb; h; w |] (fun idx ->
      if idx.(1) < ca then Tensor.get4 a idx.(0) idx.(1) idx.(2) idx.(3)
      else Tensor.get4 b idx.(0) (idx.(1) - ca) idx.(2) idx.(3))

let argmax_row t i =
  check_rank "Ops.argmax_row" t 2;
  let f = Tensor.dim t 1 in
  let best = ref 0 in
  for j = 1 to f - 1 do
    if Tensor.get2 t i j > Tensor.get2 t i !best then best := j
  done;
  !best

let top_k_row t i k =
  check_rank "Ops.top_k_row" t 2;
  let f = Tensor.dim t 1 in
  let idx = Array.init f Fun.id in
  Array.sort (fun a b -> Float.compare (Tensor.get2 t i b) (Tensor.get2 t i a)) idx;
  Array.to_list (Array.sub idx 0 (Stdlib.min k f))
