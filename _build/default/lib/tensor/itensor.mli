(** Integer tensors for the bit-true / int8 inference paths.

    Elements are stored in OCaml [int]s (63-bit), wide enough for every
    intermediate bitwidth the accelerator datapath produces (worst case:
    int8 × int8 products accumulated over thousands of channels fits in
    int32; the bit-true Winograd path tops out near int20). Saturation to a
    given signed bitwidth is explicit via {!clamp_bits}. *)

type t = { shape : Shape.t; data : int array }

val create : Shape.t -> int -> t
val zeros : Shape.t -> t
val of_array : Shape.t -> int array -> t
val init : Shape.t -> (int array -> int) -> t
val copy : t -> t

val numel : t -> int
val dim : t -> int -> int
val reshape : t -> Shape.t -> t

val get : t -> int array -> int
val set : t -> int array -> int -> unit
val get2 : t -> int -> int -> int
val set2 : t -> int -> int -> int -> unit
val get4 : t -> int -> int -> int -> int -> int
val set4 : t -> int -> int -> int -> int -> int -> unit

val map : (int -> int) -> t -> t
val map2 : (int -> int -> int) -> t -> t -> t
val add : t -> t -> t
val mul : t -> t -> t

val matmul : t -> t -> t
val max_abs : t -> int

val clamp_int : bits:int -> int -> int
(** Saturate a scalar to signed [bits]-bit range. *)

val clamp_bits : bits:int -> t -> t

val round_shift : int -> int -> int
(** [round_shift v k] — round-to-nearest (ties away from zero) arithmetic
    right shift by [k >= 0]; the hardware requantization primitive. *)

val of_tensor_round : Tensor.t -> t
(** Round-to-nearest conversion. *)

val to_tensor : t -> Tensor.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
