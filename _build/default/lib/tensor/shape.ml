type t = int array

let numel s = Array.fold_left ( * ) 1 s

let strides s =
  let n = Array.length s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let equal a b = a = b

let to_string s =
  "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let offset ~strides idx =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * strides.(i))) idx;
  !acc

let validate s =
  if Array.length s = 0 then invalid_arg "Shape.validate: empty shape";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Shape.validate: non-positive dim")
    s

let conv2d_out ~h ~w ~kh ~kw ~stride ~pad =
  let ho = ((h + (2 * pad) - kh) / stride) + 1 in
  let wo = ((w + (2 * pad) - kw) / stride) + 1 in
  if ho <= 0 || wo <= 0 then invalid_arg "Shape.conv2d_out: empty output";
  (ho, wo)

let pool_out ~h ~w ~k ~stride =
  let ho = ((h - k) / stride) + 1 in
  let wo = ((w - k) / stride) + 1 in
  if ho <= 0 || wo <= 0 then invalid_arg "Shape.pool_out: empty output";
  (ho, wo)
