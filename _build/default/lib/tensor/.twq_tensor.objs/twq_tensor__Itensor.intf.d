lib/tensor/itensor.mli: Format Shape Tensor
