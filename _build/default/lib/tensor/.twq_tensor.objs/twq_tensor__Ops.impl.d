lib/tensor/ops.ml: Array Float Fun Printf Shape Stdlib Tensor
