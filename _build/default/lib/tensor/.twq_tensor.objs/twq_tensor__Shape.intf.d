lib/tensor/shape.mli:
