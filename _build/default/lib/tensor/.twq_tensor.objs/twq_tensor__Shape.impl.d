lib/tensor/shape.ml: Array String
