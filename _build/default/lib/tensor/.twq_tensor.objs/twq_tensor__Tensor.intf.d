lib/tensor/tensor.mli: Format Shape Twq_util
