lib/tensor/itensor.ml: Array Float Format Shape Stdlib Tensor
