lib/tensor/tensor.ml: Array Float Format Shape Twq_util
