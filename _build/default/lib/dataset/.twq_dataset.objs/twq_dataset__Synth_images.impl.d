lib/dataset/synth_images.ml: Array Fun List Twq_tensor Twq_util
