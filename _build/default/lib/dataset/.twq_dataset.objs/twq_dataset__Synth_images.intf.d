lib/dataset/synth_images.mli: Twq_tensor Twq_util
