(** SynthImages — the procedurally-generated classification dataset that
    substitutes CIFAR-10/ImageNet in this reproduction (see DESIGN.md).

    Each class is defined by a smooth multi-blob template per channel;
    samples are jittered (sub-pixel shift), optionally horizontally flipped
    (the paper's CIFAR augmentation) and perturbed with Gaussian noise.
    The dataset is split train/valid/test exactly like the paper splits its
    sets (90%/10% of train + held-out test). *)

type sample = { image : Twq_tensor.Tensor.t;  (** [\[|c; h; w|\]] *) label : int }

type t = {
  classes : int;
  channels : int;
  size : int;
  train : sample array;
  valid : sample array;
  test : sample array;
}

type spec = {
  classes : int;
  channels : int;
  size : int;
  n_train : int;
  n_valid : int;
  n_test : int;
  noise : float;        (** Gaussian noise σ *)
  jitter : int;         (** max |shift| in pixels *)
}

val default_spec : spec
(** 4 classes, 3×12×12, 256/64/128 samples, σ = 0.25, jitter 1. *)

val generate : ?spec:spec -> seed:int -> unit -> t

val batch : t -> sample array -> int array -> Twq_tensor.Tensor.t * int array
(** [batch t split indices] — stack the given samples into an NCHW batch. *)

val shuffled_batches :
  rng:Twq_util.Rng.t -> batch_size:int -> sample array ->
  (Twq_tensor.Tensor.t * int array) list
(** Shuffle a split and cut it into full batches (remainder dropped). *)
