module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng

type sample = { image : Tensor.t; label : int }

type t = {
  classes : int;
  channels : int;
  size : int;
  train : sample array;
  valid : sample array;
  test : sample array;
}

type spec = {
  classes : int;
  channels : int;
  size : int;
  n_train : int;
  n_valid : int;
  n_test : int;
  noise : float;
  jitter : int;
}

let default_spec =
  {
    classes = 4;
    channels = 3;
    size = 12;
    n_train = 256;
    n_valid = 64;
    n_test = 128;
    noise = 0.25;
    jitter = 1;
  }

type blob = { cx : float; cy : float; sigma : float; amp : float }

(* A class template is a handful of Gaussian blobs per channel; smooth
   structure makes classes separable yet sensitive to conv-weight noise. *)
let make_template rng ~channels ~size =
  Array.init channels (fun _ ->
      let n_blobs = 2 + Rng.int rng 3 in
      Array.init n_blobs (fun _ ->
          {
            cx = Rng.float rng (float_of_int size);
            cy = Rng.float rng (float_of_int size);
            sigma = 1.0 +. Rng.float rng (float_of_int size /. 3.0);
            amp = Rng.float rng 2.0 -. 1.0;
          }))

let render_template blobs ~size ~dx ~dy ~flip =
  Tensor.init [| size; size |] (fun idx ->
      let y = float_of_int idx.(0) +. dy in
      let x0 = if flip then size - 1 - idx.(1) else idx.(1) in
      let x = float_of_int x0 +. dx in
      Array.fold_left
        (fun acc b ->
          let d2 =
            (((x -. b.cx) ** 2.0) +. ((y -. b.cy) ** 2.0)) /. (2.0 *. b.sigma *. b.sigma)
          in
          acc +. (b.amp *. exp (-.d2)))
        0.0 blobs)

let make_sample rng templates ~spec label =
  let { channels; size; noise; jitter; _ } = spec in
  let dx = float_of_int (Rng.int rng ((2 * jitter) + 1) - jitter) in
  let dy = float_of_int (Rng.int rng ((2 * jitter) + 1) - jitter) in
  let flip = Rng.bool rng in
  let image =
    Tensor.init [| channels; size; size |] (fun idx ->
        ignore idx;
        0.0)
  in
  for c = 0 to channels - 1 do
    let plane = render_template templates.(label).(c) ~size ~dx ~dy ~flip in
    for i = 0 to size - 1 do
      for j = 0 to size - 1 do
        Tensor.set image [| c; i; j |]
          (Tensor.get2 plane i j +. Rng.gaussian rng ~mu:0.0 ~sigma:noise)
      done
    done
  done;
  { image; label }

let generate ?(spec = default_spec) ~seed () =
  let rng = Rng.create seed in
  let templates =
    Array.init spec.classes (fun _ ->
        make_template rng ~channels:spec.channels ~size:spec.size)
  in
  let split n =
    Array.init n (fun i -> make_sample rng templates ~spec (i mod spec.classes))
  in
  let train = split spec.n_train in
  let valid = split spec.n_valid in
  let test = split spec.n_test in
  Rng.shuffle rng train;
  { classes = spec.classes; channels = spec.channels; size = spec.size;
    train; valid; test }

let batch (t : t) split indices =
  let n = Array.length indices in
  if n = 0 then invalid_arg "Synth_images.batch: empty batch";
  let x = Tensor.zeros [| n; t.channels; t.size; t.size |] in
  let labels = Array.make n 0 in
  Array.iteri
    (fun bi si ->
      let s = split.(si) in
      labels.(bi) <- s.label;
      for c = 0 to t.channels - 1 do
        for i = 0 to t.size - 1 do
          for j = 0 to t.size - 1 do
            Tensor.set4 x bi c i j (Tensor.get s.image [| c; i; j |])
          done
        done
      done)
    indices;
  (x, labels)

let shuffled_batches ~rng ~batch_size split =
  let n = Array.length split in
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  let n_batches = n / batch_size in
  List.init n_batches (fun b ->
      let indices = Array.sub order (b * batch_size) batch_size in
      (* Re-stack using a dummy container sharing metadata of the split. *)
      let channels = Tensor.dim split.(0).image 0 in
      let size = Tensor.dim split.(0).image 1 in
      let x = Tensor.zeros [| batch_size; channels; size; size |] in
      let labels = Array.make batch_size 0 in
      Array.iteri
        (fun bi si ->
          let s = split.(si) in
          labels.(bi) <- s.label;
          for c = 0 to channels - 1 do
            for i = 0 to size - 1 do
              for j = 0 to size - 1 do
                Tensor.set4 x bi c i j (Tensor.get s.image [| c; i; j |])
              done
            done
          done)
        indices;
      (x, labels))
