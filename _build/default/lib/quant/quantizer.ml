module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor

let qmax ~bits = (1 lsl (bits - 1)) - 1
let qmin ~bits = -(1 lsl (bits - 1))

let min_scale = 1e-12

let scale_for ~bits ~max_abs =
  if max_abs <= 0.0 then min_scale
  else max_abs /. float_of_int (1 lsl (bits - 1))

let pow2_round_up s =
  if s <= 0.0 then invalid_arg "Quantizer.pow2_round_up: non-positive scale";
  Float.pow 2.0 (Float.ceil (Float.log2 s))

let pow2_exponent s =
  if s <= 0.0 then invalid_arg "Quantizer.pow2_exponent: non-positive scale";
  int_of_float (Float.ceil (Float.log2 s))

let quantize ~bits ~scale x =
  let v = int_of_float (Float.round (x /. scale)) in
  Itensor.clamp_int ~bits v

let dequantize ~scale v = float_of_int v *. scale

let fake_quant ~bits ~scale x = dequantize ~scale (quantize ~bits ~scale x)

let quantize_tensor ~bits ~scale (t : Tensor.t) =
  Itensor.of_array (Array.copy t.Tensor.shape)
    (Array.map (quantize ~bits ~scale) t.Tensor.data)

let dequantize_tensor ~scale (t : Itensor.t) =
  Tensor.of_array (Array.copy t.Itensor.shape)
    (Array.map (dequantize ~scale) t.Itensor.data)

let fake_quant_tensor ~bits ~scale = Tensor.map (fake_quant ~bits ~scale)

(* Affine (asymmetric) quantization: x ≈ s·(q − z) with an integer
   zero-point — the general scheme of Krishnamoorthi's whitepaper; the
   paper's Fig.-4 analysis quantizes around a per-unit mean the same way. *)

type affine = { scale : float; zero_point : int; bits : int }

let affine_params ~bits ~lo ~hi =
  if not (lo <= hi) then invalid_arg "Quantizer.affine_params: lo > hi";
  let lo = Float.min lo 0.0 and hi = Float.max hi 0.0 in
  let qmin = qmin ~bits and qmax = qmax ~bits in
  let scale = Float.max min_scale ((hi -. lo) /. float_of_int (qmax - qmin)) in
  let zero_point =
    Itensor.clamp_int ~bits
      (int_of_float (Float.round (float_of_int qmin -. (lo /. scale))))
  in
  { scale; zero_point; bits }

let affine_quantize p x =
  Itensor.clamp_int ~bits:p.bits
    (p.zero_point + int_of_float (Float.round (x /. p.scale)))

let affine_dequantize p q = float_of_int (q - p.zero_point) *. p.scale
