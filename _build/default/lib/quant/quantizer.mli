(** Scalar uniform quantization primitives (Eq. 2 of the paper).

    A real value [x] is represented as an integer [x̂ = clamp(⌊x/s⌉)] with a
    shared scale [s = x_max / 2^(n-1)].  Scales may optionally be restricted
    to powers of two ([pow2_round_up]) so that hardware re-scaling becomes a
    plain arithmetic shift. *)

val qmax : bits:int -> int
(** Largest representable value, [2^(bits-1) - 1]. *)

val qmin : bits:int -> int
(** Smallest representable value, [-2^(bits-1)]. *)

val scale_for : bits:int -> max_abs:float -> float
(** [x_max / 2^(bits-1)]; returns a tiny positive scale when [max_abs = 0]
    so downstream divisions stay well-defined. *)

val pow2_round_up : float -> float
(** [2^⌈log2 s⌉] — the paper's straight-forward power-of-two rounding. *)

val pow2_exponent : float -> int
(** [⌈log2 s⌉] of a positive scale. *)

val quantize : bits:int -> scale:float -> float -> int
(** Round-to-nearest then clamp to the signed [bits]-bit range. *)

val dequantize : scale:float -> int -> float

val fake_quant : bits:int -> scale:float -> float -> float
(** [dequantize (quantize x)] — the straight-through forward used in
    quantization-aware training. *)

val quantize_tensor : bits:int -> scale:float -> Twq_tensor.Tensor.t -> Twq_tensor.Itensor.t
val dequantize_tensor : scale:float -> Twq_tensor.Itensor.t -> Twq_tensor.Tensor.t
val fake_quant_tensor : bits:int -> scale:float -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t

(** {2 Affine (zero-point) quantization}

    [x ≈ s·(q − z)] — used where value distributions are one-sided (e.g.
    post-ReLU activations); the symmetric scheme above is what the paper's
    hardware implements, the affine variant rounds out the library. *)

type affine = { scale : float; zero_point : int; bits : int }

val affine_params : bits:int -> lo:float -> hi:float -> affine
(** Parameters covering [\[lo, hi\]] (always includes 0 so that zero is
    exactly representable). *)

val affine_quantize : affine -> float -> int
val affine_dequantize : affine -> int -> float
