(** Winograd-domain weight pruning combined with tap-wise quantization.

    The paper's related-work section (Liu et al., Li et al.) prunes weights
    directly in the Winograd domain and calls the combination with tap-wise
    quantization "an interesting future work direction" — this module
    implements that combination: magnitude pruning of the already
    tap-wise-quantized Winograd weights, preserving the integer-only
    inference path (a pruned tap is exactly zero and its MAC can be
    skipped). *)

val prune_quantized : density:float -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** Keep the [density] fraction (by magnitude, globally over the tensor) of
    the quantized Winograd-domain weights; the rest become 0.
    @raise Invalid_argument unless [0 < density <= 1]. *)

val density : Twq_tensor.Itensor.t -> float
(** Fraction of non-zero entries. *)

val prune_layer : Tapwise.layer -> density:float -> Tapwise.layer
(** A copy of the layer with pruned Winograd-domain weights; the scales and
    the inference path are untouched. *)

val effective_macs_fraction : Tapwise.layer -> float
(** Fraction of Winograd-domain MACs that remain after pruning (non-zero
    weight taps do work; zero taps are skippable). *)
