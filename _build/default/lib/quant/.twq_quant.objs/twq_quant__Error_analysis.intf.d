lib/quant/error_analysis.mli: Twq_tensor Twq_winograd
