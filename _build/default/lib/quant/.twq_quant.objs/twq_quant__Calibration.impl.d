lib/quant/calibration.ml: Array Float Twq_tensor Twq_util
