lib/quant/quantizer.mli: Twq_tensor
