lib/quant/quantizer.ml: Array Float Twq_tensor
