lib/quant/qconv.ml: Array Float List Quantizer Twq_tensor
