lib/quant/pruning.ml: Array Float Tapwise Twq_tensor
