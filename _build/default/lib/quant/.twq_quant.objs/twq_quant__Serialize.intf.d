lib/quant/serialize.mli: Buffer Qconv Scanf Tapwise Twq_tensor
