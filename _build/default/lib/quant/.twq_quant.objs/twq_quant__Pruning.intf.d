lib/quant/pruning.mli: Tapwise Twq_tensor
