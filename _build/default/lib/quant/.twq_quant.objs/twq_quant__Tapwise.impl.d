lib/quant/tapwise.ml: Array Float List Quantizer Twq_tensor Twq_winograd
