lib/quant/tapwise.mli: Twq_tensor Twq_winograd
