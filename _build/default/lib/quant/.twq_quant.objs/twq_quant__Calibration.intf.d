lib/quant/calibration.mli: Twq_tensor
