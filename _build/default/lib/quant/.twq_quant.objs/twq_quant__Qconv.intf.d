lib/quant/qconv.mli: Twq_tensor
