lib/quant/error_analysis.ml: Array Float Quantizer Twq_tensor Twq_util Twq_winograd
