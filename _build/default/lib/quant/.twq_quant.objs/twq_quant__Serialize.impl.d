lib/quant/serialize.ml: Array Buffer Fun Printf Qconv Scanf Tapwise Twq_tensor Twq_winograd
