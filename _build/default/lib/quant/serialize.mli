(** Serialization of quantized layers (text format, exact round-trip).

    A deployed tap-wise layer is a bag of integers plus a handful of
    scales; this module writes them to a simple line-oriented text format.
    Floats are encoded in hexadecimal notation ([%h]), so scales round-trip
    bit-exactly and a reloaded layer produces bit-identical integer
    outputs. *)

val write_tensor : Buffer.t -> Twq_tensor.Tensor.t -> unit
val read_tensor : Scanf.Scanning.in_channel -> Twq_tensor.Tensor.t

val write_itensor : Buffer.t -> Twq_tensor.Itensor.t -> unit
val read_itensor : Scanf.Scanning.in_channel -> Twq_tensor.Itensor.t

val read_layer_body : Scanf.Scanning.in_channel -> Tapwise.layer
(** Parse a layer whose ["tapwise-layer v1"] header has already been
    consumed (embedding in container formats, e.g. {!Twq_nn.Deploy}). *)

val layer_to_string : Tapwise.layer -> string
val layer_of_string : string -> Tapwise.layer
(** @raise Failure / [Scanf.Scan_failure] on malformed input. *)

val save_layer : string -> Tapwise.layer -> unit
(** Write to a file path. *)

val load_layer : string -> Tapwise.layer

(** {2 Spatial int8 layers} *)

val qconv_to_string : Qconv.layer -> string
val qconv_of_string : string -> Qconv.layer
val read_qconv_body : Scanf.Scanning.in_channel -> Qconv.layer
(** Body parser for embedding (header already consumed). *)
