module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Transform = Twq_winograd.Transform

let write_shape buf shape =
  Buffer.add_string buf (string_of_int (Array.length shape));
  Array.iter (fun d -> Buffer.add_string buf (" " ^ string_of_int d)) shape;
  Buffer.add_char buf '\n'

let read_shape ic =
  let rank = Scanf.bscanf ic " %d" Fun.id in
  Array.init rank (fun _ -> Scanf.bscanf ic " %d" Fun.id)

let write_tensor buf (t : Tensor.t) =
  write_shape buf t.Tensor.shape;
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) t.Tensor.data;
  Buffer.add_char buf '\n'

let read_tensor ic =
  let shape = read_shape ic in
  let n = Twq_tensor.Shape.numel shape in
  let data = Array.init n (fun _ -> Scanf.bscanf ic " %h" Fun.id) in
  Tensor.of_array shape data

let write_itensor buf (t : Itensor.t) =
  write_shape buf t.Itensor.shape;
  Array.iter (fun v -> Buffer.add_string buf (string_of_int v ^ " ")) t.Itensor.data;
  Buffer.add_char buf '\n'

let read_itensor ic =
  let shape = read_shape ic in
  let n = Twq_tensor.Shape.numel shape in
  let data = Array.init n (fun _ -> Scanf.bscanf ic " %d" Fun.id) in
  Itensor.of_array shape data

let write_grid buf (g : float array array) =
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Array.length g) (Array.length g.(0)));
  Array.iter
    (fun row ->
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) row;
      Buffer.add_char buf '\n')
    g

let read_grid ic =
  let rows = Scanf.bscanf ic " %d" Fun.id in
  let cols = Scanf.bscanf ic " %d" Fun.id in
  Array.init rows (fun _ -> Array.init cols (fun _ -> Scanf.bscanf ic " %h" Fun.id))

let granularity_name = function
  | Tapwise.Single_scale -> "single"
  | Tapwise.Tap_wise -> "tap"
  | Tapwise.Channel_tap_wise -> "channel-tap"

let granularity_of_name = function
  | "single" -> Tapwise.Single_scale
  | "tap" -> Tapwise.Tap_wise
  | "channel-tap" -> Tapwise.Channel_tap_wise
  | s -> failwith ("Serialize: unknown granularity " ^ s)

let variant_of_name = function
  | "F2" -> Transform.F2
  | "F4" -> Transform.F4
  | "F6" -> Transform.F6
  | s -> failwith ("Serialize: unknown variant " ^ s)

let layer_to_string (l : Tapwise.layer) =
  let buf = Buffer.create 4096 in
  let c = l.Tapwise.config in
  Buffer.add_string buf "tapwise-layer v1\n";
  Buffer.add_string buf
    (Printf.sprintf "config %s %d %d %b %s\n"
       (Transform.name c.Tapwise.variant)
       c.Tapwise.act_bits c.Tapwise.wino_bits c.Tapwise.pow2
       (granularity_name c.Tapwise.granularity));
  Buffer.add_string buf
    (Printf.sprintf "scales %d %h %h %h\n" l.Tapwise.pad l.Tapwise.s_x
       l.Tapwise.s_w l.Tapwise.s_y);
  write_grid buf l.Tapwise.s_b;
  write_grid buf l.Tapwise.s_g;
  (match l.Tapwise.s_g_channel with
  | None -> Buffer.add_string buf "per-channel 0\n"
  | Some grids ->
      Buffer.add_string buf (Printf.sprintf "per-channel %d\n" (Array.length grids));
      Array.iter (write_grid buf) grids);
  write_itensor buf l.Tapwise.wq;
  (match l.Tapwise.bias with
  | None -> Buffer.add_string buf "bias 0\n"
  | Some b ->
      Buffer.add_string buf "bias 1\n";
      write_tensor buf b);
  Buffer.contents buf

let read_layer_body ic =
  let variant, act_bits, wino_bits, pow2, gran =
    Scanf.bscanf ic " config %s %d %d %B %s" (fun a b c d e -> (a, b, c, d, e))
  in
  let config =
    {
      Tapwise.variant = variant_of_name variant;
      act_bits;
      wino_bits;
      pow2;
      granularity = granularity_of_name gran;
    }
  in
  let pad, s_x, s_w, s_y =
    Scanf.bscanf ic " scales %d %h %h %h" (fun a b c d -> (a, b, c, d))
  in
  let s_b = read_grid ic in
  let s_g = read_grid ic in
  let n_channel = Scanf.bscanf ic " per-channel %d" Fun.id in
  let s_g_channel =
    if n_channel = 0 then None
    else Some (Array.init n_channel (fun _ -> read_grid ic))
  in
  let wq = read_itensor ic in
  let has_bias = Scanf.bscanf ic " bias %d" Fun.id in
  let bias = if has_bias = 1 then Some (read_tensor ic) else None in
  { Tapwise.config; pad; s_x; s_w; s_y; s_b; s_g; s_g_channel; wq; bias }

let layer_of_string s =
  let ic = Scanf.Scanning.from_string s in
  Scanf.bscanf ic " tapwise-layer v1 " ();
  read_layer_body ic

let save_layer path layer =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (layer_to_string layer))

let load_layer path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      layer_of_string (really_input_string ic n))

(* ------------------------------------------------------- spatial layers *)

let qconv_to_buffer buf (l : Qconv.layer) =
  Buffer.add_string buf "qconv-layer v1\n";
  Buffer.add_string buf
    (Printf.sprintf "params %d %d %d %h %h %h\n" l.Qconv.act_bits l.Qconv.stride
       l.Qconv.pad l.Qconv.s_x l.Qconv.s_w l.Qconv.s_y);
  (match l.Qconv.s_w_channel with
  | None -> Buffer.add_string buf "per-channel 0\n"
  | Some s ->
      Buffer.add_string buf (Printf.sprintf "per-channel %d\n" (Array.length s));
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) s;
      Buffer.add_char buf '\n');
  write_itensor buf l.Qconv.wq;
  match l.Qconv.bias with
  | None -> Buffer.add_string buf "bias 0\n"
  | Some b ->
      Buffer.add_string buf "bias 1\n";
      write_tensor buf b

let read_qconv_body ic =
  let act_bits, stride, pad, s_x, s_w, s_y =
    Scanf.bscanf ic " params %d %d %d %h %h %h" (fun a b c d e f ->
        (a, b, c, d, e, f))
  in
  let n_channel = Scanf.bscanf ic " per-channel %d" Fun.id in
  let s_w_channel =
    if n_channel = 0 then None
    else Some (Array.init n_channel (fun _ -> Scanf.bscanf ic " %h" Fun.id))
  in
  let wq = read_itensor ic in
  let has_bias = Scanf.bscanf ic " bias %d" Fun.id in
  let bias = if has_bias = 1 then Some (read_tensor ic) else None in
  { Qconv.act_bits; stride; pad; s_x; s_w; s_w_channel; s_y; wq; bias }

let qconv_to_string l =
  let buf = Buffer.create 2048 in
  qconv_to_buffer buf l;
  Buffer.contents buf

let qconv_of_string s =
  let ic = Scanf.Scanning.from_string s in
  Scanf.bscanf ic " qconv-layer v1 " ();
  read_qconv_body ic
