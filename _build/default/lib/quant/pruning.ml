module Itensor = Twq_tensor.Itensor

let prune_quantized ~density w =
  if density <= 0.0 || density > 1.0 then
    invalid_arg "Pruning.prune_quantized: density must be in (0, 1]";
  let n = Itensor.numel w in
  let keep = int_of_float (Float.round (density *. float_of_int n)) in
  if keep >= n then Itensor.copy w
  else begin
    (* Global magnitude threshold: keep the `keep` largest |w|. *)
    let magnitudes = Array.map abs w.Itensor.data in
    Array.sort (fun a b -> compare b a) magnitudes;
    let threshold = if keep = 0 then max_int else magnitudes.(keep - 1) in
    (* Ties at the threshold are broken in index order so the kept count is
       exact. *)
    let n_strict =
      Array.fold_left (fun a v -> if abs v > threshold then a + 1 else a) 0 w.Itensor.data
    in
    let tie_budget = ref (keep - n_strict) in
    Itensor.map
      (fun v ->
        if abs v > threshold then v
        else if abs v = threshold && !tie_budget > 0 then begin
          decr tie_budget;
          v
        end
        else 0)
      w
  end

let density w =
  let nz = Array.fold_left (fun a v -> if v <> 0 then a + 1 else a) 0 w.Itensor.data in
  float_of_int nz /. float_of_int (Itensor.numel w)

let prune_layer (l : Tapwise.layer) ~density =
  { l with Tapwise.wq = prune_quantized ~density l.Tapwise.wq }

let effective_macs_fraction (l : Tapwise.layer) = density l.Tapwise.wq
