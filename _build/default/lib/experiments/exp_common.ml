module Synth = Twq_dataset.Synth_images
module Qat_model = Twq_nn.Qat_model
module Trainer = Twq_nn.Trainer
module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng

let buf_print f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let spec ~fast =
  if fast then
    { Synth.default_spec with
      Synth.classes = 8; noise = 0.8; n_train = 256; n_valid = 48; n_test = 128 }
  else
    { Synth.default_spec with
      Synth.classes = 8; noise = 0.8; n_train = 320; n_valid = 64; n_test = 160 }

let dataset_cache : (bool, Synth.t) Hashtbl.t = Hashtbl.create 2

let dataset ~fast =
  match Hashtbl.find_opt dataset_cache fast with
  | Some d -> d
  | None ->
      let d = Synth.generate ~spec:(spec ~fast) ~seed:20260705 () in
      Hashtbl.add dataset_cache fast d;
      d

let train_options ~fast =
  if fast then { Trainer.default_options with Trainer.epochs = 4 }
  else { Trainer.default_options with Trainer.epochs = 6 }

let resnet_like_weight_ensemble ~seed ~layers =
  let rng = Rng.create seed in
  List.init layers (fun li ->
      (* Channel counts sweep the ResNet-34 range, scaled down. *)
      let cout = 8 * (1 + (li mod 4)) and cin = 8 * (1 + ((li + 1) mod 4)) in
      Tensor.init [| cout; cin; 3; 3 |] (fun idx ->
          let channel_sigma =
            0.08 +. (0.35 *. float_of_int (idx.(0) mod 7) /. 7.0)
          in
          Rng.gaussian rng ~mu:0.0 ~sigma:channel_sigma))

let model_config ~fast mode =
  let cfg = Qat_model.default_config mode in
  { cfg with Qat_model.classes = (spec ~fast).Synth.classes }

let teacher_cache : (bool, Qat_model.t) Hashtbl.t = Hashtbl.create 2

let trained_teacher ~fast =
  match Hashtbl.find_opt teacher_cache fast with
  | Some t -> t
  | None ->
      let model = Qat_model.create (model_config ~fast Qat_model.Fp32) ~seed:41 in
      let (_ : Trainer.history) =
        Trainer.train model (dataset ~fast) (train_options ~fast)
      in
      Hashtbl.add teacher_cache fast model;
      model

let train_once ~fast ~mode ~kd ~seed =
  let data = dataset ~fast in
  let model = Qat_model.create (model_config ~fast mode) ~seed in
  let opts = train_options ~fast in
  let opts =
    if kd then
      { opts with
        Trainer.kd =
          Some { Trainer.teacher = trained_teacher ~fast; temperature = 4.0; alpha = 0.5 } }
    else opts
  in
  let (_ : Trainer.history) = Trainer.train model data opts in
  Trainer.evaluate model data.Synth.test

(* The synthetic benchmark is small, so single runs carry ±2% seed noise;
   paper-scale mode averages three seeds. *)
let train_and_eval ~fast ~mode ?(kd = false) ?(seed = 42) () =
  if fast then train_once ~fast ~mode ~kd ~seed
  else
    Twq_util.Stats.mean
      (Array.of_list
         (List.map (fun ds -> train_once ~fast ~mode ~kd ~seed:(seed + ds)) [ 0; 1; 2 ]))

let fp32_cache : (bool, float) Hashtbl.t = Hashtbl.create 2

let fp32_reference ~fast =
  match Hashtbl.find_opt fp32_cache fast with
  | Some v -> v
  | None ->
      let teacher = trained_teacher ~fast in
      let acc = Trainer.evaluate teacher (dataset ~fast).Synth.test in
      Hashtbl.add fp32_cache fast acc;
      acc

let trained_conv_weights () =
  Qat_model.conv_weights (trained_teacher ~fast:true)
