type t = {
  name : string;
  description : string;
  run : ?fast:bool -> unit -> string;
}

let all =
  [
    { name = Exp_fig1.name; description = Exp_fig1.description; run = Exp_fig1.run };
    { name = Exp_tab1.name; description = Exp_tab1.description; run = Exp_tab1.run };
    { name = Exp_tab2.name; description = Exp_tab2.description; run = Exp_tab2.run };
    { name = Exp_tab3.name; description = Exp_tab3.description; run = Exp_tab3.run };
    { name = Exp_fig4.name; description = Exp_fig4.description; run = Exp_fig4.run };
    { name = Exp_tab4.name; description = Exp_tab4.description; run = Exp_tab4.run };
    { name = Exp_tab5.name; description = Exp_tab5.description; run = Exp_tab5.run };
    { name = Exp_fig5.name; description = Exp_fig5.description; run = Exp_fig5.run };
    { name = Exp_tab6.name; description = Exp_tab6.description; run = Exp_tab6.run };
    { name = Exp_tab7.name; description = Exp_tab7.description; run = Exp_tab7.run };
    { name = Exp_fig6.name; description = Exp_fig6.description; run = Exp_fig6.run };
    { name = Exp_ext_tiles.name; description = Exp_ext_tiles.description; run = Exp_ext_tiles.run };
    { name = Exp_ext_stride.name; description = Exp_ext_stride.description; run = Exp_ext_stride.run };
    { name = Exp_ext_sparse.name; description = Exp_ext_sparse.description; run = Exp_ext_sparse.run };
    { name = Exp_ext_ablation.name; description = Exp_ext_ablation.description; run = Exp_ext_ablation.run };
    { name = Exp_ext_points.name; description = Exp_ext_points.description; run = Exp_ext_points.run };
    { name = Exp_ext_graph.name; description = Exp_ext_graph.description; run = Exp_ext_graph.run };
    { name = Exp_ext_validate.name; description = Exp_ext_validate.description; run = Exp_ext_validate.run };
    { name = Exp_ext_zoo.name; description = Exp_ext_zoo.description; run = Exp_ext_zoo.run };
    { name = Exp_ext_engines.name; description = Exp_ext_engines.description; run = Exp_ext_engines.run };
    { name = Exp_ext_sparsity.name; description = Exp_ext_sparsity.description; run = Exp_ext_sparsity.run };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
