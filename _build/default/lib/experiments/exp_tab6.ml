(** Table VI — comparison of the Winograd-F4 DSA against an 8-engine
    NVDLA system at matched peak throughput and word bandwidth. *)

module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Nvdla = Twq_nvdla.Nvdla
module Table = Twq_util.Table
module AP = Twq_hw.Area_power
open Twq_sim

let name = "tab6"
let description = "Table VI: NVDLA (8x F2, FP16) vs ours (F4, int8)"

let layers = [ (128, 128); (128, 256); (256, 512) ]

let layer cin cout =
  { Zoo.name = "nv"; cin; cout; out_h = 32; out_w = 32; k = 3; stride = 1; repeat = 1 }

let run ?(fast = false) () =
  ignore fast;
  let arch = Arch.default in
  let tbl =
    Table.create
      ~title:
        "Table VI — B=8, 32x32 layers; t in us; SU vs each system's direct conv"
      [ "Cin/Cout"; "NVDLA inf-BW t"; "SU"; "NVDLA 42.7Gw/s t"; "SU";
        "ours 41Gw/s t"; "SU" ]
  in
  List.iter
    (fun (cin, cout) ->
      let l = layer cin cout in
      let cell bw =
        let cfg = Nvdla.default ~bandwidth_words_per_s:bw in
        let d = Nvdla.run cfg Nvdla.Direct l ~batch:8 in
        let w = Nvdla.run cfg Nvdla.Winograd_f2 l ~batch:8 in
        (w.Nvdla.time_s *. 1e6, d.Nvdla.time_s /. w.Nvdla.time_s)
      in
      let t_inf, su_inf = cell 128e9 in
      let t_iso, su_iso = cell 42.7e9 in
      let ours_i = Operator.run arch Operator.Im2col l ~batch:8 in
      let ours_w = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
      let t_ours = ours_w.Operator.cycles /. AP.clock_hz *. 1e6 in
      Table.add_row tbl
        [
          Printf.sprintf "%d/%d" cin cout;
          Table.cell_fx 1 t_inf;
          Table.cell_speedup su_inf;
          Table.cell_fx 1 t_iso;
          Table.cell_speedup su_iso;
          Table.cell_fx 1 t_ours;
          Table.cell_speedup (ours_i.Operator.cycles /. ours_w.Operator.cycles);
        ])
    layers;
  let advantage =
    List.map
      (fun (cin, cout) ->
        let l = layer cin cout in
        let cfg = Nvdla.default ~bandwidth_words_per_s:42.7e9 in
        let nv = Nvdla.best cfg l ~batch:8 in
        let ours = Operator.run arch (Operator.Winograd Transform.F4) l ~batch:8 in
        nv.Nvdla.time_s /. (ours.Operator.cycles /. AP.clock_hz))
      layers
  in
  Table.render tbl
  ^ Printf.sprintf
      "\nours vs NVDLA best kernel at iso bandwidth: %s (paper: 1.5x - 3.3x)\n"
      (String.concat ", "
         (List.map (fun r -> Printf.sprintf "%.2fx" r) advantage))
