(** Table VII — full-network throughput and energy efficiency across the
    seven evaluation CNNs, including the DDR5 (1.5× bandwidth) study. *)

module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
open Twq_sim

let name = "tab7"
let description = "Table VII: end-to-end throughput and energy efficiency"

let configs : (string * (?resolution:int -> unit -> Zoo.network) * int * int option) list =
  [
    ("ResNet-34", Zoo.resnet34, 1, Some 224);
    ("ResNet-50", Zoo.resnet50, 1, Some 224);
    ("RetinaNet-R-50", Zoo.retinanet_r50, 1, Some 800);
    ("SSD-VGG-16", Zoo.ssd_vgg16, 1, Some 300);
    ("UNet", Zoo.unet, 1, Some 572);
    ("YOLOv3", Zoo.yolov3, 1, Some 256);
    ("YOLOv3", Zoo.yolov3, 1, Some 416);
    ("SSD-VGG-16", Zoo.ssd_vgg16, 8, Some 300);
    ("YOLOv3", Zoo.yolov3, 8, Some 256);
    ("ResNet-34", Zoo.resnet34, 16, Some 224);
    ("ResNet-50", Zoo.resnet50, 16, Some 224);
    ("YOLOv3", Zoo.yolov3, 16, Some 256);
  ]

type row = {
  label : string;
  batch : int;
  resolution : int;
  im2col : Network_runner.run;
  f2 : Network_runner.run;
  f4 : Network_runner.run;
  f4_ddr5_gain : float;  (** F4 vs im2col with 1.5× bandwidth *)
  f2_ddr5_gain : float;
  layer_su_f2 : float;
  layer_su_f4 : float;
}

let evaluate ?(fast = false) () =
  let configs = if fast then [ List.nth configs 0; List.nth configs 5 ] else configs in
  let arch = Arch.default in
  let ddr5 = Arch.scale_bandwidth arch 1.5 in
  List.map
    (fun (label, build, batch, resolution) ->
      let net = build ?resolution () in
      let im2col = Network_runner.run arch Network_runner.P_im2col net ~batch in
      let f2 = Network_runner.run arch (Network_runner.P_winograd Transform.F2) net ~batch in
      let f4 = Network_runner.run arch (Network_runner.P_winograd Transform.F4) net ~batch in
      let i5 = Network_runner.run ddr5 Network_runner.P_im2col net ~batch in
      let f45 = Network_runner.run ddr5 (Network_runner.P_winograd Transform.F4) net ~batch in
      let f25 = Network_runner.run ddr5 (Network_runner.P_winograd Transform.F2) net ~batch in
      {
        label;
        batch;
        resolution = net.Zoo.resolution;
        im2col;
        f2;
        f4;
        f4_ddr5_gain =
          f45.Network_runner.throughput_imgs_per_s /. i5.Network_runner.throughput_imgs_per_s;
        f2_ddr5_gain =
          f25.Network_runner.throughput_imgs_per_s /. i5.Network_runner.throughput_imgs_per_s;
        layer_su_f2 = Network_runner.winograd_layer_speedup arch Transform.F2 net ~batch;
        layer_su_f4 = Network_runner.winograd_layer_speedup arch Transform.F4 net ~batch;
      })
    configs

let run ?(fast = false) () =
  let rows = evaluate ~fast () in
  let tbl =
    Table.create
      ~title:
        "Table VII — throughput [imgs/s] and gains (parenthesised: Winograd layers only)"
      [ "network"; "B"; "res"; "im2col"; "F2"; "F4"; "F2 vs i2c"; "F4 vs i2c";
        "F4 vs F2"; "*F4 vs i2c (DDR5)"; "Eff F4 vs i2c" ]
  in
  List.iter
    (fun r ->
      let th run = run.Network_runner.throughput_imgs_per_s in
      Table.add_row tbl
        [
          r.label;
          string_of_int r.batch;
          string_of_int r.resolution;
          Table.cell_fx 0 (th r.im2col);
          Table.cell_fx 0 (th r.f2);
          Table.cell_fx 0 (th r.f4);
          Printf.sprintf "%.2fx (%.2fx)" (th r.f2 /. th r.im2col) r.layer_su_f2;
          Printf.sprintf "%.2fx (%.2fx)" (th r.f4 /. th r.im2col) r.layer_su_f4;
          Table.cell_speedup (th r.f4 /. th r.f2);
          Table.cell_speedup r.f4_ddr5_gain;
          Table.cell_speedup
            (r.f4.Network_runner.inferences_per_joule
            /. r.im2col.Network_runner.inferences_per_joule);
        ])
    rows;
  Table.render tbl
