(** Extension — interpolation-point selection for Winograd F(4,3).

    The paper's related work ([1] Alam et al., [3] Barabasz et al.) studies
    how the choice of polynomial root points changes the numerical quality
    of the Winograd algorithm.  Using the exact Toom–Cook generator, this
    experiment synthesises F(4,3) from several point sets and compares
    their FP32 error and the L1 mass of their transformation matrices (a
    proxy for the bit growth / hardware cost of Bᵀ). *)

module G = Twq_winograd.Generator
module Rat = Twq_util.Rat
module Rmat = Twq_util.Rmat
module Table = Twq_util.Table

let name = "ext-points"
let description = "Extension: root-point selection for F(4,3) (Toom-Cook generator)"

let point_sets =
  [
    ("{0, 1, -1, 2, -2} (paper / Lavin)", List.map Rat.of_int [ 0; 1; -1; 2; -2 ]);
    ("{0, 1, -1, 1/2, -1/2}",
     [ Rat.zero; Rat.one; Rat.minus_one; Rat.make 1 2; Rat.make (-1) 2 ]);
    ("{0, 1, -1, 2, -1/2}",
     [ Rat.zero; Rat.one; Rat.minus_one; Rat.of_int 2; Rat.make (-1) 2 ]);
    ("{0, 1, -1, 3, -3}", List.map Rat.of_int [ 0; 1; -1; 3; -3 ]);
    ("{0, 1, 2, 3, 4} (naive)", List.map Rat.of_int [ 0; 1; 2; 3; 4 ]);
  ]

let l1_mass m =
  let acc = ref 0.0 in
  for i = 0 to Rmat.rows m - 1 do
    for j = 0 to Rmat.cols m - 1 do
      acc := !acc +. Float.abs (Rat.to_float m.(i).(j))
    done
  done;
  !acc

let run ?(fast = false) () =
  let trials = if fast then 50 else 500 in
  let tbl =
    Table.create ~title:"Extension — F(4,3) synthesised from different root points"
      [ "points"; "max fp32 err (1-D)"; "|B^T| L1 mass"; "|G| L1 mass" ]
  in
  List.iter
    (fun (label, points) ->
      let t = G.make ~points ~m:4 ~r:3 in
      Table.add_row tbl
        [
          label;
          Printf.sprintf "%.1e" (G.fp_error_probe t ~seed:99 ~trials);
          Table.cell_f (l1_mass t.G.bt);
          Table.cell_f (l1_mass t.G.g);
        ])
    point_sets;
  Table.render tbl
  ^ "\nSymmetric small-magnitude points (the paper's choice) keep both the\n\
     floating-point error and the transform L1 mass (≈ bit growth / adder\n\
     cost) low; naive ascending points explode both — why point selection\n\
     matters for tiles beyond F2 (cf. refs [1], [3] of the paper).\n"
