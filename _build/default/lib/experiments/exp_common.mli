(** Shared plumbing for the experiment harnesses.

    [fast:true] shrinks datasets/epochs so a full experiment sweep stays in
    the tens of seconds (used by the test-suite and the Bechamel bench);
    [fast:false] runs the paper-scale configuration. *)

val buf_print : (Format.formatter -> unit) -> string
(** Render into a string via a formatter. *)

val dataset : fast:bool -> Twq_dataset.Synth_images.t
(** The SynthImages instance standing in for CIFAR-10/ImageNet (seeded). *)

val train_options : fast:bool -> Twq_nn.Trainer.options

val resnet_like_weight_ensemble :
  seed:int -> layers:int -> Twq_tensor.Tensor.t list
(** 3×3 conv weight tensors with per-channel spread mimicking a trained
    ResNet-34 (the Fig. 1 / Fig. 4 substitution; see DESIGN.md). *)

val train_and_eval :
  fast:bool ->
  mode:Twq_nn.Qat_model.conv_mode ->
  ?kd:bool ->
  ?seed:int ->
  unit ->
  float
(** Train one model configuration on the shared dataset and return its
    top-1 test accuracy.  With [kd:true] a freshly-trained FP32 teacher
    (cached per fast-level) distills into the student. *)

val fp32_reference : fast:bool -> float
(** Test accuracy of the FP32 baseline (cached). *)

val trained_conv_weights : unit -> Twq_tensor.Tensor.t list
(** 3×3 conv kernels of an actually trained FP32 model (cheap/fast-level
    teacher) — mixed into the Fig. 1 / Fig. 4 weight ensembles. *)
