(** Extension — workload inventory of the evaluation networks.

    Documents the compute structure behind Table VII: per network, the
    total MACs, the fraction of MACs in Winograd-eligible (3×3 stride-1)
    layers, the layer counts per kernel shape, and the weight volume —
    explaining a priori which networks the Winograd operator can help. *)

module Zoo = Twq_nn.Zoo
module Table = Twq_util.Table

let name = "ext-zoo"
let description = "Extension: compute inventory of the seven evaluation networks"

let networks : (string * (?resolution:int -> unit -> Zoo.network)) list =
  [ ("ResNet-20 @32", Zoo.resnet20); ("VGG-nagadomi @32", Zoo.vgg_nagadomi);
    ("ResNet-34 @224", Zoo.resnet34); ("ResNet-50 @224", Zoo.resnet50);
    ("SSD-VGG-16 @300", Zoo.ssd_vgg16); ("YOLOv3 @416", Zoo.yolov3);
    ("UNet @572", Zoo.unet); ("RetinaNet @800", Zoo.retinanet_r50) ]

let run ?(fast = false) () =
  let networks = if fast then [ List.hd networks ] else networks in
  let tbl =
    Table.create ~title:"network inventory (batch 1)"
      [ "network"; "GMACs"; "winograd MACs"; "3x3s1 layers"; "1x1 layers";
        "other layers"; "weights MB" ]
  in
  List.iter
    (fun (label, build) ->
      let n = build ?resolution:None () in
      let count pred =
        List.fold_left
          (fun a l -> if pred l then a + l.Zoo.repeat else a)
          0 n.Zoo.layers
      in
      let weights_mb =
        List.fold_left
          (fun a l ->
            a
            +. float_of_int
                 (l.Zoo.repeat * l.Zoo.cin * l.Zoo.cout * l.Zoo.k * l.Zoo.k))
          0.0 n.Zoo.layers
        /. 1e6
      in
      Table.add_row tbl
        [
          label;
          Table.cell_f (Zoo.total_macs ~batch:1 n /. 1e9);
          Printf.sprintf "%.0f%%" (100.0 *. Zoo.winograd_macs_fraction ~batch:1 n);
          string_of_int (count Zoo.winograd_eligible);
          string_of_int (count (fun l -> l.Zoo.k = 1));
          string_of_int
            (count (fun l -> not (Zoo.winograd_eligible l) && l.Zoo.k <> 1));
          Table.cell_f weights_mb;
        ])
    networks;
  Table.render tbl
  ^ "\nThe Winograd-MACs fraction predicts Table VII: UNet / SSD / YOLOv3\n\
     (3x3-dominated) gain the most from F4; ResNet-50 (1x1-heavy bottleneck\n\
     blocks) gains the least — exactly the paper's reading.\n"
