(** Registry of all experiment harnesses (one per paper table/figure). *)

type t = {
  name : string;         (** e.g. ["tab4"] *)
  description : string;
  run : ?fast:bool -> unit -> string;
}

val all : t list

val find : string -> t option
