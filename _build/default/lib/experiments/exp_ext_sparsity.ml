(** Extension — activation/weight sparsity across domains.

    Sec. V-B2 of the paper explains the higher Winograd-kernel switching
    power by "the lower sparsity of activations and weights in the Winograd
    domain".  This experiment measures it: the zero/near-zero fraction of
    post-ReLU activations and of trained-like weights, before and after the
    [Bᵀ·B] / [G·Gᵀ] transforms, for F2 and F4. *)

module Tensor = Twq_tensor.Tensor
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
module Rng = Twq_util.Rng
module Ops = Twq_tensor.Ops

let name = "ext-sparsity"
let description = "Extension: sparsity in spatial vs Winograd domain (Sec. V-B2 power claim)"

let density ?(eps = 1e-6) (t : Tensor.t) =
  let nz =
    Array.fold_left
      (fun a v -> if Float.abs v > eps then a + 1 else a)
      0 t.Tensor.data
  in
  float_of_int nz /. float_of_int (Tensor.numel t)

let tile_density variant ~transform x =
  (* Density of the transformed t×t tiles covering the map. *)
  let t = Transform.t variant and m = Transform.m variant in
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let nz = ref 0 and total = ref 0 in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let th = (h + m - 1) / m and tw = (w + m - 1) / m in
      for a = 0 to th - 1 do
        for b = 0 to tw - 1 do
          let tile =
            Tensor.init [| t; t |] (fun idx ->
                let hi = (a * m) + idx.(0) - 1 and wi = (b * m) + idx.(1) - 1 in
                if hi < 0 || hi >= h || wi < 0 || wi >= w then 0.0
                else Tensor.get4 x ni ci hi wi)
          in
          let xt = transform variant tile in
          Tensor.iteri_flat
            (fun _ v ->
              incr total;
              if Float.abs v > 1e-6 then incr nz)
            xt
        done
      done
    done
  done;
  float_of_int !nz /. float_of_int !total

let run ?(fast = false) () =
  let rng = Rng.create 6060 in
  let chans = if fast then 4 else 16 in
  let hw = if fast then 12 else 32 in
  (* Post-ReLU activations: about half the entries are exactly zero. *)
  let acts = Ops.relu (Tensor.rand_gaussian rng [| 1; chans; hw; hw |] ~mu:0.0 ~sigma:1.0) in
  (* Trained-like weights with a mild magnitude-pruned tail. *)
  let w =
    Tensor.map
      (fun v -> if Float.abs v < 0.05 then 0.0 else v)
      (Tensor.rand_gaussian rng [| chans; chans; 3; 3 |] ~mu:0.0 ~sigma:0.2)
  in
  let weight_density variant =
    let nz = ref 0 and total = ref 0 in
    for co = 0 to chans - 1 do
      for ci = 0 to chans - 1 do
        let f = Tensor.init [| 3; 3 |] (fun i -> Tensor.get4 w co ci i.(0) i.(1)) in
        let wt = Transform.weight_tile variant f in
        Tensor.iteri_flat
          (fun _ v ->
            incr total;
            if Float.abs v > 1e-6 then incr nz)
          wt
      done
    done;
    float_of_int !nz /. float_of_int !total
  in
  let tbl =
    Table.create
      ~title:"non-zero density (higher density = more switching activity)"
      [ "tensor"; "spatial"; "winograd F2"; "winograd F4" ]
  in
  Table.add_row tbl
    [ "post-ReLU activations";
      Printf.sprintf "%.0f%%" (100.0 *. density acts);
      Printf.sprintf "%.0f%%"
        (100.0 *. tile_density Transform.F2 ~transform:Transform.input_tile acts);
      Printf.sprintf "%.0f%%"
        (100.0 *. tile_density Transform.F4 ~transform:Transform.input_tile acts) ];
  Table.add_row tbl
    [ "weights (5% pruned tail)";
      Printf.sprintf "%.0f%%" (100.0 *. density w);
      Printf.sprintf "%.0f%%" (100.0 *. weight_density Transform.F2);
      Printf.sprintf "%.0f%%" (100.0 *. weight_density Transform.F4) ];
  Table.render tbl
  ^ "\nThe transforms densify both operands (zeros mix into every tap),\n\
     which is why the paper measures 1.26x higher Cube switching power for\n\
     the Winograd kernel despite 4x fewer active cycles (Sec. V-B2).\n"
