(** Table I — performance/bandwidth model of the transformation engines. *)

module Engine = Twq_hw.Engine
module Dfg = Twq_hw.Dfg
module Table = Twq_util.Table
module Transform = Twq_winograd.Transform

let name = "tab1"
let description = "Table I: cycles and bandwidth of the transformation engines"

let run ?(fast = false) () =
  ignore fast;
  let tbl =
    Table.create ~title:"Table I — Winograd transformation engines (F4)"
      [ "engine"; "style"; "cyc/xform"; "parallel"; "RD B/cyc"; "WR B/cyc";
        "adders"; "shifters" ]
  in
  let row label cfg style =
    let r = Engine.resources cfg in
    Table.add_row tbl
      [
        label;
        style;
        string_of_int (Engine.cycles_per_xform cfg);
        string_of_int (Engine.parallel_xforms cfg);
        string_of_int (Engine.read_bw cfg);
        string_of_int (Engine.write_bw cfg);
        string_of_int r.Engine.adders;
        string_of_int r.Engine.shifters;
      ]
  in
  let base transform pc ps =
    { Engine.kind = Engine.Row_by_row_slow; variant = Transform.F4; transform; pc; ps; pt = 1 }
  in
  row "input (32x2)" (base Engine.Input 32 2) "row-by-row slow";
  row "input (32x2)" { (base Engine.Input 32 2) with Engine.kind = Engine.Row_by_row_fast } "row-by-row fast";
  row "output (16x1)" (base Engine.Output 16 1) "row-by-row slow";
  row "output (16x1)" { (base Engine.Output 16 1) with Engine.kind = Engine.Row_by_row_fast } "row-by-row fast";
  row "weight (64x16)"
    { Engine.kind = Engine.Tap_by_tap; variant = Transform.F4;
      transform = Engine.Weight; pc = 64; ps = 1; pt = 16 }
    "tap-by-tap";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render tbl);
  (* CSE statistics behind the "T dependent" tap-by-tap cycle count. *)
  let pass =
    Engine.dfg_pass
      { Engine.kind = Engine.Tap_by_tap; variant = Transform.F4;
        transform = Engine.Weight; pc = 1; ps = 1; pt = 1 }
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\nweight 1-D pass DFG: %d ops, %d adders after CSE, depth %d\n"
       (Dfg.op_count pass) (Dfg.adder_count pass) (Dfg.depth pass));
  Buffer.contents buf
