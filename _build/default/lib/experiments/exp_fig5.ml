(** Fig. 5 — cycle-usage breakdown of im2col vs Winograd F4 on selected
    workloads (per-resource busy cycles, normalised to the im2col
    end-to-end time). *)

module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
open Twq_sim

let name = "fig5"
let description = "Fig. 5: cycle breakdown, im2col vs Winograd F4"

let workloads =
  [ (1, 256, 256, 32); (1, 512, 512, 32); (8, 256, 256, 32); (8, 512, 512, 64) ]

let layer cin cout hw =
  { Zoo.name = "w"; cin; cout; out_h = hw; out_w = hw; k = 3; stride = 1; repeat = 1 }

let run ?(fast = false) () =
  let workloads = if fast then [ List.hd workloads ] else workloads in
  let arch = Arch.default in
  let buf = Buffer.create 2048 in
  List.iter
    (fun (batch, cin, cout, hw) ->
      let l = layer cin cout hw in
      let i = Operator.run arch Operator.Im2col l ~batch in
      let w = Operator.run arch (Operator.Winograd Transform.F4) l ~batch in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "Fig. 5 — B=%d %dx%d Cin=%d Cout=%d (busy cycles, %% of im2col time)"
               batch hw hw cin cout)
          [ "resource"; "im2col"; "winograd F4" ]
      in
      let norm = i.Operator.cycles in
      let lookup r busy = Option.value ~default:0.0 (List.assoc_opt r busy) in
      List.iter
        (fun r ->
          Table.add_row tbl
            [
              r;
              Printf.sprintf "%.1f%%" (100.0 *. lookup r i.Operator.busy /. norm);
              Printf.sprintf "%.1f%%" (100.0 *. lookup r w.Operator.busy /. norm);
            ])
        [ "dram"; "wt-xform"; "in-xform"; "cube"; "out-xform"; "vector" ];
      Table.add_sep tbl;
      Table.add_row tbl
        [ "total time"; "100.0%";
          Printf.sprintf "%.1f%% (%.2fx speed-up)"
            (100.0 *. w.Operator.cycles /. norm)
            (norm /. w.Operator.cycles) ];
      Buffer.add_string buf (Table.render tbl);
      Buffer.add_char buf '\n')
    workloads;
  Buffer.contents buf
