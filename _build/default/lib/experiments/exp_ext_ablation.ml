(** Extension — ablation of the system-level design choices of Sec. IV-B2.

    The paper motivates three dataflow optimisations (iFM broadcast between
    the cores, decoupled/prefetched buffering, on-the-fly weight
    transformation) and one deployment lever (DDR5-class bandwidth).  This
    ablation removes each one and reports the impact on the F4 operator. *)

module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
module Zoo = Twq_nn.Zoo
open Twq_sim

let name = "ext-ablation"
let description = "Extension: ablation of broadcast / buffering / bandwidth"

let layer = { Zoo.name = "abl"; cin = 256; cout = 512; out_h = 32; out_w = 32;
              k = 3; stride = 1; repeat = 1 }

let sweep = [ (1, 32, 32, 256, 512); (8, 32, 32, 256, 512); (8, 64, 64, 256, 256) ]

let run ?(fast = false) () =
  let sweep = if fast then [ List.hd sweep ] else sweep in
  let buf = Buffer.create 2048 in
  List.iter
    (fun (batch, h, w, cin, cout) ->
      let layer = { layer with Zoo.out_h = h; out_w = w; cin; cout } in
      let base = Arch.default in
      let variants =
        [
          ("baseline (paper config)", base);
          ("no iFM broadcast", { base with Arch.broadcast = false });
          ("single AI core", { base with Arch.n_cores = 1; broadcast = false });
          ("double buffering only (depth 2)", { base with Arch.buffer_depth = 2 });
          ("no overlap (depth 1)", { base with Arch.buffer_depth = 1 });
          ("DDR5-class bandwidth (1.5x)", Arch.scale_bandwidth base 1.5);
          ("half bandwidth", Arch.scale_bandwidth base 0.5);
        ]
      in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "Ablation — F4 operator, B=%d %dx%d Cin=%d Cout=%d" batch h w cin cout)
          [ "configuration"; "cycles"; "vs baseline"; "SU vs im2col" ]
      in
      let baseline_w = Operator.run base (Operator.Winograd Transform.F4) layer ~batch in
      List.iter
        (fun (label, arch) ->
          let wino = Operator.run arch (Operator.Winograd Transform.F4) layer ~batch in
          let im2col = Operator.run arch Operator.Im2col layer ~batch in
          Table.add_row tbl
            [
              label;
              Printf.sprintf "%.0f" wino.Operator.cycles;
              Table.cell_speedup (baseline_w.Operator.cycles /. wino.Operator.cycles);
              Table.cell_speedup (Operator.speedup ~baseline:im2col wino);
            ])
        variants;
      Buffer.add_string buf (Table.render tbl);
      Buffer.add_char buf '\n')
    sweep;
  Buffer.contents buf
