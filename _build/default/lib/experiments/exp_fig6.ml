(** Fig. 6 — memory accesses and energy breakdown of the Winograd F4
    operator, normalised to im2col, averaged over the Winograd layers of
    the evaluation networks. *)

module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
open Twq_sim

let name = "fig6"
let description = "Fig. 6: memory accesses and energy of F4 vs im2col"

let networks ~fast : (?resolution:int -> unit -> Zoo.network) list =
  if fast then [ Zoo.resnet34 ]
  else [ Zoo.resnet34; Zoo.ssd_vgg16; Zoo.yolov3; Zoo.unet ]

let run ?(fast = false) () =
  let arch = Arch.default in
  let acc_i = ref [] and acc_w = ref [] in
  List.iter
    (fun build ->
      let net = build ?resolution:None () in
      List.iter
        (fun l ->
          if Zoo.winograd_eligible l then begin
            acc_i := Operator.run arch Operator.Im2col l ~batch:1 :: !acc_i;
            acc_w :=
              Operator.run arch (Operator.Winograd Transform.F4) l ~batch:1 :: !acc_w
          end)
        net.Zoo.layers)
    (networks ~fast);
  let sum f rs = List.fold_left (fun a r -> a +. f r) 0.0 rs in
  let ratio_cell f =
    let base = sum f !acc_i in
    if base < 1.0 then "n/a (im2col: 0)"
    else Twq_util.Table.cell_f (sum f !acc_w /. base)
  in
  let ratio f = sum f !acc_w /. Float.max 1.0 (sum f !acc_i) in
  let t f = fun (r : Operator.result) -> f r.Operator.traffic in
  let tbl =
    Table.create ~title:"Fig. 6 (left) — memory accesses of F4, normalised to im2col"
      [ "traffic"; "F4 / im2col" ]
  in
  List.iter
    (fun (label, f) -> Table.add_row tbl [ label; ratio_cell f ])
    [
      ("GM rd iFM", t (fun x -> x.Operator.gm_rd_ifm));
      ("GM rd weights", t (fun x -> x.Operator.gm_rd_wt));
      ("GM wr oFM", t (fun x -> x.Operator.gm_wr_ofm));
      ("L1 wr iFM", t (fun x -> x.Operator.l1_wr_ifm));
      ("L1 rd iFM", t (fun x -> x.Operator.l1_rd_ifm));
      ("L1 rd+wr weights", t (fun x -> x.Operator.l1_rd_wt +. x.Operator.l1_wr_wt));
      ("L0A wr", t (fun x -> x.Operator.l0a_wr));
      ("L0A rd", t (fun x -> x.Operator.l0a_rd));
      ("L0B rd+wr", t (fun x -> x.Operator.l0b_rd +. x.Operator.l0b_wr));
      ("L0C wr", t (fun x -> x.Operator.l0c_wr));
      ("L0C rd (FixPipe)", t (fun x -> x.Operator.l0c_rd_fixpipe));
    ];
  let e f = fun (r : Operator.result) -> f r.Operator.energy in
  let tbl2 =
    Table.create ~title:"Fig. 6 (right) — energy of F4, normalised to im2col"
      [ "component"; "F4 / im2col" ]
  in
  List.iter
    (fun (label, f) -> Table.add_row tbl2 [ label; Table.cell_f (ratio f) ])
    [
      ("Cube", e (fun x -> x.Operator.e_cube));
      ("xform engines", e (fun x -> x.Operator.e_engines));
      ("Vector", e (fun x -> x.Operator.e_vector));
      ("SRAM", e (fun x -> x.Operator.e_sram));
      ("DRAM", e (fun x -> x.Operator.e_dram));
      ("total", e (fun x -> x.Operator.e_total));
    ];
  Table.render tbl ^ "\n" ^ Table.render tbl2
  ^ Printf.sprintf
      "\ntotal F4 energy on Winograd layers: %.2fx of im2col (paper: >2x reduction)\n"
      (ratio (e (fun x -> x.Operator.e_total)))
