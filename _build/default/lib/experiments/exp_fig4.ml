(** Fig. 4 — quantization error of layer-/channel-/tap-wise strategies in
    the spatial and Winograd domains (pseudo-inverse back-transform). *)

module EA = Twq_quant.Error_analysis
module Transform = Twq_winograd.Transform
module Stats = Twq_util.Stats
module Table = Twq_util.Table

let name = "fig4"
let description = "Fig. 4: quantization error by strategy and domain"

type summary = {
  spatial_layer : float;
  spatial_channel : float;
  wino_layer : float;
  wino_channel : float;
  wino_tap : float;
  wino_channel_tap : float;
}
(** mean log2 of the per-layer relative errors *)

let mean_log2 errors =
  Stats.mean (Array.of_list (List.map (fun e -> Float.log2 (Float.max 1e-12 e)) errors))

let analyse ?(fast = false) () =
  let layers = if fast then 4 else 12 in
  let weights = Exp_common.resnet_like_weight_ensemble ~seed:404 ~layers in
  let spatial strategy =
    mean_log2 (List.map (EA.spatial_error ~bits:8 ~strategy) weights)
  in
  let wino strategy =
    mean_log2
      (List.map (EA.winograd_error ~bits:8 ~variant:Transform.F4 ~strategy) weights)
  in
  {
    spatial_layer = spatial EA.S_layer;
    spatial_channel = spatial EA.S_channel;
    wino_layer = wino EA.W_layer;
    wino_channel = wino EA.W_channel;
    wino_tap = wino EA.W_tap;
    wino_channel_tap = wino EA.W_channel_tap;
  }

let run ?(fast = false) () =
  let s = analyse ~fast () in
  let tbl =
    Table.create ~title:"Fig. 4 — mean relative quantization error (log2; lower is better)"
      [ "domain"; "strategy"; "mean log2 err"; "vs layer-wise" ]
  in
  let improvement base v = Float.pow 2.0 (base -. v) in
  Table.add_row tbl [ "spatial"; "layer-wise"; Table.cell_fx 2 s.spatial_layer; "1.00x" ];
  Table.add_row tbl
    [ "spatial"; "channel-wise"; Table.cell_fx 2 s.spatial_channel;
      Table.cell_speedup (improvement s.spatial_layer s.spatial_channel) ];
  Table.add_sep tbl;
  Table.add_row tbl [ "winograd"; "layer-wise"; Table.cell_fx 2 s.wino_layer; "1.00x" ];
  Table.add_row tbl
    [ "winograd"; "channel-wise"; Table.cell_fx 2 s.wino_channel;
      Table.cell_speedup (improvement s.wino_layer s.wino_channel) ];
  Table.add_row tbl
    [ "winograd"; "tap-wise"; Table.cell_fx 2 s.wino_tap;
      Table.cell_speedup (improvement s.wino_layer s.wino_tap) ];
  Table.add_row tbl
    [ "winograd"; "channel+tap"; Table.cell_fx 2 s.wino_channel_tap;
      Table.cell_speedup (improvement s.wino_layer s.wino_channel_tap) ];
  Table.render tbl
  ^ Printf.sprintf
      "\npaper reference: spatial 2^-6.01 -> 2^-6.72 (channel); winograd 2^-5.58\n\
       (layer) ~ 2^-5.62 (channel) -> 2^-6.78 (tap, 2.3x better)\n"
