(** Fig. 1 — per-tap weight distributions in the Winograd domain.

    Transforms a ResNet-34-style weight ensemble with [G f Gᵀ] (F4) and
    reports the dynamic range of each tap plus histograms of three selected
    taps and the combined distribution — reproducing the paper's point that
    tap dynamic ranges differ by orders of magnitude. *)

module Tensor = Twq_tensor.Tensor
module Transform = Twq_winograd.Transform
module Stats = Twq_util.Stats
module Table = Twq_util.Table

let name = "fig1"
let description = "Fig. 1: weight distribution per Winograd tap (G f G^T, F4)"

let tap_samples weights =
  let t = Transform.t Transform.F4 in
  let samples = Array.init (t * t) (fun _ -> ref []) in
  List.iter
    (fun w ->
      let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
      for co = 0 to cout - 1 do
        for ci = 0 to cin - 1 do
          let f = Tensor.init [| 3; 3 |] (fun i -> Tensor.get4 w co ci i.(0) i.(1)) in
          let wt = Transform.weight_tile Transform.F4 f in
          for i = 0 to t - 1 do
            for j = 0 to t - 1 do
              let cell = samples.((i * t) + j) in
              cell := Tensor.get2 wt i j :: !cell
            done
          done
        done
      done)
    weights;
  Array.map (fun l -> Array.of_list !l) samples

let run ?(fast = false) () =
  let layers = if fast then 4 else 12 in
  (* Synthetic ResNet-34-style ensemble plus the 3x3 kernels of an actually
     trained network (the substitution documented in DESIGN.md). *)
  let weights =
    Exp_common.resnet_like_weight_ensemble ~seed:1001 ~layers
    @ (if fast then [] else Exp_common.trained_conv_weights ())
  in
  let samples = tap_samples weights in
  let t = Transform.t Transform.F4 in
  let tbl =
    Table.create ~title:"Fig. 1 — per-tap dynamic range of G f G^T (F4)"
      [ "tap"; "min"; "max"; "sigma"; "log2 |max|" ]
  in
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      let xs = samples.((i * t) + j) in
      let lo, hi = Stats.min_max xs in
      let amax = Stats.abs_max xs in
      Table.add_row tbl
        [
          Printf.sprintf "(%d,%d)" i j;
          Table.cell_fx 3 lo;
          Table.cell_fx 3 hi;
          Table.cell_fx 3 (Stats.stddev xs);
          Table.cell_fx 2 (Float.log2 (Float.max 1e-12 amax));
        ]
    done
  done;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Table.render tbl);
  (* Ratio between the widest and narrowest tap: the Fig.-1 headline. *)
  let maxima = Array.map Stats.abs_max samples in
  let widest = Array.fold_left Float.max 0.0 maxima in
  let narrowest = Array.fold_left Float.min Float.infinity maxima in
  Buffer.add_string buf
    (Printf.sprintf
       "\nwidest/narrowest tap dynamic range: %.1fx (%.1f bits of spread)\n"
       (widest /. narrowest)
       (Float.log2 (widest /. narrowest)));
  let show_hist label xs =
    Buffer.add_string buf (Printf.sprintf "\nhistogram of tap %s:\n" label);
    Buffer.add_string buf
      (Format.asprintf "%a" Stats.pp_histogram (Stats.histogram_auto ~bins:13 xs))
  in
  show_hist "(0,0)" samples.(0);
  show_hist "(2,1)" samples.((2 * t) + 1);
  show_hist "(5,5)" samples.((5 * t) + 5);
  show_hist "combined" (Array.concat (Array.to_list samples));
  Buffer.contents buf
