(** Table III — comparison with state-of-the-art Winograd-aware
    quantization methods.

    The externally-published baselines cannot be rerun, so we reimplement
    the two methods whose mechanics the paper describes and that our stack
    can express faithfully:
    - {e WA-static} (Fernandez et al., single Winograd-domain scale) — the
      method whose F4 accuracy collapses;
    - {e Winograd-domain int8 F2} (Lance, Li et al.) — single scale on the
      smaller tile, which works;
    and compare them against tap-wise quantization on the two stand-in
    networks (VGG-style and ResNet-style mini CNNs). *)

module Qat_model = Twq_nn.Qat_model
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table

let name = "tab3"
let description = "Table III: ours vs reimplemented SoA Winograd quantization baselines"

let wa variant ~wino_bits ~tapwise ~learned =
  Qat_model.Wa { Qat_model.variant; wino_bits; tapwise; pow2 = true; learned }

let methods =
  [
    ("WA-static (single scale)", "F4", "8",
     Some (wa Transform.F4 ~wino_bits:8 ~tapwise:false ~learned:false), false);
    ("Winograd-domain int8 [Lance]", "F2", "8",
     Some (wa Transform.F2 ~wino_bits:8 ~tapwise:false ~learned:false), false);
    ("Tap-wise (static)", "F4", "8",
     Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~learned:false), false);
    ("Tap-wise (static)", "F4", "8/9",
     Some (wa Transform.F4 ~wino_bits:9 ~tapwise:true ~learned:false), false);
    ("Tap-wise (static)", "F4", "8/10",
     Some (wa Transform.F4 ~wino_bits:10 ~tapwise:true ~learned:false), false);
    ("Tap-wise (log2-grad + KD)", "F4", "8",
     Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~learned:true), true);
  ]

let results ?(fast = false) () =
  let ref_acc = Exp_common.fp32_reference ~fast in
  ( ref_acc,
    List.map
      (fun (label, alg, bits, mode, kd) ->
        let acc =
          match mode with
          | None -> ref_acc
          | Some mode -> Exp_common.train_and_eval ~fast ~mode ~kd ()
        in
        (label, alg, bits, acc))
      methods )

let run ?(fast = false) () =
  let ref_acc, rows = results ~fast () in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Table III — SoA comparison (stand-in nets on SynthImages; FP32 ref %.1f%%)"
           (100.0 *. ref_acc))
      [ "method"; "alg"; "intn"; "Top-1"; "delta" ]
  in
  List.iter
    (fun (label, alg, bits, acc) ->
      Table.add_row tbl
        [
          label;
          alg;
          bits;
          Table.cell_fx 1 (100.0 *. acc);
          Table.cell_fx 1 (100.0 *. (acc -. ref_acc));
        ])
    rows;
  Table.render tbl
