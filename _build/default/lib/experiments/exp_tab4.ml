(** Table IV — throughput of the Winograd operator vs im2col over the
    63-layer synthetic 3×3 Conv2D suite. *)

module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
open Twq_sim

let name = "tab4"
let description =
  "Table IV: Winograd/im2col speed-up over the synthetic Conv2D suite \
   (+ F6 extension grid)"

let channel_pairs =
  [ (64, 64); (64, 128); (128, 128); (128, 192); (128, 256); (192, 384);
    (256, 256); (256, 512); (512, 512) ]

let resolutions = [ 16; 32; 64; 128 ]
let batches = [ 1; 8 ]

let layer cin cout hw =
  { Zoo.name = "synthetic"; cin; cout; out_h = hw; out_w = hw; k = 3;
    stride = 1; repeat = 1 }

let speedup arch variant ~batch ~cin ~cout ~hw =
  let l = layer cin cout hw in
  let i = Operator.run arch Operator.Im2col l ~batch in
  let w = Operator.run arch (Operator.Winograd variant) l ~batch in
  Operator.speedup ~baseline:i w

(* Grid consumed by the tests as well. *)
let grid ?(fast = false) ?(variant = Transform.F4) () =
  let resolutions = if fast then [ 16; 32 ] else resolutions in
  let pairs = if fast then [ (64, 64); (256, 256) ] else channel_pairs in
  let arch = Arch.default in
  List.map
    (fun batch ->
      ( batch,
        List.map
          (fun hw ->
            (hw, List.map (fun (cin, cout) ->
                     ((cin, cout), speedup arch variant ~batch ~cin ~cout ~hw))
                   pairs) )
          resolutions ))
    batches

let run ?(fast = false) () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun variant ->
      let g = grid ~fast ~variant () in
      List.iter
        (fun (batch, per_res) ->
          let _, first_row = List.hd per_res in
          let headers =
            "H,W"
            :: List.map (fun ((cin, cout), _) -> Printf.sprintf "%d/%d" cin cout) first_row
          in
          let tbl =
            Table.create
              ~title:
                (Printf.sprintf
                   "Table IV — %s vs im2col speed-up (B=%d; cols are Cin/Cout)"
                   (Transform.name variant) batch)
              headers
          in
          List.iter
            (fun (hw, cells) ->
              Table.add_row tbl
                (string_of_int hw
                :: List.map (fun (_, su) -> Table.cell_f su) cells))
            per_res;
          Buffer.add_string buf (Table.render tbl);
          Buffer.add_char buf '\n')
        g)
    (if fast then [ Transform.F4 ]
     else [ Transform.F4; Transform.F2; Transform.F6 ]);
  Buffer.contents buf
