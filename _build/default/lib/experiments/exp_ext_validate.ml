(** Extension — simulator validation against closed-form cycle counts.

    The paper validates its event-based simulator against RTL micro-
    benchmarks (5% worst-case difference, Sec. V-B1).  Without RTL, we
    validate against analytically computable regimes instead:

    - compute-bound im2col layers must approach the Cube roofline
      [MACs / (8192 · cores)];
    - the Winograd kernel's Cube-busy cycles must be the im2col count
      divided by the tile's MACs reduction (with ceil-induced padding);
    - bandwidth-starved layers must approach the DRAM roofline
      [bytes / BW]. *)

module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
open Twq_sim

let name = "ext-validate"
let description = "Extension: simulator vs closed-form rooflines (paper's 5% validation)"

let layer ?(k = 3) cin cout hw =
  { Zoo.name = "val"; cin; cout; out_h = hw; out_w = hw; k; stride = 1; repeat = 1 }

let run ?(fast = false) () =
  let arch = Arch.default in
  let tbl =
    Table.create ~title:"simulator vs closed-form"
      [ "case"; "simulated"; "closed form"; "diff" ]
  in
  let row label ~sim ~cf =
    Table.add_row tbl
      [ label; Printf.sprintf "%.0f" sim; Printf.sprintf "%.0f" cf;
        Printf.sprintf "%+.1f%%" (100.0 *. ((sim /. cf) -. 1.0)) ]
  in
  let macs_per_cycle = float_of_int (Arch.macs_per_cycle arch) in
  let cores = float_of_int arch.Arch.n_cores in
  (* Compute-bound im2col: end-to-end vs the Cube roofline. *)
  let cases = if fast then [ (256, 256, 64, 4) ] else
    [ (256, 256, 64, 4); (512, 512, 32, 8); (128, 128, 64, 8) ]
  in
  List.iter
    (fun (cin, cout, hw, batch) ->
      let l = layer cin cout hw in
      let r = Operator.run arch Operator.Im2col l ~batch in
      row
        (Printf.sprintf "im2col %d->%d %d^2 B%d (cube roofline)" cin cout hw batch)
        ~sim:r.Operator.cycles
        ~cf:(r.Operator.macs /. (macs_per_cycle *. cores)))
    cases;
  (* Winograd Cube occupancy = im2col / MACs-reduction (exact up to ceils). *)
  List.iter
    (fun variant ->
      let l = layer 256 256 64 in
      let i = Operator.run arch Operator.Im2col l ~batch:4 in
      let w = Operator.run arch (Operator.Winograd variant) l ~batch:4 in
      row
        (Printf.sprintf "%s cube busy vs im2col/%.2f" (Transform.name variant)
           (Transform.macs_reduction variant))
        ~sim:w.Operator.cube_busy
        ~cf:(i.Operator.cube_busy /. Transform.macs_reduction variant))
    (if fast then [ Transform.F4 ] else [ Transform.F2; Transform.F4 ]);
  (* Bandwidth-bound: tiny compute, heavy traffic (1x1-ish via many couts on
     a small map at batch 1 makes the weight stream dominate). *)
  let l = layer ~k:3 512 512 16 in
  let r = Operator.run arch Operator.Im2col l ~batch:1 in
  let bytes =
    r.Operator.traffic.Operator.gm_rd_ifm
    +. r.Operator.traffic.Operator.gm_rd_wt
    +. r.Operator.traffic.Operator.gm_wr_ofm
  in
  row "weight-stream-bound im2col (loose DRAM bound)" ~sim:r.Operator.cycles
    ~cf:(Float.max (bytes /. arch.Arch.dram_bw)
           (r.Operator.macs /. (macs_per_cycle *. cores)));
  Table.render tbl
  ^ "\nCompute-bound cases land within ~3% of their rooflines and the\n\
     Winograd Cube occupancy within ~1% of im2col/<reduction> — the same\n\
     validation envelope the paper reports for its simulator vs RTL (5%).\n\
     The bandwidth-starved case sits above its *lower bound* because the\n\
     per-cout-block weight prologue and DRAM latency cannot fully overlap\n\
     on a layer with almost no compute to hide them behind.\n"
