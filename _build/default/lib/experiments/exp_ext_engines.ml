(** Extension — transformation-engine design-space table.

    The registry-facing version of the [engine_explorer] example: the
    area/throughput Pareto of the three engines across styles and
    replication factors (the Sec. IV-B1 exploration), with the paper's
    chosen design points marked. *)

module Engine = Twq_hw.Engine
module AP = Twq_hw.Area_power
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table

let name = "ext-engines"
let description = "Extension: engine design-space exploration (Sec. IV-B1)"

let chosen = [ AP.input_engine; AP.weight_engine; AP.output_engine ]

let run ?(fast = false) () =
  let buf = Buffer.create 4096 in
  let explore transform label =
    let tbl =
      Table.create
        ~title:(Printf.sprintf "%s engine (F4)" label)
        [ "style"; "Pc"; "Ps"; "Pt"; "xf/cyc"; "area mm^2"; "mW";
          "mm^2 per xf/cyc"; "paper's pick" ]
    in
    let candidates =
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun pc ->
              List.map
                (fun pt ->
                  { Engine.kind; variant = Transform.F4; transform;
                    pc; ps = (if transform = Engine.Input && pc = 32 then 2 else 1);
                    pt })
                (if kind = Engine.Tap_by_tap then [ 8; 16 ] else [ 1 ]))
            (if fast then [ 16; 64 ] else [ 8; 16; 32; 64 ]))
        [ Engine.Row_by_row_slow; Engine.Row_by_row_fast; Engine.Tap_by_tap ]
    in
    List.iter
      (fun cfg ->
        let style =
          match cfg.Engine.kind with
          | Engine.Row_by_row_slow -> "row slow"
          | Engine.Row_by_row_fast -> "row fast"
          | Engine.Tap_by_tap -> "tap-by-tap"
        in
        let rate = Engine.throughput_xforms_per_cycle cfg in
        let area = AP.engine_area_mm2 cfg in
        Table.add_row tbl
          [
            style;
            string_of_int cfg.Engine.pc;
            string_of_int cfg.Engine.ps;
            string_of_int cfg.Engine.pt;
            Printf.sprintf "%.2f" rate;
            Printf.sprintf "%.3f" area;
            Printf.sprintf "%.0f" (AP.engine_power_mw cfg);
            Printf.sprintf "%.3f" (area /. rate);
            (if List.mem cfg chosen then "<-- paper" else "");
          ])
      candidates;
    Buffer.add_string buf (Table.render tbl);
    Buffer.add_char buf '\n'
  in
  explore Engine.Input "input (B^T x B)";
  if not fast then begin
    explore Engine.Weight "weight (G f G^T)";
    explore Engine.Output "output (A^T Y A)"
  end;
  Buffer.contents buf
