lib/experiments/exp_fig6.ml: Arch Float List Operator Printf Twq_nn Twq_sim Twq_util Twq_winograd
