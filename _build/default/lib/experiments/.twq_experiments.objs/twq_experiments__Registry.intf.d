lib/experiments/registry.mli:
