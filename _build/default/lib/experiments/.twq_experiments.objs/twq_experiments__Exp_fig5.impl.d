lib/experiments/exp_fig5.ml: Arch Buffer List Operator Option Printf Twq_nn Twq_sim Twq_util Twq_winograd
