lib/experiments/exp_ext_zoo.ml: List Printf Twq_nn Twq_util
