lib/experiments/exp_tab3.ml: Exp_common List Printf Twq_nn Twq_util Twq_winograd
