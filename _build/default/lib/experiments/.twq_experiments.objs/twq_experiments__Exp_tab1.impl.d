lib/experiments/exp_tab1.ml: Buffer Printf Twq_hw Twq_util Twq_winograd
