lib/experiments/exp_common.ml: Array Buffer Format Hashtbl List Twq_dataset Twq_nn Twq_tensor Twq_util
