lib/experiments/exp_ext_stride.ml: Printf Twq_tensor Twq_util Twq_winograd
