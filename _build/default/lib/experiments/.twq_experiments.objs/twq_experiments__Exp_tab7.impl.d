lib/experiments/exp_tab7.ml: Arch List Network_runner Printf Twq_nn Twq_sim Twq_util Twq_winograd
