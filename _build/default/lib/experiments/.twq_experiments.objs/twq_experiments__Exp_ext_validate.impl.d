lib/experiments/exp_ext_validate.ml: Arch Float List Operator Printf Twq_nn Twq_sim Twq_util Twq_winograd
