lib/experiments/exp_tab5.ml: Printf Twq_hw Twq_util
