lib/experiments/exp_ext_tiles.ml: Arch List Operator Printf Twq_hw Twq_nn Twq_quant Twq_sim Twq_tensor Twq_util Twq_winograd
