lib/experiments/exp_tab4.ml: Arch Buffer List Operator Printf Twq_nn Twq_sim Twq_util Twq_winograd
