lib/experiments/exp_tab6.ml: Arch List Operator Printf String Twq_hw Twq_nn Twq_nvdla Twq_sim Twq_util Twq_winograd
