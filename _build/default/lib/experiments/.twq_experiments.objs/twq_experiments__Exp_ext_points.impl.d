lib/experiments/exp_ext_points.ml: Array Float List Printf Twq_util Twq_winograd
