lib/experiments/exp_common.mli: Format Twq_dataset Twq_nn Twq_tensor
