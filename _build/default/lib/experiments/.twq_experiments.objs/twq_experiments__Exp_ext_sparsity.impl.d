lib/experiments/exp_ext_sparsity.ml: Array Float Printf Twq_tensor Twq_util Twq_winograd
