lib/experiments/exp_fig1.ml: Array Buffer Exp_common Float Format List Printf Twq_tensor Twq_util Twq_winograd
