lib/experiments/exp_ext_ablation.ml: Arch Buffer List Operator Printf Twq_nn Twq_sim Twq_util Twq_winograd
