lib/experiments/exp_ext_graph.ml: Arch Buffer List Operator Printf Twq_nn Twq_sim Twq_tensor Twq_util Twq_winograd
