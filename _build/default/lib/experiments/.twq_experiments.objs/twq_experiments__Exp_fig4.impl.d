lib/experiments/exp_fig4.ml: Array Exp_common Float List Printf Twq_quant Twq_util Twq_winograd
