lib/experiments/exp_tab2.ml: Exp_common List Twq_nn Twq_util Twq_winograd
