lib/experiments/exp_ext_engines.ml: Buffer List Printf Twq_hw Twq_util Twq_winograd
