lib/experiments/exp_ext_sparse.ml: List Printf Twq_quant Twq_tensor Twq_util Twq_winograd
