(** Extension — sparse Winograd combined with tap-wise quantization.

    The paper names "combining pruning with tap-wise quantization" as
    future work (Sec. VI).  This experiment prunes the tap-wise quantized
    Winograd-domain weights at several densities and reports the accuracy
    proxy (RMS noise vs FP32) against the remaining MAC fraction — the
    operating curve a sparse Winograd accelerator would exploit. *)

module Tensor = Twq_tensor.Tensor
module Transform = Twq_winograd.Transform
module Tapwise = Twq_quant.Tapwise
module Pruning = Twq_quant.Pruning
module Table = Twq_util.Table
module Rng = Twq_util.Rng

let name = "ext-sparse"
let description = "Extension: Winograd-domain pruning on top of tap-wise int8"

let densities = [ 1.0; 0.75; 0.5; 0.4; 0.3; 0.2; 0.1 ]

(* Structured results, consumed by the tests: for each density, the noise
   of the int8 tap-wise pruned layer and of a pruning-only reference (the
   same pipeline at 20 Winograd-domain bits, where quantization noise is
   negligible). *)
let curve ?(fast = false) () =
  let rng = Rng.create 9090 in
  let chans = if fast then 4 else 12 in
  let hw = if fast then 12 else 24 in
  let x = Tensor.rand_gaussian rng [| 1; chans; hw; hw |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| chans; chans; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let layer =
    Tapwise.calibrate
      ~config:(Tapwise.default_config Transform.F4)
      ~w ~sample_inputs:[ x ] ~pad:1 ()
  in
  let hi_prec =
    Tapwise.calibrate
      ~config:{ (Tapwise.default_config Transform.F4) with Tapwise.wino_bits = 20 }
      ~w ~sample_inputs:[ x ] ~pad:1 ()
  in
  List.map
    (fun d ->
      let pruned = Pruning.prune_layer layer ~density:d in
      let pruned_ref = Pruning.prune_layer hi_prec ~density:d in
      ( d,
        Pruning.effective_macs_fraction pruned,
        Tapwise.quantization_noise pruned x ~w,
        Tapwise.quantization_noise pruned_ref x ~w ))
    densities

let run ?(fast = false) () =
  let rows = curve ~fast () in
  let tbl =
    Table.create
      ~title:"Extension — sparse + tap-wise Winograd F4 (int8, pow2 scales)"
      [ "density"; "winograd MACs kept"; "rms noise int8+prune";
        "rms noise prune only" ]
  in
  List.iter
    (fun (d, actual, noise, noise_ref) ->
      Table.add_row tbl
        [
          Printf.sprintf "%.0f%%" (100.0 *. d);
          Printf.sprintf "%.1f%%" (100.0 *. actual);
          Table.cell_fx 4 noise;
          Table.cell_fx 4 noise_ref;
        ])
    rows;
  Table.render tbl
  ^ "\nWithout the retraining flow of Liu et al., unstructured pruning of the\n\
     (dense, Gaussian-like) Winograd-domain weights degrades quickly; the\n\
     int8 tap-wise quantization adds almost nothing on top of the pruning\n\
     error at any density — the two techniques compose, but the sparsity\n\
     itself has to come from sparsity-aware training (the paper's stated\n\
     future work).\n"
