(** Table V — AI-core area and power breakdown. *)

module AP = Twq_hw.Area_power
module Engine = Twq_hw.Engine
module Table = Twq_util.Table

let name = "tab5"
let description = "Table V: AI-core area/power breakdown and TOp/s/W"

let run ?(fast = false) () =
  ignore fast;
  let total = AP.core_area_mm2 in
  let pct a = Printf.sprintf "%.1f%%" (100.0 *. a /. total) in
  let tbl =
    Table.create ~title:"Table V — AI core breakdown (0.8 V, 500 MHz)"
      [ "unit"; "area mm^2"; "share"; "peak power mW" ]
  in
  Table.add_row tbl
    [ "Cube"; Table.cell_f AP.cube_area_mm2; pct AP.cube_area_mm2;
      Printf.sprintf "%.0f (im2col) / %.0f (F4)" AP.cube_power_mw_im2col
        AP.cube_power_mw_winograd ];
  Table.add_row tbl
    [ "MTE1 im2col"; Table.cell_f AP.im2col_engine_area_mm2;
      pct AP.im2col_engine_area_mm2; Table.cell_fx 0 AP.im2col_engine_power_mw ];
  let engine label cfg =
    Table.add_row tbl
      [ label; Table.cell_f (AP.engine_area_mm2 cfg); pct (AP.engine_area_mm2 cfg);
        Table.cell_fx 0 (AP.engine_power_mw cfg) ]
  in
  engine "MTE1 IN_XFORM" AP.input_engine;
  engine "MTE1 WT_XFORM" AP.weight_engine;
  engine "FIX_PIPE OUT_XFORM" AP.output_engine;
  Table.add_sep tbl;
  let mem label m =
    match (AP.mem_size_kb m, AP.mem_area_mm2 m) with
    | Some kb, Some a ->
        Table.add_row tbl
          [ Printf.sprintf "%s (%d kB)" label kb; Table.cell_f a; pct a;
            Printf.sprintf "rd %.2f / wr %.2f pJ/B" (AP.rd_pj_per_byte m)
              (AP.wr_pj_per_byte m) ]
    | _ -> ()
  in
  mem "L0A" AP.L0A;
  mem "L0B" AP.L0B;
  mem "L0C" AP.L0C_portA;
  mem "L1" AP.L1;
  mem "UB" AP.UB;
  let engines_total =
    AP.engine_area_mm2 AP.input_engine +. AP.engine_area_mm2 AP.weight_engine
    +. AP.engine_area_mm2 AP.output_engine
  in
  Table.render tbl
  ^ Printf.sprintf
      "\nWinograd engines: %.2f mm^2 = %.1f%% of the core (paper: 6.1%%)\n\
       Cube TOp/s/W: %.2f (im2col) / %.2f (F4 spatial-equivalent; paper: 5.39 / 17.04)\n"
      engines_total
      (100.0 *. engines_total /. total)
      (AP.cube_tops_per_watt ~winograd:false)
      (AP.cube_tops_per_watt ~winograd:true)
