(** Table II — ablation study of tap-wise quantization.

    The paper trains ResNet-34 on ImageNet; this reproduction trains the
    stand-in CNN on SynthImages (see DESIGN.md).  Rows follow the paper:
    algorithm (im2col/F2/F4), tap-wise on/off, power-of-two scales on/off,
    log2-gradient scale learning, knowledge distillation, and int8 vs
    int8/10 in the Winograd domain.  Absolute accuracies differ from the
    paper; the *ordering* of configurations is the reproduced result. *)

module Qat_model = Twq_nn.Qat_model
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table

let name = "tab2"
let description = "Table II: ablation of tap-wise quantization (QAT on SynthImages)"

type row = {
  alg : string;
  tapwise : bool;
  pow2 : bool;
  log2_grad : bool;
  kd : bool;
  bits : string;
  mode : Qat_model.conv_mode option;  (* None = FP32 baseline *)
}

let wa variant ~wino_bits ~tapwise ~pow2 ~learned =
  Qat_model.Wa { Qat_model.variant; wino_bits; tapwise; pow2; learned }

let rows =
  [
    { alg = "im2col"; tapwise = false; pow2 = false; log2_grad = false; kd = false;
      bits = "FP32"; mode = None };
    { alg = "im2col"; tapwise = false; pow2 = false; log2_grad = false; kd = false;
      bits = "8"; mode = Some Qat_model.Int8_spatial };
    { alg = "F2"; tapwise = false; pow2 = false; log2_grad = false; kd = false;
      bits = "8";
      mode = Some (wa Transform.F2 ~wino_bits:8 ~tapwise:false ~pow2:false ~learned:false) };
    { alg = "F2"; tapwise = false; pow2 = false; log2_grad = false; kd = false;
      bits = "8/10";
      mode = Some (wa Transform.F2 ~wino_bits:10 ~tapwise:false ~pow2:false ~learned:false) };
    { alg = "F4"; tapwise = false; pow2 = false; log2_grad = false; kd = true;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:false ~pow2:false ~learned:false) };
    { alg = "F4"; tapwise = false; pow2 = false; log2_grad = false; kd = true;
      bits = "8/10";
      mode = Some (wa Transform.F4 ~wino_bits:10 ~tapwise:false ~pow2:false ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = false; log2_grad = false; kd = false;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~pow2:false ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = false; log2_grad = false; kd = false;
      bits = "8/10";
      mode = Some (wa Transform.F4 ~wino_bits:10 ~tapwise:true ~pow2:false ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = false; log2_grad = false; kd = true;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~pow2:false ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = false; kd = false;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~pow2:true ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = false; kd = false;
      bits = "8/10";
      mode = Some (wa Transform.F4 ~wino_bits:10 ~tapwise:true ~pow2:true ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = true; kd = false;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~pow2:true ~learned:true) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = true; kd = false;
      bits = "8/10";
      mode = Some (wa Transform.F4 ~wino_bits:10 ~tapwise:true ~pow2:true ~learned:true) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = false; kd = true;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~pow2:true ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = false; kd = true;
      bits = "8/10";
      mode = Some (wa Transform.F4 ~wino_bits:10 ~tapwise:true ~pow2:true ~learned:false) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = true; kd = true;
      bits = "8";
      mode = Some (wa Transform.F4 ~wino_bits:8 ~tapwise:true ~pow2:true ~learned:true) };
    { alg = "F4"; tapwise = true; pow2 = true; log2_grad = true; kd = true;
      bits = "8/10";
      mode = Some (wa Transform.F4 ~wino_bits:10 ~tapwise:true ~pow2:true ~learned:true) };
  ]

let check b = if b then "x" else ""

(* Structured result, also consumed by the integration tests. *)
let accuracies ?(fast = false) () =
  let ref_acc = Exp_common.fp32_reference ~fast in
  List.map
    (fun r ->
      let acc =
        match r.mode with
        | None -> ref_acc
        | Some mode -> Exp_common.train_and_eval ~fast ~mode ~kd:r.kd ()
      in
      (r, acc))
    rows

let run ?(fast = false) () =
  let results = accuracies ~fast () in
  let ref_acc = Exp_common.fp32_reference ~fast in
  let tbl =
    Table.create
      ~title:"Table II — ablation (stand-in CNN on SynthImages; top-1 %)"
      [ "Alg."; "tap"; "2^x"; "log2-grad"; "KD"; "intn"; "Top-1"; "delta" ]
  in
  List.iter
    (fun (r, acc) ->
      Table.add_row tbl
        [
          r.alg;
          check r.tapwise;
          check r.pow2;
          check r.log2_grad;
          check r.kd;
          r.bits;
          Table.cell_fx 1 (100.0 *. acc);
          Table.cell_fx 1 (100.0 *. (acc -. ref_acc));
        ])
    results;
  Table.render tbl
