(** Extension — end-to-end graph compilation of a residual network.

    Exercises the full downstream-user flow on an executable ResNet-20
    graph: BN folding, per-layer kernel selection against the simulator
    (Sec. V-B5's compiler), and whole-graph integer quantization including
    the residual adds.  Reports the kernel mix, the conv-level speed-up and
    the integer-vs-float logit noise. *)

module Graph = Twq_nn.Graph
module Gmodels = Twq_nn.Gmodels
module Passes = Twq_nn.Passes
module Int_graph = Twq_nn.Int_graph
module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Table = Twq_util.Table
module GC = Twq_sim.Graph_compiler
module Zoo = Twq_nn.Zoo
open Twq_sim

let name = "ext-graph"
let description = "Extension: graph compiler on ResNet-20 (fold BN, select kernels, quantize)"

let run ?(fast = false) () =
  let rng = Rng.create 7777 in
  let width_div = if fast then 4 else 1 in
  let res = if fast then 16 else 32 in
  let g = Gmodels.resnet20 ~rng ~classes:10 ~width_div () in
  let folded = Passes.fold_bn g in
  let x = Tensor.rand_gaussian rng [| 1; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "ResNet-20 graph: %d convs, %d BNs -> folded to %d BNs (max err %.1e)\n\n"
       (Graph.conv_count g) (Passes.bn_count g) (Passes.bn_count folded)
       (Tensor.max_abs (Tensor.sub (Graph.run g x) (Graph.run folded x))));
  (* Kernel selection across batch sizes. *)
  let tbl =
    Table.create ~title:"per-layer kernel mix under the simulator's compiler"
      [ "batch"; "im2col"; "F2"; "F4"; "conv speed-up vs all-im2col" ]
  in
  List.iter
    (fun batch ->
      let choices =
        GC.select Arch.default folded ~input:[| batch; 3; res; res |] ()
      in
      let count k =
        List.length (List.filter (fun c -> c.GC.kind = k) choices)
      in
      Table.add_row tbl
        [
          string_of_int batch;
          string_of_int (count Operator.Im2col);
          string_of_int (count (Operator.Winograd Twq_winograd.Transform.F2));
          string_of_int (count (Operator.Winograd Twq_winograd.Transform.F4));
          Table.cell_speedup (GC.speedup_vs_im2col choices);
        ])
    (if fast then [ 1 ] else [ 1; 8; 16 ]);
  Buffer.add_string buf (Table.render tbl);
  (* Integer quantization of the whole graph. *)
  let iq = Int_graph.quantize folded ~calibration:x () in
  Buffer.add_string buf
    (Printf.sprintf
       "\nint8 graph: %d Winograd + %d spatial layers; logits noise vs float: %.4f\n"
       (Int_graph.winograd_layer_count iq)
       (Int_graph.spatial_layer_count iq)
       (Int_graph.noise_vs_float iq folded x));
  Buffer.contents buf
