(** Extension — strided Winograd decomposition.

    Validates the paper's Sec.-III claim that "stride-2 F4 leads only to a
    1.8× MACs reduction": the polyphase decomposition runs end-to-end
    (checked against the direct stride-2 convolution) and the operation
    count reproduces the 1.8× figure, justifying the paper's decision to
    map strided layers onto the im2col operator. *)

module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Strided = Twq_winograd.Strided
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table
module Rng = Twq_util.Rng

let name = "ext-stride"
let description = "Extension: stride-2 Winograd decomposition and its 1.8x ceiling"

let run ?(fast = false) () =
  let rng = Rng.create 31337 in
  let chans = if fast then 2 else 8 in
  let hw = if fast then 10 else 20 in
  let x = Tensor.rand_gaussian rng [| 1; chans; hw; hw |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| chans; chans; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let direct = Ops.conv2d ~stride:2 ~pad:0 ~x ~w () in
  let decomposed = Strided.conv2d_stride2 ~x ~w in
  let err = Tensor.max_abs (Tensor.sub direct decomposed) in
  let tbl =
    Table.create ~title:"Extension — stride-2 3x3 via polyphase Winograd (m = 4)"
      [ "quantity"; "value" ]
  in
  Table.add_row tbl [ "decomposition max |error|"; Printf.sprintf "%.2e" err ];
  Table.add_row tbl
    [ "direct muls / 4x4 tile"; string_of_int Strided.macs_direct_per_tile ];
  Table.add_row tbl
    [ "winograd muls / 4x4 tile"; string_of_int Strided.macs_winograd_per_tile ];
  Table.add_row tbl
    [ "stride-2 MACs reduction"; Table.cell_speedup Strided.macs_reduction ];
  Table.add_row tbl
    [ "stride-1 F4 MACs reduction";
      Table.cell_speedup (Transform.macs_reduction Transform.F4) ];
  Table.render tbl
  ^ Printf.sprintf
      "\npaper (Sec. III): \"stride-2 F4 leads only to a %.1fx MACs reduction\"\n\
       — hence strided layers stay on the im2col operator.\n"
      Strided.macs_reduction
