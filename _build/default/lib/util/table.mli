(** Plain-text table rendering for the experiment harnesses.

    Every experiment prints its paper table/figure through this module so
    the bench output stays uniform and diffable. *)

type align = Left | Right

type t

val create : ?title:string -> string list -> t
(** [create ?title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Insert a horizontal separator row. *)

val render : ?align:align -> t -> string

val print : ?align:align -> t -> unit
(** [render] followed by [print_string]. *)

val cell_f : float -> string
(** Fixed 2-decimal float cell. *)

val cell_fx : int -> float -> string
(** [cell_fx digits v] — float cell with [digits] decimals. *)

val cell_speedup : float -> string
(** Renders as e.g. ["1.83x"]. *)
