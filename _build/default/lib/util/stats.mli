(** Summary statistics and histograms over float arrays. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val stddev : float array -> float
val min_max : float array -> float * float
val abs_max : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly-positive values. *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array;  (** per-bin counts *)
  total : int;
}

val histogram : bins:int -> lo:float -> hi:float -> float array -> histogram
(** Values outside [\[lo,hi\]] are clamped into the terminal bins. *)

val histogram_auto : bins:int -> float array -> histogram
(** Range taken from the data. *)

val bin_center : histogram -> int -> float

val pp_histogram : Format.formatter -> histogram -> unit
(** ASCII sparkline rendering, one line per bin. *)
