let ensure_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  ensure_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  ensure_nonempty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  ensure_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let abs_max xs =
  ensure_nonempty "Stats.abs_max" xs;
  Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 xs

let percentile xs p =
  ensure_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

let geometric_mean xs =
  ensure_nonempty "Stats.geometric_mean" xs;
  let acc =
    Array.fold_left
      (fun a x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value"
        else a +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

type histogram = { lo : float; hi : float; counts : int array; total : int }

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if not (lo < hi) then invalid_arg "Stats.histogram: lo must be < hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float (Float.floor ((x -. lo) /. width)) in
      let i = Stdlib.max 0 (Stdlib.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; hi; counts; total = Array.length xs }

let histogram_auto ~bins xs =
  ensure_nonempty "Stats.histogram_auto" xs;
  let lo, hi = min_max xs in
  let lo, hi = if lo < hi then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
  histogram ~bins ~lo ~hi xs

let bin_center h i =
  let bins = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int bins in
  h.lo +. ((float_of_int i +. 0.5) *. width)

let pp_histogram ppf h =
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  Array.iteri
    (fun i c ->
      let bar_len = c * 50 / peak in
      Format.fprintf ppf "%9.3f | %s %d@." (bin_center h i)
        (String.make bar_len '#') c)
    h.counts
