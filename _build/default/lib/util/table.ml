type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  mutable rows : row list;  (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  let n_cols = List.length t.headers in
  let n = List.length cells in
  if n > n_cols then invalid_arg "Table.add_row: too many cells";
  let cells =
    if n = n_cols then cells
    else cells @ List.init (n_cols - n) (fun _ -> "")
  in
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let n_cols = List.length t.headers in
  let widths = Array.make n_cols 0 in
  let measure cells =
    List.iteri
      (fun i c -> widths.(i) <- Stdlib.max widths.(i) (String.length c))
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad c w =
    let n = w - String.length c in
    match align with
    | Left -> c ^ String.make n ' '
    | Right -> String.make n ' ' ^ c
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad c widths.(i)))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_sep () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Separator -> emit_sep ()) rows;
  Buffer.contents buf

let print ?align t = print_string (render ?align t)

let cell_f v = Printf.sprintf "%.2f" v
let cell_fx digits v = Printf.sprintf "%.*f" digits v
let cell_speedup v = Printf.sprintf "%.2fx" v
