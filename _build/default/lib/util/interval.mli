(** Integer interval arithmetic for worst-case bitwidth analysis.

    Used by the transformation-engine DFG builder to keep every intermediate
    operand at its minimal bitwidth, and to prove the paper's bit-true
    claims (F2 needs +2/+3 bits, F4 needs +8/+10 bits). *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]. @raise Invalid_argument if [lo > hi]. *)

val point : int -> t
val of_signed_bits : int -> t
(** [of_signed_bits n] is the range of an [n]-bit two's-complement integer,
    [\[-2^(n-1), 2^(n-1)-1\]]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul_const : int -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic right shift (floor division by a power of two). *)

val union : t -> t -> t
val contains : t -> int -> bool

val signed_bits : t -> int
(** Minimal two's-complement bitwidth able to hold every value of the
    interval (at least 1). *)

val pp : Format.formatter -> t -> unit
