lib/util/rmat.ml: Array Format Rat
