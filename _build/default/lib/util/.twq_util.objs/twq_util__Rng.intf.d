lib/util/rng.mli:
