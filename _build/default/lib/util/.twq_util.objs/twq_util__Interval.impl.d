lib/util/interval.ml: Format Stdlib
