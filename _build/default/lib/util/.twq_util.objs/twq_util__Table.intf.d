lib/util/table.mli:
