lib/util/rmat.mli: Format Rat
