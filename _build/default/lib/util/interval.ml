type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = { lo = x; hi = x }

let of_signed_bits n =
  if n <= 0 then invalid_arg "Interval.of_signed_bits: n must be positive";
  { lo = -(1 lsl (n - 1)); hi = (1 lsl (n - 1)) - 1 }

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }
let neg a = { lo = -a.hi; hi = -a.lo }

let mul_const c a =
  if c >= 0 then { lo = c * a.lo; hi = c * a.hi }
  else { lo = c * a.hi; hi = c * a.lo }

let shift_left a k = { lo = a.lo lsl k; hi = a.hi lsl k }
let shift_right a k = { lo = a.lo asr k; hi = a.hi asr k }

let union a b = { lo = Stdlib.min a.lo b.lo; hi = Stdlib.max a.hi b.hi }
let contains a x = a.lo <= x && x <= a.hi

(* Smallest n s.t. -2^(n-1) <= lo and hi <= 2^(n-1)-1. *)
let signed_bits a =
  let rec loop n =
    let r = of_signed_bits n in
    if r.lo <= a.lo && a.hi <= r.hi then n else loop (n + 1)
  in
  loop 1

let pp ppf a = Format.fprintf ppf "[%d, %d]" a.lo a.hi
