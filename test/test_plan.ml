(* Tests for the compiled execution planner: bit-identity of planned
   execution against the reference interpreters over random graphs
   (sequentially and with a worker pool), buffer-aliasing safety of the
   liveness-based arena assignment, epilogue fusion on real models, and
   the shape-keyed plan cache. *)

open Twq_nn
module Tensor = Twq_tensor.Tensor
module Shape = Twq_tensor.Shape
module Rng = Twq_util.Rng
module Parallel = Twq_util.Parallel
module Synth = Twq_dataset.Synth_images

let tensor_exact = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:0.0)

(* ------------------------------------------------------ random graphs *)

(* Random CNN exercising every planner primitive: Winograd and spatial
   convs, residual adds, leaky ReLU, max/avg pooling, upsampling and
   channel concatenation, ending in the GAP→Linear head. *)
let random_graph seed =
  let rng = Rng.create seed in
  let g = Graph.create () in
  let x = Graph.input g in
  let node = ref x and chans = ref 3 and size = ref 8 in
  let conv ?cout ?(k = 3) ?(pad = 1) src cin =
    let cout = match cout with Some c -> c | None -> cin in
    Graph.add g
      (Graph.Conv
         { w = Tensor.rand_gaussian rng [| cout; cin; k; k |] ~mu:0.0 ~sigma:0.3;
           bias = None; stride = 1; pad })
      [ src ]
  in
  let n_ops = 3 + Rng.int rng 5 in
  for _ = 1 to n_ops do
    match Rng.int rng 8 with
    | 0 ->
        (* Winograd conv + ReLU — should fuse. *)
        let cout = 2 + Rng.int rng 6 in
        let c = conv ~cout !node !chans in
        chans := cout;
        node := Graph.add g Graph.Relu [ c ]
    | 1 ->
        (* 1x1 conv: the spatial int8 path. *)
        let cout = 2 + Rng.int rng 6 in
        node := conv ~cout ~k:1 ~pad:0 !node !chans;
        chans := cout
    | 2 ->
        (* Two-branch residual block + ReLU — add should fuse. *)
        let c1 = conv !node !chans in
        let c2 = conv !node !chans in
        let a = Graph.add g Graph.Add [ c1; c2 ] in
        node := Graph.add g Graph.Relu [ a ]
    | 3 -> node := Graph.add g (Graph.Leaky_relu (1 + Rng.int rng 3)) [ !node ]
    | 4 when !size >= 8 ->
        node := Graph.add g (Graph.Max_pool { k = 2; stride = 2 }) [ !node ];
        size := !size / 2
    | 5 when !size >= 8 ->
        node := Graph.add g (Graph.Avg_pool { k = 2; stride = 2 }) [ !node ];
        size := !size / 2
    | 6 when !size <= 8 ->
        node := Graph.add g (Graph.Upsample 2) [ !node ];
        size := !size * 2
    | 7 ->
        (* Concat of a Winograd and a spatial branch. *)
        let ca = 2 + Rng.int rng 3 and cb = 2 + Rng.int rng 3 in
        let c1 = conv ~cout:ca !node !chans in
        let c2 = conv ~cout:cb ~k:1 ~pad:0 !node !chans in
        node := Graph.add g Graph.Concat [ c1; c2 ];
        chans := ca + cb
    | _ -> node := Graph.add g Graph.Relu [ !node ]
  done;
  let gap = Graph.add g Graph.Global_avg_pool [ !node ] in
  let fc =
    Graph.add g
      (Graph.Linear
         { w = Tensor.rand_gaussian rng [| 3; !chans |] ~mu:0.0 ~sigma:0.5;
           bias = Some (Tensor.rand_gaussian rng [| 3 |] ~mu:0.0 ~sigma:0.1) })
      [ gap ]
  in
  Graph.set_output g fc;
  g

(* No two overlapping liveness intervals may share an arena buffer —
   otherwise a later node would scribble over a still-live activation. *)
let check_no_live_aliasing plan =
  let a = Array.of_list (Plan.assignments plan) in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          if i < j && x.Plan.slot = y.Plan.slot then
            Alcotest.(check bool)
              (Printf.sprintf
                 "buffer %d reused while live (nodes %d [%d,%d] / %d [%d,%d])"
                 x.Plan.slot x.Plan.node x.Plan.birth x.Plan.death y.Plan.node
                 y.Plan.birth y.Plan.death)
              true
              (x.Plan.death < y.Plan.birth || y.Plan.death < x.Plan.birth))
        a)
    a

let prop_planned_matches_interpreter =
  QCheck.Test.make ~name:"planned run == run_ref (random graphs)" ~count:25
    (QCheck.int_range 0 100000) (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 1) in
      let n = 1 + Rng.int rng 2 in
      let x = Tensor.rand_gaussian rng [| n; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
      let iq = Int_graph.quantize (Passes.fold_bn g) ~calibration:x () in
      let reference = Int_graph.run_ref iq x in
      let planned = Int_graph.run iq x in
      let planned_seq = Parallel.sequential (fun () -> Int_graph.run iq x) in
      Parallel.set_num_domains 4;
      let planned_par = Int_graph.run iq x in
      Parallel.clear_num_domains_override ();
      (match Int_graph.plans iq with
      | None -> Alcotest.fail "quantized graph has no plan cache"
      | Some c ->
          check_no_live_aliasing (Plan.plan c ~input_shape:x.Tensor.shape));
      Tensor.approx_equal ~tol:0.0 reference planned
      && Tensor.approx_equal ~tol:0.0 reference planned_seq
      && Tensor.approx_equal ~tol:0.0 reference planned_par)

(* ----------------------------------------------------------- resnet20 *)

let resnet20_graph ?(width_div = 4) ~seed () =
  let rng = Rng.create seed in
  let g = Passes.fold_bn (Gmodels.resnet20 ~rng ~width_div ()) in
  let cal = Tensor.rand_gaussian rng [| 2; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  (Int_graph.quantize g ~calibration:cal (), cal)

let test_resnet20_bit_identical () =
  let iq, x = resnet20_graph ~seed:11 () in
  Alcotest.check tensor_exact "planned == run_ref"
    (Int_graph.run_ref iq x) (Int_graph.run iq x);
  Parallel.set_num_domains 4;
  let par = Int_graph.run iq x in
  Parallel.clear_num_domains_override ();
  Alcotest.check tensor_exact "planned (4 domains) == run_ref"
    (Int_graph.run_ref iq x) par

let test_resnet20_plan_shape () =
  let iq, x = resnet20_graph ~seed:12 () in
  let c = Option.get (Int_graph.plans iq) in
  ignore (Int_graph.run iq x);
  let p = Plan.plan c ~input_shape:x.Tensor.shape in
  check_no_live_aliasing p;
  (* ResNet fuses every conv+ReLU and residual add+ReLU pair. *)
  Alcotest.(check bool)
    (Printf.sprintf "fused epilogues %d > 10" (Plan.fused_epilogues p))
    true
    (Plan.fused_epilogues p > 10);
  (* Liveness reuse: the arena is far below the sum of all activations,
     with a handful of buffers covering the whole schedule. *)
  Alcotest.(check bool)
    (Printf.sprintf "arena %d < naive/2 (%d)" (Plan.arena_words p)
       (Plan.naive_words p))
    true
    (Plan.arena_words p * 2 < Plan.naive_words p);
  Alcotest.(check bool)
    (Printf.sprintf "buffers %d < steps %d" (Plan.num_buffers p)
       (Plan.num_steps p))
    true
    (Plan.num_buffers p < Plan.num_steps p)

let test_plan_cache_per_shape () =
  let iq, x = resnet20_graph ~seed:13 () in
  let c = Option.get (Int_graph.plans iq) in
  ignore (Int_graph.run iq x);
  ignore (Int_graph.run iq x);
  Alcotest.(check int) "one shape cached" 1 (List.length (Plan.cached_shapes c));
  let rng = Rng.create 99 in
  let x5 = Tensor.rand_gaussian rng [| 5; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  Alcotest.check tensor_exact "batch-5 planned == run_ref"
    (Int_graph.run_ref iq x5) (Int_graph.run iq x5);
  Alcotest.(check int) "two shapes cached" 2 (List.length (Plan.cached_shapes c))

let test_serialized_graph_plans () =
  let iq, x = resnet20_graph ~seed:14 () in
  let reloaded = Int_graph.of_string (Int_graph.to_string iq) in
  Alcotest.(check bool) "reloaded graph has plans" true
    (Int_graph.plans reloaded <> None);
  Alcotest.check tensor_exact "reloaded planned == original run_ref"
    (Int_graph.run_ref iq x) (Int_graph.run reloaded x)

(* -------------------------------------------------------------- deploy *)

let test_deploy_planned_matches_ref () =
  let model =
    Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:21
  in
  let rng = Rng.create 22 in
  let cal = Tensor.rand_gaussian rng [| 2; 3; 12; 12 |] ~mu:0.0 ~sigma:1.0 in
  let net = Deploy.export model ~calibration:cal () in
  let x = Tensor.rand_gaussian rng [| 3; 3; 12; 12 |] ~mu:0.0 ~sigma:1.0 in
  Alcotest.check tensor_exact "planned forward == forward_ref"
    (Deploy.forward_ref net x) (Deploy.forward net x);
  Parallel.set_num_domains 4;
  let par = Deploy.forward net x in
  Parallel.clear_num_domains_override ();
  Alcotest.check tensor_exact "planned forward (4 domains) == forward_ref"
    (Deploy.forward_ref net x) par;
  let p = Plan.plan (Deploy.plans net) ~input_shape:x.Tensor.shape in
  check_no_live_aliasing p;
  Alcotest.(check bool)
    (Printf.sprintf "vgg fuses its relus (%d)" (Plan.fused_epilogues p))
    true
    (Plan.fused_epilogues p >= 4)

let () =
  Alcotest.run "twq_plan"
    [
      ( "bit-identity",
        [
          QCheck_alcotest.to_alcotest prop_planned_matches_interpreter;
          Alcotest.test_case "resnet20 planned == run_ref" `Quick
            test_resnet20_bit_identical;
          Alcotest.test_case "deploy planned == forward_ref" `Quick
            test_deploy_planned_matches_ref;
        ] );
      ( "planner",
        [
          Alcotest.test_case "aliasing safety + fusion + reuse" `Quick
            test_resnet20_plan_shape;
          Alcotest.test_case "plan cache keyed by shape" `Quick
            test_plan_cache_per_shape;
          Alcotest.test_case "serialized graphs get plans" `Quick
            test_serialized_graph_plans;
        ] );
    ]
