(* Unit + property tests for the twq_util substrate: rationals, rational
   matrices, RNG determinism, statistics, intervals, table rendering. *)

open Twq_util

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

(* ------------------------------------------------------------------ Rat *)

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  Alcotest.check rat "0/7 = 0" Rat.zero (Rat.make 0 7)

let test_rat_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  Alcotest.check rat "1/2+1/3" (Rat.make 5 6) (Rat.add half third);
  Alcotest.check rat "1/2-1/3" (Rat.make 1 6) (Rat.sub half third);
  Alcotest.check rat "1/2*1/3" (Rat.make 1 6) (Rat.mul half third);
  Alcotest.check rat "(1/2)/(1/3)" (Rat.make 3 2) (Rat.div half third);
  Alcotest.check rat "inv 1/2" (Rat.of_int 2) (Rat.inv half);
  Alcotest.check rat "neg" (Rat.make (-1) 2) (Rat.neg half)

let test_rat_division_by_zero () =
  Alcotest.check_raises "make x 0" Rat.Division_by_zero (fun () ->
      ignore (Rat.make 1 0));
  Alcotest.check_raises "div by zero" Rat.Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv zero" Rat.Division_by_zero (fun () ->
      ignore (Rat.inv Rat.zero))

let test_rat_pow2 () =
  Alcotest.(check bool) "4 pow2" true (Rat.is_power_of_two (Rat.of_int 4));
  Alcotest.(check bool) "1/8 pow2" true (Rat.is_power_of_two (Rat.make 1 8));
  Alcotest.(check bool) "-2 pow2" true (Rat.is_power_of_two (Rat.of_int (-2)));
  Alcotest.(check bool) "3 not pow2" false (Rat.is_power_of_two (Rat.of_int 3));
  Alcotest.(check bool) "0 not pow2" false (Rat.is_power_of_two Rat.zero);
  Alcotest.(check (option int)) "log2 8" (Some 3) (Rat.log2_exact (Rat.of_int 8));
  Alcotest.(check (option int))
    "log2 1/4" (Some (-2))
    (Rat.log2_exact (Rat.make 1 4));
  Alcotest.(check (option int)) "log2 3" None (Rat.log2_exact (Rat.of_int 3));
  Alcotest.(check (option int))
    "log2 -2" None
    (Rat.log2_exact (Rat.of_int (-2)))

let test_rat_to_int () =
  Alcotest.(check int) "int" 7 (Rat.to_int_exn (Rat.of_int 7));
  Alcotest.check_raises "non-integer"
    (Invalid_argument "Rat.to_int_exn: not an integer") (fun () ->
      ignore (Rat.to_int_exn (Rat.make 1 2)))

let arb_rat =
  QCheck.map
    (fun (n, d) -> Rat.make n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-1000) 1000) (int_range (-50) 50))

let prop_rat_add_comm =
  QCheck.Test.make ~name:"rat add commutative" ~count:500
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_assoc =
  QCheck.Test.make ~name:"rat mul associative" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.mul (Rat.mul a b) c) (Rat.mul a (Rat.mul b c)))

let prop_rat_add_inverse =
  QCheck.Test.make ~name:"rat a + (-a) = 0" ~count:500 arb_rat (fun a ->
      Rat.is_zero (Rat.add a (Rat.neg a)))

let prop_rat_distributive =
  QCheck.Test.make ~name:"rat distributivity" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_float_consistent =
  QCheck.Test.make ~name:"rat to_float consistent with ops" ~count:500
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      let f = Rat.to_float (Rat.add a b) in
      Float.abs (f -. (Rat.to_float a +. Rat.to_float b)) < 1e-9)

(* ----------------------------------------------------------------- Rmat *)

let test_rmat_identity_mul () =
  let a = Rmat.of_ints [| [| 1; 2 |]; [| 3; 4 |] |] in
  let i2 = Rmat.identity 2 in
  Alcotest.(check bool) "I*A = A" true (Rmat.equal (Rmat.mul i2 a) a);
  Alcotest.(check bool) "A*I = A" true (Rmat.equal (Rmat.mul a i2) a)

let test_rmat_inverse () =
  let a = Rmat.of_ints [| [| 2; 1 |]; [| 5; 3 |] |] in
  let inv = Rmat.inverse a in
  Alcotest.(check bool)
    "A * A^-1 = I" true
    (Rmat.equal (Rmat.mul a inv) (Rmat.identity 2));
  Alcotest.(check bool)
    "A^-1 * A = I" true
    (Rmat.equal (Rmat.mul inv a) (Rmat.identity 2))

let test_rmat_inverse_singular () =
  let a = Rmat.of_ints [| [| 1; 2 |]; [| 2; 4 |] |] in
  Alcotest.check_raises "singular" (Failure "Rmat.inverse: singular matrix")
    (fun () -> ignore (Rmat.inverse a))

let test_rmat_inverse_needs_pivoting () =
  (* Zero in the leading position forces a row swap. *)
  let a = Rmat.of_ints [| [| 0; 1 |]; [| 1; 0 |] |] in
  let inv = Rmat.inverse a in
  Alcotest.(check bool)
    "permutation inverse" true
    (Rmat.equal (Rmat.mul a inv) (Rmat.identity 2))

let test_rmat_pinv_left () =
  (* Tall full-column-rank matrix: pinv_left must be a left inverse. *)
  let a = Rmat.of_ints [| [| 1; 0 |]; [| 0; 1 |]; [| 1; 1 |] |] in
  let p = Rmat.pinv_left a in
  Alcotest.(check bool)
    "G+ G = I" true
    (Rmat.equal (Rmat.mul p a) (Rmat.identity 2))

let test_rmat_transpose () =
  let a = Rmat.of_ints [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  let at = Rmat.transpose a in
  Alcotest.(check int) "rows" 3 (Rmat.rows at);
  Alcotest.(check int) "cols" 2 (Rmat.cols at);
  Alcotest.(check bool)
    "(A^T)^T = A" true
    (Rmat.equal (Rmat.transpose at) a)

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool)
    "different streams" true
    (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:3.0) in
  Alcotest.(check bool) "mean near 2" true (Float.abs (Stats.mean xs -. 2.0) < 0.1);
  Alcotest.(check bool)
    "stddev near 3" true
    (Float.abs (Stats.stddev xs -. 3.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs" true (Rng.int64 a <> Rng.int64 b)

let test_rng_pick_and_copy () =
  let rng = Rng.create 17 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]));
  (* copy freezes the stream state. *)
  let a = Rng.create 23 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy same next" (Rng.int64 a) (Rng.int64 b)

let test_rng_laplacian_moments () =
  let rng = Rng.create 29 in
  let xs = Array.init 20000 (fun _ -> Rng.laplacian rng ~mu:1.0 ~b:2.0) in
  Alcotest.(check bool) "mean near 1" true (Float.abs (Stats.mean xs -. 1.0) < 0.1);
  (* Laplace variance = 2b². *)
  Alcotest.(check bool) "variance near 8" true
    (Float.abs (Stats.variance xs -. 8.0) < 0.6)

(* ---------------------------------------------------------------- Stats *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 4.0 hi;
  Alcotest.(check (float 1e-9)) "absmax" 4.0 (Stats.abs_max xs)

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geometric_mean [| 1.0; 4.0 |])

let test_stats_histogram () =
  let h = Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 2.5; 3.5; 3.9 |] in
  Alcotest.(check (array int)) "counts" [| 1; 1; 1; 2 |] h.Stats.counts;
  Alcotest.(check int) "total" 5 h.Stats.total;
  (* Outliers clamp into terminal bins. *)
  let h2 = Stats.histogram ~bins:2 ~lo:0.0 ~hi:2.0 [| -5.0; 5.0 |] in
  Alcotest.(check (array int)) "clamped" [| 1; 1 |] h2.Stats.counts

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

(* ------------------------------------------------------------- Interval *)

let test_interval_basic () =
  let a = Interval.make (-3) 5 and b = Interval.make 2 4 in
  let sum = Interval.add a b in
  Alcotest.(check int) "add lo" (-1) sum.Interval.lo;
  Alcotest.(check int) "add hi" 9 sum.Interval.hi;
  let d = Interval.sub a b in
  Alcotest.(check int) "sub lo" (-7) d.Interval.lo;
  Alcotest.(check int) "sub hi" 3 d.Interval.hi;
  let n = Interval.neg a in
  Alcotest.(check int) "neg lo" (-5) n.Interval.lo;
  Alcotest.(check int) "neg hi" 3 n.Interval.hi

let test_interval_mul_const () =
  let a = Interval.make (-3) 5 in
  let p = Interval.mul_const 2 a in
  Alcotest.(check int) "pos lo" (-6) p.Interval.lo;
  Alcotest.(check int) "pos hi" 10 p.Interval.hi;
  let q = Interval.mul_const (-2) a in
  Alcotest.(check int) "neg lo" (-10) q.Interval.lo;
  Alcotest.(check int) "neg hi" 6 q.Interval.hi

let test_interval_signed_bits () =
  Alcotest.(check int) "int8 range" 8 (Interval.signed_bits (Interval.make (-128) 127));
  Alcotest.(check int) "needs 9" 9 (Interval.signed_bits (Interval.make (-128) 128));
  Alcotest.(check int) "point zero" 1 (Interval.signed_bits (Interval.point 0));
  Alcotest.(check int) "point -1" 1 (Interval.signed_bits (Interval.point (-1)))

let prop_interval_sound_add =
  (* Interval addition is sound: sampled sums land inside. *)
  QCheck.Test.make ~name:"interval add sound" ~count:300
    QCheck.(
      quad (int_range (-100) 100) (int_range 0 50) (int_range (-100) 100)
        (int_range 0 50))
    (fun (alo, aw, blo, bw) ->
      let a = Interval.make alo (alo + aw) in
      let b = Interval.make blo (blo + bw) in
      let s = Interval.add a b in
      Interval.contains s (alo + blo)
      && Interval.contains s (alo + aw + blo + bw))

let test_interval_shift () =
  let a = Interval.make (-7) 9 in
  let l = Interval.shift_left a 2 in
  Alcotest.(check int) "shl lo" (-28) l.Interval.lo;
  Alcotest.(check int) "shl hi" 36 l.Interval.hi;
  let r = Interval.shift_right a 1 in
  Alcotest.(check int) "shr lo" (-4) r.Interval.lo;
  Alcotest.(check int) "shr hi" 4 r.Interval.hi

(* ---------------------------------------------------------------- Table *)

let test_table_render () =
  let t = Twq_util.Table.create ~title:"T" [ "a"; "bb" ] in
  Twq_util.Table.add_row t [ "1"; "2" ];
  Twq_util.Table.add_row t [ "10" ];
  let s = Twq_util.Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool)
    "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = " 1 |  2"))

let test_table_left_align_and_histogram_pp () =
  let t = Twq_util.Table.create [ "col" ] in
  Twq_util.Table.add_row t [ "ab" ];
  Twq_util.Table.add_row t [ "c" ];
  let s = Twq_util.Table.render ~align:Twq_util.Table.Left t in
  Alcotest.(check bool) "left pads right" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "c  "));
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:2.0 [| 0.5; 1.5; 1.6 |] in
  let out = Format.asprintf "%a" Stats.pp_histogram h in
  Alcotest.(check bool) "histogram renders bars" true
    (String.length out > 0 && String.contains out '#')

let test_table_too_many_cells () =
  let t = Twq_util.Table.create [ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Twq_util.Table.add_row t [ "1"; "2" ])

(* --------------------------------------------------- checked Rat overflow *)

let test_rat_checked_scalars () =
  Alcotest.(check int) "checked_mul" 6 (Rat.checked_mul 2 3);
  Alcotest.(check int) "checked_mul by zero" 0 (Rat.checked_mul 0 max_int);
  Alcotest.(check int) "checked_add" 5 (Rat.checked_add 2 3);
  Alcotest.check_raises "mul wraps" Rat.Overflow (fun () ->
      ignore (Rat.checked_mul max_int 2));
  Alcotest.check_raises "mul wraps negative" Rat.Overflow (fun () ->
      ignore (Rat.checked_mul min_int 2));
  Alcotest.check_raises "add wraps" Rat.Overflow (fun () ->
      ignore (Rat.checked_add max_int 1));
  Alcotest.check_raises "add wraps negative" Rat.Overflow (fun () ->
      ignore (Rat.checked_add min_int (-1)))

let test_rat_arith_overflow () =
  let big = Rat.of_int (1 lsl 40) in
  Alcotest.check_raises "mul of huge rats" Rat.Overflow (fun () ->
      ignore (Rat.mul big big));
  Alcotest.check_raises "add with huge denominators" Rat.Overflow (fun () ->
      ignore (Rat.add (Rat.make 1 (1 lsl 35)) (Rat.make 1 ((1 lsl 35) - 1))))

(* --------------------------------------------- common-denominator lift *)

(* F(6,3) from the Lavin points is exactly where PR 9's RNS backend runs
   the lift; pin the scales so a synthesis change cannot silently shift
   the range proof. *)
let lift_roundtrip m =
  let s, lifted = Rmat.lift_common_denominator m in
  Alcotest.(check int) "lcm matches" s (Rmat.common_denominator m);
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Alcotest.check rat
            (Printf.sprintf "entry (%d,%d) round-trips" i j)
            m.(i).(j) (Rat.make v s))
        row)
    lifted

let test_rmat_lift_f6 () =
  let gen =
    Twq_winograd.Generator.make ~points:(Twq_winograd.Generator.lavin_points 7)
      ~m:6 ~r:3
  in
  Alcotest.(check int) "bt scale" 4 (Rmat.common_denominator gen.Twq_winograd.Generator.bt);
  Alcotest.(check int) "g scale" 90 (Rmat.common_denominator gen.Twq_winograd.Generator.g);
  Alcotest.(check int) "at scale" 32 (Rmat.common_denominator gen.Twq_winograd.Generator.at);
  lift_roundtrip gen.Twq_winograd.Generator.bt;
  lift_roundtrip gen.Twq_winograd.Generator.g;
  lift_roundtrip gen.Twq_winograd.Generator.at

let test_rmat_lift_f8 () =
  let gen =
    Twq_winograd.Generator.make ~points:(Twq_winograd.Generator.lavin_points 9)
      ~m:8 ~r:3
  in
  lift_roundtrip gen.Twq_winograd.Generator.bt;
  lift_roundtrip gen.Twq_winograd.Generator.g;
  lift_roundtrip gen.Twq_winograd.Generator.at

let test_rmat_lift_overflow_names_entry () =
  let row = [| Rat.make 1 (1 lsl 25); Rat.make 1 14348907; Rat.make 1 48828125 |] in
  Alcotest.check_raises "lcm overflow names entry"
    (Rmat.Lift_overflow
       "Rmat.common_denominator: lcm of denominators overflows at entry \
        (0,2) = 1/48828125")
    (fun () -> ignore (Rmat.common_denominator [| row |]));
  let big = 1 lsl 40 in
  Alcotest.check_raises "rescale overflow names entry"
    (Rmat.Lift_overflow
       (Printf.sprintf
          "Rmat.lift_common_denominator: entry (0,1) = %d overflows at \
           scale %d"
          big big))
    (fun () ->
      ignore
        (Rmat.lift_common_denominator [| [| Rat.make 1 big; Rat.of_int big |] |]))

(* --------------------------------------------------------------- modint *)

let prop_modint_reduce =
  QCheck.Test.make ~name:"reduce lands in [0,p) and is congruent" ~count:200
    QCheck.(pair (int_range (-1000000) 1000000) (int_range 2 8191))
    (fun (v, p) ->
      let r = Modint.reduce v p in
      0 <= r && r < p && (v - r) mod p = 0)

let test_modint_inv () =
  List.iter
    (fun (a, p) ->
      match Modint.inv a p with
      | Some b -> Alcotest.(check int) (Printf.sprintf "%d * inv %d mod %d" a a p) 1 (a * b mod p)
      | None -> Alcotest.fail "expected invertible")
    [ (3, 251); (100, 8191); (250, 251); (7, 240) ];
  Alcotest.(check bool) "non-coprime has no inverse" true
    (Modint.inv 10 15 = None);
  Alcotest.(check bool) "zero has no inverse" true (Modint.inv 0 251 = None)

let test_modint_crt_rejections () =
  let expect_err basis =
    match Modint.Crt.make basis with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected Crt.make rejection"
  in
  expect_err [||];
  expect_err (Array.make 9 2);
  expect_err [| 251; 0 |];
  expect_err [| 251; 8192 |];
  expect_err [| 251; 502 |];
  (* 8 near-2^13 primes: pairwise coprime but the product tops 2^61. *)
  expect_err [| 8191; 8179; 8171; 8167; 8161; 8147; 8123; 8111 |]

let prop_modint_crt_roundtrip =
  QCheck.Test.make ~name:"Garner reconstruction round-trips" ~count:300
    QCheck.(
      pair
        (oneofl
           [
             [| 251; 241; 239 |];
             [| 8191; 8179; 8171 |];
             [| 2; 3; 5; 7; 11; 13 |];
             [| 8191 |];
           ])
        (int_range (-1000000000) 1000000000))
    (fun (basis, x) ->
      match Modint.Crt.make basis with
      | Error _ -> false
      | Ok crt ->
          let p = Modint.Crt.product crt in
          (* center x into the representable window *)
          let x = x mod ((p / 2) + 1) in
          Modint.Crt.reconstruct crt (Modint.Crt.residues crt x) = x)

let test_modint_crt_extremes () =
  match Modint.Crt.make [| 251; 241; 239 |] with
  | Error e -> Alcotest.fail e
  | Ok crt ->
      let p = Modint.Crt.product crt in
      Alcotest.(check int) "product" (251 * 241 * 239) p;
      List.iter
        (fun x ->
          Alcotest.(check int)
            (Printf.sprintf "x = %d" x)
            x
            (Modint.Crt.reconstruct crt ~digits:(Array.make 3 0)
               (Modint.Crt.residues crt x)))
        [ 0; 1; -1; p / 2; -(p / 2); (p / 2) - 1; 1 - (p / 2) ]

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]) in
  Alcotest.run "twq_util"
    [
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arith" `Quick test_rat_arith;
          Alcotest.test_case "division by zero" `Quick test_rat_division_by_zero;
          Alcotest.test_case "powers of two" `Quick test_rat_pow2;
          Alcotest.test_case "to_int" `Quick test_rat_to_int;
          qt prop_rat_add_comm;
          qt prop_rat_mul_assoc;
          qt prop_rat_add_inverse;
          qt prop_rat_distributive;
          qt prop_rat_float_consistent;
          Alcotest.test_case "checked scalars" `Quick test_rat_checked_scalars;
          Alcotest.test_case "arith overflow" `Quick test_rat_arith_overflow;
        ] );
      ( "rmat",
        [
          Alcotest.test_case "identity mul" `Quick test_rmat_identity_mul;
          Alcotest.test_case "inverse" `Quick test_rmat_inverse;
          Alcotest.test_case "singular raises" `Quick test_rmat_inverse_singular;
          Alcotest.test_case "pivoting" `Quick test_rmat_inverse_needs_pivoting;
          Alcotest.test_case "pinv left" `Quick test_rmat_pinv_left;
          Alcotest.test_case "transpose" `Quick test_rmat_transpose;
          Alcotest.test_case "lift F(6,3)" `Quick test_rmat_lift_f6;
          Alcotest.test_case "lift F(8,3)" `Quick test_rmat_lift_f8;
          Alcotest.test_case "lift overflow names entry" `Quick
            test_rmat_lift_overflow_names_entry;
        ] );
      ( "modint",
        [
          qt prop_modint_reduce;
          Alcotest.test_case "modular inverse" `Quick test_modint_inv;
          Alcotest.test_case "crt rejections" `Quick test_modint_crt_rejections;
          qt prop_modint_crt_roundtrip;
          Alcotest.test_case "crt extremes" `Quick test_modint_crt_extremes;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "pick/copy" `Quick test_rng_pick_and_copy;
          Alcotest.test_case "laplacian" `Quick test_rng_laplacian_moments;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basic" `Quick test_interval_basic;
          Alcotest.test_case "mul const" `Quick test_interval_mul_const;
          Alcotest.test_case "signed bits" `Quick test_interval_signed_bits;
          Alcotest.test_case "shift" `Quick test_interval_shift;
          qt prop_interval_sound_add;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "left align + histogram pp" `Quick test_table_left_align_and_histogram_pp;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
        ] );
    ]
