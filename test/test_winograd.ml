(* Tests for the Winograd substrate: exactness of the transformation
   matrices, the Winograd convolution identity vs the direct algorithm
   (float and bit-true integer), bit-growth bounds, pseudo-inverse. *)

open Twq_util
open Twq_tensor
open Twq_winograd
module Generator = Twq_winograd.Generator

let tensor_loose = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:1e-6)
let itensor = Alcotest.testable Itensor.pp Itensor.equal

(* ------------------------------------------------------- matrix algebra *)

(* The defining property of the Winograd matrices: for polynomial inputs the
   transform computes a valid convolution.  We check the end-to-end tile
   identity: A^T [(G f G^T) .* (B^T x B)] A = conv_valid(x, f). *)

let direct_valid_tile x f m =
  (* x : (m+2)x(m+2), f : 3x3 -> m x m valid convolution (correlation). *)
  Tensor.init [| m; m |] (fun idx ->
      let acc = ref 0.0 in
      for ki = 0 to 2 do
        for kj = 0 to 2 do
          acc := !acc +. (Tensor.get2 x (idx.(0) + ki) (idx.(1) + kj) *. Tensor.get2 f ki kj)
        done
      done;
      !acc)

let check_tile_identity variant seed =
  let rng = Rng.create seed in
  let t = Transform.t variant and m = Transform.m variant in
  let x = Tensor.rand_uniform rng [| t; t |] ~lo:(-1.0) ~hi:1.0 in
  let f = Tensor.rand_uniform rng [| 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let y =
    Transform.output_tile variant
      (Tensor.mul (Transform.weight_tile variant f) (Transform.input_tile variant x))
  in
  Alcotest.check tensor_loose
    (Printf.sprintf "%s tile identity" (Transform.name variant))
    (direct_valid_tile x f m) y

let test_tile_identity_f2 () = List.iter (check_tile_identity Transform.F2) [ 1; 2; 3; 4; 5 ]
let test_tile_identity_f4 () = List.iter (check_tile_identity Transform.F4) [ 1; 2; 3; 4; 5 ]

let prop_tile_identity =
  QCheck.Test.make ~name:"winograd tile identity (both variants)" ~count:100
    QCheck.(pair (int_range 0 100000) (oneofl Transform.all_variants))
    (fun (seed, variant) ->
      let rng = Rng.create seed in
      let t = Transform.t variant and m = Transform.m variant in
      let x = Tensor.rand_uniform rng [| t; t |] ~lo:(-2.0) ~hi:2.0 in
      let f = Tensor.rand_uniform rng [| 3; 3 |] ~lo:(-2.0) ~hi:2.0 in
      let y =
        Transform.output_tile variant
          (Tensor.mul (Transform.weight_tile variant f) (Transform.input_tile variant x))
      in
      Tensor.approx_equal ~tol:1e-6 (direct_valid_tile x f m) y)

let test_matrix_shapes () =
  List.iter
    (fun v ->
      let t = Transform.t v and m = Transform.m v in
      Alcotest.(check int) "bt rows" t (Rmat.rows (Transform.bt_rat v));
      Alcotest.(check int) "bt cols" t (Rmat.cols (Transform.bt_rat v));
      Alcotest.(check int) "g rows" t (Rmat.rows (Transform.g_rat v));
      Alcotest.(check int) "g cols" 3 (Rmat.cols (Transform.g_rat v));
      Alcotest.(check int) "at rows" m (Rmat.rows (Transform.at_rat v));
      Alcotest.(check int) "at cols" t (Rmat.cols (Transform.at_rat v)))
    Transform.all_variants

let test_g_scale_integral () =
  List.iter
    (fun v ->
      let gi = Transform.g_scaled_int v in
      Alcotest.(check int) "rows" (Transform.t v) (Array.length gi);
      (* Converting back: gi / scale must equal G exactly. *)
      let s = Rat.of_int (Transform.g_scale v) in
      let g = Transform.g_rat v in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j x ->
              Alcotest.(check bool)
                "scaled entry" true
                (Rat.equal (Rat.div (Rat.of_int x) s) g.(i).(j)))
            row)
        gi)
    Transform.all_variants

let test_macs_reduction () =
  Alcotest.(check (float 1e-9)) "F2" 2.25 (Transform.macs_reduction Transform.F2);
  Alcotest.(check (float 1e-9)) "F4" 4.0 (Transform.macs_reduction Transform.F4)

(* ------------------------------------------------------------ bit growth *)

let test_bit_growth_f2 () =
  (* Paper Sec. II: B^T x B needs 2 extra bits, G f G^T needs 3 extra bits
     (the latter counted on the bit-true scaled transform: 2G is integral,
     rows have L1 at most 3-ish). *)
  Alcotest.(check int) "input +2" 2 (Transform.extra_bits_input Transform.F2)

let test_bit_growth_f6 () =
  (* Larger tiles need markedly more bits — the Sec.-II escalation. *)
  Alcotest.(check bool) "F6 input > F4 input" true
    (Transform.extra_bits_input Transform.F6 > Transform.extra_bits_input Transform.F4);
  Alcotest.(check bool) "F6 weights > F4 weights" true
    (Transform.extra_bits_weight Transform.F6 > Transform.extra_bits_weight Transform.F4)

let test_bit_growth_f4 () =
  (* Paper Challenge I: bit-true F4 needs 10 extra bits for the weights. *)
  Alcotest.(check int) "weights +10" 10 (Transform.extra_bits_weight Transform.F4);
  (* Input/output transformations: the paper reports 8 extra bits; our exact
     interval analysis gives the tight bound, which must not exceed 8. *)
  Alcotest.(check bool)
    "input extra in [6;8]" true
    (let b = Transform.extra_bits_input Transform.F4 in
     b >= 6 && b <= 8);
  Alcotest.(check bool)
    "output extra in [7;9]" true
    (let b = Transform.extra_bits_output Transform.F4 in
     b >= 7 && b <= 9)

(* ------------------------------------------------------------- full conv *)

let check_conv_matches variant ~seed ~n ~cin ~cout ~h ~w ~pad =
  let rng = Rng.create seed in
  let x = Tensor.rand_uniform rng [| n; cin; h; w |] ~lo:(-1.0) ~hi:1.0 in
  let wt = Tensor.rand_uniform rng [| cout; cin; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let direct = Ops.conv2d ~stride:1 ~pad ~x ~w:wt () in
  let wino = Conv.conv2d ~variant ~pad ~x ~w:wt () in
  Alcotest.check tensor_loose "winograd == direct" direct wino

let test_conv_f6_same () =
  check_conv_matches Transform.F6 ~seed:16 ~n:1 ~cin:2 ~cout:2 ~h:12 ~w:12 ~pad:1

let test_conv_f2_same () =
  check_conv_matches Transform.F2 ~seed:10 ~n:1 ~cin:3 ~cout:4 ~h:8 ~w:8 ~pad:1

let test_conv_f4_same () =
  check_conv_matches Transform.F4 ~seed:11 ~n:1 ~cin:3 ~cout:4 ~h:8 ~w:8 ~pad:1

let test_conv_f4_odd_sizes () =
  (* Output extent not a multiple of the tile: edge tiles are cropped. *)
  check_conv_matches Transform.F4 ~seed:12 ~n:1 ~cin:2 ~cout:2 ~h:7 ~w:9 ~pad:1;
  check_conv_matches Transform.F2 ~seed:13 ~n:1 ~cin:2 ~cout:2 ~h:5 ~w:7 ~pad:1

let test_conv_f4_valid () =
  check_conv_matches Transform.F4 ~seed:14 ~n:2 ~cin:2 ~cout:3 ~h:10 ~w:10 ~pad:0

let test_conv_bias () =
  let rng = Rng.create 15 in
  let x = Tensor.rand_uniform rng [| 1; 2; 8; 8 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 3; 2; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.rand_uniform rng [| 3 |] ~lo:(-1.0) ~hi:1.0 in
  let direct = Ops.conv2d ~stride:1 ~pad:1 ~x ~w ~b () in
  let wino = Conv.conv2d ~variant:Transform.F4 ~pad:1 ~x ~w ~b () in
  Alcotest.check tensor_loose "bias" direct wino

let prop_conv_winograd_equals_direct =
  QCheck.Test.make ~name:"winograd conv == direct conv (random shapes)" ~count:30
    QCheck.(
      quad (int_range 0 100000) (oneofl Transform.all_variants) (int_range 4 12)
        (int_range 4 12))
    (fun (seed, variant, h, w) ->
      let rng = Rng.create seed in
      let cin = 1 + Rng.int rng 3 and cout = 1 + Rng.int rng 3 in
      let x = Tensor.rand_uniform rng [| 1; cin; h; w |] ~lo:(-1.0) ~hi:1.0 in
      let wt = Tensor.rand_uniform rng [| cout; cin; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let direct = Ops.conv2d ~stride:1 ~pad:1 ~x ~w:wt () in
      let wino = Conv.conv2d ~variant ~pad:1 ~x ~w:wt () in
      Tensor.approx_equal ~tol:1e-6 direct wino)

(* ------------------------------------------------------ bit-true integer *)

let direct_conv_int ~pad x w =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
  let cout = Itensor.dim w 0 in
  let ho = h + (2 * pad) - 2 and wo = wd + (2 * pad) - 2 in
  Itensor.init [| n; cout; ho; wo |] (fun idx ->
      let acc = ref 0 in
      for ci = 0 to cin - 1 do
        for ki = 0 to 2 do
          for kj = 0 to 2 do
            let hi = idx.(2) + ki - pad and wi = idx.(3) + kj - pad in
            if hi >= 0 && hi < h && wi >= 0 && wi < wd then
              acc := !acc + (Itensor.get4 x idx.(0) ci hi wi * Itensor.get4 w idx.(1) ci ki kj)
          done
        done
      done;
      !acc)

let check_int_conv variant seed =
  let rng = Rng.create seed in
  let x = Itensor.init [| 1; 2; 8; 8 |] (fun _ -> Rng.int rng 255 - 128) in
  let w = Itensor.init [| 2; 2; 3; 3 |] (fun _ -> Rng.int rng 255 - 128) in
  let direct = direct_conv_int ~pad:1 x w in
  let wino = Conv.conv2d_int_bit_true ~variant ~pad:1 ~x ~w () in
  Alcotest.check itensor
    (Printf.sprintf "%s bit-true == direct" (Transform.name variant))
    direct wino

let test_int_conv_f2 () = List.iter (check_int_conv Transform.F2) [ 20; 21; 22 ]
let test_int_conv_f4 () = List.iter (check_int_conv Transform.F4) [ 23; 24; 25 ]

let prop_int_conv_bit_true =
  QCheck.Test.make ~name:"bit-true integer winograd == integer direct" ~count:20
    QCheck.(pair (int_range 0 100000) (oneofl Transform.all_variants))
    (fun (seed, variant) ->
      let rng = Rng.create seed in
      let h = 4 + Rng.int rng 8 and w = 4 + Rng.int rng 8 in
      let x = Itensor.init [| 1; 2; h; w |] (fun _ -> Rng.int rng 255 - 128) in
      let wt = Itensor.init [| 2; 2; 3; 3 |] (fun _ -> Rng.int rng 255 - 128) in
      Itensor.equal (direct_conv_int ~pad:1 x wt)
        (Conv.conv2d_int_bit_true ~variant ~pad:1 ~x ~w:wt ()))

(* ------------------------------------------------------------- generator *)

let test_generator_reproduces_f4_exactly () =
  let t = Generator.make ~points:(List.map Rat.of_int [ 0; 1; -1; 2; -2 ]) ~m:4 ~r:3 in
  Alcotest.(check bool) "bt" true (Rmat.equal t.Generator.bt (Transform.bt_rat Transform.F4));
  Alcotest.(check bool) "g" true (Rmat.equal t.Generator.g (Transform.g_rat Transform.F4));
  Alcotest.(check bool) "at" true (Rmat.equal t.Generator.at (Transform.at_rat Transform.F4))

let test_generator_identity_various_fm () =
  List.iter
    (fun (m, r, pts) ->
      let t = Generator.make ~points:(Generator.lavin_points pts) ~m ~r in
      let err = Generator.fp_error_probe t ~seed:5 ~trials:100 in
      Alcotest.(check bool)
        (Printf.sprintf "F(%d,%d) err %.1e" m r err)
        true (err < 1e-10))
    [ (2, 3, 3); (4, 3, 5); (6, 3, 7); (2, 5, 5); (4, 5, 7); (8, 3, 9); (4, 7, 9) ]

let prop_generator_identity_random_points =
  QCheck.Test.make ~name:"generator identity for random distinct points" ~count:30
    (QCheck.int_range 0 100000) (fun seed ->
      let rng = Rng.create seed in
      (* 4 distinct small rationals + 0. *)
      let rec draw acc =
        if List.length acc >= 5 then acc
        else begin
          let v = Rat.make (Rng.int rng 9 - 4) (1 + Rng.int rng 3) in
          if List.exists (Rat.equal v) acc then draw acc else draw (v :: acc)
        end
      in
      let points = draw [ Rat.zero ] in
      let t = Generator.make ~points ~m:4 ~r:3 in
      Generator.fp_error_probe t ~seed ~trials:20 < 1e-8)

(* The `lavin_points` coverage gap: the identity was only probed at a few
   fixed (m, r) pairs, never property-tested across the point-progression
   prefixes the generator actually serves.  Exercise every k up to 8
   (F(2,3)..F(7,3), i.e. half-integer points included) against the direct
   1-D convolution. *)
let prop_lavin_points_conv1d_identity =
  QCheck.Test.make ~count:40
    ~name:"lavin-point conv1d identity for every prefix k <= 8"
    QCheck.(pair (int_range 0 100000) (int_range 3 8))
    (fun (seed, k) ->
      let r = 3 in
      let m = k + 2 - r in
      let t = Generator.make ~points:(Generator.lavin_points k) ~m ~r in
      let rng = Rng.create seed in
      let d = Array.init (m + r - 1) (fun _ -> Rng.float rng 2.0 -. 1.0) in
      let g = Array.init r (fun _ -> Rng.float rng 2.0 -. 1.0) in
      let direct = Generator.conv1d_reference t d g in
      let wino = Generator.conv1d t d g in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) direct wino)

let test_generator_rejects_even_r () =
  Alcotest.check_raises "even r"
    (Invalid_argument "Generator.make: even kernel sizes are not supported")
    (fun () ->
      ignore
        (Generator.make ~points:(Generator.lavin_points 4) ~m:4 ~r:2))

let test_generator_rejects_bad_input () =
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Generator.make: F(4,3) needs 5 finite points") (fun () ->
      ignore (Generator.make ~points:[ Rat.zero ] ~m:4 ~r:3));
  Alcotest.check_raises "duplicate points"
    (Invalid_argument "Generator.make: points must be pairwise distinct") (fun () ->
      ignore
        (Generator.make
           ~points:[ Rat.zero; Rat.one; Rat.one; Rat.of_int 2; Rat.of_int (-2) ]
           ~m:4 ~r:3))

let test_lavin_points () =
  let pts = Generator.lavin_points 5 in
  Alcotest.(check int) "count" 5 (List.length pts);
  Alcotest.(check bool) "starts at 0" true (Rat.equal (List.hd pts) Rat.zero);
  (* Pairwise distinct. *)
  let arr = Array.of_list pts in
  Array.iteri
    (fun i a ->
      Array.iteri (fun j b -> if i < j then Alcotest.(check bool) "distinct" false (Rat.equal a b)) arr)
    arr

(* ----------------------------------------------------------------- gconv *)

let test_gconv_matches_direct () =
  List.iter
    (fun (m, r) ->
      let c = Gconv.create ~m ~r () in
      let rng = Rng.create (200 + m + r) in
      let x = Tensor.rand_uniform rng [| 1; 2; 14; 14 |] ~lo:(-1.0) ~hi:1.0 in
      let w = Tensor.rand_uniform rng [| 2; 2; r; r |] ~lo:(-0.5) ~hi:0.5 in
      let pad = r / 2 in
      let direct = Ops.conv2d ~stride:1 ~pad ~x ~w () in
      let wino = Gconv.conv2d c ~pad ~x ~w () in
      Alcotest.(check bool)
        (Printf.sprintf "F(%dx%d,%dx%d)" m m r r)
        true
        (Tensor.approx_equal ~tol:1e-5 direct wino))
    [ (2, 3); (4, 3); (2, 5); (4, 5); (2, 7) ]

let test_gconv_macs_reduction () =
  let c = Gconv.create ~m:4 ~r:5 () in
  (* (4·5/8)² = 6.25 — large kernels save even more multiplications. *)
  Alcotest.(check (float 1e-9)) "F(4,5)" 6.25 (Gconv.macs_reduction c);
  Alcotest.(check bool) "bigger than F(4,3)" true
    (Gconv.macs_reduction c > Transform.macs_reduction Transform.F4)

let prop_gconv_f45_identity =
  QCheck.Test.make ~name:"gconv F(4,5) == direct" ~count:10
    (QCheck.int_range 0 10000) (fun seed ->
      let c = Gconv.create ~m:4 ~r:5 () in
      let rng = Rng.create seed in
      let h = 8 + Rng.int rng 8 and w = 8 + Rng.int rng 8 in
      let x = Tensor.rand_uniform rng [| 1; 2; h; w |] ~lo:(-1.0) ~hi:1.0 in
      let wt = Tensor.rand_uniform rng [| 2; 2; 5; 5 |] ~lo:(-0.5) ~hi:0.5 in
      Tensor.approx_equal ~tol:1e-5
        (Ops.conv2d ~stride:1 ~pad:2 ~x ~w:wt ())
        (Gconv.conv2d c ~pad:2 ~x ~w:wt ()))

(* ---------------------------------------------------------------- conv1d *)

let test_conv1d_matches_reference () =
  List.iter
    (fun (m, r) ->
      let c = Conv1d.create ~m ~r () in
      let rng = Rng.create (100 + m + r) in
      let signal = Array.init 37 (fun _ -> Rng.float rng 2.0 -. 1.0) in
      let kernel = Array.init r (fun _ -> Rng.float rng 2.0 -. 1.0) in
      let y = Conv1d.conv c ~signal ~kernel in
      let y_ref = Conv1d.conv_reference ~signal ~kernel in
      Alcotest.(check int) "length" (Array.length y_ref) (Array.length y);
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "F(%d,%d)[%d]" m r i)
            true
            (Float.abs (v -. y_ref.(i)) < 1e-9))
        y)
    [ (2, 3); (4, 3); (6, 3); (4, 5); (2, 7) ]

let prop_conv1d_identity =
  QCheck.Test.make ~name:"conv1d winograd == direct" ~count:50
    (QCheck.pair (QCheck.int_range 0 10000) (QCheck.int_range 8 40))
    (fun (seed, n) ->
      let c = Conv1d.create ~m:4 ~r:3 () in
      let rng = Rng.create seed in
      let signal = Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0) in
      let kernel = Array.init 3 (fun _ -> Rng.float rng 2.0 -. 1.0) in
      let y = Conv1d.conv c ~signal ~kernel in
      let y_ref = Conv1d.conv_reference ~signal ~kernel in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) y y_ref)

let test_conv1d_macs_reduction () =
  let c = Conv1d.create ~m:4 ~r:3 () in
  Alcotest.(check (float 1e-9)) "12/6" 2.0 (Conv1d.macs_reduction c)

(* --------------------------------------------------------------- strided *)

let test_strided_decomposition_matches_direct () =
  List.iter
    (fun (seed, chans, h, w) ->
      let rng = Rng.create seed in
      let x = Tensor.rand_uniform rng [| 1; chans; h; w |] ~lo:(-1.0) ~hi:1.0 in
      let wt = Tensor.rand_uniform rng [| chans; chans; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let direct = Ops.conv2d ~stride:2 ~pad:0 ~x ~w:wt () in
      let dec = Strided.conv2d_stride2 ~x ~w:wt in
      Alcotest.check tensor_loose "polyphase == direct" direct dec)
    [ (50, 1, 8, 8); (51, 3, 10, 12); (52, 2, 16, 16) ]

let prop_strided_decomposition =
  QCheck.Test.make ~name:"stride-2 polyphase decomposition" ~count:20
    (QCheck.int_range 0 10000) (fun seed ->
      let rng = Rng.create seed in
      let h = 2 * (3 + Rng.int rng 5) and w = 2 * (3 + Rng.int rng 5) in
      let chans = 1 + Rng.int rng 3 in
      let x = Tensor.rand_uniform rng [| 1; chans; h; w |] ~lo:(-1.0) ~hi:1.0 in
      let wt = Tensor.rand_uniform rng [| 2; chans; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
      Tensor.approx_equal ~tol:1e-6
        (Ops.conv2d ~stride:2 ~pad:0 ~x ~w:wt ())
        (Strided.conv2d_stride2 ~x ~w:wt))

let test_strided_macs_reduction_1_8 () =
  (* The paper's Sec.-III figure. *)
  Alcotest.(check bool)
    (Printf.sprintf "%.2f near 1.8" Strided.macs_reduction)
    true
    (Float.abs (Strided.macs_reduction -. 1.8) < 0.05)

let test_strided_rejects_bad_input () =
  let x = Tensor.zeros [| 1; 1; 7; 8 |] in
  let w = Tensor.zeros [| 1; 1; 3; 3 |] in
  Alcotest.check_raises "odd dims"
    (Invalid_argument "Strided.conv2d_stride2: even input dims required")
    (fun () -> ignore (Strided.conv2d_stride2 ~x ~w))

(* ------------------------------------------------------------------ pinv *)

let test_pinv_left_inverse () =
  List.iter
    (fun v ->
      let p = Pinv.g_pinv_rat v in
      Alcotest.(check bool)
        "G+ G = I" true
        (Rmat.equal (Rmat.mul p (Transform.g_rat v)) (Rmat.identity 3)))
    Transform.all_variants

let test_pinv_roundtrip () =
  (* Back-transforming an unquantized Winograd-domain weight tile recovers
     the spatial kernel exactly (up to FP rounding). *)
  List.iter
    (fun v ->
      let rng = Rng.create 33 in
      let f = Tensor.rand_uniform rng [| 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
      let q = Transform.weight_tile v f in
      let f' = Pinv.weight_back_transform v q in
      Alcotest.check tensor_loose "roundtrip" f f')
    Transform.all_variants

let test_numerical_error_f4_small () =
  let rng = Rng.create 44 in
  let x = Tensor.rand_uniform rng [| 1; 4; 16; 16 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.rand_uniform rng [| 4; 4; 3; 3 |] ~lo:(-0.5) ~hi:0.5 in
  let err = Conv.max_abs_error ~variant:Transform.F4 ~x ~w in
  Alcotest.(check bool) "fp32 error small" true (err < 1e-5)

let test_tiles_along () =
  Alcotest.(check int) "F4, 16" 4 (Conv.tiles_along ~variant:Transform.F4 16);
  Alcotest.(check int) "F4, 17" 5 (Conv.tiles_along ~variant:Transform.F4 17);
  Alcotest.(check int) "F2, 5" 3 (Conv.tiles_along ~variant:Transform.F2 5)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]) in
  Alcotest.run "twq_winograd"
    [
      ( "transform",
        [
          Alcotest.test_case "tile identity F2" `Quick test_tile_identity_f2;
          Alcotest.test_case "tile identity F4" `Quick test_tile_identity_f4;
          qt prop_tile_identity;
          Alcotest.test_case "matrix shapes" `Quick test_matrix_shapes;
          Alcotest.test_case "g_scale integral" `Quick test_g_scale_integral;
          Alcotest.test_case "macs reduction" `Quick test_macs_reduction;
        ] );
      ( "bit growth",
        [
          Alcotest.test_case "F2 bounds" `Quick test_bit_growth_f2;
          Alcotest.test_case "F4 bounds" `Quick test_bit_growth_f4;
          Alcotest.test_case "F6 bounds" `Quick test_bit_growth_f6;
        ] );
      ( "conv",
        [
          Alcotest.test_case "F2 same-pad" `Quick test_conv_f2_same;
          Alcotest.test_case "F4 same-pad" `Quick test_conv_f4_same;
          Alcotest.test_case "F6 same-pad" `Quick test_conv_f6_same;
          Alcotest.test_case "odd sizes" `Quick test_conv_f4_odd_sizes;
          Alcotest.test_case "valid-pad" `Quick test_conv_f4_valid;
          Alcotest.test_case "bias" `Quick test_conv_bias;
          qt prop_conv_winograd_equals_direct;
          Alcotest.test_case "tiles along" `Quick test_tiles_along;
          Alcotest.test_case "fp32 error small" `Quick test_numerical_error_f4_small;
        ] );
      ( "int conv",
        [
          Alcotest.test_case "F2 bit-true" `Quick test_int_conv_f2;
          Alcotest.test_case "F4 bit-true" `Quick test_int_conv_f4;
          qt prop_int_conv_bit_true;
        ] );
      ( "generator",
        [
          Alcotest.test_case "reproduces paper F4" `Quick test_generator_reproduces_f4_exactly;
          Alcotest.test_case "identity across F(m,r)" `Quick test_generator_identity_various_fm;
          qt prop_generator_identity_random_points;
          qt prop_lavin_points_conv1d_identity;
          Alcotest.test_case "rejects bad input" `Quick test_generator_rejects_bad_input;
          Alcotest.test_case "rejects even r" `Quick test_generator_rejects_even_r;
          Alcotest.test_case "lavin points" `Quick test_lavin_points;
        ] );
      ( "gconv",
        [
          Alcotest.test_case "matches direct" `Quick test_gconv_matches_direct;
          Alcotest.test_case "macs reduction" `Quick test_gconv_macs_reduction;
          qt prop_gconv_f45_identity;
        ] );
      ( "conv1d",
        [
          Alcotest.test_case "matches reference" `Quick test_conv1d_matches_reference;
          qt prop_conv1d_identity;
          Alcotest.test_case "macs reduction" `Quick test_conv1d_macs_reduction;
        ] );
      ( "strided",
        [
          Alcotest.test_case "matches direct" `Quick test_strided_decomposition_matches_direct;
          qt prop_strided_decomposition;
          Alcotest.test_case "1.8x reduction" `Quick test_strided_macs_reduction_1_8;
          Alcotest.test_case "rejects odd dims" `Quick test_strided_rejects_bad_input;
        ] );
      ( "pinv",
        [
          Alcotest.test_case "left inverse" `Quick test_pinv_left_inverse;
          Alcotest.test_case "roundtrip" `Quick test_pinv_roundtrip;
        ] );
    ]
