(* Fault-injection tests for the crash-safe persistence layer (PR 3):
   corrupted/truncated checkpoints must surface as typed errors, a killed
   training run must resume bit-identically, and non-finite losses or
   gradients must never reach the optimizer state. *)

module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Checkpoint = Twq_util.Checkpoint
module Transform = Twq_winograd.Transform
module Serialize = Twq_quant.Serialize
module Tapwise = Twq_quant.Tapwise
module Qconv = Twq_quant.Qconv
module Calibration = Twq_quant.Calibration
module Synth = Twq_dataset.Synth_images
module Qat = Twq_nn.Qat_model
module Trainer = Twq_nn.Trainer
open Twq_autodiff

let tmp_path suffix =
  let p = Filename.temp_file "twq_robustness" suffix in
  Sys.remove p;
  p

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".1"; path ^ ".tmp" ]

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------ checkpoint *)

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint roundtrip (arbitrary payloads)" ~count:50
    QCheck.string (fun payload ->
      let path = tmp_path ".ckpt" in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Checkpoint.save path payload;
          match Checkpoint.load path with
          | Ok p -> String.equal p payload
          | Error _ -> false))

let test_checkpoint_truncation () =
  let path = tmp_path ".ckpt" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let payload = "the quick brown fox jumps over the lazy dog" in
      Checkpoint.save path payload;
      let raw = read_raw path in
      let saw_truncated = ref false in
      for cut = 0 to String.length raw - 1 do
        write_raw path (String.sub raw 0 cut);
        match Checkpoint.load path with
        | Ok _ ->
            Alcotest.failf "truncation at byte %d of %d accepted" cut
              (String.length raw)
        | Error (Checkpoint.Truncated _) -> saw_truncated := true
        | Error _ -> ()
      done;
      Alcotest.(check bool) "some cuts classified Truncated" true !saw_truncated)

let test_checkpoint_byte_flips () =
  let path = tmp_path ".ckpt" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let payload = "winograd tap-wise training state 0123456789" in
      Checkpoint.save path payload;
      let raw = read_raw path in
      let saw_crc = ref false in
      String.iteri
        (fun i c ->
          let b = Bytes.of_string raw in
          Bytes.set b i (Char.chr (Char.code c lxor 0x20));
          write_raw path (Bytes.to_string b);
          match Checkpoint.load path with
          | Ok _ -> Alcotest.failf "byte flip at offset %d accepted" i
          | Error (Checkpoint.Corrupt_checksum _) -> saw_crc := true
          | Error _ -> ())
        raw;
      Alcotest.(check bool) "payload flips caught by CRC" true !saw_crc)

let test_checkpoint_bad_version () =
  let path = tmp_path ".ckpt" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Checkpoint.save ~version:2 path "future payload";
      match Checkpoint.load path with
      | Error (Checkpoint.Bad_version { found = 2; expected = 1 }) -> ()
      | Ok _ -> Alcotest.fail "version 2 accepted by a version-1 reader"
      | Error e -> Alcotest.failf "wrong error: %s" (Checkpoint.error_to_string e))

let test_checkpoint_orphan_tmp () =
  let path = tmp_path ".ckpt" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      (* A kill mid-write leaves a stale [path ^ ".tmp"] and no final file:
         nothing must be loaded from it, and the next save must succeed. *)
      write_raw (path ^ ".tmp") "half-written garbage";
      (match Checkpoint.load_latest (Checkpoint.fallback_paths path) with
      | Error (Checkpoint.Parse_error _) -> ()
      | Ok _ -> Alcotest.fail "loaded state from an orphan tmp file"
      | Error e -> Alcotest.failf "wrong error: %s" (Checkpoint.error_to_string e));
      Checkpoint.save path "real payload";
      Alcotest.(check string)
        "save overwrites the orphan" "real payload"
        (Result.get_ok (Checkpoint.load path)))

let test_checkpoint_rotation_fallback () =
  let path = tmp_path ".ckpt" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Checkpoint.save ~rotate:true path "generation one";
      Checkpoint.save ~rotate:true path "generation two";
      (* Corrupt the newest generation; load_latest must fall back. *)
      let raw = read_raw path in
      write_raw path (String.sub raw 0 (String.length raw - 3));
      match Checkpoint.load_latest (Checkpoint.fallback_paths path) with
      | Ok (p, payload) ->
          Alcotest.(check string) "fallback path" (path ^ ".1") p;
          Alcotest.(check string) "fallback payload" "generation one" payload
      | Error e ->
          Alcotest.failf "no fallback: %s" (Checkpoint.error_to_string e))

(* ------------------------------------------------------------- serialize *)

let rand_layer seed =
  let rng = Rng.create (1000 + seed) in
  let variant = if seed mod 2 = 0 then Transform.F2 else Transform.F4 in
  let granularity =
    match seed mod 3 with
    | 0 -> Tapwise.Single_scale
    | 1 -> Tapwise.Tap_wise
    | _ -> Tapwise.Channel_tap_wise
  in
  let config =
    {
      Tapwise.variant;
      act_bits = 8;
      wino_bits = 8 + (seed mod 3);
      pow2 = seed mod 5 < 2;
      granularity;
    }
  in
  let cin = 1 + (seed mod 2) and cout = 1 + (seed mod 3) in
  let w = Tensor.rand_gaussian rng [| cout; cin; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
  let bias =
    if seed mod 4 = 0 then
      Some (Tensor.rand_gaussian rng [| cout |] ~mu:0.0 ~sigma:0.1)
    else None
  in
  let sample_inputs =
    [ Tensor.rand_gaussian rng [| 1; cin; 8; 8 |] ~mu:0.0 ~sigma:1.0 ]
  in
  Tapwise.calibrate ~config ~w ?bias ~sample_inputs ~pad:1 ()

let prop_serialize_roundtrip_all_granularities =
  QCheck.Test.make ~name:"tapwise serialize roundtrip (all granularities)"
    ~count:30 QCheck.(int_range 0 10_000) (fun seed ->
      let layer = rand_layer seed in
      let s = Serialize.layer_to_string layer in
      match Serialize.layer_of_string_result s with
      | Ok l2 -> String.equal s (Serialize.layer_to_string l2)
      | Error _ -> false)

let prop_qconv_roundtrip =
  QCheck.Test.make ~name:"qconv serialize roundtrip" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create (2000 + seed) in
      let cin = 1 + (seed mod 2) and cout = 1 + (seed mod 3) in
      let w =
        Tensor.rand_gaussian rng [| cout; cin; 3; 3 |] ~mu:0.0 ~sigma:0.5
      in
      let bias =
        if seed mod 2 = 0 then
          Some (Tensor.rand_gaussian rng [| cout |] ~mu:0.0 ~sigma:0.1)
        else None
      in
      let layer =
        Qconv.calibrate ~per_channel:(seed mod 3 = 0) ~w ?bias
          ~sample_inputs:
            [ Tensor.rand_gaussian rng [| 1; cin; 6; 6 |] ~mu:0.0 ~sigma:1.0 ]
          ~stride:1 ~pad:1 ()
      in
      let s = Serialize.qconv_to_string layer in
      match Serialize.qconv_of_string_result s with
      | Ok l2 -> String.equal s (Serialize.qconv_to_string l2)
      | Error _ -> false)

let rejects what s =
  match Serialize.layer_of_string_result s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s accepted" what

let test_serialize_rejects_malformed () =
  rejects "empty input" "";
  rejects "garbage" "hello world";
  rejects "unknown variant" "tapwise-layer v1\nconfig F9 8 8 false tap\n";
  rejects "unknown granularity" "tapwise-layer v1\nconfig F4 8 8 false weird\n";
  rejects "negative scale" "tapwise-layer v1\nconfig F4 8 8 false tap\nscales 1 -0x1p0 0x1p0 0x1p0\n";
  rejects "nan scale" "tapwise-layer v1\nconfig F4 8 8 false tap\nscales 1 nan 0x1p0 0x1p0\n";
  let valid = Serialize.layer_to_string (rand_layer 1) in
  for frac = 1 to 9 do
    rejects "truncated layer" (String.sub valid 0 (String.length valid * frac / 10))
  done;
  (* The raising wrapper raises Failure — not Scanf/End_of_file/Out_of_memory. *)
  (match Serialize.layer_of_string "bogus" with
  | exception Failure _ -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "garbage accepted")

let tensor_rejects what s =
  match Serialize.read_tensor (Serialize.reader_of_string s) with
  | exception Serialize.Parse_failure _ -> ()
  | exception e -> Alcotest.failf "%s: wrong exception %s" what (Printexc.to_string e)
  | _ -> Alcotest.failf "%s accepted" what

let test_serialize_shape_validation () =
  tensor_rejects "negative rank" "-2 4\n0x1p0 0x1p0 0x1p0 0x1p0";
  tensor_rejects "zero rank" "0\n";
  tensor_rejects "huge rank" "9 1 1 1 1 1 1 1 1 1\n0x1p0";
  tensor_rejects "negative dimension" "2 -1 4\n0x1p0";
  tensor_rejects "zero dimension" "2 0 4\n0x1p0";
  (* Allocation bomb: the element count dwarfs the input; must be rejected
     before any allocation happens. *)
  tensor_rejects "allocation bomb" "2 1000000 1000000\n0x1p0 0x1p0";
  tensor_rejects "overflowing dims" "3 3037000500 3037000500 4\n0x1p0";
  (* A well-formed tensor still parses. *)
  let t =
    Serialize.read_tensor
      (Serialize.reader_of_string "2 2 2\n0x1p0 0x1p1 0x1p2 0x1p3")
  in
  Alcotest.(check (float 0.0)) "parsed value" 8.0 (Tensor.get t [| 1; 1 |])

let test_serialize_error_offsets () =
  match Serialize.layer_of_string_result "tapwise-layer v1\nconfig F4 99 8 false tap\n" with
  | Error e ->
      Alcotest.(check bool) "offset points into the input" true
        (e.Serialize.offset > 0 && e.Serialize.offset < 50)
  | Ok _ -> Alcotest.fail "act_bits 99 accepted"

(* ------------------------------------------------------ optimizer guards *)

let test_sgd_skips_nonfinite () =
  let p1 = Var.of_tensor (Tensor.of_array [| 1 |] [| 2.0 |]) in
  let p2 = Var.of_tensor (Tensor.of_array [| 1 |] [| 3.0 |]) in
  let opt = Optim.sgd ~momentum:0.0 ~weight_decay:0.0 ~lr:0.1 [ p1; p2 ] in
  p1.Var.grad.Tensor.data.(0) <- Float.nan;
  p2.Var.grad.Tensor.data.(0) <- 1.0;
  Alcotest.(check bool) "grads_finite detects NaN" false
    (Optim.grads_finite [ p1; p2 ]);
  Optim.sgd_step opt;
  Alcotest.(check (float 0.0)) "poisoned param untouched" 2.0
    p1.Var.data.Tensor.data.(0);
  Alcotest.(check (float 1e-12)) "healthy param stepped" 2.9
    p2.Var.data.Tensor.data.(0);
  Alcotest.(check (float 0.0)) "poisoned grad cleared" 0.0
    p1.Var.grad.Tensor.data.(0)

let test_clip_noop_on_nonfinite () =
  let p = Var.of_tensor (Tensor.of_array [| 2 |] [| 1.0; 1.0 |]) in
  p.Var.grad.Tensor.data.(0) <- Float.infinity;
  p.Var.grad.Tensor.data.(1) <- 4.0;
  Optim.clip_grad_norm [ p ] ~max_norm:1.0;
  Alcotest.(check (float 0.0)) "finite grad entry untouched" 4.0
    p.Var.grad.Tensor.data.(1)

let test_adam_drops_nonfinite () =
  let sp = Scale_param.create ~pow2:false ~init:1.0 () in
  let before = Scale_param.value sp in
  Scale_param.accumulate_grad sp Float.nan;
  Scale_param.adam_step ~lr:0.1 sp;
  Alcotest.(check (float 0.0)) "NaN grad discarded" before (Scale_param.value sp);
  Scale_param.accumulate_grad sp 1.0;
  Scale_param.adam_step ~lr:0.1 sp;
  Alcotest.(check bool) "finite grad still applies" true
    (Scale_param.value sp <> before)

let test_scale_snapshot_roundtrip () =
  let sp = Scale_param.create ~pow2:false ~init:0.5 () in
  Scale_param.accumulate_grad sp 0.3;
  Scale_param.adam_step ~lr:0.05 sp;
  let snap = Scale_param.snapshot sp in
  let v = Scale_param.value sp in
  Scale_param.accumulate_grad sp (-0.7);
  Scale_param.adam_step ~lr:0.05 sp;
  Alcotest.(check bool) "state moved" true (Scale_param.value sp <> v);
  Scale_param.restore sp snap;
  Alcotest.(check (float 0.0)) "restored exactly" v (Scale_param.value sp)

let test_calibration_snapshot_roundtrip () =
  let o = Calibration.create () in
  Calibration.observe o 2.0;
  let snap = Calibration.snapshot o in
  let v = Calibration.value o in
  Calibration.observe o 100.0;
  Alcotest.(check bool) "observer moved" true (Calibration.value o <> v);
  Calibration.restore o snap;
  Alcotest.(check (float 0.0)) "restored exactly" v (Calibration.value o)

(* --------------------------------------------------------------- trainer *)

let tiny_dataset () =
  let spec =
    { Synth.default_spec with n_train = 48; n_valid = 16; n_test = 16 }
  in
  Synth.generate ~spec ~seed:11 ()

let wa_model () =
  Qat.create
    {
      (Qat.default_config
         (Qat.Wa
            {
              variant = Transform.F4;
              wino_bits = 8;
              tapwise = true;
              pow2 = false;
              learned = true;
            }))
      with
      arch = Qat.Vgg_mini [ 4 ];
    }
    ~seed:5

let int8_model () =
  Qat.create
    { (Qat.default_config Qat.Int8_spatial) with arch = Qat.Vgg_mini [ 4 ] }
    ~seed:5

let opts ?checkpoint ?loss_tap ?(data_parallel = false) ?divergence epochs =
  {
    Trainer.default_options with
    epochs;
    batch_size = 16;
    seed = 3;
    data_parallel;
    checkpoint;
    loss_tap;
    divergence =
      Option.value divergence ~default:Trainer.default_divergence;
  }

let float_bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_history_equal what (h1 : Trainer.history) (h2 : Trainer.history) =
  Alcotest.(check int)
    (what ^ ": epochs")
    (Array.length h1.Trainer.train_loss)
    (Array.length h2.Trainer.train_loss);
  Array.iteri
    (fun e l ->
      if
        (not (float_bits_eq l h2.Trainer.train_loss.(e)))
        || not (float_bits_eq h1.Trainer.valid_acc.(e) h2.Trainer.valid_acc.(e))
      then
        Alcotest.failf "%s: epoch %d differs (%h/%h vs %h/%h)" what e l
          h1.Trainer.valid_acc.(e)
          h2.Trainer.train_loss.(e)
          h2.Trainer.valid_acc.(e))
    h1.Trainer.train_loss

let all_finite_params model =
  List.for_all
    (fun p -> Array.for_all Float.is_finite p.Var.data.Tensor.data)
    (Qat.params model)

let test_resume_equivalence_wa () =
  let dataset = tiny_dataset () in
  let path = tmp_path ".train" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let ck = { Trainer.ckpt_path = path; ckpt_every = 2 } in
      let full = Trainer.train (wa_model ()) dataset (opts 4) in
      ignore (Trainer.train (wa_model ()) dataset (opts ~checkpoint:ck 2));
      let resumed =
        Trainer.train_resume (wa_model ()) dataset (opts ~checkpoint:ck 4)
      in
      check_history_equal "epoch-boundary resume" full resumed;
      (* Resuming with no checkpoint on disk falls back to fresh training
         and must match the uninterrupted run too. *)
      cleanup path;
      let fresh =
        Trainer.train_resume (wa_model ()) dataset (opts ~checkpoint:ck 4)
      in
      check_history_equal "resume without snapshot" full fresh)

exception Crash

let test_crash_mid_epoch_resume_wa () =
  let dataset = tiny_dataset () in
  let path = tmp_path ".train" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let ck = { Trainer.ckpt_path = path; ckpt_every = 1 } in
      let full = Trainer.train (wa_model ()) dataset (opts 3) in
      let tap ~epoch ~batch v =
        if epoch = 1 && batch = 2 then raise Crash else v
      in
      (try
         ignore
           (Trainer.train (wa_model ()) dataset
              (opts ~checkpoint:ck ~loss_tap:tap 3));
         Alcotest.fail "injected crash did not fire"
       with Crash -> ());
      (* The interrupted run died mid-epoch, between two snapshots. *)
      let resumed =
        Trainer.train_resume (wa_model ()) dataset (opts ~checkpoint:ck 3)
      in
      check_history_equal "mid-epoch crash resume" full resumed)

let test_crash_resume_corrupt_falls_back () =
  let dataset = tiny_dataset () in
  let path = tmp_path ".train" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let ck = { Trainer.ckpt_path = path; ckpt_every = 1 } in
      let full = Trainer.train (int8_model ()) dataset (opts 3) in
      ignore (Trainer.train (int8_model ()) dataset (opts ~checkpoint:ck 2));
      (* Newest snapshot corrupted on disk: resume must use the previous
         generation and still reproduce the uninterrupted history. *)
      let raw = read_raw path in
      let b = Bytes.of_string raw in
      Bytes.set b (String.length raw - 5)
        (Char.chr (Char.code (Bytes.get b (String.length raw - 5)) lxor 0x01));
      write_raw path (Bytes.to_string b);
      let resumed =
        Trainer.train_resume (int8_model ()) dataset (opts ~checkpoint:ck 3)
      in
      check_history_equal "corrupt-newest fallback resume" full resumed)

let test_resume_equivalence_data_parallel () =
  let dataset = tiny_dataset () in
  let path = tmp_path ".train" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let ck = { Trainer.ckpt_path = path; ckpt_every = 2 } in
      let full =
        Trainer.train (int8_model ()) dataset (opts ~data_parallel:true 4)
      in
      ignore
        (Trainer.train (int8_model ()) dataset
           (opts ~checkpoint:ck ~data_parallel:true 2));
      let resumed =
        Trainer.train_resume (int8_model ()) dataset
          (opts ~checkpoint:ck ~data_parallel:true 4)
      in
      check_history_equal "data-parallel resume" full resumed)

let test_nan_loss_skipped () =
  let dataset = tiny_dataset () in
  let model = int8_model () in
  let tap ~epoch ~batch v = if epoch = 1 && batch = 0 then Float.nan else v in
  let history = Trainer.train model dataset (opts ~loss_tap:tap 3) in
  Alcotest.(check bool) "history finite" true
    (Array.for_all Float.is_finite history.Trainer.train_loss);
  Alcotest.(check bool) "params finite" true (all_finite_params model)

let test_nan_divergence_rollback () =
  let dataset = tiny_dataset () in
  let model = int8_model () in
  (* Every batch of epoch 1 is poisoned: the guard must decay the LR, roll
     back to the last good snapshot, then skip the (deterministically
     recurring) poisoned batches rather than loop forever. *)
  let tap ~epoch ~batch:_ v = if epoch = 1 then Float.nan else v in
  let history =
    Trainer.train model dataset
      (opts ~loss_tap:tap
         ~divergence:{ Trainer.max_failures = 2; lr_backoff = 0.5 }
         3)
  in
  Alcotest.(check (float 0.0)) "poisoned epoch contributes no loss" 0.0
    history.Trainer.train_loss.(1);
  Alcotest.(check bool) "history finite" true
    (Array.for_all Float.is_finite history.Trainer.train_loss);
  Alcotest.(check bool) "accuracies finite" true
    (Array.for_all Float.is_finite history.Trainer.valid_acc);
  Alcotest.(check bool) "params finite" true (all_finite_params model)

let test_train_guards () =
  let dataset = tiny_dataset () in
  Alcotest.check_raises "empty split"
    (Invalid_argument "Trainer.train: empty training split") (fun () ->
      ignore (Trainer.train (int8_model ()) { dataset with Synth.train = [||] } (opts 1)));
  Alcotest.check_raises "resume without checkpoint config"
    (Invalid_argument "Trainer.train_resume: options.checkpoint not set")
    (fun () -> ignore (Trainer.train_resume (int8_model ()) dataset (opts 1)))

let test_resume_rejects_mismatched_model () =
  let dataset = tiny_dataset () in
  let path = tmp_path ".train" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let ck = { Trainer.ckpt_path = path; ckpt_every = 0 } in
      ignore (Trainer.train (int8_model ()) dataset (opts ~checkpoint:ck 1));
      (* A model with different shapes must reject the snapshot (and fall
         back to fresh training) instead of loading garbage weights. *)
      let other =
        Qat.create
          { (Qat.default_config Qat.Int8_spatial) with arch = Qat.Vgg_mini [ 8 ] }
          ~seed:5
      in
      let h = Trainer.train_resume other dataset (opts ~checkpoint:ck 1) in
      Alcotest.(check bool) "trained fresh" true
        (Array.for_all Float.is_finite h.Trainer.train_loss);
      Alcotest.(check bool) "params finite" true (all_finite_params other))

let () =
  Alcotest.run "robustness"
    [
      ( "checkpoint",
        [
          QCheck_alcotest.to_alcotest prop_checkpoint_roundtrip;
          Alcotest.test_case "truncation" `Quick test_checkpoint_truncation;
          Alcotest.test_case "byte flips" `Quick test_checkpoint_byte_flips;
          Alcotest.test_case "bad version" `Quick test_checkpoint_bad_version;
          Alcotest.test_case "orphan tmp" `Quick test_checkpoint_orphan_tmp;
          Alcotest.test_case "rotation fallback" `Quick
            test_checkpoint_rotation_fallback;
        ] );
      ( "serialize",
        [
          QCheck_alcotest.to_alcotest prop_serialize_roundtrip_all_granularities;
          QCheck_alcotest.to_alcotest prop_qconv_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick
            test_serialize_rejects_malformed;
          Alcotest.test_case "shape validation" `Quick
            test_serialize_shape_validation;
          Alcotest.test_case "error offsets" `Quick test_serialize_error_offsets;
        ] );
      ( "guards",
        [
          Alcotest.test_case "sgd skips non-finite" `Quick
            test_sgd_skips_nonfinite;
          Alcotest.test_case "clip no-ops on non-finite" `Quick
            test_clip_noop_on_nonfinite;
          Alcotest.test_case "adam drops non-finite" `Quick
            test_adam_drops_nonfinite;
          Alcotest.test_case "scale snapshot roundtrip" `Quick
            test_scale_snapshot_roundtrip;
          Alcotest.test_case "calibration snapshot roundtrip" `Quick
            test_calibration_snapshot_roundtrip;
        ] );
      ( "trainer",
        [
          Alcotest.test_case "resume equivalence (wa)" `Slow
            test_resume_equivalence_wa;
          Alcotest.test_case "mid-epoch crash resume (wa)" `Slow
            test_crash_mid_epoch_resume_wa;
          Alcotest.test_case "corrupt newest falls back" `Slow
            test_crash_resume_corrupt_falls_back;
          Alcotest.test_case "resume equivalence (data-parallel)" `Slow
            test_resume_equivalence_data_parallel;
          Alcotest.test_case "nan loss skipped" `Quick test_nan_loss_skipped;
          Alcotest.test_case "nan divergence rollback" `Quick
            test_nan_divergence_rollback;
          Alcotest.test_case "train guards" `Quick test_train_guards;
          Alcotest.test_case "mismatched model rejected" `Quick
            test_resume_rejects_mismatched_model;
        ] );
    ]
