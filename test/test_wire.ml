(* Wire-protocol tests (PR 6): qcheck round-trips of arbitrary messages
   (floats compared bit-for-bit, specials included), resumable decoding
   under arbitrary chunking, typed errors for truncation / corruption /
   oversize / unknown tags — and the acceptance property: a request
   served over the socket is bit-identical to the same input run through
   the model directly. *)

module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Crc32 = Twq_util.Crc32
module Wire = Twq_serve.Wire
module Model = Twq_serve.Model
module Registry = Twq_serve.Registry
module Server = Twq_serve.Server
module Shard_client = Twq_serve.Shard_client
module Microkernel = Twq_winograd.Microkernel

(* ------------------------------------------------------------- gens *)

(* Floats that must survive bit-exactly, not just approximately. *)
let special_floats =
  [|
    0.0; -0.0; 1.0; -1.0; Float.infinity; Float.neg_infinity; Float.nan;
    Float.min_float; Float.max_float; 4.9e-324 (* subnormal *); 0.1; -3.25e17;
  |]

let gen_float =
  QCheck.Gen.(
    oneof
      [
        (fun st ->
          special_floats.(int_bound (Array.length special_floats - 1) st));
        float;
      ])

let gen_farr = QCheck.Gen.(array_size (int_bound 40) gen_float)
let gen_str = QCheck.Gen.(string_size (int_bound 60))
let gen_dims = QCheck.Gen.(array_size (int_bound 4) (int_range 0 4096))

let gen_outcome =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun queue_wait service data ->
            Wire.Logits { queue_wait; service; data })
          gen_float gen_float gen_farr;
        return Wire.Overloaded;
        return Wire.Expired;
        map (fun m -> Wire.Invalid m) gen_str;
        return Wire.Closed;
        map (fun m -> Wire.Failed m) gen_str;
        return Wire.No_model;
        map (fun m -> Wire.Unavailable m) gen_str;
      ])

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        (let* key = gen_str in
         let* deadline = opt gen_float in
         let* dims = gen_dims in
         let* data = gen_farr in
         return (Wire.Infer { key; deadline; dims; data }));
        map (fun o -> Wire.Infer_reply o) gen_outcome;
        return Wire.Ping;
        (let* healthy = bool in
         let* queue_depth = int_bound 10_000 in
         let* capacity = int_bound 10_000 in
         let* draining = bool in
         return (Wire.Pong { healthy; queue_depth; capacity; draining }));
        (let* name = gen_str in
         let* version = int_bound 1000 in
         let* input_dims = gen_dims in
         let* payload = string_size (int_bound 500) in
         return (Wire.Publish { name; version; input_dims; payload }));
        (let* ok = bool in
         let* reason = gen_str in
         return (Wire.Publish_reply { ok; reason }));
        (let* name = gen_str in
         let* version = int_bound 1000 in
         return (Wire.Activate { name; version }));
        (let* ok = bool in
         let* reason = gen_str in
         return (Wire.Activate_reply { ok; reason }));
        map (fun name -> Wire.Model_info { name }) gen_str;
        (let* active = opt (int_bound 1000) in
         let* versions = list_size (int_bound 8) (int_bound 1000) in
         return (Wire.Model_info_reply { active; versions }));
        return Wire.Stats;
        map (fun s -> Wire.Stats_reply s) (string_size (int_bound 300));
        return Wire.Drain;
        return Wire.Drain_reply;
        map (fun s -> Wire.Nack s) gen_str;
      ])

let gen_id = QCheck.Gen.(map Int64.of_int int)
let arb_msg = QCheck.make QCheck.Gen.(pair gen_id gen_msg)

(* Structural equality with bit-exact floats (nan <> nan under [=]). *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
let farr_eq a b = Array.length a = Array.length b && Array.for_all2 feq a b

let opt_feq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> feq x y
  | _ -> false

let outcome_eq a b =
  match (a, b) with
  | ( Wire.Logits { queue_wait = q1; service = s1; data = d1 },
      Wire.Logits { queue_wait = q2; service = s2; data = d2 } ) ->
      feq q1 q2 && feq s1 s2 && farr_eq d1 d2
  | Wire.Overloaded, Wire.Overloaded
  | Wire.Expired, Wire.Expired
  | Wire.Closed, Wire.Closed
  | Wire.No_model, Wire.No_model ->
      true
  | Wire.Invalid a, Wire.Invalid b
  | Wire.Failed a, Wire.Failed b
  | Wire.Unavailable a, Wire.Unavailable b ->
      a = b
  | _ -> false

let msg_eq a b =
  match (a, b) with
  | ( Wire.Infer { key = k1; deadline = dl1; dims = di1; data = da1 },
      Wire.Infer { key = k2; deadline = dl2; dims = di2; data = da2 } ) ->
      k1 = k2 && opt_feq dl1 dl2 && di1 = di2 && farr_eq da1 da2
  | Wire.Infer_reply a, Wire.Infer_reply b -> outcome_eq a b
  | a, b -> a = b (* remaining constructors carry no floats *)

(* -------------------------------------------------------- roundtrip *)

let prop_roundtrip =
  QCheck.Test.make ~name:"wire: encode/decode round-trips bit-exactly"
    ~count:500 arb_msg (fun (id, msg) ->
      match Wire.decode_string (Wire.encode ~id msg) with
      | Ok (id', msg') -> Int64.equal id id' && msg_eq msg msg'
      | Error e -> QCheck.Test.fail_reportf "%s" (Wire.error_to_string e))

let prop_chunked_resumption =
  QCheck.Test.make
    ~name:"wire: decoder resumes across arbitrary chunk boundaries" ~count:60
    QCheck.(
      make
        Gen.(
          let* msgs = list_size (int_range 1 5) (pair gen_id gen_msg) in
          let* chunk = int_range 1 7 in
          return (msgs, chunk)))
    (fun (msgs, chunk) ->
      let stream =
        String.concat "" (List.map (fun (id, m) -> Wire.encode ~id m) msgs)
      in
      let d = Wire.decoder () in
      let got = ref [] in
      let pos = ref 0 in
      let drain () =
        let continue = ref true in
        while !continue do
          match Wire.next d with
          | `Frame f -> got := f :: !got
          | `Need_more -> continue := false
          | `Error e -> QCheck.Test.fail_reportf "%s" (Wire.error_to_string e)
        done
      in
      while !pos < String.length stream do
        let len = min chunk (String.length stream - !pos) in
        Wire.feed d ~pos:!pos ~len stream;
        pos := !pos + len;
        drain ()
      done;
      let got = List.rev !got in
      List.length got = List.length msgs
      && List.for_all2
           (fun (id, m) (id', m') -> Int64.equal id id' && msg_eq m m')
           msgs got)

(* ------------------------------------------------------ typed errors *)

let prop_truncation =
  QCheck.Test.make ~name:"wire: every proper prefix is Truncated" ~count:100
    arb_msg (fun (id, msg) ->
      let s = Wire.encode ~id msg in
      (* Check a handful of prefix lengths, always including the
         near-complete one. *)
      let cuts =
        [ 0; 1; 4; 5; 17; String.length s / 2; String.length s - 1 ]
        |> List.filter (fun n -> n >= 0 && n < String.length s)
      in
      List.for_all
        (fun n ->
          match Wire.decode_string (String.sub s 0 n) with
          | Error Wire.Truncated -> true
          | Error e ->
              QCheck.Test.fail_reportf "prefix %d: %s" n
                (Wire.error_to_string e)
          | Ok _ -> QCheck.Test.fail_reportf "prefix %d decoded" n)
        cuts)

let prop_byte_flip =
  QCheck.Test.make ~name:"wire: any single flipped byte is a typed error"
    ~count:150
    QCheck.(
      make
        Gen.(
          let* id_msg = pair gen_id gen_msg in
          let* pos = int_bound 10_000 in
          let* bit = int_range 0 7 in
          return (id_msg, pos, bit)))
    (fun ((id, msg), pos, bit) ->
      let s = Wire.encode ~id msg in
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Wire.decode_string (Bytes.to_string b) with
      | Error _ -> true (* which error depends on where the flip landed *)
      | Ok (id', msg') ->
          (* A flip inside the id field keeps the CRC over it... no — the
             CRC covers bytes [4, end), so any flip must be caught. *)
          QCheck.Test.fail_reportf "flip at %d accepted (id %Ld->%Ld, eq %b)"
            pos id id' (msg_eq msg msg'))

let test_trailing () =
  let s = Wire.encode ~id:7L Wire.Ping ^ "xx" in
  match Wire.decode_string s with
  | Error (Wire.Trailing 2) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "decoded with trailing bytes"

let test_oversized () =
  let s = Wire.encode ~id:1L (Wire.Nack (String.make 256 'a')) in
  match Wire.decode_string ~max_frame:64 s with
  | Error (Wire.Oversized { limit = 64; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame decoded"

(* Rewrite one header byte and fix the CRC back up, so the *semantic*
   check (not the checksum) must catch the problem. *)
let patch_byte_and_fix_crc s ~pos ~value =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr value);
  let crc = Crc32.digest_sub (Bytes.to_string b) ~pos:4 ~len:(Bytes.length b - 8) in
  for i = 0 to 3 do
    Bytes.set b (Bytes.length b - 4 + i) (Char.chr ((crc lsr (8 * i)) land 0xff))
  done;
  Bytes.to_string b

let test_unknown_tag_valid_crc () =
  let s = patch_byte_and_fix_crc (Wire.encode ~id:1L Wire.Ping) ~pos:5 ~value:200 in
  match Wire.decode_string s with
  | Error (Wire.Unknown_tag 200) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "unknown tag decoded"

let test_bad_version_valid_crc () =
  let s = patch_byte_and_fix_crc (Wire.encode ~id:1L Wire.Ping) ~pos:4 ~value:9 in
  match Wire.decode_string s with
  | Error (Wire.Unsupported_version 9) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "bad version decoded"

let test_bad_magic () =
  let b = Bytes.of_string (Wire.encode ~id:1L Wire.Ping) in
  Bytes.set b 0 'X';
  match Wire.decode_string (Bytes.to_string b) with
  | Error Wire.Bad_magic -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "bad magic decoded"

let test_decoder_poisons () =
  let d = Wire.decoder () in
  Wire.feed d "not a frame at all!!";
  (match Wire.next d with
  | `Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (* Feeding a perfectly good frame afterwards must not resurrect it. *)
  Wire.feed d (Wire.encode ~id:1L Wire.Ping);
  match Wire.next d with
  | `Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "poisoned decoder accepted input"

(* ------------------------------------------- daemon: wire == in-process *)

let tmp_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Unix.mkdir p 0o755;
  p

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let make_model ?(res = 8) ?(width_div = 4) ~seed () =
  let rng = Rng.create seed in
  let g = Twq_nn.Passes.fold_bn (Twq_nn.Gmodels.resnet20 ~rng ~width_div ()) in
  let cal = Tensor.rand_gaussian rng [| 2; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
  ( Model.Graph (Twq_nn.Int_graph.quantize g ~calibration:cal ()),
    [| 3; res; res |] )

let reference_row model dims x =
  let c = dims.(0) and h = dims.(1) and w = dims.(2) in
  let x1 = Tensor.zeros [| 1; c; h; w |] in
  Array.blit x.Tensor.data 0 x1.Tensor.data 0 (c * h * w);
  let y = Model.run_batch model x1 in
  let classes = Tensor.dim y 1 in
  Array.sub y.Tensor.data 0 classes

let with_daemon ?config f =
  let dir = tmp_dir "twq_wire" in
  let sock = Filename.temp_file "twq_wire" ".sock" in
  Sys.remove sock;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let model, dims = make_model ~seed:3 () in
      let reg = Result.get_ok (Registry.open_dir dir) in
      (match Registry.publish reg ~name:"m" ~version:1 ~input_dims:dims model with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "publish: %s" (Registry.error_to_string e));
      match Server.listen ?config ~registry:reg ~path:sock () with
      | Error e -> Alcotest.failf "listen: %s" e
      | Ok d ->
          Fun.protect
            ~finally:(fun () -> Server.stop_daemon d)
            (fun () -> f d ~sock ~model ~dims))

let connect sock =
  match Shard_client.connect sock with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Shard_client.error_to_string e)

let prop_daemon_bit_identical () =
  (* The acceptance criterion: logits served over the socket are
     bit-identical to in-process execution of the same input. *)
  with_daemon (fun _d ~sock ~model ~dims ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          QCheck.Test.check_exn
            (QCheck.Test.make ~name:"wire infer == direct run_batch"
               ~count:25
               QCheck.(make Gen.(int_bound 100_000))
               (fun seed ->
                 let rng = Rng.create seed in
                 let x =
                   Tensor.rand_gaussian rng dims ~mu:0.0 ~sigma:1.0
                 in
                 match Shard_client.infer c x with
                 | Ok { outcome = Wire.Logits { data; _ }; _ } ->
                     farr_eq data (reference_row model dims x)
                 | Ok { outcome; _ } ->
                     QCheck.Test.fail_reportf "outcome %s"
                       (match outcome with
                       | Wire.Overloaded -> "overloaded"
                       | Wire.Expired -> "expired"
                       | Wire.Invalid m -> "invalid: " ^ m
                       | Wire.Closed -> "closed"
                       | Wire.Failed m -> "failed: " ^ m
                       | Wire.No_model -> "no model"
                       | Wire.Unavailable m -> "unavailable: " ^ m
                       | Wire.Logits _ -> assert false)
                 | Error e ->
                     QCheck.Test.fail_reportf "%s"
                       (Shard_client.error_to_string e)))))

let test_daemon_control_plane () =
  with_daemon (fun _d ~sock ~model:_ ~dims:_ ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          (match Shard_client.ping c with
          | Ok (Wire.Pong { healthy; draining; _ }) ->
              Alcotest.(check bool) "healthy" true healthy;
              Alcotest.(check bool) "not draining" false draining
          | Ok _ -> Alcotest.fail "expected Pong"
          | Error e -> Alcotest.failf "ping: %s" (Shard_client.error_to_string e));
          (match Shard_client.model_info c ~name:"m" with
          | Ok (active, versions) ->
              Alcotest.(check (option int)) "active v1" (Some 1) active;
              Alcotest.(check (list int)) "versions" [ 1 ] versions
          | Error e ->
              Alcotest.failf "model_info: %s" (Shard_client.error_to_string e));
          (match Shard_client.stats c with
          | Ok json ->
              Alcotest.(check bool) "stats mentions serving" true
                (String.length json > 0
                && String.sub json 0 1 = "{")
          | Error e -> Alcotest.failf "stats: %s" (Shard_client.error_to_string e));
          (match Shard_client.drain c with
          | Ok () -> ()
          | Error e -> Alcotest.failf "drain: %s" (Shard_client.error_to_string e));
          (* After drain: infers refused (typed), pong reports draining. *)
          let x = Tensor.zeros [| 3; 8; 8 |] in
          (match Shard_client.infer c x with
          | Ok { outcome = Wire.Closed; _ } -> ()
          | Ok _ -> Alcotest.fail "expected Closed after drain"
          | Error e -> Alcotest.failf "infer: %s" (Shard_client.error_to_string e));
          match Shard_client.ping c with
          | Ok (Wire.Pong { draining; _ }) ->
              Alcotest.(check bool) "draining" true draining
          | Ok _ -> Alcotest.fail "expected Pong"
          | Error e -> Alcotest.failf "ping: %s" (Shard_client.error_to_string e)))

let test_daemon_rejects_garbage () =
  with_daemon (fun _d ~sock ~model:_ ~dims:_ ->
      (* A client that breaks framing gets dropped; a fresh connection
         still works (per-connection decoder state). *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let junk = Bytes.of_string "GARBAGEGARBAGEGARBAGE" in
      ignore (Unix.write fd junk 0 (Bytes.length junk));
      let buf = Bytes.create 64 in
      let n = try Unix.read fd buf 0 64 with Unix.Unix_error _ -> 0 in
      Alcotest.(check int) "connection dropped without reply" 0 n;
      Unix.close fd;
      let c = connect sock in
      (match Shard_client.ping c with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "fresh connection: %s" (Shard_client.error_to_string e));
      Shard_client.close c)

let test_kill_daemon_severs () =
  with_daemon (fun d ~sock ~model:_ ~dims:_ ->
      let c = connect sock in
      Server.kill_daemon d;
      (match Shard_client.ping c with
      | Error (Shard_client.Io _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Shard_client.error_to_string e)
      | Ok _ -> Alcotest.fail "ping succeeded against killed daemon");
      Shard_client.close c;
      match Shard_client.connect sock with
      | Error (Shard_client.Connect _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Shard_client.error_to_string e)
      | Ok c2 ->
          Shard_client.close c2;
          Alcotest.fail "connected to killed daemon")

let test_daemon_sparse_bit_identical () =
  (* Sparse Winograd execution served over the wire is bit-identical to
     dense execution of the same pruned weights.  The registry keeps the
     in-memory model it was published with, so we pack the published
     graph under a permissive sparse threshold (guaranteeing compressed
     panels are actually in play) and compute the reference from an
     identical deterministic prune packed with sparsity disabled. *)
  let dir = tmp_dir "twq_wire_sp" in
  let sock = Filename.temp_file "twq_wire_sp" ".sock" in
  Sys.remove sock;
  Fun.protect
    ~finally:(fun () ->
      Microkernel.reset_config ();
      rm_rf dir;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let res = 8 in
      let dims = [| 3; res; res |] in
      let rng = Rng.create 17 in
      let g = Twq_nn.Passes.fold_bn (Twq_nn.Gmodels.resnet20 ~rng ~width_div:4 ()) in
      let cal = Tensor.rand_gaussian rng [| 2; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
      let ig = Twq_nn.Int_graph.quantize g ~calibration:cal () in
      Microkernel.set_sparse_threshold 0.0;
      let dense = Model.Graph (Twq_nn.Int_graph.prune ig ~density:0.3) in
      Microkernel.set_sparse_threshold 0.9;
      let sparse_ig = Twq_nn.Int_graph.prune ig ~density:0.3 in
      let sparse_taps, total_taps = Twq_nn.Int_graph.wino_sparsity sparse_ig in
      Alcotest.(check bool)
        (Printf.sprintf "sparse taps selected (%d/%d)" sparse_taps total_taps)
        true (sparse_taps > 0);
      let reg = Result.get_ok (Registry.open_dir dir) in
      (match
         Registry.publish reg ~name:"rn20s" ~version:1 ~input_dims:dims
           (Model.Graph sparse_ig)
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "publish: %s" (Registry.error_to_string e));
      match Server.listen ~registry:reg ~path:sock () with
      | Error e -> Alcotest.failf "listen: %s" e
      | Ok d ->
          Fun.protect
            ~finally:(fun () -> Server.stop_daemon d)
            (fun () ->
              let c = connect sock in
              Fun.protect
                ~finally:(fun () -> Shard_client.close c)
                (fun () ->
                  QCheck.Test.check_exn
                    (QCheck.Test.make
                       ~name:"wire sparse infer == dense run_batch" ~count:15
                       QCheck.(make Gen.(int_bound 100_000))
                       (fun seed ->
                         let rng = Rng.create seed in
                         let x =
                           Tensor.rand_gaussian rng dims ~mu:0.0 ~sigma:1.0
                         in
                         match Shard_client.infer c x with
                         | Ok { outcome = Wire.Logits { data; _ }; _ } ->
                             farr_eq data (reference_row dense dims x)
                         | Ok _ -> QCheck.Test.fail_reportf "non-logits outcome"
                         | Error e ->
                             QCheck.Test.fail_reportf "%s"
                               (Shard_client.error_to_string e))))))

let () =
  Alcotest.run "wire"
    [
      ( "framing",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_chunked_resumption;
          QCheck_alcotest.to_alcotest prop_truncation;
          QCheck_alcotest.to_alcotest prop_byte_flip;
          Alcotest.test_case "trailing bytes" `Quick test_trailing;
          Alcotest.test_case "oversized" `Quick test_oversized;
          Alcotest.test_case "unknown tag, valid crc" `Quick
            test_unknown_tag_valid_crc;
          Alcotest.test_case "bad version, valid crc" `Quick
            test_bad_version_valid_crc;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "decoder poisons" `Quick test_decoder_poisons;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "wire infer bit-identical" `Quick
            prop_daemon_bit_identical;
          Alcotest.test_case "control plane" `Quick test_daemon_control_plane;
          Alcotest.test_case "garbage dropped" `Quick
            test_daemon_rejects_garbage;
          Alcotest.test_case "kill severs connections" `Quick
            test_kill_daemon_severs;
          Alcotest.test_case "sparse wire infer bit-identical" `Quick
            test_daemon_sparse_bit_identical;
        ] );
    ]
