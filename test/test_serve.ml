(* Tests for the serving subsystem (PR 4): batching equivalence (any
   interleaving of requests through the dynamic batcher yields
   bit-identical outputs to sequential single-image execution), admission
   control (overload shedding, deadline expiry, post-shutdown submits —
   all typed, never exceptions), registry integrity (CRC, orphan-tmp
   cleanup, hot-swap) and the metrics layer. *)

module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Crc32 = Twq_util.Crc32
module Checkpoint = Twq_util.Checkpoint
module Metrics = Twq_serve.Metrics
module Model = Twq_serve.Model
module Registry = Twq_serve.Registry
module Batcher = Twq_serve.Batcher
module Server = Twq_serve.Server
module Loadgen = Twq_serve.Loadgen

let tmp_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Unix.mkdir p 0o755;
  p

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* A small servable model: resnet20/4 at low resolution keeps each test
   in the tens of milliseconds while still crossing Winograd, spatial,
   residual-add and head paths. *)
let make_model ?(res = 8) ?(width_div = 4) ~seed () =
  let rng = Rng.create seed in
  let g =
    Twq_nn.Passes.fold_bn (Twq_nn.Gmodels.resnet20 ~rng ~width_div ())
  in
  let cal = Tensor.rand_gaussian rng [| 2; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
  (Model.Graph (Twq_nn.Int_graph.quantize g ~calibration:cal ()), [| 3; res; res |])

let the_model, the_dims = make_model ~seed:3 ()

let rand_input ?(dims = the_dims) seed =
  let rng = Rng.create seed in
  Tensor.rand_gaussian rng dims ~mu:0.0 ~sigma:1.0

let tensor_equal_bits a b =
  Tensor.numel a = Tensor.numel b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Tensor.data b.Tensor.data

(* Reference: the model run on the single image alone. *)
let reference_row model dims x =
  let c = dims.(0) and h = dims.(1) and w = dims.(2) in
  let x1 = Tensor.zeros [| 1; c; h; w |] in
  Array.blit x.Tensor.data 0 x1.Tensor.data 0 (c * h * w);
  let y = Model.run_batch model x1 in
  let classes = Tensor.dim y 1 in
  let row = Tensor.zeros [| classes |] in
  Array.blit y.Tensor.data 0 row.Tensor.data 0 classes;
  row

(* ------------------------------------------------ batching equivalence *)

let prop_batching_bit_identical =
  QCheck.Test.make
    ~name:"server batching == sequential single-image execution (bit-exact)"
    ~count:12
    QCheck.(triple (int_range 1 20) (int_range 1 8) (int_range 0 10_000))
    (fun (n_req, max_batch, seed) ->
      let config =
        {
          Server.default_config with
          Server.max_batch;
          max_delay = (if seed mod 2 = 0 then 0.0 else 0.001);
          capacity = n_req + 8;
        }
      in
      let server = Server.for_model ~config the_model ~input_dims:the_dims () in
      let inputs = Array.init n_req (fun i -> rand_input (seed + (17 * i))) in
      (* Submitting from one domain while the worker drains concurrently
         yields whatever interleaving the scheduler produces; batch
         shapes vary with max_batch/max_delay/timing. *)
      let tickets = Array.map (Server.submit server) inputs in
      let outcomes = Array.map Server.await tickets in
      Server.shutdown server;
      Array.for_all2
        (fun x outcome ->
          match outcome with
          | Server.Output row ->
              tensor_equal_bits row (reference_row the_model the_dims x)
          | _ -> false)
        inputs outcomes)

let test_batch_submit_after_await () =
  (* Several waves through the same server: batches of earlier waves must
     not perturb later ones. *)
  let server = Server.for_model the_model ~input_dims:the_dims () in
  for wave = 0 to 2 do
    let inputs = Array.init 5 (fun i -> rand_input ((100 * wave) + i)) in
    let tickets = Array.map (Server.submit server) inputs in
    Array.iteri
      (fun i ticket ->
        match Server.await ticket with
        | Server.Output row ->
            Alcotest.(check bool)
              (Printf.sprintf "wave %d req %d bit-identical" wave i)
              true
              (tensor_equal_bits row (reference_row the_model the_dims inputs.(i)))
        | o -> Alcotest.failf "unexpected outcome %s" (Server.outcome_label o))
      tickets
  done;
  Server.shutdown server

(* --------------------------------------------------- admission control *)

let count_outcomes outcomes =
  Array.fold_left
    (fun (ok, shed, exp, other) o ->
      match o with
      | Server.Output _ -> (ok + 1, shed, exp, other)
      | Server.Rejected_overload -> (ok, shed + 1, exp, other)
      | Server.Deadline_expired -> (ok, shed, exp + 1, other)
      | _ -> (ok, shed, exp, other + 1))
    (0, 0, 0, 0) outcomes

let test_overload_sheds_typed () =
  (* Tiny queue, batch-1 server, a flood of instant submits: almost all
     must shed as typed Rejected_overload; every request still gets
     exactly one outcome and nothing raises. *)
  let config =
    { Server.default_config with Server.max_batch = 1; max_delay = 0.0;
      capacity = 2 }
  in
  let server = Server.for_model ~config the_model ~input_dims:the_dims () in
  let n = 40 in
  let tickets = Array.init n (fun i -> Server.submit server (rand_input i)) in
  let outcomes = Array.map Server.await tickets in
  Server.shutdown server;
  let ok, shed, expired, other = count_outcomes outcomes in
  Alcotest.(check int) "all requests resolved" n (ok + shed + expired + other);
  Alcotest.(check int) "no expiries or failures" 0 (expired + other);
  Alcotest.(check bool) "some requests shed" true (shed > 0);
  Alcotest.(check bool) "some requests served" true (ok > 0);
  let m = Server.metrics server in
  Alcotest.(check int) "metrics shed count" shed
    (Metrics.Counter.value m.Metrics.rejected_overload);
  Alcotest.(check int) "metrics completed count" ok
    (Metrics.Counter.value m.Metrics.completed)

let test_deadline_expiry () =
  let server = Server.for_model the_model ~input_dims:the_dims () in
  (match Server.infer ~deadline:(-1.0) server (rand_input 1) with
  | Server.Deadline_expired -> ()
  | o -> Alcotest.failf "expected expiry, got %s" (Server.outcome_label o));
  (match Server.infer ~deadline:30.0 server (rand_input 2) with
  | Server.Output _ -> ()
  | o -> Alcotest.failf "expected output, got %s" (Server.outcome_label o));
  Server.shutdown server;
  let m = Server.metrics server in
  Alcotest.(check int) "expiry counted" 1
    (Metrics.Counter.value m.Metrics.deadline_expired)

let test_invalid_shape_and_closed () =
  let server = Server.for_model the_model ~input_dims:the_dims () in
  (match Server.infer server (Tensor.zeros [| 3; 4; 4 |]) with
  | Server.Rejected_invalid _ -> ()
  | o -> Alcotest.failf "expected invalid, got %s" (Server.outcome_label o));
  Server.shutdown server;
  Server.shutdown server (* idempotent *);
  match Server.infer server (rand_input 3) with
  | Server.Rejected_closed -> ()
  | o -> Alcotest.failf "expected closed, got %s" (Server.outcome_label o)

let test_shutdown_drains () =
  (* Everything accepted before shutdown completes with a real output. *)
  let config =
    { Server.default_config with Server.max_batch = 4; max_delay = 0.002;
      capacity = 64 }
  in
  let server = Server.for_model ~config the_model ~input_dims:the_dims () in
  let inputs = Array.init 12 (fun i -> rand_input (500 + i)) in
  let tickets = Array.map (Server.submit server) inputs in
  Server.shutdown server;
  Array.iteri
    (fun i ticket ->
      match Server.await ticket with
      | Server.Output row ->
          Alcotest.(check bool) "drained output bit-identical" true
            (tensor_equal_bits row (reference_row the_model the_dims inputs.(i)))
      | o -> Alcotest.failf "request %d: %s after drain" i (Server.outcome_label o))
    tickets

let test_loadgen_closed_loop () =
  let server = Server.for_model the_model ~input_dims:the_dims () in
  let s =
    Loadgen.run ~server ~make_input:rand_input ~requests:20 ~concurrency:4 ()
  in
  Server.shutdown server;
  Alcotest.(check int) "all completed" 20 s.Loadgen.completed;
  Alcotest.(check int) "none shed" 0 s.Loadgen.rejected_overload;
  Alcotest.(check bool) "throughput positive" true (s.Loadgen.throughput > 0.0);
  Alcotest.(check bool) "p50 <= p99" true
    (s.Loadgen.latency_p50 <= s.Loadgen.latency_p99);
  let json = Loadgen.summary_to_json s in
  let contains needle =
    let ln = String.length needle and lj = String.length json in
    let rec go i = i + ln <= lj && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary json has completed count" true
    (contains "\"completed\": 20")

(* -------------------------------------------------------------- batcher *)

let test_batcher_fifo_and_bounds () =
  let b = Batcher.create ~capacity:3 ~max_batch:2 ~max_delay:0.0 () in
  Alcotest.(check bool) "accept 1" true (Batcher.submit b 1 = Batcher.Accepted);
  Alcotest.(check bool) "accept 2" true (Batcher.submit b 2 = Batcher.Accepted);
  Alcotest.(check bool) "accept 3" true (Batcher.submit b 3 = Batcher.Accepted);
  Alcotest.(check bool) "overflow sheds" true
    (Batcher.submit b 4 = Batcher.Overloaded);
  (match Batcher.next_batch b with
  | Some ([ 1; 2 ], _) -> ()
  | Some (l, _) ->
      Alcotest.failf "wrong batch [%s]"
        (String.concat ";" (List.map string_of_int l))
  | None -> Alcotest.fail "no batch");
  (match Batcher.next_batch b with
  | Some ([ 3 ], _) -> ()
  | _ -> Alcotest.fail "expected tail batch [3]");
  Batcher.shutdown b;
  Alcotest.(check bool) "closed rejects" true (Batcher.submit b 5 = Batcher.Closed);
  Alcotest.(check bool) "drained -> None" true (Batcher.next_batch b = None)

let test_batcher_delay_window () =
  let b = Batcher.create ~capacity:16 ~max_batch:4 ~max_delay:0.05 () in
  ignore (Batcher.submit b 1);
  (* A second producer lands inside the window: the batch must contain
     both even though they were not simultaneous. *)
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.005;
        ignore (Batcher.submit b 2))
  in
  (match Batcher.next_batch b with
  | Some (l, _) ->
      Alcotest.(check (list int)) "window collects both" [ 1; 2 ] l
  | None -> Alcotest.fail "no batch");
  Domain.join d;
  Batcher.shutdown b

let test_batcher_close_submit_race () =
  (* Producers hammer submit while shutdown lands mid-stream: every
     submit must return a typed verdict (never raise, never block
     forever), and every Accepted item must be delivered by next_batch
     before it returns None — accepted work is never silently dropped. *)
  for trial = 0 to 7 do
    let b = Batcher.create ~capacity:64 ~max_batch:8 ~max_delay:0.0 () in
    let accepted = Atomic.make 0 in
    let drained = Atomic.make 0 in
    let consumer =
      Domain.spawn (fun () ->
          let rec go () =
            match Batcher.next_batch b with
            | Some (l, _) ->
                ignore (Atomic.fetch_and_add drained (List.length l));
                go ()
            | None -> ()
          in
          go ())
    in
    let producers =
      List.init 4 (fun p ->
          Domain.spawn (fun () ->
              for i = 0 to 63 do
                match Batcher.submit b ((p * 1000) + i) with
                | Batcher.Accepted -> Atomic.incr accepted
                | Batcher.Overloaded | Batcher.Closed -> ()
              done))
    in
    Unix.sleepf 0.002;
    Batcher.shutdown b;
    List.iter Domain.join producers;
    Domain.join consumer;
    Alcotest.(check int)
      (Printf.sprintf "trial %d: accepted = drained" trial)
      (Atomic.get accepted) (Atomic.get drained)
  done

(* ------------------------------------------------------------- registry *)

let publish_tiny reg ~name ~version ~seed =
  let model, dims = make_model ~res:8 ~width_div:4 ~seed () in
  match Registry.publish reg ~name ~version ~input_dims:dims model with
  | Ok e -> e
  | Error e -> Alcotest.failf "publish: %s" (Registry.error_to_string e)

let with_registry f =
  let dir = tmp_dir "twq_registry" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_registry_roundtrip () =
  with_registry (fun dir ->
      let reg =
        match Registry.open_dir dir with
        | Ok r -> r
        | Error e -> Alcotest.failf "open: %s" (Registry.error_to_string e)
      in
      let e = publish_tiny reg ~name:"m" ~version:1 ~seed:11 in
      (* Reload from disk in a fresh registry: the model must produce
         bit-identical outputs. *)
      let reg2 =
        match Registry.open_dir dir with
        | Ok r -> r
        | Error e -> Alcotest.failf "reopen: %s" (Registry.error_to_string e)
      in
      match Registry.lookup reg2 "m" with
      | Error e -> Alcotest.failf "lookup: %s" (Registry.error_to_string e)
      | Ok e2 ->
          Alcotest.(check int) "version" 1 e2.Registry.version;
          Alcotest.(check int) "crc stable" e.Registry.crc e2.Registry.crc;
          let x = Tensor.zeros [| 1; 3; 8; 8 |] in
          Alcotest.(check bool) "reloaded model bit-identical" true
            (tensor_equal_bits
               (Model.run_batch e.Registry.model x)
               (Model.run_batch e2.Registry.model x)))

let test_registry_orphan_tmp_cleanup () =
  with_registry (fun dir ->
      let reg =
        match Registry.open_dir dir with
        | Ok r -> r
        | Error e -> Alcotest.failf "open: %s" (Registry.error_to_string e)
      in
      ignore (publish_tiny reg ~name:"m" ~version:1 ~seed:11);
      (* Simulate a writer killed mid-publish. *)
      write_raw (Filename.concat dir "m@v2.twqm.tmp") "half-written";
      write_raw (Filename.concat dir "other@v1.twqm.tmp") "also dead";
      let reg2 =
        match Registry.open_dir dir with
        | Ok r -> r
        | Error e -> Alcotest.failf "reopen: %s" (Registry.error_to_string e)
      in
      Alcotest.(check int) "orphans removed" 2
        (List.length (Registry.orphans_removed reg2));
      Alcotest.(check bool) "tmp files gone" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".tmp"))
           (Sys.readdir dir));
      Alcotest.(check bool) "real artifact survives" true
        (Result.is_ok (Registry.lookup reg2 "m")))

let test_registry_corrupt_artifact_skipped () =
  with_registry (fun dir ->
      let reg = Result.get_ok (Registry.open_dir dir) in
      ignore (publish_tiny reg ~name:"m" ~version:1 ~seed:11);
      let file = Filename.concat dir "m@v1.twqm" in
      let raw = read_raw file in
      (* Flip one payload byte, far from the header. *)
      let b = Bytes.of_string raw in
      let pos = Bytes.length b - 7 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
      write_raw file (Bytes.to_string b);
      let reg2 = Result.get_ok (Registry.open_dir dir) in
      Alcotest.(check bool) "lookup fails" true
        (Result.is_error (Registry.lookup reg2 "m"));
      match Registry.skipped reg2 with
      | [ (_, Registry.Corrupt_artifact _) ] -> ()
      | [ (_, e) ] ->
          Alcotest.failf "wrong error: %s" (Registry.error_to_string e)
      | l -> Alcotest.failf "expected one skipped artifact, got %d" (List.length l))

let test_registry_hot_swap () =
  with_registry (fun dir ->
      let reg = Result.get_ok (Registry.open_dir dir) in
      let e1 = publish_tiny reg ~name:"m" ~version:1 ~seed:11 in
      let e2 = publish_tiny reg ~name:"m" ~version:2 ~seed:99 in
      Alcotest.(check bool) "distinct models" true (e1.Registry.crc <> e2.Registry.crc);
      (match Registry.lookup reg "m" with
      | Ok e -> Alcotest.(check int) "newest wins" 2 e.Registry.version
      | Error e -> Alcotest.failf "lookup: %s" (Registry.error_to_string e));
      (match Registry.lookup ~version:1 reg "m" with
      | Ok e -> Alcotest.(check int) "pinned version" 1 e.Registry.version
      | Error e -> Alcotest.failf "lookup v1: %s" (Registry.error_to_string e));
      (* A server resolving through the registry flips between batches. *)
      let x = rand_input 5 in
      let resolve () = (Result.get_ok (Registry.lookup reg "m")).Registry.model in
      let server = Server.start ~model:resolve ~input_dims:the_dims () in
      let y2 =
        match Server.infer server x with
        | Server.Output row -> row
        | o -> Alcotest.failf "infer: %s" (Server.outcome_label o)
      in
      Alcotest.(check bool) "serves v2" true
        (tensor_equal_bits y2 (reference_row e2.Registry.model the_dims x));
      Server.shutdown server;
      Alcotest.(check bool) "names lists both versions" true
        (Registry.names reg = [ ("m", [ 2; 1 ]) ]))

(* Hot-swapping must leave the server with compiled plans for the new
   artifact: the initial model is warmed at [start], a swapped-in model
   at its first batch — after that no request plans anything. *)
let plan_shapes = function
  | Model.Graph g -> (
      match Twq_nn.Int_graph.plans g with
      | Some c -> Twq_nn.Plan.cached_shapes c
      | None -> [])
  | Model.Net d -> Twq_nn.Plan.cached_shapes (Twq_nn.Deploy.plans d)

let test_hot_swap_rebuilds_plans () =
  with_registry (fun dir ->
      let reg = Result.get_ok (Registry.open_dir dir) in
      let e1 = publish_tiny reg ~name:"m" ~version:1 ~seed:11 in
      let resolve () = (Result.get_ok (Registry.lookup reg "m")).Registry.model in
      let config = { Server.default_config with Server.max_batch = 4 } in
      let server = Server.start ~config ~model:resolve ~input_dims:the_dims () in
      (* Initial model warmed at start: one plan per servable batch size. *)
      Alcotest.(check int) "v1 warmed for all batch sizes" 4
        (List.length (plan_shapes e1.Registry.model));
      let x = rand_input 5 in
      (match Server.infer server x with
      | Server.Output _ -> ()
      | o -> Alcotest.failf "infer v1: %s" (Server.outcome_label o));
      (* Swap in v2: a fresh artifact with no compiled plans yet. *)
      let e2 = publish_tiny reg ~name:"m" ~version:2 ~seed:99 in
      Alcotest.(check int) "v2 starts unplanned" 0
        (List.length (plan_shapes e2.Registry.model));
      let y2 =
        match Server.infer server x with
        | Server.Output row -> row
        | o -> Alcotest.failf "infer v2: %s" (Server.outcome_label o)
      in
      Server.shutdown server;
      (* The swapped model got its own plans, and the served row is
         bit-identical to running the new artifact directly. *)
      Alcotest.(check int) "v2 warmed after swap" 4
        (List.length (plan_shapes e2.Registry.model));
      Alcotest.(check bool) "serves v2 bit-identically" true
        (tensor_equal_bits y2 (reference_row e2.Registry.model the_dims x)))

(* Two-phase publish, registry side: [resolve] follows the newest
   version until one is pinned, staging never shifts a pinned pointer,
   and [activate] only flips to versions that actually exist. *)
let test_registry_activate_resolve () =
  with_registry (fun dir ->
      let reg = Result.get_ok (Registry.open_dir dir) in
      ignore (publish_tiny reg ~name:"m" ~version:1 ~seed:11);
      (match Registry.resolve reg "m" with
      | Ok e -> Alcotest.(check int) "unpinned resolves newest" 1 e.Registry.version
      | Error e -> Alcotest.failf "resolve: %s" (Registry.error_to_string e));
      Alcotest.(check (option int)) "nothing active yet" None
        (Registry.active_version reg "m");
      (match Registry.activate reg ~name:"m" ~version:1 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "activate: %s" (Registry.error_to_string e));
      Alcotest.(check (option int)) "v1 pinned" (Some 1)
        (Registry.active_version reg "m");
      (* Staging v2 must not move the pinned pointer (phase one of a
         fleet publish leaves every shard serving its old version). *)
      ignore (publish_tiny reg ~name:"m" ~version:2 ~seed:99);
      (match Registry.resolve reg "m" with
      | Ok e -> Alcotest.(check int) "staged v2 doesn't serve" 1 e.Registry.version
      | Error e -> Alcotest.failf "resolve: %s" (Registry.error_to_string e));
      (* Phase two flips it. *)
      (match Registry.activate reg ~name:"m" ~version:2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "activate v2: %s" (Registry.error_to_string e));
      (match Registry.resolve reg "m" with
      | Ok e -> Alcotest.(check int) "flipped to v2" 2 e.Registry.version
      | Error e -> Alcotest.failf "resolve: %s" (Registry.error_to_string e));
      (* Only staged versions may be activated. *)
      match Registry.activate reg ~name:"m" ~version:7 with
      | Error (Registry.No_such_model _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Registry.error_to_string e)
      | Ok () -> Alcotest.fail "activated a version that was never staged")

let test_registry_refresh_prunes_active () =
  with_registry (fun dir ->
      let reg = Result.get_ok (Registry.open_dir dir) in
      ignore (publish_tiny reg ~name:"m" ~version:1 ~seed:11);
      ignore (publish_tiny reg ~name:"m" ~version:2 ~seed:99);
      (match Registry.activate reg ~name:"m" ~version:2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "activate: %s" (Registry.error_to_string e));
      (* Delete the active artifact behind the registry's back; refresh
         must drop the dangling pointer, and resolve falls back to the
         newest surviving version instead of erroring. *)
      Sys.remove (Filename.concat dir "m@v2.twqm");
      (match Registry.refresh reg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "refresh: %s" (Registry.error_to_string e));
      Alcotest.(check (option int)) "dangling pointer pruned" None
        (Registry.active_version reg "m");
      match Registry.resolve reg "m" with
      | Ok e -> Alcotest.(check int) "falls back to v1" 1 e.Registry.version
      | Error e -> Alcotest.failf "resolve: %s" (Registry.error_to_string e))

let test_registry_rejects_bad_names () =
  with_registry (fun dir ->
      let reg = Result.get_ok (Registry.open_dir dir) in
      let model, dims = (the_model, the_dims) in
      match Registry.publish reg ~name:"bad name" ~version:1 ~input_dims:dims model with
      | Error (Registry.Bad_name _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Registry.error_to_string e)
      | Ok _ -> Alcotest.fail "accepted a name with spaces")

(* ------------------------------------------------------- crc32 / metrics *)

let test_crc32_known_vector () =
  Alcotest.(check int) "crc32 check vector" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "checkpoint delegates to Crc32" (Crc32.digest "payload")
    (Checkpoint.crc32 "payload");
  Alcotest.(check int) "digest_sub windows" (Crc32.digest "345")
    (Crc32.digest_sub "123456789" ~pos:2 ~len:3)

let test_histogram_quantiles () =
  let h = Metrics.Histogram.create "t" in
  for i = 1 to 100 do
    Metrics.Histogram.observe h (float_of_int i *. 1e-3)
  done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  let within q lo hi =
    let v = Metrics.Histogram.quantile h q in
    v >= lo && v <= hi
  in
  (* Log buckets are exact to within one bucket width (2^1/4 ≈ 19%). *)
  Alcotest.(check bool) "p50 near 50ms" true (within 0.50 0.045 0.065);
  Alcotest.(check bool) "p99 near 99ms" true (within 0.99 0.09 0.125);
  Alcotest.(check bool) "mean exact" true
    (Float.abs (Metrics.Histogram.mean h -. 0.0505) < 1e-9)

let test_metrics_json_snapshot () =
  let server = Server.for_model the_model ~input_dims:the_dims () in
  (match Server.infer server (rand_input 9) with
  | Server.Output _ -> ()
  | o -> Alcotest.failf "infer: %s" (Server.outcome_label o));
  Server.shutdown server;
  let json = Metrics.to_json (Server.metrics server) in
  List.iter
    (fun needle ->
      let contains =
        let ln = String.length needle and lj = String.length json in
        let rec go i = i + ln <= lj && (String.sub json i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("json contains " ^ needle) true contains)
    [
      "\"counters\""; "\"completed\": 1"; "\"histograms\""; "\"queue_wait\"";
      "\"batch_assembly\""; "\"compute\""; "\"p99"; "\"batch_size\"";
    ]

let () =
  Alcotest.run "serve"
    [
      ( "batching",
        [
          QCheck_alcotest.to_alcotest prop_batching_bit_identical;
          Alcotest.test_case "waves stay bit-identical" `Quick
            test_batch_submit_after_await;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds typed" `Quick
            test_overload_sheds_typed;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "invalid shape + closed" `Quick
            test_invalid_shape_and_closed;
          Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains;
          Alcotest.test_case "loadgen closed loop" `Quick
            test_loadgen_closed_loop;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "fifo + bounds" `Quick test_batcher_fifo_and_bounds;
          Alcotest.test_case "delay window" `Quick test_batcher_delay_window;
          Alcotest.test_case "close/submit race" `Quick
            test_batcher_close_submit_race;
        ] );
      ( "registry",
        [
          Alcotest.test_case "roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "orphan tmp cleanup" `Quick
            test_registry_orphan_tmp_cleanup;
          Alcotest.test_case "corrupt artifact skipped" `Quick
            test_registry_corrupt_artifact_skipped;
          Alcotest.test_case "hot swap" `Quick test_registry_hot_swap;
          Alcotest.test_case "hot swap rebuilds plans" `Quick
            test_hot_swap_rebuilds_plans;
          Alcotest.test_case "activate + resolve" `Quick
            test_registry_activate_resolve;
          Alcotest.test_case "refresh prunes active" `Quick
            test_registry_refresh_prunes_active;
          Alcotest.test_case "bad names rejected" `Quick
            test_registry_rejects_bad_names;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_known_vector;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "metrics json snapshot" `Quick
            test_metrics_json_snapshot;
        ] );
    ]
