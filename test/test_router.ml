(* Router tests (PR 6): ring properties (determinism, key stability under
   shard add/remove, successor ordering), and end-to-end fleet behavior
   with in-process daemons — routed inference bit-identity, failover on a
   killed shard, heartbeat-driven recovery, backpressure propagation and
   drain. *)

module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Wire = Twq_serve.Wire
module Model = Twq_serve.Model
module Registry = Twq_serve.Registry
module Server = Twq_serve.Server
module Router = Twq_serve.Router
module Shard_client = Twq_serve.Shard_client

(* --------------------------------------------------- ring properties *)

let gen_endpoints =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    return (List.init n (fun i -> Printf.sprintf "/tmp/shard-%d.sock" i)))

let gen_key = QCheck.Gen.(string_size ~gen:printable (int_bound 24))

let prop_ring_deterministic =
  QCheck.Test.make
    ~name:"ring: route independent of construction order" ~count:100
    QCheck.(
      make
        Gen.(
          let* eps = gen_endpoints in
          let* keys = list_size (int_range 1 20) gen_key in
          return (eps, keys)))
    (fun (eps, keys) ->
      let r1 = Router.Ring.create eps in
      let r2 = Router.Ring.create (List.rev eps) in
      List.for_all
        (fun k -> Router.Ring.route r1 k = Router.Ring.route r2 k)
        keys)

let prop_ring_stability =
  QCheck.Test.make
    ~name:"ring: removing a shard only moves that shard's keys" ~count:100
    QCheck.(
      make
        Gen.(
          let* eps = gen_endpoints in
          let* keys = list_size (int_range 1 40) gen_key in
          let* victim = int_bound (List.length eps - 1) in
          return (eps, keys, List.nth eps victim)))
    (fun (eps, keys, victim) ->
      let before = Router.Ring.create eps in
      let after = Router.Ring.remove before victim in
      List.for_all
        (fun k ->
          match (Router.Ring.route before k, Router.Ring.route after k) with
          | Some o, Some o' -> o = victim || o = o'
          | Some o, None -> o = victim (* victim was the only shard *)
          | None, _ -> false)
        keys)

let prop_ring_add_inverse =
  QCheck.Test.make ~name:"ring: add(remove(r, e), e) routes like r"
    ~count:100
    QCheck.(
      make
        Gen.(
          let* eps = gen_endpoints in
          let* keys = list_size (int_range 1 30) gen_key in
          let* i = int_bound (List.length eps - 1) in
          return (eps, keys, List.nth eps i)))
    (fun (eps, keys, e) ->
      let r = Router.Ring.create eps in
      let r' = Router.Ring.add (Router.Ring.remove r e) e in
      List.for_all (fun k -> Router.Ring.route r k = Router.Ring.route r' k) keys)

let prop_ring_successors =
  QCheck.Test.make
    ~name:"ring: successors = all distinct endpoints, starting at owner"
    ~count:100
    QCheck.(
      make
        Gen.(
          let* eps = gen_endpoints in
          let* key = gen_key in
          return (eps, key)))
    (fun (eps, key) ->
      let r = Router.Ring.create eps in
      let succ = Router.Ring.successors r key in
      let distinct = List.sort_uniq compare succ in
      List.length succ = List.length (Router.Ring.endpoints r)
      && List.length distinct = List.length succ
      && Router.Ring.route r key = Some (List.hd succ))

let test_ring_distribution () =
  (* 64 vnodes/shard should keep a 4-shard ring roughly balanced: no
     shard owns more than half of 4000 uniform keys. *)
  let eps = List.init 4 (fun i -> Printf.sprintf "s%d" i) in
  let r = Router.Ring.create eps in
  let counts = Hashtbl.create 4 in
  for i = 0 to 3999 do
    match Router.Ring.route r (Printf.sprintf "key-%d" i) with
    | Some e ->
        Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e))
    | None -> Alcotest.fail "empty ring"
  done;
  List.iter
    (fun e ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts e) in
      if n = 0 then Alcotest.failf "shard %s owns no keys" e;
      if n > 2000 then Alcotest.failf "shard %s owns %d/4000 keys" e n)
    eps

let test_ring_empty () =
  let r = Router.Ring.create [] in
  Alcotest.(check (option string)) "route on empty" None (Router.Ring.route r "k");
  Alcotest.(check (list string)) "successors on empty" [] (Router.Ring.successors r "k")

(* --------------------------------------------------- fleet scaffolding *)

let tmp_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Unix.mkdir p 0o755;
  p

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let tmp_sock () =
  let p = Filename.temp_file "twq_rt" ".sock" in
  Sys.remove p;
  p

let make_model ?(res = 8) ?(width_div = 4) ~seed () =
  let rng = Rng.create seed in
  let g = Twq_nn.Passes.fold_bn (Twq_nn.Gmodels.resnet20 ~rng ~width_div ()) in
  let cal = Tensor.rand_gaussian rng [| 2; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
  ( Model.Graph (Twq_nn.Int_graph.quantize g ~calibration:cal ()),
    [| 3; res; res |] )

let the_model, the_dims = make_model ~seed:3 ()

let rand_input seed =
  let rng = Rng.create seed in
  Tensor.rand_gaussian rng the_dims ~mu:0.0 ~sigma:1.0

let reference_row x =
  let c = the_dims.(0) and h = the_dims.(1) and w = the_dims.(2) in
  let x1 = Tensor.zeros [| 1; c; h; w |] in
  Array.blit x.Tensor.data 0 x1.Tensor.data 0 (c * h * w);
  let y = Model.run_batch the_model x1 in
  Array.sub y.Tensor.data 0 (Tensor.dim y 1)

let farr_eq a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

(* A fleet of [n] shard daemons, each with its own registry dir and the
   model already published+active, plus a router in front.  [f] gets the
   router handle, its socket and the daemons. *)
let with_fleet ?(n = 2) ?shard_config ?(heartbeat = 0.05) f =
  let dirs = List.init n (fun _ -> tmp_dir "twq_fleet") in
  let socks = List.init n (fun _ -> tmp_sock ()) in
  let rsock = tmp_sock () in
  let daemons = ref [] in
  let router = ref None in
  Fun.protect
    ~finally:(fun () ->
      (match !router with Some r -> Router.stop r | None -> ());
      List.iter Server.stop_daemon !daemons;
      List.iter rm_rf dirs;
      List.iter
        (fun s -> if Sys.file_exists s then Sys.remove s)
        (rsock :: socks))
    (fun () ->
      List.iter2
        (fun dir sock ->
          let reg = Result.get_ok (Registry.open_dir dir) in
          (match
             Registry.publish reg ~name:"m" ~version:1 ~input_dims:the_dims
               the_model
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "publish: %s" (Registry.error_to_string e));
          match Server.listen ?config:shard_config ~registry:reg ~path:sock () with
          | Ok d -> daemons := !daemons @ [ d ]
          | Error e -> Alcotest.failf "listen %s: %s" sock e)
        dirs socks;
      let config =
        { Router.default_config with Router.heartbeat_interval = heartbeat }
      in
      match Router.start ~config ~shards:socks ~path:rsock () with
      | Error e -> Alcotest.failf "router: %s" e
      | Ok r ->
          router := Some r;
          (* First heartbeat sweep marks everyone healthy. *)
          Thread.delay 0.2;
          f r ~rsock ~socks ~daemons:!daemons)

let connect sock =
  match Shard_client.connect ~timeout:10.0 sock with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Shard_client.error_to_string e)

let counter r name =
  match List.assoc_opt name (Router.counters r) with
  | Some v -> v
  | None -> Alcotest.failf "no counter %s" name

let infer_via c ~key x =
  match Shard_client.infer ~key c x with
  | Ok { outcome; _ } -> outcome
  | Error e -> Alcotest.failf "infer: %s" (Shard_client.error_to_string e)

(* ----------------------------------------------------- fleet behavior *)

let test_routed_bit_identical () =
  with_fleet (fun r ~rsock ~socks:_ ~daemons:_ ->
      let c = connect rsock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          for i = 0 to 11 do
            let x = rand_input (1000 + i) in
            match infer_via c ~key:(Printf.sprintf "key-%d" i) x with
            | Wire.Logits { data; _ } ->
                Alcotest.(check bool)
                  (Printf.sprintf "req %d bit-identical" i)
                  true
                  (farr_eq data (reference_row x))
            | _ -> Alcotest.failf "req %d: not Logits" i
          done;
          Alcotest.(check int) "all routed" 12 (counter r "routed")))

let test_health_view () =
  with_fleet (fun r ~rsock:_ ~socks ~daemons:_ ->
      List.iter2
        (fun s (s', h) ->
          Alcotest.(check string) "order" s s';
          Alcotest.(check string) "healthy" "healthy" (Router.health_label h))
        socks (Router.shard_health r))

let test_failover_on_killed_shard () =
  (* A long heartbeat interval keeps the health sweep out of the way, so
     requests themselves discover the dead shard mid-exchange — the
     transparent-retry path, not the skip-a-marked-shard path. *)
  with_fleet ~heartbeat:30.0 (fun r ~rsock ~socks:_ ~daemons ->
      (* Let the startup sweep finish before the kill — under suite load
         its thread can start late, and a post-kill sweep would mark the
         victim Dead before any request exercises the retry. *)
      Thread.delay 1.0;
      let c = connect rsock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          (* Kill one daemon abruptly; every key must still be served by
             the survivor, transparently. *)
          Server.kill_daemon (List.hd daemons);
          for i = 0 to 19 do
            let x = rand_input (2000 + i) in
            match infer_via c ~key:(Printf.sprintf "key-%d" i) x with
            | Wire.Logits { data; _ } ->
                Alcotest.(check bool)
                  (Printf.sprintf "req %d survives failover" i)
                  true
                  (farr_eq data (reference_row x))
            | Wire.Unavailable m -> Alcotest.failf "req %d unavailable: %s" i m
            | _ -> Alcotest.failf "req %d: not Logits" i
          done;
          (* Half the ring lived on the dead shard, so some requests must
             have failed over; the dead shard must be marked. *)
          Alcotest.(check bool) "failovers recorded" true (counter r "failovers" > 0);
          Alcotest.(check bool) "unhealthy transition" true
            (counter r "unhealthy_transitions" > 0)))

let test_recovery_after_restart () =
  with_fleet (fun r ~rsock ~socks ~daemons ->
      let victim_sock = List.hd socks in
      Server.kill_daemon (List.hd daemons);
      (* One request forces discovery of the dead shard even before the
         heartbeat notices. *)
      let c = connect rsock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          ignore (infer_via c ~key:"probe" (rand_input 1));
          Thread.delay 0.2;
          Alcotest.(check bool) "victim marked dead" true
            (List.exists
               (fun (s, h) -> s = victim_sock && h = Router.Dead)
               (Router.shard_health r));
          (* Restart the shard on the same socket: a fresh registry dir
             with the model re-published, as a crashed-and-restarted
             process would have. *)
          let dir = tmp_dir "twq_fleet_r" in
          Fun.protect
            ~finally:(fun () -> rm_rf dir)
            (fun () ->
              let reg = Result.get_ok (Registry.open_dir dir) in
              (match
                 Registry.publish reg ~name:"m" ~version:1
                   ~input_dims:the_dims the_model
               with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "republish: %s" (Registry.error_to_string e));
              match Server.listen ~registry:reg ~path:victim_sock () with
              | Error e -> Alcotest.failf "relisten: %s" e
              | Ok d2 ->
                  Fun.protect
                    ~finally:(fun () -> Server.stop_daemon d2)
                    (fun () ->
                      (* Heartbeat (50 ms) should resurrect it. *)
                      let deadline = Unix.gettimeofday () +. 5.0 in
                      let rec wait () =
                        let healthy =
                          List.exists
                            (fun (s, h) ->
                              s = victim_sock && h = Router.Healthy)
                            (Router.shard_health r)
                        in
                        if healthy then ()
                        else if Unix.gettimeofday () > deadline then
                          Alcotest.fail "shard never recovered"
                        else (
                          Thread.delay 0.05;
                          wait ())
                      in
                      wait ();
                      Alcotest.(check bool) "recovery counted" true
                        (counter r "recoveries" > 0);
                      (* And it serves routed traffic again. *)
                      let x = rand_input 77 in
                      match infer_via c ~key:"post-recovery" x with
                      | Wire.Logits { data; _ } ->
                          Alcotest.(check bool) "bit-identical" true
                            (farr_eq data (reference_row x))
                      | _ -> Alcotest.fail "post-recovery infer failed"))))

let test_backpressure_propagation () =
  (* A shard with capacity 1 and batch 1 sheds load as Overloaded; the
     router spills to the other shard, so the client still gets logits —
     and the spill is visible in the counters. *)
  let shard_config =
    {
      Server.default_config with
      Server.capacity = 1;
      max_batch = 1;
      max_delay = 0.02;
    }
  in
  with_fleet ~shard_config (fun r ~rsock ~socks:_ ~daemons:_ ->
      let n = 16 in
      let oks = Atomic.make 0 and others = Atomic.make 0 in
      let client i =
        let c = connect rsock in
        Fun.protect
          ~finally:(fun () -> Shard_client.close c)
          (fun () ->
            let x = rand_input (3000 + i) in
            match Shard_client.infer ~key:(Printf.sprintf "k%d" i) c x with
            | Ok { outcome = Wire.Logits _; _ } -> Atomic.incr oks
            | Ok _ | Error _ -> Atomic.incr others)
      in
      let ts = List.init n (fun i -> Thread.create client i) in
      List.iter Thread.join ts;
      Alcotest.(check int) "every request answered" n
        (Atomic.get oks + Atomic.get others);
      Alcotest.(check bool) "most served despite tiny capacity" true
        (Atomic.get oks >= n / 2);
      (* With capacity 1 and 16 concurrent clients, at least one exchange
         must have hit typed backpressure and spilled. *)
      Alcotest.(check bool) "spills recorded" true (counter r "spills" > 0))

let test_drained_fleet_unavailable () =
  with_fleet ~n:1 (fun _r ~rsock ~socks ~daemons:_ ->
      (* Drain the only shard directly, wait for the heartbeat to see it,
         then routed infers must come back typed, not hang. *)
      let sc = connect (List.hd socks) in
      (match Shard_client.drain sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "drain: %s" (Shard_client.error_to_string e));
      Shard_client.close sc;
      Thread.delay 0.3;
      let c = connect rsock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          match infer_via c ~key:"k" (rand_input 5) with
          | Wire.Unavailable _ | Wire.Closed -> ()
          | Wire.Logits _ -> Alcotest.fail "drained shard served traffic"
          | _ -> Alcotest.fail "unexpected outcome"))

let test_router_ping_and_stats () =
  with_fleet (fun _r ~rsock ~socks:_ ~daemons:_ ->
      let c = connect rsock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          (match Shard_client.ping c with
          | Ok (Wire.Pong { healthy; _ }) ->
              Alcotest.(check bool) "router healthy" true healthy
          | Ok _ -> Alcotest.fail "expected Pong"
          | Error e -> Alcotest.failf "ping: %s" (Shard_client.error_to_string e));
          (match Shard_client.stats c with
          | Ok json ->
              Alcotest.(check bool) "stats is json" true
                (String.length json > 0 && json.[0] = '{')
          | Error e -> Alcotest.failf "stats: %s" (Shard_client.error_to_string e));
          (* Publish/activate must be refused by the router: fleet
             publishes go shard-direct. *)
          match Shard_client.activate c ~name:"m" ~version:1 with
          | Error (Shard_client.Remote _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Shard_client.error_to_string e)
          | Ok () -> Alcotest.fail "router accepted activate"))

(* ------------------------------------------------------- fleet publish *)

let test_fleet_publish_v2 () =
  with_fleet (fun _r ~rsock ~socks ~daemons:_ ->
      let model2, dims2 = make_model ~seed:9 () in
      (match
         Registry.publish_fleet ~endpoints:socks ~name:"m" ~version:2
           ~input_dims:dims2 model2
       with
      | Error e -> Alcotest.failf "publish_fleet: %s" (Registry.error_to_string e)
      | Ok o ->
          Alcotest.(check bool) "committed" true o.Registry.committed;
          List.iter
            (fun rep ->
              Alcotest.(check bool)
                (rep.Registry.endpoint ^ " activated")
                true rep.Registry.activated;
              Alcotest.(check (option int))
                (rep.Registry.endpoint ^ " previous")
                (Some 1) rep.Registry.previous)
            o.Registry.reports);
      (* Every shard now reports v2 active, and routed traffic gets v2's
         logits (bit-identical to running model2 directly). *)
      List.iter
        (fun s ->
          let c = connect s in
          (match Shard_client.model_info c ~name:"m" with
          | Ok (active, versions) ->
              Alcotest.(check (option int)) (s ^ " active") (Some 2) active;
              Alcotest.(check (list int)) (s ^ " versions") [ 1; 2 ]
                (List.sort compare versions)
          | Error e ->
              Alcotest.failf "model_info: %s" (Shard_client.error_to_string e));
          Shard_client.close c)
        socks;
      let c = connect rsock in
      Fun.protect
        ~finally:(fun () -> Shard_client.close c)
        (fun () ->
          let x = rand_input 42 in
          let c2 = the_dims.(0) and h = the_dims.(1) and w = the_dims.(2) in
          let x1 = Tensor.zeros [| 1; c2; h; w |] in
          Array.blit x.Tensor.data 0 x1.Tensor.data 0 (c2 * h * w);
          let y = Model.run_batch model2 x1 in
          let expect = Array.sub y.Tensor.data 0 (Tensor.dim y 1) in
          match infer_via c ~key:"v2" x with
          | Wire.Logits { data; _ } ->
              Alcotest.(check bool) "serves v2 bits" true (farr_eq data expect)
          | _ -> Alcotest.fail "not Logits"))

(* A wire-speaking fake shard that stages fine but refuses to activate:
   the fleet publish must abort and roll the healthy shard back. *)
let start_sabot_shard sock =
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX sock);
  Unix.listen listener 8;
  let stop = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ listener ] [] [] 0.1 with
          | [], _, _ -> ()
          | _ ->
              let fd, _ = Unix.accept listener in
              let d = Wire.decoder () in
              let rec serve () =
                match Wire.read_frame fd d with
                | Error _ -> ()
                | Ok (id, msg) ->
                    let reply =
                      match msg with
                      | Wire.Publish _ ->
                          Wire.Publish_reply { ok = true; reason = "" }
                      | Wire.Activate _ ->
                          Wire.Activate_reply
                            { ok = false; reason = "sabotage: refusing flip" }
                      | Wire.Model_info _ ->
                          Wire.Model_info_reply
                            { active = Some 1; versions = [ 1 ] }
                      | Wire.Ping ->
                          Wire.Pong
                            {
                              healthy = true;
                              queue_depth = 0;
                              capacity = 1;
                              draining = false;
                            }
                      | _ -> Wire.Nack "sabot shard"
                    in
                    (try Wire.write_frame fd ~id reply with _ -> ());
                    serve ()
              in
              serve ();
              (try Unix.close fd with Unix.Unix_error _ -> ())
        done)
      ()
  in
  fun () ->
    Atomic.set stop true;
    Thread.join t;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    if Sys.file_exists sock then Sys.remove sock

let test_fleet_publish_rollback () =
  with_fleet ~n:1 (fun _r ~rsock:_ ~socks ~daemons:_ ->
      let real = List.hd socks in
      let sabot = tmp_sock () in
      let stop_sabot = start_sabot_shard sabot in
      Fun.protect ~finally:stop_sabot (fun () ->
          let model2, dims2 = make_model ~seed:9 () in
          (* Real shard first: it stages and activates v2, then the sabot
             shard refuses, so the real shard must be rolled back to 1. *)
          match
            Registry.publish_fleet
              ~endpoints:[ real; sabot ]
              ~name:"m" ~version:2 ~input_dims:dims2 model2
          with
          | Error e ->
              Alcotest.failf "publish_fleet: %s" (Registry.error_to_string e)
          | Ok o ->
              Alcotest.(check bool) "not committed" false o.Registry.committed;
              let real_rep =
                List.find
                  (fun rep -> rep.Registry.endpoint = real)
                  o.Registry.reports
              in
              Alcotest.(check bool) "real shard rolled back" true
                real_rep.Registry.rolled_back;
              let c = connect real in
              Fun.protect
                ~finally:(fun () -> Shard_client.close c)
                (fun () ->
                  match Shard_client.model_info c ~name:"m" with
                  | Ok (active, _) ->
                      Alcotest.(check (option int)) "active back to v1"
                        (Some 1) active
                  | Error e ->
                      Alcotest.failf "model_info: %s"
                        (Shard_client.error_to_string e))))

let test_fleet_publish_dead_endpoint () =
  (* A dead endpoint in the fleet list means staging fails: nothing may
     flip anywhere. *)
  with_fleet ~n:1 (fun _r ~rsock:_ ~socks ~daemons:_ ->
      let dead = tmp_sock () in
      let model2, dims2 = make_model ~seed:9 () in
      match
        Registry.publish_fleet
          ~endpoints:(socks @ [ dead ])
          ~name:"m" ~version:2 ~input_dims:dims2 model2
      with
      | Error e -> Alcotest.failf "publish_fleet: %s" (Registry.error_to_string e)
      | Ok o ->
          Alcotest.(check bool) "not committed" false o.Registry.committed;
          let c = connect (List.hd socks) in
          Fun.protect
            ~finally:(fun () -> Shard_client.close c)
            (fun () ->
              match Shard_client.model_info c ~name:"m" with
              | Ok (active, _) ->
                  Alcotest.(check (option int)) "still v1" (Some 1) active
              | Error e ->
                  Alcotest.failf "model_info: %s"
                    (Shard_client.error_to_string e)))

let () =
  Alcotest.run "router"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest prop_ring_deterministic;
          QCheck_alcotest.to_alcotest prop_ring_stability;
          QCheck_alcotest.to_alcotest prop_ring_add_inverse;
          QCheck_alcotest.to_alcotest prop_ring_successors;
          Alcotest.test_case "distribution" `Quick test_ring_distribution;
          Alcotest.test_case "empty ring" `Quick test_ring_empty;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "routed infer bit-identical" `Quick
            test_routed_bit_identical;
          Alcotest.test_case "health view" `Quick test_health_view;
          Alcotest.test_case "failover on killed shard" `Quick
            test_failover_on_killed_shard;
          Alcotest.test_case "recovery after restart" `Quick
            test_recovery_after_restart;
          Alcotest.test_case "backpressure propagation" `Quick
            test_backpressure_propagation;
          Alcotest.test_case "drained fleet" `Quick
            test_drained_fleet_unavailable;
          Alcotest.test_case "router ping and stats" `Quick
            test_router_ping_and_stats;
        ] );
      ( "publish",
        [
          Alcotest.test_case "fleet publish v2" `Quick test_fleet_publish_v2;
          Alcotest.test_case "rollback on refused flip" `Quick
            test_fleet_publish_rollback;
          Alcotest.test_case "dead endpoint aborts" `Quick
            test_fleet_publish_dead_endpoint;
        ] );
    ]
