(* Bit-identity of the specialized tap-major Winograd kernels against
   the generic Rmat-sandwich reference path, for every variant, random
   shapes, and under TWQ_NUM_DOMAINS=4.

   "Bit-identical" for the float path means every element compares equal
   with [=] (the specialized transforms may only differ from the generic
   matmuls in the sign of a zero, which [=] treats as equal); the integer
   path is exact arithmetic and must match verbatim. *)

module Parallel = Twq_util.Parallel
module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Transform = Twq_winograd.Transform
module Kernels = Twq_winograd.Kernels
module Microkernel = Twq_winograd.Microkernel
module Conv = Twq_winograd.Conv
module Gconv = Twq_winograd.Gconv
module Tapwise = Twq_quant.Tapwise
module Quantizer = Twq_quant.Quantizer

let with_domains n f =
  Parallel.set_num_domains n;
  Fun.protect ~finally:(fun () -> Parallel.clear_num_domains_override ()) f

let float_eq a b =
  Array.length a.Tensor.data = Array.length b.Tensor.data
  && Array.for_all2 (fun x y -> x = y) a.Tensor.data b.Tensor.data

let variant_gen =
  QCheck2.Gen.oneofl [ Transform.F2; Transform.F4; Transform.F6 ]

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let tensor_of_rng rng shape = Tensor.rand_gaussian rng shape ~mu:0.0 ~sigma:1.0

let itensor_of_rng rng shape =
  Itensor.init shape (fun _ -> Twq_util.Rng.int rng 255 - 127)

(* ----------------------- single-tile transform steps vs Rmat sandwich *)

let prop_float_tiles =
  QCheck2.Test.make ~count:100 ~name:"specialized f32 tile = Rmat sandwich"
    QCheck2.Gen.(pair variant_gen seed_gen)
    (fun (v, seed) ->
      let rng = Twq_util.Rng.create seed in
      let t = Transform.t v and m = Transform.m v in
      let k = Kernels.f32_specialized v in
      let tmp = Array.make (t * t) nan in
      let x = tensor_of_rng rng [| t; t |] in
      let got_in = Array.make (t * t) nan in
      k.Kernels.input x.Tensor.data 0 got_in 0 tmp;
      let f = tensor_of_rng rng [| 3; 3 |] in
      let got_w = Array.make (t * t) nan in
      k.Kernels.weight f.Tensor.data 0 got_w 0 tmp;
      let y = tensor_of_rng rng [| t; t |] in
      let got_out = Array.make (m * m) nan in
      k.Kernels.output y.Tensor.data 0 got_out 0 tmp;
      got_in = (Transform.input_tile v x).Tensor.data
      && got_w = (Transform.weight_tile v f).Tensor.data
      && got_out = (Transform.output_tile v y).Tensor.data)

let prop_int_tiles =
  QCheck2.Test.make ~count:100 ~name:"specialized i32 tile = int sandwich"
    QCheck2.Gen.(pair variant_gen seed_gen)
    (fun (v, seed) ->
      let rng = Twq_util.Rng.create seed in
      let t = Transform.t v and m = Transform.m v in
      let k = Kernels.i32_specialized v in
      let tmp = Array.make (t * t) 0 in
      let x = itensor_of_rng rng [| t; t |] in
      let got_in = Array.make (t * t) 0 in
      k.Kernels.input x.Itensor.data 0 got_in 0 tmp;
      let f = itensor_of_rng rng [| 3; 3 |] in
      let got_w = Array.make (t * t) 0 in
      k.Kernels.weight f.Itensor.data 0 got_w 0 tmp;
      let y = itensor_of_rng rng [| t; t |] in
      let got_out = Array.make (m * m) 0 in
      k.Kernels.output y.Itensor.data 0 got_out 0 tmp;
      got_in = (Transform.input_tile_int v x).Itensor.data
      && got_w = (Transform.weight_tile_int_scaled v f).Itensor.data
      && got_out = (Transform.output_tile_int v y).Itensor.data)

(* ------------------------------------- full convs, random NCHW shapes *)

let shape_gen =
  QCheck2.Gen.(
    tup6 variant_gen (int_range 1 2) (int_range 1 4) (int_range 1 4)
      (int_range 3 14) (int_range 0 1))

let prop_conv_f32 =
  QCheck2.Test.make ~count:40 ~name:"tap-major conv2d = tile-major ref"
    QCheck2.Gen.(pair shape_gen seed_gen)
    (fun ((v, n, cin, cout, hw, pad), seed) ->
      let rng = Twq_util.Rng.create seed in
      let h = hw and w = hw + Twq_util.Rng.int rng 4 in
      let x = tensor_of_rng rng [| n; cin; h; w |] in
      let wt = tensor_of_rng rng [| cout; cin; 3; 3 |] in
      let b = tensor_of_rng rng [| cout |] in
      let got = Conv.conv2d ~variant:v ~pad ~x ~w:wt ~b () in
      let want = Conv.conv2d_ref ~variant:v ~pad ~x ~w:wt ~b () in
      float_eq got want)

let prop_conv_int =
  QCheck2.Test.make ~count:40 ~name:"tap-major int conv = tile-major ref"
    QCheck2.Gen.(pair shape_gen seed_gen)
    (fun ((v, n, cin, cout, hw, pad), seed) ->
      let rng = Twq_util.Rng.create seed in
      let h = hw and w = hw + Twq_util.Rng.int rng 4 in
      let x = itensor_of_rng rng [| n; cin; h; w |] in
      let wt = itensor_of_rng rng [| cout; cin; 3; 3 |] in
      let got = Conv.conv2d_int_bit_true ~variant:v ~pad ~x ~w:wt () in
      let want = Conv.conv2d_int_bit_true_ref ~variant:v ~pad ~x ~w:wt () in
      Itensor.equal got want)

let prop_conv_f32_four_domains =
  QCheck2.Test.make ~count:20
    ~name:"tap-major conv2d = ref under TWQ_NUM_DOMAINS=4"
    QCheck2.Gen.(pair shape_gen seed_gen)
    (fun ((v, n, cin, cout, hw, pad), seed) ->
      let rng = Twq_util.Rng.create seed in
      let h = hw and w = hw + Twq_util.Rng.int rng 4 in
      let x = tensor_of_rng rng [| n; cin; h; w |] in
      let wt = tensor_of_rng rng [| cout; cin; 3; 3 |] in
      let got = with_domains 4 (fun () -> Conv.conv2d ~variant:v ~pad ~x ~w:wt ()) in
      let want = Conv.conv2d_ref ~variant:v ~pad ~x ~w:wt () in
      float_eq got want)

let prop_conv_int_four_domains =
  QCheck2.Test.make ~count:20
    ~name:"tap-major int conv = ref under TWQ_NUM_DOMAINS=4"
    QCheck2.Gen.(pair shape_gen seed_gen)
    (fun ((v, n, cin, cout, hw, pad), seed) ->
      let rng = Twq_util.Rng.create seed in
      let h = hw and w = hw + Twq_util.Rng.int rng 4 in
      let x = itensor_of_rng rng [| n; cin; h; w |] in
      let wt = itensor_of_rng rng [| cout; cin; 3; 3 |] in
      let got =
        with_domains 4 (fun () -> Conv.conv2d_int_bit_true ~variant:v ~pad ~x ~w:wt ())
      in
      let want = Conv.conv2d_int_bit_true_ref ~variant:v ~pad ~x ~w:wt () in
      Itensor.equal got want)

(* -------------------------------------- generated F(m,r) via Gconv *)

let prop_gconv =
  QCheck2.Test.make ~count:20 ~name:"gconv compiled plans = matmul sandwich"
    QCheck2.Gen.(tup4 (int_range 2 4) (oneofl [ 3; 5 ]) (int_range 1 4) seed_gen)
    (fun (m, r, nd, seed) ->
      let rng = Twq_util.Rng.create seed in
      let gc = Gconv.create ~m ~r () in
      let cin = 1 + Twq_util.Rng.int rng 3
      and cout = 1 + Twq_util.Rng.int rng 3 in
      let h = r + Twq_util.Rng.int rng 8 and w = r + Twq_util.Rng.int rng 8 in
      let pad = Twq_util.Rng.int rng ((r / 2) + 1) in
      let x = tensor_of_rng rng [| 1; cin; h; w |] in
      let wt = tensor_of_rng rng [| cout; cin; r; r |] in
      let got = with_domains nd (fun () -> Gconv.conv2d gc ~pad ~x ~w:wt ()) in
      let want = Gconv.conv2d_ref gc ~pad ~x ~w:wt () in
      float_eq got want)

(* ------------------------------------ quantized tap-wise forward_int *)

let prop_tapwise =
  QCheck2.Test.make ~count:15 ~name:"tap-major forward_int = tile-major ref"
    QCheck2.Gen.(
      tup4 variant_gen
        (oneofl [ Tapwise.Single_scale; Tapwise.Tap_wise; Tapwise.Channel_tap_wise ])
        (int_range 1 4) seed_gen)
    (fun (v, gran, nd, seed) ->
      let rng = Twq_util.Rng.create seed in
      let cin = 1 + Twq_util.Rng.int rng 3
      and cout = 1 + Twq_util.Rng.int rng 3 in
      let h = 6 + Twq_util.Rng.int rng 8 and wd = 6 + Twq_util.Rng.int rng 8 in
      let w = Tensor.rand_gaussian rng [| cout; cin; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
      let bias = Tensor.rand_gaussian rng [| cout |] ~mu:0.0 ~sigma:0.1 in
      let samples = [ tensor_of_rng rng [| 1; cin; h; wd |] ] in
      let config = { (Tapwise.default_config v) with Tapwise.granularity = gran } in
      let l = Tapwise.calibrate ~config ~w ~bias ~sample_inputs:samples ~pad:1 () in
      let x = tensor_of_rng rng [| 1; cin; h; wd |] in
      let xi =
        Quantizer.quantize_tensor ~bits:config.Tapwise.act_bits ~scale:l.Tapwise.s_x x
      in
      let got = with_domains nd (fun () -> Tapwise.forward_int l xi) in
      let want = Tapwise.forward_int_ref l xi in
      Itensor.equal got want)

(* --------------- microkernel GEMM drivers vs naive [_ref] oracles *)

let with_mk_config ~mr ~nr ~kc f =
  Microkernel.set_config ~mr ~nr ~kc ();
  Fun.protect ~finally:Microkernel.reset_config f

let scale2_of v =
  let s = Transform.bt_scale v * Transform.g_scale v * Transform.at_scale v in
  s * s

(* Edge shapes for the register-tiled path: Cin/Cout deliberately
   straddle register-block multiples (1..9), images go down to a single
   tile (hw = 3), and the pool runs with 1 or 4 domains. *)
let micro_shape_gen =
  QCheck2.Gen.(
    tup6 variant_gen (int_range 1 9) (int_range 1 9) (int_range 3 10)
      (oneofl [ 1; 4 ]) seed_gen)

let prop_micro_f32_edge =
  QCheck2.Test.make ~count:60
    ~name:"microkernel conv2d_f32 = naive ref (edge shapes)" micro_shape_gen
    (fun (v, cin, cout, hw, nd, seed) ->
      let rng = Twq_util.Rng.create seed in
      let pad = Twq_util.Rng.int rng 2 in
      let k = Kernels.f32_specialized v in
      let x =
        tensor_of_rng rng [| 1; cin; hw; hw + Twq_util.Rng.int rng 3 |]
      in
      let wt = tensor_of_rng rng [| cout; cin; 3; 3 |] in
      let got = with_domains nd (fun () -> Kernels.conv2d_f32 k ~pad ~x ~w:wt) in
      let want = Kernels.conv2d_f32_ref k ~pad ~x ~w:wt in
      float_eq got want)

let prop_micro_int_edge =
  QCheck2.Test.make ~count:60
    ~name:"microkernel conv2d_i32_exact = naive ref (edge shapes)"
    micro_shape_gen
    (fun (v, cin, cout, hw, nd, seed) ->
      let rng = Twq_util.Rng.create seed in
      let pad = Twq_util.Rng.int rng 2 in
      let k = Kernels.i32_specialized v in
      let x =
        itensor_of_rng rng [| 1; cin; hw; hw + Twq_util.Rng.int rng 3 |]
      in
      let wt = itensor_of_rng rng [| cout; cin; 3; 3 |] in
      let scale2 = scale2_of v in
      let got =
        with_domains nd (fun () ->
            Kernels.conv2d_i32_exact k ~scale2 ~pad ~x ~w:wt)
      in
      let want = Kernels.conv2d_i32_exact_ref k ~scale2 ~pad ~x ~w:wt in
      Itensor.equal got want)

(* Every register-block configuration — the specialized MRx4 and MRx8
   kernels, the generic fallback, and KC smaller than Cin (17 channels
   over kc = 8 forces three k-panels per GEMM, crossing the accumulator
   load/store seam twice). *)
let mk_config_sweep =
  [ (4, 4, 256); (3, 4, 8); (2, 4, 16); (1, 4, 256); (4, 2, 8); (5, 5, 32);
    (1, 1, 8); (4, 8, 256); (3, 8, 8); (2, 8, 16); (1, 8, 256) ]

let test_micro_config_sweep_int () =
  let rng = Twq_util.Rng.create 99 in
  let x = itensor_of_rng rng [| 1; 17; 8; 9 |] in
  let wt = itensor_of_rng rng [| 7; 17; 3; 3 |] in
  let k = Kernels.i32_specialized Transform.F4 in
  let scale2 = scale2_of Transform.F4 in
  let want = Kernels.conv2d_i32_exact_ref k ~scale2 ~pad:1 ~x ~w:wt in
  List.iter
    (fun (mr, nr, kc) ->
      with_mk_config ~mr ~nr ~kc (fun () ->
          let got = Kernels.conv2d_i32_exact k ~scale2 ~pad:1 ~x ~w:wt in
          Alcotest.(check bool)
            (Printf.sprintf "mr=%d nr=%d kc=%d" mr nr kc)
            true (Itensor.equal got want)))
    mk_config_sweep

let test_micro_config_sweep_f32 () =
  let rng = Twq_util.Rng.create 100 in
  let x = tensor_of_rng rng [| 1; 17; 8; 9 |] in
  let wt = tensor_of_rng rng [| 7; 17; 3; 3 |] in
  let k = Kernels.f32_specialized Transform.F4 in
  let want = Kernels.conv2d_f32_ref k ~pad:1 ~x ~w:wt in
  List.iter
    (fun (mr, nr, kc) ->
      with_mk_config ~mr ~nr ~kc (fun () ->
          let got = Kernels.conv2d_f32 k ~pad:1 ~x ~w:wt in
          Alcotest.(check bool)
            (Printf.sprintf "mr=%d nr=%d kc=%d" mr nr kc)
            true (float_eq got want)))
    mk_config_sweep

(* [Tapwise.pack] captures the packing geometry at pack time; the packed
   forward must agree with the tile-major oracle under every block
   configuration (including packing under one config — the oracle does
   not depend on it). *)
let test_micro_config_sweep_tapwise () =
  let rng = Twq_util.Rng.create 101 in
  let w = Tensor.rand_gaussian rng [| 6; 5; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
  let samples = [ tensor_of_rng rng [| 1; 5; 10; 10 |] ] in
  let config = Tapwise.default_config Transform.F4 in
  let l = Tapwise.calibrate ~config ~w ~sample_inputs:samples ~pad:1 () in
  let x = tensor_of_rng rng [| 1; 5; 10; 10 |] in
  let xi =
    Quantizer.quantize_tensor ~bits:config.Tapwise.act_bits ~scale:l.Tapwise.s_x
      x
  in
  let want = Tapwise.forward_int_ref l xi in
  List.iter
    (fun (mr, nr, kc) ->
      with_mk_config ~mr ~nr ~kc (fun () ->
          let got = Tapwise.forward_int l xi in
          Alcotest.(check bool)
            (Printf.sprintf "mr=%d nr=%d kc=%d" mr nr kc)
            true (Itensor.equal got want)))
    mk_config_sweep

(* --------------------- compressed-panel sparse GEMM vs dense driver *)

module Pruning = Twq_quant.Pruning

let with_sparse_threshold t f =
  Microkernel.set_sparse_threshold t;
  Fun.protect ~finally:Microkernel.reset_config f

(* Driver-level bit-identity: a random NR-packed B panel at a random
   density, compressed, must accumulate exactly what the dense driver
   accumulates — including into a pre-seeded C with a row stride wider
   than the panel. *)
let sparse_gemm_gen =
  QCheck2.Gen.(
    tup6 (int_range 1 5)
      (oneofl [ 1; 2; 4; 8 ])
      (int_range 1 40) (int_range 1 24)
      (oneofl [ 0.0; 0.1; 0.3; 0.5; 0.9 ])
      seed_gen)

let prop_sparse_gemm =
  QCheck2.Test.make ~count:100
    ~name:"gemm_i32_sparse = gemm_i32 on the compressed panel"
    sparse_gemm_gen
    (fun (mr, nr, k, cols, density, seed) ->
      let rng = Twq_util.Rng.create seed in
      let rows = 1 + Twq_util.Rng.int rng 40 in
      let kc = 8 + Twq_util.Rng.int rng 64 in
      let rows_p = Microkernel.round_up rows mr in
      let cols_p = Microkernel.round_up cols nr in
      let vp =
        Array.init (rows_p * k) (fun _ -> Twq_util.Rng.int rng 255 - 127)
      in
      let up = Array.make (cols_p * k) 0 in
      for j = 0 to cols - 1 do
        let jb = j / nr and jr = j mod nr in
        for kk = 0 to k - 1 do
          if Twq_util.Rng.float rng 1.0 < density then
            up.((((jb * k) + kk) * nr) + jr) <-
              (let m = 1 + Twq_util.Rng.int rng 126 in
               if Twq_util.Rng.bool rng then m else -m)
        done
      done;
      let cstride = cols_p + 3 in
      let c0 =
        Array.init (rows_p * cstride) (fun _ -> Twq_util.Rng.int rng 1000 - 500)
      in
      let cd = Array.copy c0 and cs = Array.copy c0 in
      Microkernel.gemm_i32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~vp ~vo:0 ~up ~uo:0
        ~c:cd ~co:0 ~cstride;
      let sp = Microkernel.compress_panel ~nr ~k ~cols:cols_p up ~uo:0 in
      Microkernel.gemm_i32_sparse ~mr ~rows_p ~sp ~vp ~vo:0 ~c:cs ~co:0
        ~cstride;
      cd = cs)

(* Layer-level bit-identity: prune a calibrated layer in the Winograd
   domain, then the sparse-selected forward (any threshold, 1 or 4
   domains) must equal the all-dense forward of the same pruned
   weights. *)
let prop_tapwise_sparse =
  QCheck2.Test.make ~count:25
    ~name:"sparse tapwise forward = dense forward of pruned weights"
    QCheck2.Gen.(
      tup5 variant_gen
        (oneofl [ 0.1; 0.3; 0.5 ])
        (oneofl [ 0.25; 0.5; 1.0 ])
        (oneofl [ 1; 4 ])
        seed_gen)
    (fun (v, density, thresh, nd, seed) ->
      let rng = Twq_util.Rng.create seed in
      let cin = 1 + Twq_util.Rng.int rng 5
      and cout = 1 + Twq_util.Rng.int rng 6 in
      let h = 6 + Twq_util.Rng.int rng 6 and wd = 6 + Twq_util.Rng.int rng 6 in
      let w = Tensor.rand_gaussian rng [| cout; cin; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
      let samples = [ tensor_of_rng rng [| 1; cin; h; wd |] ] in
      let config = Tapwise.default_config v in
      let l = Tapwise.calibrate ~config ~w ~sample_inputs:samples ~pad:1 () in
      let l = Pruning.prune_layer l ~density in
      let x = tensor_of_rng rng [| 1; cin; h; wd |] in
      let xi =
        Quantizer.quantize_tensor ~bits:config.Tapwise.act_bits
          ~scale:l.Tapwise.s_x x
      in
      let dense =
        with_sparse_threshold 0.0 (fun () -> Tapwise.forward_int l xi)
      in
      let got =
        with_sparse_threshold thresh (fun () ->
            with_domains nd (fun () -> Tapwise.forward_int l xi))
      in
      Itensor.equal got dense)

(* The selection itself: after pruning to a low density, packing under
   a permissive threshold must route taps through the compressed path,
   and the measured densities must average out near the request. *)
let test_sparse_taps_selected () =
  let rng = Twq_util.Rng.create 47 in
  let w = Tensor.rand_gaussian rng [| 8; 8; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
  let samples = [ tensor_of_rng rng [| 1; 8; 12; 12 |] ] in
  let config = Tapwise.default_config Transform.F4 in
  let l = Tapwise.calibrate ~config ~w ~sample_inputs:samples ~pad:1 () in
  let l = Pruning.prune_layer l ~density:0.3 in
  with_sparse_threshold 0.5 (fun () ->
      let p = Tapwise.pack l in
      let d = Tapwise.tap_densities p in
      let mean = Array.fold_left ( +. ) 0.0 d /. float_of_int (Array.length d) in
      Alcotest.(check bool) "sparse taps engaged" true
        (Tapwise.sparse_tap_count p > 0);
      Alcotest.(check bool) "mean density near request" true
        (Float.abs (mean -. 0.3) < 0.05));
  with_sparse_threshold 0.0 (fun () ->
      let p = Tapwise.pack l in
      Alcotest.(check int) "threshold 0 disables sparse" 0
        (Tapwise.sparse_tap_count p))

let test_sparse_threshold_invalid () =
  Alcotest.check_raises "above 1"
    (Invalid_argument
       "Microkernel.set_sparse_threshold: 1.5 must be in [0, 1]") (fun () ->
      Microkernel.set_sparse_threshold 1.5);
  Alcotest.check_raises "negative"
    (Invalid_argument
       "Microkernel.set_sparse_threshold: -0.1 must be in [0, 1]") (fun () ->
      Microkernel.set_sparse_threshold (-0.1))

(* -------------------------------------------- scratch arena behaviour *)

let test_scratch_reuse () =
  let a = Parallel.Scratch.create_float () in
  let b1 = Parallel.Scratch.borrow a 16 in
  Alcotest.(check bool) "sized up" true (Array.length b1 >= 16);
  b1.(0) <- 42.0;
  let b2 = Parallel.Scratch.borrow a 8 in
  Alcotest.(check bool) "same buffer on re-borrow" true (b1 == b2);
  let b3 = Parallel.Scratch.borrow a 64 in
  Alcotest.(check bool) "grows" true (Array.length b3 >= 64)

let test_scratch_per_domain () =
  (* Each participating domain must see its own buffer: write a marker
     from every chunk and check no cross-domain interference occurred. *)
  let a = Parallel.Scratch.create_int () in
  let ok = Array.make 64 false in
  with_domains 4 (fun () ->
      Parallel.parallel_for ~chunk:1 ~lo:0 ~hi:64 (fun i ->
          let buf = Parallel.Scratch.borrow a 4 in
          buf.(0) <- i;
          (* If another domain shared this buffer concurrently, the
             read-back would race; DLS guarantees it cannot. *)
          ok.(i) <- buf.(0) = i));
  Alcotest.(check bool) "per-domain buffers" true (Array.for_all Fun.id ok)

(* ----------------------------------------------------------- registry *)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_float_tiles;
        prop_int_tiles;
        prop_conv_f32;
        prop_conv_int;
        prop_conv_f32_four_domains;
        prop_conv_int_four_domains;
        prop_gconv;
        prop_tapwise;
        prop_micro_f32_edge;
        prop_micro_int_edge;
        prop_sparse_gemm;
        prop_tapwise_sparse;
      ]
  in
  Alcotest.run "kernels"
    [
      ("qcheck", qsuite);
      ( "microkernel",
        [
          Alcotest.test_case "int config sweep = ref" `Quick
            test_micro_config_sweep_int;
          Alcotest.test_case "f32 config sweep = ref" `Quick
            test_micro_config_sweep_f32;
          Alcotest.test_case "tapwise config sweep = ref" `Quick
            test_micro_config_sweep_tapwise;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "pack selects sparse taps" `Quick
            test_sparse_taps_selected;
          Alcotest.test_case "threshold bounds" `Quick
            test_sparse_threshold_invalid;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "borrow reuses and grows" `Quick test_scratch_reuse;
          Alcotest.test_case "per-domain isolation" `Quick test_scratch_per_domain;
        ] );
    ]
