(* Bit-exactness of the RNS Winograd backend against the direct integer
   convolution (and the packed exact-int oracle), the typed range-proof
   rejections, basis suggestion, and the runtime range contract. *)

module Parallel = Twq_util.Parallel
module Rng = Twq_util.Rng
module Itensor = Twq_tensor.Itensor
module Transform = Twq_winograd.Transform
module Kernels = Twq_winograd.Kernels
module Conv = Twq_winograd.Conv
module Rns = Twq_winograd.Rns

let itensor = Alcotest.testable Itensor.pp Itensor.equal
let qt = QCheck_alcotest.to_alcotest

let with_domains n f =
  Parallel.set_num_domains n;
  Fun.protect ~finally:(fun () -> Parallel.clear_num_domains_override ()) f

(* Direct integer convolution (correlation) for arbitrary kernel size. *)
let direct_conv_int ~r ~pad x w =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
  let cout = Itensor.dim w 0 in
  let ho = h + (2 * pad) - r + 1 and wo = wd + (2 * pad) - r + 1 in
  Itensor.init [| n; cout; ho; wo |] (fun idx ->
      let acc = ref 0 in
      for ci = 0 to cin - 1 do
        for ki = 0 to r - 1 do
          for kj = 0 to r - 1 do
            let hi = idx.(2) + ki - pad and wi = idx.(3) + kj - pad in
            if hi >= 0 && hi < h && wi >= 0 && wi < wd then
              acc :=
                !acc
                + Itensor.get4 x idx.(0) ci hi wi
                  * Itensor.get4 w idx.(1) ci ki kj
          done
        done
      done;
      !acc)

let itensor_of_rng rng shape lim =
  Itensor.init shape (fun _ -> Rng.int rng ((2 * lim) + 1) - lim)

(* --------------------------------------------------- F(6,3) bit-exact *)

(* Random shapes deliberately straddle the GEMM register blocks
   (cin/cout in 1..5 vs MR=NR=4), single-tile images (h,w < 8 at m=6),
   both pad settings, and 1 vs 4 domains. *)
let prop_f6_bit_exact =
  QCheck.Test.make ~count:40
    ~name:"F(6,3) RNS == direct integer conv (random shapes, domains)"
    QCheck.(
      quad (int_range 0 100000) (int_range 3 12) (int_range 3 12)
        (int_range 0 1))
    (fun (seed, h, w, pad) ->
      let rng = Rng.create seed in
      let cin = 1 + Rng.int rng 5 and cout = 1 + Rng.int rng 5 in
      let nd = if Rng.int rng 2 = 0 then 1 else 4 in
      let x = itensor_of_rng rng [| 1; cin; h; w |] 4 in
      let wt = itensor_of_rng rng [| cout; cin; 3; 3 |] 4 in
      let plan =
        Rns.plan_exn ~m:6 ~r:3 ~basis:[ 8191; 8179; 8171 ] ~cin ~xmax:4
          ~wmax:4 ()
      in
      with_domains nd (fun () ->
          Itensor.equal
            (direct_conv_int ~r:3 ~pad x wt)
            (Rns.conv2d plan ~pad ~x ~w:wt ())))

(* Same plan, checked against the packed exact-int tap-major oracle. *)
let test_f6_matches_i32_exact_ref () =
  let rng = Rng.create 42 in
  let cin = 3 and cout = 5 in
  let x = itensor_of_rng rng [| 2; cin; 13; 11 |] 4 in
  let w = itensor_of_rng rng [| cout; cin; 3; 3 |] 4 in
  let plan =
    Rns.plan_exn ~m:6 ~r:3 ~basis:[ 8191; 8179; 8171 ] ~cin ~xmax:4 ~wmax:4 ()
  in
  let k6 = Kernels.i32_specialized Transform.F6 in
  let s =
    Transform.bt_scale Transform.F6
    * Transform.g_scale Transform.F6
    * Transform.at_scale Transform.F6
  in
  let oracle = Kernels.conv2d_i32_exact_ref k6 ~scale2:(s * s) ~pad:1 ~x ~w in
  Alcotest.check itensor "F6 rns == i32_exact_ref" oracle
    (Rns.conv2d plan ~pad:1 ~x ~w ())

(* ------------------------------------------- other tiles / other bases *)

(* F(2,3) carries full int8 ranges on just two 13-bit moduli. *)
let prop_f2_full_int8_two_moduli =
  QCheck.Test.make ~count:30 ~name:"F(2,3) RNS, 2-modulus basis, full int8"
    QCheck.(pair (int_range 0 100000) (int_range 0 1))
    (fun (seed, pad) ->
      let rng = Rng.create seed in
      let h = 3 + Rng.int rng 8 and w = 3 + Rng.int rng 8 in
      let cin = 1 + Rng.int rng 4 and cout = 1 + Rng.int rng 4 in
      let x = itensor_of_rng rng [| 1; cin; h; w |] 128 in
      let wt = itensor_of_rng rng [| cout; cin; 3; 3 |] 128 in
      let plan = Rns.plan_exn ~m:2 ~r:3 ~basis:[ 8191; 8179 ] ~cin () in
      Itensor.equal
        (direct_conv_int ~r:3 ~pad x wt)
        (Rns.conv2d plan ~pad ~x ~w:wt ()))

(* F(4,3) on the paper's 8-bit prime basis (narrow value ranges). *)
let test_f4_paper_basis () =
  let rng = Rng.create 7 in
  let cin = 3 and cout = 4 in
  let x = itensor_of_rng rng [| 1; cin; 10; 10 |] 5 in
  let w = itensor_of_rng rng [| cout; cin; 3; 3 |] 5 in
  let plan =
    Rns.plan_exn ~m:4 ~r:3 ~basis:Rns.default_basis ~cin ~xmax:5 ~wmax:5 ()
  in
  Alcotest.check itensor "F4 rns on 251/241/239"
    (direct_conv_int ~r:3 ~pad:1 x w)
    (Rns.conv2d plan ~pad:1 ~x ~w ())

(* ------------------------------------------------------ typed rejection *)

let test_insufficient_range () =
  match Rns.plan ~m:6 ~r:3 ~basis:Rns.default_basis ~cin:8 () with
  | Ok _ -> Alcotest.fail "F(6,3) int8 must reject the 8-bit paper basis"
  | Error (Rns.Insufficient_range { bound; required; product }) ->
      Alcotest.(check bool) "bound positive" true (bound > 0);
      Alcotest.(check int) "required = 2*bound+1" ((2 * bound) + 1) required;
      Alcotest.(check int) "product is 251*241*239" (251 * 241 * 239) product;
      Alcotest.(check bool) "product too small" true (product < required)
  | Error e -> Alcotest.fail ("unexpected error: " ^ Rns.error_to_string e)

let test_bad_basis () =
  (match Rns.plan ~m:4 ~r:3 ~basis:[ 251; 502 ] ~cin:1 ~xmax:1 ~wmax:1 () with
  | Error (Rns.Bad_basis _) -> ()
  | _ -> Alcotest.fail "non-coprime basis must be rejected as Bad_basis");
  (match Rns.plan ~m:4 ~r:3 ~basis:[] ~cin:1 ~xmax:1 ~wmax:1 () with
  | Error (Rns.Bad_basis _) -> ()
  | _ -> Alcotest.fail "empty basis must be rejected as Bad_basis");
  match Rns.plan ~m:4 ~r:3 ~basis:[ 9001; 7 ] ~cin:1 ~xmax:1 ~wmax:1 () with
  | Error (Rns.Bad_basis _) -> ()
  | _ -> Alcotest.fail "out-of-range modulus must be rejected as Bad_basis"

let test_out_of_range_runtime () =
  let plan =
    Rns.plan_exn ~m:6 ~r:3 ~basis:[ 8191; 8179; 8171 ] ~cin:2 ~xmax:4 ~wmax:4
      ()
  in
  let x = Itensor.init [| 1; 2; 8; 8 |] (fun _ -> 100) in
  let w = Itensor.init [| 1; 2; 3; 3 |] (fun _ -> 1) in
  (match Rns.conv2d plan ~pad:1 ~x ~w () with
  | exception Rns.Rns_error (Rns.Out_of_range _) -> ()
  | _ -> Alcotest.fail "x value outside |x| <= 4 must raise Out_of_range");
  let x3 = Itensor.init [| 1; 3; 8; 8 |] (fun _ -> 1) in
  let w3 = Itensor.init [| 1; 3; 3; 3 |] (fun _ -> 1) in
  match Rns.conv2d plan ~pad:1 ~x:x3 ~w:w3 () with
  | exception Rns.Rns_error (Rns.Out_of_range _) -> ()
  | _ -> Alcotest.fail "cin above the proven bound must raise Out_of_range"

(* ------------------------------------------------------ basis suggestion *)

let test_suggest_basis () =
  (match Rns.suggest_basis ~m:4 ~r:3 ~cin:3 ~xmax:5 ~wmax:5 () with
  | Ok b ->
      Alcotest.(check (list int)) "F4 narrow -> paper basis" Rns.default_basis b
  | Error e -> Alcotest.fail (Rns.error_to_string e));
  match Rns.suggest_basis ~m:6 ~r:3 ~cin:64 () with
  | Error e -> Alcotest.fail (Rns.error_to_string e)
  | Ok b ->
      Alcotest.(check bool) "all 8-bit" true (List.for_all (fun p -> p < 256) b);
      let plan = Rns.plan_exn ~m:6 ~r:3 ~basis:b ~cin:64 () in
      Alcotest.(check bool)
        "product passes the proof" true
        (Rns.product plan >= Rns.required plan)

let test_describe () =
  let plan = Rns.plan_exn ~m:6 ~r:3 ~basis:[ 8191; 8179; 8171 ] ~cin:4 ~xmax:4 ~wmax:4 () in
  let s = Rns.describe plan in
  Alcotest.(check int) "tile" 8 (Rns.tile plan);
  Alcotest.(check int) "m" 6 (Rns.m plan);
  Alcotest.(check int) "r" 3 (Rns.r plan);
  Alcotest.(check int) "moduli" 3 (Array.length (Rns.basis plan));
  (* F(6,3) lavin lift scales: bt 4, g 90, at 32 -> denom 11520^2. *)
  Alcotest.(check int) "denom" (11520 * 11520) (Rns.denom plan);
  Alcotest.(check bool) "nonempty" true (String.length s > 40)

(* ------------------------------------------------- wrapper and epilogue *)

let test_conv2d_int_rns_wrapper () =
  let rng = Rng.create 11 in
  let x = itensor_of_rng rng [| 1; 4; 12; 12 |] 4 in
  let w = itensor_of_rng rng [| 3; 4; 3; 3 |] 4 in
  Alcotest.check itensor "Conv.conv2d_int_rns auto-basis"
    (direct_conv_int ~r:3 ~pad:1 x w)
    (Conv.conv2d_int_rns ~m:6 ~r:3 ~pad:1 ~x ~w ())

let test_relu_epilogue () =
  let rng = Rng.create 13 in
  let x = itensor_of_rng rng [| 1; 2; 9; 9 |] 4 in
  let w = itensor_of_rng rng [| 2; 2; 3; 3 |] 4 in
  let plan =
    Rns.plan_exn ~m:6 ~r:3 ~basis:[ 8191; 8179; 8171 ] ~cin:2 ~xmax:4 ~wmax:4
      ()
  in
  let direct = direct_conv_int ~r:3 ~pad:1 x w in
  let expect = Itensor.init direct.Itensor.shape (fun idx ->
      max 0 (Itensor.get4 direct idx.(0) idx.(1) idx.(2) idx.(3)))
  in
  let got =
    Rns.conv2d plan
      ~epilogue:{ Kernels.relu = true; add = None }
      ~pad:1 ~x ~w ()
  in
  Alcotest.check itensor "fused relu" expect got

let () =
  Alcotest.run "rns"
    [
      ( "bit-exact",
        [
          qt prop_f6_bit_exact;
          Alcotest.test_case "F6 vs i32_exact_ref" `Quick
            test_f6_matches_i32_exact_ref;
          qt prop_f2_full_int8_two_moduli;
          Alcotest.test_case "F4 paper basis" `Quick test_f4_paper_basis;
        ] );
      ( "range-proof",
        [
          Alcotest.test_case "insufficient range" `Quick
            test_insufficient_range;
          Alcotest.test_case "bad basis" `Quick test_bad_basis;
          Alcotest.test_case "runtime out-of-range" `Quick
            test_out_of_range_runtime;
          Alcotest.test_case "suggest basis" `Quick test_suggest_basis;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "integration",
        [
          Alcotest.test_case "Conv.conv2d_int_rns" `Quick
            test_conv2d_int_rns_wrapper;
          Alcotest.test_case "relu epilogue" `Quick test_relu_epilogue;
        ] );
    ]
