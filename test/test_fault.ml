(* Chaos & resilience tests (PR 8): fault-spec parsing (round-trip
   property), seeded replay determinism, the circuit-breaker state
   machine driven with an explicit clock, retry-jitter bounds, monotonic
   clock sanity, and end-to-end chaos against an in-process fleet —
   every scheduled request ends in exactly one typed outcome, with zero
   lost acks and zero deadline-budget violations while faults fire. *)

module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Mclock = Twq_util.Mclock
module Wire = Twq_serve.Wire
module Model = Twq_serve.Model
module Registry = Twq_serve.Registry
module Server = Twq_serve.Server
module Router = Twq_serve.Router
module Shard_client = Twq_serve.Shard_client
module Fault = Twq_serve.Fault
module Retry = Twq_serve.Retry
module Loadgen = Twq_serve.Loadgen

(* ------------------------------------------------------- spec parsing *)

let rule_pp fmt (r : Fault.rule) =
  Format.fprintf fmt "%s[%s]:%s=%g"
    (Fault.site_name r.Fault.site)
    (Option.value ~default:"" r.Fault.peer)
    (Fault.kind_name r.Fault.kind)
    r.Fault.prob

let rule_eq (a : Fault.rule) (b : Fault.rule) = a = b
let rule_t = Alcotest.testable rule_pp rule_eq

let parse_ok spec =
  match Fault.parse spec with
  | Ok rules -> rules
  | Error m -> Alcotest.failf "parse %S: %s" spec m

let test_parse_example () =
  let rules = parse_ok "connect:refuse=0.1, reply[shard2]:stall=1.0@300" in
  Alcotest.(check (list rule_t))
    "example spec"
    [
      { Fault.site = Fault.Connect; peer = None; kind = Fault.Refuse; prob = 0.1 };
      {
        Fault.site = Fault.Reply;
        peer = Some "shard2";
        kind = Fault.Stall 0.3;
        prob = 1.0;
      };
    ]
    rules

let test_parse_default_duration () =
  match parse_ok "send:delay=0.5" with
  | [ { Fault.kind = Fault.Delay d; _ } ] ->
      Alcotest.(check (float 1e-9)) "default 100 ms" 0.1 d
  | _ -> Alcotest.fail "expected one delay rule"

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should not parse" spec)
    [
      "";
      "connect";
      "connect:refuse";
      "teleport:refuse=0.5";
      "connect:vanish=0.5";
      "connect:refuse=1.5";
      "connect:refuse=-0.1";
      "connect:refuse=x";
      "connect:stall=0.5@minus";
      "connect:stall=0.5@-3";
    ]

(* Round-trip: rendering a rule back to the spec grammar and re-parsing
   it must reproduce the rule exactly. Probabilities are drawn on a
   1/20 lattice and durations in whole milliseconds so the %g rendering
   is lossless. *)
let render_rule (r : Fault.rule) =
  let peer = match r.Fault.peer with None -> "" | Some p -> "[" ^ p ^ "]" in
  let ms k = Printf.sprintf "@%g" (k *. 1000.0) in
  let kind, dur =
    match r.Fault.kind with
    | Fault.Refuse -> ("refuse", "")
    | Fault.Drop -> ("drop", "")
    | Fault.Stall s -> ("stall", ms s)
    | Fault.Delay s -> ("delay", ms s)
  in
  Printf.sprintf "%s%s:%s=%g%s"
    (Fault.site_name r.Fault.site)
    peer kind r.Fault.prob dur

let gen_rule =
  QCheck.Gen.(
    let* site = oneofl [ Fault.Connect; Fault.Send; Fault.Recv; Fault.Reply ] in
    let* peer =
      oneof
        [ return None; map Option.some (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) ]
    in
    let* prob = map (fun k -> float_of_int k /. 20.0) (int_bound 20) in
    let* kind =
      oneof
        [
          return Fault.Refuse;
          return Fault.Drop;
          map (fun ms -> Fault.Stall (float_of_int ms /. 1000.0)) (int_range 1 5000);
          map (fun ms -> Fault.Delay (float_of_int ms /. 1000.0)) (int_range 1 5000);
        ]
    in
    return { Fault.site; peer; kind; prob })

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"fault spec: render/parse round-trips" ~count:200
    QCheck.(make Gen.(list_size (int_range 1 5) gen_rule))
    (fun rules ->
      let spec = String.concat "," (List.map render_rule rules) in
      match Fault.parse spec with
      | Ok rules' -> rules = rules'
      | Error m -> QCheck.Test.fail_reportf "%S did not parse: %s" spec m)

(* ------------------------------------------------- replay determinism *)

let gen_probe_script =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (pair
         (oneofl [ Fault.Connect; Fault.Send; Fault.Recv; Fault.Reply ])
         (oneofl [ "shard1.sock"; "shard2.sock"; "router.sock" ])))

let prop_replay_deterministic =
  QCheck.Test.make
    ~name:"fault plan: same seed + same probe sequence = same schedule"
    ~count:100
    QCheck.(
      make
        Gen.(
          let* seed = int_bound 10_000 in
          let* rules = list_size (int_range 1 4) gen_rule in
          let* script = gen_probe_script in
          return (seed, rules, script)))
    (fun (seed, rules, script) ->
      let run () =
        let p = Fault.create ~seed rules in
        let verdicts =
          List.map (fun (site, peer) -> Fault.decide p site ~peer) script
        in
        (verdicts, Fault.log p, Fault.counts p)
      in
      run () = run ())

let test_replay_log_shape () =
  (* The decision log records every probe (including clean passes), in
     call order — that is what lets two chaos runs be compared
     decision-for-decision. *)
  let p = Fault.create ~seed:7 [ { Fault.site = Fault.Connect; peer = None; kind = Fault.Refuse; prob = 0.5 } ] in
  for _ = 1 to 40 do
    ignore (Fault.decide p Fault.Connect ~peer:"s1");
    ignore (Fault.decide p Fault.Send ~peer:"s1")
  done;
  let log = Fault.log p in
  Alcotest.(check int) "all 80 probes logged" 80 (List.length log);
  let refusals =
    List.length (List.filter (fun (_, _, v) -> v <> None) log)
  in
  Alcotest.(check int) "counts agree with log" refusals
    (List.assoc "refuse" (Fault.counts p));
  Alcotest.(check bool) "some refusals fired" true (refusals > 0);
  Alcotest.(check bool) "sends never fault (site filter)" true
    (List.for_all
       (fun (site, _, v) -> site <> Fault.Send || v = None)
       log)

let test_peer_filter () =
  let p =
    Fault.create ~seed:1
      [ { Fault.site = Fault.Connect; peer = Some "shard2"; kind = Fault.Refuse; prob = 1.0 } ]
  in
  Alcotest.(check bool) "matching peer faults" true
    (Fault.decide p Fault.Connect ~peer:"/tmp/shard2.sock" <> None);
  Alcotest.(check bool) "other peer passes" true
    (Fault.decide p Fault.Connect ~peer:"/tmp/shard1.sock" = None)

let test_hook_arm_disarm () =
  Alcotest.(check bool) "disarmed probe is None" true
    (Fault.probe Fault.Connect ~peer:"x" = None);
  let p =
    Fault.create ~seed:0
      [ { Fault.site = Fault.Connect; peer = None; kind = Fault.Refuse; prob = 1.0 } ]
  in
  Fun.protect ~finally:Fault.disarm (fun () ->
      Fault.arm p;
      Alcotest.(check bool) "armed probe faults" true
        (Fault.probe Fault.Connect ~peer:"x" = Some Fault.Refuse));
  Alcotest.(check bool) "disarm restores clean path" true
    (Fault.probe Fault.Connect ~peer:"x" = None)

(* ------------------------------------------------------------ breaker *)

let state_t =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Router.Breaker.state_label s))
    ( = )

let test_breaker_trip_probe_close () =
  let module B = Router.Breaker in
  let b = B.create ~failures:3 ~cooldown:1.0 () in
  Alcotest.(check state_t) "starts closed" B.Closed (B.state b);
  Alcotest.(check bool) "f1 stays" true (B.failure b ~now:0.0 = `Stayed);
  Alcotest.(check bool) "f2 stays" true (B.failure b ~now:0.1 = `Stayed);
  Alcotest.(check bool) "f3 opens" true (B.failure b ~now:0.2 = `Opened);
  Alcotest.(check state_t) "open" B.Open (B.state b);
  Alcotest.(check bool) "closed before cooldown" true
    (B.admit b ~now:0.9 = `No);
  Alcotest.(check bool) "straggler success ignored while open" true
    (B.success b = `Stayed);
  Alcotest.(check state_t) "still open" B.Open (B.state b);
  Alcotest.(check bool) "cooldown grants a probe" true
    (B.admit b ~now:1.3 = `Probe);
  Alcotest.(check state_t) "half-open" B.Half_open (B.state b);
  Alcotest.(check bool) "only one probe at a time" true
    (B.admit b ~now:1.4 = `No);
  Alcotest.(check bool) "probe success closes" true
    (B.success b = `Closed_now);
  Alcotest.(check state_t) "closed again" B.Closed (B.state b);
  Alcotest.(check bool) "traffic flows" true (B.admit b ~now:1.5 = `Yes)

let test_breaker_probe_failure_reopens () =
  let module B = Router.Breaker in
  let b = B.create ~failures:1 ~cooldown:0.5 () in
  ignore (B.failure b ~now:0.0);
  Alcotest.(check bool) "probe granted" true (B.admit b ~now:0.6 = `Probe);
  Alcotest.(check bool) "probe failure reopens" true
    (B.failure b ~now:0.7 = `Opened);
  Alcotest.(check state_t) "open again" B.Open (B.state b);
  Alcotest.(check bool) "cooldown restarts from the reopen" true
    (B.admit b ~now:1.0 = `No);
  Alcotest.(check bool) "next probe after full cooldown" true
    (B.admit b ~now:1.3 = `Probe)

let test_breaker_silent_probe_rearms () =
  let module B = Router.Breaker in
  let b = B.create ~failures:1 ~cooldown:0.5 () in
  ignore (B.failure b ~now:0.0);
  Alcotest.(check bool) "probe granted" true (B.admit b ~now:0.6 = `Probe);
  (* The probe never reports back; the breaker must not wedge shut. *)
  Alcotest.(check bool) "no second probe inside cooldown" true
    (B.admit b ~now:0.9 = `No);
  Alcotest.(check bool) "silent probe re-arms after cooldown" true
    (B.admit b ~now:1.2 = `Probe);
  Alcotest.(check bool) "late success of the re-armed probe closes" true
    (B.success b = `Closed_now)

let test_breaker_success_resets_count () =
  let module B = Router.Breaker in
  let b = B.create ~failures:3 ~cooldown:1.0 () in
  ignore (B.failure b ~now:0.0);
  ignore (B.failure b ~now:0.1);
  ignore (B.success b);
  (* The streak broke: two more failures must not trip it. *)
  Alcotest.(check bool) "f after reset stays" true
    (B.failure b ~now:0.2 = `Stayed);
  Alcotest.(check bool) "still below threshold" true
    (B.failure b ~now:0.3 = `Stayed);
  Alcotest.(check state_t) "closed" B.Closed (B.state b);
  Alcotest.(check bool) "third consecutive trips" true
    (B.failure b ~now:0.4 = `Opened)

(* -------------------------------------------------------------- retry *)

let drain_retry ~seed policy =
  let t = Retry.start ~seed policy in
  let rec go acc =
    match Retry.next t with Some s -> go (s :: acc) | None -> List.rev acc
  in
  go []

let test_retry_bounds_and_determinism () =
  let policy = { Retry.attempts = 6; base = 0.01; cap = 0.4 } in
  let a = drain_retry ~seed:42 policy in
  let b = drain_retry ~seed:42 policy in
  Alcotest.(check (list (float 0.0))) "same seed, same sleeps" a b;
  Alcotest.(check int) "grants = attempts - 1" 5 (List.length a);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "sleep %g in [base, cap]" s)
        true
        (s >= policy.Retry.base && s <= policy.Retry.cap))
    a

let test_retry_no_retry () =
  Alcotest.(check (list (float 0.0))) "no_retry grants nothing" []
    (drain_retry ~seed:0 Retry.no_retry)

let prop_retry_jitter_bounded =
  QCheck.Test.make ~name:"retry: every granted sleep is in [base, cap]"
    ~count:200
    QCheck.(
      make
        Gen.(
          let* seed = int_bound 100_000 in
          let* attempts = int_range 1 8 in
          let* base = map (fun k -> float_of_int k /. 1000.0) (int_range 0 50) in
          let* extra = map (fun k -> float_of_int k /. 1000.0) (int_range 0 500) in
          return (seed, { Retry.attempts; base; cap = base +. extra })))
    (fun (seed, policy) ->
      let sleeps = drain_retry ~seed policy in
      List.length sleeps = policy.Retry.attempts - 1
      && List.for_all
           (fun s -> s >= policy.Retry.base && s <= policy.Retry.cap)
           sleeps)

(* ------------------------------------------------------------- mclock *)

let test_mclock_monotone () =
  let t0 = Mclock.now () in
  let prev = ref t0 in
  for _ = 1 to 1000 do
    let t = Mclock.now () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  Unix.sleepf 0.02;
  let dt = Mclock.elapsed t0 in
  Alcotest.(check bool) "elapsed covers the sleep" true (dt >= 0.015);
  Alcotest.(check bool) "elapsed is sane" true (dt < 10.0)

(* ------------------------------------------------------ chaos e2e *)

let tmp_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Unix.mkdir p 0o755;
  p

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Shard sockets carry a "twq_shard" prefix and the router a "twq_rtr"
   prefix, so peer-filtered fault rules can hit the shard legs of the
   fleet without touching the client <-> router leg. *)
let tmp_sock prefix =
  let p = Filename.temp_file prefix ".sock" in
  Sys.remove p;
  p

let make_model ?(res = 8) ?(width_div = 4) ~seed () =
  let rng = Rng.create seed in
  let g = Twq_nn.Passes.fold_bn (Twq_nn.Gmodels.resnet20 ~rng ~width_div ()) in
  let cal = Tensor.rand_gaussian rng [| 2; 3; res; res |] ~mu:0.0 ~sigma:1.0 in
  ( Model.Graph (Twq_nn.Int_graph.quantize g ~calibration:cal ()),
    [| 3; res; res |] )

let the_model, the_dims = make_model ~seed:3 ()

let rand_input seed =
  let rng = Rng.create seed in
  Tensor.rand_gaussian rng the_dims ~mu:0.0 ~sigma:1.0

let reference_row x =
  let c = the_dims.(0) and h = the_dims.(1) and w = the_dims.(2) in
  let x1 = Tensor.zeros [| 1; c; h; w |] in
  Array.blit x.Tensor.data 0 x1.Tensor.data 0 (c * h * w);
  let y = Model.run_batch the_model x1 in
  Array.sub y.Tensor.data 0 (Tensor.dim y 1)

let farr_eq a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let with_fleet ?(n = 2) ?router_config f =
  let dirs = List.init n (fun _ -> tmp_dir "twq_chaos") in
  let socks = List.init n (fun _ -> tmp_sock "twq_shard") in
  let rsock = tmp_sock "twq_rtr" in
  let daemons = ref [] in
  let router = ref None in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      (match !router with Some r -> Router.stop r | None -> ());
      List.iter Server.stop_daemon !daemons;
      List.iter rm_rf dirs;
      List.iter
        (fun s -> if Sys.file_exists s then Sys.remove s)
        (rsock :: socks))
    (fun () ->
      List.iter2
        (fun dir sock ->
          let reg = Result.get_ok (Registry.open_dir dir) in
          (match
             Registry.publish reg ~name:"m" ~version:1 ~input_dims:the_dims
               the_model
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "publish: %s" (Registry.error_to_string e));
          match Server.listen ~registry:reg ~path:sock () with
          | Ok d -> daemons := !daemons @ [ d ]
          | Error e -> Alcotest.failf "listen %s: %s" sock e)
        dirs socks;
      let config =
        Option.value router_config
          ~default:
            {
              Router.default_config with
              Router.heartbeat_interval = 0.05;
              connect_timeout = 2.0;
            }
      in
      match Router.start ~config ~shards:socks ~path:rsock () with
      | Error e -> Alcotest.failf "router: %s" e
      | Ok r ->
          router := Some r;
          Thread.delay 0.2;
          f r ~rsock ~socks ~daemons:!daemons)

let run_chaos_load ~rsock ~requests ~rate ?deadline ?(retry = Retry.no_retry) ()
    =
  Loadgen.run_poisson
    ~connect:(fun () -> Shard_client.connect ~timeout:5.0 rsock)
    ~make_input:(fun i -> rand_input (9000 + i))
    ~requests ~rate ~slo:0.5 ~connections:2 ~seed:11 ~retry ?deadline ()

let check_accounted s ~requests =
  let accounted =
    s.Loadgen.p_completed + s.Loadgen.p_overloaded + s.Loadgen.p_expired
    + s.Loadgen.p_other_rejected + s.Loadgen.p_lost
  in
  Alcotest.(check int) "every request accounted once" requests accounted

(* Refused shard connects: the router's retry budget and failover absorb
   them. Typed outcomes only, zero lost acks, zero budget violations. *)
let test_chaos_refused_connects () =
  with_fleet (fun r ~rsock ~socks:_ ~daemons:_ ->
      let plan =
        Result.get_ok
          (Fault.of_spec ~seed:1234 "connect[twq_shard]:refuse=0.4")
      in
      Fault.arm plan;
      let s = run_chaos_load ~rsock ~requests:60 ~rate:400.0 () in
      Fault.disarm ();
      check_accounted s ~requests:60;
      Alcotest.(check int) "zero lost acks" 0 s.Loadgen.p_lost;
      Alcotest.(check int) "zero budget violations" 0
        s.Loadgen.p_budget_violations;
      Alcotest.(check bool) "refusals actually fired" true
        (List.assoc "refuse" (Fault.counts plan) > 0);
      Alcotest.(check bool) "most requests still complete" true
        (s.Loadgen.p_completed > 30);
      ignore (Router.counters r))

(* Severed frames mid-send: the shard's CRC/length checks must reject
   the partial frame (decode error, never a wrong answer) and the
   router's transparent retry replays the request elsewhere. *)
let test_chaos_severed_sends () =
  with_fleet (fun _r ~rsock ~socks:_ ~daemons:_ ->
      let plan =
        Result.get_ok (Fault.of_spec ~seed:77 "send[twq_shard]:drop=0.25")
      in
      Fault.arm plan;
      let s = run_chaos_load ~rsock ~requests:60 ~rate:400.0 () in
      Fault.disarm ();
      check_accounted s ~requests:60;
      Alcotest.(check int) "zero lost acks" 0 s.Loadgen.p_lost;
      Alcotest.(check int) "zero budget violations" 0
        s.Loadgen.p_budget_violations;
      Alcotest.(check bool) "drops actually fired" true
        (List.assoc "drop" (Fault.counts plan) > 0);
      Alcotest.(check bool) "most requests still complete" true
        (s.Loadgen.p_completed > 30))

(* A mid-frame severed reply must surface as a typed transport error on
   a direct shard connection — and the connection afterwards must still
   serve bit-identical answers once faults stop. *)
let test_chaos_partial_reply_never_wrong () =
  with_fleet ~n:1 (fun _r ~rsock:_ ~socks ~daemons:_ ->
      let shard = List.hd socks in
      let plan =
        Result.get_ok (Fault.of_spec ~seed:5 "reply[twq_shard]:drop=1.0")
      in
      Fault.arm plan;
      let x = rand_input 4242 in
      (match Shard_client.connect ~timeout:5.0 shard with
      | Error e ->
          Alcotest.failf "connect: %s" (Shard_client.error_to_string e)
      | Ok c ->
          (match Shard_client.infer ~key:"k" c x with
          | Ok { outcome = Wire.Logits _; _ } ->
              Alcotest.fail "severed reply produced logits"
          | Ok _ -> Alcotest.fail "severed reply produced a typed reply"
          | Error (Shard_client.Io _ | Shard_client.Decode _) -> ()
          | Error e ->
              Alcotest.failf "unexpected error class: %s"
                (Shard_client.error_to_string e));
          Shard_client.close c);
      Fault.disarm ();
      match Shard_client.connect ~timeout:5.0 shard with
      | Error e ->
          Alcotest.failf "reconnect: %s" (Shard_client.error_to_string e)
      | Ok c ->
          (match Shard_client.infer ~key:"k" c x with
          | Ok { outcome = Wire.Logits { data; _ }; _ } ->
              Alcotest.(check bool) "post-chaos answer bit-identical" true
                (farr_eq data (reference_row x))
          | Ok _ -> Alcotest.fail "expected logits after disarm"
          | Error e ->
              Alcotest.failf "infer after disarm: %s"
                (Shard_client.error_to_string e));
          Shard_client.close c)

(* Client-side retry over a faulty direct shard leg: send drops sever
   the connection mid-frame, forcing a reconnect (which may itself be
   refused); a generous attempt budget must heal every request. *)
let test_chaos_client_retries_heal () =
  with_fleet ~n:1 (fun _r ~rsock:_ ~socks ~daemons:_ ->
      let plan =
        Result.get_ok
          (Fault.of_spec ~seed:99
             "send[twq_shard]:drop=0.3,connect[twq_shard]:refuse=0.2")
      in
      Fault.arm plan;
      let s =
        Loadgen.run_poisson
          ~connect:(fun () ->
            Shard_client.connect ~timeout:5.0 (List.hd socks))
          ~make_input:(fun i -> rand_input (7000 + i))
          ~requests:40 ~rate:400.0 ~slo:0.5 ~connections:1 ~seed:13
          ~retry:{ Retry.attempts = 10; base = 0.001; cap = 0.01 }
          ()
      in
      Fault.disarm ();
      check_accounted s ~requests:40;
      Alcotest.(check int) "retries healed every request" 0 s.Loadgen.p_lost;
      Alcotest.(check bool) "retries were needed" true
        (s.Loadgen.p_retries > 0);
      Alcotest.(check int) "all completed" 40 s.Loadgen.p_completed)

(* Deadline propagation under injected shard stalls: a stalled fleet
   must answer Expired/typed, never report a queue wait that exceeded
   the request's budget (zero violations), and never lose acks. *)
let test_chaos_deadline_under_stall () =
  with_fleet (fun _r ~rsock ~socks:_ ~daemons:_ ->
      let plan =
        Result.get_ok
          (Fault.of_spec ~seed:21 "recv[twq_shard]:stall=0.3@40")
      in
      Fault.arm plan;
      let s =
        run_chaos_load ~rsock ~requests:40 ~rate:200.0 ~deadline:0.25 ()
      in
      Fault.disarm ();
      check_accounted s ~requests:40;
      Alcotest.(check int) "zero lost acks" 0 s.Loadgen.p_lost;
      Alcotest.(check int) "zero budget violations" 0
        s.Loadgen.p_budget_violations;
      Alcotest.(check bool) "stalls actually fired" true
        (List.assoc "stall" (Fault.counts plan) > 0))

(* ----------------------------------------------------------- suite *)

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "example parses" `Quick test_parse_example;
          Alcotest.test_case "default duration" `Quick
            test_parse_default_duration;
          Alcotest.test_case "malformed specs rejected" `Quick
            test_parse_errors;
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
        ] );
      ( "replay",
        [
          QCheck_alcotest.to_alcotest prop_replay_deterministic;
          Alcotest.test_case "log + counts shape" `Quick test_replay_log_shape;
          Alcotest.test_case "peer filter" `Quick test_peer_filter;
          Alcotest.test_case "arm / disarm hook" `Quick test_hook_arm_disarm;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip, probe, close" `Quick
            test_breaker_trip_probe_close;
          Alcotest.test_case "probe failure reopens" `Quick
            test_breaker_probe_failure_reopens;
          Alcotest.test_case "silent probe re-arms" `Quick
            test_breaker_silent_probe_rearms;
          Alcotest.test_case "success resets the streak" `Quick
            test_breaker_success_resets_count;
        ] );
      ( "retry",
        [
          Alcotest.test_case "bounds + determinism" `Quick
            test_retry_bounds_and_determinism;
          Alcotest.test_case "no_retry" `Quick test_retry_no_retry;
          QCheck_alcotest.to_alcotest prop_retry_jitter_bounded;
        ] );
      ( "mclock",
        [ Alcotest.test_case "monotone" `Quick test_mclock_monotone ] );
      ( "chaos",
        [
          Alcotest.test_case "refused connects absorbed" `Quick
            test_chaos_refused_connects;
          Alcotest.test_case "severed sends absorbed" `Quick
            test_chaos_severed_sends;
          Alcotest.test_case "partial reply never wrong" `Quick
            test_chaos_partial_reply_never_wrong;
          Alcotest.test_case "client retries heal" `Quick
            test_chaos_client_retries_heal;
          Alcotest.test_case "deadlines under stalls" `Quick
            test_chaos_deadline_under_stall;
        ] );
    ]
