(* Tests for the quantization substrate: scalar quantizer, calibration,
   the integer tap-wise Winograd pipeline (the paper's core algorithm), the
   int8 im2col baseline and the Fig.-4 error analysis. *)

open Twq_tensor
open Twq_quant
module Rng = Twq_util.Rng
module Transform = Twq_winograd.Transform

let tensor_loose = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:1e-6)

(* ------------------------------------------------------------ quantizer *)

let test_qrange () =
  Alcotest.(check int) "qmax8" 127 (Quantizer.qmax ~bits:8);
  Alcotest.(check int) "qmin8" (-128) (Quantizer.qmin ~bits:8);
  Alcotest.(check int) "qmax10" 511 (Quantizer.qmax ~bits:10)

let test_scale_for () =
  Alcotest.(check (float 1e-12)) "128/128" 1.0 (Quantizer.scale_for ~bits:8 ~max_abs:128.0);
  Alcotest.(check bool) "zero max gives positive" true (Quantizer.scale_for ~bits:8 ~max_abs:0.0 > 0.0)

let test_quantize_clamp () =
  Alcotest.(check int) "clamps hi" 127 (Quantizer.quantize ~bits:8 ~scale:1.0 300.0);
  Alcotest.(check int) "clamps lo" (-128) (Quantizer.quantize ~bits:8 ~scale:1.0 (-300.0));
  Alcotest.(check int) "rounds" 3 (Quantizer.quantize ~bits:8 ~scale:1.0 2.5);
  Alcotest.(check int) "scaled" 25 (Quantizer.quantize ~bits:8 ~scale:0.1 2.51)

let test_pow2_round_up () =
  Alcotest.(check (float 1e-12)) "0.3 -> 0.5" 0.5 (Quantizer.pow2_round_up 0.3);
  Alcotest.(check (float 1e-12)) "exact stays" 0.25 (Quantizer.pow2_round_up 0.25);
  Alcotest.(check (float 1e-12)) "3 -> 4" 4.0 (Quantizer.pow2_round_up 3.0);
  Alcotest.(check int) "exp of 0.3" (-1) (Quantizer.pow2_exponent 0.3)

let prop_fake_quant_idempotent =
  QCheck.Test.make ~name:"fake_quant idempotent" ~count:500
    QCheck.(pair (float_range (-10.0) 10.0) (int_range 2 10))
    (fun (x, bits) ->
      let scale = 0.05 in
      let q = Quantizer.fake_quant ~bits ~scale x in
      Float.abs (Quantizer.fake_quant ~bits ~scale q -. q) < 1e-12)

let prop_quant_error_bounded =
  QCheck.Test.make ~name:"quantization error <= scale/2 inside range" ~count:500
    (QCheck.float_range (-0.9) 0.9) (fun x ->
      let scale = Quantizer.scale_for ~bits:8 ~max_abs:1.0 in
      let q = Quantizer.fake_quant ~bits:8 ~scale x in
      Float.abs (q -. x) <= (scale /. 2.0) +. 1e-12)

let test_affine_quantizer () =
  let p = Quantizer.affine_params ~bits:8 ~lo:0.0 ~hi:6.0 in
  (* Zero exactly representable. *)
  Alcotest.(check (float 1e-12)) "zero" 0.0
    (Quantizer.affine_dequantize p (Quantizer.affine_quantize p 0.0));
  (* Error bounded by scale/2 inside range. *)
  List.iter
    (fun x ->
      let q = Quantizer.affine_dequantize p (Quantizer.affine_quantize p x) in
      Alcotest.(check bool)
        (Printf.sprintf "err at %.2f" x)
        true
        (Float.abs (q -. x) <= (p.Quantizer.scale /. 2.0) +. 1e-12))
    [ 0.1; 1.7; 3.0; 5.99 ];
  (* One-sided range beats symmetric quantization on post-ReLU data. *)
  let sym_scale = Quantizer.scale_for ~bits:8 ~max_abs:6.0 in
  Alcotest.(check bool) "finer grid than symmetric" true
    (p.Quantizer.scale < sym_scale +. 1e-12);
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Quantizer.affine_params: lo > hi") (fun () ->
      ignore (Quantizer.affine_params ~bits:8 ~lo:2.0 ~hi:1.0))

(* ---------------------------------------------------------- calibration *)

let test_calibration_first_observation () =
  let o = Calibration.create () in
  Alcotest.(check bool) "not calibrated" false (Calibration.is_calibrated o);
  Calibration.observe o 5.0;
  Alcotest.(check (float 1e-12)) "first sets value" 5.0 (Calibration.value o)

let test_calibration_ema () =
  let o = Calibration.create ~momentum:0.9 () in
  Calibration.observe o 10.0;
  Calibration.observe o 20.0;
  Alcotest.(check (float 1e-9)) "ema" 11.0 (Calibration.value o)

let test_calibration_abs () =
  let o = Calibration.create () in
  Calibration.observe o (-7.0);
  Alcotest.(check (float 1e-12)) "abs" 7.0 (Calibration.value o)

let test_calibration_taps () =
  let taps = Calibration.create_taps ~t:4 () in
  let tile = Tensor.init [| 4; 4 |] (fun i -> float_of_int ((i.(0) * 4) + i.(1))) in
  Calibration.observe_tile taps tile;
  Calibration.observe_tile taps (Tensor.scale 0.5 tile);
  let values = Calibration.tap_values taps in
  (* Within one batch the max is kept, so tap (3,3) sees 15. *)
  Alcotest.(check (float 1e-12)) "tap max" 15.0 values.(3).(3);
  Alcotest.(check (float 1e-12)) "tap 0" 0.0 values.(0).(0)

let test_percentile_calibration () =
  (* Outlier-robust: one huge value barely moves the 99th percentile. *)
  let xs = Array.init 1000 (fun i -> float_of_int i /. 1000.0) in
  xs.(999) <- 1000.0;
  let p99 = Calibration.percentile_max ~percentile:99.0 xs in
  Alcotest.(check bool) (Printf.sprintf "p99 %.2f < 2" p99) true (p99 < 2.0);
  let p100 = Calibration.percentile_max ~percentile:100.0 xs in
  Alcotest.(check (float 1e-9)) "p100 is max" 1000.0 p100;
  Alcotest.check_raises "invalid percentile"
    (Invalid_argument "Calibration.percentile_max: percentile out of (0, 100]")
    (fun () -> ignore (Calibration.percentile_max ~percentile:0.0 xs))

(* -------------------------------------------------------------- tapwise *)

let make_case ~seed ~cin ~cout ~h ~w =
  let rng = Rng.create seed in
  let x = Tensor.rand_gaussian rng [| 1; cin; h; w |] ~mu:0.0 ~sigma:1.0 in
  let wt = Tensor.rand_gaussian rng [| cout; cin; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  (x, wt)

let calibrated config ~seed ~cin ~cout ~h ~w =
  let x, wt = make_case ~seed ~cin ~cout ~h ~w in
  let layer = Tapwise.calibrate ~config ~w:wt ~sample_inputs:[ x ] ~pad:1 () in
  (layer, x, wt)

let test_tapwise_f4_low_noise () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, x, wt = calibrated config ~seed:1 ~cin:4 ~cout:4 ~h:16 ~w:16 in
  let noise = Tapwise.quantization_noise layer x ~w:wt in
  Alcotest.(check bool)
    (Printf.sprintf "tap-wise F4 rms noise %.4f < 0.12" noise)
    true (noise < 0.15)

let test_tapwise_beats_single_scale_f4 () =
  (* The core claim: per-tap scales recover most of the accuracy that a
     single Winograd-domain scale destroys for F4. *)
  let tap = Tapwise.default_config Transform.F4 in
  let single = { tap with Tapwise.granularity = Tapwise.Single_scale } in
  let layer_t, x, wt = calibrated tap ~seed:2 ~cin:4 ~cout:4 ~h:16 ~w:16 in
  let layer_s, _, _ = calibrated single ~seed:2 ~cin:4 ~cout:4 ~h:16 ~w:16 in
  let n_t = Tapwise.quantization_noise layer_t x ~w:wt in
  let n_s = Tapwise.quantization_noise layer_s x ~w:wt in
  Alcotest.(check bool)
    (Printf.sprintf "tap %.4f < single %.4f" n_t n_s)
    true
    (n_t < n_s)

let test_tapwise_f2_low_noise () =
  let config = Tapwise.default_config Transform.F2 in
  let layer, x, wt = calibrated config ~seed:3 ~cin:3 ~cout:3 ~h:12 ~w:12 in
  let noise = Tapwise.quantization_noise layer x ~w:wt in
  Alcotest.(check bool) "F2 noise small" true (noise < 0.15)

let test_tapwise_more_wino_bits_help () =
  let c8 = Tapwise.default_config Transform.F4 in
  let c10 = { c8 with Tapwise.wino_bits = 10 } in
  let l8, x, wt = calibrated c8 ~seed:4 ~cin:4 ~cout:4 ~h:16 ~w:16 in
  let l10, _, _ = calibrated c10 ~seed:4 ~cin:4 ~cout:4 ~h:16 ~w:16 in
  let n8 = Tapwise.quantization_noise l8 x ~w:wt in
  let n10 = Tapwise.quantization_noise l10 x ~w:wt in
  Alcotest.(check bool)
    (Printf.sprintf "int8/10 (%.4f) <= int8 (%.4f)" n10 n8)
    true (n10 <= n8)

let test_tapwise_int_matches_float_ref () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, x, _ = calibrated config ~seed:5 ~cin:3 ~cout:3 ~h:8 ~w:8 in
  let yi = Tapwise.forward layer x in
  let yf = Tapwise.forward_float_ref layer x in
  let max_diff = Tensor.max_abs (Tensor.sub yi yf) in
  Alcotest.(check bool)
    (Printf.sprintf "max diff %.6f <= 4 LSB (%.6f)" max_diff (4.0 *. layer.Tapwise.s_y))
    true
    (max_diff <= 4.0 *. layer.Tapwise.s_y)

let test_tapwise_shifts_sane () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, _, _ = calibrated config ~seed:6 ~cin:8 ~cout:8 ~h:16 ~w:16 in
  let t = Transform.t Transform.F4 in
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      let si = Tapwise.input_shift layer i j in
      let sw = Tapwise.weight_shift layer i j in
      (* Paper: feature maps shifted right 1..5 bits, weights 2..10; allow a
         margin since our weight ensembles are synthetic. *)
      Alcotest.(check bool) (Printf.sprintf "ifm shift %d in [-2;7]" si) true (si >= -2 && si <= 7);
      Alcotest.(check bool) (Printf.sprintf "wt shift %d in [-9;12]" sw) true (sw >= -9 && sw <= 12)
    done
  done

let test_tapwise_shift_spread_f4 () =
  (* Fig. 1's point: the per-tap dynamic ranges differ widely, so the
     learned shifts must differ across taps. *)
  let config = Tapwise.default_config Transform.F4 in
  let layer, _, _ = calibrated config ~seed:7 ~cin:8 ~cout:8 ~h:16 ~w:16 in
  let t = Transform.t Transform.F4 in
  let shifts = ref [] in
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      shifts := Tapwise.weight_shift layer i j :: !shifts
    done
  done;
  let mn = List.fold_left min max_int !shifts in
  let mx = List.fold_left max min_int !shifts in
  Alcotest.(check bool)
    (Printf.sprintf "spread %d..%d >= 2 bits" mn mx)
    true
    (mx - mn >= 2)

let test_tapwise_pow2_scales_are_pow2_multiples () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, _, _ = calibrated config ~seed:8 ~cin:2 ~cout:2 ~h:8 ~w:8 in
  let t = Transform.t Transform.F4 in
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      let r = layer.Tapwise.s_b.(i).(j) /. layer.Tapwise.s_x in
      let k = Float.log2 r in
      Alcotest.(check bool) "ratio is 2^k" true (Float.abs (k -. Float.round k) < 1e-9)
    done
  done

let prop_tapwise_noise_bounded =
  QCheck.Test.make ~name:"tap-wise F4 noise bounded over random layers" ~count:8
    (QCheck.int_range 0 10000) (fun seed ->
      let config = Tapwise.default_config Transform.F4 in
      let layer, x, wt = calibrated config ~seed ~cin:3 ~cout:3 ~h:12 ~w:12 in
      Tapwise.quantization_noise layer x ~w:wt < 0.2)

(* ---------------------------------------------------------------- qconv *)

let test_qconv_close_to_fp32 () =
  let x, wt = make_case ~seed:9 ~cin:4 ~cout:4 ~h:10 ~w:10 in
  let layer = Qconv.calibrate ~w:wt ~sample_inputs:[ x ] ~stride:1 ~pad:1 () in
  let y = Qconv.forward layer x in
  let ref_y = Ops.conv2d ~stride:1 ~pad:1 ~x ~w:wt () in
  let noise = sqrt (Tensor.sumsq (Tensor.sub y ref_y) /. Tensor.sumsq ref_y) in
  Alcotest.(check bool) (Printf.sprintf "noise %.4f < 0.05" noise) true (noise < 0.05)

let test_qconv_stride2 () =
  let x, wt = make_case ~seed:10 ~cin:2 ~cout:3 ~h:9 ~w:9 in
  let layer = Qconv.calibrate ~w:wt ~sample_inputs:[ x ] ~stride:2 ~pad:1 () in
  let y = Qconv.forward layer x in
  Alcotest.(check int) "out h" 5 (Tensor.dim y 2);
  let ref_y = Ops.conv2d ~stride:2 ~pad:1 ~x ~w:wt () in
  let noise = sqrt (Tensor.sumsq (Tensor.sub y ref_y) /. Tensor.sumsq ref_y) in
  Alcotest.(check bool) "stride-2 noise" true (noise < 0.05)

let test_qconv_int_float_consistent () =
  let x, wt = make_case ~seed:11 ~cin:2 ~cout:2 ~h:8 ~w:8 in
  let layer = Qconv.calibrate ~w:wt ~sample_inputs:[ x ] ~stride:1 ~pad:1 () in
  let x_int = Quantizer.quantize_tensor ~bits:8 ~scale:layer.Qconv.s_x x in
  let y_int = Qconv.forward_int layer x_int in
  let y = Qconv.forward layer x in
  Alcotest.check tensor_loose "int path == float wrapper"
    (Quantizer.dequantize_tensor ~scale:layer.Qconv.s_y y_int)
    y

let test_tapwise_channel_tap_granularity () =
  let base = Tapwise.default_config Transform.F4 in
  let ct = { base with Tapwise.granularity = Tapwise.Channel_tap_wise } in
  let layer_t, x, wt = calibrated base ~seed:40 ~cin:4 ~cout:8 ~h:12 ~w:12 in
  let layer_ct, _, _ = calibrated ct ~seed:40 ~cin:4 ~cout:8 ~h:12 ~w:12 in
  Alcotest.(check bool) "per-channel scales present" true
    (layer_ct.Tapwise.s_g_channel <> None);
  Alcotest.(check bool) "tap-wise has none" true (layer_t.Tapwise.s_g_channel = None);
  let n_t = Tapwise.quantization_noise layer_t x ~w:wt in
  let n_ct = Tapwise.quantization_noise layer_ct x ~w:wt in
  (* Sec. V-A4: the combined strategy is a refinement — never much worse. *)
  Alcotest.(check bool)
    (Printf.sprintf "chan+tap %.4f <= 1.1 * tap %.4f" n_ct n_t)
    true
    (n_ct <= (1.1 *. n_t) +. 1e-9);
  (* weight_scale dispatches per channel. *)
  let s0 = Tapwise.weight_scale layer_ct 0 5 5 in
  Alcotest.(check bool) "scale positive" true (s0 > 0.0)

(* -------------------------------------------------------------- pruning *)

let test_pruning_density_exact () =
  let rng = Rng.create 21 in
  let w = Itensor.init [| 4; 4; 6; 6 |] (fun _ -> Rng.int rng 255 - 127) in
  List.iter
    (fun d ->
      let pruned = Pruning.prune_quantized ~density:d w in
      let expected = Float.round (d *. float_of_int (Itensor.numel w)) in
      let kept =
        Array.fold_left (fun a v -> if v <> 0 then a + 1 else a) 0 pruned.Itensor.data
      in
      (* Pre-existing zeros only reduce the count further. *)
      Alcotest.(check bool)
        (Printf.sprintf "density %.2f: kept %d <= %.0f" d kept expected)
        true
        (float_of_int kept <= expected +. 0.5))
    [ 0.75; 0.5; 0.25; 0.1 ]

let test_pruning_keeps_largest () =
  let w = Itensor.of_array [| 6 |] [| 1; -9; 3; 7; -2; 5 |] in
  let pruned = Pruning.prune_quantized ~density:0.5 w in
  Alcotest.(check (array int)) "largest survive" [| 0; -9; 0; 7; 0; 5 |] pruned.Itensor.data

let test_pruning_full_density_identity () =
  let w = Itensor.of_array [| 3 |] [| 1; 0; -2 |] in
  let pruned = Pruning.prune_quantized ~density:1.0 w in
  Alcotest.(check (array int)) "unchanged" w.Itensor.data pruned.Itensor.data

let test_pruning_invalid_density () =
  let w = Itensor.of_array [| 2 |] [| 1; 2 |] in
  let invalid =
    Invalid_argument "Pruning.prune_quantized: density must be in (0, 1]"
  in
  Alcotest.check_raises "zero" invalid (fun () ->
      ignore (Pruning.prune_quantized ~density:0.0 w));
  Alcotest.check_raises "negative" invalid (fun () ->
      ignore (Pruning.prune_quantized ~density:(-0.5) w));
  Alcotest.check_raises "above one" invalid (fun () ->
      ignore (Pruning.prune_quantized ~density:1.5 w))

let test_pruning_tie_budget_exact () =
  (* Every magnitude identical: the threshold is a pure tie, and the
     tie budget must land the kept count exactly on round(d·n), chosen
     in index order. *)
  let n = 10 in
  let w = Itensor.init [| n |] (fun _ -> 5) in
  List.iter
    (fun d ->
      let pruned = Pruning.prune_quantized ~density:d w in
      let kept =
        Array.fold_left
          (fun a v -> if v <> 0 then a + 1 else a)
          0 pruned.Itensor.data
      in
      let expected = int_of_float (Float.round (d *. float_of_int n)) in
      Alcotest.(check int) (Printf.sprintf "density %.2f" d) expected kept;
      (* Index-order tie resolution: the survivors are a prefix. *)
      Array.iteri
        (fun i v ->
          Alcotest.(check int)
            (Printf.sprintf "slot %d" i)
            (if i < expected then 5 else 0)
            v)
        pruned.Itensor.data)
    [ 0.3; 0.5; 0.75 ]

let test_pruning_idempotent () =
  let rng = Rng.create 22 in
  let w = Itensor.init [| 3; 5; 6; 6 |] (fun _ -> Rng.int rng 255 - 127) in
  List.iter
    (fun d ->
      let once = Pruning.prune_quantized ~density:d w in
      let twice = Pruning.prune_quantized ~density:d once in
      Alcotest.(check (array int))
        (Printf.sprintf "density %.2f" d)
        once.Itensor.data twice.Itensor.data)
    [ 0.8; 0.5; 0.2 ]

let test_pruning_density_macs_consistent () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, _, _ = calibrated config ~seed:31 ~cin:4 ~cout:4 ~h:12 ~w:12 in
  List.iter
    (fun d ->
      let pl = Pruning.prune_layer layer ~density:d in
      let measured = Pruning.density pl.Tapwise.wq in
      let macs = Pruning.effective_macs_fraction pl in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "macs fraction = density at %.2f" d)
        measured macs;
      (* The realized density can exceed the request only by the
         rounding of the kept count (half an element); pre-existing
         quantization zeros can push it arbitrarily lower. *)
      let slack = 0.5 /. float_of_int (Itensor.numel pl.Tapwise.wq) in
      Alcotest.(check bool)
        (Printf.sprintf "measured %.4f <= requested %.2f (+rounding)" measured d)
        true
        (measured <= d +. slack +. 1e-9))
    [ 1.0; 0.5; 0.3 ]

let test_pruning_layer_noise_monotone () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, x, wt = calibrated config ~seed:30 ~cin:4 ~cout:4 ~h:12 ~w:12 in
  let noise d =
    Tapwise.quantization_noise (Pruning.prune_layer layer ~density:d) x ~w:wt
  in
  (* More pruning, more noise (weakly). *)
  Alcotest.(check bool) "1.0 <= 0.5" true (noise 1.0 <= noise 0.5 +. 1e-9);
  Alcotest.(check bool) "0.5 <= 0.2" true (noise 0.5 <= noise 0.2 +. 1e-9)

let test_qconv_per_channel_better () =
  (* Weights with strongly different per-channel magnitudes: channel-wise
     scales recover accuracy (Sec. V-A4: 1.7x in the paper). *)
  let rng = Rng.create 71 in
  let x = Tensor.rand_gaussian rng [| 1; 4; 10; 10 |] ~mu:0.0 ~sigma:1.0 in
  let wt =
    Tensor.init [| 6; 4; 3; 3 |] (fun idx ->
        let sigma = 0.02 +. (0.3 *. float_of_int idx.(0) /. 5.0) in
        Rng.gaussian rng ~mu:0.0 ~sigma)
  in
  let noise per_channel =
    let l = Qconv.calibrate ~per_channel ~w:wt ~sample_inputs:[ x ] ~stride:1 ~pad:1 () in
    let y = Qconv.forward l x in
    let r = Ops.conv2d ~stride:1 ~pad:1 ~x ~w:wt () in
    sqrt (Tensor.sumsq (Tensor.sub y r) /. Tensor.sumsq r)
  in
  let n_layer = noise false and n_chan = noise true in
  Alcotest.(check bool)
    (Printf.sprintf "per-channel %.4f <= layer %.4f" n_chan n_layer)
    true (n_chan <= n_layer +. 1e-9)

let test_qconv_per_channel_serialization () =
  let rng = Rng.create 72 in
  let x = Tensor.rand_gaussian rng [| 1; 2; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  let wt = Tensor.rand_gaussian rng [| 3; 2; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let l = Qconv.calibrate ~per_channel:true ~w:wt ~sample_inputs:[ x ] ~stride:1 ~pad:1 () in
  let reloaded = Serialize.qconv_of_string (Serialize.qconv_to_string l) in
  Alcotest.(check bool) "per-channel present" true (reloaded.Qconv.s_w_channel <> None);
  let xi = Quantizer.quantize_tensor ~bits:8 ~scale:l.Qconv.s_x x in
  Alcotest.(check bool) "same int outputs" true
    (Itensor.equal (Qconv.forward_int l xi) (Qconv.forward_int reloaded xi))

(* ------------------------------------------------------------ serialize *)

let test_serialize_roundtrip_exact () =
  let config = Tapwise.default_config Transform.F4 in
  let layer, x, _ = calibrated config ~seed:60 ~cin:3 ~cout:4 ~h:10 ~w:10 in
  let reloaded = Serialize.layer_of_string (Serialize.layer_to_string layer) in
  (* Scales round-trip bit-exactly (hex float encoding). *)
  Alcotest.(check (float 0.0)) "s_x" layer.Tapwise.s_x reloaded.Tapwise.s_x;
  Alcotest.(check (float 0.0)) "s_y" layer.Tapwise.s_y reloaded.Tapwise.s_y;
  Alcotest.(check bool) "weights equal" true
    (Itensor.equal layer.Tapwise.wq reloaded.Tapwise.wq);
  (* Bit-identical integer inference after reload. *)
  let x_int = Quantizer.quantize_tensor ~bits:8 ~scale:layer.Tapwise.s_x x in
  Alcotest.(check bool) "same int outputs" true
    (Itensor.equal (Tapwise.forward_int layer x_int) (Tapwise.forward_int reloaded x_int))

let test_serialize_channel_tap_and_bias () =
  let rng = Rng.create 61 in
  let x = Tensor.rand_gaussian rng [| 1; 2; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  let wt = Tensor.rand_gaussian rng [| 3; 2; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let bias = Tensor.rand_gaussian rng [| 3 |] ~mu:0.0 ~sigma:0.1 in
  let config =
    { (Tapwise.default_config Transform.F4) with
      Tapwise.granularity = Tapwise.Channel_tap_wise }
  in
  let layer = Tapwise.calibrate ~config ~w:wt ~bias ~sample_inputs:[ x ] ~pad:1 () in
  let reloaded = Serialize.layer_of_string (Serialize.layer_to_string layer) in
  Alcotest.(check bool) "per-channel present" true
    (reloaded.Tapwise.s_g_channel <> None);
  Alcotest.(check bool) "bias present" true (reloaded.Tapwise.bias <> None);
  let x_int = Quantizer.quantize_tensor ~bits:8 ~scale:layer.Tapwise.s_x x in
  Alcotest.(check bool) "same outputs" true
    (Itensor.equal (Tapwise.forward_int layer x_int) (Tapwise.forward_int reloaded x_int))

let test_serialize_file_io () =
  let config = Tapwise.default_config Transform.F2 in
  let layer, _, _ = calibrated config ~seed:62 ~cin:2 ~cout:2 ~h:8 ~w:8 in
  let path = Filename.temp_file "twq" ".layer" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_layer path layer;
      let reloaded = Serialize.load_layer path in
      Alcotest.(check bool) "weights equal" true
        (Itensor.equal layer.Tapwise.wq reloaded.Tapwise.wq))

let test_serialize_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Serialize.layer_of_string "not a layer");
       false
     with Scanf.Scan_failure _ | Failure _ | End_of_file -> true)

(* ------------------------------------------------------- error analysis *)

let resnet_like_weights seed cout cin =
  (* Mixture of Gaussians with per-channel spread, mimicking trained conv
     filters. *)
  let rng = Rng.create seed in
  Tensor.init [| cout; cin; 3; 3 |] (fun idx ->
      let channel_sigma = 0.1 +. (0.4 *. float_of_int (idx.(0) mod 5) /. 5.0) in
      Rng.gaussian rng ~mu:0.0 ~sigma:channel_sigma)

let test_relative_error_basics () =
  Alcotest.(check (float 1e-12))
    "zero for exact" 0.0
    (Error_analysis.relative_error ~original:[| 1.0; -2.0 |] ~quantized:[| 1.0; -2.0 |]);
  Alcotest.(check (float 1e-12))
    "simple" 0.5
    (Error_analysis.relative_error ~original:[| 2.0 |] ~quantized:[| 1.0 |])

let test_quantize_unit_beats_naive_max () =
  let rng = Rng.create 12 in
  let values = Array.init 2000 (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let q, _gamma = Error_analysis.quantize_unit ~bits:8 values in
  let err_opt = Error_analysis.relative_error ~original:values ~quantized:q in
  (* Naive max-scaling for comparison. *)
  let s = Quantizer.scale_for ~bits:8 ~max_abs:(Twq_util.Stats.abs_max values) in
  let q_naive = Array.map (Quantizer.fake_quant ~bits:8 ~scale:s) values in
  let err_naive = Error_analysis.relative_error ~original:values ~quantized:q_naive in
  Alcotest.(check bool)
    (Printf.sprintf "optimized %.5f <= naive %.5f" err_opt err_naive)
    true (err_opt <= err_naive)

let test_spatial_channel_beats_layer () =
  let w = resnet_like_weights 13 20 16 in
  let e_layer = Error_analysis.spatial_error ~bits:8 ~strategy:Error_analysis.S_layer w in
  let e_chan = Error_analysis.spatial_error ~bits:8 ~strategy:Error_analysis.S_channel w in
  Alcotest.(check bool)
    (Printf.sprintf "channel %.5f <= layer %.5f" e_chan e_layer)
    true (e_chan <= e_layer)

let test_winograd_tap_beats_layer_and_channel () =
  (* Fig. 4b: in the Winograd domain, tap-wise wins by a large margin while
     channel-wise barely helps. *)
  let w = resnet_like_weights 14 12 8 in
  let f4 = Transform.F4 in
  let e_layer = Error_analysis.winograd_error ~bits:8 ~variant:f4 ~strategy:Error_analysis.W_layer w in
  let e_chan = Error_analysis.winograd_error ~bits:8 ~variant:f4 ~strategy:Error_analysis.W_channel w in
  let e_tap = Error_analysis.winograd_error ~bits:8 ~variant:f4 ~strategy:Error_analysis.W_tap w in
  Alcotest.(check bool)
    (Printf.sprintf "tap %.5f < layer %.5f" e_tap e_layer)
    true (e_tap < e_layer);
  Alcotest.(check bool)
    (Printf.sprintf "tap %.5f < channel %.5f" e_tap e_chan)
    true (e_tap < e_chan)

let test_winograd_channel_tap_at_least_as_good () =
  let w = resnet_like_weights 15 10 8 in
  let f4 = Transform.F4 in
  let e_tap = Error_analysis.winograd_error ~bits:8 ~variant:f4 ~strategy:Error_analysis.W_tap w in
  let e_ct = Error_analysis.winograd_error ~bits:8 ~variant:f4 ~strategy:Error_analysis.W_channel_tap w in
  (* Finer granularity cannot be much worse; paper reports a further 1.06x
     improvement. *)
  Alcotest.(check bool)
    (Printf.sprintf "chan+tap %.5f <= 1.1 * tap %.5f" e_ct e_tap)
    true
    (e_ct <= 1.1 *. e_tap)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]) in
  Alcotest.run "twq_quant"
    [
      ( "quantizer",
        [
          Alcotest.test_case "ranges" `Quick test_qrange;
          Alcotest.test_case "scale_for" `Quick test_scale_for;
          Alcotest.test_case "quantize clamp" `Quick test_quantize_clamp;
          Alcotest.test_case "pow2 round up" `Quick test_pow2_round_up;
          qt prop_fake_quant_idempotent;
          qt prop_quant_error_bounded;
          Alcotest.test_case "affine" `Quick test_affine_quantizer;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "first observation" `Quick test_calibration_first_observation;
          Alcotest.test_case "ema" `Quick test_calibration_ema;
          Alcotest.test_case "abs" `Quick test_calibration_abs;
          Alcotest.test_case "taps" `Quick test_calibration_taps;
          Alcotest.test_case "percentile" `Quick test_percentile_calibration;
        ] );
      ( "tapwise",
        [
          Alcotest.test_case "F4 low noise" `Quick test_tapwise_f4_low_noise;
          Alcotest.test_case "tap-wise beats single-scale" `Quick test_tapwise_beats_single_scale_f4;
          Alcotest.test_case "F2 low noise" `Quick test_tapwise_f2_low_noise;
          Alcotest.test_case "more wino bits help" `Quick test_tapwise_more_wino_bits_help;
          Alcotest.test_case "int matches float ref" `Quick test_tapwise_int_matches_float_ref;
          Alcotest.test_case "shifts sane" `Quick test_tapwise_shifts_sane;
          Alcotest.test_case "shift spread" `Quick test_tapwise_shift_spread_f4;
          Alcotest.test_case "pow2 ratios" `Quick test_tapwise_pow2_scales_are_pow2_multiples;
          Alcotest.test_case "channel+tap granularity" `Quick test_tapwise_channel_tap_granularity;
          qt prop_tapwise_noise_bounded;
        ] );
      ( "qconv",
        [
          Alcotest.test_case "close to fp32" `Quick test_qconv_close_to_fp32;
          Alcotest.test_case "stride 2" `Quick test_qconv_stride2;
          Alcotest.test_case "int/float consistent" `Quick test_qconv_int_float_consistent;
          Alcotest.test_case "per-channel scales" `Quick test_qconv_per_channel_better;
          Alcotest.test_case "per-channel serialization" `Quick test_qconv_per_channel_serialization;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "density exact" `Quick test_pruning_density_exact;
          Alcotest.test_case "keeps largest" `Quick test_pruning_keeps_largest;
          Alcotest.test_case "full density" `Quick test_pruning_full_density_identity;
          Alcotest.test_case "invalid density" `Quick test_pruning_invalid_density;
          Alcotest.test_case "tie budget exact" `Quick test_pruning_tie_budget_exact;
          Alcotest.test_case "idempotent" `Quick test_pruning_idempotent;
          Alcotest.test_case "density = macs fraction" `Quick
            test_pruning_density_macs_consistent;
          Alcotest.test_case "noise monotone" `Quick test_pruning_layer_noise_monotone;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip exact" `Quick test_serialize_roundtrip_exact;
          Alcotest.test_case "channel-tap + bias" `Quick test_serialize_channel_tap_and_bias;
          Alcotest.test_case "file io" `Quick test_serialize_file_io;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
        ] );
      ( "error analysis",
        [
          Alcotest.test_case "relative error" `Quick test_relative_error_basics;
          Alcotest.test_case "optimal gamma beats naive" `Quick test_quantize_unit_beats_naive_max;
          Alcotest.test_case "spatial: channel <= layer" `Quick test_spatial_channel_beats_layer;
          Alcotest.test_case "winograd: tap wins" `Quick test_winograd_tap_beats_layer_and_channel;
          Alcotest.test_case "winograd: chan+tap" `Quick test_winograd_channel_tap_at_least_as_good;
        ] );
    ]
