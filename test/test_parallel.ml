(* Tests for the Twq_util.Parallel domain pool and the seq-vs-par
   equality of the parallelized hot-path kernels. *)

module Parallel = Twq_util.Parallel
module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Gconv = Twq_winograd.Gconv
module Conv = Twq_winograd.Conv
module Transform = Twq_winograd.Transform
module Qconv = Twq_quant.Qconv
module Quantizer = Twq_quant.Quantizer
module Synth = Twq_dataset.Synth_images
module Qat_model = Twq_nn.Qat_model
module Trainer = Twq_nn.Trainer
module Var = Twq_autodiff.Var

let with_domains n f =
  Parallel.set_num_domains n;
  Fun.protect ~finally:(fun () -> Parallel.clear_num_domains_override ()) f

(* ------------------------------------------------- qcheck properties *)

let prop_parallel_for_matches_seq =
  QCheck2.Test.make ~count:50 ~name:"parallel_for = sequential for"
    QCheck2.Gen.(triple (int_range 0 300) (int_range 1 40) (int_range 1 4))
    (fun (n, chunk, nd) ->
      let expected = Array.init n (fun i -> i * i) in
      let got = Array.make n (-1) in
      with_domains nd (fun () ->
          Parallel.parallel_for ~chunk ~lo:0 ~hi:n (fun i -> got.(i) <- i * i));
      got = expected)

let prop_map_array_matches_seq =
  QCheck2.Test.make ~count:50 ~name:"map_array = Array.map"
    QCheck2.Gen.(pair (array_size (int_range 0 200) (int_range (-1000) 1000))
                   (int_range 1 4))
    (fun (arr, nd) ->
      let f x = (x * 7) + 3 in
      let got = with_domains nd (fun () -> Parallel.map_array f arr) in
      got = Array.map f arr)

let prop_reduce_matches_seq =
  QCheck2.Test.make ~count:50 ~name:"parallel_for_reduce = sequential fold"
    QCheck2.Gen.(triple (int_range 0 300) (int_range 1 40) (int_range 1 4))
    (fun (n, chunk, nd) ->
      let expected = ref 0 in
      for i = 0 to n - 1 do
        expected := !expected + (i * 3)
      done;
      let got =
        with_domains nd (fun () ->
            Parallel.parallel_for_reduce ~chunk ~lo:0 ~hi:n ~init:0
              ~combine:( + ) (fun i -> i * 3))
      in
      got = !expected)

(* ------------------------------------------------------ deterministic *)

let test_determinism_four_domains () =
  (* Same float computation, three times under 4 domains and once
     sequentially: results must be bit-identical (ownership partitioning,
     no reductions). *)
  let n = 1000 in
  let run () =
    let out = Array.make n 0.0 in
    Parallel.parallel_for ~chunk:7 ~lo:0 ~hi:n (fun i ->
        out.(i) <- sin (float_of_int i) *. 1.000001);
    out
  in
  let seq = with_domains 1 run in
  with_domains 4 (fun () ->
      let a = run () and b = run () and c = run () in
      Alcotest.(check bool) "par runs identical" true (a = b && b = c);
      Alcotest.(check bool) "par = seq bitwise" true (a = seq))

let test_reduce_deterministic_floats () =
  (* Float reduction: fixed chunk grid means chunk-ordered combination is
     identical for any domain count. *)
  let n = 777 in
  let f i = Float.sin (float_of_int i) /. 3.0 in
  let run () =
    Parallel.parallel_for_reduce ~chunk:13 ~lo:0 ~hi:n ~init:0.0
      ~combine:( +. ) f
  in
  let r1 = with_domains 1 run in
  let r4 = with_domains 4 run in
  Alcotest.(check bool) "float reduce stable across domain counts" true
    (Int64.equal (Int64.bits_of_float r1) (Int64.bits_of_float r4))

let test_env_override () =
  Unix.putenv "TWQ_NUM_DOMAINS" "3";
  Parallel.clear_num_domains_override ();
  Alcotest.(check int) "env respected" 3 (Parallel.num_domains ());
  let out = Array.make 64 0 in
  Parallel.parallel_for ~chunk:4 ~lo:0 ~hi:64 (fun i -> out.(i) <- i + 1);
  Alcotest.(check bool) "correct under env pool" true
    (out = Array.init 64 (fun i -> i + 1));
  Unix.putenv "TWQ_NUM_DOMAINS" "1"

let test_nested_calls () =
  (* A parallel_for inside a parallel_for must degrade to sequential on
     the inner level, not deadlock, and produce the right result. *)
  with_domains 4 (fun () ->
      let rows = 8 and cols = 32 in
      let out = Array.make_matrix rows cols 0 in
      Parallel.parallel_for ~chunk:1 ~lo:0 ~hi:rows (fun r ->
          Parallel.parallel_for ~chunk:4 ~lo:0 ~hi:cols (fun c ->
              out.(r).(c) <- (r * 100) + c));
      let ok = ref true in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if out.(r).(c) <> (r * 100) + c then ok := false
        done
      done;
      Alcotest.(check bool) "nested results" true !ok)

let test_sequential_forces_seq () =
  with_domains 4 (fun () ->
      let out = Array.make 100 0 in
      Parallel.sequential (fun () ->
          Parallel.parallel_for ~chunk:1 ~lo:0 ~hi:100 (fun i -> out.(i) <- i));
      Alcotest.(check bool) "sequential wrapper result" true
        (out = Array.init 100 Fun.id))

let test_exceptions_propagate () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "exn from chunk re-raised"
        (Invalid_argument "boom") (fun () ->
          Parallel.parallel_for ~chunk:1 ~lo:0 ~hi:32 (fun i ->
              if i = 17 then invalid_arg "boom"));
      (* pool must still be usable afterwards *)
      let out = Array.make 16 0 in
      Parallel.parallel_for ~chunk:1 ~lo:0 ~hi:16 (fun i -> out.(i) <- i);
      Alcotest.(check bool) "pool alive after exn" true
        (out = Array.init 16 Fun.id))

(* ----------------------------------------- kernel seq-vs-par equality *)

let test_gconv_seq_par_equal () =
  let rng = Twq_util.Rng.create 42 in
  let x = Tensor.rand_gaussian rng [| 2; 3; 9; 9 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 4; 3; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
  let g = Gconv.create ~m:4 ~r:3 () in
  let seq =
    with_domains 4 (fun () ->
        Parallel.sequential (fun () -> Gconv.conv2d g ~pad:1 ~x ~w ()))
  in
  let par = with_domains 4 (fun () -> Gconv.conv2d g ~pad:1 ~x ~w ()) in
  Alcotest.(check bool) "gconv outputs bitwise equal" true
    (Tensor.approx_equal ~tol:0.0 seq par)

let test_wino_conv_seq_par_equal () =
  let rng = Twq_util.Rng.create 43 in
  let x = Tensor.rand_gaussian rng [| 1; 4; 12; 12 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 5; 4; 3; 3 |] ~mu:0.0 ~sigma:0.5 in
  let seq =
    with_domains 4 (fun () ->
        Parallel.sequential (fun () ->
            Conv.conv2d ~variant:Transform.F4 ~pad:1 ~x ~w ()))
  in
  let par =
    with_domains 4 (fun () -> Conv.conv2d ~variant:Transform.F4 ~pad:1 ~x ~w ())
  in
  Alcotest.(check bool) "winograd F4 outputs bitwise equal" true
    (Tensor.approx_equal ~tol:0.0 seq par)

let test_qconv_seq_par_equal () =
  let rng = Twq_util.Rng.create 44 in
  let x = Tensor.rand_gaussian rng [| 2; 4; 10; 10 |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| 6; 4; 3; 3 |] ~mu:0.0 ~sigma:0.4 in
  let layer = Qconv.calibrate ~w ~sample_inputs:[ x ] ~stride:1 ~pad:1 () in
  let xq = Quantizer.quantize_tensor ~bits:8 ~scale:layer.Qconv.s_x x in
  let seq =
    with_domains 4 (fun () ->
        Parallel.sequential (fun () -> Qconv.forward_int layer xq))
  in
  let par = with_domains 4 (fun () -> Qconv.forward_int layer xq) in
  let equal =
    Itensor.numel seq = Itensor.numel par
    && Array.for_all2 ( = ) seq.Itensor.data par.Itensor.data
  in
  Alcotest.(check bool) "qconv int outputs identical" true equal

let test_data_parallel_trainer_deterministic () =
  (* One data-parallel training epoch must produce bit-identical losses
     and parameters on 1 and 4 domains: the sub-batch partition is fixed,
     and gradient sinks merge in chunk order. *)
  let spec =
    { Synth.default_spec with Synth.n_train = 16; n_valid = 8; n_test = 8 }
  in
  let train_once nd =
    with_domains nd (fun () ->
        let d = Synth.generate ~spec ~seed:5 () in
        let model =
          Qat_model.create (Qat_model.default_config Qat_model.Fp32) ~seed:3
        in
        let opts =
          {
            Trainer.default_options with
            Trainer.epochs = 1;
            batch_size = 8;
            data_parallel = true;
          }
        in
        let h = Trainer.train model d opts in
        (h.Trainer.train_loss, List.map Var.value (Qat_model.params model)))
  in
  let l1, p1 = train_once 1 in
  let l4, p4 = train_once 4 in
  Alcotest.(check bool) "losses bitwise equal" true (l1 = l4);
  Alcotest.(check bool) "params bitwise equal" true
    (List.for_all2 (Tensor.approx_equal ~tol:0.0) p1 p4)

(* ----------------------------------------------------------- registry *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_parallel_for_matches_seq; prop_map_array_matches_seq;
        prop_reduce_matches_seq ]
  in
  Alcotest.run "parallel"
    [
      ("qcheck", qsuite);
      ( "pool",
        [
          Alcotest.test_case "determinism under 4 domains" `Quick
            test_determinism_four_domains;
          Alcotest.test_case "float reduce deterministic" `Quick
            test_reduce_deterministic_floats;
          Alcotest.test_case "TWQ_NUM_DOMAINS env" `Quick test_env_override;
          Alcotest.test_case "nested calls are safe" `Quick test_nested_calls;
          Alcotest.test_case "sequential wrapper" `Quick
            test_sequential_forces_seq;
          Alcotest.test_case "exception propagation" `Quick
            test_exceptions_propagate;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "gconv seq = par" `Quick test_gconv_seq_par_equal;
          Alcotest.test_case "winograd-f4 seq = par" `Quick
            test_wino_conv_seq_par_equal;
          Alcotest.test_case "qconv seq = par" `Quick test_qconv_seq_par_equal;
          Alcotest.test_case "data-parallel trainer deterministic" `Slow
            test_data_parallel_trainer_deterministic;
        ] );
    ]
