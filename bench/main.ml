(* Benchmark harness: regenerates every table and figure of the paper and
   then times the computational kernel behind each one with Bechamel.

   - The regeneration pass prints the actual tables (simulator-backed
     experiments at full size; the QAT-training experiments in `fast` mode
     so the whole run stays within minutes — use `bin/main.exe run tab2
     tab3` for the paper-scale training sweep).
   - The Bechamel pass registers one Test.make per table/figure whose
     workload is that experiment's core kernel at a reduced size, plus
     micro-benchmarks of the central library kernels and paired
     sequential-vs-parallel runs of the domain-parallel hot paths
     (Winograd gconv, int8 qconv, the F4 fp32 conv, and the network
     simulator sweep).  Set TWQ_NUM_DOMAINS to size the pool.

   Modes:
     bench/main.exe                 tables + Bechamel (interactive output)
     bench/main.exe --json [-o F]   machine-readable {kernel, mean_ns,
                                    stddev} records written to F (default
                                    BENCH_ci.json) — the CI smoke stage.
     bench/main.exe --filter RE[,RE...]
                                    restrict any mode to kernels whose
                                    name matches one of the comma-
                                    separated regexes (Str syntax) —
                                    e.g. `--filter '-micro$'` for just
                                    the GEMM microkernel rows, or
                                    `--filter 'sparse,dense'` for the
                                    pruned-execution pairs.
     bench/main.exe --list          print the selected kernel names, one
                                    per line, and exit — for discovering
                                    what --filter can match.
     bench/main.exe --compare [--strict] OLD.json NEW.json
                                    diff two --json outputs; warns on
                                    kernels whose mean regressed by more
                                    than 25%.  With --strict a tier-1
                                    regression is an error (exit 1) —
                                    CI's blocking gate, skippable with
                                    the allow-bench-regression label. *)

open Bechamel
open Toolkit
module T = Twq.Winograd.Transform
module Tensor = Twq.Tensor
module Ops = Twq.Ops
module Zoo = Twq.Nn.Zoo
module Op = Twq.Sim.Operator
module Arch = Twq.Sim.Arch
module NR = Twq.Sim.Network_runner
module Parallel = Twq.Parallel
module Registry = Twq_experiments.Registry

(* ------------------------------------------------------- table printing *)

let training_experiments = [ "tab2"; "tab3" ]

let print_all_tables () =
  List.iter
    (fun e ->
      let fast = List.mem e.Registry.name training_experiments in
      Printf.printf "==== %s — %s%s ====\n%!" e.Registry.name
        e.Registry.description
        (if fast then " [fast mode]" else "");
      print_string (e.Registry.run ~fast ());
      print_newline ())
    Registry.all

(* ----------------------------------------------------- kernel workloads *)

let rng = Twq.Rng.create 2024
let x_small = Tensor.rand_gaussian rng [| 1; 8; 16; 16 |] ~mu:0.0 ~sigma:1.0
let w_small = Tensor.rand_gaussian rng [| 8; 8; 3; 3 |] ~mu:0.0 ~sigma:0.3

let tapwise_layer =
  Twq.Quant.Tapwise.calibrate
    ~config:(Twq.Quant.Tapwise.default_config T.F4)
    ~w:w_small ~sample_inputs:[ x_small ] ~pad:1 ()

let x_int =
  Twq.Quant.Quantizer.quantize_tensor ~bits:8
    ~scale:tapwise_layer.Twq.Quant.Tapwise.s_x x_small

let synthetic_layer =
  { Zoo.name = "bench"; cin = 128; cout = 128; out_h = 32; out_w = 32; k = 3;
    stride = 1; repeat = 1 }

let weight_ensemble =
  Twq_experiments.Exp_common.resnet_like_weight_ensemble ~seed:77 ~layers:2

let qat_step =
  (* One training step of the tap-wise WA model — the Table II/III kernel. *)
  let data = Twq_experiments.Exp_common.dataset ~fast:true in
  let model =
    Twq.Nn.Qat_model.create
      { (Twq.Nn.Qat_model.default_config
           (Twq.Nn.Qat_model.Wa
              { Twq.Nn.Qat_model.variant = T.F4; wino_bits = 8; tapwise = true;
                pow2 = true; learned = true }))
        with Twq.Nn.Qat_model.classes = data.Twq.Dataset.Synth_images.classes }
      ~seed:5
  in
  let batch, labels =
    Twq.Dataset.Synth_images.batch data data.Twq.Dataset.Synth_images.train
      (Array.init 8 Fun.id)
  in
  fun () ->
    let logits = Twq.Nn.Qat_model.forward model batch in
    let loss = Twq.Autodiff.Fn.softmax_cross_entropy ~logits ~labels in
    Twq.Autodiff.Var.backward loss;
    Twq.Autodiff.Optim.zero_grads (Twq.Nn.Qat_model.params model)

(* -------------------- paired seq-vs-par domain-parallel hot-path kernels *)

let x_par = Tensor.rand_gaussian rng [| 2; 16; 24; 24 |] ~mu:0.0 ~sigma:1.0
let w_par = Tensor.rand_gaussian rng [| 16; 16; 3; 3 |] ~mu:0.0 ~sigma:0.3
let gconv44 = Twq.Winograd.Gconv.create ~m:4 ~r:3 ()

let qconv_layer =
  Twq.Quant.Qconv.calibrate ~w:w_par ~sample_inputs:[ x_par ] ~stride:1 ~pad:1 ()

let xq_par =
  Twq.Quant.Quantizer.quantize_tensor ~bits:8
    ~scale:qconv_layer.Twq.Quant.Qconv.s_x x_par

let gconv_once () =
  ignore (Twq.Winograd.Gconv.conv2d gconv44 ~pad:1 ~x:x_par ~w:w_par ())

let qconv_once () = ignore (Twq.Quant.Qconv.forward_int qconv_layer xq_par)

let winof4_once () =
  ignore (Twq.Winograd.Conv.conv2d ~variant:T.F4 ~pad:1 ~x:x_par ~w:w_par ())

let netsim_once () =
  ignore (NR.run Arch.default (NR.P_winograd T.F4) (Zoo.resnet34 ()) ~batch:1)

(* The -par rows must actually run a worker pool: on boxes where
   [Domain.recommended_domain_count () = 1] (single-core CI runners) the
   pool degenerates to the sequential path and the pair times the same
   code twice — the flat gconv/qconv seq≈par rows in older baselines.
   Force at least two domains around each -par invocation (the override
   is a cheap ref write; the pool itself persists between calls).  On
   single-core hosts the pair therefore measures pool overhead; on
   multicore hosts, real scaling. *)
let par_domains = Stdlib.max 2 (Stdlib.min 4 (Parallel.num_domains ()))

let paired name f =
  [
    (name ^ "-seq", fun () -> Parallel.sequential f);
    ( name ^ "-par",
      fun () ->
        Parallel.set_num_domains par_domains;
        Fun.protect ~finally:Parallel.clear_num_domains_override f );
  ]

(* ------------------------- paired tile-major vs tap-major kernel runs *)
(* Same workload through the reference (tile-major, per-tile tensors) and
   production (tap-major, allocation-free Kernels) paths; both run
   sequentially so the pair isolates the kernel reformulation itself. *)

let xi_par =
  Twq.Itensor.init [| 2; 16; 24; 24 |] (fun _ -> Twq.Rng.int rng 255 - 127)

let wi_par =
  Twq.Itensor.init [| 16; 16; 3; 3 |] (fun _ -> Twq.Rng.int rng 255 - 127)

let tapwise_layer_par =
  Twq.Quant.Tapwise.calibrate
    ~config:(Twq.Quant.Tapwise.default_config T.F4)
    ~w:(Tensor.rand_gaussian rng [| 8; 8; 3; 3 |] ~mu:0.0 ~sigma:0.3)
    ~sample_inputs:[ Tensor.rand_gaussian rng [| 1; 8; 24; 24 |] ~mu:0.0 ~sigma:1.0 ]
    ~pad:1 ()

let xi_tapwise =
  Twq.Quant.Quantizer.quantize_tensor ~bits:8
    ~scale:tapwise_layer_par.Twq.Quant.Tapwise.s_x
    (Tensor.rand_gaussian rng [| 2; 8; 24; 24 |] ~mu:0.0 ~sigma:1.0)

let gconv45 = Twq.Winograd.Gconv.create ~m:4 ~r:5 ()
let w45_par = Tensor.rand_gaussian rng [| 16; 16; 5; 5 |] ~mu:0.0 ~sigma:0.2

let tap_vs_tile name tap tile =
  [
    (name ^ "-tap", fun () -> Parallel.sequential tap);
    (name ^ "-tile", fun () -> Parallel.sequential tile);
  ]

(* ------------------- paired microkernel vs naive per-tap GEMM runs *)
(* ResNet-ish shape (Cin = Cout = 64, 16x16) where the per-tap GEMM
   dominates: the tap-major driver with the register-tiled Microkernel
   engine against the naive triple-loop [_ref] oracle.  Both sequential,
   so the pair isolates the GEMM blocking itself. *)

module WK = Twq.Winograd.Kernels

let kf4_gemm = WK.f32_specialized T.F4
let ki4_gemm = WK.i32_specialized T.F4

let scale2_f4 =
  let s = T.bt_scale T.F4 * T.g_scale T.F4 * T.at_scale T.F4 in
  s * s

let x_gemm = Tensor.rand_gaussian rng [| 1; 64; 16; 16 |] ~mu:0.0 ~sigma:1.0
let w_gemm = Tensor.rand_gaussian rng [| 64; 64; 3; 3 |] ~mu:0.0 ~sigma:0.3

let xi_gemm =
  Twq.Itensor.init [| 1; 64; 16; 16 |] (fun _ -> Twq.Rng.int rng 255 - 127)

let wi_gemm =
  Twq.Itensor.init [| 64; 64; 3; 3 |] (fun _ -> Twq.Rng.int rng 255 - 127)

(* F(6,3) big-tile exact integer pair: the RNS per-modulus engine (CRT
   reconstruction fused into the gather) against the full-range exact
   direct path on the same tensors.  Both sequential; the pair prices
   what the residue decomposition costs in software (on hardware it is
   what makes the F6 accumulator width feasible at all). *)
let ki6_gemm = WK.i32_specialized T.F6

let scale2_f6 =
  let s = T.bt_scale T.F6 * T.g_scale T.F6 * T.at_scale T.F6 in
  s * s

let rns_plan_f6 =
  let module Rns = Twq.Winograd.Rns in
  match Rns.suggest_basis ~m:6 ~r:3 ~cin:64 () with
  | Ok basis -> Rns.plan_exn ~m:6 ~r:3 ~basis ~cin:64 ()
  | Error e -> failwith (Rns.error_to_string e)

let micro_vs_naive name micro naive =
  [
    (name ^ "-micro", fun () -> Parallel.sequential micro);
    (name ^ "-naive", fun () -> Parallel.sequential naive);
  ]

(* --------------------- paired sparse vs dense pruned per-tap GEMMs *)
(* The compressed-panel driver against the register-tiled dense GEMM on
   the same pruned packed panels — one tap of the ResNet-ish 64x64
   workload above (k = cin = 64, 64 output columns, 192 tile rows).  The
   B panel is pruned to the target density before packing, so the pair
   isolates exactly what skipping exact zeros buys at that density; the
   -dense row doubles as the guard that the dense path's numbers are
   untouched by the sparse machinery. *)

module MK = Twq.Winograd.Microkernel

let gemm_k = 64
let gemm_cols = 64

let sparse_gemm_pair density tag =
  let cfg = MK.config () in
  let mr = cfg.MK.mr and nr = cfg.MK.nr and kc = cfg.MK.kc in
  let gemm_rows_p = 48 * mr in
  let cols_p = MK.round_up gemm_cols nr in
  let r = Twq.Rng.create (4242 + int_of_float (100.0 *. density)) in
  let vp =
    Array.init (gemm_rows_p * gemm_k) (fun _ -> Twq.Rng.int r 255 - 127)
  in
  let up =
    Array.init (cols_p * gemm_k) (fun i ->
        let jb = i / (gemm_k * nr) and jr = i mod nr in
        if jb * nr + jr >= gemm_cols then 0 (* pad lane *)
        else if Twq.Rng.float r 1.0 < density then
          1 + Twq.Rng.int r 126 (* nonzero by construction *)
        else 0)
  in
  let sp = MK.compress_panel ~nr ~k:gemm_k ~cols:gemm_cols up ~uo:0 in
  let c = Array.make (gemm_rows_p * cols_p) 0 in
  [
    ( Printf.sprintf "tapwise-gemm-sparse-%s" tag,
      fun () ->
        MK.gemm_i32_sparse ~mr ~rows_p:gemm_rows_p ~sp ~vp ~vo:0 ~c ~co:0
          ~cstride:cols_p );
    ( Printf.sprintf "tapwise-gemm-dense-%s" tag,
      fun () ->
        MK.gemm_i32 ~mr ~nr ~kc ~rows_p:gemm_rows_p ~cols_p ~k:gemm_k ~vp
          ~vo:0 ~up ~uo:0 ~c ~co:0 ~cstride:cols_p );
  ]

(* ---------------------- paired batch-1 vs batch-N serving episodes *)
(* One full closed-loop serving episode (server up, 24 requests through
   the dynamic batcher, graceful drain) per run.  The batch-1/batch-8
   pair isolates what batching buys end-to-end: per-batch fixed costs
   (tap-major weight re-layout, dispatch) amortized over the batch. *)

module Serve = Twq.Serve

let serve_model, serve_dims =
  let g =
    Twq.Nn.Passes.fold_bn
      (Twq.Nn.Gmodels.resnet20 ~rng:(Twq.Rng.create 7) ~width_div:2 ())
  in
  let cal = Tensor.rand_gaussian rng [| 2; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0 in
  ( Serve.Model.Graph (Twq.Nn.Int_graph.quantize g ~calibration:cal ()),
    [| 3; 8; 8 |] )

let serve_input i =
  Tensor.rand_gaussian (Twq.Rng.create (1000 + i)) [| 3; 8; 8 |] ~mu:0.0
    ~sigma:1.0

let serve_episode ~max_batch () =
  let config =
    { Serve.Server.default_config with
      Serve.Server.max_batch;
      max_delay = (if max_batch = 1 then 0.0 else 0.001);
      capacity = 64 }
  in
  let server = Serve.Server.for_model ~config serve_model ~input_dims:serve_dims () in
  let s =
    Serve.Loadgen.run ~server ~make_input:serve_input ~requests:24
      ~concurrency:8 ()
  in
  Serve.Server.shutdown server;
  assert (s.Serve.Loadgen.completed = 24)

(* ------------------------ planned vs interpreted integer inference *)

let serve_graph =
  match serve_model with Serve.Model.Graph g -> g | Serve.Model.Net _ -> assert false

let plan_input =
  Tensor.rand_gaussian (Twq.Rng.create 31) [| 4; 3; 8; 8 |] ~mu:0.0 ~sigma:1.0

let deploy_net =
  let model =
    Twq.Nn.Qat_model.create
      (Twq.Nn.Qat_model.default_config Twq.Nn.Qat_model.Fp32)
      ~seed:41
  in
  let cal =
    Tensor.rand_gaussian (Twq.Rng.create 42) [| 2; 3; 12; 12 |] ~mu:0.0 ~sigma:1.0
  in
  Twq.Nn.Deploy.export model ~calibration:cal ()

let deploy_input =
  Tensor.rand_gaussian (Twq.Rng.create 43) [| 2; 3; 12; 12 |] ~mu:0.0 ~sigma:1.0

(* ------------- paired sparse vs dense pruned end-to-end inference *)
(* The same deterministic magnitude prune of the serving ResNet-20,
   packed once with the compressed-panel driver enabled (threshold 1.0:
   every tap below full density goes sparse) and once with it disabled
   (threshold 0.0: the byte-for-byte dense path).  Identical weights,
   bit-identical logits — the pair prices the execution strategy
   alone. *)

let prune_packed ~threshold ~density graph =
  let t0 = MK.sparse_threshold () in
  MK.set_sparse_threshold threshold;
  Fun.protect
    ~finally:(fun () -> MK.set_sparse_threshold t0)
    (fun () -> Twq.Nn.Int_graph.prune graph ~density)

let sparse_graph_pair density tag =
  let sparse = prune_packed ~threshold:1.0 ~density serve_graph in
  let dense = prune_packed ~threshold:0.0 ~density serve_graph in
  [
    ( Printf.sprintf "intgraph-resnet20-sparse-%s" tag,
      fun () -> ignore (Twq.Nn.Int_graph.run sparse plan_input) );
    ( Printf.sprintf "intgraph-resnet20-dense-%s" tag,
      fun () -> ignore (Twq.Nn.Int_graph.run dense plan_input) );
  ]

(* One (name, thunk) per kernel; feeds both the Bechamel pass and the
   JSON timing pass. *)
let kernels : (string * (unit -> unit)) list =
  [
    ( "fig1-weight-transform-sweep",
      fun () ->
        List.iter
          (fun w ->
            let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
            for co = 0 to cout - 1 do
              for ci = 0 to cin - 1 do
                let f =
                  Tensor.init [| 3; 3 |] (fun i -> Tensor.get4 w co ci i.(0) i.(1))
                in
                ignore (T.weight_tile T.F4 f)
              done
            done)
          weight_ensemble );
    ( "tab1-dfg-cse",
      fun () ->
        ignore (Twq.Hw.Dfg.apply_cse (Twq.Hw.Dfg.of_matrix (T.bt_rat T.F4))) );
    ("tab2-qat-train-step", qat_step);
    ( "tab3-qat-eval-forward",
      fun () -> ignore (Twq.Quant.Tapwise.forward tapwise_layer x_small) );
    ( "fig4-tap-error-analysis",
      fun () ->
        ignore
          (Twq.Quant.Error_analysis.winograd_error ~bits:8 ~variant:T.F4
             ~strategy:Twq.Quant.Error_analysis.W_tap
             (List.hd weight_ensemble)) );
    ( "tab4-operator-sim",
      fun () ->
        ignore (Op.run Arch.default Op.Im2col synthetic_layer ~batch:1);
        ignore (Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1) );
    ( "tab5-area-power-model",
      fun () ->
        ignore (Twq.Hw.Area_power.engine_area_mm2 Twq.Hw.Area_power.input_engine);
        ignore (Twq.Hw.Area_power.cube_tops_per_watt ~winograd:true) );
    ( "fig5-breakdown-sim",
      fun () ->
        let r = Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1 in
        ignore r.Op.busy );
    ( "tab6-nvdla-model",
      fun () ->
        let cfg = Twq.Nvdla.default ~bandwidth_words_per_s:42.7e9 in
        ignore (Twq.Nvdla.best cfg synthetic_layer ~batch:8) );
    ("tab7-network-sim-resnet34", netsim_once);
    ( "fig6-energy-accounting",
      fun () ->
        let r = Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1 in
        ignore r.Op.energy );
    ( "kernel-winograd-f4-conv-fp32",
      fun () ->
        ignore
          (Twq.Winograd.Conv.conv2d ~variant:T.F4 ~pad:1 ~x:x_small ~w:w_small ()) );
    ( "kernel-tapwise-int8-forward",
      fun () -> ignore (Twq.Quant.Tapwise.forward_int tapwise_layer x_int) );
    ( "kernel-im2col-conv-fp32",
      fun () -> ignore (Ops.conv2d_im2col ~stride:1 ~pad:1 ~x:x_small ~w:w_small ()) );
    ( "ext-graph-quantize-resnet20",
      let g =
        Twq.Nn.Passes.fold_bn
          (Twq.Nn.Gmodels.resnet20 ~rng:(Twq.Rng.create 12) ~width_div:4 ())
      in
      let cal = Tensor.rand_gaussian rng [| 1; 3; 16; 16 |] ~mu:0.0 ~sigma:1.0 in
      fun () -> ignore (Twq.Nn.Int_graph.quantize g ~calibration:cal ()) );
    ( "ext-trace-export",
      fun () ->
        let r = Op.run Arch.default (Op.Winograd T.F4) synthetic_layer ~batch:1 in
        ignore (Twq.Sim.Trace.to_chrome_json r) );
  ]
  @ paired "gconv" gconv_once
  @ paired "qconv" qconv_once
  @ paired "wino-f4" winof4_once
  @ paired "netsim-resnet34" netsim_once
  @ tap_vs_tile "wino-f4-fp32"
      (fun () ->
        ignore (Twq.Winograd.Conv.conv2d ~variant:T.F4 ~pad:1 ~x:x_par ~w:w_par ()))
      (fun () ->
        ignore
          (Twq.Winograd.Conv.conv2d_ref ~variant:T.F4 ~pad:1 ~x:x_par ~w:w_par ()))
  @ tap_vs_tile "wino-f2-fp32"
      (fun () ->
        ignore (Twq.Winograd.Conv.conv2d ~variant:T.F2 ~pad:1 ~x:x_par ~w:w_par ()))
      (fun () ->
        ignore
          (Twq.Winograd.Conv.conv2d_ref ~variant:T.F2 ~pad:1 ~x:x_par ~w:w_par ()))
  @ tap_vs_tile "wino-f6-fp32"
      (fun () ->
        ignore (Twq.Winograd.Conv.conv2d ~variant:T.F6 ~pad:1 ~x:x_par ~w:w_par ()))
      (fun () ->
        ignore
          (Twq.Winograd.Conv.conv2d_ref ~variant:T.F6 ~pad:1 ~x:x_par ~w:w_par ()))
  @ tap_vs_tile "wino-f4-int8"
      (fun () ->
        ignore
          (Twq.Winograd.Conv.conv2d_int_bit_true ~variant:T.F4 ~pad:1 ~x:xi_par
             ~w:wi_par ()))
      (fun () ->
        ignore
          (Twq.Winograd.Conv.conv2d_int_bit_true_ref ~variant:T.F4 ~pad:1 ~x:xi_par
             ~w:wi_par ()))
  @ tap_vs_tile "tapwise-int8"
      (fun () -> ignore (Twq.Quant.Tapwise.forward_int tapwise_layer_par xi_tapwise))
      (fun () ->
        ignore (Twq.Quant.Tapwise.forward_int_ref tapwise_layer_par xi_tapwise))
  @ micro_vs_naive "wino-f4-fp32"
      (fun () -> ignore (WK.conv2d_f32 kf4_gemm ~pad:1 ~x:x_gemm ~w:w_gemm))
      (fun () -> ignore (WK.conv2d_f32_ref kf4_gemm ~pad:1 ~x:x_gemm ~w:w_gemm))
  @ micro_vs_naive "wino-f4-int8"
      (fun () ->
        ignore
          (WK.conv2d_i32_exact ki4_gemm ~scale2:scale2_f4 ~pad:1 ~x:xi_gemm
             ~w:wi_gemm))
      (fun () ->
        ignore
          (WK.conv2d_i32_exact_ref ki4_gemm ~scale2:scale2_f4 ~pad:1 ~x:xi_gemm
             ~w:wi_gemm))
  @ [
      ( "wino-f6-rns-crt",
        fun () ->
          Parallel.sequential (fun () ->
              ignore
                (Twq.Winograd.Rns.conv2d rns_plan_f6 ~pad:1 ~x:xi_gemm
                   ~w:wi_gemm ())) );
      ( "wino-f6-rns-direct",
        fun () ->
          Parallel.sequential (fun () ->
              ignore
                (WK.conv2d_i32_exact ki6_gemm ~scale2:scale2_f6 ~pad:1
                   ~x:xi_gemm ~w:wi_gemm)) );
    ]
  @ tap_vs_tile "gconv-m4r5-fp32"
      (fun () ->
        ignore (Twq.Winograd.Gconv.conv2d gconv45 ~pad:2 ~x:x_par ~w:w45_par ()))
      (fun () ->
        ignore (Twq.Winograd.Gconv.conv2d_ref gconv45 ~pad:2 ~x:x_par ~w:w45_par ()))
  @ [
      ("serve-batch1", serve_episode ~max_batch:1);
      ("serve-batch8", serve_episode ~max_batch:8);
    ]
  (* Planned vs interpreted execution of the same integer graphs: the
     compiled plan (fused epilogues, arena reuse, zero steady-state
     allocation) against the node-by-node reference interpreter. *)
  @ [
      ( "intgraph-resnet20-planned",
        fun () -> ignore (Twq.Nn.Int_graph.run serve_graph plan_input) );
      ( "intgraph-resnet20-interp",
        fun () -> ignore (Twq.Nn.Int_graph.run_ref serve_graph plan_input) );
      ( "deploy-forward-planned",
        fun () -> ignore (Twq.Nn.Deploy.forward deploy_net deploy_input) );
      ( "deploy-forward-interp",
        fun () -> ignore (Twq.Nn.Deploy.forward_ref deploy_net deploy_input) );
    ]
  (* Sparse-vs-dense execution of pruned weights, at the per-tap GEMM
     and at the end-to-end pruned-ResNet-20 level, at 30% and 50%
     density. *)
  @ sparse_gemm_pair 0.3 "d30"
  @ sparse_gemm_pair 0.5 "d50"
  @ sparse_graph_pair 0.3 "d30"
  @ sparse_graph_pair 0.5 "d50"
  (* Fleet serving hot paths: one full wire frame encode+decode of a
     shard-sized inference request, and the router's per-request ring
     walk over a fleet-sized ring. *)
  @ [
      ( "serve-wire-roundtrip",
        let data = Array.init 192 (fun i -> float_of_int i *. 0.173) in
        fun () ->
          let frame =
            Serve.Wire.encode ~id:42L
              (Serve.Wire.Infer
                 { key = "bench-key"; deadline = None; dims = [| 3; 8; 8 |]; data })
          in
          match Serve.Wire.decode_string frame with
          | Ok _ -> ()
          | Error _ -> assert false );
      ( "router-hash",
        let ring =
          Serve.Router.Ring.create
            (List.init 8 (fun i -> Printf.sprintf "/run/twq/shard-%d.sock" i))
        in
        fun () ->
          for i = 0 to 63 do
            ignore (Serve.Router.Ring.route ring (Printf.sprintf "key-%d" i))
          done );
    ]

(* ----------------------------------------------------- bechamel harness *)

let benchmark kernels =
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"twq" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Printf.printf "%-40s %18s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 60 '-');
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %18.0f\n" name est
          | _ -> Printf.printf "%-40s %18s\n" name "n/a")
        (List.sort compare rows))
    merged

(* --------------------------------------------------------- json harness *)

(* Hand-rolled timing for CI: cheap, bounded, and dependency-light.  Each
   kernel is timed over [samples] batches of [reps] runs; mean and stddev
   are per-run nanoseconds across batches; minor heap words are
   [Gc.minor_words] deltas per run ([Gc.quick_stat].minor_words only
   advances at minor collections, undercounting low-allocation
   kernels), major words are [Gc.quick_stat] deltas.  Both are this
   domain only — kernels that farm work to pool domains allocate there
   too, but the caller's share is what steady-state serving cares
   about. *)
let time_kernel f =
  let now = Unix.gettimeofday in
  f ();
  (* warm-up + single-run estimate *)
  let t0 = now () in
  f ();
  let once = now () -. t0 in
  let reps, samples =
    if once > 1.0 then (1, 2)
    else if once > 0.05 then (1, 5)
    else (max 1 (int_of_float (0.01 /. Float.max 1e-7 once)), 7)
  in
  let per_run = Array.make samples 0.0 in
  let m0 = Gc.minor_words () in
  let g0 = Gc.quick_stat () in
  for s = 0 to samples - 1 do
    let t0 = now () in
    for _ = 1 to reps do
      f ()
    done;
    per_run.(s) <- (now () -. t0) /. float_of_int reps *. 1e9
  done;
  let g1 = Gc.quick_stat () in
  let m1 = Gc.minor_words () in
  let runs = float_of_int (samples * reps) in
  ( Twq.Stats.mean per_run,
    Twq.Stats.stddev per_run,
    (m1 -. m0) /. runs,
    (g1.Gc.major_words -. g0.Gc.major_words) /. runs )

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let run_json kernels out_file =
  Printf.printf "Writing %d kernel timings to %s (TWQ_NUM_DOMAINS=%d)\n%!"
    (List.length kernels) out_file (Parallel.num_domains ());
  let records =
    List.map
      (fun (name, f) ->
        let mean_ns, stddev, minor_w, major_w = time_kernel f in
        Printf.printf "  %-40s %14.0f ns  ± %-10.0f %12.0f minor-w\n%!" name
          mean_ns stddev minor_w;
        (* New fields go after stddev so older parsers' prefix scan still
           matches. *)
        Printf.sprintf
          "  {\"kernel\": \"%s\", \"mean_ns\": %.1f, \"stddev\": %.1f, \
           \"minor_w\": %.0f, \"major_w\": %.0f}"
          (json_escape name) mean_ns stddev minor_w major_w)
      kernels
  in
  let oc = open_out out_file in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" records);
  output_string oc "\n]\n";
  close_out oc

(* -------------------------------------------------------- compare mode *)

(* Parses the records [run_json] writes: one
   {"kernel": ..., "mean_ns": ..., "stddev": ..., "minor_w": ...,
   "major_w": ...} object per line.  Pre-allocation-counter baselines
   lack the word fields; they parse with [minor_w = None]. *)
let parse_bench file =
  let ic = open_in file in
  let records = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line
           " {\"kernel\": %S, \"mean_ns\": %f, \"stddev\": %f, \
            \"minor_w\": %f"
           (fun k m s mw -> (k, (m, s, Some mw)))
       with
       | r -> records := r :: !records
       | exception Scanf.Scan_failure _ -> (
           match
             Scanf.sscanf line
               " {\"kernel\": %S, \"mean_ns\": %f, \"stddev\": %f"
               (fun k m s -> (k, (m, s, None)))
           with
           | r -> records := r :: !records
           | exception Scanf.Scan_failure _ -> ()
           | exception End_of_file -> ())
       | exception End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !records

(* Kernels whose timings gate merges under [--strict]: the single-domain
   library hot paths and the serving fast paths — deterministic
   workloads with low run-to-run variance.  Parallel rows, the
   batching-server episodes and the full-table experiment rows stay
   advisory: their means move with runner load and domain scheduling. *)
let tier1 =
  [
    "kernel-winograd-f4-conv-fp32";
    "kernel-tapwise-int8-forward";
    "kernel-im2col-conv-fp32";
    "tab1-dfg-cse";
    "intgraph-resnet20-planned";
    "deploy-forward-planned";
    "serve-wire-roundtrip";
    "router-hash";
    "wino-f4-fp32-micro";
    "wino-f4-int8-micro";
    "wino-f6-rns-crt";
    "wino-f6-rns-direct";
    (* Sparse/dense pairs gate together: the -sparse row guards the
       compressed-panel driver, the -dense row guards that the dense
       path stayed untouched. *)
    "tapwise-gemm-sparse-d30";
    "tapwise-gemm-dense-d30";
    "intgraph-resnet20-sparse-d30";
    "intgraph-resnet20-dense-d30";
  ]

(* Regression gate: prints a table of old-vs-new means, then annotates
   every kernel whose mean regressed by more than [threshold].  Without
   [--strict] all regressions are warnings and the exit code is 0 (noisy
   runners never block anything).  With [--strict] — what CI passes
   unless the PR carries the [allow-bench-regression] label — a tier-1
   regression becomes a [::error] and the process exits 1. *)
let run_compare ?(strict = false) old_file new_file =
  let threshold = 0.25 in
  (* Allocation warnings need both a relative and an absolute floor:
     tiny kernels jitter by a few words, which is not a regression. *)
  let alloc_threshold = 0.5 and alloc_floor = 1024.0 in
  let old_r = parse_bench old_file and new_r = parse_bench new_file in
  if old_r = [] then Printf.printf "compare: no records in %s (baseline regenerating?)\n" old_file;
  Printf.printf "%-40s %14s %14s %9s %12s\n" "kernel" "old ns" "new ns" "delta"
    "minor-w";
  Printf.printf "%s\n" (String.make 94 '-');
  let regressions = ref [] and alloc_regressions = ref [] in
  List.iter
    (fun (name, (new_mean, _, new_mw)) ->
      let mw_str =
        match new_mw with None -> "-" | Some w -> Printf.sprintf "%.0f" w
      in
      match List.assoc_opt name old_r with
      | None ->
          Printf.printf "%-40s %14s %14.0f %9s %12s\n" name "-" new_mean "new"
            mw_str
      | Some (old_mean, _, old_mw) ->
          let delta = (new_mean -. old_mean) /. Float.max 1e-9 old_mean in
          Printf.printf "%-40s %14.0f %14.0f %+8.1f%% %12s\n" name old_mean
            new_mean (100.0 *. delta) mw_str;
          if delta > threshold then regressions := (name, delta) :: !regressions;
          (match (old_mw, new_mw) with
          | Some ow, Some nw
            when nw -. ow > alloc_floor
                 && nw > ow *. (1.0 +. alloc_threshold) ->
              alloc_regressions := (name, ow, nw) :: !alloc_regressions
          | _ -> ()))
    new_r;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name new_r) then
        Printf.printf "%-40s %14s %14s %9s\n" name "-" "-" "gone")
    old_r;
  let blocking = ref [] in
  (match List.rev !regressions with
  | [] -> Printf.printf "\ncompare: no kernel regressed by more than %.0f%%\n" (100.0 *. threshold)
  | rs ->
      List.iter
        (fun (name, delta) ->
          if strict && List.mem name tier1 then begin
            blocking := name :: !blocking;
            Printf.printf
              "::error title=bench regression::tier-1 kernel %s mean \
               regressed %.1f%% (threshold %.0f%%); label the PR \
               allow-bench-regression to merge anyway\n"
              name (100.0 *. delta) (100.0 *. threshold)
          end
          else
            Printf.printf
              "::warning title=bench regression::%s mean regressed %.1f%% \
               (threshold %.0f%%)\n"
              name (100.0 *. delta) (100.0 *. threshold))
        rs;
      Printf.printf
        "\ncompare: %d kernel(s) above the %.0f%% threshold (%d blocking)\n"
        (List.length rs) (100.0 *. threshold)
        (List.length !blocking));
  List.iter
    (fun (name, ow, nw) ->
      Printf.printf
        "::warning title=bench allocation regression::%s minor words per \
         run grew %.0f -> %.0f (> +%.0f%% and > %.0f words)\n"
        name ow nw
        (100.0 *. alloc_threshold)
        alloc_floor)
    (List.rev !alloc_regressions);
  exit (if !blocking <> [] then 1 else 0)

let usage () =
  prerr_endline
    "usage: bench [--json] [-o|--out FILE] [--filter RE[,RE...]] | bench \
     --list [--filter RE[,RE...]] | bench --compare [--strict] OLD.json \
     NEW.json";
  exit 2

type mode = Tables | Json | List | Compare of string * string

let () =
  let strict = ref false in
  let filter = ref None in
  let rec parse mode out = function
    | [] -> (mode, out)
    | "--json" :: rest -> parse Json out rest
    | "--list" :: rest -> parse List out rest
    | "--strict" :: rest ->
        strict := true;
        parse mode out rest
    | "--compare" :: "--strict" :: old_f :: new_f :: rest ->
        strict := true;
        parse (Compare (old_f, new_f)) out rest
    | "--compare" :: old_f :: new_f :: rest -> parse (Compare (old_f, new_f)) out rest
    | [ "--compare" ] | [ "--compare"; _ ] ->
        prerr_endline "bench: --compare requires OLD.json and NEW.json";
        usage ()
    | ("-o" | "--out") :: f :: rest -> parse mode f rest
    | [ ("-o" | "--out") ] ->
        prerr_endline "bench: -o/--out requires a FILE argument";
        usage ()
    | "--filter" :: re :: rest ->
        filter := Some re;
        parse mode out rest
    | [ "--filter" ] ->
        prerr_endline "bench: --filter requires a REGEX argument";
        usage ()
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %S\n" arg;
        usage ()
  in
  let mode, out_file =
    parse Tables "BENCH_ci.json" (List.tl (Array.to_list Sys.argv))
  in
  (* Unanchored Str search (Emacs-style syntax: alternation is [\|],
     groups are [\(...\)]), so `--filter wino-f4` or `--filter
     '-micro$'` select the rows a developer expects.  A comma splits
     the argument into independent regexes, any of which selects a row:
     `--filter '-micro$,-sparse-,-dense-'` picks both GEMM families
     without wrestling Str's escaped alternation. *)
  let selected =
    match !filter with
    | None -> kernels
    | Some re ->
        let rexes =
          List.filter_map
            (fun s -> if s = "" then None else Some (Str.regexp s))
            (String.split_on_char ',' re)
        in
        if rexes = [] then begin
          Printf.eprintf "bench: --filter %S has no non-empty regexes\n" re;
          exit 2
        end;
        let matches name rex =
          match Str.search_forward rex name 0 with
          | _ -> true
          | exception Not_found -> false
        in
        let sel =
          List.filter
            (fun (name, _) -> List.exists (matches name) rexes)
            kernels
        in
        if sel = [] then begin
          Printf.eprintf "bench: --filter %S matches no kernels\n" re;
          exit 2
        end;
        sel
  in
  match mode with
  | Compare (old_f, new_f) -> run_compare ~strict:!strict old_f new_f
  | Json -> run_json selected out_file
  | List -> List.iter (fun (name, _) -> print_endline name) selected
  | Tables ->
      if !filter = None then print_all_tables ();
      print_endline "==== Bechamel micro-benchmarks (one per table/figure) ====";
      benchmark selected
