(** Extension — transformation-engine design-space table.

    The registry-facing version of the [engine_explorer] example: the
    area/throughput Pareto of the three engines across styles and
    replication factors (the Sec. IV-B1 exploration), with the paper's
    chosen design points marked. *)

module Engine = Twq_hw.Engine
module AP = Twq_hw.Area_power
module Transform = Twq_winograd.Transform
module Table = Twq_util.Table

let name = "ext-engines"
let description = "Extension: engine design-space exploration (Sec. IV-B1)"

let chosen = [ AP.input_engine; AP.weight_engine; AP.output_engine ]

let run ?(fast = false) () =
  let buf = Buffer.create 4096 in
  let explore transform label =
    let tbl =
      Table.create
        ~title:(Printf.sprintf "%s engine (F4)" label)
        [ "style"; "Pc"; "Ps"; "Pt"; "xf/cyc"; "area mm^2"; "mW";
          "mm^2 per xf/cyc"; "paper's pick" ]
    in
    let candidates =
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun pc ->
              List.map
                (fun pt ->
                  { Engine.kind; variant = Transform.F4; transform;
                    pc; ps = (if transform = Engine.Input && pc = 32 then 2 else 1);
                    pt })
                (if kind = Engine.Tap_by_tap then [ 8; 16 ] else [ 1 ]))
            (if fast then [ 16; 64 ] else [ 8; 16; 32; 64 ]))
        [ Engine.Row_by_row_slow; Engine.Row_by_row_fast; Engine.Tap_by_tap ]
    in
    List.iter
      (fun cfg ->
        let style =
          match cfg.Engine.kind with
          | Engine.Row_by_row_slow -> "row slow"
          | Engine.Row_by_row_fast -> "row fast"
          | Engine.Tap_by_tap -> "tap-by-tap"
        in
        let rate = Engine.throughput_xforms_per_cycle cfg in
        let area = AP.engine_area_mm2 cfg in
        Table.add_row tbl
          [
            style;
            string_of_int cfg.Engine.pc;
            string_of_int cfg.Engine.ps;
            string_of_int cfg.Engine.pt;
            Printf.sprintf "%.2f" rate;
            Printf.sprintf "%.3f" area;
            Printf.sprintf "%.0f" (AP.engine_power_mw cfg);
            Printf.sprintf "%.3f" (area /. rate);
            (if List.mem cfg chosen then "<-- paper" else "");
          ])
      candidates;
    Buffer.add_string buf (Table.render tbl);
    Buffer.add_char buf '\n'
  in
  explore Engine.Input "input (B^T x B)";
  if not fast then begin
    explore Engine.Weight "weight (G f G^T)";
    explore Engine.Output "output (A^T Y A)"
  end;
  (* Software conv-engine comparison: the tap-wise quantized engines next
     to the exact F(6,3) RNS backend, on the same tensors — accuracy is
     rms noise vs the FP32 direct conv, cost is per-tap GEMM passes per
     conv (RNS pays one pass per modulus; wall-clock lives in the
     wino-f6-rns-crt/-direct bench rows, since experiment output must be
     byte-identical across TWQ_NUM_DOMAINS). *)
  let module Tensor = Twq_tensor.Tensor in
  let module Rng = Twq_util.Rng in
  let module Tapwise = Twq_quant.Tapwise in
  let module Rns = Twq_winograd.Rns in
  let rng = Rng.create 7020 in
  let chans = if fast then 2 else 8 in
  let hw = if fast then 12 else 24 in
  let x = Tensor.rand_gaussian rng [| 1; chans; hw; hw |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| chans; chans; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let tapwise_noise variant =
    let layer =
      Tapwise.calibrate ~config:(Tapwise.default_config variant) ~w
        ~sample_inputs:[ x ] ~pad:1 ()
    in
    Tapwise.quantization_noise layer x ~w
  in
  let rns_plan =
    let basis =
      match Rns.suggest_basis ~m:6 ~r:3 ~cin:chans () with
      | Ok b -> b
      | Error e -> failwith (Rns.error_to_string e)
    in
    Rns.plan_exn ~m:6 ~r:3 ~basis ~cin:chans ()
  in
  let taps variant =
    let t = Transform.m variant + 2 in
    t * t
  in
  let tbl =
    Table.create ~title:"Software conv engines — tap-wise vs exact RNS"
      [ "engine"; "tile"; "rms noise vs fp32"; "tap GEMMs/conv" ]
  in
  let add name tile noise passes =
    Table.add_row tbl
      [ name; tile; Printf.sprintf "%.4f" noise; string_of_int passes ]
  in
  add "fp32 winograd (oracle)" "F4" 0.0 (taps Transform.F4);
  add "int8 tap-wise" "F4" (tapwise_noise Transform.F4) (taps Transform.F4);
  add "int8 tap-wise" "F6" (tapwise_noise Transform.F6) (taps Transform.F6);
  add "int8 RNS exact" "F6"
    (Twq_quant.Error_analysis.rns_noise ~bits:8 ~m:6 ~r:3 ~x ~w)
    (taps Transform.F6 * Array.length (Rns.basis rns_plan));
  Buffer.add_string buf (Table.render tbl);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Rns.describe rns_plan);
  Buffer.add_char buf '\n';
  Buffer.contents buf
