(** Extension — larger Winograd tiles (F2 / F4 / F6).

    The paper's Sec. II argues that tiles beyond 4×4 bring "diminishing
    returns" through numerical sensitivity and transform complexity; this
    experiment quantifies that with our stack: theoretical MACs reduction,
    FP32 numerical error, bit-true integer bit growth, int8 tap-wise
    quantization noise, transform-engine cost, and the simulated operator
    speed-up — across F(2,3), F(4,3) and F(6,3). *)

module Tensor = Twq_tensor.Tensor
module Transform = Twq_winograd.Transform
module Conv = Twq_winograd.Conv
module Tapwise = Twq_quant.Tapwise
module Engine = Twq_hw.Engine
module Dfg = Twq_hw.Dfg
module Table = Twq_util.Table
module Rng = Twq_util.Rng
module Zoo = Twq_nn.Zoo
open Twq_sim

let name = "ext-tiles"
let description = "Extension: F2 vs F4 vs F6 — accuracy, bit growth, hardware cost"

let run ?(fast = false) () =
  let rng = Rng.create 7010 in
  let chans = if fast then 2 else 8 in
  let hw = if fast then 12 else 24 in
  let x = Tensor.rand_gaussian rng [| 1; chans; hw; hw |] ~mu:0.0 ~sigma:1.0 in
  let w = Tensor.rand_gaussian rng [| chans; chans; 3; 3 |] ~mu:0.0 ~sigma:0.3 in
  let sim_layer =
    { Zoo.name = "ext"; cin = 256; cout = 256; out_h = 64; out_w = 64; k = 3;
      stride = 1; repeat = 1 }
  in
  let arch = Arch.default in
  let im2col = Operator.run arch Operator.Im2col sim_layer ~batch:8 in
  let tbl =
    Table.create ~title:"Extension — Winograd tile-size trade-off"
      [ "metric"; "F2"; "F4"; "F6" ]
  in
  let row label f = Table.add_row tbl (label :: List.map f Transform.all_variants) in
  row "theoretical MACs reduction" (fun v ->
      Table.cell_speedup (Transform.macs_reduction v));
  row "fp32 max |error| vs direct" (fun v ->
      Printf.sprintf "%.1e" (Conv.max_abs_error ~variant:v ~x ~w));
  row "bit-true extra bits (input)" (fun v ->
      string_of_int (Transform.extra_bits_input v));
  row "bit-true extra bits (weights)" (fun v ->
      string_of_int (Transform.extra_bits_weight v));
  row "int8 tap-wise rms noise" (fun v ->
      let layer =
        Tapwise.calibrate ~config:(Tapwise.default_config v) ~w
          ~sample_inputs:[ x ] ~pad:1 ()
      in
      Table.cell_fx 3 (Tapwise.quantization_noise layer x ~w));
  row "int8 single-scale rms noise" (fun v ->
      let config =
        { (Tapwise.default_config v) with Tapwise.granularity = Tapwise.Single_scale }
      in
      let layer = Tapwise.calibrate ~config ~w ~sample_inputs:[ x ] ~pad:1 () in
      Table.cell_fx 3 (Tapwise.quantization_noise layer x ~w));
  row "int8 RNS-exact rms noise" (fun v ->
      let m = Transform.m v in
      Table.cell_fx 3
        (Twq_quant.Error_analysis.rns_noise ~bits:8 ~m ~r:3 ~x ~w));
  row "input-engine adders (fast, 64 PE)" (fun v ->
      let cfg =
        { Engine.kind = Engine.Row_by_row_fast; variant = v;
          transform = Engine.Input; pc = 32; ps = 2; pt = 1 }
      in
      string_of_int (Engine.resources cfg).Engine.adders);
  row "1-D pass ops after CSE" (fun v ->
      let cfg =
        { Engine.kind = Engine.Tap_by_tap; variant = v;
          transform = Engine.Input; pc = 1; ps = 1; pt = 1 }
      in
      string_of_int (Dfg.op_count (Engine.dfg_pass cfg)));
  row "sim speed-up vs im2col (B8 64^2 256ch)" (fun v ->
      let r = Operator.run arch (Operator.Winograd v) sim_layer ~batch:8 in
      Table.cell_speedup (Operator.speedup ~baseline:im2col r));
  let rns_note =
    let module Rns = Twq_winograd.Rns in
    match Rns.suggest_basis ~m:6 ~r:3 ~cin:chans () with
    | Error e -> "F(6,3) RNS: no admissible basis (" ^ Rns.error_to_string e ^ ")\n"
    | Ok basis -> (
        match Rns.plan ~m:6 ~r:3 ~basis ~cin:chans () with
        | Ok p -> "Exact escape hatch — " ^ Rns.describe p ^ "\n"
        | Error e -> "F(6,3) RNS: " ^ Rns.error_to_string e ^ "\n")
  in
  Table.render tbl
  ^ "\nF6 brings only 36% more theoretical MACs reduction over F4 while its\n\
     tap-wise int8 noise and transform cost grow sharply — the paper's\n\
     'diminishing returns' argument, reproduced.  The RNS row shows the\n\
     residue-number-system backend sidestepping the blow-up entirely: its\n\
     noise is pure input/weight quantization, identical across tile sizes.\n"
  ^ rns_note
