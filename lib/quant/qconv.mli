(** Quantized standard (im2col) convolution — the int8 baseline operator.

    This is the non-Winograd datapath of the accelerator: int8 activations
    and weights, int32 accumulation, requantization on output.  It is the
    reference the paper's Table II "im2col int8" row corresponds to. *)

type layer = {
  act_bits : int;
  s_x : float;
  s_w : float;                       (** layer-wise weight scale *)
  s_w_channel : float array option;  (** per-output-channel scales if enabled *)
  s_y : float;
  wq : Twq_tensor.Itensor.t;  (** [cout; cin; kh; kw] int weights *)
  bias : Twq_tensor.Tensor.t option;
  stride : int;
  pad : int;
}

val weight_scale : layer -> int -> float
(** Effective weight scale of output channel [co]. *)

val calibrate :
  ?act_bits:int ->
  ?pow2:bool ->
  ?per_channel:bool ->
  w:Twq_tensor.Tensor.t ->
  ?bias:Twq_tensor.Tensor.t ->
  ?input_scale:float ->
  sample_inputs:Twq_tensor.Tensor.t list ->
  stride:int ->
  pad:int ->
  unit ->
  layer
(** [input_scale] pins [s_x] so layers can chain (see
    {!Tapwise.calibrate}); [per_channel] enables output-channel-wise weight
    scales (the spatial-domain refinement of Sec. V-A4, ~1.7× lower weight
    quantization error). *)

val forward_int_into :
  ?epilogue:Twq_winograd.Kernels.epilogue ->
  layer ->
  Twq_tensor.Itensor.t ->
  out:Twq_tensor.Itensor.t ->
  unit
(** In-place forward: writes the requantized int8 activations into [out]
    (shape [\[n; cout; ho; wo\]], typically a planner arena buffer),
    applying [epilogue] in the output store — requant to [s_y], then
    optional saturating residual add and ReLU, in one pass. *)

val forward_int : layer -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** int8 in → int8 out; int32 accumulation internally. *)

val forward : layer -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Float wrapper (quantize → {!forward_int} → dequantize). *)
