(** Quantization-error analysis (Sec. V-A4 / Fig. 4 of the paper).

    Weights are quantized with [Quant_{s,μ}(x) = μ + s·⌊(x−μ)/s⌉_intn] where
    [s = γσ/2^(n−1)]; [μ], [σ] and the optimised clipping factor [γ̂] are
    computed per quantization unit (layer, channel, tap, or channel+tap).
    [γ̂ = argmin_γ Σ|Quant(f) − f| / Σ|f|] via grid search.

    For the Winograd-domain strategies, weights are quantized on
    [G f Gᵀ] and mapped back to the spatial domain with the Moore–Penrose
    pseudo-inverse before measuring the error — exactly the Fig. 4 setup. *)

type spatial_strategy = S_layer | S_channel

type winograd_strategy = W_layer | W_channel | W_tap | W_channel_tap

val quantize_unit : bits:int -> float array -> float array * float
(** [quantize_unit ~bits values] — quantize one unit with the optimal [γ̂];
    returns the dequantized values and the chosen [γ̂]. *)

val relative_error : original:float array -> quantized:float array -> float
(** [Σ|q − f| / Σ|f|]. *)

val spatial_error : bits:int -> strategy:spatial_strategy -> Twq_tensor.Tensor.t -> float
(** Relative quantization error of a [\[cout;cin;3;3\]] weight tensor
    quantized directly in the spatial domain. *)

val winograd_error :
  bits:int ->
  variant:Twq_winograd.Transform.variant ->
  strategy:winograd_strategy ->
  Twq_tensor.Tensor.t ->
  float
(** Relative error (measured in the spatial domain, after pseudo-inverse
    back-transform) of quantizing in the Winograd domain. *)

val rns_noise :
  bits:int ->
  m:int ->
  r:int ->
  x:Twq_tensor.Tensor.t ->
  w:Twq_tensor.Tensor.t ->
  float
(** Relative RMS error of an end-to-end integer convolution through the
    exact RNS backend ({!Twq_winograd.Rns}) with [bits]-bit symmetric
    input/weight quantization, measured against the FP32 direct
    convolution.  Because the RNS engine is bit-exact, the residual noise
    is pure input/weight quantization — the same for F(2,3), F(4,3) and
    F(6,3) — which is the point of the comparison rows in the
    experiments tables. *)
