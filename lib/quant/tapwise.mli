(** Integer-only tap-wise quantized Winograd convolution — the paper's core
    contribution (Sec. III).

    The layer keeps int8 activations/weights in the spatial domain and
    [wino_bits]-bit integers inside the Winograd domain, with one scaling
    factor per tap ([S_B] for feature maps, [S_G] for weights,
    [S_BG = S_B ⊙ S_G] folded into the single rescale before the output
    back-transformation):

    {v
      y = Aᵀ ( S_BG ⊙ Σ_cin ⌊Bᵀ x̂ B ⊘ S_B⌉ ⊙ ⌊G f̂ Gᵀ ⊘ S_G⌉ ) A
    v}

    With [pow2 = true] every per-tap rescale in the integer datapath is an
    exact arithmetic shift (the hardware-friendly configuration). *)

type granularity =
  | Single_scale  (** one scale per transformation — the [F4]-breaks baseline *)
  | Tap_wise      (** one scale per tap — the paper's method *)
  | Channel_tap_wise
      (** per-output-channel × per-tap weight scales — the combined strategy
          of Sec. V-A4 ("might achieve better performance for networks with
          significantly different channel distributions") *)

type config = {
  variant : Twq_winograd.Transform.variant;
  act_bits : int;   (** spatial-domain bits (8 in the paper) *)
  wino_bits : int;  (** Winograd-domain bits (8, 9 or 10) *)
  pow2 : bool;      (** restrict tap scales to power-of-two multiples *)
  granularity : granularity;
}

val default_config : Twq_winograd.Transform.variant -> config
(** int8/int8, pow2, tap-wise. *)

type layer = {
  config : config;
  pad : int;
  s_x : float;                 (** input activation scale *)
  s_w : float;                 (** spatial-domain weight scale *)
  s_y : float;                 (** output activation scale *)
  s_b : float array array;     (** t×t input tap scales *)
  s_g : float array array;     (** t×t weight tap scales *)
  s_g_channel : float array array array option;
      (** [cout][t][t] weight scales; present under [Channel_tap_wise] *)
  wq : Twq_tensor.Itensor.t;   (** [cout; cin; t; t] quantized Winograd weights *)
  bias : Twq_tensor.Tensor.t option;
}

val weight_scale : layer -> int -> int -> int -> float
(** [weight_scale l co i j] — the effective weight scale of tap (i,j) for
    output channel [co] (respects the granularity). *)

val calibrate :
  config:config ->
  w:Twq_tensor.Tensor.t ->
  ?bias:Twq_tensor.Tensor.t ->
  ?input_scale:float ->
  ?scale_grids:float array array * float array array ->
  sample_inputs:Twq_tensor.Tensor.t list ->
  pad:int ->
  unit ->
  layer
(** Builds a quantized layer from fp32 weights and representative input
    activations: calibrates [s_x], the per-tap maxima of [Bᵀ x̂ B] and
    [G f̂ Gᵀ], the output scale [s_y], and pre-quantizes the weights.
    [input_scale] pins [s_x] (instead of calibrating it) so that a chain of
    layers can agree on the inter-layer scales ([s_x = s_y] of the
    producer), which keeps the whole network integer-only.
    [scale_grids] = (S_B, S_G) injects externally learned tap scales (the
    log2-gradient training of Sec. III-B) instead of static calibration;
    they are snapped to the pow2 grid when [pow2] is set. *)

val input_shift : layer -> int -> int -> int
(** [input_shift l i j] — the right-shift applied to tap (i,j) of the
    integer input transform ([log2 (s_b/s_x)]); only meaningful under
    [pow2]. Matches the paper's learned feature-map shifts (1–5 bits). *)

val weight_shift : layer -> int -> int -> int
(** Same for the weight taps (2–10 bits in the paper). *)

type packed
(** A layer plus everything shape-independent the tap-major forward
    needs, staged once: the tap-major Winograd weight panel, flattened
    tap-scale lookups and the requant source scale.  Packing at plan
    time removes the per-forward weight-panel rebuild. *)

val pack : layer -> packed
(** Besides packing the weight panel, [pack] measures each tap's
    nonzero density and — for taps strictly below
    [Microkernel.sparse_threshold ()] — keeps a compressed-column form
    of the panel, so [forward_int_into] runs those taps through the
    sparse GEMM driver (bit-identical; it only skips exact zeros).
    The decision is frozen at pack time. *)

val packed_layer : packed -> layer
(** The underlying layer (scales, bias, config). *)

val tap_densities : packed -> float array
(** Measured per-tap nonzero fraction of the packed weight panel
    ([t² ] entries, pad lanes excluded). *)

val sparse_tap_count : packed -> int
(** Number of taps that will execute through the compressed-panel
    driver. *)

val forward_int_into :
  ?epilogue:Twq_winograd.Kernels.epilogue ->
  packed ->
  Twq_tensor.Itensor.t ->
  out:Twq_tensor.Itensor.t ->
  unit
(** In-place tap-major integer forward: writes the requantized int8
    activations into [out] (shape [\[n; cout; ho; wo\]], typically a
    planner arena buffer) and applies [epilogue] inside the gather store
    — requant to [s_y], then optional saturating residual add and ReLU,
    all in one pass over the output.  Bit-identical to running
    {!forward_int} followed by the separate elementwise ops. *)

val forward_int : layer -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** int8 NCHW in → int8 NCHW out (requantized with [s_y]).  Runs the
    allocation-free tap-major {!Twq_winograd.Kernels} path ({!pack} +
    {!forward_int_into} with the identity epilogue); bit-identical to
    {!forward_int_ref}. *)

val forward_int_ref : layer -> Twq_tensor.Itensor.t -> Twq_tensor.Itensor.t
(** Tile-major reference implementation of the integer pipeline — the
    oracle {!forward_int} is tested against. *)

val forward : layer -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Float-in/float-out wrapper: quantize input with [s_x], run
    {!forward_int}, dequantize with [s_y]. *)

val forward_float_ref : layer -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Algebraic fake-quant reference implementation of the same pipeline
    (floats end-to-end, quantization simulated).  Agrees with {!forward} up
    to a few output LSBs (float-vs-integer rounding can differ on exact
    ties); the test-suite checks this bound. *)

val quantization_noise : layer -> Twq_tensor.Tensor.t -> w:Twq_tensor.Tensor.t -> float
(** RMS error of {!forward} against the fp32 direct convolution, normalised
    by the fp32 RMS — a fast proxy for end-to-end accuracy impact. *)
