(** Running-max calibration of quantization thresholds.

    The paper calibrates [x_max] "by calculating a running average of the
    maximum values obtained during the training of the full network"
    (Sec. III).  An [Observer] tracks an exponential moving average of
    per-batch maxima; tap observers track one maximum per Winograd tap. *)

type t

val create : ?momentum:float -> unit -> t
(** EMA observer; [momentum] defaults to 0.9 (new = 0.9·old + 0.1·batch). *)

val observe : t -> float -> unit
(** Feed one batch maximum.  Ignored when the observer is frozen and
    already calibrated (the first observation always seeds it). *)

val set_frozen : t -> bool -> unit
(** Freeze/unfreeze the EMA.  Frozen observers make forward passes pure,
    which is what lets evaluation batches run data-parallel; this also
    honours {!Trainer.evaluate}'s documented "calibration is frozen"
    contract. *)

val observe_tensor : t -> Twq_tensor.Tensor.t -> unit
(** Feed [max |x|] of a tensor. *)

val value : t -> float
(** Current calibrated maximum. @raise Failure if nothing observed yet. *)

val is_calibrated : t -> bool

(** {2 State capture} — for training checkpoints. The frozen flag is
    transient (re-imposed by evaluation wrappers) and not part of the
    snapshot. *)

type snapshot = { snap_value : float; snap_seen : bool }

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** {2 Per-tap observers} *)

type taps

val create_taps : ?momentum:float -> t:int -> unit -> taps
(** [t × t] grid of observers. *)

val observe_tile : taps -> Twq_tensor.Tensor.t -> unit
(** Feed a [t×t] Winograd-domain tile: each tap observer sees its element
    (the per-tile max is accumulated within a batch; call {!flush_batch} at
    batch boundaries to fold it into the EMA). *)

val flush_batch : taps -> unit

val tap_values : taps -> float array array
(** Calibrated per-tap maxima. *)

(** {2 Percentile calibration} *)

val percentile_max : percentile:float -> float array -> float
(** The [percentile]-th percentile of |x| — an outlier-robust alternative
    to max calibration (Krishnamoorthi's whitepaper, ref [25] of the
    paper). *)

val percentile_max_tensor : percentile:float -> Twq_tensor.Tensor.t -> float
