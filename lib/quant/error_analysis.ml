module Tensor = Twq_tensor.Tensor
module Transform = Twq_winograd.Transform
module Pinv = Twq_winograd.Pinv
module Stats = Twq_util.Stats

type spatial_strategy = S_layer | S_channel
type winograd_strategy = W_layer | W_channel | W_tap | W_channel_tap

let relative_error ~original ~quantized =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i f ->
      num := !num +. Float.abs (quantized.(i) -. f);
      den := !den +. Float.abs f)
    original;
  if !den <= 0.0 then 0.0 else !num /. !den

(* Candidate clipping factors: the useful range for 8-bit symmetric-ish
   quantization of bell-shaped weights; extremes are included so the search
   is robust for heavy-tailed taps. *)
let gamma_grid =
  Array.init 48 (fun i -> 0.5 *. Float.pow 1.12 (float_of_int i))

let quant_with ~bits ~mu ~sigma ~gamma values =
  let s = Quantizer.scale_for ~bits ~max_abs:(gamma *. sigma) in
  Array.map
    (fun x -> mu +. Quantizer.fake_quant ~bits ~scale:s (x -. mu))
    values

let quantize_unit ~bits values =
  if Array.length values = 0 then ([||], 1.0)
  else begin
    let mu = Stats.mean values in
    let sigma = Float.max 1e-12 (Stats.stddev values) in
    let best = ref None in
    Array.iter
      (fun gamma ->
        let q = quant_with ~bits ~mu ~sigma ~gamma values in
        let e = relative_error ~original:values ~quantized:q in
        match !best with
        | Some (_, _, be) when be <= e -> ()
        | _ -> best := Some (q, gamma, e))
      gamma_grid;
    match !best with
    | Some (q, gamma, _) -> (q, gamma)
    | None -> assert false
  end

let spatial_error ~bits ~strategy w =
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  let per_channel = cin * 9 in
  let data = w.Tensor.data in
  match strategy with
  | S_layer ->
      let q, _ = quantize_unit ~bits data in
      relative_error ~original:data ~quantized:q
  | S_channel ->
      let quantized = Array.make (Array.length data) 0.0 in
      for co = 0 to cout - 1 do
        let chunk = Array.sub data (co * per_channel) per_channel in
        let q, _ = quantize_unit ~bits chunk in
        Array.blit q 0 quantized (co * per_channel) per_channel
      done;
      relative_error ~original:data ~quantized

(* Transform every (cout, cin) kernel to the Winograd domain; returns the
   stacked taps as [cout][cin] tiles. *)
let to_winograd ~variant w =
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  Array.init cout (fun co ->
      Array.init cin (fun ci ->
          let f = Tensor.init [| 3; 3 |] (fun i -> Tensor.get4 w co ci i.(0) i.(1)) in
          Transform.weight_tile variant f))

let winograd_error ~bits ~variant ~strategy w =
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  let t = Transform.t variant in
  let tiles = to_winograd ~variant w in
  (* Gather the values of one quantization unit, quantize, scatter back. *)
  let quantized_tiles = Array.map (Array.map Tensor.copy) tiles in
  let quantize_selection select =
    (* [select] enumerates (co, ci, i, j) cells of one unit. *)
    let cells = select () in
    let values =
      Array.map (fun (co, ci, i, j) -> Tensor.get2 tiles.(co).(ci) i j) cells
    in
    let q, _ = quantize_unit ~bits values in
    Array.iteri
      (fun k (co, ci, i, j) -> Tensor.set2 quantized_tiles.(co).(ci) i j q.(k))
      cells
  in
  let all_cells pred =
    let acc = ref [] in
    for co = cout - 1 downto 0 do
      for ci = cin - 1 downto 0 do
        for i = t - 1 downto 0 do
          for j = t - 1 downto 0 do
            if pred co ci i j then acc := (co, ci, i, j) :: !acc
          done
        done
      done
    done;
    Array.of_list !acc
  in
  (match strategy with
  | W_layer -> quantize_selection (fun () -> all_cells (fun _ _ _ _ -> true))
  | W_channel ->
      for co = 0 to cout - 1 do
        quantize_selection (fun () -> all_cells (fun co' _ _ _ -> co' = co))
      done
  | W_tap ->
      for i = 0 to t - 1 do
        for j = 0 to t - 1 do
          quantize_selection (fun () ->
              all_cells (fun _ _ i' j' -> i' = i && j' = j))
        done
      done
  | W_channel_tap ->
      for co = 0 to cout - 1 do
        for i = 0 to t - 1 do
          for j = 0 to t - 1 do
            quantize_selection (fun () ->
                all_cells (fun co' _ i' j' -> co' = co && i' = i && j' = j))
          done
        done
      done);
  (* Back to the spatial domain via the pseudo-inverse, then compare. *)
  let original = w.Tensor.data in
  let quantized = Array.make (Array.length original) 0.0 in
  for co = 0 to cout - 1 do
    for ci = 0 to cin - 1 do
      let f' = Pinv.weight_back_transform variant quantized_tiles.(co).(ci) in
      for i = 0 to 2 do
        for j = 0 to 2 do
          let flat = (((((co * cin) + ci) * 3) + i) * 3) + j in
          quantized.(flat) <- Tensor.get2 f' i j
        done
      done
    done
  done;
  relative_error ~original ~quantized

(* ------------------------------------------------- RNS end-to-end noise *)

(* Relative RMS of int8-in / int8-weight convolution through the exact
   RNS Winograd backend against the FP32 direct convolution.  The RNS
   engine is bit-exact, so whatever noise remains is pure input/weight
   quantization — independent of tile size, unlike the tap-wise rows it
   sits next to in the experiments tables. *)
let rns_noise ~bits ~m ~r ~x ~w =
  let module Ops = Twq_tensor.Ops in
  let sx = Quantizer.scale_for ~bits ~max_abs:(Tensor.max_abs x) in
  let sw = Quantizer.scale_for ~bits ~max_abs:(Tensor.max_abs w) in
  let xi = Quantizer.quantize_tensor ~bits ~scale:sx x in
  let wi = Quantizer.quantize_tensor ~bits ~scale:sw w in
  let yi = Twq_winograd.Conv.conv2d_int_rns ~m ~r ~pad:1 ~x:xi ~w:wi () in
  let y = Quantizer.dequantize_tensor ~scale:(sx *. sw) yi in
  let reference = Ops.conv2d ~stride:1 ~pad:1 ~x ~w () in
  let err = Tensor.sub reference y in
  sqrt (Tensor.sumsq err /. Float.max 1e-30 (Tensor.sumsq reference))
