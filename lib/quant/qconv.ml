module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape
module Kernels = Twq_winograd.Kernels

type layer = {
  act_bits : int;
  s_x : float;
  s_w : float;
  s_w_channel : float array option;  (* per-output-channel weight scales *)
  s_y : float;
  wq : Itensor.t;
  bias : Tensor.t option;
  stride : int;
  pad : int;
}

let weight_scale l co =
  match l.s_w_channel with Some s -> s.(co) | None -> l.s_w

let calibrate ?(act_bits = 8) ?(pow2 = false) ?(per_channel = false) ~w ?bias
    ?input_scale ~sample_inputs ~stride ~pad () =
  let snap s = if pow2 then Quantizer.pow2_round_up s else s in
  let s_x =
    match input_scale with
    | Some s -> s
    | None ->
        let x_max =
          List.fold_left (fun a x -> Float.max a (Tensor.max_abs x)) 0.0 sample_inputs
        in
        snap (Quantizer.scale_for ~bits:act_bits ~max_abs:x_max)
  in
  let s_w = snap (Quantizer.scale_for ~bits:act_bits ~max_abs:(Tensor.max_abs w)) in
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  let kh = Tensor.dim w 2 and kw = Tensor.dim w 3 in
  (* Channel-wise weight scales (Sec. V-A4's spatial-domain refinement):
     one scale per output channel, each snapped independently. *)
  let s_w_channel =
    if not per_channel then None
    else
      Some
        (Array.init cout (fun co ->
             let m = ref 0.0 in
             for ci = 0 to cin - 1 do
               for i = 0 to kh - 1 do
                 for j = 0 to kw - 1 do
                   m := Float.max !m (Float.abs (Tensor.get4 w co ci i j))
                 done
               done
             done;
             snap (Quantizer.scale_for ~bits:act_bits ~max_abs:!m)))
  in
  let scale_of co =
    match s_w_channel with Some s -> s.(co) | None -> s_w
  in
  let wq =
    Itensor.init [| cout; cin; kh; kw |] (fun idx ->
        Quantizer.quantize ~bits:act_bits ~scale:(scale_of idx.(0))
          (Tensor.get4 w idx.(0) idx.(1) idx.(2) idx.(3)))
  in
  let w_fq =
    Tensor.init [| cout; cin; kh; kw |] (fun idx ->
        Quantizer.dequantize ~scale:(scale_of idx.(0))
          (Itensor.get4 wq idx.(0) idx.(1) idx.(2) idx.(3)))
  in
  let y_max =
    List.fold_left
      (fun a x ->
        let y = Ops.conv2d ~stride ~pad ~x ~w:w_fq ?b:bias () in
        Float.max a (Tensor.max_abs y))
      0.0 sample_inputs
  in
  let s_y = snap (Quantizer.scale_for ~bits:act_bits ~max_abs:y_max) in
  { act_bits; s_x; s_w; s_w_channel; s_y; wq; bias; stride; pad }

(* In-place int8 spatial conv with a fused elementwise epilogue in the
   output store — the planner's entry point.  Output channels are
   independent (each owns its out[ni][co] plane and its own requant
   scale), so the (image, channel) loop is the paper's channel-parallel
   axis — lock-free and bit-identical sequentially. *)
let forward_int_into ?(epilogue = Kernels.no_epilogue) l x ~out =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  let cout = Itensor.dim l.wq 0 in
  let kh = Itensor.dim l.wq 2 and kw = Itensor.dim l.wq 3 in
  if Itensor.dim l.wq 1 <> cin then invalid_arg "Qconv.forward_int: channel mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w ~kh ~kw ~stride:l.stride ~pad:l.pad in
  if
    Itensor.dim out 0 <> n || Itensor.dim out 1 <> cout
    || Itensor.dim out 2 <> ho || Itensor.dim out 3 <> wo
  then invalid_arg "Qconv.forward_int_into: out shape mismatch";
  let od = out.Itensor.data in
  (* Hoisted so the inner store is unboxed arithmetic: a
     [Quantizer.quantize] call per element boxes its float arguments
     (no flambda) and dominates steady-state allocation. *)
  let a_hi = (1 lsl (l.act_bits - 1)) - 1 in
  let a_lo = -(a_hi + 1) in
  let s_y = l.s_y in
  Twq_util.Parallel.parallel_for ~lo:0 ~hi:(n * cout) (fun idx ->
      let ni = idx / cout and co = idx mod cout in
      let bias_v = match l.bias with None -> 0.0 | Some b -> b.Tensor.data.(co) in
      let requant_scale = l.s_x *. weight_scale l co in
      for oh = 0 to ho - 1 do
        let orow = (((((ni * cout) + co) * ho) + oh) * wo) in
        for ow = 0 to wo - 1 do
          let acc = ref 0 in
          for ci = 0 to cin - 1 do
            for ki = 0 to kh - 1 do
              for kj = 0 to kw - 1 do
                let hi = (oh * l.stride) + ki - l.pad
                and wi = (ow * l.stride) + kj - l.pad in
                if hi >= 0 && hi < h && wi >= 0 && wi < w then
                  acc := !acc + (Itensor.get4 x ni ci hi wi * Itensor.get4 l.wq co ci ki kj)
              done
            done
          done;
          let real = (float_of_int !acc *. requant_scale) +. bias_v in
          (* Inlined [Quantizer.quantize ~bits:l.act_bits ~scale:s_y]. *)
          let r = int_of_float (Float.round (real /. s_y)) in
          let q = if r > a_hi then a_hi else if r < a_lo then a_lo else r in
          Kernels.epilogue_store epilogue od (orow + ow) q
        done
      done)

let forward_int l x =
  let n = Itensor.dim x 0 in
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  let cout = Itensor.dim l.wq 0 in
  let kh = Itensor.dim l.wq 2 and kw = Itensor.dim l.wq 3 in
  let ho, wo = Shape.conv2d_out ~h ~w ~kh ~kw ~stride:l.stride ~pad:l.pad in
  let out = Itensor.zeros [| n; cout; ho; wo |] in
  forward_int_into l x ~out;
  out

let forward l x =
  let x_int = Quantizer.quantize_tensor ~bits:l.act_bits ~scale:l.s_x x in
  Quantizer.dequantize_tensor ~scale:l.s_y (forward_int l x_int)
