(** Serialization of quantized layers (text format, exact round-trip).

    A deployed tap-wise layer is a bag of integers plus a handful of
    scales; this module writes them to a simple line-oriented text format.
    Floats are encoded in hexadecimal notation ([%h]), so scales round-trip
    bit-exactly and a reloaded layer produces bit-identical integer
    outputs.

    Readers run on a byte-offset-tracking {!reader} and validate
    everything before allocating: ranks and dimensions must be positive
    and bounded by the remaining input, element counts cannot overflow,
    scales must be positive finite floats, and cross-field invariants
    (grid sizes vs. the transform variant, per-channel counts vs. output
    channels) are checked.  Malformed input yields a typed {!error} with
    the byte offset of the offending token — never [Scanf.Scan_failure],
    [End_of_file], [Out_of_memory] or a silent half-parsed value. *)

type error = { offset : int; message : string }

exception Parse_failure of error
(** Raised by the embedding-level readers below; the [_result] entry
    points catch it. *)

val error_to_string : error -> string

(** {2 Reader primitives} — for container formats that embed layers
    (e.g. {!Twq_nn.Deploy}, {!Twq_nn.Int_graph}). All raise
    {!Parse_failure} on malformed input. *)

type reader

val reader_of_string : string -> reader
val reader_pos : reader -> int

val parse_fail : reader -> string -> 'a
(** Raise {!Parse_failure} at the reader's current offset. *)

val read_word : reader -> string
val read_int : reader -> int
val read_float : reader -> float
val read_bool : reader -> bool

val expect : reader -> string -> unit
(** Consume the next token, failing unless it equals the argument. *)

val write_tensor : Buffer.t -> Twq_tensor.Tensor.t -> unit
val read_tensor : reader -> Twq_tensor.Tensor.t

val write_itensor : Buffer.t -> Twq_tensor.Itensor.t -> unit
val read_itensor : reader -> Twq_tensor.Itensor.t

val read_layer_body : reader -> Tapwise.layer
(** Parse a layer whose ["tapwise-layer v1"] header has already been
    consumed. *)

val read_qconv_body : reader -> Qconv.layer
(** Body parser for embedding (header already consumed). *)

(** {2 Tap-wise Winograd layers} *)

val layer_to_string : Tapwise.layer -> string

val layer_of_string_result : string -> (Tapwise.layer, error) result

val layer_of_string : string -> Tapwise.layer
(** @raise Failure on malformed input (thin wrapper over
    {!layer_of_string_result} for backward compatibility). *)

val save_layer : string -> Tapwise.layer -> unit
(** Write to a file path. *)

val load_layer_result : string -> (Tapwise.layer, error) result

val load_layer : string -> Tapwise.layer
(** @raise Failure on malformed input or I/O error. *)

(** {2 Spatial int8 layers} *)

val qconv_to_string : Qconv.layer -> string
val qconv_of_string_result : string -> (Qconv.layer, error) result

val qconv_of_string : string -> Qconv.layer
(** @raise Failure on malformed input. *)
