module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Transform = Twq_winograd.Transform

(* ------------------------------------------------------------- writers *)

let write_shape buf shape =
  Buffer.add_string buf (string_of_int (Array.length shape));
  Array.iter (fun d -> Buffer.add_string buf (" " ^ string_of_int d)) shape;
  Buffer.add_char buf '\n'

let write_tensor buf (t : Tensor.t) =
  write_shape buf t.Tensor.shape;
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) t.Tensor.data;
  Buffer.add_char buf '\n'

let write_itensor buf (t : Itensor.t) =
  write_shape buf t.Itensor.shape;
  Array.iter (fun v -> Buffer.add_string buf (string_of_int v ^ " ")) t.Itensor.data;
  Buffer.add_char buf '\n'

let write_grid buf (g : float array array) =
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Array.length g) (Array.length g.(0)));
  Array.iter
    (fun row ->
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) row;
      Buffer.add_char buf '\n')
    g

(* ---------------------------------------------------- validating reader *)

type error = { offset : int; message : string }

exception Parse_failure of error

let error_to_string e =
  Printf.sprintf "byte %d: %s" e.offset e.message

type reader = { src : string; mutable pos : int }

let reader_of_string src = { src; pos = 0 }
let reader_pos r = r.pos
let parse_fail r message = raise (Parse_failure { offset = r.pos; message })
let fail_at offset message = raise (Parse_failure { offset; message })

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let read_word r =
  let len = String.length r.src in
  while r.pos < len && is_ws r.src.[r.pos] do
    r.pos <- r.pos + 1
  done;
  if r.pos >= len then parse_fail r "unexpected end of input";
  let start = r.pos in
  while r.pos < len && not (is_ws r.src.[r.pos]) do
    r.pos <- r.pos + 1
  done;
  String.sub r.src start (r.pos - start)

let read_int r =
  let start = r.pos in
  let w = read_word r in
  match int_of_string_opt w with
  | Some v -> v
  | None -> fail_at start (Printf.sprintf "expected integer, got %S" w)

let read_float r =
  let start = r.pos in
  let w = read_word r in
  match float_of_string_opt w with
  | Some v -> v
  | None -> fail_at start (Printf.sprintf "expected float, got %S" w)

let read_bool r =
  let start = r.pos in
  match read_word r with
  | "true" -> true
  | "false" -> false
  | w -> fail_at start (Printf.sprintf "expected bool, got %S" w)

let expect r token =
  let start = r.pos in
  let w = read_word r in
  if w <> token then
    fail_at start (Printf.sprintf "expected %S, got %S" token w)

let read_int_in r ~what lo hi =
  let start = r.pos in
  let v = read_int r in
  if v < lo || v > hi then
    fail_at start (Printf.sprintf "%s %d out of range [%d, %d]" what v lo hi);
  v

let read_finite_scale r ~what =
  let start = r.pos in
  let v = read_float r in
  if not (Float.is_finite v) || v <= 0.0 then
    fail_at start (Printf.sprintf "%s must be a positive finite float" what);
  v

let remaining r = String.length r.src - r.pos

(* Element counts are validated against the number of bytes left in the
   input before anything is allocated: every serialized element costs at
   least two bytes (value + separator), so a malformed header cannot make
   us allocate huge arrays or overflow the element product. *)
let max_rank = 8

let read_count r ~what n_dims read_dim =
  let budget = remaining r in
  let total = ref 1 in
  let dims =
    Array.init n_dims (fun _ ->
        let start = r.pos in
        let d = read_dim () in
        if d <= 0 then
          fail_at start (Printf.sprintf "%s dimension %d must be positive" what d);
        if d > budget || !total > budget / d then
          fail_at start (Printf.sprintf "%s larger than remaining input" what);
        total := !total * d;
        d)
  in
  (dims, !total)

let read_shape r =
  let rank_start = r.pos in
  let rank = read_int r in
  if rank < 1 || rank > max_rank then
    fail_at rank_start (Printf.sprintf "invalid tensor rank %d" rank);
  let shape, numel = read_count r ~what:"tensor" rank (fun () -> read_int r) in
  (shape, numel)

let read_tensor r =
  let shape, numel = read_shape r in
  let data = Array.init numel (fun _ -> read_float r) in
  Tensor.of_array shape data

let read_itensor r =
  let shape, numel = read_shape r in
  let data = Array.init numel (fun _ -> read_int r) in
  Itensor.of_array shape data

let read_grid r =
  let dims, _ = read_count r ~what:"grid" 2 (fun () -> read_int r) in
  Array.init dims.(0) (fun _ -> Array.init dims.(1) (fun _ -> read_float r))

let read_scale_grid r ~what ~t =
  let start = r.pos in
  let g = read_grid r in
  if Array.length g <> t || Array.length g.(0) <> t then
    fail_at start
      (Printf.sprintf "%s grid is %dx%d, expected %dx%d" what (Array.length g)
         (Array.length g.(0)) t t);
  Array.iter
    (Array.iter (fun v ->
         if not (Float.is_finite v) || v <= 0.0 then
           fail_at start (what ^ " grid entries must be positive finite floats")))
    g;
  g

(* ------------------------------------------------------ tapwise layers *)

let granularity_name = function
  | Tapwise.Single_scale -> "single"
  | Tapwise.Tap_wise -> "tap"
  | Tapwise.Channel_tap_wise -> "channel-tap"

let granularity_of_name r = function
  | "single" -> Tapwise.Single_scale
  | "tap" -> Tapwise.Tap_wise
  | "channel-tap" -> Tapwise.Channel_tap_wise
  | s -> parse_fail r (Printf.sprintf "unknown granularity %S" s)

let variant_of_name r = function
  | "F2" -> Transform.F2
  | "F4" -> Transform.F4
  | "F6" -> Transform.F6
  | s -> parse_fail r (Printf.sprintf "unknown variant %S" s)

let layer_to_string (l : Tapwise.layer) =
  let buf = Buffer.create 4096 in
  let c = l.Tapwise.config in
  Buffer.add_string buf "tapwise-layer v1\n";
  Buffer.add_string buf
    (Printf.sprintf "config %s %d %d %b %s\n"
       (Transform.name c.Tapwise.variant)
       c.Tapwise.act_bits c.Tapwise.wino_bits c.Tapwise.pow2
       (granularity_name c.Tapwise.granularity));
  Buffer.add_string buf
    (Printf.sprintf "scales %d %h %h %h\n" l.Tapwise.pad l.Tapwise.s_x
       l.Tapwise.s_w l.Tapwise.s_y);
  write_grid buf l.Tapwise.s_b;
  write_grid buf l.Tapwise.s_g;
  (match l.Tapwise.s_g_channel with
  | None -> Buffer.add_string buf "per-channel 0\n"
  | Some grids ->
      Buffer.add_string buf (Printf.sprintf "per-channel %d\n" (Array.length grids));
      Array.iter (write_grid buf) grids);
  write_itensor buf l.Tapwise.wq;
  (match l.Tapwise.bias with
  | None -> Buffer.add_string buf "bias 0\n"
  | Some b ->
      Buffer.add_string buf "bias 1\n";
      write_tensor buf b);
  Buffer.contents buf

let read_bias_flag r =
  expect r "bias";
  match read_int_in r ~what:"bias flag" 0 1 with
  | 1 -> Some (read_tensor r)
  | _ -> None

let read_layer_body r =
  expect r "config";
  let variant = variant_of_name r (read_word r) in
  let act_bits = read_int_in r ~what:"act_bits" 1 30 in
  let wino_bits = read_int_in r ~what:"wino_bits" 1 30 in
  let pow2 = read_bool r in
  let granularity = granularity_of_name r (read_word r) in
  let config = { Tapwise.variant; act_bits; wino_bits; pow2; granularity } in
  let t = Transform.t variant in
  expect r "scales";
  let pad = read_int_in r ~what:"pad" 0 64 in
  let s_x = read_finite_scale r ~what:"s_x" in
  let s_w = read_finite_scale r ~what:"s_w" in
  let s_y = read_finite_scale r ~what:"s_y" in
  let s_b = read_scale_grid r ~what:"s_b" ~t in
  let s_g = read_scale_grid r ~what:"s_g" ~t in
  expect r "per-channel";
  let n_channel_start = r.pos in
  let n_channel = read_int r in
  if n_channel < 0 || n_channel > remaining r then
    fail_at n_channel_start "invalid per-channel count";
  let s_g_channel =
    if n_channel = 0 then None
    else Some (Array.init n_channel (fun _ -> read_scale_grid r ~what:"s_g_channel" ~t))
  in
  let wq_start = r.pos in
  let wq = read_itensor r in
  if Array.length wq.Itensor.shape <> 4 then
    fail_at wq_start "quantized weights must have rank 4";
  if Itensor.dim wq 2 <> t || Itensor.dim wq 3 <> t then
    fail_at wq_start
      (Printf.sprintf "quantized weight taps are %dx%d, expected %dx%d"
         (Itensor.dim wq 2) (Itensor.dim wq 3) t t);
  (match s_g_channel with
  | Some grids when Array.length grids <> Itensor.dim wq 0 ->
      fail_at wq_start
        (Printf.sprintf "%d per-channel grids for %d output channels"
           (Array.length grids) (Itensor.dim wq 0))
  | _ -> ());
  let bias = read_bias_flag r in
  (match bias with
  | Some b when Tensor.numel b <> Itensor.dim wq 0 ->
      parse_fail r "bias length does not match output channels"
  | _ -> ());
  { Tapwise.config; pad; s_x; s_w; s_y; s_b; s_g; s_g_channel; wq; bias }

(* ------------------------------------------------------- spatial layers *)

let qconv_to_buffer buf (l : Qconv.layer) =
  Buffer.add_string buf "qconv-layer v1\n";
  Buffer.add_string buf
    (Printf.sprintf "params %d %d %d %h %h %h\n" l.Qconv.act_bits l.Qconv.stride
       l.Qconv.pad l.Qconv.s_x l.Qconv.s_w l.Qconv.s_y);
  (match l.Qconv.s_w_channel with
  | None -> Buffer.add_string buf "per-channel 0\n"
  | Some s ->
      Buffer.add_string buf (Printf.sprintf "per-channel %d\n" (Array.length s));
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) s;
      Buffer.add_char buf '\n');
  write_itensor buf l.Qconv.wq;
  match l.Qconv.bias with
  | None -> Buffer.add_string buf "bias 0\n"
  | Some b ->
      Buffer.add_string buf "bias 1\n";
      write_tensor buf b

let read_qconv_body r =
  expect r "params";
  let act_bits = read_int_in r ~what:"act_bits" 1 30 in
  let stride = read_int_in r ~what:"stride" 1 64 in
  let pad = read_int_in r ~what:"pad" 0 64 in
  let s_x = read_finite_scale r ~what:"s_x" in
  let s_w = read_finite_scale r ~what:"s_w" in
  let s_y = read_finite_scale r ~what:"s_y" in
  expect r "per-channel";
  let n_channel_start = r.pos in
  let n_channel = read_int r in
  if n_channel < 0 || n_channel > remaining r then
    fail_at n_channel_start "invalid per-channel count";
  let s_w_channel =
    if n_channel = 0 then None
    else
      Some
        (Array.init n_channel (fun _ -> read_finite_scale r ~what:"s_w_channel"))
  in
  let wq_start = r.pos in
  let wq = read_itensor r in
  if Array.length wq.Itensor.shape <> 4 then
    fail_at wq_start "quantized weights must have rank 4";
  (match s_w_channel with
  | Some s when Array.length s <> Itensor.dim wq 0 ->
      fail_at wq_start
        (Printf.sprintf "%d per-channel scales for %d output channels"
           (Array.length s) (Itensor.dim wq 0))
  | _ -> ());
  let bias = read_bias_flag r in
  (match bias with
  | Some b when Tensor.numel b <> Itensor.dim wq 0 ->
      parse_fail r "bias length does not match output channels"
  | _ -> ());
  { Qconv.act_bits; stride; pad; s_x; s_w; s_w_channel; s_y; wq; bias }

(* ----------------------------------------------------------- top level *)

(* Constructor sanity checks ([Tensor.of_array], [Shape.validate]) are a
   second line of defence behind the reader's own validation; fold them
   into the typed error rather than letting them escape. *)
let protect r f =
  match f () with
  | v -> Ok v
  | exception Parse_failure e -> Error e
  | exception (Invalid_argument m | Failure m) ->
      Error { offset = r.pos; message = m }

let layer_of_string_result s =
  let r = reader_of_string s in
  protect r (fun () ->
      expect r "tapwise-layer";
      expect r "v1";
      read_layer_body r)

let qconv_of_string_result s =
  let r = reader_of_string s in
  protect r (fun () ->
      expect r "qconv-layer";
      expect r "v1";
      read_qconv_body r)

let lift_error = function
  | Ok v -> v
  | Error e -> failwith ("Serialize: " ^ error_to_string e)

let layer_of_string s = lift_error (layer_of_string_result s)
let qconv_of_string s = lift_error (qconv_of_string_result s)

let qconv_to_string l =
  let buf = Buffer.create 2048 in
  qconv_to_buffer buf l;
  Buffer.contents buf

let save_layer path layer =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (layer_to_string layer))

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let load_layer_result path =
  match read_whole_file path with
  | s -> layer_of_string_result s
  | exception Sys_error msg -> Error { offset = 0; message = msg }

let load_layer path = lift_error (load_layer_result path)
