module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape
module Transform = Twq_winograd.Transform

type granularity = Single_scale | Tap_wise | Channel_tap_wise

type config = {
  variant : Transform.variant;
  act_bits : int;
  wino_bits : int;
  pow2 : bool;
  granularity : granularity;
}

let default_config variant =
  { variant; act_bits = 8; wino_bits = 8; pow2 = true; granularity = Tap_wise }

type layer = {
  config : config;
  pad : int;
  s_x : float;
  s_w : float;
  s_y : float;
  s_b : float array array;
  s_g : float array array;
  s_g_channel : float array array array option;
      (* [cout][t][t] — set under Channel_tap_wise; overrides s_g *)
  wq : Itensor.t;
  bias : Tensor.t option;
}

let weight_scale l co i j =
  match l.s_g_channel with
  | Some per_channel -> per_channel.(co).(i).(j)
  | None -> l.s_g.(i).(j)

let tie_single_scale scales =
  let m = Array.fold_left (fun a row -> Array.fold_left Float.max a row) 0.0 scales in
  Array.map (Array.map (fun _ -> m)) scales

let pow2_align ~base scales =
  (* Snap each scale to base · 2^⌈log2 (s/base)⌉ so the integer rescale is an
     exact shift relative to the spatial-domain scale. *)
  Array.map
    (Array.map (fun s ->
         let k = Float.ceil (Float.log2 (s /. base)) in
         base *. Float.pow 2.0 k))
    scales

(* Per-tap maxima of G f̂ Gᵀ over all (cout, cin) kernels, plus per-output-
   channel maxima for the combined channel+tap strategy. *)
let weight_tap_maxima variant w_fq =
  let t = Transform.t variant in
  let cout = Tensor.dim w_fq 0 and cin = Tensor.dim w_fq 1 in
  let maxima = Array.make_matrix t t 0.0 in
  let per_channel = Array.init cout (fun _ -> Array.make_matrix t t 0.0) in
  let tiles = Array.make_matrix cout cin (Tensor.zeros [| t; t |]) in
  for co = 0 to cout - 1 do
    for ci = 0 to cin - 1 do
      let f = Tensor.init [| 3; 3 |] (fun i -> Tensor.get4 w_fq co ci i.(0) i.(1)) in
      let wt = Transform.weight_tile variant f in
      tiles.(co).(ci) <- wt;
      for i = 0 to t - 1 do
        for j = 0 to t - 1 do
          let v = Float.abs (Tensor.get2 wt i j) in
          maxima.(i).(j) <- Float.max maxima.(i).(j) v;
          per_channel.(co).(i).(j) <- Float.max per_channel.(co).(i).(j) v
        done
      done
    done
  done;
  (maxima, per_channel, tiles)

(* Per-tap maxima of Bᵀ x̂ B over all tiles/channels of the sample set. *)
let input_tap_maxima variant ~pad ~act_bits ~s_x samples =
  let t = Transform.t variant and m = Transform.m variant in
  let maxima = Array.make_matrix t t 0.0 in
  List.iter
    (fun x ->
      let xq = Quantizer.fake_quant_tensor ~bits:act_bits ~scale:s_x x in
      let n = Tensor.dim xq 0 and cin = Tensor.dim xq 1 in
      let h = Tensor.dim xq 2 and w = Tensor.dim xq 3 in
      let ho = h + (2 * pad) - 2 and wo = w + (2 * pad) - 2 in
      let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
      for ni = 0 to n - 1 do
        for ci = 0 to cin - 1 do
          for th = 0 to n_th - 1 do
            for tw = 0 to n_tw - 1 do
              let tile =
                Tensor.init [| t; t |] (fun idx ->
                    let hi = (th * m) + idx.(0) - pad
                    and wi = (tw * m) + idx.(1) - pad in
                    if hi < 0 || hi >= h || wi < 0 || wi >= w then 0.0
                    else Tensor.get4 xq ni ci hi wi)
              in
              let xt = Transform.input_tile variant tile in
              for i = 0 to t - 1 do
                for j = 0 to t - 1 do
                  maxima.(i).(j) <-
                    Float.max maxima.(i).(j) (Float.abs (Tensor.get2 xt i j))
                done
              done
            done
          done
        done
      done)
    samples;
  maxima

let calibrate ~config ~w ?bias ?input_scale ?scale_grids ~sample_inputs ~pad () =
  let { variant; act_bits; wino_bits; pow2; granularity } = config in
  let t = Transform.t variant in
  let cout = Tensor.dim w 0 and cin = Tensor.dim w 1 in
  (* Spatial-domain scales from plain max calibration; a fixed input scale
     can be imposed so consecutive layers chain (s_x = s_y of the producer). *)
  let s_x =
    match input_scale with
    | Some s -> s
    | None ->
        let x_max =
          List.fold_left (fun a x -> Float.max a (Tensor.max_abs x)) 0.0 sample_inputs
        in
        let s = Quantizer.scale_for ~bits:act_bits ~max_abs:x_max in
        if pow2 then Quantizer.pow2_round_up s else s
  in
  let s_w = Quantizer.scale_for ~bits:act_bits ~max_abs:(Tensor.max_abs w) in
  let s_w = if pow2 then Quantizer.pow2_round_up s_w else s_w in
  let w_fq = Quantizer.fake_quant_tensor ~bits:act_bits ~scale:s_w w in
  (* Winograd-domain tap scales. *)
  let g_max, g_max_channel, w_tiles = weight_tap_maxima variant w_fq in
  let b_max = input_tap_maxima variant ~pad ~act_bits ~s_x sample_inputs in
  let to_scales maxima =
    Array.map
      (Array.map (fun m -> Quantizer.scale_for ~bits:wino_bits ~max_abs:m))
      maxima
  in
  let s_b = to_scales b_max and s_g = to_scales g_max in
  let s_b, s_g =
    match granularity with
    | Tap_wise | Channel_tap_wise -> (s_b, s_g)
    | Single_scale -> (tie_single_scale s_b, tie_single_scale s_g)
  in
  let s_b = if pow2 then pow2_align ~base:s_x s_b else s_b in
  let s_g = if pow2 then pow2_align ~base:s_w s_g else s_g in
  (* Externally learned tap scales (e.g. from Winograd-aware training with
     log2-gradient scale learning) override the static calibration; they
     are still snapped onto the pow2 grid of the integer datapath. *)
  let s_b, s_g =
    match scale_grids with
    | None -> (s_b, s_g)
    | Some (learned_b, learned_g) ->
        let snap base g =
          if pow2 then pow2_align ~base (Array.map Array.copy g)
          else Array.map Array.copy g
        in
        (snap s_x learned_b, snap s_w learned_g)
  in
  (* The combined strategy refines the weight scales per output channel
     (Sec. V-A4: "combining channel-wise with tap-wise"). *)
  let s_g_channel =
    match granularity with
    | Channel_tap_wise ->
        Some
          (Array.map
             (fun grid ->
               let grid = to_scales grid in
               if pow2 then pow2_align ~base:s_w grid else grid)
             g_max_channel)
    | Tap_wise | Single_scale -> None
  in
  let weight_scale_at co i j =
    match s_g_channel with
    | Some per_channel -> per_channel.(co).(i).(j)
    | None -> s_g.(i).(j)
  in
  (* Pre-quantized Winograd-domain weights. *)
  let wq = Itensor.zeros [| cout; cin; t; t |] in
  for co = 0 to cout - 1 do
    for ci = 0 to cin - 1 do
      for i = 0 to t - 1 do
        for j = 0 to t - 1 do
          Itensor.set4 wq co ci i j
            (Quantizer.quantize ~bits:wino_bits ~scale:(weight_scale_at co i j)
               (Tensor.get2 w_tiles.(co).(ci) i j))
        done
      done
    done
  done;
  (* Output scale from a quick fp32 pass over the samples. *)
  let y_max =
    List.fold_left
      (fun a x ->
        let y = Ops.conv2d ~stride:1 ~pad ~x ~w:w_fq ?b:bias () in
        Float.max a (Tensor.max_abs y))
      0.0 sample_inputs
  in
  let s_y = Quantizer.scale_for ~bits:act_bits ~max_abs:y_max in
  let s_y = if pow2 then Quantizer.pow2_round_up s_y else s_y in
  { config; pad; s_x; s_w; s_y; s_b; s_g; s_g_channel; wq; bias }

let shift_of_ratio ratio = int_of_float (Float.round (Float.log2 ratio))

let input_shift l i j = shift_of_ratio (l.s_b.(i).(j) /. l.s_x)
let weight_shift l i j = shift_of_ratio (l.s_g.(i).(j) /. l.s_w)

(* Requantize one integer Winograd tap: X_int carries value X_int·s_x; the
   target grid is s_b.  Under pow2 the ratio is an exact power of two and we
   use the hardware round-shift; otherwise a float round. *)
let requant_tap ~pow2 ~bits ~s_from ~s_to v =
  if pow2 then begin
    let k = shift_of_ratio (s_to /. s_from) in
    let shifted = if k >= 0 then Itensor.round_shift v k else v lsl -k in
    Itensor.clamp_int ~bits shifted
  end
  else Itensor.clamp_int ~bits (int_of_float (Float.round (float_of_int v *. s_from /. s_to)))

(* Tile-major reference path for the integer pipeline — kept as the
   oracle for the tap-major [forward_int] below. *)
let forward_int_ref l x_int =
  let { variant; act_bits; wino_bits; pow2; _ } = l.config in
  let pad = l.pad in
  let t = Transform.t variant and m = Transform.m variant in
  let n = Itensor.dim x_int 0 and cin = Itensor.dim x_int 1 in
  let h = Itensor.dim x_int 2 and w = Itensor.dim x_int 3 in
  let cout = Itensor.dim l.wq 0 in
  if Itensor.dim l.wq 1 <> cin then invalid_arg "Tapwise.forward_int: channel mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w ~kh:3 ~kw:3 ~stride:1 ~pad in
  let out = Itensor.zeros [| n; cout; ho; wo |] in
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  for ni = 0 to n - 1 do
    for th = 0 to n_th - 1 do
      for tw = 0 to n_tw - 1 do
        (* Transform + tap-requantize the input tile of every channel. *)
        let xq =
          Array.init cin (fun ci ->
              let tile =
                Itensor.init [| t; t |] (fun idx ->
                    let hi = (th * m) + idx.(0) - pad
                    and wi = (tw * m) + idx.(1) - pad in
                    if hi < 0 || hi >= h || wi < 0 || wi >= w then 0
                    else Itensor.get4 x_int ni ci hi wi)
              in
              let xt = Transform.input_tile_int variant tile in
              (* The integer transform carries a bt_scale² factor (F6);
                 fold it into the source scale so the requant stays exact. *)
              let bt2 =
                float_of_int (Transform.bt_scale variant * Transform.bt_scale variant)
              in
              Itensor.init [| t; t |] (fun idx ->
                  requant_tap ~pow2 ~bits:wino_bits ~s_from:(l.s_x /. bt2)
                    ~s_to:l.s_b.(idx.(0)).(idx.(1))
                    (Itensor.get2 xt idx.(0) idx.(1))))
        in
        for co = 0 to cout - 1 do
          (* int2b accumulation over input channels. *)
          let acc = Array.make_matrix t t 0 in
          for ci = 0 to cin - 1 do
            for i = 0 to t - 1 do
              for j = 0 to t - 1 do
                acc.(i).(j) <-
                  acc.(i).(j) + (Itensor.get2 xq.(ci) i j * Itensor.get4 l.wq co ci i j)
              done
            done
          done;
          (* Single rescale with S_BG, then the output back-transform. *)
          let y_wino =
            Tensor.init [| t; t |] (fun idx ->
                float_of_int acc.(idx.(0)).(idx.(1))
                *. l.s_b.(idx.(0)).(idx.(1))
                *. weight_scale l co idx.(0) idx.(1))
          in
          let y = Transform.output_tile variant y_wino in
          let bias_v =
            match l.bias with None -> 0.0 | Some b -> b.Tensor.data.(co)
          in
          for dy = 0 to m - 1 do
            for dx = 0 to m - 1 do
              let oh = (th * m) + dy and ow = (tw * m) + dx in
              if oh < ho && ow < wo then
                Itensor.set4 out ni co oh ow
                  (Quantizer.quantize ~bits:act_bits ~scale:l.s_y
                     (Tensor.get2 y dy dx +. bias_v))
            done
          done
        done
      done
    done
  done;
  out

(* Per-domain staging for the tap-major integer forward (one arena per
   logically distinct buffer — see {!Twq_util.Parallel.Scratch}). *)
module P = Twq_util.Parallel
module Kernels = Twq_winograd.Kernels
module Microkernel = Twq_winograd.Microkernel

let ta_tile = P.Scratch.create_int ()
let ta_xt = P.Scratch.create_int ()
let ta_tmp = P.Scratch.create_int ()
let ta_v = P.Scratch.create_int ()
let ta_mo = P.Scratch.create_int ()
let ta_yw = P.Scratch.create_float ()
let ta_yo = P.Scratch.create_float ()
let ta_ftmp = P.Scratch.create_float ()

(* Everything about the layer that does not depend on the input shape,
   staged once: the tap-major Winograd weight panel [u], the flattened
   tap-scale lookups and the requant source scale.  [forward_int]
   rebuilt these on every call before the planner existed; packing at
   plan/lowering time removes that per-forward cost entirely. *)
type packed = {
  layer : layer;
  u : int array;
      (* Winograd weights, NR-packed for the microkernel:
         u[tap·cin·cout_p + ((jb·cin + ci)·nr + jr)] with [co = jb·nr+jr];
         pad lanes [co ≥ cout] are zero. *)
  nr : int;  (* register block width the panel was packed with *)
  cout_p : int;  (* cout rounded up to [nr] *)
  sparse : Microkernel.sparse option array;
      (* Per-tap compressed panel, present iff the tap's measured
         density fell below [Microkernel.sparse_threshold] at pack
         time.  [None] taps run the dense driver unchanged. *)
  tap_density : float array;  (* measured nonzero fraction per tap *)
  sb_flat : float array;
  ws_flat : float array;
  s_from : float;
  (* Requant lookups, one entry per tap.  The scatter loop runs per
     element; going through [requant_tap] there boxes its float
     arguments on every call (no flambda), which was the dominant
     steady-state allocation of the whole forward.  Precomputing the
     pow2 shift per tap lets the hot loop stay in unboxed int/float
     arithmetic. *)
  shift_flat : int array;  (* pow2: requant shift, s_b(tap)/s_from = 2^k *)
}

let pack l =
  let { variant; _ } = l.config in
  let t = Transform.t variant in
  let tt = t * t in
  let cout = Itensor.dim l.wq 0 and cin = Itensor.dim l.wq 1 in
  let bt2 =
    float_of_int (Transform.bt_scale variant * Transform.bt_scale variant)
  in
  let sb_flat = Array.init tt (fun tap -> l.s_b.(tap / t).(tap mod t)) in
  let ws_flat =
    Array.init (cout * tt) (fun idx ->
        let co = idx / tt and tap = idx mod tt in
        weight_scale l co (tap / t) (tap mod t))
  in
  (* The packing geometry is captured here so a later config change
     cannot desync the layout from its consumers in [forward_int_into]. *)
  let { Microkernel.nr; _ } = Microkernel.config () in
  let cout_p = Microkernel.round_up cout nr in
  let ucincp = cin * cout_p in
  let u = Array.make (tt * ucincp) 0 in
  P.parallel_for ~lo:0 ~hi:(cout * cin) (fun idx ->
      let co = idx / cin and ci = idx mod cin in
      let jb = co / nr and jr = co mod nr in
      let base = (((jb * cin) + ci) * nr) + jr in
      for tap = 0 to tt - 1 do
        u.((tap * ucincp) + base) <-
          Itensor.get4 l.wq co ci (tap / t) (tap mod t)
      done);
  let s_from = l.s_x /. bt2 in
  let shift_flat =
    Array.init tt (fun tap -> shift_of_ratio (sb_flat.(tap) /. s_from))
  in
  (* Sparse/dense is decided here, per tap, against the process-wide
     threshold: density is measured on the packed panel (pad lanes are
     zero and excluded from the denominator), and a tap below the
     cutoff keeps its compressed form for [forward_int_into].  With the
     threshold at 0.0 every tap stays [None] and execution is the dense
     path, byte for byte. *)
  let thresh = Microkernel.sparse_threshold () in
  let denom = float_of_int (max 1 (cin * cout)) in
  let tap_density = Array.make tt 1.0 in
  let sparse =
    Array.init tt (fun tap ->
        let sp =
          Microkernel.compress_panel ~nr ~k:cin ~cols:cout_p u
            ~uo:(tap * ucincp)
        in
        let d = float_of_int (Microkernel.sparse_nnz sp) /. denom in
        tap_density.(tap) <- d;
        if d < thresh then Some sp else None)
  in
  {
    layer = l;
    u;
    nr;
    cout_p;
    sparse;
    tap_density;
    sb_flat;
    ws_flat;
    s_from;
    shift_flat;
  }

let packed_layer p = p.layer
let tap_densities p = Array.copy p.tap_density

let sparse_tap_count p =
  Array.fold_left
    (fun acc s -> match s with Some _ -> acc + 1 | None -> acc)
    0 p.sparse

(* Production path: the same integer pipeline reformulated tap-major —
   transform + per-tap requantize each tile once, run one register-tiled
   int GEMM per tap ({!Twq_winograd.Microkernel}) against the NR-packed
   pre-quantized Winograd weights, rescale with [S_BG], back-transform,
   requantize with [s_y].  Integer addition is associative, so the
   blocked GEMM stays bit-identical to [forward_int_ref]; parallelized
   over tile blocks.  Writes into the caller-provided [out] and applies
   [epilogue] in the gather store, so the planner can fuse
   requant/ReLU/residual-add into this single output pass. *)
let forward_int_into ?(epilogue = Kernels.no_epilogue) p x_int ~out =
  let l = p.layer in
  let { variant; act_bits; wino_bits; pow2; _ } = l.config in
  let pad = l.pad in
  let t = Transform.t variant and m = Transform.m variant in
  let tt = t * t in
  let n = Itensor.dim x_int 0 and cin = Itensor.dim x_int 1 in
  let h = Itensor.dim x_int 2 and w = Itensor.dim x_int 3 in
  let cout = Itensor.dim l.wq 0 in
  if Itensor.dim l.wq 1 <> cin then
    invalid_arg "Tapwise.forward_int: channel mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w ~kh:3 ~kw:3 ~stride:1 ~pad in
  if
    Itensor.dim out 0 <> n || Itensor.dim out 1 <> cout
    || Itensor.dim out 2 <> ho || Itensor.dim out 3 <> wo
  then invalid_arg "Tapwise.forward_int_into: out shape mismatch";
  let od = out.Itensor.data and xd = x_int.Itensor.data in
  let ki = Kernels.i32_specialized variant in
  let kf = Kernels.f32_specialized variant in
  let s_from = p.s_from in
  let sb_flat = p.sb_flat and ws_flat = p.ws_flat and u = p.u in
  let shift_flat = p.shift_flat in
  (* Clamp bounds and the output scale, hoisted so the per-element
     loops below are pure unboxed arithmetic (no allocating calls). *)
  let w_hi = (1 lsl (wino_bits - 1)) - 1 in
  let w_lo = -(w_hi + 1) in
  let a_hi = (1 lsl (act_bits - 1)) - 1 in
  let a_lo = -(a_hi + 1) in
  let s_y = l.s_y in
  let nr = p.nr and cout_p = p.cout_p in
  let ucincp = cin * cout_p in
  let { Microkernel.mr; kc; _ } = Microkernel.config () in
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  let tiles_per_img = n_th * n_tw in
  let total = n * tiles_per_img in
  let tb =
    Microkernel.round_up
      (max 1 (min 32 (total / (max 1 (4 * P.num_domains ())))))
      mr
  in
  let tbcin = tb * cin in
  let nblocks = (total + tb - 1) / tb in
  P.parallel_for ~chunk:1 ~lo:0 ~hi:nblocks (fun blk ->
      let b0 = blk * tb in
      let bs = min tb (total - b0) in
      let bs_p = Microkernel.round_up bs mr in
      let tile = P.Scratch.borrow ta_tile tt in
      let xt = P.Scratch.borrow ta_xt tt in
      let tmp = P.Scratch.borrow ta_tmp tt in
      let v = P.Scratch.borrow ta_v (tt * tbcin) in
      let mo = P.Scratch.borrow ta_mo (tt * tb * cout_p) in
      let yw = P.Scratch.borrow ta_yw tt in
      let yo = P.Scratch.borrow ta_yo (m * m) in
      let ftmp = P.Scratch.borrow ta_ftmp (m * t) in
      (* Scatter: integer transform + per-tap requantization. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          Kernels.load_tile_i xd ~h ~w
            ~base:(((ni * cin) + ci) * h * w)
            ~pad ~h0:(th * m) ~w0:(tw * m) ~t tile;
          ki.Kernels.input tile 0 xt 0 tmp;
          let vbase = (((ib * cin) + ci) * mr) + ir in
          (* Per-tap requant, inlined bit-identically to [requant_tap]:
             calling it here would box the float scales every element. *)
          for tap = 0 to tt - 1 do
            let vv = xt.(tap) in
            let q =
              if pow2 then begin
                let k = shift_flat.(tap) in
                let shifted =
                  if k > 0 then begin
                    let half = 1 lsl (k - 1) in
                    if vv >= 0 then (vv + half) asr k
                    else -((-vv + half) asr k)
                  end
                  else if k = 0 then vv
                  else vv lsl -k
                in
                if shifted > w_hi then w_hi
                else if shifted < w_lo then w_lo
                else shifted
              end
              else begin
                let r =
                  int_of_float
                    (Float.round (float_of_int vv *. s_from /. sb_flat.(tap)))
                in
                if r > w_hi then w_hi else if r < w_lo then w_lo else r
              end
            in
            v.((tap * tbcin) + vbase) <- q
          done
        done
      done;
      (* Zero the pad rows of a trailing partial block. *)
      for bidx = bs to bs_p - 1 do
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for tap = 0 to tt - 1 do
            v.((tap * tbcin) + vbase) <- 0
          done
        done
      done;
      (* One register-tiled int GEMM per tap (int2b accumulation over
         input channels, exact and order-independent).  Taps whose
         packed panel came out below the sparse threshold run the
         compressed-column driver — bit-identical, it only skips exact
         zeros. *)
      Array.fill mo 0 (tt * tb * cout_p) 0;
      for tap = 0 to tt - 1 do
        match p.sparse.(tap) with
        | Some sp ->
            Microkernel.gemm_i32_sparse ~mr ~rows_p:bs_p ~sp ~vp:v
              ~vo:(tap * tbcin) ~c:mo ~co:(tap * tb * cout_p)
              ~cstride:cout_p
        | None ->
            Microkernel.gemm_i32 ~mr ~nr ~kc ~rows_p:bs_p ~cols_p:cout_p
              ~k:cin ~vp:v ~vo:(tap * tbcin) ~up:u ~uo:(tap * ucincp) ~c:mo
              ~co:(tap * tb * cout_p) ~cstride:cout_p
      done;
      (* Gather: single S_BG rescale, float back-transform, requantize. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let h0 = th * m and w0 = tw * m in
        let rh = min m (ho - h0) and rw = min m (wo - w0) in
        for co = 0 to cout - 1 do
          for tap = 0 to tt - 1 do
            yw.(tap) <-
              float_of_int mo.((((tap * tb) + bidx) * cout_p) + co)
              *. sb_flat.(tap)
              *. ws_flat.((co * tt) + tap)
          done;
          kf.Kernels.output yw 0 yo 0 ftmp;
          let bias_v =
            match l.bias with None -> 0.0 | Some b -> b.Tensor.data.(co)
          in
          for dy = 0 to rh - 1 do
            let orow = (((((ni * cout) + co) * ho) + h0 + dy) * wo) + w0 in
            let yrow = dy * m in
            for dx = 0 to rw - 1 do
              (* Inlined [Quantizer.quantize ~bits:act_bits ~scale:s_y]. *)
              let r =
                int_of_float (Float.round ((yo.(yrow + dx) +. bias_v) /. s_y))
              in
              let q =
                if r > a_hi then a_hi else if r < a_lo then a_lo else r
              in
              Kernels.epilogue_store epilogue od (orow + dx) q
            done
          done
        done
      done)

let forward_int l x_int =
  let p = pack l in
  let n = Itensor.dim x_int 0 in
  let h = Itensor.dim x_int 2 and w = Itensor.dim x_int 3 in
  let cout = Itensor.dim l.wq 0 in
  let ho, wo = Shape.conv2d_out ~h ~w ~kh:3 ~kw:3 ~stride:1 ~pad:l.pad in
  let out = Itensor.zeros [| n; cout; ho; wo |] in
  forward_int_into p x_int ~out;
  out

let forward l x =
  let x_int = Quantizer.quantize_tensor ~bits:l.config.act_bits ~scale:l.s_x x in
  Quantizer.dequantize_tensor ~scale:l.s_y (forward_int l x_int)

let forward_float_ref l x =
  let { variant; act_bits; wino_bits; _ } = l.config in
  let pad = l.pad in
  let t = Transform.t variant and m = Transform.m variant in
  let xq = Quantizer.fake_quant_tensor ~bits:act_bits ~scale:l.s_x x in
  let n = Tensor.dim xq 0 and cin = Tensor.dim xq 1 in
  let h = Tensor.dim xq 2 and w = Tensor.dim xq 3 in
  let cout = Itensor.dim l.wq 0 in
  let ho, wo = Shape.conv2d_out ~h ~w ~kh:3 ~kw:3 ~stride:1 ~pad in
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  for ni = 0 to n - 1 do
    for th = 0 to n_th - 1 do
      for tw = 0 to n_tw - 1 do
        let xt_q =
          Array.init cin (fun ci ->
              let tile =
                Tensor.init [| t; t |] (fun idx ->
                    let hi = (th * m) + idx.(0) - pad
                    and wi = (tw * m) + idx.(1) - pad in
                    if hi < 0 || hi >= h || wi < 0 || wi >= w then 0.0
                    else Tensor.get4 xq ni ci hi wi)
              in
              let xt = Transform.input_tile variant tile in
              Tensor.init [| t; t |] (fun idx ->
                  float_of_int
                    (Quantizer.quantize ~bits:wino_bits
                       ~scale:l.s_b.(idx.(0)).(idx.(1))
                       (Tensor.get2 xt idx.(0) idx.(1)))))
        in
        for co = 0 to cout - 1 do
          let acc = Tensor.zeros [| t; t |] in
          for ci = 0 to cin - 1 do
            for i = 0 to t - 1 do
              for j = 0 to t - 1 do
                Tensor.set2 acc i j
                  (Tensor.get2 acc i j
                  +. (Tensor.get2 xt_q.(ci) i j *. float_of_int (Itensor.get4 l.wq co ci i j)))
              done
            done
          done;
          let y_wino =
            Tensor.init [| t; t |] (fun idx ->
                Tensor.get2 acc idx.(0) idx.(1)
                *. l.s_b.(idx.(0)).(idx.(1))
                *. weight_scale l co idx.(0) idx.(1))
          in
          let y = Transform.output_tile variant y_wino in
          let bias_v =
            match l.bias with None -> 0.0 | Some b -> b.Tensor.data.(co)
          in
          for dy = 0 to m - 1 do
            for dx = 0 to m - 1 do
              let oh = (th * m) + dy and ow = (tw * m) + dx in
              if oh < ho && ow < wo then
                Tensor.set4 out ni co oh ow
                  (Quantizer.fake_quant ~bits:act_bits ~scale:l.s_y
                     (Tensor.get2 y dy dx +. bias_v))
            done
          done
        done
      done
    done
  done;
  out

let quantization_noise l x ~w =
  let reference = Ops.conv2d ~stride:1 ~pad:l.pad ~x ~w ?b:l.bias () in
  let quantized = forward l x in
  let err = Tensor.sub reference quantized in
  sqrt (Tensor.sumsq err /. Float.max 1e-30 (Tensor.sumsq reference))
