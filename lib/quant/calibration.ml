module Tensor = Twq_tensor.Tensor

type t = {
  momentum : float;
  mutable value : float;
  mutable seen : bool;
  mutable frozen : bool;
}

let create ?(momentum = 0.9) () =
  { momentum; value = 0.0; seen = false; frozen = false }

let set_frozen o b = o.frozen <- b

let observe o batch_max =
  (* A frozen observer ignores new batches so evaluation forwards are
     pure (and safe to run on several domains); the very first
     observation still seeds it, otherwise [value] would be unusable. *)
  if not (o.frozen && o.seen) then begin
    let batch_max = Float.abs batch_max in
    if o.seen then
      o.value <- (o.momentum *. o.value) +. ((1.0 -. o.momentum) *. batch_max)
    else begin
      o.value <- batch_max;
      o.seen <- true
    end
  end

let observe_tensor o t = observe o (Tensor.max_abs t)

let value o =
  if not o.seen then failwith "Calibration.value: no observations";
  o.value

let is_calibrated o = o.seen

type snapshot = { snap_value : float; snap_seen : bool }

let snapshot o = { snap_value = o.value; snap_seen = o.seen }

let restore o s =
  o.value <- s.snap_value;
  o.seen <- s.snap_seen

type taps = {
  observers : t array array;
  pending : float array array;  (* per-batch running max, folded on flush *)
  mutable dirty : bool;
}

let create_taps ?momentum ~t () =
  {
    observers = Array.init t (fun _ -> Array.init t (fun _ -> create ?momentum ()));
    pending = Array.make_matrix t t 0.0;
    dirty = false;
  }

let observe_tile taps tile =
  let t = Array.length taps.observers in
  if Tensor.dim tile 0 <> t || Tensor.dim tile 1 <> t then
    invalid_arg "Calibration.observe_tile: tile size mismatch";
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      taps.pending.(i).(j) <-
        Float.max taps.pending.(i).(j) (Float.abs (Tensor.get2 tile i j))
    done
  done;
  taps.dirty <- true

let flush_batch taps =
  if taps.dirty then begin
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j o ->
            observe o taps.pending.(i).(j);
            taps.pending.(i).(j) <- 0.0)
          row)
      taps.observers;
    taps.dirty <- false
  end

let tap_values taps =
  flush_batch taps;
  Array.map (Array.map value) taps.observers

(* Percentile calibration: clip to the p-th percentile of |x| instead of
   the absolute maximum — robust to activation outliers (Krishnamoorthi,
   arXiv:1806.08342, cited by the paper). *)
let percentile_max ~percentile xs =
  if percentile <= 0.0 || percentile > 100.0 then
    invalid_arg "Calibration.percentile_max: percentile out of (0, 100]";
  let mags = Array.map Float.abs xs in
  Twq_util.Stats.percentile mags percentile

let percentile_max_tensor ~percentile (t : Tensor.t) =
  percentile_max ~percentile t.Tensor.data
