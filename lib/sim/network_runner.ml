module Zoo = Twq_nn.Zoo
module Transform = Twq_winograd.Transform

type policy = P_im2col | P_winograd of Transform.variant

let policy_name = function
  | P_im2col -> "im2col"
  | P_winograd v -> Transform.name v

type layer_choice = {
  layer : Zoo.conv_spec;
  chosen : Operator.kind;
  result : Operator.result;
}

type run = {
  network : Zoo.network;
  batch : int;
  policy : policy;
  layers : layer_choice list;
  total_cycles : float;
  throughput_imgs_per_s : float;
  energy_pj : float;
  inferences_per_joule : float;
}

let choose arch policy layer ~batch =
  let im2col = Operator.run arch Operator.Im2col layer ~batch in
  match policy with
  | P_im2col -> { layer; chosen = Operator.Im2col; result = im2col }
  | P_winograd v ->
      let wino_kind = Operator.Winograd v in
      if Operator.supports wino_kind layer then begin
        let wino = Operator.run arch wino_kind layer ~batch in
        if wino.Operator.cycles < im2col.Operator.cycles then
          { layer; chosen = wino_kind; result = wino }
        else { layer; chosen = Operator.Im2col; result = im2col }
      end
      else { layer; chosen = Operator.Im2col; result = im2col }

(* Per-layer simulator runs are independent and pure, so a full-network
   sweep can fan out across domains — but only when that can win.  The
   sweep is allocation-heavy (millions of minor words per network), so
   every extra domain adds stop-the-world minor-GC synchronizations: on
   a machine with fewer cores than requested domains, or with too few
   layers to amortize the dispatch, the parallel sweep measured ~1.7x
   *slower* than sequential.  Fall back to a plain sequential map in
   those regimes — the outputs are identical either way — and chunk the
   dispatch coarsely otherwise so each task carries real work. *)
let par_sweep f arr =
  let nd = Twq_util.Parallel.num_domains () in
  let n = Array.length arr in
  if nd < 2 || Domain.recommended_domain_count () < 2 || n < 4 * nd then
    Array.map f arr
  else Twq_util.Parallel.map_array ~chunk:(max 1 (n / (4 * nd))) f arr

let run arch policy network ~batch =
  let layers =
    Array.to_list
      (par_sweep
         (fun l -> choose arch policy l ~batch)
         (Array.of_list network.Zoo.layers))
  in
  let total_cycles =
    List.fold_left (fun a c -> a +. c.result.Operator.cycles) 0.0 layers
  in
  let energy_pj =
    List.fold_left (fun a c -> a +. c.result.Operator.energy.Operator.e_total) 0.0 layers
  in
  let clock = Twq_hw.Area_power.clock_hz in
  let throughput = float_of_int batch /. (total_cycles /. clock) in
  {
    network;
    batch;
    policy;
    layers;
    total_cycles;
    throughput_imgs_per_s = throughput;
    energy_pj;
    inferences_per_joule = float_of_int batch /. (energy_pj *. 1e-12);
  }

let winograd_layer_speedup arch variant network ~batch =
  let ratios =
    List.filter_map Fun.id
      (Array.to_list
         (par_sweep
            (fun l ->
              if Zoo.winograd_eligible l then begin
                let im2col = Operator.run arch Operator.Im2col l ~batch in
                let wino = Operator.run arch (Operator.Winograd variant) l ~batch in
                Some (im2col.Operator.cycles /. wino.Operator.cycles)
              end
              else None)
            (Array.of_list network.Zoo.layers)))
  in
  match ratios with
  | [] -> 1.0
  | _ -> Twq_util.Stats.geometric_mean (Array.of_list ratios)
