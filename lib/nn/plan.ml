(* Compiled execution plans for the integer inference graphs.

   [Int_graph.run] and [Deploy.forward] used to interpret their graphs
   node by node, allocating a fresh tensor per node per forward and
   sweeping activations again for every elementwise epilogue — exactly
   the inter-stage traffic the paper's FixPipe fuses away in hardware.
   A plan compiles a lowered [program] for one concrete input shape:

   - the schedule is the topological node order, restricted to nodes
     reachable from the output (dead placeholder nodes are dropped);
   - elementwise epilogues (requant already lives in the conv store;
     ReLU and the saturating residual add) are fused into the producing
     conv's output loop when the producer has no other consumer, so the
     activation is written once instead of swept up to three times;
   - every intermediate activation gets a liveness interval
     [def step, last read step] on the fused schedule and a greedy
     best-fit assignment onto a small set of reusable arena buffers —
     two live intervals never share a buffer, so planned execution is
     bit-identical to the interpreter;
   - buffers (and per-step epilogue descriptors) are materialized once
     per domain via [Domain.DLS], so concurrent server workers share the
     plan but never a buffer, and steady-state forwards allocate almost
     nothing (just the returned logits).

   Plans are cached per input shape ([cache]), which is what the serving
   layer keys on batch size. *)

module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape
module Tapwise = Twq_quant.Tapwise
module Qconv = Twq_quant.Qconv
module Quantizer = Twq_quant.Quantizer
module Kernels = Twq_winograd.Kernels

(* ------------------------------------------------------------ program IR *)

type prim =
  | P_quantize of float  (* float input -> int8 at the given scale *)
  | P_wino of Tapwise.packed
  | P_spatial of Qconv.layer
  | P_relu
  | P_leaky of int
  | P_max_pool of { k : int; stride : int }
  | P_avg_pool2
  | P_upsample of int
  | P_add of { shift_a : int; shift_b : int }
  | P_concat of { shift_a : int; shift_b : int }
  | P_head of { w : Tensor.t; bias : Tensor.t option; in_scale : float }

type pnode = { prim : prim; args : int list }
type program = { pnodes : pnode array; out : int }

let is_conv_prim = function P_wino _ | P_spatial _ -> true | _ -> false

(* ------------------------------------------------------- compiled plans *)

(* Fused epilogue spec in node-id space; materialized per domain into a
   [Kernels.epilogue] pointing at that domain's arena buffers. *)
type epi_spec = {
  e_relu : bool;
  e_add : (int * int * int) option;  (* other node, shift_self, shift_other *)
}

let no_epi = { e_relu = false; e_add = None }

type step =
  | S_quantize of { scale : float; dst : int }
  | S_wino of { p : Tapwise.packed; src : int; dst : int; epi : epi_spec }
  | S_spatial of { l : Qconv.layer; src : int; dst : int; epi : epi_spec }
  | S_relu of { src : int; dst : int }
  | S_leaky of { k : int; src : int; dst : int }
  | S_max_pool of { k : int; stride : int; src : int; dst : int }
  | S_avg_pool2 of { src : int; dst : int }
  | S_upsample of { f : int; src : int; dst : int }
  | S_add of { a : int; b : int; shift_a : int; shift_b : int; dst : int }
  | S_concat of { a : int; b : int; shift_a : int; shift_b : int; dst : int }

type head_spec = {
  h_wt : Tensor.t;  (* pre-transposed weights, so the forward only matmuls *)
  h_bias : Tensor.t option;
  h_in_scale : float;
  h_src : int;
}

(* Per-domain execution state: exact-size arena buffers, per-node tensor
   views into them, and per-step epilogue descriptors bound to this
   domain's buffers.  Built lazily on each domain's first run. *)
type dstate = {
  slots : int array array;
  view : Itensor.t array;
  epi : Kernels.epilogue array;  (* indexed by step *)
  pooled : float array;  (* head GAP scratch, [n * c_feat] *)
}

type assignment = { node : int; slot : int; birth : int; death : int; words : int }

type t = {
  input_shape : int array;
  steps : step array;
  head : head_spec;
  shapes : int array array;
  slot_of : int array;  (* node -> buffer id; -1 = no buffer *)
  buf_sizes : int array;
  dls : dstate Domain.DLS.key;
  assignments : assignment array;
  fused : int;
  naive_words : int;  (* sum of all live activations without reuse *)
}

let input_shape t = t.input_shape
let num_steps t = Array.length t.steps
let num_buffers t = Array.length t.buf_sizes
let arena_words t = Array.fold_left ( + ) 0 t.buf_sizes
let naive_words t = t.naive_words
let fused_epilogues t = t.fused
let assignments t = Array.to_list t.assignments

(* ------------------------------------------------------ shape inference *)

let infer_shapes pnodes ~input_shape =
  let shapes = Array.make (Array.length pnodes) [||] in
  let dims i = (shapes.(i).(0), shapes.(i).(1), shapes.(i).(2), shapes.(i).(3)) in
  Array.iteri
    (fun i { prim; args } ->
      let arg k = List.nth args k in
      shapes.(i) <-
        (match prim with
        | P_quantize _ -> Array.copy input_shape
        | P_wino p ->
            let l = Tapwise.packed_layer p in
            let n, _, h, w = dims (arg 0) in
            let cout = Itensor.dim l.Tapwise.wq 0 in
            let ho, wo =
              Shape.conv2d_out ~h ~w ~kh:3 ~kw:3 ~stride:1 ~pad:l.Tapwise.pad
            in
            [| n; cout; ho; wo |]
        | P_spatial l ->
            let n, _, h, w = dims (arg 0) in
            let cout = Itensor.dim l.Qconv.wq 0 in
            let kh = Itensor.dim l.Qconv.wq 2 and kw = Itensor.dim l.Qconv.wq 3 in
            let ho, wo =
              Shape.conv2d_out ~h ~w ~kh ~kw ~stride:l.Qconv.stride
                ~pad:l.Qconv.pad
            in
            [| n; cout; ho; wo |]
        | P_relu | P_leaky _ -> Array.copy shapes.(arg 0)
        | P_max_pool { k; stride } ->
            let n, c, h, w = dims (arg 0) in
            [| n; c; ((h - k) / stride) + 1; ((w - k) / stride) + 1 |]
        | P_avg_pool2 ->
            let n, c, h, w = dims (arg 0) in
            [| n; c; h / 2; w / 2 |]
        | P_upsample f ->
            let n, c, h, w = dims (arg 0) in
            [| n; c; h * f; w * f |]
        | P_add _ -> Array.copy shapes.(arg 0)
        | P_concat _ ->
            let n, ca, h, w = dims (arg 0) in
            let cb = shapes.(arg 1).(1) in
            [| n; ca + cb; h; w |]
        | P_head { w; _ } -> [| shapes.(arg 0).(0); Tensor.dim w 0 |]))
    pnodes;
  shapes

(* ------------------------------------------------------------- compile *)

let compile program ~input_shape =
  if Array.length input_shape <> 4 then
    invalid_arg "Plan.compile: input shape must be [| n; c; h; w |]";
  let pnodes = program.pnodes in
  let n = Array.length pnodes in
  (match pnodes.(program.out).prim with
  | P_head _ -> ()
  | _ -> invalid_arg "Plan.compile: program output must be a head node");
  let shapes = infer_shapes pnodes ~input_shape in
  (* Reachability from the output: dead nodes (e.g. the patched-out GAP
     placeholder of Int_graph) are neither scheduled nor given buffers. *)
  let reach = Array.make n false in
  let rec mark i =
    if not reach.(i) then begin
      reach.(i) <- true;
      List.iter mark pnodes.(i).args
    end
  in
  mark program.out;
  (* Consumer multiplicity over reachable nodes — fusion requires the
     producer to have exactly one consumer. *)
  let cons = Array.make n 0 in
  Array.iteri
    (fun i { args; _ } ->
      if reach.(i) then List.iter (fun j -> cons.(j) <- cons.(j) + 1) args)
    pnodes;
  (* Epilogue fusion.  [alias.(i)] names the node whose buffer holds
     node [i]'s value; fused adds/relus are skipped as steps and their
     effect moves into the producing conv's output loop.  An add can
     only fuse into an operand that is itself a conv with no other
     consumer, and only if the *other* operand's representative is
     computed before that conv runs. *)
  let alias = Array.init n (fun i -> i) in
  let skip = Array.make n false in
  let epi_relu = Array.make n false in
  let epi_add = Array.make n None in
  Array.iteri
    (fun i { prim; args } ->
      if reach.(i) then
        match (prim, args) with
        | P_relu, [ j ] ->
            let p = alias.(j) in
            if is_conv_prim pnodes.(p).prim && cons.(j) = 1 && not epi_relu.(p)
            then begin
              epi_relu.(p) <- true;
              skip.(i) <- true;
              alias.(i) <- p
            end
        | P_add { shift_a; shift_b }, [ a; b ] when a <> b ->
            let try_fuse x sx y sy =
              if
                is_conv_prim pnodes.(x).prim
                && cons.(x) = 1
                && (not epi_relu.(x))
                && epi_add.(x) = None
                && alias.(y) < x
              then begin
                epi_add.(x) <- Some (alias.(y), sx, sy);
                skip.(i) <- true;
                alias.(i) <- x;
                true
              end
              else false
            in
            let hi, s_hi, lo, s_lo =
              if b > a then (b, shift_b, a, shift_a) else (a, shift_a, b, shift_b)
            in
            ignore (try_fuse hi s_hi lo s_lo || try_fuse lo s_lo hi s_hi)
        | _ -> ())
    pnodes;
  let fused =
    Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 skip
  in
  (* Schedule: reachable, unfused, non-head nodes in topological order. *)
  let sched = ref [] in
  for i = n - 1 downto 0 do
    if reach.(i) && (not skip.(i)) && i <> program.out then sched := i :: !sched
  done;
  let sched = Array.of_list !sched in
  let nsteps = Array.length sched in
  let resolve j = alias.(j) in
  let steps =
    Array.map
      (fun i ->
        let { prim; args } = pnodes.(i) in
        let arg k = resolve (List.nth args k) in
        match prim with
        | P_quantize scale -> S_quantize { scale; dst = i }
        | P_wino p ->
            S_wino
              {
                p;
                src = arg 0;
                dst = i;
                epi = { e_relu = epi_relu.(i); e_add = epi_add.(i) };
              }
        | P_spatial l ->
            S_spatial
              {
                l;
                src = arg 0;
                dst = i;
                epi = { e_relu = epi_relu.(i); e_add = epi_add.(i) };
              }
        | P_relu -> S_relu { src = arg 0; dst = i }
        | P_leaky k -> S_leaky { k; src = arg 0; dst = i }
        | P_max_pool { k; stride } -> S_max_pool { k; stride; src = arg 0; dst = i }
        | P_avg_pool2 -> S_avg_pool2 { src = arg 0; dst = i }
        | P_upsample f -> S_upsample { f; src = arg 0; dst = i }
        | P_add { shift_a; shift_b } ->
            S_add { a = arg 0; b = arg 1; shift_a; shift_b; dst = i }
        | P_concat { shift_a; shift_b } ->
            S_concat { a = arg 0; b = arg 1; shift_a; shift_b; dst = i }
        | P_head _ -> assert false)
      sched
  in
  let head =
    match pnodes.(program.out) with
    | { prim = P_head { w; bias; in_scale }; args } ->
        {
          h_wt = Ops.transpose w;
          h_bias = bias;
          h_in_scale = in_scale;
          h_src = resolve (List.hd args);
        }
    | _ -> assert false
  in
  (* Liveness on the fused schedule.  A step reads its resolved operands
     (a fused residual add reads the other operand inside the conv's
     step); the head reads its feature map at step [nsteps]. *)
  let def = Array.make n (-1) and last_read = Array.make n (-1) in
  let reads_of = function
    | S_quantize _ -> []
    | S_wino { src; epi; _ } | S_spatial { src; epi; _ } -> (
        match epi.e_add with
        | Some (other, _, _) -> [ src; other ]
        | None -> [ src ])
    | S_relu { src; _ }
    | S_leaky { src; _ }
    | S_max_pool { src; _ }
    | S_avg_pool2 { src; _ }
    | S_upsample { src; _ } -> [ src ]
    | S_add { a; b; _ } | S_concat { a; b; _ } -> [ a; b ]
  in
  let dst_of = function
    | S_quantize { dst; _ }
    | S_wino { dst; _ }
    | S_spatial { dst; _ }
    | S_relu { dst; _ }
    | S_leaky { dst; _ }
    | S_max_pool { dst; _ }
    | S_avg_pool2 { dst; _ }
    | S_upsample { dst; _ }
    | S_add { dst; _ }
    | S_concat { dst; _ } -> dst
  in
  Array.iteri
    (fun s st ->
      def.(dst_of st) <- s;
      List.iter
        (fun j -> if s > last_read.(j) then last_read.(j) <- s)
        (reads_of st))
    steps;
  last_read.(head.h_src) <- nsteps;
  (* Greedy best-fit assignment of node buffers onto a reusable arena.
     At each step, buffers whose owner's last read is strictly past are
     released; the new output takes the smallest free buffer that fits,
     grows the largest free one if none fits, or opens a fresh buffer. *)
  let slot_of = Array.make n (-1) in
  let buf_sizes = ref [] (* reversed: slot id = length - 1 - position *)
  and nbufs = ref 0 in
  let size_of = Array.make n 0 in
  let free = ref [] and active = ref [] in
  let sizes_arr () = Array.of_list (List.rev !buf_sizes) in
  let grow slot need =
    buf_sizes :=
      List.mapi
        (fun k sz ->
          if !nbufs - 1 - k = slot then Stdlib.max sz need else sz)
        !buf_sizes
  in
  let assignments = ref [] in
  Array.iteri
    (fun s st ->
      let dead, live =
        List.partition (fun node -> last_read.(node) < s) !active
      in
      active := live;
      List.iter (fun node -> free := slot_of.(node) :: !free) dead;
      let node = dst_of st in
      let need = Shape.numel shapes.(node) in
      size_of.(node) <- need;
      let sizes = sizes_arr () in
      let fits =
        List.filter (fun slot -> sizes.(slot) >= need) !free
      in
      let slot =
        match fits with
        | _ :: _ ->
            (* best fit: smallest free buffer that already fits *)
            let best =
              List.fold_left
                (fun acc slot ->
                  if sizes.(slot) < sizes.(acc) then slot else acc)
                (List.hd fits) fits
            in
            free := List.filter (fun sl -> sl <> best) !free;
            best
        | [] -> (
            match !free with
            | _ :: _ ->
                (* grow the largest free buffer instead of opening a new
                   one — keeps the arena count minimal *)
                let best =
                  List.fold_left
                    (fun acc slot ->
                      if sizes.(slot) > sizes.(acc) then slot else acc)
                    (List.hd !free) !free
                in
                free := List.filter (fun sl -> sl <> best) !free;
                grow best need;
                best
            | [] ->
                buf_sizes := need :: !buf_sizes;
                incr nbufs;
                !nbufs - 1)
      in
      slot_of.(node) <- slot;
      active := node :: !active;
      assignments :=
        { node; slot; birth = s; death = last_read.(node); words = need }
        :: !assignments)
    steps;
  let buf_sizes = sizes_arr () in
  let naive_words =
    Array.fold_left ( + ) 0
      (Array.mapi (fun i sz -> if def.(i) >= 0 then sz else 0) size_of)
  in
  let head_n = input_shape.(0) in
  let head_c = shapes.(head.h_src).(1) in
  let epi_specs =
    Array.map
      (function
        | S_wino { epi; _ } | S_spatial { epi; _ } -> epi
        | _ -> no_epi)
      steps
  in
  let dummy_view = Itensor.zeros [| 1 |] in
  let dls =
    Domain.DLS.new_key (fun () ->
        let slots =
          Array.map (fun sz -> Array.make (Stdlib.max 1 sz) 0) buf_sizes
        in
        let view =
          Array.init n (fun i ->
              if slot_of.(i) >= 0 then
                { Itensor.shape = shapes.(i); data = slots.(slot_of.(i)) }
              else dummy_view)
        in
        let epi =
          Array.map
            (fun { e_relu; e_add } ->
              {
                Kernels.relu = e_relu;
                add =
                  Option.map
                    (fun (other, shift_self, shift_other) ->
                      {
                        Kernels.other = view.(other).Itensor.data;
                        shift_self;
                        shift_other;
                        bits = 8;
                      })
                    e_add;
              })
            epi_specs
        in
        { slots; view; epi; pooled = Array.make (Stdlib.max 1 (head_n * head_c)) 0.0 })
  in
  {
    input_shape = Array.copy input_shape;
    steps;
    head;
    shapes;
    slot_of;
    buf_sizes;
    dls;
    assignments = Array.of_list (List.rev !assignments);
    fused;
    naive_words;
  }

(* ------------------------------------------------------------ execution *)

(* The elementwise steps replicate the [Int_graph] interpreter's integer
   ops loop for loop (all-integer arithmetic, so iteration order cannot
   change results); the head replicates dequantize → global-average-pool
   → linear with the exact float operation sequence of the reference. *)

let exec_step t d x s st =
  let numel node = Shape.numel t.shapes.(node) in
  match st with
  | S_quantize { scale; dst } ->
      let dd = d.view.(dst).Itensor.data and xd = x.Tensor.data in
      for i = 0 to numel dst - 1 do
        dd.(i) <- Quantizer.quantize ~bits:8 ~scale xd.(i)
      done
  | S_wino { p; src; dst; _ } ->
      (* Runs the register-tiled microkernel GEMM path: [p] carries the
         NR-packed Winograd weight panel from [Tapwise.pack]. *)
      Tapwise.forward_int_into ~epilogue:d.epi.(s) p d.view.(src)
        ~out:d.view.(dst)
  | S_spatial { l; src; dst; _ } ->
      Qconv.forward_int_into ~epilogue:d.epi.(s) l d.view.(src)
        ~out:d.view.(dst)
  | S_relu { src; dst } ->
      let sd = d.view.(src).Itensor.data and dd = d.view.(dst).Itensor.data in
      for i = 0 to numel dst - 1 do
        dd.(i) <- Stdlib.max 0 sd.(i)
      done
  | S_leaky { k; src; dst } ->
      let sd = d.view.(src).Itensor.data and dd = d.view.(dst).Itensor.data in
      for i = 0 to numel dst - 1 do
        let v = sd.(i) in
        dd.(i) <- (if v >= 0 then v else -Itensor.round_shift (-v) k)
      done
  | S_max_pool { k; stride; src; dst } ->
      let sd = d.view.(src).Itensor.data and dd = d.view.(dst).Itensor.data in
      let sh = t.shapes.(src) and dh = t.shapes.(dst) in
      let n = dh.(0) and c = dh.(1) and ho = dh.(2) and wo = dh.(3) in
      let h = sh.(2) and w = sh.(3) in
      for nc = 0 to (n * c) - 1 do
        let sbase = nc * h * w and dbase = nc * ho * wo in
        for oh = 0 to ho - 1 do
          for ow = 0 to wo - 1 do
            let best = ref min_int in
            for di = 0 to k - 1 do
              let row = sbase + (((stride * oh) + di) * w) + (stride * ow) in
              for dj = 0 to k - 1 do
                if sd.(row + dj) > !best then best := sd.(row + dj)
              done
            done;
            dd.(dbase + (oh * wo) + ow) <- !best
          done
        done
      done
  | S_avg_pool2 { src; dst } ->
      let sd = d.view.(src).Itensor.data and dd = d.view.(dst).Itensor.data in
      let sh = t.shapes.(src) and dh = t.shapes.(dst) in
      let n = dh.(0) and c = dh.(1) and ho = dh.(2) and wo = dh.(3) in
      let h = sh.(2) and w = sh.(3) in
      for nc = 0 to (n * c) - 1 do
        let sbase = nc * h * w and dbase = nc * ho * wo in
        for oh = 0 to ho - 1 do
          for ow = 0 to wo - 1 do
            let r0 = sbase + (2 * oh * w) + (2 * ow) in
            let s = sd.(r0) + sd.(r0 + 1) + sd.(r0 + w) + sd.(r0 + w + 1) in
            dd.(dbase + (oh * wo) + ow) <- Itensor.round_shift s 2
          done
        done
      done
  | S_upsample { f; src; dst } ->
      let sd = d.view.(src).Itensor.data and dd = d.view.(dst).Itensor.data in
      let sh = t.shapes.(src) and dh = t.shapes.(dst) in
      let n = dh.(0) and c = dh.(1) and ho = dh.(2) and wo = dh.(3) in
      let h = sh.(2) and w = sh.(3) in
      ignore h;
      for nc = 0 to (n * c) - 1 do
        let sbase = nc * h * w and dbase = nc * ho * wo in
        for oh = 0 to ho - 1 do
          let srow = sbase + (oh / f * w) in
          let drow = dbase + (oh * wo) in
          for ow = 0 to wo - 1 do
            dd.(drow + ow) <- sd.(srow + (ow / f))
          done
        done
      done
  | S_add { a; b; shift_a; shift_b; dst } ->
      let ad = d.view.(a).Itensor.data
      and bd = d.view.(b).Itensor.data
      and dd = d.view.(dst).Itensor.data in
      for i = 0 to numel dst - 1 do
        dd.(i) <-
          Itensor.clamp_int ~bits:8
            (Itensor.round_shift ad.(i) shift_a
            + Itensor.round_shift bd.(i) shift_b)
      done
  | S_concat { a; b; shift_a; shift_b; dst } ->
      let ad = d.view.(a).Itensor.data
      and bd = d.view.(b).Itensor.data
      and dd = d.view.(dst).Itensor.data in
      let sa = t.shapes.(a) and sb = t.shapes.(b) in
      let n = sa.(0) and ca = sa.(1) and cb = sb.(1) in
      let hw = sa.(2) * sa.(3) in
      for ni = 0 to n - 1 do
        let abase = ni * ca * hw
        and bbase = ni * cb * hw
        and dbase = ni * (ca + cb) * hw in
        for i = 0 to (ca * hw) - 1 do
          dd.(dbase + i) <- Itensor.round_shift ad.(abase + i) shift_a
        done;
        for i = 0 to (cb * hw) - 1 do
          dd.(dbase + (ca * hw) + i) <- Itensor.round_shift bd.(bbase + i) shift_b
        done
      done

let execute t x =
  if not (Shape.equal x.Tensor.shape t.input_shape) then
    invalid_arg
      (Printf.sprintf "Plan.execute: input shape %s, plan expects %s"
         (Shape.to_string x.Tensor.shape)
         (Shape.to_string t.input_shape));
  let d = Domain.DLS.get t.dls in
  Array.iteri (fun s st -> exec_step t d x s st) t.steps;
  (* Head: dequantize → global-average-pool (same float accumulation
     order as [Ops.global_avg_pool] over the dequantized map) → linear
     against the pre-transposed weights (identical to [Ops.linear]). *)
  let { h_wt; h_bias; h_in_scale; h_src } = t.head in
  let feat = d.view.(h_src) in
  let sh = t.shapes.(h_src) in
  let n = sh.(0) and c = sh.(1) and h = sh.(2) and w = sh.(3) in
  let inv = 1.0 /. float_of_int (h * w) in
  let fd = feat.Itensor.data and pd = d.pooled in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * h * w in
      let acc = ref 0.0 in
      for i = 0 to (h * w) - 1 do
        acc := !acc +. (float_of_int fd.(base + i) *. h_in_scale)
      done;
      pd.((ni * c) + ci) <- !acc *. inv
    done
  done;
  let pooled = { Tensor.shape = [| n; c |]; data = pd } in
  let out = Ops.matmul pooled h_wt in
  (match h_bias with
  | None -> ()
  | Some b ->
      let classes = Tensor.dim out 1 in
      for i = 0 to n - 1 do
        for j = 0 to classes - 1 do
          Tensor.set2 out i j (Tensor.get2 out i j +. b.Tensor.data.(j))
        done
      done);
  out

(* -------------------------------------------------------- shape cache *)

type cache = {
  program : program;
  mutex : Mutex.t;
  mutable plans : (int array * t) list;  (* most recently used first *)
}

let max_cached = 16

let cache program =
  (match program.pnodes.(program.out).prim with
  | P_head _ -> ()
  | _ -> invalid_arg "Plan.cache: program output must be a head node");
  { program; mutex = Mutex.create (); plans = [] }

let plan c ~input_shape =
  Mutex.lock c.mutex;
  let r =
    match List.find_opt (fun (s, _) -> Shape.equal s input_shape) c.plans with
    | Some (_, t) -> t
    | None ->
        let t = compile c.program ~input_shape in
        let keep =
          if List.length c.plans >= max_cached then
            List.filteri (fun k _ -> k < max_cached - 1) c.plans
          else c.plans
        in
        c.plans <- (Array.copy input_shape, t) :: keep;
        t
  in
  Mutex.unlock c.mutex;
  r

let cached_shapes c =
  Mutex.lock c.mutex;
  let s = List.map fst c.plans in
  Mutex.unlock c.mutex;
  s

(* Per-tap sparse/dense decisions are frozen into the packed layers at
   lowering time; summing them over the program reports what a compiled
   plan will actually execute. *)
let wino_sparsity c =
  Array.fold_left
    (fun (sparse, total) { prim; _ } ->
      match prim with
      | P_wino p ->
          ( sparse + Tapwise.sparse_tap_count p,
            total + Array.length (Tapwise.tap_densities p) )
      | _ -> (sparse, total))
    (0, 0) c.program.pnodes

let run c x =
  if Tensor.rank x <> 4 then invalid_arg "Plan.run: input must be NCHW";
  execute (plan c ~input_shape:x.Tensor.shape) x
