module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Rng = Twq_util.Rng
module Parallel = Twq_util.Parallel
module Checkpoint = Twq_util.Checkpoint
module Synth = Twq_dataset.Synth_images
module Calibration = Twq_quant.Calibration
module Serialize = Twq_quant.Serialize
open Twq_autodiff

type kd = { teacher : Qat_model.t; temperature : float; alpha : float }

type checkpointing = { ckpt_path : string; ckpt_every : int }

type divergence_policy = { max_failures : int; lr_backoff : float }

let default_divergence = { max_failures = 3; lr_backoff = 0.5 }

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  momentum : float;
  weight_decay : float;
  scale_lr : float;
  kd : kd option;
  grad_clip : float;
  seed : int;
  data_parallel : bool;
  checkpoint : checkpointing option;
  divergence : divergence_policy;
  loss_tap : (epoch:int -> batch:int -> float -> float) option;
}

let default_options =
  {
    epochs = 8;
    batch_size = 16;
    lr = 0.05;
    momentum = 0.9;
    weight_decay = 1e-4;
    scale_lr = 0.002;
    kd = None;
    grad_clip = 5.0;
    seed = 7;
    data_parallel = false;
    checkpoint = None;
    divergence = default_divergence;
    loss_tap = None;
  }

type history = { train_loss : float array; valid_acc : float array }

let logits model x =
  let node = Qat_model.forward model x in
  Var.value node

(* Stack [size] consecutive samples starting at [lo] into an NCHW batch. *)
let stack_batch split lo size =
  let channels = Tensor.dim split.(0).Synth.image 0 in
  let sz = Tensor.dim split.(0).Synth.image 1 in
  Tensor.init [| size; channels; sz; sz |] (fun idx ->
      Tensor.get split.(lo + idx.(0)).Synth.image [| idx.(1); idx.(2); idx.(3) |])

(* Shared evaluation driver: [count ~lo ~size] returns the number of
   correct predictions in one stacked batch.  The model is frozen for the
   duration, which makes the forward pure, so the batches fan out across
   domains; the first batch runs on the caller so that a model whose
   observers were never calibrated seeds them deterministically. *)
let eval_batches model split count_batch =
  let n = Array.length split in
  if n = 0 then 0.0
  else begin
    Qat_model.set_frozen model true;
    let batch = 32 in
    let nb = (n + batch - 1) / batch in
    let count b =
      let lo = b * batch in
      let size = Stdlib.min batch (n - lo) in
      count_batch ~lo ~size
    in
    let correct =
      count 0
      + Parallel.parallel_for_reduce ~chunk:1 ~lo:1 ~hi:nb ~init:0
          ~combine:( + ) count
    in
    Qat_model.set_frozen model false;
    float_of_int correct /. float_of_int n
  end

let evaluate_topk ~k model split =
  eval_batches model split (fun ~lo ~size ->
      let xb = stack_batch split lo size in
      let out = logits model xb in
      let correct = ref 0 in
      for bi = 0 to size - 1 do
        if List.mem split.(lo + bi).Synth.label (Ops.top_k_row out bi k) then
          incr correct
      done;
      !correct)

let evaluate model split =
  eval_batches model split (fun ~lo ~size ->
      let xb = stack_batch split lo size in
      let out = logits model xb in
      let correct = ref 0 in
      for bi = 0 to size - 1 do
        if Ops.argmax_row out bi = split.(lo + bi).Synth.label then incr correct
      done;
      !correct)

let batch_loss options model x labels =
  let out = Qat_model.forward model x in
  let ce = Fn.softmax_cross_entropy ~logits:out ~labels in
  match options.kd with
  | None -> ce
  | Some kd ->
      let teacher_logits = logits kd.teacher x in
      let kl =
        Fn.kl_distillation ~student:out ~teacher:teacher_logits
          ~temperature:kd.temperature
      in
      Fn.add (Fn.scale (1.0 -. kd.alpha) ce) (Fn.scale kd.alpha kl)

(* Data-parallel gradient accumulation for one batch: split the batch into
   fixed-size sub-batches (the partition is independent of the domain
   count, so results are deterministic), run forward+backward per chunk
   with per-chunk gradient sinks, and merge the sinks in chunk order at
   the barrier.  Chunk 0 runs first on the caller with calibration live
   (it stands in for the batch statistics); the remaining chunks run with
   the model frozen, which makes their forwards pure.  Weighting each
   chunk loss by its share of the batch reproduces the batch-mean loss
   gradient exactly (up to float summation order). *)
let grad_accumulate_parallel options model ~params ~scale_params x labels =
  let size = Tensor.dim x 0 in
  let sub = 4 in
  let nchunks = (size + sub - 1) / sub in
  let cdim = Tensor.dim x 1 and hdim = Tensor.dim x 2 and wdim = Tensor.dim x 3 in
  let chunk_loss = Array.make nchunks 0.0 in
  let var_sinks = Array.make nchunks None in
  let scale_sinks = Array.make nchunks None in
  let run_chunk c =
    let lo = c * sub in
    let csz = Stdlib.min sub (size - lo) in
    let xb =
      Tensor.init [| csz; cdim; hdim; wdim |] (fun idx ->
          Tensor.get4 x (lo + idx.(0)) idx.(1) idx.(2) idx.(3))
    in
    let lb = Array.sub labels lo csz in
    let vsink = Var.sink_create params in
    let ssink = Scale_param.sink_create scale_params in
    Var.with_sink vsink (fun () ->
        Scale_param.with_sink ssink (fun () ->
            let loss = batch_loss options model xb lb in
            let weight = float_of_int csz /. float_of_int size in
            Var.backward (Fn.scale weight loss);
            chunk_loss.(c) <- weight *. (Var.value loss).Tensor.data.(0)));
    var_sinks.(c) <- Some vsink;
    scale_sinks.(c) <- Some ssink
  in
  run_chunk 0;
  if nchunks > 1 then begin
    Qat_model.set_frozen model true;
    Parallel.parallel_for ~chunk:1 ~lo:1 ~hi:nchunks run_chunk;
    Qat_model.set_frozen model false
  end;
  Array.iter (function Some s -> Var.sink_merge s | None -> ()) var_sinks;
  Array.iter
    (function Some s -> Scale_param.sink_merge s | None -> ())
    scale_sinks;
  Array.fold_left ( +. ) 0.0 chunk_loss

(* ----------------------------------------------- training-state snapshots *)

(* Everything mutable that one training step touches, bundled so that a
   snapshot/restore pair brackets the full state: restoring a snapshot and
   replaying the remaining batches is bit-identical to never having
   stopped. *)
type ctx = {
  model : Qat_model.t;
  params : Var.t list;
  scale_params : Scale_param.t list;
  obs : Calibration.t list;
  wa : Wa_conv.t option list;
  opt : Optim.sgd;
  rng : Rng.t;
  train_loss : float array;
  valid_acc : float array;
  mutable epoch : int;
  mutable cursor : int;  (* next batch index within [epoch] *)
  mutable epoch_rng : int64;  (* RNG state at the start of [epoch] *)
  mutable total : float;  (* partial-epoch loss accumulator *)
  mutable count : int;
  mutable lr_scale : float;  (* divergence-policy LR decay, 1.0 normally *)
  mutable failures : int;  (* consecutive poisoned steps *)
}

let snapshot_format = "twq-train-state v1"

let write_float_grid buf (g : float array array) =
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Array.length g) (Array.length g.(0)));
  Array.iter
    (fun row ->
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%h " v)) row;
      Buffer.add_char buf '\n')
    g

let read_float_grid r ~rows ~cols =
  let rows' = Serialize.read_int r and cols' = Serialize.read_int r in
  if rows' <> rows || cols' <> cols then
    Serialize.parse_fail r
      (Printf.sprintf "grid is %dx%d, expected %dx%d" rows' cols' rows cols);
  Array.init rows (fun _ -> Array.init cols (fun _ -> Serialize.read_float r))

let write_scale_snapshot buf (s : Scale_param.snapshot) =
  Buffer.add_string buf
    (Printf.sprintf "%h %h %h %h %d\n" s.Scale_param.snap_theta
       s.Scale_param.snap_g s.Scale_param.snap_m s.Scale_param.snap_v
       s.Scale_param.snap_steps)

let read_scale_snapshot r =
  let snap_theta = Serialize.read_float r in
  let snap_g = Serialize.read_float r in
  let snap_m = Serialize.read_float r in
  let snap_v = Serialize.read_float r in
  let snap_steps = Serialize.read_int r in
  { Scale_param.snap_theta; snap_g; snap_m; snap_v; snap_steps }

let snapshot_to_string c =
  let buf = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s\n" snapshot_format;
  pf "cursor %d %d\n" c.epoch c.cursor;
  pf "rng %s\n" (Int64.to_string c.epoch_rng);
  pf "accum %h %d\n" c.total c.count;
  pf "policy %h %d\n" c.lr_scale c.failures;
  let n_done = Stdlib.min c.epoch (Array.length c.train_loss) in
  pf "history %d\n" n_done;
  for e = 0 to n_done - 1 do
    pf "%h %h\n" c.train_loss.(e) c.valid_acc.(e)
  done;
  pf "params %d\n" (List.length c.params);
  List.iter (fun p -> Serialize.write_tensor buf p.Var.data) c.params;
  pf "velocity %d\n" (List.length c.params);
  List.iter
    (fun v ->
      pf "%d\n" (Array.length v);
      Array.iter (fun x -> pf "%h " x) v;
      Buffer.add_char buf '\n')
    (Optim.export_velocity c.opt);
  pf "scales %d\n" (List.length c.scale_params);
  List.iter
    (fun sp -> write_scale_snapshot buf (Scale_param.snapshot sp))
    c.scale_params;
  pf "observers %d\n" (List.length c.obs);
  List.iter
    (fun o ->
      let s = Calibration.snapshot o in
      pf "%h %d\n" s.Calibration.snap_value
        (if s.Calibration.snap_seen then 1 else 0))
    c.obs;
  pf "wa %d\n" (List.length c.wa);
  List.iter
    (function
      | None -> pf "none\n"
      | Some w ->
          let s = Wa_conv.snapshot w in
          let t = Array.length s.Wa_conv.snap_b_max in
          pf "some %d %d\n" (if s.Wa_conv.snap_initialized then 1 else 0) t;
          write_float_grid buf s.Wa_conv.snap_b_max;
          write_float_grid buf s.Wa_conv.snap_g_max;
          Array.iter (Array.iter (write_scale_snapshot buf)) s.Wa_conv.snap_sb;
          Array.iter (Array.iter (write_scale_snapshot buf)) s.Wa_conv.snap_sg)
    c.wa;
  Buffer.contents buf

(* Parse a snapshot payload and apply it to [c] in place.  Every count and
   shape is validated against the live model before anything is mutated
   beyond the already-validated prefix, and any parse failure is returned
   as a typed error string (never an exception). *)
let apply_snapshot c payload =
  let r = Serialize.reader_of_string payload in
  let check what expected got =
    if expected <> got then
      Serialize.parse_fail r
        (Printf.sprintf "%s count mismatch: checkpoint has %d, model has %d"
           what got expected)
  in
  match
    Serialize.expect r "twq-train-state";
    Serialize.expect r "v1";
    Serialize.expect r "cursor";
    let epoch = Serialize.read_int r in
    let cursor = Serialize.read_int r in
    if epoch < 0 || cursor < 0 then Serialize.parse_fail r "negative cursor";
    Serialize.expect r "rng";
    let rng_word = Serialize.read_word r in
    let rng_state =
      match Int64.of_string_opt rng_word with
      | Some v -> v
      | None -> Serialize.parse_fail r ("bad rng state " ^ rng_word)
    in
    Serialize.expect r "accum";
    let total = Serialize.read_float r in
    let count = Serialize.read_int r in
    Serialize.expect r "policy";
    let lr_scale = Serialize.read_float r in
    let failures = Serialize.read_int r in
    Serialize.expect r "history";
    let n_done = Serialize.read_int r in
    if n_done < 0 || n_done > epoch then
      Serialize.parse_fail r "history length disagrees with cursor";
    let hist =
      Array.init n_done (fun _ ->
          let tl = Serialize.read_float r in
          let va = Serialize.read_float r in
          (tl, va))
    in
    Serialize.expect r "params";
    check "param" (List.length c.params) (Serialize.read_int r);
    let tensors =
      List.map
        (fun p ->
          let t = Serialize.read_tensor r in
          if not (Twq_tensor.Shape.equal t.Tensor.shape p.Var.data.Tensor.shape)
          then
            Serialize.parse_fail r
              (Printf.sprintf "param shape %s does not match model shape %s"
                 (Twq_tensor.Shape.to_string t.Tensor.shape)
                 (Twq_tensor.Shape.to_string p.Var.data.Tensor.shape));
          t)
        c.params
    in
    Serialize.expect r "velocity";
    check "velocity" (List.length c.params) (Serialize.read_int r);
    let velocity =
      List.map
        (fun p ->
          let len = Serialize.read_int r in
          if len <> Tensor.numel p.Var.data then
            Serialize.parse_fail r "velocity length mismatch";
          Array.init len (fun _ -> Serialize.read_float r))
        c.params
    in
    Serialize.expect r "scales";
    check "scale" (List.length c.scale_params) (Serialize.read_int r);
    let scales = List.map (fun _ -> read_scale_snapshot r) c.scale_params in
    Serialize.expect r "observers";
    check "observer" (List.length c.obs) (Serialize.read_int r);
    let observers =
      List.map
        (fun _ ->
          let v = Serialize.read_float r in
          let seen = Serialize.read_int r in
          { Calibration.snap_value = v; snap_seen = seen = 1 })
        c.obs
    in
    Serialize.expect r "wa";
    check "wa layer" (List.length c.wa) (Serialize.read_int r);
    let wa_snaps =
      List.map
        (fun live ->
          match (Serialize.read_word r, live) with
          | "none", None -> None
          | "some", Some _ ->
              let initialized = Serialize.read_int r = 1 in
              let t = Serialize.read_int r in
              if t < 1 || t > 16 then Serialize.parse_fail r "bad tile size";
              let b_max = read_float_grid r ~rows:t ~cols:t in
              let g_max = read_float_grid r ~rows:t ~cols:t in
              let grid () =
                Array.init t (fun _ ->
                    Array.init t (fun _ -> read_scale_snapshot r))
              in
              let sb = grid () in
              let sg = grid () in
              Some
                {
                  Wa_conv.snap_sb = sb;
                  snap_sg = sg;
                  snap_initialized = initialized;
                  snap_b_max = b_max;
                  snap_g_max = g_max;
                }
          | tag, _ ->
              Serialize.parse_fail r
                ("wa entry " ^ tag ^ " does not match the model's layer mode"))
        c.wa
    in
    (* Parsing and validation done — apply everything in place. *)
    List.iter2
      (fun p t ->
        Array.blit t.Tensor.data 0 p.Var.data.Tensor.data 0
          (Tensor.numel p.Var.data);
        Var.zero_grad p)
      c.params tensors;
    Optim.import_velocity c.opt velocity;
    List.iter2 Scale_param.restore c.scale_params scales;
    List.iter2 Calibration.restore c.obs observers;
    List.iter2
      (fun live snap ->
        match (live, snap) with
        | Some w, Some s -> Wa_conv.restore w s
        | _ -> ())
      c.wa wa_snaps;
    Rng.set_state c.rng rng_state;
    c.epoch <- epoch;
    c.cursor <- cursor;
    c.epoch_rng <- rng_state;
    c.total <- total;
    c.count <- count;
    c.lr_scale <- lr_scale;
    c.failures <- failures;
    let n_hist = Stdlib.min n_done (Array.length c.train_loss) in
    Array.iteri
      (fun e (tl, va) ->
        if e < n_hist then begin
          c.train_loss.(e) <- tl;
          c.valid_acc.(e) <- va
        end)
      hist
  with
  | () -> Ok ()
  | exception Serialize.Parse_failure e ->
      Error (Serialize.error_to_string e)
  | exception (Invalid_argument m | Failure m) -> Error m

(* -------------------------------------------------------- training loop *)

let run model dataset options ~resume =
  if Array.length dataset.Synth.train = 0 then
    invalid_arg "Trainer.train: empty training split";
  if options.batch_size <= 0 then
    invalid_arg "Trainer.train: non-positive batch size";
  let rng = Rng.create options.seed in
  let params = Qat_model.params model in
  let opt =
    Optim.sgd ~momentum:options.momentum ~weight_decay:options.weight_decay
      ~lr:options.lr params
  in
  let scale_params = Qat_model.scale_params model in
  let c =
    {
      model;
      params;
      scale_params;
      obs = Qat_model.observers model;
      wa = Qat_model.wa_layers model;
      opt;
      rng;
      train_loss = Array.make options.epochs 0.0;
      valid_acc = Array.make options.epochs 0.0;
      epoch = 0;
      cursor = 0;
      epoch_rng = Rng.state rng;
      total = 0.0;
      count = 0;
      lr_scale = 1.0;
      failures = 0;
    }
  in
  (match options.kd with
  | Some kd -> Qat_model.set_frozen kd.teacher true
  | None -> ());
  (if resume then
     match options.checkpoint with
     | None -> invalid_arg "Trainer.train_resume: options.checkpoint not set"
     | Some ck -> (
         match
           Checkpoint.load_latest (Checkpoint.fallback_paths ck.ckpt_path)
         with
         | Ok (path, payload) -> (
             match apply_snapshot c payload with
             | Ok () -> ()
             | Error msg ->
                 Printf.eprintf
                   "twq: checkpoint %s does not match this run (%s); starting \
                    fresh\n\
                    %!"
                   path msg)
         | Error (Checkpoint.Parse_error "no checkpoint found") -> ()
         | Error e ->
             Printf.eprintf "twq: no usable checkpoint (%s); starting fresh\n%!"
               (Checkpoint.error_to_string e)));
  (* The newest consistent snapshot, kept in memory as the rollback target
     of the divergence policy (and mirrored to disk when checkpointing is
     configured). *)
  let last_good = ref None in
  let note_good () =
    let payload = snapshot_to_string c in
    last_good := Some payload;
    match options.checkpoint with
    | Some ck -> Checkpoint.save ~rotate:true ck.ckpt_path payload
    | None -> ()
  in
  note_good ();
  (* After a rollback the replay is deterministic, so a data-dependent NaN
     would recur and re-trigger the rollback forever; arm the rollback
     only after at least one healthy step since the last one, and skip the
     poisoned batch otherwise. *)
  let rollback_armed = ref true in
  while c.epoch < options.epochs do
    let e = c.epoch in
    (* Simple step decay, as a stand-in for the paper's LR scheduler. *)
    let base_lr = options.lr *. Float.pow 0.5 (float_of_int (e / 3)) in
    c.epoch_rng <- Rng.state rng;
    let batches =
      Array.of_list
        (Synth.shuffled_batches ~rng ~batch_size:options.batch_size
           dataset.Synth.train)
    in
    let nb = Array.length batches in
    if c.cursor > nb then c.cursor <- nb;
    let rolled_back = ref false in
    while (not !rolled_back) && c.cursor < nb do
      let b = c.cursor in
      let x, labels = batches.(b) in
      let loss_v =
        if options.data_parallel then
          grad_accumulate_parallel options model ~params ~scale_params x labels
        else begin
          let loss = batch_loss options model x labels in
          Var.backward loss;
          (Var.value loss).Tensor.data.(0)
        end
      in
      let loss_v =
        match options.loss_tap with
        | Some tap -> tap ~epoch:e ~batch:b loss_v
        | None -> loss_v
      in
      let healthy =
        Float.is_finite loss_v
        && Optim.grads_finite params
        && List.for_all
             (fun sp -> Float.is_finite (Scale_param.grad sp))
             scale_params
      in
      if healthy then begin
        c.failures <- 0;
        rollback_armed := true;
        Optim.clip_grad_norm params ~max_norm:options.grad_clip;
        Optim.set_lr opt (base_lr *. c.lr_scale);
        Optim.sgd_step opt;
        List.iter
          (Scale_param.adam_step ~lr:(options.scale_lr *. c.lr_scale))
          scale_params;
        c.total <- c.total +. loss_v;
        c.count <- c.count + 1;
        c.cursor <- b + 1;
        match options.checkpoint with
        | Some ck
          when ck.ckpt_every > 0
               && c.cursor mod ck.ckpt_every = 0
               && c.cursor < nb ->
            note_good ()
        | _ -> ()
      end
      else begin
        (* Poisoned step: the gradients (and this batch's loss) never reach
           the optimizer state. *)
        Optim.zero_grads params;
        List.iter Scale_param.zero_grad scale_params;
        c.failures <- c.failures + 1;
        c.lr_scale <- c.lr_scale *. options.divergence.lr_backoff;
        let rollback () =
          match !last_good with
          | Some payload when !rollback_armed -> (
              let decayed = c.lr_scale in
              match apply_snapshot c payload with
              | Ok () ->
                  (* Keep the decayed LR: replaying the same trajectory at
                     the same LR would diverge identically. *)
                  c.lr_scale <- decayed;
                  c.failures <- 0;
                  rollback_armed := false;
                  true
              | Error _ -> false)
          | _ -> false
        in
        if c.failures >= options.divergence.max_failures && rollback () then
          rolled_back := true
        else c.cursor <- b + 1
      end
    done;
    if not !rolled_back then begin
      c.train_loss.(e) <-
        (if c.count = 0 then 0.0 else c.total /. float_of_int c.count);
      c.valid_acc.(e) <- evaluate model dataset.Synth.valid;
      c.epoch <- e + 1;
      c.cursor <- 0;
      c.total <- 0.0;
      c.count <- 0;
      c.epoch_rng <- Rng.state rng;
      note_good ()
    end
  done;
  { train_loss = c.train_loss; valid_acc = c.valid_acc }

let train model dataset options = run model dataset options ~resume:false
let train_resume model dataset options = run model dataset options ~resume:true
