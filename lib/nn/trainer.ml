module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Rng = Twq_util.Rng
module Parallel = Twq_util.Parallel
module Synth = Twq_dataset.Synth_images
open Twq_autodiff

type kd = { teacher : Qat_model.t; temperature : float; alpha : float }

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  momentum : float;
  weight_decay : float;
  scale_lr : float;
  kd : kd option;
  grad_clip : float;
  seed : int;
  data_parallel : bool;
}

let default_options =
  {
    epochs = 8;
    batch_size = 16;
    lr = 0.05;
    momentum = 0.9;
    weight_decay = 1e-4;
    scale_lr = 0.002;
    kd = None;
    grad_clip = 5.0;
    seed = 7;
    data_parallel = false;
  }

type history = { train_loss : float array; valid_acc : float array }

let logits model x =
  let node = Qat_model.forward model x in
  Var.value node

(* Stack [size] consecutive samples starting at [lo] into an NCHW batch. *)
let stack_batch split lo size =
  let channels = Tensor.dim split.(0).Synth.image 0 in
  let sz = Tensor.dim split.(0).Synth.image 1 in
  Tensor.init [| size; channels; sz; sz |] (fun idx ->
      Tensor.get split.(lo + idx.(0)).Synth.image [| idx.(1); idx.(2); idx.(3) |])

(* Shared evaluation driver: [count ~lo ~size] returns the number of
   correct predictions in one stacked batch.  The model is frozen for the
   duration, which makes the forward pure, so the batches fan out across
   domains; the first batch runs on the caller so that a model whose
   observers were never calibrated seeds them deterministically. *)
let eval_batches model split count_batch =
  Qat_model.set_frozen model true;
  let n = Array.length split in
  let batch = 32 in
  let nb = (n + batch - 1) / batch in
  let count b =
    let lo = b * batch in
    let size = Stdlib.min batch (n - lo) in
    count_batch ~lo ~size
  in
  let correct =
    if nb = 0 then 0
    else
      count 0
      + Parallel.parallel_for_reduce ~chunk:1 ~lo:1 ~hi:nb ~init:0
          ~combine:( + ) count
  in
  Qat_model.set_frozen model false;
  float_of_int correct /. float_of_int n

let evaluate_topk ~k model split =
  eval_batches model split (fun ~lo ~size ->
      let xb = stack_batch split lo size in
      let out = logits model xb in
      let correct = ref 0 in
      for bi = 0 to size - 1 do
        if List.mem split.(lo + bi).Synth.label (Ops.top_k_row out bi k) then
          incr correct
      done;
      !correct)

let evaluate model split =
  eval_batches model split (fun ~lo ~size ->
      let xb = stack_batch split lo size in
      let out = logits model xb in
      let correct = ref 0 in
      for bi = 0 to size - 1 do
        if Ops.argmax_row out bi = split.(lo + bi).Synth.label then incr correct
      done;
      !correct)

let batch_loss options model x labels =
  let out = Qat_model.forward model x in
  let ce = Fn.softmax_cross_entropy ~logits:out ~labels in
  match options.kd with
  | None -> ce
  | Some kd ->
      let teacher_logits = logits kd.teacher x in
      let kl =
        Fn.kl_distillation ~student:out ~teacher:teacher_logits
          ~temperature:kd.temperature
      in
      Fn.add (Fn.scale (1.0 -. kd.alpha) ce) (Fn.scale kd.alpha kl)

(* Data-parallel gradient accumulation for one batch: split the batch into
   fixed-size sub-batches (the partition is independent of the domain
   count, so results are deterministic), run forward+backward per chunk
   with per-chunk gradient sinks, and merge the sinks in chunk order at
   the barrier.  Chunk 0 runs first on the caller with calibration live
   (it stands in for the batch statistics); the remaining chunks run with
   the model frozen, which makes their forwards pure.  Weighting each
   chunk loss by its share of the batch reproduces the batch-mean loss
   gradient exactly (up to float summation order). *)
let grad_accumulate_parallel options model ~params ~scale_params x labels =
  let size = Tensor.dim x 0 in
  let sub = 4 in
  let nchunks = (size + sub - 1) / sub in
  let cdim = Tensor.dim x 1 and hdim = Tensor.dim x 2 and wdim = Tensor.dim x 3 in
  let chunk_loss = Array.make nchunks 0.0 in
  let var_sinks = Array.make nchunks None in
  let scale_sinks = Array.make nchunks None in
  let run_chunk c =
    let lo = c * sub in
    let csz = Stdlib.min sub (size - lo) in
    let xb =
      Tensor.init [| csz; cdim; hdim; wdim |] (fun idx ->
          Tensor.get4 x (lo + idx.(0)) idx.(1) idx.(2) idx.(3))
    in
    let lb = Array.sub labels lo csz in
    let vsink = Var.sink_create params in
    let ssink = Scale_param.sink_create scale_params in
    Var.with_sink vsink (fun () ->
        Scale_param.with_sink ssink (fun () ->
            let loss = batch_loss options model xb lb in
            let weight = float_of_int csz /. float_of_int size in
            Var.backward (Fn.scale weight loss);
            chunk_loss.(c) <- weight *. (Var.value loss).Tensor.data.(0)));
    var_sinks.(c) <- Some vsink;
    scale_sinks.(c) <- Some ssink
  in
  run_chunk 0;
  if nchunks > 1 then begin
    Qat_model.set_frozen model true;
    Parallel.parallel_for ~chunk:1 ~lo:1 ~hi:nchunks run_chunk;
    Qat_model.set_frozen model false
  end;
  Array.iter (function Some s -> Var.sink_merge s | None -> ()) var_sinks;
  Array.iter
    (function Some s -> Scale_param.sink_merge s | None -> ())
    scale_sinks;
  Array.fold_left ( +. ) 0.0 chunk_loss

let train model dataset options =
  let rng = Rng.create options.seed in
  let params = Qat_model.params model in
  let opt =
    Optim.sgd ~momentum:options.momentum ~weight_decay:options.weight_decay
      ~lr:options.lr params
  in
  let scale_params = Qat_model.scale_params model in
  let train_loss = Array.make options.epochs 0.0 in
  let valid_acc = Array.make options.epochs 0.0 in
  (match options.kd with
  | Some kd -> Qat_model.set_frozen kd.teacher true
  | None -> ());
  for epoch = 0 to options.epochs - 1 do
    (* Simple step decay, as a stand-in for the paper's LR scheduler. *)
    let lr = options.lr *. Float.pow 0.5 (float_of_int (epoch / 3)) in
    Optim.set_lr opt lr;
    let batches =
      Synth.shuffled_batches ~rng ~batch_size:options.batch_size dataset.Synth.train
    in
    let total = ref 0.0 and count = ref 0 in
    List.iter
      (fun (x, labels) ->
        let loss_v =
          if options.data_parallel then
            grad_accumulate_parallel options model ~params ~scale_params x
              labels
          else begin
            let loss = batch_loss options model x labels in
            Var.backward loss;
            (Var.value loss).Tensor.data.(0)
          end
        in
        Optim.clip_grad_norm params ~max_norm:options.grad_clip;
        Optim.sgd_step opt;
        List.iter (Scale_param.adam_step ~lr:options.scale_lr) scale_params;
        total := !total +. loss_v;
        incr count)
      batches;
    train_loss.(epoch) <- (if !count = 0 then 0.0 else !total /. float_of_int !count);
    valid_acc.(epoch) <- evaluate model dataset.Synth.valid
  done;
  { train_loss; valid_acc }
