(** Deployment: export a trained QAT model to an integer-only network.

    This is the end goal of the paper's flow — after Winograd-aware
    training, inference runs entirely on int8 tensors with Winograd-domain
    integers and shift-based rescaling:

    - batch-norm parameters are folded into the conv weights/biases using
      statistics gathered on a calibration batch;
    - each 3×3 convolution becomes a {!Twq_quant.Tapwise} layer; the
      inter-layer scales chain exactly ([s_x] of layer n+1 = [s_y] of
      layer n), so activations stay int8 end-to-end;
    - ReLU and 2×2 average pooling run directly on the int8 tensors
      (pooling divides by 4 with the hardware round-shift);
    - only the final global-average-pool + fully-connected head runs in
      float (its cost is negligible; the paper's accelerator handles it in
      the Vector Unit).

    Only the [Vgg_mini] architecture is currently exportable (residual
    blocks would additionally need requantized int8 skip-adds). *)

type t

val export :
  Qat_model.t ->
  calibration:Twq_tensor.Tensor.t ->
  ?variant:Twq_winograd.Transform.variant ->
  ?wino_bits:int ->
  unit ->
  t
(** Fold BN, calibrate and quantize every conv of the model.
    [calibration] is an NCHW batch of representative inputs.
    @raise Invalid_argument for non-[Vgg_mini] architectures. *)

val forward : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Logits for a batch; everything up to the head runs on integers.
    Executes the compiled {!Plan} for the batch shape (compiled once per
    shape, cached): fused requant/ReLU epilogues, liveness-based arena
    reuse, near-zero steady-state allocation.  Bit-identical to
    {!forward_ref}. *)

val forward_ref : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Reference op-by-op interpreter — the oracle {!forward} is tested
    against. *)

val plans : t -> Plan.cache
(** The network's plan cache (one plan per batch shape). *)

val accuracy : t -> Twq_dataset.Synth_images.sample array -> float
(** Top-1 accuracy of the integer network on a dataset split. *)

val layers : t -> Twq_quant.Tapwise.layer list
(** The exported integer conv layers (inspection / further compression,
    e.g. {!Twq_quant.Pruning}). *)

val to_string : t -> string
val of_string : string -> t
(** Exact text round-trip: a reloaded network produces bit-identical
    integer activations. *)

val save : t -> string -> unit
val load : string -> t
