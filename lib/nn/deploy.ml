module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Transform = Twq_winograd.Transform
module Tapwise = Twq_quant.Tapwise
module Quantizer = Twq_quant.Quantizer
module Synth = Twq_dataset.Synth_images

type op =
  | Conv of Tapwise.layer
  | Relu
  | Avg_pool2  (* 2×2, stride 2, int round-shift by 2 *)

type t = {
  ops : op list;
  input_scale : float;
  output_scale : float;  (* s_y of the last conv (relu/pool preserve it) *)
  fc_w : Tensor.t;
  fc_b : Tensor.t;
  plans : Plan.cache;
}

(* Lower the op pipeline to the planner IR once at export/load time:
   quantize → convs/relus/pools in a chain → float head. *)
let lower ~ops ~input_scale ~output_scale ~fc_w ~fc_b =
  let n_ops = List.length ops in
  let pnodes =
    Array.make (n_ops + 2)
      { Plan.prim = Plan.P_quantize input_scale; args = [] }
  in
  List.iteri
    (fun i op ->
      let prim =
        match op with
        | Conv l -> Plan.P_wino (Tapwise.pack l)
        | Relu -> Plan.P_relu
        | Avg_pool2 -> Plan.P_avg_pool2
      in
      pnodes.(i + 1) <- { Plan.prim; args = [ i ] })
    ops;
  pnodes.(n_ops + 1) <-
    {
      Plan.prim =
        Plan.P_head { w = fc_w; bias = Some fc_b; in_scale = output_scale };
      args = [ n_ops ];
    };
  Plan.cache { Plan.pnodes; out = n_ops + 1 }

let make ~ops ~input_scale ~output_scale ~fc_w ~fc_b =
  {
    ops;
    input_scale;
    output_scale;
    fc_w;
    fc_b;
    plans = lower ~ops ~input_scale ~output_scale ~fc_w ~fc_b;
  }

let plans t = t.plans

(* Fold batch-norm statistics (from the calibration activations) into the
   conv weights and bias: y = γ(conv(x) − μ)/σ + β. *)
let fold_bn ~w ~gamma ~beta ~y_cal =
  let cout = Tensor.dim w 0 in
  let n = Tensor.dim y_cal 0 and h = Tensor.dim y_cal 2 and wd = Tensor.dim y_cal 3 in
  let count = float_of_int (n * h * wd) in
  let max_scale = ref 0.0 in
  let w' = Tensor.copy w and bias = Tensor.zeros [| cout |] in
  for co = 0 to cout - 1 do
    let sum = ref 0.0 and sq = ref 0.0 in
    for ni = 0 to n - 1 do
      for hi = 0 to h - 1 do
        for wi = 0 to wd - 1 do
          let v = Tensor.get4 y_cal ni co hi wi in
          sum := !sum +. v;
          sq := !sq +. (v *. v)
        done
      done
    done;
    let mu = !sum /. count in
    let var = Float.max 0.0 ((!sq /. count) -. (mu *. mu)) in
    let scale = gamma.Tensor.data.(co) /. sqrt (var +. 1e-5) in
    max_scale := Float.max !max_scale (Float.abs scale);
    let cin = Tensor.dim w 1 in
    for ci = 0 to cin - 1 do
      for ki = 0 to 2 do
        for kj = 0 to 2 do
          Tensor.set4 w' co ci ki kj (Tensor.get4 w co ci ki kj *. scale)
        done
      done
    done;
    bias.Tensor.data.(co) <- beta.Tensor.data.(co) -. (mu *. scale)
  done;
  (w', bias, !max_scale)

let int_relu = Itensor.map (fun v -> Stdlib.max 0 v)

let int_avg_pool2 x =
  let n = Itensor.dim x 0 and c = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  Itensor.init [| n; c; h / 2; w / 2 |] (fun idx ->
      let s = ref 0 in
      for di = 0 to 1 do
        for dj = 0 to 1 do
          s := !s + Itensor.get4 x idx.(0) idx.(1) ((2 * idx.(2)) + di) ((2 * idx.(3)) + dj)
        done
      done;
      Itensor.round_shift !s 2)

let float_avg_pool2 = Ops.avg_pool2d ~k:2 ~stride:2

let export model ~calibration ?(variant = Transform.F4) ?(wino_bits = 8) () =
  let cfg = Qat_model.config model in
  let stages =
    match cfg.Qat_model.arch with
    | Qat_model.Vgg_mini stages -> stages
    | Qat_model.Resnet_mini _ ->
        invalid_arg "Deploy.export: only Vgg_mini architectures are exportable"
  in
  let conv_params = Array.of_list (Qat_model.conv_bn_params model) in
  let scale_grids = Array.of_list (Qat_model.learned_scale_grids model) in
  let config =
    { (Tapwise.default_config variant) with Tapwise.wino_bits }
  in
  let x_cal = ref calibration in
  let prev_scale = ref None in
  let ops = ref [] in
  let input_scale = ref 0.0 in
  let last_out_scale = ref 1.0 in
  List.iteri
    (fun stage_idx _ ->
      for k = 0 to 1 do
        let w, gamma, beta = conv_params.((2 * stage_idx) + k) in
        let y = Ops.conv2d ~stride:1 ~pad:1 ~x:!x_cal ~w () in
        let w', bias, bn_gain = fold_bn ~w ~gamma ~beta ~y_cal:y in
        (* BN folding rescales each output channel, which rescales the
           Winograd weight taps per channel; widen the learned weight-tap
           scales by the largest folded gain so no channel clips. *)
        let grids =
          Option.map
            (fun (sb, sg) ->
              (sb, Array.map (Array.map (fun s -> s *. Float.max 1.0 bn_gain)) sg))
            scale_grids.((2 * stage_idx) + k)
        in
        let layer =
          Tapwise.calibrate ~config ~w:w' ~bias ?input_scale:!prev_scale
            ?scale_grids:grids ~sample_inputs:[ !x_cal ] ~pad:1 ()
        in
        if !prev_scale = None then input_scale := layer.Tapwise.s_x;
        prev_scale := Some layer.Tapwise.s_y;
        last_out_scale := layer.Tapwise.s_y;
        ops := Relu :: Conv layer :: !ops;
        x_cal := Ops.relu (Ops.conv2d ~stride:1 ~pad:1 ~x:!x_cal ~w:w' ~b:bias ())
      done;
      ops := Avg_pool2 :: !ops;
      x_cal := float_avg_pool2 !x_cal)
    stages;
  let fc_w, fc_b = Qat_model.head_params model in
  make ~ops:(List.rev !ops) ~input_scale:!input_scale
    ~output_scale:!last_out_scale ~fc_w:(Tensor.copy fc_w)
    ~fc_b:(Tensor.copy fc_b)

let forward_ref net x =
  let x_int = ref (Quantizer.quantize_tensor ~bits:8 ~scale:net.input_scale x) in
  List.iter
    (fun op ->
      x_int :=
        match op with
        | Conv layer -> Tapwise.forward_int layer !x_int
        | Relu -> int_relu !x_int
        | Avg_pool2 -> int_avg_pool2 !x_int)
    net.ops;
  (* Only the tiny head runs in float. *)
  let feat = Quantizer.dequantize_tensor ~scale:net.output_scale !x_int in
  let pooled = Ops.global_avg_pool feat in
  Ops.linear ~x:pooled ~w:net.fc_w ~b:net.fc_b ()

let forward net x = Plan.run net.plans x

let accuracy net split =
  let n = Array.length split in
  let correct = ref 0 in
  let batch = 32 in
  let i = ref 0 in
  while !i < n do
    let size = Stdlib.min batch (n - !i) in
    let channels = Tensor.dim split.(0).Synth.image 0 in
    let sz = Tensor.dim split.(0).Synth.image 1 in
    let xb = Tensor.zeros [| size; channels; sz; sz |] in
    for bi = 0 to size - 1 do
      let s = split.(!i + bi) in
      for c = 0 to channels - 1 do
        for a = 0 to sz - 1 do
          for b = 0 to sz - 1 do
            Tensor.set4 xb bi c a b (Tensor.get s.Synth.image [| c; a; b |])
          done
        done
      done
    done;
    let out = forward net xb in
    for bi = 0 to size - 1 do
      if Ops.argmax_row out bi = split.(!i + bi).Synth.label then incr correct
    done;
    i := !i + size
  done;
  float_of_int !correct /. float_of_int n

let layers net =
  List.filter_map (function Conv l -> Some l | Relu | Avg_pool2 -> None) net.ops

(* ------------------------------------------------------------- file I/O *)

module Serialize = Twq_quant.Serialize

let to_string net =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "twq-int8-net v1
";
  Buffer.add_string buf
    (Printf.sprintf "scales %h %h
" net.input_scale net.output_scale);
  Serialize.write_tensor buf net.fc_w;
  Serialize.write_tensor buf net.fc_b;
  Buffer.add_string buf (Printf.sprintf "ops %d
" (List.length net.ops));
  List.iter
    (fun op ->
      match op with
      | Relu -> Buffer.add_string buf "relu
"
      | Avg_pool2 -> Buffer.add_string buf "avg-pool2
"
      | Conv layer ->
          Buffer.add_string buf "conv
";
          Buffer.add_string buf (Serialize.layer_to_string layer))
    net.ops;
  Buffer.contents buf

let of_string s =
  let r = Serialize.reader_of_string s in
  try
    Serialize.expect r "twq-int8-net";
    Serialize.expect r "v1";
    Serialize.expect r "scales";
    let input_scale = Serialize.read_float r in
    let output_scale = Serialize.read_float r in
    let fc_w = Serialize.read_tensor r in
    let fc_b = Serialize.read_tensor r in
    Serialize.expect r "ops";
    let n_ops = Serialize.read_int r in
    if n_ops < 0 || n_ops > String.length s then
      Serialize.parse_fail r "invalid op count";
    let ops =
      List.init n_ops (fun _ ->
          match Serialize.read_word r with
          | "relu" -> Relu
          | "avg-pool2" -> Avg_pool2
          | "conv" ->
              (* Re-parse the embedded layer with the shared reader. *)
              Serialize.expect r "tapwise-layer";
              Serialize.expect r "v1";
              Conv (Serialize.read_layer_body r)
          | tag -> Serialize.parse_fail r ("unknown op " ^ tag))
    in
    make ~ops ~input_scale ~output_scale ~fc_w ~fc_b
  with Serialize.Parse_failure e ->
    failwith ("Deploy.of_string: " ^ Serialize.error_to_string e)

let save net path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string net))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
