module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Transform = Twq_winograd.Transform
module Tapwise = Twq_quant.Tapwise
module Qconv = Twq_quant.Qconv
module Quantizer = Twq_quant.Quantizer

type iop =
  | IInput of float  (* input scale *)
  | IWino of Tapwise.layer
  | ISpatial of Qconv.layer
  | IRelu
  | ILeaky of int  (* negative branch right-shifted by k *)
  | IMax_pool of { k : int; stride : int }
  | IAvg_pool2
  | IUpsample of int
  | IAdd of { shift_a : int; shift_b : int; out_scale : float }
      (* operands shifted right onto the common grid, saturated to int8 *)
  | IConcat of { shift_a : int; shift_b : int }
      (* both operands aligned to the coarser scale before concatenation *)
  | IHead of { w : Tensor.t; bias : Tensor.t option; in_scale : float }
      (* dequantize → global-average-pool → linear *)

type inode = { iop : iop; inputs : int list; scale : float }

type t = { inodes : inode array; out : int; plans : Plan.cache option }

(* Lower the graph to the planner IR once at load time: Winograd layers
   are pre-packed and the GAP→Linear head becomes an explicit [P_head].
   Graphs whose output is not a head (possible only through hand-edited
   serialized files) keep [plans = None] and run on the interpreter. *)
let lower inodes out =
  match inodes.(out).iop with
  | IHead _ ->
      let pnodes =
        Array.map
          (fun { iop; inputs; _ } ->
            let prim =
              match iop with
              | IInput s -> Plan.P_quantize s
              | IWino l -> Plan.P_wino (Tapwise.pack l)
              | ISpatial l -> Plan.P_spatial l
              | IRelu -> Plan.P_relu
              | ILeaky k -> Plan.P_leaky k
              | IMax_pool { k; stride } -> Plan.P_max_pool { k; stride }
              | IAvg_pool2 -> Plan.P_avg_pool2
              | IUpsample f -> Plan.P_upsample f
              | IAdd { shift_a; shift_b; _ } -> Plan.P_add { shift_a; shift_b }
              | IConcat { shift_a; shift_b } ->
                  Plan.P_concat { shift_a; shift_b }
              | IHead { w; bias; in_scale } -> Plan.P_head { w; bias; in_scale }
            in
            { Plan.prim; args = inputs })
          inodes
      in
      Some (Plan.cache { Plan.pnodes; out })
  | _ -> None

let make inodes out = { inodes; out; plans = lower inodes out }

let plans t = t.plans

let pow2_scale ~bits x_max =
  Quantizer.pow2_round_up (Quantizer.scale_for ~bits ~max_abs:(Float.max 1e-9 x_max))

let log2_ratio a b =
  let k = Float.log2 (a /. b) in
  let r = Float.round k in
  if Float.abs (k -. r) > 1e-9 then
    invalid_arg "Int_graph: scales are not power-of-two aligned";
  int_of_float r

let quantize g ~calibration ?(variant = Transform.F4) ?(wino_bits = 8) () =
  let values = Graph.run_all g calibration in
  let nodes = Graph.nodes g in
  let n = List.length nodes in
  let inodes = Array.make n None in
  let scale_of j =
    match inodes.(j) with Some i -> i.scale | None -> assert false
  in
  List.iter
    (fun ((id : Graph.id), { Graph.op; inputs }) ->
      let id = (id :> int) in
      let inputs = (inputs :> int list) in
      let cal_out = values.(id) in
      let inode =
        match op with
        | Graph.Input ->
            let s = pow2_scale ~bits:8 (Tensor.max_abs cal_out) in
            { iop = IInput s; inputs = []; scale = s }
        | Graph.Conv { w; bias; stride; pad } ->
            let src = List.hd inputs in
            let in_scale = scale_of src in
            let cal_in = values.(src) in
            if Tensor.dim w 2 = 3 && Tensor.dim w 3 = 3 && stride = 1 then begin
              let config =
                { (Tapwise.default_config variant) with Tapwise.wino_bits }
              in
              let layer =
                Tapwise.calibrate ~config ~w ?bias ~input_scale:in_scale
                  ~sample_inputs:[ cal_in ] ~pad ()
              in
              { iop = IWino layer; inputs; scale = layer.Tapwise.s_y }
            end
            else begin
              let layer =
                Qconv.calibrate ~pow2:true ~w ?bias ~input_scale:in_scale
                  ~sample_inputs:[ cal_in ] ~stride ~pad ()
              in
              { iop = ISpatial layer; inputs; scale = layer.Qconv.s_y }
            end
        | Graph.Bn _ ->
            invalid_arg "Int_graph.quantize: run Passes.fold_bn first"
        | Graph.Relu -> { iop = IRelu; inputs; scale = scale_of (List.hd inputs) }
        | Graph.Leaky_relu k ->
            { iop = ILeaky k; inputs; scale = scale_of (List.hd inputs) }
        | Graph.Max_pool { k; stride } ->
            { iop = IMax_pool { k; stride }; inputs; scale = scale_of (List.hd inputs) }
        | Graph.Avg_pool { k; stride } ->
            if k <> 2 || stride <> 2 then
              invalid_arg "Int_graph.quantize: only 2x2/2 average pooling";
            { iop = IAvg_pool2; inputs; scale = scale_of (List.hd inputs) }
        | Graph.Upsample f ->
            { iop = IUpsample f; inputs; scale = scale_of (List.hd inputs) }
        | Graph.Add ->
            let a = List.nth inputs 0 and b = List.nth inputs 1 in
            let s_a = scale_of a and s_b = scale_of b in
            (* Common output grid from the calibrated sum range; at least as
               coarse as both operands so the alignment shifts are right
               shifts. *)
            let s_out =
              Float.max
                (pow2_scale ~bits:8 (Tensor.max_abs cal_out))
                (Float.max s_a s_b)
            in
            {
              iop =
                IAdd
                  {
                    shift_a = log2_ratio s_out s_a;
                    shift_b = log2_ratio s_out s_b;
                    out_scale = s_out;
                  };
              inputs;
              scale = s_out;
            }
        | Graph.Concat ->
            let a = List.nth inputs 0 and b = List.nth inputs 1 in
            let s_a = scale_of a and s_b = scale_of b in
            let s_out = Float.max s_a s_b in
            {
              iop =
                IConcat
                  { shift_a = log2_ratio s_out s_a; shift_b = log2_ratio s_out s_b };
              inputs;
              scale = s_out;
            }
        | Graph.Global_avg_pool ->
            (* Absorbed by the head; stands alone only if the output — treat
               as the start of the float head. Marked by a dummy scale. *)
            { iop = IRelu; inputs; scale = scale_of (List.hd inputs) }
        | Graph.Linear _ ->
            { iop = IRelu; inputs; scale = scale_of (List.hd inputs) }
      in
      inodes.(id) <- Some inode)
    nodes;
  (* Patch the GAP→Linear head: find the output Linear and its GAP input. *)
  let out = (Graph.output g :> int) in
  let inodes = Array.map Option.get inodes in
  let op_of i =
    let _, n =
      List.find (fun ((id : Graph.id), _) -> (id :> int) = i) nodes
    in
    n.Graph.op
  in
  (match op_of out with
  | Graph.Linear { w; bias } -> (
      let gap = List.hd inodes.(out).inputs in
      match op_of gap with
      | Graph.Global_avg_pool ->
          let feat = List.hd inodes.(gap).inputs in
          inodes.(out) <-
            {
              iop = IHead { w; bias; in_scale = inodes.(feat).scale };
              inputs = [ feat ];
              scale = 1.0;
            };
          (* The stray GAP placeholder must not run on integers. *)
          inodes.(gap) <- { (inodes.(gap)) with iop = IRelu }
      | _ -> invalid_arg "Int_graph.quantize: expected GAP before the head")
  | _ -> invalid_arg "Int_graph.quantize: expected a Linear output head");
  make inodes out

let int_relu = Itensor.map (fun v -> Stdlib.max 0 v)

let int_leaky k =
  Itensor.map (fun v -> if v >= 0 then v else -Itensor.round_shift (-v) k)

let int_max_pool ~k ~stride x =
  let n = Itensor.dim x 0 and c = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  let ho = ((h - k) / stride) + 1 and wo = ((w - k) / stride) + 1 in
  Itensor.init [| n; c; ho; wo |] (fun idx ->
      let best = ref min_int in
      for di = 0 to k - 1 do
        for dj = 0 to k - 1 do
          best :=
            Stdlib.max !best
              (Itensor.get4 x idx.(0) idx.(1) ((stride * idx.(2)) + di)
                 ((stride * idx.(3)) + dj))
        done
      done;
      !best)

let int_avg_pool2 x =
  let n = Itensor.dim x 0 and c = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  Itensor.init [| n; c; h / 2; w / 2 |] (fun idx ->
      let s = ref 0 in
      for di = 0 to 1 do
        for dj = 0 to 1 do
          s := !s + Itensor.get4 x idx.(0) idx.(1) ((2 * idx.(2)) + di) ((2 * idx.(3)) + dj)
        done
      done;
      Itensor.round_shift !s 2)

let int_upsample f x =
  let n = Itensor.dim x 0 and c = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  Itensor.init [| n; c; h * f; w * f |] (fun idx ->
      Itensor.get4 x idx.(0) idx.(1) (idx.(2) / f) (idx.(3) / f))

let run_ref t x =
  let n = Array.length t.inodes in
  let int_values : Itensor.t option array = Array.make n None in
  (* Last consumer of each node, so dead intermediate activations are
     dropped as the interpreter walks forward — the reference stays an
     oracle but no longer retains the whole network's activations. *)
  let last_use = Array.make n (-1) in
  Array.iteri
    (fun i { inputs; _ } ->
      List.iter (fun j -> if i > last_use.(j) then last_use.(j) <- i) inputs)
    t.inodes;
  let float_out = ref None in
  Array.iteri
    (fun i { iop; inputs; _ } ->
      let arg j = Option.get int_values.(j) in
      (match iop with
      | IInput s ->
          int_values.(i) <- Some (Quantizer.quantize_tensor ~bits:8 ~scale:s x)
      | IWino layer ->
          int_values.(i) <- Some (Tapwise.forward_int layer (arg (List.hd inputs)))
      | ISpatial layer ->
          int_values.(i) <- Some (Qconv.forward_int layer (arg (List.hd inputs)))
      | IRelu -> int_values.(i) <- Some (int_relu (arg (List.hd inputs)))
      | ILeaky k -> int_values.(i) <- Some (int_leaky k (arg (List.hd inputs)))
      | IMax_pool { k; stride } ->
          int_values.(i) <- Some (int_max_pool ~k ~stride (arg (List.hd inputs)))
      | IAvg_pool2 -> int_values.(i) <- Some (int_avg_pool2 (arg (List.hd inputs)))
      | IUpsample f -> int_values.(i) <- Some (int_upsample f (arg (List.hd inputs)))
      | IAdd { shift_a; shift_b; _ } ->
          let a = arg (List.nth inputs 0) and b = arg (List.nth inputs 1) in
          int_values.(i) <-
            Some
              (Itensor.map2
                 (fun va vb ->
                   Itensor.clamp_int ~bits:8
                     (Itensor.round_shift va shift_a + Itensor.round_shift vb shift_b))
                 a b)
      | IConcat { shift_a; shift_b } ->
          let a = arg (List.nth inputs 0) and b = arg (List.nth inputs 1) in
          let a = Itensor.map (fun v -> Itensor.round_shift v shift_a) a in
          let b = Itensor.map (fun v -> Itensor.round_shift v shift_b) b in
          let n = Itensor.dim a 0 and ca = Itensor.dim a 1 in
          let cb = Itensor.dim b 1 in
          let h = Itensor.dim a 2 and w = Itensor.dim a 3 in
          int_values.(i) <-
            Some
              (Itensor.init [| n; ca + cb; h; w |] (fun idx ->
                   if idx.(1) < ca then Itensor.get4 a idx.(0) idx.(1) idx.(2) idx.(3)
                   else Itensor.get4 b idx.(0) (idx.(1) - ca) idx.(2) idx.(3)))
      | IHead { w; bias; in_scale } ->
          let feat =
            Quantizer.dequantize_tensor ~scale:in_scale (arg (List.hd inputs))
          in
          let pooled = Ops.global_avg_pool feat in
          float_out := Some (Ops.linear ~x:pooled ~w ?b:bias ()));
      List.iter
        (fun j -> if last_use.(j) = i then int_values.(j) <- None)
        inputs;
      if last_use.(i) < 0 then int_values.(i) <- None)
    t.inodes;
  match !float_out with
  | Some v -> v
  | None -> invalid_arg "Int_graph.run: graph has no head"

let run t x =
  match t.plans with Some c -> Plan.run c x | None -> run_ref t x

let noise_vs_float t g x =
  let reference = Graph.run g x in
  let quantized = run t x in
  let err = Tensor.sub reference quantized in
  sqrt (Tensor.sumsq err /. Float.max 1e-30 (Tensor.sumsq reference))

let winograd_layer_count t =
  Array.fold_left
    (fun a n -> match n.iop with IWino _ -> a + 1 | _ -> a)
    0 t.inodes

let spatial_layer_count t =
  Array.fold_left
    (fun a n -> match n.iop with ISpatial _ -> a + 1 | _ -> a)
    0 t.inodes

(* ------------------------------------------------------------- pruning *)

module Pruning = Twq_quant.Pruning

(* Winograd-domain magnitude pruning over the whole graph: every
   tap-wise layer's quantized Winograd weights go through
   [Pruning.prune_quantized] at the requested density, then the graph
   is re-made so lowering re-packs the panels — which is where the
   per-tap sparse/dense execution decision is taken from the pruned
   zeros.  Spatial layers and the float head are untouched. *)
let prune t ~density =
  let inodes =
    Array.map
      (fun n ->
        match n.iop with
        | IWino l -> { n with iop = IWino (Pruning.prune_layer l ~density) }
        | _ -> n)
      t.inodes
  in
  make inodes t.out

let winograd_density t =
  let nz = ref 0 and total = ref 0 in
  Array.iter
    (fun n ->
      match n.iop with
      | IWino l ->
          let d = l.Tapwise.wq.Itensor.data in
          Array.iter (fun v -> if v <> 0 then incr nz) d;
          total := !total + Array.length d
      | _ -> ())
    t.inodes;
  if !total = 0 then 1.0 else float_of_int !nz /. float_of_int !total

let wino_sparsity t =
  match t.plans with Some c -> Plan.wino_sparsity c | None -> (0, 0)

(* --------------------------------------------------------------- file I/O *)

module Serialize = Twq_quant.Serialize

let to_string t =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "twq-int8-graph v1\n";
  Buffer.add_string buf
    (Printf.sprintf "meta %d %d\n" (Array.length t.inodes) t.out);
  Array.iter
    (fun { iop; inputs; scale } ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %h " (List.length inputs) scale);
      List.iter (fun i -> Buffer.add_string buf (string_of_int i ^ " ")) inputs;
      Buffer.add_char buf '\n';
      match iop with
      | IInput s -> Buffer.add_string buf (Printf.sprintf "input %h\n" s)
      | IWino layer ->
          Buffer.add_string buf "wino\n";
          Buffer.add_string buf (Serialize.layer_to_string layer)
      | ISpatial layer ->
          Buffer.add_string buf "spatial\n";
          Buffer.add_string buf (Serialize.qconv_to_string layer)
      | IRelu -> Buffer.add_string buf "relu\n"
      | ILeaky k -> Buffer.add_string buf (Printf.sprintf "leaky %d\n" k)
      | IMax_pool { k; stride } ->
          Buffer.add_string buf (Printf.sprintf "max-pool %d %d\n" k stride)
      | IAvg_pool2 -> Buffer.add_string buf "avg-pool2\n"
      | IUpsample f -> Buffer.add_string buf (Printf.sprintf "upsample %d\n" f)
      | IAdd { shift_a; shift_b; out_scale } ->
          Buffer.add_string buf
            (Printf.sprintf "add %d %d %h\n" shift_a shift_b out_scale)
      | IConcat { shift_a; shift_b } ->
          Buffer.add_string buf (Printf.sprintf "concat %d %d\n" shift_a shift_b)
      | IHead { w; bias; in_scale } ->
          Buffer.add_string buf (Printf.sprintf "head %h %d\n" in_scale
                                   (match bias with Some _ -> 1 | None -> 0));
          Serialize.write_tensor buf w;
          (match bias with Some b -> Serialize.write_tensor buf b | None -> ()))
    t.inodes;
  Buffer.contents buf

let of_string s =
  let r = Serialize.reader_of_string s in
  try
    Serialize.expect r "twq-int8-graph";
    Serialize.expect r "v1";
    Serialize.expect r "meta";
    let n = Serialize.read_int r in
    let out = Serialize.read_int r in
    if n < 0 || n > String.length s then
      Serialize.parse_fail r "invalid node count";
    if out < 0 || out >= n then Serialize.parse_fail r "output id out of range";
    let inodes =
      Array.init n (fun _ ->
          Serialize.expect r "node";
          let n_inputs = Serialize.read_int r in
          if n_inputs < 0 || n_inputs > String.length s then
            Serialize.parse_fail r "invalid input count";
          let scale = Serialize.read_float r in
          let inputs = List.init n_inputs (fun _ -> Serialize.read_int r) in
          if List.exists (fun i -> i < 0 || i >= n) inputs then
            Serialize.parse_fail r "input id out of range";
          let iop =
            match Serialize.read_word r with
            | "input" -> IInput (Serialize.read_float r)
            | "wino" ->
                Serialize.expect r "tapwise-layer";
                Serialize.expect r "v1";
                IWino (Serialize.read_layer_body r)
            | "spatial" ->
                Serialize.expect r "qconv-layer";
                Serialize.expect r "v1";
                ISpatial (Serialize.read_qconv_body r)
            | "relu" -> IRelu
            | "leaky" -> ILeaky (Serialize.read_int r)
            | "max-pool" ->
                let k = Serialize.read_int r in
                let stride = Serialize.read_int r in
                IMax_pool { k; stride }
            | "avg-pool2" -> IAvg_pool2
            | "upsample" -> IUpsample (Serialize.read_int r)
            | "add" ->
                let a = Serialize.read_int r in
                let b = Serialize.read_int r in
                let o = Serialize.read_float r in
                IAdd { shift_a = a; shift_b = b; out_scale = o }
            | "concat" ->
                let a = Serialize.read_int r in
                let b = Serialize.read_int r in
                IConcat { shift_a = a; shift_b = b }
            | "head" ->
                let in_scale = Serialize.read_float r in
                let has_bias = Serialize.read_int r in
                let w = Serialize.read_tensor r in
                let bias =
                  if has_bias = 1 then Some (Serialize.read_tensor r) else None
                in
                IHead { w; bias; in_scale }
            | tag -> Serialize.parse_fail r ("unknown op " ^ tag)
          in
          { iop; inputs; scale })
    in
    make inodes out
  with Serialize.Parse_failure e ->
    failwith ("Int_graph.of_string: " ^ Serialize.error_to_string e)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
