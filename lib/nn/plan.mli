(** Compiled execution plans for integer inference graphs.

    The interpreters in {!Int_graph} and {!Deploy} walk their node lists
    allocating a fresh activation tensor per node per forward and sweep
    the activations again for every elementwise epilogue.  A plan
    compiles the same computation, for one concrete input shape, into:

    - a topological schedule over the nodes reachable from the output;
    - fused epilogues: ReLU and the saturating residual add move into
      the producing convolution's output store (alongside the requant
      that already lives there), mirroring the paper's FixPipe, so each
      activation is written exactly once;
    - liveness-based buffer reuse: every intermediate activation gets a
      [def, last-read] interval on the fused schedule and a greedy
      best-fit assignment onto a small arena of reusable buffers, sized
      once at compile time;
    - per-domain execution state ({!Domain.DLS}): concurrent server
      workers share the plan but never a buffer, and a steady-state
      forward allocates only its returned logits.

    Planned execution is bit-identical to the reference interpreters
    ([Int_graph.run_ref] / [Deploy.forward_ref]); the test-suite checks
    this exhaustively over random graphs. *)

module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Tapwise = Twq_quant.Tapwise
module Qconv = Twq_quant.Qconv

(** {1 Program IR}

    A lowered, execution-ready form of an integer graph: convolutions
    are pre-packed ({!Tapwise.pack}), scales are resolved to shifts, and
    the float head carries its own dequantization scale. *)

type prim =
  | P_quantize of float  (** float NCHW input → int8 at the given scale *)
  | P_wino of Tapwise.packed
  | P_spatial of Qconv.layer
  | P_relu
  | P_leaky of int  (** negative slope = 2{^-k} *)
  | P_max_pool of { k : int; stride : int }
  | P_avg_pool2
  | P_upsample of int
  | P_add of { shift_a : int; shift_b : int }
  | P_concat of { shift_a : int; shift_b : int }
  | P_head of { w : Tensor.t; bias : Tensor.t option; in_scale : float }
      (** dequantize → global-average-pool → linear *)

type pnode = { prim : prim; args : int list }
(** [args] are indices of earlier nodes (strictly smaller than the
    node's own index). *)

type program = { pnodes : pnode array; out : int }
(** [out] must name a [P_head] node. *)

(** {1 Compiled plans} *)

type t
(** A plan for one concrete input shape. *)

val compile : program -> input_shape:int array -> t
(** Schedule, fuse, and assign buffers for inputs of [input_shape]
    ([| n; c; h; w |]).
    @raise Invalid_argument on malformed programs or shapes. *)

val execute : t -> Tensor.t -> Tensor.t
(** Run one forward.  The input must match the plan's shape exactly;
    returns the float logits.  Thread-safe: each domain lazily builds
    its own arena on first use. *)

val input_shape : t -> int array

(** {2 Introspection} — used by the tests and the bench harness. *)

type assignment = {
  node : int;  (** program node id *)
  slot : int;  (** arena buffer id *)
  birth : int;  (** schedule step defining the node *)
  death : int;  (** last schedule step reading it *)
  words : int;  (** activation size in ints *)
}

val assignments : t -> assignment list
val num_steps : t -> int
val num_buffers : t -> int

val arena_words : t -> int
(** Total arena size (ints) after reuse. *)

val naive_words : t -> int
(** Sum of all scheduled activation sizes — what the interpreter
    allocates per forward. *)

val fused_epilogues : t -> int
(** Number of elementwise nodes folded into conv output loops. *)

(** {1 Shape-keyed plan cache}

    Serving keys plans by batch shape: the cache compiles on first
    sight of a shape and reuses the plan afterwards (bounded LRU-ish,
    16 shapes). *)

type cache

val cache : program -> cache
(** @raise Invalid_argument if [out] is not a [P_head]. *)

val plan : cache -> input_shape:int array -> t
(** Find or compile the plan for [input_shape].  Thread-safe. *)

val run : cache -> Tensor.t -> Tensor.t
(** [plan] + [execute] for the input's own shape. *)

val cached_shapes : cache -> int array list

val wino_sparsity : cache -> int * int
(** [(sparse, total)] tap counts over the program's packed Winograd
    layers: how many taps will execute through the compressed-panel
    GEMM driver versus the total number of taps.  The split was decided
    per tap at lowering time against [Microkernel.sparse_threshold]. *)
