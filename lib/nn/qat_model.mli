(** Trainable CNN models with switchable convolution back-ends.

    Every 3×3 stride-1 convolution of the model can run as:
    - [Fp32] — the floating-point baseline (the paper's im2col/FP32 row);
    - [Int8_spatial] — int8 fake-quant activations/weights, standard conv
      (the im2col/int8 row);
    - [Wa _] — Winograd-aware quantized conv ({!Twq_autodiff.Wa_conv}) in
      any of the paper's Table-II configurations (F2/F4, single-scale or
      tap-wise, float or pow2 scales, static calibration or learned
      log2-gradient scales, 8/9/10 Winograd-domain bits).

    The fully-connected head stays FP32 in all modes (its cost is marginal
    and the paper's Winograd operator only covers 3×3 s1 convolutions). *)

type wa_spec = {
  variant : Twq_winograd.Transform.variant;
  wino_bits : int;
  tapwise : bool;
  pow2 : bool;
  learned : bool;
}

type conv_mode = Fp32 | Int8_spatial | Wa of wa_spec

type arch =
  | Vgg_mini of int list
      (** channel progression; two convs + one 2×2 avg-pool per stage *)
  | Resnet_mini of { width : int; blocks : int }
      (** stem + [blocks] residual basic blocks at constant width *)

type config = {
  mode : conv_mode;
  arch : arch;
  in_channels : int;
  classes : int;
  act_bits : int;
}

val default_config : conv_mode -> config
(** [Vgg_mini \[8; 16\]], 3 input channels, 4 classes, 8-bit activations. *)

type t

val create : config -> seed:int -> t

val forward : t -> Twq_tensor.Tensor.t -> Twq_autodiff.Var.t
(** Build the autodiff graph for a batch; returns the logits node. *)

val params : t -> Twq_autodiff.Var.t list
(** Weight/bias/BN parameters (for the SGD step). *)

val scale_params : t -> Twq_autodiff.Scale_param.t list
(** Learnable quantization scales (for the Adam step); empty unless the
    mode uses learned scales. *)

val set_frozen : t -> bool -> unit
(** Freeze all running-max calibration (switch to evaluation). *)

val observers : t -> Twq_quant.Calibration.t list
(** Per-conv activation observers, in layer order — mutable calibration
    state that training checkpoints must capture. *)

val wa_layers : t -> Twq_autodiff.Wa_conv.t option list
(** Per-conv Winograd-aware layer (scale parameters + calibration EMAs),
    in layer order; [None] for non-Winograd modes. *)

val config : t -> config

val num_parameters : t -> int

val conv_weights : t -> Twq_tensor.Tensor.t list
(** Current 3×3 conv weight tensors (used by analysis experiments). *)

val conv_bn_params : t -> (Twq_tensor.Tensor.t * Twq_tensor.Tensor.t * Twq_tensor.Tensor.t) list
(** Per conv layer: (weights, bn gamma, bn beta) — consumed by {!Deploy}. *)

val head_params : t -> Twq_tensor.Tensor.t * Twq_tensor.Tensor.t
(** Fully-connected head (w, b). *)

val learned_scale_grids : t -> (float array array * float array array) option list
(** Per conv layer, the (S_B, S_G) grids of its Winograd-aware layer (from
    calibration or log2-gradient learning); [None] for non-Winograd modes.
    Consumed by {!Deploy} so trained scales survive into deployment. *)

val to_graph : t -> calibration:Twq_tensor.Tensor.t -> Graph.t
(** Rebuild the trained ([Vgg_mini]) model as a {!Graph.t}: BN statistics
    are taken from the calibration batch, after which all graph passes
    (folding, operator selection, {!Int_graph.quantize}) apply.
    @raise Invalid_argument for residual architectures. *)
