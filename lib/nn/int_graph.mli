(** Post-training quantization of a {!Graph.t} into an integer-only graph.

    Generalises {!Deploy} to arbitrary graphs, including the residual
    connections of ResNet-style models:

    - 3×3 stride-1 convolutions become tap-wise Winograd layers
      ({!Twq_quant.Tapwise});
    - all other convolutions become int8 spatial layers
      ({!Twq_quant.Qconv});
    - ReLU / max-pool / 2×2 avg-pool / upsample run directly on int8;
    - residual [Add] aligns its two operands' power-of-two scales with
      hardware round-shifts, adds, and saturates back to int8;
    - the global-average-pool + linear head runs in float.

    Every inter-node tensor carries a power-of-two scale, so all the
    rescaling in the integer graph is shift-based — the same property the
    paper's FixPipe exploits.

    Run {!Passes.fold_bn} first: [quantize] rejects graphs that still
    contain batch-norm nodes. *)

type t

val quantize :
  Graph.t ->
  calibration:Twq_tensor.Tensor.t ->
  ?variant:Twq_winograd.Transform.variant ->
  ?wino_bits:int ->
  unit ->
  t
(** @raise Invalid_argument on BN nodes or unsupported pooling sizes. *)

val run : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Float in (quantized at the input scale), logits out.  Executes the
    compiled {!Plan} for the input's shape (compiled once per shape,
    cached): fused requant/ReLU/add epilogues, liveness-based arena
    reuse, near-zero steady-state allocation.  Bit-identical to
    {!run_ref}. *)

val run_ref : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Reference node-by-node interpreter — the oracle {!run} is tested
    against.  Drops intermediate activations after their last use. *)

val plans : t -> Plan.cache option
(** The graph's plan cache ([None] only for deserialized graphs whose
    output is not a GAP→Linear head). *)

val noise_vs_float : t -> Graph.t -> Twq_tensor.Tensor.t -> float
(** Relative RMS error of the integer graph's logits against the float
    graph's, on a given batch. *)

val winograd_layer_count : t -> int
val spatial_layer_count : t -> int

(** {2 Winograd-domain pruning} *)

val prune : t -> density:float -> t
(** Magnitude-prune every tap-wise layer's quantized Winograd weights
    to the given nonzero fraction ([Pruning.prune_quantized], per
    layer) and re-make the graph, so lowering re-packs the panels and
    re-takes the per-tap sparse/dense execution decision from the
    pruned zeros.  Spatial layers and the float head are untouched.
    @raise Invalid_argument if [density] is outside (0, 1]. *)

val winograd_density : t -> float
(** Aggregate nonzero fraction over all tap-wise layers' quantized
    Winograd weights (1.0 if there are none). *)

val wino_sparsity : t -> int * int
(** [Plan.wino_sparsity] of the graph's plan cache; [(0, 0)] for
    graphs without plans. *)

(** {2 File I/O} *)

val to_string : t -> string
val of_string : string -> t
(** Exact round-trip (hex-float scales): a reloaded graph produces
    bit-identical integer activations. *)

val save : t -> string -> unit
val load : string -> t
