module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Transform = Twq_winograd.Transform
module Calibration = Twq_quant.Calibration
module Quantizer = Twq_quant.Quantizer
open Twq_autodiff

type wa_spec = {
  variant : Transform.variant;
  wino_bits : int;
  tapwise : bool;
  pow2 : bool;
  learned : bool;
}

type conv_mode = Fp32 | Int8_spatial | Wa of wa_spec

type arch =
  | Vgg_mini of int list
  | Resnet_mini of { width : int; blocks : int }

type config = {
  mode : conv_mode;
  arch : arch;
  in_channels : int;
  classes : int;
  act_bits : int;
}

let default_config mode =
  { mode; arch = Vgg_mini [ 8; 16 ]; in_channels = 3; classes = 4; act_bits = 8 }

type conv_layer = {
  w : Var.t;
  gamma : Var.t;
  beta : Var.t;
  act_obs : Calibration.t;
  wa : Wa_conv.t option;
  mutable frozen : bool;
}

type head = { fc_w : Var.t; fc_b : Var.t }

type t = {
  cfg : config;
  convs : conv_layer array;
  (* residual wiring: for Resnet_mini, convs are [stem; b1c1; b1c2; ...] *)
  head : head;
}

(* He-style initialisation for 3×3 convs. *)
let init_conv rng cin cout =
  let sigma = sqrt (2.0 /. float_of_int (cin * 9)) in
  Var.of_tensor (Tensor.rand_gaussian rng [| cout; cin; 3; 3 |] ~mu:0.0 ~sigma)

let make_conv_layer cfg rng cin cout =
  let wa =
    match cfg.mode with
    | Wa s ->
        Some
          (Wa_conv.create ~variant:s.variant ~wino_bits:s.wino_bits
             ~pow2:s.pow2 ~tapwise:s.tapwise
             ~mode:(if s.learned then Wa_conv.Learned else Wa_conv.Static)
             ~pad:1 ())
    | Fp32 | Int8_spatial -> None
  in
  {
    w = init_conv rng cin cout;
    gamma = Var.of_tensor (Tensor.ones [| cout |]);
    beta = Var.of_tensor (Tensor.zeros [| cout |]);
    act_obs = Calibration.create ();
    wa;
    frozen = false;
  }

let conv_channel_pairs cfg =
  match cfg.arch with
  | Vgg_mini stages ->
      let rec loop cin = function
        | [] -> []
        | c :: rest -> (cin, c) :: (c, c) :: loop c rest
      in
      loop cfg.in_channels stages
  | Resnet_mini { width; blocks } ->
      (cfg.in_channels, width)
      :: List.concat (List.init blocks (fun _ -> [ (width, width); (width, width) ]))

let last_width cfg =
  match cfg.arch with
  | Vgg_mini stages -> List.nth stages (List.length stages - 1)
  | Resnet_mini { width; _ } -> width

let create cfg ~seed =
  let rng = Rng.create seed in
  let convs =
    Array.of_list
      (List.map (fun (cin, cout) -> make_conv_layer cfg rng cin cout)
         (conv_channel_pairs cfg))
  in
  let w_last = last_width cfg in
  let sigma = sqrt (2.0 /. float_of_int w_last) in
  let head =
    {
      fc_w = Var.of_tensor (Tensor.rand_gaussian rng [| cfg.classes; w_last |] ~mu:0.0 ~sigma);
      fc_b = Var.of_tensor (Tensor.zeros [| cfg.classes |]);
    }
  in
  { cfg; convs; head }

(* Weight scale follows the live weight maximum (standard QAT). *)
let spatial_weight_quant ~bits w =
  let max_abs = Tensor.max_abs w.Var.data in
  let scale = Quantizer.scale_for ~bits ~max_abs in
  Quant_ops.fake_quant_ste ~bits ~scale w

let apply_conv cfg layer x =
  match cfg.mode with
  | Fp32 -> Fn.conv2d ~stride:1 ~pad:1 ~x ~w:layer.w ~b:None ()
  | Int8_spatial ->
      let xq =
        if layer.frozen && not (Calibration.is_calibrated layer.act_obs) then x
        else Quant_ops.quantize_act ~observer:layer.act_obs ~bits:cfg.act_bits ~pow2:false x
      in
      let wq = spatial_weight_quant ~bits:cfg.act_bits layer.w in
      Fn.conv2d ~stride:1 ~pad:1 ~x:xq ~w:wq ~b:None ()
  | Wa _ ->
      let xq =
        Quant_ops.quantize_act ~observer:layer.act_obs ~bits:cfg.act_bits ~pow2:false x
      in
      let wq = spatial_weight_quant ~bits:cfg.act_bits layer.w in
      let wa = Option.get layer.wa in
      Wa_conv.forward wa ~x:xq ~w:wq

let conv_bn_relu cfg layer x =
  let y = apply_conv cfg layer x in
  let y = Fn.batch_norm_frozen ~x:y ~gamma:layer.gamma ~beta:layer.beta ~eps:1e-5 in
  Fn.relu y

let forward t x_batch =
  let cfg = t.cfg in
  let x = Var.of_tensor x_batch in
  let feat =
    match cfg.arch with
    | Vgg_mini stages ->
        let n_stages = List.length stages in
        let x = ref x in
        for s = 0 to n_stages - 1 do
          x := conv_bn_relu cfg t.convs.((2 * s) + 0) !x;
          x := conv_bn_relu cfg t.convs.((2 * s) + 1) !x;
          x := Fn.avg_pool2d ~k:2 ~stride:2 !x
        done;
        !x
    | Resnet_mini { blocks; _ } ->
        let x = ref (conv_bn_relu cfg t.convs.(0) x) in
        for b = 0 to blocks - 1 do
          let skip = !x in
          let y = conv_bn_relu cfg t.convs.((2 * b) + 1) !x in
          let l2 = t.convs.((2 * b) + 2) in
          let y = apply_conv cfg l2 y in
          let y = Fn.batch_norm_frozen ~x:y ~gamma:l2.gamma ~beta:l2.beta ~eps:1e-5 in
          x := Fn.relu (Fn.add y skip)
        done;
        !x
  in
  let pooled = Fn.global_avg_pool feat in
  Fn.linear ~x:pooled ~w:t.head.fc_w ~b:(Some t.head.fc_b)

let params t =
  let conv_params =
    Array.to_list t.convs
    |> List.concat_map (fun l -> [ l.w; l.gamma; l.beta ])
  in
  conv_params @ [ t.head.fc_w; t.head.fc_b ]

let scale_params t =
  Array.to_list t.convs
  |> List.concat_map (fun l ->
         match l.wa with
         | Some wa -> List.filter Scale_param.learnable (Wa_conv.scales wa)
         | None -> [])

let observers t =
  Array.to_list t.convs |> List.map (fun l -> l.act_obs)

let wa_layers t = Array.to_list t.convs |> List.map (fun l -> l.wa)

let set_frozen t b =
  Array.iter
    (fun l ->
      l.frozen <- b;
      Calibration.set_frozen l.act_obs b;
      match l.wa with Some wa -> Wa_conv.set_frozen wa b | None -> ())
    t.convs

let config t = t.cfg

let num_parameters t =
  List.fold_left (fun a p -> a + Tensor.numel p.Var.data) 0 (params t)

let conv_weights t =
  Array.to_list t.convs |> List.map (fun l -> l.w.Var.data)

let conv_bn_params t =
  Array.to_list t.convs
  |> List.map (fun l -> (l.w.Var.data, l.gamma.Var.data, l.beta.Var.data))

let learned_scale_grids t =
  Array.to_list t.convs
  |> List.map (fun l ->
         match l.wa with
         | Some wa ->
             Some (Wa_conv.input_scale_grid wa, Wa_conv.weight_scale_grid wa)
         | None -> None)

let head_params t = (t.head.fc_w.Var.data, t.head.fc_b.Var.data)

(* Bridge to the graph IR: rebuild the (Vgg_mini) model as a Graph.t with
   batch-norm statistics taken from a calibration batch, so the graph
   passes (fold_bn, Int_graph.quantize, Graph_compiler.select) apply to
   trained models.  The graph is numerically equivalent to this model's
   FP32 evaluation on batches with the same statistics. *)
let to_graph t ~calibration =
  let stages =
    match t.cfg.arch with
    | Vgg_mini stages -> stages
    | Resnet_mini _ ->
        invalid_arg "Qat_model.to_graph: only Vgg_mini architectures"
  in
  let g = Graph.create () in
  let x_graph = Graph.input g in
  let x_cal = ref calibration in
  let node = ref x_graph in
  List.iteri
    (fun stage_idx _ ->
      for k = 0 to 1 do
        let layer = t.convs.((2 * stage_idx) + k) in
        let w = Tensor.copy layer.w.Var.data in
        let conv_out =
          Twq_tensor.Ops.conv2d ~stride:1 ~pad:1 ~x:!x_cal ~w ()
        in
        (* Batch statistics of the calibration activations become the
           graph BN's stored statistics. *)
        let c = Tensor.dim conv_out 1 in
        let n = Tensor.dim conv_out 0 in
        let h = Tensor.dim conv_out 2 and wd = Tensor.dim conv_out 3 in
        let count = float_of_int (n * h * wd) in
        let mean = Tensor.zeros [| c |] and var = Tensor.zeros [| c |] in
        for ci = 0 to c - 1 do
          let sum = ref 0.0 and sq = ref 0.0 in
          for ni = 0 to n - 1 do
            for hi = 0 to h - 1 do
              for wi = 0 to wd - 1 do
                let v = Tensor.get4 conv_out ni ci hi wi in
                sum := !sum +. v;
                sq := !sq +. (v *. v)
              done
            done
          done;
          mean.Tensor.data.(ci) <- !sum /. count;
          var.Tensor.data.(ci) <-
            Float.max 0.0 ((!sq /. count) -. (mean.Tensor.data.(ci) ** 2.0))
        done;
        let cid = Graph.add g (Graph.Conv { w; bias = None; stride = 1; pad = 1 }) [ !node ] in
        let bid =
          Graph.add g
            (Graph.Bn
               { gamma = Tensor.copy layer.gamma.Var.data;
                 beta = Tensor.copy layer.beta.Var.data; mean; var })
            [ cid ]
        in
        node := Graph.add g Graph.Relu [ bid ];
        x_cal :=
          Twq_tensor.Ops.relu
            (Twq_tensor.Ops.batch_norm ~x:conv_out
               ~gamma:layer.gamma.Var.data ~beta:layer.beta.Var.data ~mean ~var
               ~eps:1e-5)
      done;
      node := Graph.add g (Graph.Avg_pool { k = 2; stride = 2 }) [ !node ];
      x_cal := Twq_tensor.Ops.avg_pool2d ~k:2 ~stride:2 !x_cal)
    stages;
  let gap = Graph.add g Graph.Global_avg_pool [ !node ] in
  let fc =
    Graph.add g
      (Graph.Linear
         { w = Tensor.copy t.head.fc_w.Var.data;
           bias = Some (Tensor.copy t.head.fc_b.Var.data) })
      [ gap ]
  in
  Graph.set_output g fc;
  g
