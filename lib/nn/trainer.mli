(** Training and evaluation loops for {!Qat_model}.

    Reproduces the paper's recipe: SGD (momentum) on network weights, Adam
    on the learnable quantization scales, optional knowledge distillation
    from an FP32 teacher with the tempered-softmax KL loss. *)

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  momentum : float;
  weight_decay : float;
  scale_lr : float;        (** Adam lr for the quantization scales *)
  kd : kd option;
  grad_clip : float;
  seed : int;
  data_parallel : bool;
      (** Split every batch into fixed-size sub-batches whose
          forward/backward passes run on the {!Twq_util.Parallel} pool,
          with per-chunk gradient sinks merged in chunk order.  The
          sub-batch partition is independent of the domain count, so a
          given seed trains identically on 1 or N domains (though not
          bit-identically to [data_parallel = false], whose calibration
          sees whole batches). *)
}

and kd = { teacher : Qat_model.t; temperature : float; alpha : float }
(** Loss = (1−α)·CE + α·KL(teacher ∥ student) at temperature T. *)

val default_options : options
(** 8 epochs, batch 16, lr 0.05, momentum 0.9, scale-lr 0.002, no KD,
    clip 5.0, no data parallelism. *)

type history = {
  train_loss : float array;  (** mean loss per epoch *)
  valid_acc : float array;   (** top-1 on the validation split per epoch *)
}

val train : Qat_model.t -> Twq_dataset.Synth_images.t -> options -> history

val evaluate : Qat_model.t -> Twq_dataset.Synth_images.sample array -> float
(** Top-1 accuracy (in [\[0,1\]]) on a split; calibration is frozen for the
    duration of the evaluation. *)

val evaluate_topk : k:int -> Qat_model.t -> Twq_dataset.Synth_images.sample array -> float
(** Top-k accuracy (the paper reports Top-5 alongside Top-1). *)

val logits : Qat_model.t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Inference logits for a batch (no gradient bookkeeping kept). *)
