(** Training and evaluation loops for {!Qat_model}.

    Reproduces the paper's recipe: SGD (momentum) on network weights, Adam
    on the learnable quantization scales, optional knowledge distillation
    from an FP32 teacher with the tempered-softmax KL loss.

    Training is crash-safe: with {!options.checkpoint} set, the full
    mutable training state — parameter tensors, SGD momentum buffers,
    scale-parameter Adam state, calibration observers, Winograd-aware
    layer EMAs, the RNG, and the epoch/batch cursor — is snapshotted
    atomically (via {!Twq_util.Checkpoint}) every N batches and at every
    epoch boundary, and {!train_resume} continues a killed run
    bit-identically to one that was never interrupted.  Independent of
    checkpointing, a divergence guard skips optimizer steps whose loss or
    gradients are non-finite, decays the learning rate, and after enough
    consecutive failures rolls the whole training state back to the last
    good snapshot. *)

type kd = { teacher : Qat_model.t; temperature : float; alpha : float }
(** Loss = (1−α)·CE + α·KL(teacher ∥ student) at temperature T. *)

type checkpointing = {
  ckpt_path : string;  (** snapshot file; [path ^ ".1"] keeps the previous generation *)
  ckpt_every : int;  (** also snapshot every N healthy batches (0 = epoch ends only) *)
}

type divergence_policy = {
  max_failures : int;
      (** consecutive non-finite steps tolerated before rolling back *)
  lr_backoff : float;  (** LR multiplier applied per non-finite step *)
}

val default_divergence : divergence_policy
(** 3 consecutive failures, halve the LR each time. *)

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  momentum : float;
  weight_decay : float;
  scale_lr : float;        (** Adam lr for the quantization scales *)
  kd : kd option;
  grad_clip : float;
  seed : int;
  data_parallel : bool;
      (** Split every batch into fixed-size sub-batches whose
          forward/backward passes run on the {!Twq_util.Parallel} pool,
          with per-chunk gradient sinks merged in chunk order.  The
          sub-batch partition is independent of the domain count, so a
          given seed trains identically on 1 or N domains (though not
          bit-identically to [data_parallel = false], whose calibration
          sees whole batches). *)
  checkpoint : checkpointing option;
      (** Persist training-state snapshots; [None] disables persistence
          (the in-memory rollback target of the divergence guard is kept
          either way).  KD teachers are not part of the snapshot — a
          resuming caller must reconstruct the teacher itself. *)
  divergence : divergence_policy;
  loss_tap : (epoch:int -> batch:int -> float -> float) option;
      (** Observes (and may replace) each batch loss before the health
          check — a hook for diagnostics and fault injection in tests.
          Raising from the tap aborts training at that exact batch. *)
}

val default_options : options
(** 8 epochs, batch 16, lr 0.05, momentum 0.9, scale-lr 0.002, no KD,
    clip 5.0, no data parallelism, no checkpointing,
    {!default_divergence}, no tap. *)

type history = {
  train_loss : float array;  (** mean loss per epoch *)
  valid_acc : float array;   (** top-1 on the validation split per epoch *)
}

val train : Qat_model.t -> Twq_dataset.Synth_images.t -> options -> history
(** Train from scratch.
    @raise Invalid_argument on an empty training split or non-positive
    batch size. *)

val train_resume :
  Qat_model.t -> Twq_dataset.Synth_images.t -> options -> history
(** Resume from the newest valid snapshot under
    [options.checkpoint.ckpt_path] (falling back to the previous
    generation when the newest is truncated or corrupt).  The model must
    have been created with the same configuration and seed as the
    original run; shape or count mismatches reject the snapshot.  With a
    valid snapshot, the returned history is bit-identical to the one an
    uninterrupted {!train} would have produced.  When no usable snapshot
    exists, a note goes to stderr and training starts fresh.
    @raise Invalid_argument when [options.checkpoint] is [None]. *)

val evaluate : Qat_model.t -> Twq_dataset.Synth_images.sample array -> float
(** Top-1 accuracy (in [\[0,1\]]) on a split; calibration is frozen for the
    duration of the evaluation. *)

val evaluate_topk : k:int -> Qat_model.t -> Twq_dataset.Synth_images.sample array -> float
(** Top-k accuracy (the paper reports Top-5 alongside Top-1). *)

val logits : Qat_model.t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** Inference logits for a batch (no gradient bookkeeping kept). *)
