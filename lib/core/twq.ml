(** Public facade of the tap-wise-quantized Winograd library.

    Downstream users are expected to program against this module; the
    [Twq_*] libraries remain accessible for advanced use. *)

module Rat = Twq_util.Rat
module Rmat = Twq_util.Rmat
module Rng = Twq_util.Rng
module Stats = Twq_util.Stats
module Interval = Twq_util.Interval
module Table = Twq_util.Table
module Parallel = Twq_util.Parallel
module Modint = Twq_util.Modint
module Crc32 = Twq_util.Crc32
module Checkpoint = Twq_util.Checkpoint

module Shape = Twq_tensor.Shape
module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops

module Winograd = struct
  module Transform = Twq_winograd.Transform
  module Kernels = Twq_winograd.Kernels
  module Microkernel = Twq_winograd.Microkernel
  module Conv = Twq_winograd.Conv
  module Gconv = Twq_winograd.Gconv
  module Generator = Twq_winograd.Generator
  module Rns = Twq_winograd.Rns
  module Pinv = Twq_winograd.Pinv
end

module Quant = struct
  module Quantizer = Twq_quant.Quantizer
  module Calibration = Twq_quant.Calibration
  module Tapwise = Twq_quant.Tapwise
  module Qconv = Twq_quant.Qconv
  module Error_analysis = Twq_quant.Error_analysis
end

module Autodiff = struct
  module Var = Twq_autodiff.Var
  module Fn = Twq_autodiff.Fn
  module Quant_ops = Twq_autodiff.Quant_ops
  module Scale_param = Twq_autodiff.Scale_param
  module Wa_conv = Twq_autodiff.Wa_conv
  module Optim = Twq_autodiff.Optim
end

module Dataset = struct
  module Synth_images = Twq_dataset.Synth_images
end

module Nn = struct
  module Qat_model = Twq_nn.Qat_model
  module Trainer = Twq_nn.Trainer
  module Deploy = Twq_nn.Deploy
  module Graph = Twq_nn.Graph
  module Gmodels = Twq_nn.Gmodels
  module Passes = Twq_nn.Passes
  module Int_graph = Twq_nn.Int_graph
  module Zoo = Twq_nn.Zoo
end

module Hw = struct
  module Dfg = Twq_hw.Dfg
  module Engine = Twq_hw.Engine
  module Area_power = Twq_hw.Area_power
end

module Sim = struct
  module Arch = Twq_sim.Arch
  module Des = Twq_sim.Des
  module Operator = Twq_sim.Operator
  module Network_runner = Twq_sim.Network_runner
  module Graph_compiler = Twq_sim.Graph_compiler
  module Trace = Twq_sim.Trace
  module Cosim = Twq_sim.Cosim
end

module Nvdla = Twq_nvdla.Nvdla

(* Inference serving: model registry, dynamic batcher, wire protocol,
   shard router, load generator. *)
module Serve = struct
  module Metrics = Twq_serve.Metrics
  module Model = Twq_serve.Model
  module Registry = Twq_serve.Registry
  module Batcher = Twq_serve.Batcher
  module Server = Twq_serve.Server
  module Loadgen = Twq_serve.Loadgen
  module Wire = Twq_serve.Wire
  module Shard_client = Twq_serve.Shard_client
  module Router = Twq_serve.Router
end

(* Extensions beyond the paper's core pipeline. *)
module Strided = Twq_winograd.Strided
module Pruning = Twq_quant.Pruning
module Generator = Twq_winograd.Generator
module Serialize = Twq_quant.Serialize
module Conv1d = Twq_winograd.Conv1d
module Gconv = Twq_winograd.Gconv
