(* Scalar modular arithmetic for the RNS Winograd backend.

   Everything here is native-int only.  The caps below are what make that
   sound: with p ≤ 2^13 every digit-recurrence product is < 2^26, and with
   Π pᵢ ≤ 2^61 the final mixed-radix Horner value (always < Π pᵢ) never
   approaches max_int, so no intermediate can wrap. *)

let max_modulus = 8191 (* 2^13 - 1 *)
let max_moduli = 8
let max_product = 1 lsl 61

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, s, t = egcd b (a mod b) in
    (g, t, s - (a / b * t))

let coprime a b = gcd a b = 1

let[@inline] reduce v p =
  let r = v mod p in
  if r < 0 then r + p else r

let inv a p =
  let g, s, _ = egcd (reduce a p) p in
  if g <> 1 then None else Some (reduce s p)

module Crt = struct
  type t = {
    moduli : int array;
    product : int;
    half : int;
    (* inv_prefix.(i) = (Π_{j<i} p_j)⁻¹ mod p_i  (1 for i = 0) *)
    inv_prefix : int array;
    (* pref_mod.(i).(j) = (Π_{l<j} p_l) mod p_i, for j < i *)
    pref_mod : int array array;
  }

  let make basis =
    let k = Array.length basis in
    if k = 0 then Error "Modint.Crt.make: empty basis"
    else if k > max_moduli then
      Error
        (Printf.sprintf "Modint.Crt.make: %d moduli exceed the maximum of %d"
           k max_moduli)
    else begin
      let bad = ref None in
      Array.iteri
        (fun i p ->
          if !bad = None && (p < 2 || p > max_modulus) then
            bad :=
              Some
                (Printf.sprintf
                   "Modint.Crt.make: modulus %d (index %d) outside [2, %d]" p
                   i max_modulus))
        basis;
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          if !bad = None && not (coprime basis.(i) basis.(j)) then
            bad :=
              Some
                (Printf.sprintf
                   "Modint.Crt.make: moduli %d and %d share a factor %d"
                   basis.(i) basis.(j)
                   (gcd basis.(i) basis.(j)))
        done
      done;
      match !bad with
      | Some msg -> Error msg
      | None ->
          let product = ref 1 and overflow = ref false in
          Array.iter
            (fun p ->
              if !product > max_product / p then overflow := true
              else product := !product * p)
            basis;
          if !overflow then
            Error
              (Printf.sprintf
                 "Modint.Crt.make: basis product exceeds the 2^61 cap")
          else begin
            let inv_prefix =
              Array.mapi
                (fun i p ->
                  let pref = ref 1 in
                  for j = 0 to i - 1 do
                    pref := !pref * basis.(j) mod p
                  done;
                  (* pairwise coprimality makes the prefix invertible *)
                  match inv !pref p with Some v -> v | None -> assert false)
                basis
            in
            let pref_mod =
              Array.mapi
                (fun i p ->
                  Array.init i (fun j ->
                      let pref = ref 1 in
                      for l = 0 to j - 1 do
                        pref := !pref * basis.(l) mod p
                      done;
                      !pref))
                basis
            in
            Ok
              {
                moduli = Array.copy basis;
                product = !product;
                half = !product / 2;
                inv_prefix;
                pref_mod;
              }
          end
    end

  let moduli t = Array.copy t.moduli
  let product t = t.product
  let residues t v = Array.map (fun p -> reduce v p) t.moduli

  (* Garner: recover the mixed-radix digits d_i < p_i of the value
     x = d_0 + p_0·(d_1 + p_1·(d_2 + …)) from its residues, then evaluate
     by Horner and center.  Digit arithmetic stays < p² < 2^26; the Horner
     value is < Π pᵢ ≤ 2^61 throughout. *)
  let reconstruct t ?digits rs =
    let k = Array.length t.moduli in
    let d = match digits with Some d -> d | None -> Array.make k 0 in
    for i = 0 to k - 1 do
      let p = t.moduli.(i) in
      let pref = t.pref_mod.(i) in
      let acc = ref 0 in
      for j = 0 to i - 1 do
        acc := (!acc + (d.(j) * pref.(j))) mod p
      done;
      d.(i) <- reduce (rs.(i) - !acc) p * t.inv_prefix.(i) mod p
    done;
    let v = ref d.(k - 1) in
    for i = k - 2 downto 0 do
      v := (!v * t.moduli.(i)) + d.(i)
    done;
    if !v > t.half then !v - t.product else !v
end
