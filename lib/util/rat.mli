(** Exact rational arithmetic on machine integers.

    Used to represent Winograd transformation matrices exactly, so that
    shift-and-add decompositions, bit-true integer paths, and pseudo-inverse
    computations start from the true coefficients rather than float
    approximations.  All values are kept in lowest terms with a positive
    denominator.  Numerators and denominators stay tiny for the matrices in
    this library ([F2], [F4]); operations raise [Overflow] if a result would
    exceed the representable range. *)

type t = private { num : int; den : int }

exception Division_by_zero
exception Overflow

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val checked_mul : int -> int -> int
(** Native-int product that raises {!Overflow} instead of wrapping — the
    primitive behind the arithmetic below and behind the worst-case range
    proofs of the RNS backend. *)

val checked_add : int -> int -> int
(** Native-int sum that raises {!Overflow} instead of wrapping. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val is_zero : t -> bool
val is_integer : t -> bool
val is_power_of_two : t -> bool
(** [is_power_of_two r] is true iff [r = ±2^k] for some integer [k]
    (positive or negative [k]); zero is not a power of two. *)

val log2_exact : t -> int option
(** [log2_exact r] is [Some k] when [r = 2^k] ([r > 0]), else [None]. *)

val to_float : t -> float
val to_int_exn : t -> int
(** @raise Invalid_argument if the rational is not an integer. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
