type t = Rat.t array array

let make r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))

let of_ints a = Array.map (Array.map Rat.of_int) a

let identity n = make n n (fun i j -> if i = j then Rat.one else Rat.zero)

let rows m = Array.length m
let cols m = if rows m = 0 then 0 else Array.length m.(0)

let transpose m = make (cols m) (rows m) (fun i j -> m.(j).(i))

let mul a b =
  if cols a <> rows b then invalid_arg "Rmat.mul: dimension mismatch";
  make (rows a) (cols b) (fun i j ->
      let acc = ref Rat.zero in
      for k = 0 to cols a - 1 do
        acc := Rat.add !acc (Rat.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let add a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Rmat.add: dimension mismatch";
  make (rows a) (cols a) (fun i j -> Rat.add a.(i).(j) b.(i).(j))

let scale k m = Array.map (Array.map (Rat.mul k)) m

let hadamard a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Rmat.hadamard: dimension mismatch";
  make (rows a) (cols a) (fun i j -> Rat.mul a.(i).(j) b.(i).(j))

let equal a b =
  rows a = rows b && cols a = cols b
  && begin
       let ok = ref true in
       for i = 0 to rows a - 1 do
         for j = 0 to cols a - 1 do
           if not (Rat.equal a.(i).(j) b.(i).(j)) then ok := false
         done
       done;
       !ok
     end

let inverse m =
  let n = rows m in
  if cols m <> n then invalid_arg "Rmat.inverse: non-square matrix";
  (* Augmented Gauss–Jordan on a mutable copy. *)
  let a = Array.map Array.copy m in
  let inv = Array.map Array.copy (identity n) in
  for col = 0 to n - 1 do
    (* Find a pivot row. *)
    let pivot = ref (-1) in
    for r = col to n - 1 do
      if !pivot = -1 && not (Rat.is_zero a.(r).(col)) then pivot := r
    done;
    if !pivot = -1 then failwith "Rmat.inverse: singular matrix";
    let swap arr =
      let tmp = arr.(col) in
      arr.(col) <- arr.(!pivot);
      arr.(!pivot) <- tmp
    in
    swap a;
    swap inv;
    let p = a.(col).(col) in
    for j = 0 to n - 1 do
      a.(col).(j) <- Rat.div a.(col).(j) p;
      inv.(col).(j) <- Rat.div inv.(col).(j) p
    done;
    for r = 0 to n - 1 do
      if r <> col && not (Rat.is_zero a.(r).(col)) then begin
        let factor = a.(r).(col) in
        for j = 0 to n - 1 do
          a.(r).(j) <- Rat.sub a.(r).(j) (Rat.mul factor a.(col).(j));
          inv.(r).(j) <- Rat.sub inv.(r).(j) (Rat.mul factor inv.(col).(j))
        done
      end
    done
  done;
  inv

let pinv_left m =
  let mt = transpose m in
  let gram = mul mt m in
  let gram_inv =
    try inverse gram
    with Failure _ -> failwith "Rmat.pinv_left: rank-deficient matrix"
  in
  mul gram_inv mt

exception Lift_overflow of string

(* Common-denominator lift: s·M with s = lcm of every entry denominator.
   Both the lcm fold and the per-entry rescale refuse to wrap and name
   the offending entry — F(6,3)/F(8,3) synthesis is exactly where silent
   native-int wrap-around would otherwise corrupt the integer matrices. *)

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let common_denominator m =
  let s = ref 1 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j x ->
          let d = Rat.den x in
          let g = gcd_int !s d in
          match Rat.checked_mul (!s / g) d with
          | v -> s := v
          | exception Rat.Overflow ->
              raise
                (Lift_overflow
                   (Printf.sprintf
                      "Rmat.common_denominator: lcm of denominators \
                       overflows at entry (%d,%d) = %s"
                      i j (Rat.to_string x))))
        row)
    m;
  !s

let lift_common_denominator m =
  let s = common_denominator m in
  let lifted =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j x ->
            match Rat.checked_mul (Rat.num x) (s / Rat.den x) with
            | v -> v
            | exception Rat.Overflow ->
                raise
                  (Lift_overflow
                     (Printf.sprintf
                        "Rmat.lift_common_denominator: entry (%d,%d) = %s \
                         overflows at scale %d"
                        i j (Rat.to_string x) s)))
          row)
      m
  in
  (s, lifted)

let to_float m = Array.map (Array.map Rat.to_float) m

let pp ppf m =
  Array.iter
    (fun row ->
      Array.iteri
        (fun j x ->
          if j > 0 then Format.fprintf ppf "  ";
          Format.fprintf ppf "%8s" (Rat.to_string x))
        row;
      Format.fprintf ppf "@.")
    m
