/* Monotonic clock for the serving stack.

   OCaml 5.1's Unix library has no clock_gettime binding, and the fleet
   must never time batch windows, deadlines or breaker cooldowns off the
   wall clock (an NTP step would wedge or prematurely fire them), so this
   is the one tiny C stub in the tree: CLOCK_MONOTONIC seconds as an
   unboxed float. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

double twq_mclock_now_unboxed(value unit)
{
  (void)unit;
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return (double)count.QuadPart / (double)freq.QuadPart;
}

#else
#include <time.h>
#include <sys/time.h>

double twq_mclock_now_unboxed(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
#endif
  /* No monotonic clock on this platform: degrade to wall time rather
     than fail — callers only ever subtract two readings. */
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return (double)tv.tv_sec + (double)tv.tv_usec * 1e-6;
}

#endif

CAMLprim value twq_mclock_now(value unit)
{
  return caml_copy_double(twq_mclock_now_unboxed(unit));
}
