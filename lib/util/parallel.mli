(** Persistent domain-based worker pool for data-parallel kernels.

    The pool spawns [num_domains () - 1] worker domains once and reuses
    them across calls, so per-call overhead is a couple of condvar
    signals rather than a domain spawn.  Work is handed out in chunks of
    indices through an atomic cursor; callers participate in their own
    jobs, so [num_domains () = 1] degenerates to a plain sequential loop
    with no pool machinery at all and bit-identical results.

    Domain count resolution order: {!set_num_domains} override, then the
    [TWQ_NUM_DOMAINS] environment variable, then
    [Domain.recommended_domain_count ()].  The environment variable is
    re-read when it changes, so [putenv] before a call takes effect.

    Nested calls are safe: a [parallel_for] issued from inside a running
    parallel region executes sequentially on the calling domain.

    All functions re-raise (on the caller) the first exception raised by
    any chunk; remaining chunks still run to completion. *)

val num_domains : unit -> int
(** Current worker count (including the calling domain), >= 1. *)

val set_num_domains : int -> unit
(** Override the domain count (clamped to [\[1; 128\]]); takes
    precedence over [TWQ_NUM_DOMAINS].  Shuts down and respawns the
    pool as needed.  Intended for tests and benchmarks. *)

val clear_num_domains_override : unit -> unit
(** Drop the {!set_num_domains} override and fall back to the
    environment variable / recommended count. *)

val sequential : (unit -> 'a) -> 'a
(** [sequential f] runs [f] with every [parallel_for]/[map_array] call
    it makes (transitively, on this domain) forced to the sequential
    path.  Used by the benchmark harness for seq-vs-par pairs. *)

val parallel_for : ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~lo ~hi f] runs [f i] for [lo <= i < hi], partitioned
    into chunks executed by the pool.  [f] must only write state owned
    by iteration [i] (distinct output cells); under that contract the
    result is bit-identical to the sequential loop for any domain
    count.  [chunk] is the number of consecutive indices per work item
    (default: a heuristic based on trip count and domain count). *)

val parallel_for_reduce :
  ?chunk:int ->
  lo:int ->
  hi:int ->
  init:'a ->
  combine:('a -> 'a -> 'a) ->
  (int -> 'a) ->
  'a
(** [parallel_for_reduce ~lo ~hi ~init ~combine f] folds [combine] over
    [f i] for [lo <= i < hi].  [init] must be a neutral element of
    [combine].  Per-chunk partial results are combined in ascending
    chunk order, and the default chunking is independent of the domain
    count, so the result is deterministic for a fixed [chunk] even when
    [combine] is not exactly associative (floats). *)

(** Per-domain scratch arenas for allocation-free hot loops.

    An arena owns one growable buffer per domain (via [Domain.DLS]);
    {!Scratch.borrow} returns the calling domain's buffer, enlarged to at
    least the requested length.  Buffers persist across [parallel_for]
    jobs, so workers reuse them from tile to tile.  Borrowing twice from
    the same arena on one domain returns the {e same} array — create one
    arena per logically distinct buffer. *)
module Scratch : sig
  type 'a arena

  val create : 'a -> 'a arena
  (** [create blank] — a fresh arena whose buffers are filled with
      [blank] on (re)allocation.  Call once, at module level. *)

  val create_float : unit -> float arena
  val create_int : unit -> int arena

  val borrow : 'a arena -> int -> 'a array
  (** [borrow a n] — this domain's buffer, length >= [n].  Contents
      beyond what the caller last wrote are unspecified. *)
end

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map].  [f] runs once per element (including index
    0, which is evaluated on the caller to seed the result array). *)

val shutdown : unit -> unit
(** Join all worker domains.  Subsequent calls respawn the pool on
    demand; mainly useful before [exit] in long-lived drivers. *)
