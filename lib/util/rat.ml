type t = { num : int; den : int }

exception Division_by_zero
exception Overflow

(* Largest magnitude we allow for numerators/denominators before declaring
   overflow.  The transform matrices used in this library involve tiny
   coefficients, so any blow-up past this bound indicates a logic error. *)
let limit = 1 lsl 40

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let check x = if abs x > limit then raise Overflow else x

(* Native-int products/sums that refuse to wrap.  [make] only bounds the
   *normalized* result, so cross products of two in-range rationals (up to
   limit² = 2^80) could silently wrap before normalization without these
   guards — exactly what synthesizing big tiles like F(6,3)/F(8,3)
   exercises. *)
let checked_mul a b =
  if a = 0 || b = 0 then 0
  else if a = min_int || b = min_int then raise Overflow
    (* [abs min_int] wraps to [min_int]; the quotient test below would
       miss it *)
  else if abs a > max_int / abs b then raise Overflow
  else a * b

let checked_add a b =
  if (b > 0 && a > max_int - b) || (b < 0 && a < min_int - b) then
    raise Overflow
  else a + b

let make num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then { num = 0; den = 1 }
  else begin
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = gcd (abs num) (abs den) in
    { num = check (num / g); den = check (den / g) }
  end

let of_int n = { num = check n; den = 1 }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let minus_one = { num = -1; den = 1 }

let num r = r.num
let den r = r.den

let add a b =
  make
    (checked_add (checked_mul a.num b.den) (checked_mul b.num a.den))
    (checked_mul a.den b.den)

let sub a b =
  make
    (checked_add (checked_mul a.num b.den) (- checked_mul b.num a.den))
    (checked_mul a.den b.den)

let mul a b = make (checked_mul a.num b.num) (checked_mul a.den b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (checked_mul a.num b.den) (checked_mul a.den b.num)

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let compare a b =
  Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0

let is_zero a = a.num = 0
let is_integer a = a.den = 1

let is_pow2_nat n = n > 0 && n land (n - 1) = 0

let is_power_of_two a =
  a.num <> 0 && is_pow2_nat (Stdlib.abs a.num) && is_pow2_nat a.den

let rec ilog2 n = if n <= 1 then 0 else 1 + ilog2 (n / 2)

let log2_exact a =
  if a.num > 0 && is_pow2_nat a.num && is_pow2_nat a.den then
    Some (ilog2 a.num - ilog2 a.den)
  else None

let to_float a = float_of_int a.num /. float_of_int a.den

let to_int_exn a =
  if a.den = 1 then a.num
  else invalid_arg "Rat.to_int_exn: not an integer"

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
