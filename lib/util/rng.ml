type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }
let copy t = { state = t.state }
let state t = t.state
let set_state t s = t.state <- s

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

(* 53-bit mantissa uniform in [0,1). *)
let unit_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = unit_float t in
    if u > 1e-300 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let laplacian t ~mu ~b =
  let u = unit_float t -. 0.5 in
  mu -. (b *. Float.(of_int (compare u 0.0)) *. log (1.0 -. (2.0 *. abs_float u)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
