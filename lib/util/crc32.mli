(** IEEE CRC-32 (the zlib/PNG polynomial).

    The single shared implementation behind {!Checkpoint} framing and the
    serving model registry's artifact integrity checks.  Returned values
    lie in [0, 2^32). *)

val digest : string -> int
(** CRC-32 of the whole string.  [digest "123456789" = 0xCBF43926]. *)

val digest_sub : string -> pos:int -> len:int -> int
(** CRC-32 of the substring [s.[pos .. pos+len-1]], without copying.
    @raise Invalid_argument on an out-of-bounds range. *)
