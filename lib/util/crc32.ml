(* IEEE CRC-32 (the zlib/PNG polynomial), table-driven; OCaml's 63-bit
   ints hold the 32-bit state directly.  Shared by checkpoint framing and
   the serving model registry so there is exactly one table in the
   binary. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest_sub";
  let tbl = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest s = digest_sub s ~pos:0 ~len:(String.length s)
