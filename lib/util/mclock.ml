external now : unit -> (float[@unboxed])
  = "twq_mclock_now" "twq_mclock_now_unboxed"
[@@noalloc]

let elapsed t0 = now () -. t0
