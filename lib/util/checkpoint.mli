(** Crash-safe checkpoint files: atomic writes, versioned header, CRC-32.

    A checkpoint is an opaque payload (any byte string) wrapped in a
    one-line header [TWQCKPT1 <version> <length> <crc32>\n].  Writes go
    through a temporary file followed by [Sys.rename], so a reader never
    observes a half-written checkpoint: a crash mid-write leaves at worst
    an orphaned [<path>.tmp] that the next save overwrites.  Loads verify
    the magic, version, declared payload length and CRC-32 before
    returning the payload, classifying every failure mode as a typed
    error instead of leaking [Scanf]/[Sys_error]/[End_of_file]
    exceptions. *)

type error =
  | Truncated of { expected : int; got : int }
      (** fewer payload bytes than the header declares (torn file) *)
  | Corrupt_checksum of { expected : int; got : int }
      (** CRC-32 mismatch: bit rot or byte corruption inside the payload *)
  | Bad_version of { found : int; expected : int }
      (** well-formed checkpoint written by an incompatible format version *)
  | Parse_error of string
      (** missing file, bad magic, garbled header, trailing bytes, … *)

val error_to_string : error -> string

val crc32 : string -> int
(** IEEE CRC-32 (the zlib/PNG polynomial), returned in [0, 2^32). *)

val current_version : int

val save : ?version:int -> ?rotate:bool -> string -> string -> unit
(** [save path payload] atomically replaces [path] with a framed
    checkpoint (write to [path ^ ".tmp"], then rename).  With
    [~rotate:true] the previous checkpoint, if any, is first renamed to
    [path ^ ".1"], keeping one older generation as a fallback for
    recovery. *)

val fallback_paths : string -> string list
(** [[path; path ^ ".1"]] — newest first, matching [save ~rotate:true]. *)

val load : ?version:int -> string -> (string, error) result
(** Read and verify a checkpoint, returning its payload.  Never raises on
    malformed, truncated or missing files. *)

val load_latest : ?version:int -> string list -> (string * string, error) result
(** [load_latest paths] tries each path in order and returns the first
    [(path, payload)] that verifies.  If every candidate fails, the error
    of the first existing candidate (the newest) is returned; if none
    exists, [Parse_error]. *)
