type error =
  | Truncated of { expected : int; got : int }
  | Corrupt_checksum of { expected : int; got : int }
  | Bad_version of { found : int; expected : int }
  | Parse_error of string

let error_to_string = function
  | Truncated { expected; got } ->
      Printf.sprintf "truncated payload: expected %d bytes, got %d" expected got
  | Corrupt_checksum { expected; got } ->
      Printf.sprintf "checksum mismatch: header says %08x, payload is %08x"
        expected got
  | Bad_version { found; expected } ->
      Printf.sprintf "unsupported version %d (expected %d)" found expected
  | Parse_error msg -> msg

let magic = "TWQCKPT1"
let current_version = 1

let crc32 = Crc32.digest

let write_atomic ~path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     flush oc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let save ?(version = current_version) ?(rotate = false) path payload =
  if rotate && Sys.file_exists path then
    (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
  let header =
    Printf.sprintf "%s %d %d %08x\n" magic version (String.length payload)
      (crc32 payload)
  in
  write_atomic ~path (header ^ payload)

let fallback_paths path = [ path; path ^ ".1" ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Parse_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception End_of_file -> Error (Parse_error "unreadable file"))

let load ?(version = current_version) path =
  match read_file path with
  | Error _ as e -> e
  | Ok raw -> (
      match String.index_opt raw '\n' with
      | None -> Error (Parse_error "no header line")
      | Some nl -> (
          let header = String.sub raw 0 nl in
          match String.split_on_char ' ' header with
          | [ m; v; len; crc ] -> (
              if m <> magic then Error (Parse_error "bad magic")
              else
                match
                  (int_of_string_opt v, int_of_string_opt len,
                   int_of_string_opt ("0x" ^ crc))
                with
                | Some v, Some len, Some crc when len >= 0 ->
                    if v <> version then
                      Error (Bad_version { found = v; expected = version })
                    else
                      let got_len = String.length raw - nl - 1 in
                      if got_len < len then
                        Error (Truncated { expected = len; got = got_len })
                      else if got_len > len then
                        Error
                          (Parse_error
                             (Printf.sprintf "%d trailing bytes after payload"
                                (got_len - len)))
                      else
                        let payload = String.sub raw (nl + 1) len in
                        let got_crc = crc32 payload in
                        if got_crc <> crc then
                          Error
                            (Corrupt_checksum { expected = crc; got = got_crc })
                        else Ok payload
                | _ -> Error (Parse_error ("garbled header: " ^ header)))
          | _ -> Error (Parse_error ("garbled header: " ^ header))))

let load_latest ?version paths =
  let rec go first_err = function
    | [] -> (
        match first_err with
        | Some e -> Error e
        | None -> Error (Parse_error "no checkpoint found"))
    | p :: rest -> (
        if not (Sys.file_exists p) then go first_err rest
        else
          match load ?version p with
          | Ok payload -> Ok (p, payload)
          | Error e ->
              go (match first_err with None -> Some e | some -> some) rest)
  in
  go None paths
