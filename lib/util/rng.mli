(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the reproduction (synthetic datasets,
    weight ensembles, DRAM latency jitter, training shuffles) draws from a
    seeded [Rng.t], making all experiments reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val copy : t -> t

val state : t -> int64
(** Raw generator state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a state captured with {!state}; the stream continues exactly
    where the captured generator left off. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val laplacian : t -> mu:float -> b:float -> float
(** Laplace-distributed sample with scale [b]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
