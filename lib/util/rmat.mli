(** Dense matrices of exact rationals.

    Backs the Winograd transformation matrices, their pseudo-inverses, and
    the constant folding in the hardware DFG builder.  Sizes are tiny
    (≤ 8×8), so the straightforward O(n³) algorithms are used everywhere. *)

type t = Rat.t array array

val make : int -> int -> (int -> int -> Rat.t) -> t
val of_ints : int array array -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int

val transpose : t -> t
val mul : t -> t -> t
val add : t -> t -> t
val scale : Rat.t -> t -> t
val hadamard : t -> t -> t

val equal : t -> t -> bool

val inverse : t -> t
(** Gauss–Jordan inverse. @raise Failure on singular input. *)

val pinv_left : t -> t
(** Moore–Penrose pseudo-inverse [(AᵀA)⁻¹Aᵀ] of a full-column-rank matrix;
    satisfies [pinv_left a * a = I]. @raise Failure if rank-deficient. *)

exception Lift_overflow of string
(** Raised by the lift helpers below; the message names the offending
    entry [(row,col)] and its value. *)

val common_denominator : t -> int
(** Least common multiple of all entry denominators, overflow-checked.
    @raise Lift_overflow if the lcm exceeds the native-int range. *)

val lift_common_denominator : t -> int * int array array
(** [(s, s·M)] — scale the matrix to integers by its common denominator
    [s] (the lift the RNS backend applies to generated [Bᵀ]/[G]/[Aᵀ]
    before reducing into each modulus).  Every rescaled entry is
    overflow-checked.
    @raise Lift_overflow naming the entry that cannot be represented. *)

val to_float : t -> float array array
val pp : Format.formatter -> t -> unit
