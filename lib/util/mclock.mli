(** Monotonic clock.

    [now ()] is CLOCK_MONOTONIC in seconds from an arbitrary epoch:
    readings are only meaningful as differences, never as calendar
    time.  Unlike [Unix.gettimeofday], it cannot jump backwards or leap
    forwards when NTP steps the system clock, which makes it the only
    correct time base for batch windows, deadlines, backoff timers and
    breaker cooldowns.  The binding is a C stub ([@@noalloc], unboxed
    float return), so a reading costs about as much as a function
    call. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary process-independent epoch. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)
