(* Persistent domain pool.  One job is in flight at a time (the API is
   blocking); workers pull chunks of the index space through an atomic
   cursor, so load-balancing is dynamic while output ownership — and
   therefore the result — stays exactly the per-index contract of the
   caller.  The calling domain participates in its own job, which is
   also what makes the [num_domains = 1] case a plain loop. *)

let max_domains = 128
let clamp n = if n < 1 then 1 else if n > max_domains then max_domains else n
let override = ref None

let env_domains () =
  match Sys.getenv_opt "TWQ_NUM_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Some (clamp n)
      | None -> None)

let num_domains () =
  match !override with
  | Some n -> n
  | None -> (
      match env_domains () with
      | Some n -> n
      | None -> clamp (Domain.recommended_domain_count ()))

(* True while the current domain is executing chunks of a job (or is
   inside [sequential]): any parallel_for issued from there must not
   submit a second job to the pool. *)
let in_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type job = {
  hi : int;
  chunk : int;
  body : int -> int -> unit; (* process the index range [clo, chi) *)
  cursor : int Atomic.t; (* next chunk start *)
  busy : int Atomic.t; (* participants currently draining *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

type pool = {
  size : int; (* worker domains, = num_domains - 1 *)
  mutex : Mutex.t;
  work : Condition.t; (* new job / shutdown *)
  idle : Condition.t; (* a participant finished draining *)
  mutable job : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let drain pool j =
  let prev = Domain.DLS.get in_region in
  Domain.DLS.set in_region true;
  Atomic.incr j.busy;
  let rec loop () =
    let clo = Atomic.fetch_and_add j.cursor j.chunk in
    if clo < j.hi then begin
      (try j.body clo (min (clo + j.chunk) j.hi)
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.mutex;
         if j.failure = None then j.failure <- Some (e, bt);
         Mutex.unlock pool.mutex);
      loop ()
    end
  in
  loop ();
  Domain.DLS.set in_region prev;
  if Atomic.fetch_and_add j.busy (-1) = 1 then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.idle;
    Mutex.unlock pool.mutex
  end

let worker pool () =
  let rec loop last_gen =
    Mutex.lock pool.mutex;
    while pool.gen = last_gen && not pool.stop do
      Condition.wait pool.work pool.mutex
    done;
    let gen = pool.gen and job = pool.job and stop = pool.stop in
    Mutex.unlock pool.mutex;
    if not stop then begin
      (match job with Some j -> drain pool j | None -> ());
      loop gen
    end
  in
  loop 0

let the_pool : pool option ref = ref None

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.mutex;
      p.stop <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.mutex;
      List.iter Domain.join p.domains;
      the_pool := None

let exit_hook_installed = ref false

let ensure_pool nd =
  match !the_pool with
  | Some p when p.size = nd - 1 -> p
  | _ ->
      shutdown ();
      let p =
        {
          size = nd - 1;
          mutex = Mutex.create ();
          work = Condition.create ();
          idle = Condition.create ();
          job = None;
          gen = 0;
          stop = false;
          domains = [];
        }
      in
      p.domains <- List.init (nd - 1) (fun _ -> Domain.spawn (worker p));
      the_pool := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit shutdown
      end;
      p

let set_num_domains n =
  override := Some (clamp n);
  (* Resize lazily on next use; tear down now if going sequential. *)
  if clamp n = 1 then shutdown ()

let clear_num_domains_override () = override := None

let sequential f =
  let prev = Domain.DLS.get in_region in
  Domain.DLS.set in_region true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_region prev) f

let run_job pool ~chunk ~lo ~hi body =
  let j =
    {
      hi;
      chunk;
      body;
      cursor = Atomic.make lo;
      busy = Atomic.make 0;
      failure = None;
    }
  in
  Mutex.lock pool.mutex;
  pool.job <- Some j;
  pool.gen <- pool.gen + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  drain pool j;
  Mutex.lock pool.mutex;
  while Atomic.get j.busy > 0 do
    Condition.wait pool.idle pool.mutex
  done;
  pool.job <- None;
  Mutex.unlock pool.mutex;
  match j.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let default_chunk n nd = max 1 (n / (8 * nd))

let parallel_for ?chunk ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let nd = num_domains () in
    let seq () =
      for i = lo to hi - 1 do
        f i
      done
    in
    if nd = 1 || Domain.DLS.get in_region then seq ()
    else begin
      let chunk =
        match chunk with Some c when c >= 1 -> c | _ -> default_chunk n nd
      in
      if chunk >= n then seq ()
      else
        run_job (ensure_pool nd) ~chunk ~lo ~hi (fun clo chi ->
            for i = clo to chi - 1 do
              f i
            done)
    end
  end

let parallel_for_reduce ?chunk ~lo ~hi ~init ~combine f =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    (* The default chunking must not depend on the domain count: partials
       are combined in chunk order, so a fixed grid keeps float reductions
       deterministic whether the chunks ran on 1 domain or 16. *)
    let chunk =
      match chunk with Some c when c >= 1 -> c | _ -> max 1 ((n + 63) / 64)
    in
    let nchunks = (n + chunk - 1) / chunk in
    let partial = Array.make nchunks init in
    parallel_for ~chunk:1 ~lo:0 ~hi:nchunks (fun ci ->
        let clo = lo + (ci * chunk) in
        let chi = min (clo + chunk) hi in
        let acc = ref init in
        for i = clo to chi - 1 do
          acc := combine !acc (f i)
        done;
        partial.(ci) <- !acc);
    Array.fold_left combine init partial
  end

(* Per-domain scratch arenas.  Each [arena] hands out one buffer per
   domain, grown monotonically and reused across jobs, so hot loops that
   run inside [parallel_for] bodies can stage tiles / GEMM panels without
   allocating per iteration.  Two borrows from the *same* arena on the
   same domain alias; call sites own one arena per logically distinct
   buffer. *)
module Scratch = struct
  type 'a arena = { key : 'a array ref Domain.DLS.key; blank : 'a }

  let create blank = { key = Domain.DLS.new_key (fun () -> ref [||]); blank }
  let create_float () : float arena = create 0.0
  let create_int () : int arena = create 0

  let borrow a n =
    let r = Domain.DLS.get a.key in
    if Array.length !r < n then r := Array.make n a.blank;
    !r
end

let map_array ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let res = Array.make n (f arr.(0)) in
    parallel_for ?chunk ~lo:1 ~hi:n (fun i -> res.(i) <- f arr.(i));
    res
  end
