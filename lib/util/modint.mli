(** Exact modular arithmetic and Chinese-remainder reconstruction for the
    residue-number-system (RNS) Winograd backend.

    The RNS backend computes the scaled integer Winograd sandwich
    independently in each modulus of a small pairwise-coprime basis
    (e.g. 251/241/239) and recovers the exact integer result by CRT.
    This module provides the scalar pieces: residue reduction, modular
    inverses, and a precomputed mixed-radix (Garner) reconstruction that
    uses only native-int arithmetic — no big integers anywhere.

    All moduli are restricted to [2 ≤ p ≤ ]{!max_modulus}[ ] (residues fit
    int16, and every intermediate of the digit recurrence stays far below
    [max_int]) and basis products to {!max_product} (so the final Horner
    evaluation of the mixed-radix digits cannot overflow). *)

val max_modulus : int
(** Largest accepted modulus, [2^13 - 1 = 8191]: residues fit int16 and
    [p²] products leave ample headroom in native ints. *)

val max_moduli : int
(** Largest accepted basis size (8). *)

val max_product : int
(** Largest accepted basis product, [2^61]: the mixed-radix Horner value
    stays below it, so centering and accumulation never overflow. *)

val gcd : int -> int -> int
(** Greatest common divisor of two non-negative ints. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, s, t)] with [a·s + b·t = g = gcd a b]. *)

val coprime : int -> int -> bool

val reduce : int -> int -> int
(** [reduce v p] is [v mod p] normalized into [\[0, p)], for any sign of
    [v]. [p ≥ 1]. *)

val inv : int -> int -> int option
(** [inv a p] is the multiplicative inverse of [a] in [ℤ_p] (in
    [\[0, p)]), or [None] when [gcd a p ≠ 1]. *)

module Crt : sig
  type t

  val make : int array -> (t, string) result
  (** Validate a basis and precompute the Garner tables. Rejects (with a
      human-readable reason): empty basis, more than {!max_moduli}
      moduli, a modulus outside [\[2, ]{!max_modulus}[\]], a non-coprime
      pair, and a product exceeding {!max_product}. *)

  val moduli : t -> int array
  (** The basis, in the order given to {!make} (a fresh copy). *)

  val product : t -> int
  (** [Π pᵢ] — the dynamic range; values in
      [(-product/2, product/2\]] reconstruct exactly. *)

  val residues : t -> int -> int array
  (** Forward map: the residue vector (each in [\[0, pᵢ)]) of a signed
      value. Allocates; meant for tests and staging, not hot loops. *)

  val reconstruct : t -> ?digits:int array -> int array -> int
  (** [reconstruct t rs] maps a residue vector (each [rs.(i)] in
      [\[0, pᵢ)]) back to the unique centered representative in
      [(-product/2, product/2\]] via Garner's mixed-radix algorithm.
      [digits] is optional scratch of length ≥ the basis size; passing it
      makes the call allocation-free (per-domain arenas in the conv
      driver). *)
end
