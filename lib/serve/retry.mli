(** Per-request retry budgets with exponential backoff and decorrelated
    jitter.

    A [policy] caps the total number of attempts a request may consume
    across all shards; a [t] is one request's live budget. Sleeps follow
    the "decorrelated jitter" scheme: each backoff is drawn uniformly
    from [[base, 3 * previous]] and clamped to [cap], which spreads
    synchronized retry storms apart while still growing roughly
    exponentially. Draws come from a seeded {!Twq_util.Rng} stream, so a
    replayed request makes the same backoff choices. *)

type policy = {
  attempts : int;  (** total attempts allowed, including the first *)
  base : float;  (** minimum backoff, seconds *)
  cap : float;  (** maximum backoff, seconds *)
}

val default : policy
(** 3 attempts, 25 ms base, 1 s cap. *)

val no_retry : policy
(** A single attempt — disables retrying without special-casing. *)

type t

val start : ?seed:int -> policy -> t
(** A fresh budget for one request; the first attempt is implicitly
    spent. Equal seeds yield equal backoff sequences. *)

val next : t -> float option
(** After a failed attempt: [Some sleep] grants another attempt after
    sleeping [sleep] seconds; [None] means the budget is exhausted.
    Never sleeps itself. *)

val used : t -> int
(** Attempts consumed so far (at least 1). *)
