(* Deterministic fault injection.

   Each rule owns a private splitmix64 stream derived from (seed, rule
   index), so the verdict for the Nth probe of a given (site, peer)
   call sequence is a pure function of the seed — the heart of the
   replayable-chaos guarantee. The module never performs IO itself:
   call sites enact the verdict (sleep, sever, refuse), so the disabled
   path costs one Atomic.get per IO operation and nothing else. *)

module Rng = Twq_util.Rng

type site = Connect | Send | Recv | Reply

type kind = Refuse | Stall of float | Drop | Delay of float

type rule = { site : site; peer : string option; kind : kind; prob : float }

type t = {
  seed : int;
  ruleset : rule array;
  streams : Rng.t array; (* one per rule, index-aligned *)
  mu : Mutex.t;
  n_refuse : int Atomic.t;
  n_stall : int Atomic.t;
  n_drop : int Atomic.t;
  n_delay : int Atomic.t;
  trace : (site * string * kind option) Queue.t; (* bounded decision log *)
}

let trace_cap = 65536

let site_name = function
  | Connect -> "connect"
  | Send -> "send"
  | Recv -> "recv"
  | Reply -> "reply"

let kind_name = function
  | Refuse -> "refuse"
  | Stall _ -> "stall"
  | Drop -> "drop"
  | Delay _ -> "delay"

(* ---------- spec parsing ---------- *)

let site_of_string = function
  | "connect" -> Some Connect
  | "send" -> Some Send
  | "recv" -> Some Recv
  | "reply" -> Some Reply
  | _ -> None

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_entry entry =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match split_on_first ':' entry with
  | None -> fail "rule %S: expected site:kind=prob" entry
  | Some (lhs, rhs) -> (
      let site_str, peer =
        match split_on_first '[' lhs with
        | Some (s, rest) when String.length rest > 0 && rest.[String.length rest - 1] = ']' ->
            (s, Some (String.sub rest 0 (String.length rest - 1)))
        | _ -> (lhs, None)
      in
      match site_of_string site_str with
      | None -> fail "rule %S: unknown site %S" entry site_str
      | Some site -> (
          match split_on_first '=' rhs with
          | None -> fail "rule %S: expected kind=prob" entry
          | Some (kind_str, prob_str) -> (
              let prob_str, dur =
                match split_on_first '@' prob_str with
                | None -> (prob_str, 0.1)
                | Some (p, ms) -> (
                    match float_of_string_opt ms with
                    | Some v when v >= 0.0 -> (p, v /. 1000.0)
                    | _ -> (p, Float.nan))
              in
              if Float.is_nan dur then
                fail "rule %S: bad duration after '@'" entry
              else
                match float_of_string_opt prob_str with
                | None -> fail "rule %S: bad probability %S" entry prob_str
                | Some prob when prob < 0.0 || prob > 1.0 ->
                    fail "rule %S: probability %g not in [0,1]" entry prob
                | Some prob -> (
                    match kind_str with
                    | "refuse" -> Ok { site; peer; kind = Refuse; prob }
                    | "drop" -> Ok { site; peer; kind = Drop; prob }
                    | "stall" -> Ok { site; peer; kind = Stall dur; prob }
                    | "delay" -> Ok { site; peer; kind = Delay dur; prob }
                    | k -> fail "rule %S: unknown kind %S" entry k))))

let parse spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
          match parse_entry e with
          | Ok r -> go (r :: acc) rest
          | Error _ as err -> err)
    in
    go [] entries

(* ---------- plan construction ---------- *)

let create ?(seed = 0) rule_list =
  let ruleset = Array.of_list rule_list in
  (* Distinct odd multipliers keep per-rule streams independent even
     for adjacent seeds; splitmix64 init in Rng.create does the rest. *)
  let streams =
    Array.mapi (fun i _ -> Rng.create (seed + ((i + 1) * 0x9e3779b1))) ruleset
  in
  {
    seed;
    ruleset;
    streams;
    mu = Mutex.create ();
    n_refuse = Atomic.make 0;
    n_stall = Atomic.make 0;
    n_drop = Atomic.make 0;
    n_delay = Atomic.make 0;
    trace = Queue.create ();
  }

let of_spec ?seed spec =
  match parse spec with
  | Error _ as e -> e
  | Ok rules -> Ok (create ?seed rules)

let seed t = t.seed
let rules t = Array.to_list t.ruleset

let peer_matches rule peer =
  match rule.peer with
  | None -> true
  | Some needle ->
      let nl = String.length needle and pl = String.length peer in
      nl = 0
      ||
      let rec scan i =
        i + nl <= pl && (String.sub peer i nl = needle || scan (i + 1))
      in
      scan 0

let count t kind =
  let c =
    match kind with
    | Refuse -> t.n_refuse
    | Stall _ -> t.n_stall
    | Drop -> t.n_drop
    | Delay _ -> t.n_delay
  in
  Atomic.incr c

let decide t site ~peer =
  Mutex.lock t.mu;
  let verdict = ref None in
  Array.iteri
    (fun i r ->
      if !verdict = None && r.site = site && peer_matches r peer then
        if Rng.float t.streams.(i) 1.0 < r.prob then verdict := Some r.kind)
    t.ruleset;
  if Queue.length t.trace < trace_cap then
    Queue.push (site, peer, !verdict) t.trace;
  Mutex.unlock t.mu;
  (match !verdict with Some k -> count t k | None -> ());
  !verdict

let counts t =
  [
    ("refuse", Atomic.get t.n_refuse);
    ("stall", Atomic.get t.n_stall);
    ("drop", Atomic.get t.n_drop);
    ("delay", Atomic.get t.n_delay);
  ]

let log t =
  Mutex.lock t.mu;
  let l = List.of_seq (Queue.to_seq t.trace) in
  Mutex.unlock t.mu;
  l

(* ---------- global hook ---------- *)

let hook : t option Atomic.t = Atomic.make None

let arm t = Atomic.set hook (Some t)
let disarm () = Atomic.set hook None
let active () = Atomic.get hook

let probe site ~peer =
  match Atomic.get hook with None -> None | Some t -> decide t site ~peer

let install_from_env () =
  match Sys.getenv_opt "TWQ_FAULT_SPEC" with
  | None -> None
  | Some spec -> (
      let seed =
        match Sys.getenv_opt "TWQ_FAULT_SEED" with
        | None -> 0
        | Some s -> (
            match int_of_string_opt s with
            | Some n -> n
            | None ->
                invalid_arg
                  (Printf.sprintf "TWQ_FAULT_SEED: not an integer: %S" s))
      in
      match of_spec ~seed spec with
      | Ok t ->
          arm t;
          Some t
      | Error msg -> invalid_arg (Printf.sprintf "TWQ_FAULT_SPEC: %s" msg))
