(** Bounded dynamic-batching queue with load shedding.

    Producers {!submit} (never blocking: a full queue returns
    [Overloaded], a shut-down one [Closed]).  Consumers {!next_batch},
    which blocks for the first request, holds the batch window open until
    [max_batch] requests are queued or [max_delay] seconds elapse, then
    returns up to [max_batch] requests in FIFO order plus the window-open
    timestamp.  After {!shutdown}, windows close immediately, remaining
    requests drain in batches, and consumers finally receive [None]. *)

type 'a t

type submit_result = Accepted | Overloaded | Closed

val create : capacity:int -> max_batch:int -> max_delay:float -> unit -> 'a t
(** @raise Invalid_argument if [capacity] or [max_batch] < 1 or
    [max_delay] < 0. *)

val submit : 'a t -> 'a -> submit_result
val next_batch : 'a t -> ('a list * float) option
val length : 'a t -> int
val shutdown : 'a t -> unit
